package core

import (
	"reflect"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// TestControllerFullyDeterministic: two identical controller runs —
// including a commission fault and the resulting detection — agree on
// every observable: latency, attempts, suspects, metrics and output
// bytes.
func TestControllerFullyDeterministic(t *testing.T) {
	runOnce := func() (*Result, []string, *harness) {
		fs := dfs.New()
		fs.Append("data/weather", weatherData(2000)...)
		cl := cluster.New(12, 3)
		if err := cl.SetAdversary("node-004", cluster.FaultCommission, 1.0, 77); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		susp := NewSuspicionTable(0)
		eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
		ctrl := NewController(eng, cfg, susp, nil)
		h := &harness{fs: fs, cl: cl, eng: eng, ctrl: ctrl}
		res, err := ctrl.Run(weatherScript)
		if err != nil {
			t.Fatal(err)
		}
		return res, h.outputLines(t, res, "out/counts"), h
	}
	r1, o1, _ := runOnce()
	r2, o2, _ := runOnce()
	if r1.LatencyUs != r2.LatencyUs {
		t.Errorf("latency differs: %d vs %d", r1.LatencyUs, r2.LatencyUs)
	}
	if r1.Attempts != r2.Attempts || r1.FaultyReplicas != r2.FaultyReplicas {
		t.Errorf("attempts/faults differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(r1.Suspects, r2.Suspects) {
		t.Errorf("suspects differ: %v vs %v", r1.Suspects, r2.Suspects)
	}
	if r1.Metrics != r2.Metrics {
		t.Errorf("metrics differ:\n%+v\n%+v", r1.Metrics, r2.Metrics)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Error("verified outputs differ across identical runs")
	}
}

// TestControllerDeterministicAcrossPoolSizes: the compute-eager /
// commit-deterministic execution model promises that every virtual-time
// observable — latency, attempts, suspects, metrics, digest counts and
// verified output bytes — is byte-identical whether task bodies compute
// on one worker or many, even through a commission fault, detection,
// and speculative re-execution.
func TestControllerDeterministicAcrossPoolSizes(t *testing.T) {
	runWith := func(workers int) (*Result, []string) {
		fs := dfs.New()
		fs.Append("data/weather", weatherData(2000)...)
		cl := cluster.New(12, 3)
		if err := cl.SetAdversary("node-004", cluster.FaultCommission, 1.0, 77); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		susp := NewSuspicionTable(0)
		eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
		eng.Workers = workers
		eng.Speculation = true
		ctrl := NewController(eng, cfg, susp, nil)
		h := &harness{fs: fs, cl: cl, eng: eng, ctrl: ctrl}
		res, err := ctrl.Run(weatherScript)
		if err != nil {
			t.Fatal(err)
		}
		return res, h.outputLines(t, res, "out/counts")
	}
	base, baseOut := runWith(1)
	for _, w := range []int{4, 8, 0} {
		res, out := runWith(w)
		if res.LatencyUs != base.LatencyUs {
			t.Errorf("workers=%d: latency %d != %d", w, res.LatencyUs, base.LatencyUs)
		}
		if res.Attempts != base.Attempts || res.FaultyReplicas != base.FaultyReplicas {
			t.Errorf("workers=%d: attempts/faults differ: %+v vs %+v", w, res, base)
		}
		if res.DigestReports != base.DigestReports {
			t.Errorf("workers=%d: digest reports %d != %d", w, res.DigestReports, base.DigestReports)
		}
		if !reflect.DeepEqual(res.Suspects, base.Suspects) {
			t.Errorf("workers=%d: suspects differ: %v vs %v", w, res.Suspects, base.Suspects)
		}
		if res.Metrics != base.Metrics {
			t.Errorf("workers=%d: metrics differ:\n%+v\n%+v", w, res.Metrics, base.Metrics)
		}
		if !reflect.DeepEqual(out, baseOut) {
			t.Errorf("workers=%d: verified outputs differ", w)
		}
	}
}

// TestControllerRepeatedRunsAdvanceClock: the virtual clock carries
// across Run calls on one engine (suspicion history accumulates on a
// consistent timeline).
func TestControllerRepeatedRunsAdvanceClock(t *testing.T) {
	h := newHarness(t, 12, 3, DefaultConfig())
	if _, err := h.ctrl.Run(weatherScript); err != nil {
		t.Fatal(err)
	}
	t1 := h.eng.Now()
	if _, err := h.ctrl.Run(weatherScript); err != nil {
		t.Fatal(err)
	}
	if h.eng.Now() <= t1 {
		t.Errorf("clock did not advance: %d then %d", t1, h.eng.Now())
	}
}

// TestMarkProperties: for arbitrary n the marker output is a duplicate-
// free subset of the candidate set with size min(n, |candidates|).
func TestMarkProperties(t *testing.T) {
	h := newHarness(t, 4, 2, DefaultConfig())
	_ = h
	// Use the analyze package through the controller's path indirectly:
	// parse the weather plan and check marker output shape for many n.
	// (The pure-analyze tests live in internal/analyze; this guards the
	// controller-facing contract.)
	for n := 0; n <= 8; n++ {
		cfg := DefaultConfig()
		cfg.Points = n
		h2 := newHarness(t, 8, 2, cfg)
		res, err := h2.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := map[int]bool{}
		for _, p := range res.PointsUsed {
			if seen[p] {
				t.Fatalf("n=%d: duplicate point %d", n, p)
			}
			seen[p] = true
		}
		// Points include the final output vertex plus at most n marks.
		if len(res.PointsUsed) > n+1 {
			t.Errorf("n=%d: %d points used", n, len(res.PointsUsed))
		}
		if len(res.PointsUsed) == 0 {
			t.Errorf("n=%d: final output must always be verified", n)
		}
	}
}
