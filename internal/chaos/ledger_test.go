package chaos

import (
	"testing"

	"clusterbft/internal/core"
)

// TestChaosLedgerInvariantAllPolicies runs a short campaign under every
// verification policy purely for invariant I6: whatever the schedule
// does — crashes, manglings, omissions, escalations, failed runs — the
// cost ledger's buckets must partition the engine's charged CPU exactly
// once the simulation drains. Violations (I6 among them) surface in the
// report.
func TestChaosLedgerInvariantAllPolicies(t *testing.T) {
	for _, p := range []core.Policy{core.PolicyFull, core.PolicyQuiz, core.PolicyDeferred, core.PolicyAuto} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultCampaign()
			cfg.Schedules = 25
			if testing.Short() {
				cfg.Schedules = 8
			}
			cfg.Core.VerifyPolicy = p
			if p != core.PolicyFull {
				cfg.Core.QuizFraction = 1
			}
			rep, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations() {
				t.Errorf("invariant violation: %s", v)
			}
		})
	}
}
