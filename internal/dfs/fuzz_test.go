package dfs

import (
	"strings"
	"testing"
)

// FuzzBlockRoundTrip feeds arbitrary record content — including raw
// tabs, newlines-as-escapes, backslashes and the tuple codec's escape
// sequences — through the complete at-rest pipeline: columnar encode,
// optional flate compression, seal into a budgeted FS, spill to disk,
// load back, decompress, decode. The reconstructed record lines must be
// byte-identical to the originals at every stage.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add("plain\tfields\there", true)
	f.Add("esc\\taped\\nvalue\\\\", false)
	f.Add("", true)
	f.Add("\t\t\t", true)
	f.Add("a\nb\nc\td", false)
	f.Add("unicode → ünïcode\tmore", true)
	f.Add(strings.Repeat("wide\tblock\t", 400), true)
	f.Fuzz(func(t *testing.T, raw string, compress bool) {
		// Interpret the fuzz input as a small file: newline-separated
		// record lines, each holding arbitrary (possibly tab/backslash
		// riddled) content.
		lines := strings.Split(raw, "\n")

		// Stage 1: bare codec round-trip.
		data := EncodeBlock(lines, compress)
		n, err := BlockRecords(data)
		if err != nil {
			t.Fatalf("BlockRecords on own encoding: %v", err)
		}
		if n != len(lines) {
			t.Fatalf("BlockRecords = %d, want %d", n, len(lines))
		}
		got, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("DecodeBlock on own encoding: %v", err)
		}
		if len(got) != len(lines) {
			t.Fatalf("decode returned %d lines, want %d", len(got), len(lines))
		}
		for i := range lines {
			if got[i] != lines[i] {
				t.Fatalf("line %d: decode %q, want %q", i, got[i], lines[i])
			}
		}

		// Stage 2: the same records through a spilling FS — tiny blocks
		// and a tiny budget so sealing and spilling both trigger.
		fs := NewWith(Options{BlockSize: 64, MemBudget: 128, SpillDir: t.TempDir(), Compress: compress})
		defer fs.Close()
		for _, l := range lines {
			fs.Append("fuzz/f", l)
		}
		back, err := fs.ReadLines("fuzz/f")
		if err != nil {
			t.Fatalf("ReadLines: %v", err)
		}
		if len(back) != len(lines) {
			t.Fatalf("FS returned %d lines, want %d", len(back), len(lines))
		}
		for i := range lines {
			if back[i] != lines[i] {
				t.Fatalf("FS line %d: %q, want %q", i, back[i], lines[i])
			}
		}
		if err := fs.SpillErr(); err != nil {
			t.Fatalf("spill error: %v", err)
		}
	})
}
