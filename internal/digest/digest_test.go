package digest

import (
	"testing"
	"testing/quick"

	"clusterbft/internal/tuple"
)

func collect(reports *[]Report) func(Report) {
	return func(r Report) { *reports = append(*reports, r) }
}

func rows(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{tuple.Int(int64(i)), tuple.Str("payload")}
	}
	return out
}

func TestSingleFinalDigest(t *testing.T) {
	var got []Report
	w := NewWriter(Key{SID: "j1", Point: 3, Task: "m000"}, 0, 0, collect(&got))
	data := rows(5)
	for _, r := range data {
		w.Add(r)
	}
	w.Close()
	if len(got) != 1 {
		t.Fatalf("reports = %d, want 1", len(got))
	}
	r := got[0]
	if !r.Final || r.Records != 5 || r.Key.Chunk != 0 {
		t.Errorf("report = %+v", r)
	}
	if r.Sum != Of(data) {
		t.Error("writer digest != one-shot digest")
	}
}

func TestChunkedDigests(t *testing.T) {
	var got []Report
	w := NewWriter(Key{SID: "j1", Point: 1, Task: "r000"}, 2, 2, collect(&got))
	for _, r := range rows(5) {
		w.Add(r)
	}
	w.Close()
	// 5 records at d=2: chunks of 2, 2, and final 1.
	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3", len(got))
	}
	wantRecords := []int64{2, 2, 1}
	for i, r := range got {
		if r.Key.Chunk != i {
			t.Errorf("chunk %d index = %d", i, r.Key.Chunk)
		}
		if r.Records != wantRecords[i] {
			t.Errorf("chunk %d records = %d, want %d", i, r.Records, wantRecords[i])
		}
		if r.Final != (i == 2) {
			t.Errorf("chunk %d final = %v", i, r.Final)
		}
		if r.Replica != 2 {
			t.Errorf("chunk %d replica = %d", i, r.Replica)
		}
	}
	// Chunk digests must cover disjoint data: first two chunks of equal
	// content still differ only if content differs; here rows differ.
	if got[0].Sum == got[1].Sum {
		t.Error("distinct chunks with distinct rows should have distinct sums")
	}
}

func TestExactMultipleEmitsEmptyFinal(t *testing.T) {
	var got []Report
	w := NewWriter(Key{}, 0, 2, collect(&got))
	for _, r := range rows(4) {
		w.Add(r)
	}
	w.Close()
	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3 (2 full + empty final)", len(got))
	}
	last := got[2]
	if !last.Final || last.Records != 0 {
		t.Errorf("final = %+v", last)
	}
}

func TestEmptyStreamStillReports(t *testing.T) {
	var got []Report
	w := NewWriter(Key{}, 0, 10, collect(&got))
	w.Close()
	if len(got) != 1 || !got[0].Final || got[0].Records != 0 {
		t.Fatalf("empty stream reports = %+v", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	var got []Report
	w := NewWriter(Key{}, 0, 0, collect(&got))
	w.Add(rows(1)[0])
	w.Close()
	w.Close()
	w.Add(rows(1)[0]) // ignored after close
	if len(got) != 1 {
		t.Errorf("reports after double close = %d", len(got))
	}
}

func TestReplicasAgreeOnSameData(t *testing.T) {
	data := rows(100)
	run := func(replica int) []Report {
		var got []Report
		w := NewWriter(Key{SID: "j", Point: 2, Task: "m001"}, replica, 30, collect(&got))
		for _, r := range data {
			w.Add(r)
		}
		w.Close()
		return got
	}
	a, b := run(0), run(1)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Errorf("chunk %d keys differ: %v vs %v", i, a[i].Key, b[i].Key)
		}
		if a[i].Sum != b[i].Sum {
			t.Errorf("chunk %d sums differ", i)
		}
	}
}

func TestCorruptionChangesDigest(t *testing.T) {
	data := rows(10)
	honest := Of(data)
	corrupt := make([]tuple.Tuple, len(data))
	copy(corrupt, data)
	corrupt[7] = tuple.Tuple{tuple.Int(7), tuple.Str("tampered")}
	if Of(corrupt) == honest {
		t.Error("corrupted stream must change digest")
	}
}

func TestOrderSensitivity(t *testing.T) {
	data := rows(3)
	swapped := []tuple.Tuple{data[1], data[0], data[2]}
	if Of(data) == Of(swapped) {
		t.Error("digest must be order sensitive (determinism contract)")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{SID: "j7", Point: 4, Task: "r002", Chunk: 9}
	if got := k.String(); got != "j7/p4/r002#9" {
		t.Errorf("Key.String = %q", got)
	}
}

func TestSumString(t *testing.T) {
	s := Of(rows(1))
	if len(s.String()) != 16 {
		t.Errorf("Sum.String length = %d, want 16 hex chars", len(s.String()))
	}
}

func TestWriterRecordsCounter(t *testing.T) {
	w := NewWriter(Key{}, 0, 10, func(Report) {})
	for _, r := range rows(4) {
		w.Add(r)
	}
	if w.Records() != 4 {
		t.Errorf("Records = %d", w.Records())
	}
}

func TestChunkingInvariantProperty(t *testing.T) {
	// Property: for any record count n and chunk size d, total records
	// across reports equals n, exactly one final report is emitted, and
	// chunk indices are consecutive from 0.
	f := func(n uint8, d uint8) bool {
		var got []Report
		w := NewWriter(Key{}, 0, int(d%50), collect(&got))
		for _, r := range rows(int(n % 200)) {
			w.Add(r)
		}
		w.Close()
		var total int64
		finals := 0
		for i, r := range got {
			total += r.Records
			if r.Final {
				finals++
			}
			if r.Key.Chunk != i {
				return false
			}
		}
		return total == int64(n%200) && finals == 1 && got[len(got)-1].Final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
