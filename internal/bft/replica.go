package bft

import (
	"fmt"
	"sort"
)

// StateMachine is the deterministic service replicated by the protocol.
type StateMachine interface {
	// Apply executes one ordered operation and returns its result.
	// Replicas apply operations in the same global order, so equal
	// implementations yield equal results.
	Apply(op []byte) []byte
}

// entry is one slot of the ordering log. Prepares and commits record the
// digest each replica voted for, so votes arriving before the
// pre-prepare (or votes for a different proposal) never count toward the
// wrong quorum.
type entry struct {
	pp       *PrePrepare
	prepares map[ID]Digest
	commits  map[ID]Digest
	sentC    bool
	executed bool
}

// votesFor counts votes matching the slot's accepted digest.
func votesFor(votes map[ID]Digest, d Digest) int {
	n := 0
	for _, vd := range votes {
		if vd == d {
			n++
		}
	}
	return n
}

// Replica is one PBFT replica. All methods run on the network goroutine.
type Replica struct {
	id    ID
	group string
	index int
	n, f  int
	net   *Network
	sm    StateMachine
	peers []ID

	view     uint64
	nextSeq  uint64
	lastExec uint64
	log      map[uint64]*entry

	executed map[string][]byte  // request key -> cached result
	client   map[string]ID      // request key -> requesting client
	proposed map[string]bool    // primary: already assigned a slot
	pending  map[string]Request // accepted but not yet executed

	timerGen int
	vcVotes  map[uint64]map[ID]ViewChange
	vcSent   map[uint64]bool

	// ViewChangeTimeoutUs is how long a backup waits for progress on a
	// pending request before voting to change views.
	ViewChangeTimeoutUs int64

	// CorruptResults makes this replica return tampered execution
	// results, modelling a Byzantine control-tier member for tests; the
	// ordering protocol itself still runs (a fully silent replica is
	// modeled by Network.Drop instead).
	CorruptResults bool

	// Executions counts operations applied, for tests.
	Executions int
}

// NewReplica constructs replica index i of a 3f+1 group and registers it
// on the network.
func NewReplica(net *Network, index, f int, sm StateMachine) *Replica {
	return NewReplicaIn(net, "", index, f, sm)
}

// NewReplicaIn constructs replica index i of the named group's 3f+1
// members and registers it on the (possibly shared) network. Replicas
// of different groups never address each other: peers, primaries and
// client reply targets all live in the group's namespace.
func NewReplicaIn(net *Network, group string, index, f int, sm StateMachine) *Replica {
	n := 3*f + 1
	r := &Replica{
		id:                  GroupReplicaID(group, index),
		group:               group,
		index:               index,
		n:                   n,
		f:                   f,
		net:                 net,
		sm:                  sm,
		view:                0,
		nextSeq:             1,
		log:                 make(map[uint64]*entry),
		executed:            make(map[string][]byte),
		client:              make(map[string]ID),
		proposed:            make(map[string]bool),
		pending:             make(map[string]Request),
		vcVotes:             make(map[uint64]map[ID]ViewChange),
		vcSent:              make(map[uint64]bool),
		ViewChangeTimeoutUs: 50_000,
	}
	for i := 0; i < n; i++ {
		r.peers = append(r.peers, GroupReplicaID(group, i))
	}
	net.Register(r.id, r)
	return r
}

// ID returns the replica's network identity.
func (r *Replica) ID() ID { return r.id }

// View returns the current view number, for tests.
func (r *Replica) View() uint64 { return r.view }

// primary returns the primary's ID for a view.
func (r *Replica) primary(view uint64) ID {
	return GroupReplicaID(r.group, int(view%uint64(r.n)))
}

// isPrimary reports whether this replica leads the current view.
func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.id }

func (r *Replica) broadcast(msg Message) {
	for _, p := range r.peers {
		r.net.Send(r.id, p, msg)
	}
}

// Receive implements Handler.
func (r *Replica) Receive(from ID, msg Message) {
	switch m := msg.(type) {
	case Request:
		r.onRequest(from, m)
	case PrePrepare:
		r.onPrePrepare(from, m)
	case Prepare:
		r.onPrepare(from, m)
	case Commit:
		r.onCommit(from, m)
	case ViewChange:
		r.onViewChange(from, m)
	case NewView:
		r.onNewView(from, m)
	}
}

func (r *Replica) onRequest(from ID, req Request) {
	key := req.key()
	if res, ok := r.executed[key]; ok {
		// Retransmission of an executed request: resend the cached reply.
		r.net.Send(r.id, req.Client, Reply{View: r.view, ReqSeq: req.Seq, Replica: r.id, Result: res})
		return
	}
	r.pending[key] = req
	r.client[key] = req.Client
	if r.isPrimary() {
		r.propose(req)
	} else {
		// Forward to the primary and watch for progress.
		r.net.Send(r.id, r.primary(r.view), req)
	}
	r.armTimer()
}

// propose assigns the next sequence number and broadcasts a pre-prepare.
func (r *Replica) propose(req Request) {
	key := req.key()
	if r.proposed[key] || r.executed[key] != nil {
		return
	}
	r.proposed[key] = true
	pp := PrePrepare{View: r.view, Seq: r.nextSeq, Digest: req.Digest(), Request: req}
	r.nextSeq++
	r.broadcast(pp)
}

func (r *Replica) entryAt(seq uint64) *entry {
	e := r.log[seq]
	if e == nil {
		e = &entry{prepares: make(map[ID]Digest), commits: make(map[ID]Digest)}
		r.log[seq] = e
	}
	return e
}

func (r *Replica) onPrePrepare(from ID, pp PrePrepare) {
	if pp.View != r.view || from != r.primary(r.view) {
		return
	}
	if pp.Request.Digest() != pp.Digest {
		return // malformed proposal
	}
	e := r.entryAt(pp.Seq)
	if e.pp != nil && e.pp.Digest != pp.Digest {
		return // conflicting proposal for the slot; ignore (primary is faulty)
	}
	e.pp = &pp
	key := pp.Request.key()
	if r.executed[key] == nil {
		r.pending[key] = pp.Request
		if pp.Request.Client != "" {
			r.client[key] = pp.Request.Client
		}
		r.armTimer()
	}
	r.broadcast(Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.id})
	r.checkProgress(pp.Seq)
}

func (r *Replica) onPrepare(from ID, p Prepare) {
	if p.View != r.view {
		return
	}
	e := r.entryAt(p.Seq)
	if e.pp != nil && e.pp.Digest != p.Digest {
		return
	}
	e.prepares[p.Replica] = p.Digest
	r.checkProgress(p.Seq)
}

func (r *Replica) onCommit(from ID, c Commit) {
	if c.View != r.view {
		return
	}
	e := r.entryAt(c.Seq)
	if e.pp != nil && e.pp.Digest != c.Digest {
		return
	}
	e.commits[c.Replica] = c.Digest
	r.checkProgress(c.Seq)
}

// checkProgress advances the two quorum phases for a slot and then
// executes any newly contiguous prefix of the log.
func (r *Replica) checkProgress(seq uint64) {
	e := r.log[seq]
	if e == nil || e.pp == nil {
		return
	}
	quorum := 2*r.f + 1
	if !e.sentC && votesFor(e.prepares, e.pp.Digest) >= quorum {
		e.sentC = true
		r.broadcast(Commit{View: r.view, Seq: seq, Digest: e.pp.Digest, Replica: r.id})
	}
	// Execute in order.
	for {
		next := r.log[r.lastExec+1]
		if next == nil || next.pp == nil || next.executed || votesFor(next.commits, next.pp.Digest) < quorum {
			return
		}
		r.execute(next)
	}
}

func (r *Replica) execute(e *entry) {
	e.executed = true
	r.lastExec = e.pp.Seq
	req := e.pp.Request
	key := req.key()
	var result []byte
	if prev, ok := r.executed[key]; ok {
		result = prev // idempotent re-execution guard
	} else {
		result = r.sm.Apply(req.Op)
		r.Executions++
		if r.CorruptResults {
			result = append(append([]byte(nil), result...), '!')
		}
		r.executed[key] = result
	}
	delete(r.pending, key)
	client := req.Client
	if client == "" {
		client = r.client[key]
	}
	if client != "" {
		r.net.Send(r.id, client, Reply{View: r.view, ReqSeq: req.Seq, Replica: r.id, Result: result})
	}
	if len(r.pending) == 0 {
		r.timerGen++ // disarm
	} else {
		r.armTimer()
	}
}

// armTimer starts (or restarts) the view-change watchdog.
func (r *Replica) armTimer() {
	r.timerGen++
	gen := r.timerGen
	r.net.After(r.ViewChangeTimeoutUs, func() {
		if gen != r.timerGen || len(r.pending) == 0 {
			return
		}
		r.startViewChange(r.view + 1)
	})
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view || r.vcSent[newView] {
		return
	}
	r.vcSent[newView] = true
	vc := ViewChange{NewView: newView, Replica: r.id, LastSeq: r.lastExec, Pending: r.pendingList()}
	r.broadcast(vc)
	// If the new view never installs (its primary is faulty too),
	// escalate to the next one — the standard doubling view-change
	// timer.
	r.net.After(2*r.ViewChangeTimeoutUs, func() {
		if r.view < newView && len(r.pending) > 0 {
			r.startViewChange(newView + 1)
		}
	})
}

func (r *Replica) pendingList() []Request {
	keys := make([]string, 0, len(r.pending))
	for k := range r.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Request, 0, len(keys))
	for _, k := range keys {
		out = append(out, r.pending[k])
	}
	return out
}

func (r *Replica) onViewChange(from ID, vc ViewChange) {
	if vc.NewView <= r.view {
		return
	}
	votes := r.vcVotes[vc.NewView]
	if votes == nil {
		votes = make(map[ID]ViewChange)
		r.vcVotes[vc.NewView] = votes
	}
	votes[vc.Replica] = vc
	// Liveness amplification: join once f+1 replicas vote.
	if len(votes) >= r.f+1 {
		r.startViewChange(vc.NewView)
	}
	if r.primary(vc.NewView) != r.id || len(votes) < 2*r.f+1 {
		return
	}
	// This replica leads the new view: gather surviving requests and
	// re-propose them deterministically. Numbering restarts right after
	// the highest EXECUTED sequence across the quorum — not after the
	// highest proposed one. installView purges every unexecuted slot, so
	// basing the restart on a slot that was proposed but never executed
	// would leave a permanent hole below the re-proposals; the in-order
	// execution loop can never cross a hole, and the group live-locks
	// through endless view changes while the request stays pending
	// forever.
	seen := make(map[string]Request)
	maxExec := r.lastExec
	for _, v := range votes {
		if v.LastSeq > maxExec {
			maxExec = v.LastSeq
		}
		for _, req := range v.Pending {
			seen[req.key()] = req
		}
	}
	for k, req := range r.pending {
		seen[k] = req
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	nv := NewView{View: vc.NewView, Primary: r.id}
	seq := maxExec
	for _, k := range keys {
		req := seen[k]
		if r.executed[req.key()] != nil {
			continue
		}
		seq++
		nv.Reproposals = append(nv.Reproposals, PrePrepare{
			View: vc.NewView, Seq: seq, Digest: req.Digest(), Request: req,
		})
	}
	r.installView(vc.NewView, seq)
	r.broadcast(nv)
}

func (r *Replica) onNewView(from ID, nv NewView) {
	if nv.View < r.view || from != r.primary(nv.View) || nv.Primary != from {
		return
	}
	if nv.View > r.view {
		var maxSeq uint64
		for _, pp := range nv.Reproposals {
			if pp.Seq > maxSeq {
				maxSeq = pp.Seq
			}
		}
		r.installView(nv.View, maxSeq)
	}
	for _, pp := range nv.Reproposals {
		r.onPrePrepare(from, pp)
	}
}

// installView moves the replica into a view, resetting per-view state.
func (r *Replica) installView(view, nextSeqBase uint64) {
	r.view = view
	if nextSeqBase+1 > r.nextSeq {
		r.nextSeq = nextSeqBase + 1
	}
	// Slots not yet executed were re-proposed; drop their stale quorum
	// state so it cannot mix across views.
	for seq, e := range r.log {
		if !e.executed {
			delete(r.log, seq)
		}
	}
	r.proposed = make(map[string]bool)
	if len(r.pending) > 0 {
		r.armTimer()
	}
}

// String renders replica identity and progress.
func (r *Replica) String() string {
	return fmt.Sprintf("%s[view=%d exec=%d]", r.id, r.view, r.lastExec)
}
