package tuple

import (
	"testing"
	"testing/quick"
)

func TestTupleClone(t *testing.T) {
	orig := Tuple{Int(1), Str("a")}
	c := orig.Clone()
	if !EqualTuples(orig, c) {
		t.Fatal("clone differs from original")
	}
	c[0] = Int(2)
	if orig[0].Int() != 1 {
		t.Error("mutating clone affected original")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{Int(1), Str("a"), Null()}.String()
	if got != "(1,a,)" {
		t.Errorf("String() = %q", got)
	}
}

func TestConcat(t *testing.T) {
	a := Tuple{Int(1)}
	b := Tuple{Str("x"), Int(2)}
	c := Concat(a, b)
	want := Tuple{Int(1), Str("x"), Int(2)}
	if !EqualTuples(c, want) {
		t.Errorf("Concat = %v, want %v", c, want)
	}
	// Inputs untouched.
	if len(a) != 1 || len(b) != 2 {
		t.Error("Concat mutated inputs")
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{}, Tuple{}, 0},
		{Tuple{Int(1)}, Tuple{Int(2)}, -1},
		{Tuple{Int(2)}, Tuple{Int(1)}, 1},
		{Tuple{Int(1)}, Tuple{Int(1), Int(0)}, -1},
		{Tuple{Int(1), Int(0)}, Tuple{Int(1)}, 1},
		{Tuple{Str("a"), Int(2)}, Tuple{Str("a"), Int(2)}, 0},
		{Tuple{Str("a"), Int(1)}, Tuple{Str("a"), Int(2)}, -1},
	}
	for i, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("case %d: CompareTuples = %d, want %d", i, got, c.want)
		}
	}
}

func TestEqualTuplesLengthMismatch(t *testing.T) {
	if EqualTuples(Tuple{Int(1)}, Tuple{Int(1), Int(2)}) {
		t.Error("tuples of different length must not be equal")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("user", "follower")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("follower") != 1 {
		t.Errorf("Index(follower) = %d", s.Index("follower"))
	}
	if s.Index("absent") != -1 {
		t.Errorf("Index(absent) = %d", s.Index("absent"))
	}
	names := s.Names()
	if names[0] != "user" || names[1] != "follower" {
		t.Errorf("Names = %v", names)
	}
}

func TestSchemaClone(t *testing.T) {
	s := NewSchema("a", "b")
	c := s.Clone()
	c.Fields[0].Name = "z"
	if s.Fields[0].Name != "a" {
		t.Error("mutating clone affected original schema")
	}
}

func TestSchemaString(t *testing.T) {
	s := &Schema{Fields: []Field{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeAny}}}
	if got := s.String(); got != "(a:int, b)" {
		t.Errorf("String = %q", got)
	}
}

func TestFieldTypeString(t *testing.T) {
	cases := map[FieldType]string{
		TypeAny:       "any",
		TypeInt:       "int",
		TypeFloat:     "float",
		TypeString:    "chararray",
		FieldType(42): "type(42)",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		ft   FieldType
		raw  string
		want Value
	}{
		{TypeInt, "42", Int(42)},
		{TypeInt, "junk", Int(0)},
		{TypeFloat, "2.5", Float(2.5)},
		{TypeString, "42", Str("42")},
		{TypeAny, "42", Int(42)},
		{TypeAny, "-7", Int(-7)},
		{TypeAny, "4.2", Str("4.2")},
		{TypeAny, "abc", Str("abc")},
		{TypeAny, "", Str("")},
		{TypeAny, "-", Str("-")},
		{TypeAny, "+", Str("+")},
		{TypeAny, "+3", Int(3)},
	}
	for _, c := range cases {
		got := c.ft.Coerce(c.raw)
		if got.Kind() != c.want.Kind() || !Equal(got, c.want) {
			t.Errorf("%v.Coerce(%q) = %v (%v), want %v (%v)",
				c.ft, c.raw, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestCompareTuplesReflexiveProperty(t *testing.T) {
	f := func(xs []int64) bool {
		tup := make(Tuple, len(xs))
		for i, x := range xs {
			tup[i] = Int(x)
		}
		return CompareTuples(tup, tup) == 0 && EqualTuples(tup, tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
