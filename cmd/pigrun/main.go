// Command pigrun executes a PigLatin-subset script on the simulated
// MapReduce engine without replication or verification — the "Pure Pig"
// baseline — and prints the outputs.
//
// Usage:
//
//	pigrun -script q.pig -input data/edges=edges.tsv [-nodes 8] [-slots 3] [-show 20]
//	       [-combine=on|off] [-verify-policy=full|quiz|deferred|auto]
//	       [-block-size N] [-mem-budget 64m] [-spill-dir DIR] [-compress]
//	       [--trace=run.json] [--metrics] [-http :8080] [-http-linger]
//
// -verify-policy leaves the baseline but runs the script under the BFT
// controller with the given verification policy, so the same command
// line can A/B the pure cost against each policy's 1+ε overhead.
// --trace writes a Chrome trace_event JSON timeline (loadable in
// chrome://tracing or Perfetto) plus a deterministic JSONL twin;
// --metrics prints the full metrics registry after the run. -http
// serves the live introspection plane while the run executes: /metrics
// (Prometheus exposition), /healthz, /jobs and /jobs/{id} (JSON
// progress, verification and cost-ledger state), /jobs/{id}/stragglers,
// /trace (span ring as JSONL) and /debug/pprof. -http-linger keeps the
// endpoints up after the run completes, until SIGINT/SIGTERM.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/obs/introspect"
	"clusterbft/internal/pig"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pigrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var inputs repeated
	script := flag.String("script", "", "path to the Pig script (required)")
	flag.Var(&inputs, "input", "dfspath=localfile input mapping (repeatable)")
	nodes := flag.Int("nodes", 8, "cluster size")
	slots := flag.Int("slots", 3, "task slots per node")
	reduces := flag.Int("reduces", 2, "reduce parallelism")
	combine := flag.String("combine", "on", "map-side combiners: on or off (outputs are identical either way)")
	policyName := flag.String("verify-policy", "", "run under the BFT controller with this verification policy: full, quiz, deferred or auto (default: no verification)")
	checkpoint := flag.Bool("checkpoint", false, "with -verify-policy full: persist verified interior outputs as checkpoints so retries re-execute only the DAG suffix, and arm quantile straggler re-launch")
	shards := flag.Int("shards", 0, "with -verify-policy: split digest verification across N parallel verdict pipelines (<=1: inline; outputs are identical either way)")
	show := flag.Int("show", 20, "output records to print per store")
	explain := flag.Bool("explain", false, "print the logical plan and compiled jobs, then exit")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline here (a .jsonl twin is written next to it)")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	httpAddr := flag.String("http", "", "serve live introspection (/metrics, /healthz, /jobs, /trace, pprof) on this address, e.g. :8080")
	httpLinger := flag.Bool("http-linger", false, "with -http: keep serving introspection after the run completes, until interrupted")
	storageFlags := dfs.Flags(flag.CommandLine)
	flag.Parse()

	if *script == "" {
		return fmt.Errorf("-script is required")
	}
	src, err := os.ReadFile(*script)
	if err != nil {
		return err
	}
	plan, err := pig.Parse(string(src))
	if err != nil {
		return err
	}
	if *combine != "on" && *combine != "off" {
		return fmt.Errorf("bad -combine %q (want on or off)", *combine)
	}
	policy, err := core.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	jobs, err := mapred.Compile(plan, mapred.CompileOptions{
		NumReduces:     *reduces,
		DisableCombine: *combine == "off",
	})
	if err != nil {
		return err
	}
	if *explain {
		fmt.Println("logical plan:")
		fmt.Print(plan.String())
		fmt.Println("\ncompiled jobs:")
		for _, j := range jobs {
			fmt.Printf("  %v deps=%v\n", j, j.Deps)
		}
		return nil
	}

	storage, err := storageFlags()
	if err != nil {
		return err
	}
	fs := dfs.NewWith(storage)
	defer fs.Close()
	for _, in := range inputs {
		dfsPath, local, ok := strings.Cut(in, "=")
		if !ok {
			return fmt.Errorf("bad -input %q (want dfspath=localfile)", in)
		}
		fh, err := os.Open(local)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(fh)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		fh.Close()
		if err := sc.Err(); err != nil {
			return err
		}
		fs.Append(dfsPath, lines...)
	}

	for _, v := range plan.Loads() {
		if !fs.Exists(v.Path) && len(fs.List(v.Path)) == 0 {
			return fmt.Errorf("LOAD %q has no data; add -input %s=<file>", v.Path, v.Path)
		}
	}

	eng := mapred.NewEngine(fs, cluster.New(*nodes, *slots), nil, mapred.DefaultCostModel())
	var reg *obs.Registry
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
		eng.InstrumentMetrics(reg)
	}
	var tracer *obs.Tracer
	if *traceFile != "" || *httpAddr != "" {
		tracer = obs.NewTracer(0)
		if *traceFile != "" {
			tracer.EnableWallClock(obs.WallUnixMicros)
		}
		eng.Trace = tracer
	}
	if *httpAddr != "" {
		eng.Board = obs.NewJobsBoard()
		srv, err := introspect.Start(*httpAddr, introspect.Options{
			Registry: reg,
			Tracer:   tracer,
			Board:    eng.Board,
			Cost:     func() any { return eng.Ledger.Buckets() },
			SIDCost: func(sid string) (any, bool) {
				b, ok := eng.Ledger.SIDBuckets(sid)
				return b, ok
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("introspection: %s\n", srv.URL())
	}
	// outPath maps a STORE path to where its records actually live: the
	// script's own path on the baseline, the controller's verified copy
	// under -verify-policy.
	outPath := func(store string) string { return store }

	if *policyName != "" {
		cfg := core.DefaultConfig()
		cfg.VerifyPolicy = policy
		cfg.NumReduces = *reduces
		cfg.DisableCombine = *combine == "off"
		cfg.Storage = storage
		cfg.Checkpoint = *checkpoint
		cfg.Shards = *shards
		if *checkpoint {
			eng.Speculation = true
			eng.SpecQuantile = 0.95
		}
		susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
		eng.Sched = core.NewOverlapScheduler(susp)
		ctrl := core.NewController(eng, cfg, susp, nil)
		res, err := ctrl.Run(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("verified: %v (policy %s)   latency: %.2fs (virtual)   cpu: %.2fs   quizzes: %d\n",
			res.Verified, policy, float64(res.LatencyUs)/1e6,
			float64(res.Metrics.CPUTimeUs)/1e6, eng.QuizTasks)
		outPath = func(store string) string { return res.Outputs[store] }
	} else {
		states := make([]*mapred.JobState, 0, len(jobs))
		for _, j := range jobs {
			js, err := eng.Submit(j)
			if err != nil {
				return err
			}
			states = append(states, js)
		}
		eng.Run()

		var makespan int64
		for _, js := range states {
			if !js.Done {
				return fmt.Errorf("job %s did not complete", js.Spec.ID)
			}
			if js.DoneTime > makespan {
				makespan = js.DoneTime
			}
		}
		fmt.Printf("latency: %.2fs (virtual)   cpu: %.2fs   jobs: %d\n",
			float64(makespan)/1e6, float64(eng.Metrics.CPUTimeUs)/1e6, eng.Metrics.JobsCompleted)
	}

	if *traceFile != "" {
		twin, err := obs.WriteTraceFiles(tracer, *traceFile)
		if err != nil {
			return err
		}
		fmt.Printf("trace: %s (chrome://tracing, Perfetto)  jsonl: %s  spans: %d  dropped: %d\n",
			*traceFile, twin, tracer.Len(), tracer.Dropped())
	}
	if *metrics {
		fmt.Printf("\nmetrics:\n%s", reg.RenderText())
	}

	for _, st := range plan.Stores() {
		lines, err := fs.ReadTree(outPath(st.Path))
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%d records):\n", st.Path, len(lines))
		for i, l := range lines {
			if i >= *show {
				fmt.Printf("  ... %d more\n", len(lines)-i)
				break
			}
			fmt.Println(" ", l)
		}
	}

	// -http-linger keeps the introspection endpoints live after the run
	// so scripts (and the CI smoke check) can scrape the final state.
	if *httpAddr != "" && *httpLinger {
		fmt.Println("lingering: introspection stays up until SIGINT/SIGTERM")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	return nil
}
