package mapred

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clusterbft/internal/dfs"
)

// TestGoldenFollowerDigestStream runs one seeded Fig 9-style follower
// job (filter → group → count, two verification points, chunked digests,
// three reduce partitions) and compares every externally observable byte
// against a committed fixture: the full digest-report stream in emission
// order (full SHA-256 sums), the raw output part files, and the engine's
// resource counters.
//
// The pool-invariance and repeat-run determinism suites only prove runs
// agree with each other; this fixture proves they agree with the
// committed history, so any change to the codec, hash functions, shuffle
// placement, grouping order or byte accounting — however internally
// consistent — fails loudly here. Regenerate deliberately with
// CLUSTERBFT_UPDATE_GOLDEN=1 after auditing that the change is meant to
// alter observable bytes.
func TestGoldenFollowerDigestStream(t *testing.T) {
	got := goldenFollowerObservables(t, dfs.New())

	golden := filepath.Join("testdata", "golden_follower.txt")
	if os.Getenv("CLUSTERBFT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	compareGolden(t, golden, got)
}

// TestGoldenFollowerDigestStreamSpillOn replays the same seeded job on a
// block data plane configured far out of its comfort zone — 2 KiB
// blocks, a 1 KiB resident budget forcing nearly every sealed block to
// disk, compression on — and requires the exact committed fixture bytes.
// Digests are over canonical record bytes and the storage layer
// reconstructs records exactly, so no observable may move; this test
// never regenerates the fixture.
func TestGoldenFollowerDigestStreamSpillOn(t *testing.T) {
	fs := dfs.NewWith(dfs.Options{
		BlockSize: 2 << 10,
		MemBudget: 1 << 10,
		SpillDir:  t.TempDir(),
		Compress:  true,
	})
	defer fs.Close()
	got := goldenFollowerObservables(t, fs)
	if fs.SpilledBlocks() == 0 {
		t.Fatal("spill-on golden run never spilled; budget not exercised")
	}
	compareGolden(t, filepath.Join("testdata", "golden_follower.txt"), got)
}

// goldenFollowerObservables runs the seeded Fig 9-style follower job on
// fs and renders every externally observable byte into the fixture
// format.
func goldenFollowerObservables(t *testing.T, fs *dfs.FS) string {
	t.Helper()
	lines := make([]string, 3000)
	for i := range lines {
		// Seeded Fig 9 shape: skewed users, some zero followers for the
		// filter to drop. Pure arithmetic, no RNG library to drift.
		lines[i] = fmt.Sprintf("%d\t%d", i%97, (i*31+7)%500)
	}
	p := plan(t, followerSrc)
	opts := CompileOptions{Points: digestPoints(t, p, "ne", "counts"), NumReduces: 3}
	tr := runOn(t, fs, followerSrc, map[string][]string{"in/edges": lines}, opts,
		func(e *Engine) { e.DigestChunk = 200 })

	var b strings.Builder
	b.WriteString("# golden fixture: seeded follower job observables\n")
	b.WriteString("## digest reports (emission order)\n")
	for _, r := range tr.reports {
		fmt.Fprintf(&b, "%s replica=%d final=%v records=%d sum=%s\n",
			r.Key.String(), r.Replica, r.Final, r.Records, hex.EncodeToString(r.Sum[:]))
	}
	b.WriteString("## output bytes (part-file order)\n")
	outLines, err := tr.fs.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range outLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	b.WriteString("## engine metrics\n")
	fmt.Fprintf(&b, "%+v\n", tr.eng.Metrics)
	return b.String()
}

// compareGolden diffs got against the committed fixture, reporting the
// first divergent line.
func compareGolden(t *testing.T, golden, got string) {
	t.Helper()
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read fixture (CLUSTERBFT_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
				break
			}
		}
		t.Fatalf("observable bytes diverged from committed fixture (%d vs %d bytes)",
			len(got), len(want))
	}
}
