package analyze

import (
	"strings"
	"testing"

	"clusterbft/internal/cluster"
)

func ids(ss ...string) []cluster.NodeID {
	out := make([]cluster.NodeID, len(ss))
	for i, s := range ss {
		out[i] = cluster.NodeID(s)
	}
	return out
}

func TestAuditTrailRecordsWithClock(t *testing.T) {
	now := int64(0)
	a := NewAuditTrail(func() int64 { return now })
	now = 10
	a.Add(AuditMismatch, ids("n2"), "digest deviated at point 3")
	now = 20
	a.AddRemoved(AuditIntersect, ids("n2"), ids("n1", "n3"), "evidence {n1 n2 n3} ∩ {n2 n4}")
	ev := a.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].T != 10 || ev[0].Kind != AuditMismatch {
		t.Errorf("event 0 = %+v", ev[0])
	}
	if ev[1].T != 20 || len(ev[1].Removed) != 2 {
		t.Errorf("event 1 = %+v", ev[1])
	}
}

func TestAuditTrailNilSafe(t *testing.T) {
	var a *AuditTrail
	a.Add(AuditMismatch, ids("n1"), "x")
	a.AddRemoved(AuditIntersect, nil, nil, "")
	if a.Len() != 0 || a.Events() != nil || a.Dropped() != 0 || a.Render(0) != "" {
		t.Error("nil trail must be inert")
	}
}

func TestAuditTrailBounded(t *testing.T) {
	a := NewAuditTrail(nil)
	a.max = 3
	for i := 0; i < 5; i++ {
		a.Add(AuditScore, nil, string(rune('a'+i)))
	}
	ev := a.Events()
	if len(ev) != 3 || a.Dropped() != 2 {
		t.Fatalf("len = %d dropped = %d, want 3/2", len(ev), a.Dropped())
	}
	if ev[0].Detail != "c" || ev[2].Detail != "e" {
		t.Errorf("retained window = %v..%v, want c..e", ev[0].Detail, ev[2].Detail)
	}
}

func TestRenderTimeline(t *testing.T) {
	a := NewAuditTrail(nil)
	a.Add(AuditMismatch, ids("n2"), "point 3")
	a.AddRemoved(AuditIntersect, ids("n2"), ids("n1"), "")
	a.Add(AuditConviction, ids("n2"), "singleton in D")
	out := a.Render(0)
	for _, want := range []string{"mismatch", "intersect", "exonerated=[n1]", "conviction", "(point 3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Elision header when capped below the event count.
	capped := a.Render(1)
	if !strings.Contains(capped, "2 earlier events elided") {
		t.Errorf("capped timeline missing elision header:\n%s", capped)
	}
	if !strings.Contains(capped, "conviction") || strings.Contains(capped, "mismatch") {
		t.Errorf("capped timeline must keep only the most recent events:\n%s", capped)
	}
}

func TestSortedIDs(t *testing.T) {
	in := ids("n3", "n1", "n2")
	got := SortedIDs(in)
	if got[0] != "n1" || got[1] != "n2" || got[2] != "n3" {
		t.Errorf("SortedIDs = %v", got)
	}
	if in[0] != "n3" {
		t.Error("SortedIDs must not mutate its input")
	}
}
