package experiments

import (
	"fmt"

	"clusterbft/internal/bft"
	"clusterbft/internal/core"
	"clusterbft/internal/workload"
)

// Fig14Cell is one (f, d, system) latency.
type Fig14Cell struct {
	EngineUs  int64 // data-plane latency (replicated job execution)
	ControlUs int64 // control-tier latency: BFT-ordered digest verdicts
	Reports   int64 // digests processed
}

// TotalUs is the end-to-end latency: the data plane plus the replicated
// request handler's ordering work for every digest verdict.
func (c Fig14Cell) TotalUs() int64 { return c.EngineUs + c.ControlUs }

// Fig14Row is one (f, d) configuration across the three systems.
type Fig14Row struct {
	F       int
	D       int       // digest granularity: records per digest
	Full    Fig14Cell // digest at final output only, 3f+1 replicas
	Cluster Fig14Cell // ClusterBFT with 2 verification points
	Indiv   Fig14Cell // digest at every data-flow vertex
}

// Fig14Result reproduces "Computing average weather temperatures":
// latency for f ∈ {1,2,3} × d ∈ {10k, 1k, 100}, with the request handler
// itself replicated over 3f+1 PBFT replicas (§6.4). The paper reports
// ClusterBFT within 10–18% of Full even at high approximation accuracy,
// with Individual growing much faster.
type Fig14Result struct {
	Rows []Fig14Row
	// VerifyBatch is how many digest verdicts the replicated request
	// handler orders per consensus instance.
	VerifyBatch int
}

// Render prints one row per (f, d).
func (r *Fig14Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d,%s", row.F, dLabel(row.D)),
			seconds(row.Full.TotalUs()),
			seconds(row.Cluster.TotalUs()),
			overheadPct(row.Cluster.TotalUs(), row.Full.TotalUs()),
			seconds(row.Indiv.TotalUs()),
			overheadPct(row.Indiv.TotalUs(), row.Full.TotalUs()),
		})
	}
	return "Fig 14: weather average temperatures (BFT-replicated control tier)\n" +
		table([]string{"f,d", "full(s)", "clusterbft(s)", "vs full", "individual(s)", "vs full"}, rows)
}

func dLabel(d int) string {
	if d >= 1000 {
		return fmt.Sprintf("%dk", d/1000)
	}
	return fmt.Sprintf("%d", d)
}

// Fig14 runs the sweep.
func Fig14(sc Scale) (*Fig14Result, error) {
	data := workload.Weather(sc.WeatherRows, sc.WeatherStations, sc.Seed+7)
	res := &Fig14Result{VerifyBatch: 20}
	for _, f := range []int{1, 2, 3} {
		for _, d := range []int{10_000, 1_000, 100} {
			row := Fig14Row{F: f, D: d}
			var err error
			if row.Full, err = fig14Run(sc, data, f, d, res.VerifyBatch, core.Config{VerifyFinalOnly: true}); err != nil {
				return nil, fmt.Errorf("fig14 full f=%d d=%d: %w", f, d, err)
			}
			// ClusterBFT's two §6.4 verification points: the first
			// grouping operator (digesting the full pre-shuffle stream)
			// and the per-station averages.
			if row.Cluster, err = fig14Run(sc, data, f, d, res.VerifyBatch, core.Config{ForcePointAliases: []string{"bystation", "avgs"}}); err != nil {
				return nil, fmt.Errorf("fig14 clusterbft f=%d d=%d: %w", f, d, err)
			}
			if row.Indiv, err = fig14Run(sc, data, f, d, res.VerifyBatch, core.Config{Points: -1}); err != nil {
				return nil, fmt.Errorf("fig14 individual f=%d d=%d: %w", f, d, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func fig14Run(sc Scale, data []string, f, d, batch int, variant core.Config) (Fig14Cell, error) {
	cfg := core.Config{
		F:                 f,
		R:                 3*f + 1,
		Points:            variant.Points,
		ForcePointAliases: variant.ForcePointAliases,
		VerifyFinalOnly:   variant.VerifyFinalOnly,
		DigestChunk:       d,
		NumReduces:        2,
		TimeoutUs:         3_600_000_000,
		Offline:           true,
	}
	r := newRig(sc, workload.WeatherPath, data)
	result, err := r.controller(cfg).Run(workload.WeatherScript)
	if err != nil {
		return Fig14Cell{}, err
	}
	cell := Fig14Cell{EngineUs: result.LatencyUs, Reports: result.DigestReports}
	cell.ControlUs, err = controlTierTime(f, result.DigestReports, batch)
	if err != nil {
		return Fig14Cell{}, err
	}
	return cell, nil
}

// verdictSM is the request handler's replicated state: a count of agreed
// digest verdicts (the actual matching already happened in the matcher;
// consensus orders and makes the verdicts durable across 3f+1 handlers).
type verdictSM struct{ n int }

func (s *verdictSM) Apply(op []byte) []byte {
	s.n++
	return []byte(fmt.Sprintf("ok-%d", s.n))
}

// controlTierTime measures the virtual time a 3f+1 PBFT request-handler
// group needs to order all digest verdicts, batch-at-a-time. Workers
// stream digests to every handler replica (the paper's multi-coordinator
// Penny, §5.2); each batch of `batch` verdicts costs one consensus
// instance.
func controlTierTime(f int, reports int64, batch int) (int64, error) {
	if reports == 0 {
		return 0, nil
	}
	ops := int((reports + int64(batch) - 1) / int64(batch))
	g := bft.NewGroup(f, func(int) bft.StateMachine { return &verdictSM{} })
	start := g.Net.Now()
	for i := 0; i < ops; i++ {
		if _, _, err := g.Invoke([]byte(fmt.Sprintf("verdict-batch-%d", i))); err != nil {
			return 0, err
		}
	}
	return g.Net.Now() - start, nil
}
