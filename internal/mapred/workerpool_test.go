package mapred

import (
	"reflect"
	"strings"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/pig"
)

// The compute-eager / commit-deterministic contract: every virtual-time
// observable — job latency, metrics counters, output bytes, digest
// report stream — is byte-identical whatever the worker pool size,
// because bodies only read state fixed at dispatch and their effects
// commit in virtual-time order.

type poolSnap struct {
	latency int64
	metrics Metrics
	out     []string
	reports []digest.Report
}

func runWithWorkers(t *testing.T, workers int) poolSnap {
	t.Helper()
	p, err := pig.Parse(followerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := CompileOptions{Points: digestPoints(t, p, "counts"), NumReduces: 3}
	in := map[string][]string{"in/edges": geomEdges(12000)}
	tr := run(t, followerSrc, in, opts, func(e *Engine) {
		e.Workers = workers
		e.Speculation = true
	})
	js := tr.eng.Job(tr.jobs[0].ID)
	if !js.Done {
		t.Fatalf("workers=%d: job incomplete", workers)
	}
	return poolSnap{
		latency: js.Latency(),
		metrics: tr.eng.Metrics,
		out:     tr.output(t, "out/counts"),
		reports: tr.reports,
	}
}

func TestWorkerPoolSizesProduceIdenticalResults(t *testing.T) {
	base := runWithWorkers(t, 1)
	if len(base.out) == 0 || len(base.reports) == 0 {
		t.Fatal("reference run produced no output or digests")
	}
	for _, w := range []int{2, 4, 8, 0} {
		got := runWithWorkers(t, w)
		if got.latency != base.latency {
			t.Errorf("workers=%d: latency %d != %d", w, got.latency, base.latency)
		}
		if got.metrics != base.metrics {
			t.Errorf("workers=%d: metrics differ:\n%+v\n%+v", w, got.metrics, base.metrics)
		}
		if !reflect.DeepEqual(got.out, base.out) {
			t.Errorf("workers=%d: output bytes differ", w)
		}
		if !reflect.DeepEqual(got.reports, base.reports) {
			t.Errorf("workers=%d: digest report stream differs", w)
		}
	}
}

func TestWorkerPoolWithFaultsStaysDeterministic(t *testing.T) {
	// Fault draws happen at dispatch on the simulation goroutine, so a
	// commission + straggler mix must also be pool-size invariant.
	runFaulty := func(workers int) (Metrics, []digest.Report) {
		fs := dfs.New()
		fs.Append("in/edges", geomEdges(9000)...)
		jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(fs, cluster.New(5, 2), nil, DefaultCostModel())
		eng.Workers = workers
		eng.Speculation = true
		if err := eng.Cluster.SetAdversary("node-001", cluster.FaultCommission, 1.0, 11); err != nil {
			t.Fatal(err)
		}
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 5)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[3].Adversary = adv
		var reports []digest.Report
		eng.DigestSink = func(r digest.Report) { reports = append(reports, r) }
		if _, err := eng.Submit(jobs[0]); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return eng.Metrics, reports
	}
	m1, r1 := runFaulty(1)
	m8, r8 := runFaulty(8)
	if m1 != m8 {
		t.Errorf("metrics differ between pool sizes under faults:\n%+v\n%+v", m1, m8)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Error("digest streams differ between pool sizes under faults")
	}
}

// splitHome regression: placement must be deterministic, in-range, and
// free of the signed-overflow hazard the old hand-rolled hash had.

func TestSplitHomeDeterministicAndInRange(t *testing.T) {
	mk := func() *Engine {
		return NewEngine(dfs.New(), cluster.New(7, 2), nil, DefaultCostModel())
	}
	a, b := mk(), mk()
	valid := map[cluster.NodeID]bool{}
	for _, n := range a.Cluster.Nodes() {
		valid[n.ID] = true
	}
	paths := []string{
		"",
		"in/edges",
		"x/run0-c0-a0/r1/out/counts",
		strings.Repeat("\xff", 64), // high bytes drove the old hash negative
		strings.Repeat("z", 300),
	}
	for _, p := range paths {
		for split := 0; split < 40; split++ {
			h := a.splitHome(p, split)
			if !valid[h] {
				t.Fatalf("splitHome(%q, %d) = %q not a cluster node", p, split, h)
			}
			if h != b.splitHome(p, split) {
				t.Fatalf("splitHome(%q, %d) differs across engines", p, split)
			}
		}
	}
	// Splits of one file must spread over the cluster, not pile onto a
	// single node (locality schedulers would serialize the job).
	seen := map[cluster.NodeID]bool{}
	for split := 0; split < 40; split++ {
		seen[a.splitHome("in/edges", split)] = true
	}
	if len(seen) < 3 {
		t.Errorf("40 splits landed on only %d node(s)", len(seen))
	}
	// Empty cluster degrades to the empty ID instead of dividing by zero.
	if got := NewEngine(dfs.New(), cluster.New(0, 0), nil, DefaultCostModel()).splitHome("p", 0); got != "" {
		t.Errorf("empty cluster splitHome = %q, want \"\"", got)
	}
}
