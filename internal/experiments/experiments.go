// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the Twitter digest-overhead measurements (Figs 9 and
// 10), the airline Byzantine-failure study (Table 3), the fault-isolation
// simulation (Figs 11–13) and the weather approximation-accuracy sweep
// with a BFT-replicated control tier (Fig 14). Each function returns a
// structured result plus a Render method printing rows shaped like the
// paper's.
package experiments

import (
	"fmt"
	"strings"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// Scale sets workload sizes so the same experiments run quickly in tests
// and at full size in benches.
type Scale struct {
	TwitterEdges    int
	TwitterUsers    int
	AirlineRows     int
	WeatherRows     int
	WeatherStations int
	Nodes           int // untrusted tier size; paper: 32
	Slots           int
	Trials          int // fault-isolation trials per configuration
	SimTime         int // fault-isolation simulated ticks
	Seed            int64
	// DisableCombine turns off map-side combining in every compiled job
	// (cmd/experiments -combine=off), for A/B shuffle-volume comparisons.
	DisableCombine bool
	// VerifyPolicy, when non-zero, is applied to every controller the
	// experiments build that does not pin a policy itself
	// (cmd/experiments -verify-policy), so any figure can be reproduced
	// under quiz/deferred verification.
	VerifyPolicy core.Policy
	// Storage configures the DFS block data plane of every rig
	// (cmd/experiments -block-size/-mem-budget/-spill-dir/-compress).
	// Observables are identical at any setting; only memory use and
	// wall-clock change.
	Storage dfs.Options
	// Checkpoint enables checkpoint-granular recovery plus quantile
	// straggler re-launch in every controller the experiments build
	// (cmd/experiments -checkpoint). Fault-free figures are unaffected
	// beyond checkpoint-write work; the recovery experiment always
	// reports both paths regardless of this setting.
	Checkpoint bool
	// Shards splits every controller's verdict pipeline across this many
	// shard workers (cmd/experiments -shards). Results are identical at
	// any setting — the merge layer reaches the inline verdict state —
	// so any figure can be reproduced under the sharded control tier.
	Shards int
}

// Small returns a scale suitable for unit tests (sub-second runs).
func Small() Scale {
	return Scale{
		TwitterEdges:    20_000,
		TwitterUsers:    800,
		AirlineRows:     12_000,
		WeatherRows:     20_000,
		WeatherStations: 100,
		Nodes:           16,
		Slots:           3,
		Trials:          3,
		SimTime:         150,
		Seed:            1,
	}
}

// Paper approximates the paper's setup: 32 untrusted nodes, hundreds of
// thousands of records, more trials.
func Paper() Scale {
	return Scale{
		TwitterEdges:    300_000,
		TwitterUsers:    10_000,
		AirlineRows:     200_000,
		WeatherRows:     150_000,
		WeatherStations: 400,
		Nodes:           32,
		Slots:           3,
		Trials:          8,
		SimTime:         400,
		Seed:            1,
	}
}

// Observe, when non-nil, is applied to every engine a rig constructs.
// cmd/experiments sets it to attach a shared tracer and metrics registry
// without threading observability through each figure's signature; the
// registry's register-or-get semantics make the sequential rigs
// accumulate into the same counters.
var Observe func(*mapred.Engine)

// rig is one disposable measurement setup: fresh storage, cluster and
// engine over a seeded dataset.
type rig struct {
	fs             *dfs.FS
	cl             *cluster.Cluster
	eng            *mapred.Engine
	disableCombine bool
	verifyPolicy   core.Policy
	checkpoint     bool
	shards         int
}

func newRig(sc Scale, path string, lines []string) *rig {
	fs := dfs.NewWith(sc.Storage)
	fs.Append(path, lines...)
	cl := cluster.New(sc.Nodes, sc.Slots)
	eng := mapred.NewEngine(fs, cl, nil, expCostModel())
	if Observe != nil {
		Observe(eng)
	}
	if sc.Checkpoint {
		eng.Speculation = true
		eng.SpecQuantile = 0.95
	}
	return &rig{fs: fs, cl: cl, eng: eng, disableCombine: sc.DisableCombine, verifyPolicy: sc.VerifyPolicy, checkpoint: sc.Checkpoint, shards: sc.Shards}
}

// expCostModel puts the experiments in the paper's operating regime:
// jobs long enough that per-record processing dominates task startup
// (the paper's runs take minutes on GB inputs, so Hadoop's startup cost
// is amortized away). Digesting costs 20% of map-side record handling,
// which reproduces the single-digit-percent overheads of §6.1 for one
// full-stream verification point.
func expCostModel() mapred.CostModel {
	return mapred.CostModel{
		TaskStartupUs:   400_000,
		MapRecordUs:     20,
		ReduceRecordUs:  30,
		ShuffleRecordUs: 4,
		CombineRecordUs: 2,
		DigestRecordUs:  4,
		HeartbeatUs:     100_000,
		SplitRecords:    10_000,
	}
}

// controller builds a fresh controller with an overlap scheduler.
func (r *rig) controller(cfg core.Config) *core.Controller {
	cfg.DisableCombine = cfg.DisableCombine || r.disableCombine
	cfg.Checkpoint = cfg.Checkpoint || r.checkpoint
	if cfg.VerifyPolicy == 0 {
		cfg.VerifyPolicy = r.verifyPolicy
	}
	if cfg.Shards == 0 {
		cfg.Shards = r.shards
	}
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	r.eng.Sched = core.NewOverlapScheduler(susp)
	return core.NewController(r.eng, cfg, susp, nil)
}

// seconds renders virtual microseconds as seconds with two decimals.
func seconds(us int64) string { return fmt.Sprintf("%7.2f", float64(us)/1e6) }

// ratio renders a multiplier like the paper's "1.6x".
func ratio(v, base int64) string {
	if base == 0 {
		return "   -"
	}
	return fmt.Sprintf("%.2fx", float64(v)/float64(base))
}

// overheadPct renders percentage overhead over a baseline.
func overheadPct(v, base int64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(v)/float64(base)-1))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", width[i]))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
