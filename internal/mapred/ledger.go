package mapred

import "sync"

// CostLedger attributes every charged CPU microsecond of a run to
// exactly one bucket, answering "where did the 1+ε overhead go":
//
//   - committed: the winner replica's committed task work — the CPU a
//     trust-the-cloud single run would also have paid.
//   - replica_waste: attempts whose results never served anyone — raced
//     backups, attempts torn down by kills or crashes, hung attempts.
//   - verify (split by mode full/quiz/deferred): CPU bought purely for
//     verification — the r-1 non-winner replicas of a full-r sub-graph,
//     and trusted-tier quiz re-executions.
//   - recovery_rerun: every microsecond spent inside sub-graph attempts
//     that were later superseded by a retry/restart/escalation, plus
//     attempts of failed sub-graphs.
//
// The engine reports resolutions (committed / lost / quiz) at the exact
// sites that already maintain the pinned committed+lost == CPUTimeUs
// split, so the four buckets sum to Metrics.CPUTimeUs once a run has
// drained (the in_flight residue — charged at dispatch settle but not
// yet resolved at completion — is zero at quiesce). The controller
// reports dispositions (Launch / Verified / Supersede); attribution of
// a sub-graph's accumulated CPU happens when its disposition is known,
// so resolution order never races the verdict.
//
// All methods are nil-safe no-ops and safe for concurrent use, so
// introspection handlers can read buckets while the simulation runs.
type CostLedger struct {
	mu       sync.Mutex
	sids     map[string]*sidCost
	settled  CostBuckets
	folded   map[string]string // sid -> final state, for late resolutions
	foldedQ  []string          // FIFO pruning of folded
	maxFolds int
}

// Verification-mode labels used by the verify bucket split.
const (
	CostModeFull     = "full"
	CostModeQuiz     = "quiz"
	CostModeDeferred = "deferred"
)

// sid lifecycle states inside the ledger.
const (
	sidLive       = "live"
	sidVerified   = "verified"
	sidSuperseded = "superseded"
)

// sidCost accumulates one sub-graph attempt group's CPU until its
// disposition is final.
type sidCost struct {
	mode   string // full, quiz, deferred ("" until Launch)
	state  string
	winner int
	perRep map[int]*repCost
	quizUs int64
}

// repCost is one replica's resolved CPU within a sub-graph.
type repCost struct {
	committedUs int64
	lostUs      int64
}

// CostBuckets is the JSON-ready attribution summary.
type CostBuckets struct {
	CommittedUs      int64 `json:"committed_us"`
	ReplicaWasteUs   int64 `json:"replica_waste_us"`
	VerifyFullUs     int64 `json:"verify_full_us"`
	VerifyQuizUs     int64 `json:"verify_quiz_us"`
	VerifyDeferredUs int64 `json:"verify_deferred_us"`
	RecoveryRerunUs  int64 `json:"recovery_rerun_us"`
}

// TotalUs sums every bucket.
func (b CostBuckets) TotalUs() int64 {
	return b.CommittedUs + b.ReplicaWasteUs + b.VerifyUs() + b.RecoveryRerunUs
}

// VerifyUs sums the three verification-mode buckets.
func (b CostBuckets) VerifyUs() int64 {
	return b.VerifyFullUs + b.VerifyQuizUs + b.VerifyDeferredUs
}

func (b *CostBuckets) add(o CostBuckets) {
	b.CommittedUs += o.CommittedUs
	b.ReplicaWasteUs += o.ReplicaWasteUs
	b.VerifyFullUs += o.VerifyFullUs
	b.VerifyQuizUs += o.VerifyQuizUs
	b.VerifyDeferredUs += o.VerifyDeferredUs
	b.RecoveryRerunUs += o.RecoveryRerunUs
}

// NewCostLedger returns an empty ledger.
func NewCostLedger() *CostLedger {
	return &CostLedger{
		sids:     make(map[string]*sidCost),
		folded:   make(map[string]string),
		maxFolds: 4096,
	}
}

// sid returns (creating if needed) the live entry for id. Caller holds
// mu. A sid that was already folded returns nil — late arrivals are
// routed straight to settled buckets by the caller.
func (l *CostLedger) sid(id string) *sidCost {
	if _, gone := l.folded[id]; gone {
		return nil
	}
	s := l.sids[id]
	if s == nil {
		s = &sidCost{state: sidLive, winner: -1, perRep: make(map[int]*repCost)}
		l.sids[id] = s
	}
	return s
}

func (s *sidCost) rep(replica int) *repCost {
	r := s.perRep[replica]
	if r == nil {
		r = &repCost{}
		s.perRep[replica] = r
	}
	return r
}

// Launch records that the controller launched (or re-launched) sid
// under the given verification mode.
func (l *CostLedger) Launch(sid, mode string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.mode = mode
	}
	l.mu.Unlock()
}

// Verified records the sub-graph's verdict: replica winner's committed
// work is real output, everything else the sid spent is verification
// redundancy or waste.
func (l *CostLedger) Verified(sid string, winner int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.state = sidVerified
		s.winner = winner
	}
	l.mu.Unlock()
}

// Supersede marks sid's entire spend as recovery re-run cost: a retry,
// restart, escalation, or sub-graph failure replaced it.
func (l *CostLedger) Supersede(sid string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.state = sidSuperseded
	}
	l.mu.Unlock()
}

// ResolveCommitted charges durUs of committed task work to (sid,
// replica). The engine calls it where it moves CPU into the committed
// half of the pinned committed/lost split.
func (l *CostLedger) ResolveCommitted(sid string, replica int, durUs int64) {
	if l == nil || durUs == 0 {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.rep(replica).committedUs += durUs
	} else {
		l.settled.add(routeLate(l.folded[sid], false, durUs))
	}
	l.mu.Unlock()
}

// ResolveLost charges durUs of lost task work (hung, raced, torn down)
// to (sid, replica).
func (l *CostLedger) ResolveLost(sid string, replica int, durUs int64) {
	if l == nil || durUs == 0 {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.rep(replica).lostUs += durUs
	} else {
		l.settled.add(routeLate(l.folded[sid], true, durUs))
	}
	l.mu.Unlock()
}

// Quiz charges durUs of trusted-tier re-execution to sid.
func (l *CostLedger) Quiz(sid string, durUs int64) {
	if l == nil || durUs == 0 {
		return
	}
	l.mu.Lock()
	if s := l.sid(sid); s != nil {
		s.quizUs += durUs
	} else {
		l.settled.add(routeLate(l.folded[sid], false, durUs))
	}
	l.mu.Unlock()
}

// routeLate attributes CPU that arrives after its sid was folded. Only
// superseded sids can legally receive late work (their dead attempts'
// completion events fire after the replacement verified and the stale
// sid was forgotten), so everything late lands in recovery_rerun; a
// defensive fallback keeps the sum invariant for unknown sids.
func routeLate(state string, lost bool, durUs int64) CostBuckets {
	switch state {
	case sidSuperseded:
		return CostBuckets{RecoveryRerunUs: durUs}
	case sidVerified:
		if lost {
			return CostBuckets{ReplicaWasteUs: durUs}
		}
		return CostBuckets{CommittedUs: durUs}
	default:
		if lost {
			return CostBuckets{ReplicaWasteUs: durUs}
		}
		return CostBuckets{CommittedUs: durUs}
	}
}

// route attributes one sid's accumulated CPU according to its state.
func (s *sidCost) route() CostBuckets {
	var b CostBuckets
	if s.state == sidSuperseded {
		for _, r := range s.perRep {
			b.RecoveryRerunUs += r.committedUs + r.lostUs
		}
		b.RecoveryRerunUs += s.quizUs
		return b
	}
	// Live or verified: lost work is replica waste, quiz CPU is
	// verification spend, committed work splits winner vs redundancy.
	// A live sid has no winner yet; its committed work provisionally
	// counts as committed (plain engine runs with sid "" stay here
	// forever, and a controller sid is folded only after its verdict).
	verify := &b.VerifyFullUs
	switch s.mode {
	case CostModeQuiz:
		verify = &b.VerifyQuizUs
	case CostModeDeferred:
		verify = &b.VerifyDeferredUs
	}
	*verify += s.quizUs
	for rep, r := range s.perRep {
		b.ReplicaWasteUs += r.lostUs
		if s.state == sidVerified && rep != s.winner {
			*verify += r.committedUs
		} else {
			b.CommittedUs += r.committedUs
		}
	}
	return b
}

// Fold settles sid's attribution into the cumulative buckets and drops
// its per-replica state; the engine calls it from ForgetSID. A sid that
// is still live when folded is treated as superseded — the only caller
// folding live sids is end-of-run teardown of failed work.
func (l *CostLedger) Fold(sid string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	s := l.sids[sid]
	if s == nil {
		l.mu.Unlock()
		return
	}
	if s.state == sidLive {
		s.state = sidSuperseded
	}
	l.settled.add(s.route())
	delete(l.sids, sid)
	if len(l.foldedQ) >= l.maxFolds {
		delete(l.folded, l.foldedQ[0])
		l.foldedQ = l.foldedQ[1:]
	}
	l.folded[sid] = s.state
	l.foldedQ = append(l.foldedQ, sid)
	l.mu.Unlock()
}

// DropFolds clears the folded-sid tombstones. Tombstones exist only to
// route charges that arrive after ForgetSID — once a run has fully
// drained no late resolution can fire, so the controller calls this at
// run teardown to keep the maps at baseline across sequential runs
// instead of accumulating up to maxFolds entries forever.
func (l *CostLedger) DropFolds() {
	if l == nil {
		return
	}
	l.mu.Lock()
	clear(l.folded)
	l.foldedQ = l.foldedQ[:0]
	l.mu.Unlock()
}

// Sizes reports the ledger's live-sid and folded-tombstone map sizes;
// leak regression tests pin both to baseline after sequential runs.
func (l *CostLedger) Sizes() (live, folded int) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sids), len(l.folded)
}

// Buckets returns the attribution of everything resolved so far:
// settled (folded) spend plus the live sids routed by their current
// state.
func (l *CostLedger) Buckets() CostBuckets {
	if l == nil {
		return CostBuckets{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.settled
	for _, s := range l.sids {
		b.add(s.route())
	}
	return b
}

// SIDBuckets returns one live sub-graph's attribution so far.
func (l *CostLedger) SIDBuckets(sid string) (CostBuckets, bool) {
	if l == nil {
		return CostBuckets{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.sids[sid]
	if s == nil {
		return CostBuckets{}, false
	}
	return s.route(), true
}

// TotalUs returns the sum of every bucket — equal to Metrics.CPUTimeUs
// once the engine has drained.
func (l *CostLedger) TotalUs() int64 {
	return l.Buckets().TotalUs()
}
