package core

import (
	"clusterbft/internal/mapred"
	"strings"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/digest"
)

// runPolicy executes weatherScript on a fresh honest harness under one
// verification policy and returns the result plus the harness.
func runPolicy(t *testing.T, p Policy) (*harness, *Result) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.VerifyPolicy = p
	h := newHarness(t, 16, 3, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatalf("policy %v: %v", p, err)
	}
	if !res.Verified {
		t.Fatalf("policy %v: run not verified", p)
	}
	return h, res
}

// TestPolicyFaultFreeEquivalence pins the tentpole's two fault-free
// claims: every policy produces byte-identical verified STORE output,
// and quiz/deferred spend at least 2x less compute than full-r.
func TestPolicyFaultFreeEquivalence(t *testing.T) {
	hFull, resFull := runPolicy(t, PolicyFull)
	want := strings.Join(hFull.outputLines(t, resFull, "out/counts"), "|")
	fullCPU := resFull.Metrics.CPUTimeUs
	if hFull.eng.QuizTasks != 0 {
		t.Errorf("full-r ran %d quizzes; wanted none", hFull.eng.QuizTasks)
	}

	for _, p := range []Policy{PolicyQuiz, PolicyDeferred} {
		h, res := runPolicy(t, p)
		if got := strings.Join(h.outputLines(t, res, "out/counts"), "|"); got != want {
			t.Errorf("policy %v output differs from full-r:\n%s\nvs\n%s", p, got, want)
		}
		if h.eng.QuizTasks == 0 {
			t.Errorf("policy %v ran no quiz tasks", p)
		}
		if cpu := res.Metrics.CPUTimeUs; cpu*2 > fullCPU {
			t.Errorf("policy %v CPU %d not >= 2x cheaper than full-r %d", p, cpu, fullCPU)
		}
		if res.FaultyReplicas != 0 || len(res.Suspects) != 0 {
			t.Errorf("policy %v flagged faults on an honest cluster: %+v", p, res)
		}
	}
}

// commissionHarness builds a cluster whose replica-0 map tasks are all
// corrupted via the engine's TaskHook. Unlike a node-level adversary,
// this guarantees the primary of a quiz/deferred attempt (always replica
// 0) computes wrongly regardless of task placement — and keeps doing so
// on escalated attempts, where full replication must outvote it.
func commissionHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := newHarness(t, 4, 3, cfg)
	h.eng.TaskHook = func(_ cluster.NodeID, tk *mapred.Task) mapred.TaskFault {
		if tk.Kind == mapred.MapTask && tk.Job.Spec.Replica == 0 {
			return mapred.TaskFault{Corrupt: cluster.Corrupt}
		}
		return mapred.TaskFault{}
	}
	return h
}

// TestQuizDetectsCommission: under PolicyQuiz a commission-faulty primary
// is caught by trusted re-execution, escalated to full replication, and
// the run still ends verified with honest output.
func TestQuizDetectsCommission(t *testing.T) {
	for _, p := range []Policy{PolicyQuiz, PolicyDeferred} {
		cfg := DefaultConfig()
		cfg.VerifyPolicy = p
		cfg.QuizFraction = 1
		h := commissionHarness(t, cfg)
		var escalations, retries int
		h.ctrl.OnRecovery = func(action string, _, _ int) {
			switch action {
			case "escalate":
				escalations++
			case "retry", "restart":
				retries++
			}
		}
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("policy %v: run not verified after escalation", p)
		}
		if escalations == 0 {
			t.Errorf("policy %v: commission fault never escalated", p)
		}
		if retries == 0 {
			t.Errorf("policy %v: escalation did not re-initiate the sub-graph", p)
		}
		if res.FaultyReplicas == 0 {
			t.Errorf("policy %v: no replica marked faulty", p)
		}

		// The verified output must equal an honest full-r run's.
		hHonest, resHonest := runPolicy(t, PolicyFull)
		want := strings.Join(hHonest.outputLines(t, resHonest, "out/counts"), "|")
		if got := strings.Join(h.outputLines(t, res, "out/counts"), "|"); got != want {
			t.Errorf("policy %v verified corrupt output:\n%s\nvs\n%s", p, got, want)
		}
	}
}

// TestAutoPolicySelection pins decidePolicy's mapping from suspicion
// history to policy: clean -> deferred, Low -> quiz, Med/High -> full.
func TestAutoPolicySelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VerifyPolicy = PolicyAuto
	h := newHarness(t, 4, 2, cfg)
	if got := h.ctrl.decidePolicy(); got != PolicyDeferred {
		t.Errorf("clean history: got %v, want deferred", got)
	}
	// One fault over four jobs: s = 0.25 -> Low -> quiz.
	nodes := []cluster.NodeID{"node-000"}
	for i := 0; i < 4; i++ {
		h.ctrl.Susp.RecordJob(nodes)
	}
	h.ctrl.Susp.RecordFault(nodes)
	if got := h.ctrl.decidePolicy(); got != PolicyQuiz {
		t.Errorf("low suspicion: got %v, want quiz", got)
	}
	// Two faults over four jobs: s = 0.5 -> Med -> full.
	h.ctrl.Susp.RecordFault(nodes)
	if got := h.ctrl.decidePolicy(); got != PolicyFull {
		t.Errorf("medium suspicion: got %v, want full", got)
	}

	// End to end: a clean auto run picks the cheap path for every
	// sub-graph and stays byte-identical with full-r.
	hAuto, resAuto := runPolicy(t, PolicyAuto)
	for _, cs := range hAuto.ctrl.clusters {
		if cs.policy != PolicyDeferred {
			t.Errorf("auto on clean history resolved c%d to %v, want deferred", cs.id, cs.policy)
		}
	}
	hFull, resFull := runPolicy(t, PolicyFull)
	want := strings.Join(hFull.outputLines(t, resFull, "out/counts"), "|")
	if got := strings.Join(hAuto.outputLines(t, resAuto, "out/counts"), "|"); got != want {
		t.Errorf("auto output differs from full-r")
	}
}

// TestChoosePointsUnknownAlias: a forced verification point naming no
// relation must fail the run loudly, naming the alias, instead of
// silently verifying less than the client asked for.
func TestChoosePointsUnknownAlias(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ForcePointAliases = []string{"avgs", "nosuchrelation"}
	h := newHarness(t, 4, 2, cfg)
	_, err := h.ctrl.Run(weatherScript)
	if err == nil {
		t.Fatal("unknown forced alias must error")
	}
	if !strings.Contains(err.Error(), "nosuchrelation") {
		t.Errorf("error does not name the bad alias: %v", err)
	}
}

// TestStaleDigestDropped is the satellite-2 regression: a digest report
// from a superseded attempt (a straggler racing its cancellation after a
// retry) must be dropped before it touches the matcher, not stored and
// counted.
func TestStaleDigestDropped(t *testing.T) {
	h := newHarness(t, 4, 2, DefaultConfig())
	c := h.ctrl
	cs := &clusterState{sid: "run1-c0-a1"} // already retried once
	c.sidIndex = map[string]*clusterState{
		"run1-c0-a0": cs, // stale sid still indexed until verification
		"run1-c0-a1": cs,
	}
	c.onDigest(digest.Report{Key: digest.Key{SID: "run1-c0-a0", Point: 1, Task: "m0-000"}})
	if c.reports != 0 {
		t.Errorf("stale report counted: reports=%d", c.reports)
	}
	if n := c.matcher.SIDs(); n != 0 {
		t.Errorf("stale report stored in matcher: %d sids", n)
	}
	// A report for the live attempt still lands.
	c.onDigest(digest.Report{Key: digest.Key{SID: "run1-c0-a1", Point: 1, Task: "m0-000"}})
	if c.reports != 1 || c.matcher.SIDs() != 1 {
		t.Errorf("live report dropped: reports=%d sids=%d", c.reports, c.matcher.SIDs())
	}
}

// TestControllerLifecycleBounded is the satellite-1/3/5 regression: one
// controller serving a stream of Runs — with faults in the middle run —
// must not accumulate matcher digests, scheduler affinity, or engine job
// records, while suspicion state (the part that is *supposed* to
// persist) carries across.
func TestControllerLifecycleBounded(t *testing.T) {
	for _, p := range []Policy{PolicyFull, PolicyQuiz, PolicyDeferred} {
		cfg := DefaultConfig()
		cfg.VerifyPolicy = p
		cfg.QuizFraction = 1
		h := newHarness(t, 4, 3, cfg)
		sched := h.eng.Sched.(*OverlapScheduler)
		scripts := []string{weatherScript, weatherScript, weatherScript}
		for run, script := range scripts {
			if run == 1 {
				// Middle run: every replica-0 map task computes wrongly.
				h.eng.TaskHook = func(_ cluster.NodeID, tk *mapred.Task) mapred.TaskFault {
					if tk.Kind == mapred.MapTask && tk.Job.Spec.Replica == 0 {
						return mapred.TaskFault{Corrupt: cluster.Corrupt}
					}
					return mapred.TaskFault{}
				}
			} else {
				h.eng.TaskHook = nil
			}
			res, err := h.ctrl.Run(script)
			if err != nil {
				t.Fatalf("policy %v run %d: %v", p, run, err)
			}
			if !res.Verified {
				t.Fatalf("policy %v run %d not verified", p, run)
			}
			if n := h.ctrl.matcher.SIDs(); n != 0 {
				t.Errorf("policy %v run %d: matcher retains %d sids after teardown", p, run, n)
			}
			if n := sched.HostedSIDs(); n != 0 {
				t.Errorf("policy %v run %d: scheduler retains %d sid affinities", p, run, n)
			}
			if n := h.eng.JobCount(); n != 0 {
				t.Errorf("policy %v run %d: engine retains %d jobs", p, run, n)
			}
			if n := len(h.ctrl.sidIndex); n != 0 {
				t.Errorf("policy %v run %d: sidIndex retains %d entries", p, run, n)
			}
			if free, total := h.eng.FreeSlotsTotal(), h.cl.TotalSlots(); free != total {
				t.Errorf("policy %v run %d: slots leaked: free=%d total=%d", p, run, free, total)
			}
			if run >= 1 && len(h.ctrl.Susp.Suspects()) == 0 {
				t.Errorf("policy %v run %d: suspicion did not carry across runs", p, run)
			}
		}
	}
}

// TestSchedulerForgetSID unit-tests the satellite-3 prune: dropping a sid
// removes it from every node's hosted set and empty per-node sets are
// reclaimed entirely.
func TestSchedulerForgetSID(t *testing.T) {
	s := NewOverlapScheduler(nil)
	s.sids = map[cluster.NodeID]map[string]bool{
		"node-000": {"a": true, "b": true},
		"node-001": {"a": true},
	}
	if got := s.HostedSIDs(); got != 3 {
		t.Fatalf("HostedSIDs = %d, want 3", got)
	}
	s.ForgetSID("a")
	if got := s.HostedSIDs(); got != 1 {
		t.Errorf("after forget a: HostedSIDs = %d, want 1", got)
	}
	if _, ok := s.sids["node-001"]; ok {
		t.Error("empty per-node set not reclaimed")
	}
	s.ForgetSID("b")
	if len(s.sids) != 0 {
		t.Errorf("scheduler state not empty: %v", s.sids)
	}
}
