package dfs

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// The block format is the at-rest representation of file records: a file
// is a sequence of sealed blocks plus an unsealed tail. Each block holds
// a batch of records in column-grouped, length-prefixed form — record
// values (the tab-separated fields of each line) are regrouped so all
// values of column 0 are stored contiguously, then all of column 1, and
// so on. Column grouping puts like-typed bytes next to each other, which
// is what makes the optional per-block flate compression effective on
// tabular data. Splitting on raw tabs and re-joining with tabs is an
// exact involution for arbitrary line content (the tuple codec escapes
// tabs inside values, and even unescaped content round-trips), so block
// encoding is invisible to every consumer: digests are taken over
// canonical record bytes, never over block bytes (PR 2's separation),
// which is what lets the storage representation change freely here.
//
// Layout:
//
//	byte 0: format version (blockVersion)
//	byte 1: flags (blockFlagFlate: payload is flate-compressed)
//	uvarint: record count (always uncompressed, so counting is cheap)
//	payload (possibly compressed):
//	   uvarint: maxCols — the widest record's column count
//	   per record: uvarint column count
//	   for c in [0, maxCols): for each record with >c columns:
//	      uvarint value length, value bytes
const (
	blockVersion   = 0x01
	blockFlagFlate = 0x01
)

// DefaultBlockSize is the target encoded size of one sealed block.
const DefaultBlockSize = 256 << 10

// EncodeBlock serializes a batch of record lines into one block.
// compress enables per-block flate (BestSpeed); incompressible payloads
// are stored raw even when compression is requested, so decoding never
// pays inflation for nothing.
func EncodeBlock(lines []string, compress bool) []byte {
	data, _ := encodeBlockStats(lines, compress)
	return data
}

// encodeBlockStats is EncodeBlock plus the uncompressed payload length,
// which the FS folds into its compression-ratio accounting.
func encodeBlockStats(lines []string, compress bool) (data []byte, rawLen int) {
	// Pass 1: find the field spans of every line. starts/ends are flat,
	// row-major; pre[i] is the index of line i's first span.
	var logical int
	for _, l := range lines {
		logical += len(l) + 1
	}
	colCounts := make([]int, len(lines))
	pre := make([]int, len(lines)+1)
	var starts, ends []int
	maxCols := 0
	for i, l := range lines {
		n := 0
		start := 0
		for {
			idx := strings.IndexByte(l[start:], '\t')
			if idx < 0 {
				starts = append(starts, start)
				ends = append(ends, len(l))
				n++
				break
			}
			starts = append(starts, start)
			ends = append(ends, start+idx)
			start += idx + 1
			n++
		}
		colCounts[i] = n
		pre[i+1] = pre[i] + n
		if n > maxCols {
			maxCols = n
		}
	}

	// Pass 2: column-grouped payload.
	payload := make([]byte, 0, logical+len(lines)*2+16)
	payload = binary.AppendUvarint(payload, uint64(maxCols))
	for _, n := range colCounts {
		payload = binary.AppendUvarint(payload, uint64(n))
	}
	for c := 0; c < maxCols; c++ {
		for i, l := range lines {
			if colCounts[i] <= c {
				continue
			}
			s, e := starts[pre[i]+c], ends[pre[i]+c]
			payload = binary.AppendUvarint(payload, uint64(e-s))
			payload = append(payload, l[s:e]...)
		}
	}
	rawLen = len(payload)

	flags := byte(0)
	if compress && rawLen > 0 {
		var zb bytes.Buffer
		zb.Grow(rawLen / 2)
		zw, err := flate.NewWriter(&zb, flate.BestSpeed)
		if err == nil {
			if _, err := zw.Write(payload); err == nil && zw.Close() == nil && zb.Len() < rawLen {
				payload = zb.Bytes()
				flags |= blockFlagFlate
			}
		}
	}

	data = make([]byte, 0, 2+binary.MaxVarintLen64+len(payload))
	data = append(data, blockVersion, flags)
	data = binary.AppendUvarint(data, uint64(len(lines)))
	return append(data, payload...), rawLen
}

// BlockRecords reports how many records data holds without decoding (or
// decompressing) the payload.
func BlockRecords(data []byte) (int, error) {
	if len(data) < 2 || data[0] != blockVersion {
		return 0, fmt.Errorf("dfs: bad block header")
	}
	n, w := binary.Uvarint(data[2:])
	if w <= 0 {
		return 0, fmt.Errorf("dfs: bad block record count")
	}
	return int(n), nil
}

// DecodeBlock reverses EncodeBlock, reconstructing the exact record
// lines the block was sealed from.
func DecodeBlock(data []byte) ([]string, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("dfs: block too short")
	}
	if data[0] != blockVersion {
		return nil, fmt.Errorf("dfs: unknown block version 0x%02x", data[0])
	}
	flags := data[1]
	rest := data[2:]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, fmt.Errorf("dfs: bad block record count")
	}
	payload := rest[w:]
	if flags&blockFlagFlate != 0 {
		zr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("dfs: block decompress: %w", err)
		}
		zr.Close()
		payload = raw
	}
	numRecords := int(n)
	if numRecords == 0 {
		return nil, nil
	}

	maxCols64, w := binary.Uvarint(payload)
	if w <= 0 {
		return nil, fmt.Errorf("dfs: bad block maxCols")
	}
	off := w
	maxCols := int(maxCols64)
	colCounts := make([]int, numRecords)
	pre := make([]int, numRecords+1)
	for i := range colCounts {
		c, w := binary.Uvarint(payload[off:])
		if w <= 0 {
			return nil, fmt.Errorf("dfs: bad block column count")
		}
		off += w
		colCounts[i] = int(c)
		pre[i+1] = pre[i] + int(c)
		if int(c) > maxCols || c == 0 {
			return nil, fmt.Errorf("dfs: block column count out of range")
		}
	}

	// Column-major scan records every value's span; pre maps it back to
	// its row-major slot.
	type span struct{ start, end int }
	spans := make([]span, pre[numRecords])
	for c := 0; c < maxCols; c++ {
		for i := 0; i < numRecords; i++ {
			if colCounts[i] <= c {
				continue
			}
			l, w := binary.Uvarint(payload[off:])
			if w <= 0 {
				return nil, fmt.Errorf("dfs: bad block value length")
			}
			off += w
			end := off + int(l)
			if end > len(payload) {
				return nil, fmt.Errorf("dfs: block value overruns payload")
			}
			spans[pre[i]+c] = span{start: off, end: end}
			off = end
		}
	}

	lines := make([]string, numRecords)
	var buf []byte
	for i := 0; i < numRecords; i++ {
		buf = buf[:0]
		for c := 0; c < colCounts[i]; c++ {
			if c > 0 {
				buf = append(buf, '\t')
			}
			sp := spans[pre[i]+c]
			buf = append(buf, payload[sp.start:sp.end]...)
		}
		lines[i] = string(buf)
	}
	return lines, nil
}
