package faultsim

import (
	"math/rand"
	"testing"

	"clusterbft/internal/cluster"
)

func TestDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Nodes != 250 || c.Slots != 3 || c.F != 1 || c.Replicas != 4 || c.FaultyNodes != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Mix != R1 {
		t.Errorf("default mix = %+v", c.Mix)
	}
	c2 := (Config{F: 2}).withDefaults()
	if c2.Replicas != 7 || c2.FaultyNodes != 2 {
		t.Errorf("f=2 defaults = %+v", c2)
	}
}

func TestNodeNaming(t *testing.T) {
	if nodeName(0) != "node-000" || nodeName(249) != "node-249" || nodeName(7) != "node-007" {
		t.Errorf("names: %s %s %s", nodeName(0), nodeName(249), nodeName(7))
	}
	for _, i := range []int{0, 7, 42, 249} {
		if nodeIdx(nodeID(i)) != i {
			t.Errorf("round trip failed for %d", i)
		}
	}
}

func TestRunSaturatesAtHighProbability(t *testing.T) {
	r := Run(Config{CommissionProb: 1.0, Seed: 1, StopAtSaturation: true})
	if r.JobsAtSaturation < 0 {
		t.Fatal("p=1.0 should saturate")
	}
	// With an always-firing fault, the first completed batch containing
	// the faulty node saturates: only a handful of jobs.
	if r.JobsAtSaturation > 60 {
		t.Errorf("saturation after %d jobs; expected fast isolation", r.JobsAtSaturation)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Config{CommissionProb: 0.7, Seed: 42, MaxTime: 120})
	b := Run(Config{CommissionProb: 0.7, Seed: 42, MaxTime: 120})
	if a.JobsCompleted != b.JobsCompleted || a.JobsAtSaturation != b.JobsAtSaturation {
		t.Error("same seed must reproduce identical runs")
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample streams differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestIsolationConvergesToTrueFaultyNode(t *testing.T) {
	r := Run(Config{CommissionProb: 0.8, Seed: 3, MaxTime: 400})
	if len(r.Suspects) == 0 {
		t.Fatal("no suspects after 400 ticks at p=0.8")
	}
	// The true faulty node must be among the suspects.
	want := map[cluster.NodeID]bool{}
	for _, n := range r.TrueFaulty {
		want[n] = true
	}
	found := false
	for _, s := range r.Suspects {
		if want[s] {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %v miss true faulty %v", r.Suspects, r.TrueFaulty)
	}
	if !r.Isolated {
		t.Errorf("expected exact isolation, suspects=%v true=%v", r.Suspects, r.TrueFaulty)
	}
}

func TestHigherProbabilityIsolatesFaster(t *testing.T) {
	base := Config{Seed: 11}
	slow := base
	slow.CommissionProb = 0.2
	fast := base
	fast.CommissionProb = 1.0
	js := JobsToIsolate(slow, 3)
	jf := JobsToIsolate(fast, 3)
	if jf > js {
		t.Errorf("p=1.0 needed %.1f jobs, p=0.2 needed %.1f; expected faster isolation at higher p", jf, js)
	}
}

func TestF2IsolatesBothFaultyNodes(t *testing.T) {
	r := Run(Config{F: 2, CommissionProb: 0.9, Seed: 21, MaxTime: 600})
	if len(r.TrueFaulty) != 2 {
		t.Fatalf("true faulty = %v", r.TrueFaulty)
	}
	if !r.Isolated {
		t.Errorf("f=2 did not isolate: suspects=%v true=%v", r.Suspects, r.TrueFaulty)
	}
}

func TestF2Saturation(t *testing.T) {
	// |D| = 2 requires two disjoint faulty job clusters; it still happens
	// within a bounded number of jobs at moderate probability.
	avg := JobsToIsolate(Config{F: 2, CommissionProb: 0.5, Seed: 21}, 5)
	if avg <= 0 || avg > 500 {
		t.Errorf("f=2 average jobs to isolate = %.1f", avg)
	}
}

func TestSuspectPopulationStopsGrowingAfterSaturation(t *testing.T) {
	r := Run(Config{CommissionProb: 0.8, Seed: 9, MaxTime: 300})
	if r.TimeAtSaturation < 0 {
		t.Fatal("did not saturate")
	}
	// After saturation the set of nodes with s > 0 must not grow by more
	// than the final refinement (it can only shrink or stay).
	maxAfter := 0
	for _, s := range r.Samples {
		if s.Time > r.TimeAtSaturation+cap0(r) && s.Suspects > maxAfter {
			maxAfter = s.Suspects
		}
	}
	atSat := 0
	for _, s := range r.Samples {
		if s.Time == r.TimeAtSaturation {
			atSat = s.Suspects
		}
	}
	// Jobs started before saturation may still complete and add faults
	// for at most one more job length; beyond that the population is
	// bounded by the saturation-time population.
	if maxAfter > atSat+60 {
		t.Errorf("suspect population grew after saturation: %d -> %d", atSat, maxAfter)
	}
}

func cap0(r *Result) int { return 5 }

func TestHighSuspicionConvergesToFaulty(t *testing.T) {
	// Fig 12's claim: over time only the real faulty nodes stay High.
	r := Run(Config{CommissionProb: 0.9, Seed: 14, MaxTime: 500})
	last := r.Samples[len(r.Samples)-1]
	if last.High == 0 {
		t.Error("no High-suspicion nodes at end of run")
	}
	if last.High > len(r.TrueFaulty)+2 {
		t.Errorf("High population %d not narrowed to ~%d faulty nodes", last.High, len(r.TrueFaulty))
	}
}

func TestAllocationRespectsCapacityAndDisjointness(t *testing.T) {
	cfg := (Config{Nodes: 20, Slots: 2, CommissionProb: 0, Seed: 5, MaxTime: 50}).withDefaults()
	free := make([]int, cfg.Nodes)
	for i := range free {
		free[i] = cfg.Slots
	}
	offset := 0
	j, ok := allocate(cfg, newRng(5), free, &offset, 5, map[int]bool{}, 0)
	if !ok {
		t.Fatal("allocation failed with ample capacity")
	}
	seen := map[cluster.NodeID]int{}
	for ri, rep := range j.replicas {
		if len(rep) != 5 {
			t.Errorf("replica %d has %d nodes, want 5", ri, len(rep))
		}
		for n := range rep {
			seen[n]++
		}
	}
	for n, k := range seen {
		if k > 1 {
			t.Errorf("node %v serves %d replicas of one job", n, k)
		}
	}
	// 4 replicas x 5 slots consumed.
	total := 0
	for _, f := range free {
		total += cfg.Slots - f
	}
	if total != 20 {
		t.Errorf("slots consumed = %d, want 20", total)
	}
}

func TestAllocationFailsWithoutSideEffects(t *testing.T) {
	cfg := (Config{Nodes: 3, Slots: 1, CommissionProb: 0, Seed: 5}).withDefaults()
	free := []int{1, 1, 1}
	offset := 0
	// 4 replicas x 2 slots each cannot fit disjointly on 3 nodes.
	_, ok := allocate(cfg, newRng(1), free, &offset, 2, map[int]bool{}, 0)
	if ok {
		t.Fatal("allocation should fail")
	}
	for i, f := range free {
		if f != 1 {
			t.Errorf("free[%d] = %d after failed allocation", i, f)
		}
	}
}

func TestSamplesCoverRun(t *testing.T) {
	r := Run(Config{CommissionProb: 0.5, Seed: 2, MaxTime: 100})
	if len(r.Samples) != 100 {
		t.Errorf("samples = %d, want 100", len(r.Samples))
	}
	for i, s := range r.Samples {
		if s.Time != i {
			t.Fatalf("sample %d time = %d", i, s.Time)
		}
	}
}

func TestZeroProbabilityNeverSaturates(t *testing.T) {
	r := Run(Config{CommissionProb: 0, Seed: 4, MaxTime: 100})
	if r.JobsAtSaturation != -1 || r.FaultsObserved != 0 {
		t.Errorf("p=0 should observe nothing: %+v", r)
	}
	if len(r.Suspects) != 0 {
		t.Errorf("suspects = %v", r.Suspects)
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
