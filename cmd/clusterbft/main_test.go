package main

import (
	"os"
	"path/filepath"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
)

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	local := filepath.Join(dir, "data.tsv")
	if err := os.WriteFile(local, []byte("1\ta\n2\tb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := dfs.New()
	if err := loadFile(fs, "in/data", local); err != nil {
		t.Fatal(err)
	}
	lines, err := fs.ReadLines("in/data")
	if err != nil || len(lines) != 2 || lines[0] != "1\ta" {
		t.Errorf("lines = %v, err = %v", lines, err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if err := loadFile(dfs.New(), "x", "/nonexistent/file"); err == nil {
		t.Error("missing file should error")
	}
}

func TestAttachAdversary(t *testing.T) {
	cl := cluster.New(4, 2)
	if err := attachAdversary(cl, "node-001:commission:0.5"); err != nil {
		t.Fatal(err)
	}
	n := cl.Node("node-001")
	if n.Adversary == nil || n.Adversary.Kind != cluster.FaultCommission || n.Adversary.Probability != 0.5 {
		t.Errorf("adversary = %+v", n.Adversary)
	}
	if err := attachAdversary(cl, "node-002:omission:1.0"); err != nil {
		t.Fatal(err)
	}
	if cl.Node("node-002").Adversary.Kind != cluster.FaultOmission {
		t.Error("omission kind not set")
	}
}

func TestAttachAdversaryErrors(t *testing.T) {
	cl := cluster.New(2, 1)
	cases := []string{
		"node-001",                 // too few parts
		"node-001:evil:1.0",        // unknown kind
		"node-001:commission:nope", // bad probability
		"node-099:commission:1.0",  // unknown node
	}
	for _, c := range cases {
		if err := attachAdversary(cl, c); err == nil {
			t.Errorf("spec %q should error", c)
		}
	}
}

func TestRepeatedFlag(t *testing.T) {
	var r repeated
	if err := r.Set("a=b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("c=d"); err != nil {
		t.Fatal(err)
	}
	if r.String() != "a=b,c=d" || len(r) != 2 {
		t.Errorf("repeated = %v", r)
	}
}
