package experiments

import (
	"fmt"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

// VerifyCostRow measures one verification policy on the follower
// workload: fault-free cost (latency and total untrusted+trusted CPU)
// and detection latency against a commission-faulty primary.
type VerifyCostRow struct {
	Policy    string
	LatencyUs int64
	CPUUs     int64
	QuizTasks int64
	// DetectUs is the virtual time from submission to the first
	// mismatch/escalation audit event when every replica-0 map task
	// computes on tampered tuples; the faulty run must still end
	// verified (escalation recovers it).
	DetectUs int64
	// RecoverUs is the faulty run's total latency (detection + rerun).
	RecoverUs int64
	// Cost is the fault-free run's cost-attribution ledger: where the
	// policy's CPU went (committed output vs replica waste vs
	// verification redundancy; recovery_rerun is zero fault-free).
	Cost mapred.CostBuckets
}

// VerifyCostResult is the overhead-vs-detection-latency table for the
// verification policies: full-r pays ~r x compute always and detects
// online; quiz/deferred pay 1+ε and detect at quiz time (quiz) or
// possibly after optimistic downstream work (deferred).
type VerifyCostResult struct {
	Name   string
	PureUs int64
	// PureCPUUs is the unreplicated, unverified engine CPU total.
	PureCPUUs int64
	// PureCost is the pure run's ledger: all committed, by definition.
	PureCost mapred.CostBuckets
	Rows     []VerifyCostRow
}

// Render prints the table with ratios against the full-r policy.
func (r *VerifyCostResult) Render() string {
	var fullCPU int64
	for _, row := range r.Rows {
		if row.Policy == "full" {
			fullCPU = row.CPUUs
		}
	}
	rows := [][]string{{
		"pure", seconds(r.PureUs), seconds(r.PureCPUUs), "-", "-",
		seconds(r.PureCost.CommittedUs), seconds(r.PureCost.VerifyUs()),
		seconds(r.PureCost.ReplicaWasteUs), "-", "-",
	}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			seconds(row.LatencyUs),
			seconds(row.CPUUs),
			ratio(row.CPUUs, fullCPU),
			fmt.Sprintf("%d", row.QuizTasks),
			seconds(row.Cost.CommittedUs),
			seconds(row.Cost.VerifyUs()),
			seconds(row.Cost.ReplicaWasteUs),
			seconds(row.DetectUs),
			seconds(row.RecoverUs),
		})
	}
	return r.Name + "\n" + table(
		[]string{"policy", "latency(s)", "cpu(s)", "cpu/full", "quizzes",
			"committed(s)", "verify(s)", "waste(s)", "detect(s)", "recover(s)"}, rows)
}

// verifyCostConfig is the shared controller setup: f=1, marker points,
// generous timeout so detection latency is driven by evidence, not
// timers.
func verifyCostConfig(p core.Policy) core.Config {
	return core.Config{
		F: 1, R: 4, Points: 2, NumReduces: 2,
		TimeoutUs: 3_600_000_000, Offline: true,
		VerifyPolicy: p,
	}
}

// corruptPrimaryHook tampers every replica-0 map task (the primary of a
// quiz/deferred attempt; one of r replicas under full-r), deterministic
// in dispatch order.
func corruptPrimaryHook(_ cluster.NodeID, t *mapred.Task) mapred.TaskFault {
	if t.Kind == mapred.MapTask && t.Job.Spec.Replica == 0 {
		return mapred.TaskFault{Corrupt: cluster.Corrupt}
	}
	return mapred.TaskFault{}
}

// VerifyCost produces the overhead-vs-detection table for the
// verification policies (-exp verifycost). Fault-free rows use the
// default quiz fraction (0.25); the adversarial detection runs quiz at
// fraction 1 so a corrupted map task is always in the sample.
func VerifyCost(sc Scale) (*VerifyCostResult, error) {
	data := workload.Twitter(sc.TwitterEdges, sc.TwitterUsers, sc.Seed)
	script := workload.FollowerScript
	res := &VerifyCostResult{Name: "Verification policies: fault-free cost vs detection latency"}

	pure := newRig(sc, workload.TwitterPath, data)
	lat, err := core.RunPlainOpts(pure.eng, script, mapred.CompileOptions{
		NumReduces: 2, DisableCombine: sc.DisableCombine,
	})
	if err != nil {
		return nil, fmt.Errorf("verifycost pure: %w", err)
	}
	res.PureUs = lat
	res.PureCPUUs = pure.eng.Metrics.CPUTimeUs
	res.PureCost = pure.eng.Ledger.Buckets()

	for _, p := range []core.Policy{core.PolicyFull, core.PolicyQuiz, core.PolicyDeferred} {
		row := VerifyCostRow{Policy: p.String()}

		// Fault-free cost.
		r := newRig(sc, workload.TwitterPath, data)
		cr, err := r.controller(verifyCostConfig(p)).Run(script)
		if err != nil {
			return nil, fmt.Errorf("verifycost %s: %w", p, err)
		}
		row.LatencyUs = cr.LatencyUs
		row.CPUUs = cr.Metrics.CPUTimeUs
		row.QuizTasks = r.eng.QuizTasks
		row.Cost = r.eng.Ledger.Buckets()

		// Detection latency under a commission-faulty primary.
		cfg := verifyCostConfig(p)
		cfg.QuizFraction = 1
		r2 := newRig(sc, workload.TwitterPath, data)
		r2.eng.TaskHook = corruptPrimaryHook
		ctrl := r2.controller(cfg)
		trail := analyze.NewAuditTrail(r2.eng.Now)
		ctrl.AttachAudit(trail)
		start := r2.eng.Now()
		cr2, err := ctrl.Run(script)
		if err != nil {
			return nil, fmt.Errorf("verifycost %s adversarial: %w", p, err)
		}
		if !cr2.Verified {
			return nil, fmt.Errorf("verifycost %s adversarial: run not verified", p)
		}
		row.DetectUs = -1
		for _, e := range trail.Events() {
			if e.Kind == analyze.AuditMismatch || e.Kind == analyze.AuditEscalate {
				row.DetectUs = e.T - start
				break
			}
		}
		if row.DetectUs < 0 {
			return nil, fmt.Errorf("verifycost %s adversarial: commission fault never detected", p)
		}
		row.RecoverUs = cr2.LatencyUs
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
