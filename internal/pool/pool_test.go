package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestFutureReturnsResult(t *testing.T) {
	p := New(2)
	f := Go(p, func() int { return 42 })
	if got := f.Wait(); got != 42 {
		t.Fatalf("Wait = %d, want 42", got)
	}
	// Wait is idempotent.
	if got := f.Wait(); got != 42 {
		t.Fatalf("second Wait = %d, want 42", got)
	}
}

func TestDefaultSize(t *testing.T) {
	if New(0).Size() < 1 {
		t.Error("default pool must have at least one slot")
	}
	if got := New(7).Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const bound = 3
	p := New(bound)
	var active, peak int64
	var mu sync.Mutex
	release := make(chan struct{})
	var futs []*Future[struct{}]
	for i := 0; i < 20; i++ {
		futs = append(futs, Go(p, func() struct{} {
			n := atomic.AddInt64(&active, 1)
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			<-release
			atomic.AddInt64(&active, -1)
			return struct{}{}
		}))
	}
	close(release)
	for _, f := range futs {
		f.Wait()
	}
	if peak > bound {
		t.Errorf("observed %d concurrent tasks, bound is %d", peak, bound)
	}
	if peak < 1 {
		t.Error("no task ever ran")
	}
}

func TestWaitInSubmissionOrderIsDeterministic(t *testing.T) {
	p := New(4)
	var futs []*Future[int]
	for i := 0; i < 50; i++ {
		futs = append(futs, Go(p, func() int { return i * i }))
	}
	for i, f := range futs {
		if got := f.Wait(); got != i*i {
			t.Fatalf("future %d = %d, want %d", i, got, i*i)
		}
	}
}
