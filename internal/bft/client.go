package bft

import (
	"errors"
	"fmt"
)

// Client invokes operations against a replica group and accepts a result
// once f+1 replicas report the same bytes — the commission-fault
// detection rule of §2.1.
type Client struct {
	id       ID
	net      *Network
	replicas []ID
	f        int
	seq      uint64

	// RetryTimeoutUs is how long to wait for f+1 matching replies before
	// retransmitting to all replicas.
	RetryTimeoutUs int64

	call *pendingCall
}

type pendingCall struct {
	req     Request
	votes   map[string]map[ID]bool // result bytes -> voters
	done    func([]byte)
	settled bool
	gen     int
}

// NewClient registers a client for a group of n = 3f+1 replicas.
func NewClient(net *Network, name string, f int) *Client {
	return NewClientIn(net, "", name, f)
}

// NewClientIn registers a client addressing the named group's replicas
// on a (possibly shared) network. The empty group is the historical
// single-group namespace.
func NewClientIn(net *Network, group, name string, f int) *Client {
	id := ID("client-" + name)
	if group != "" {
		id = ID(group + "/client-" + name)
	}
	c := &Client{
		id:             id,
		net:            net,
		f:              f,
		RetryTimeoutUs: 150_000,
	}
	for i := 0; i < 3*f+1; i++ {
		c.replicas = append(c.replicas, GroupReplicaID(group, i))
	}
	net.Register(c.id, c)
	return c
}

// ID returns the client's network identity.
func (c *Client) ID() ID { return c.id }

// Invoke submits op for ordered execution; done fires exactly once with
// the f+1-matching result. Only one call may be outstanding per client.
func (c *Client) Invoke(op []byte, done func([]byte)) error {
	if c.call != nil && !c.call.settled {
		return errors.New("bft: client has an outstanding call")
	}
	c.seq++
	req := Request{Client: c.id, Seq: c.seq, Op: append([]byte(nil), op...)}
	c.call = &pendingCall{req: req, votes: make(map[string]map[ID]bool), done: done}
	c.send(true)
	return nil
}

// send transmits the current request; broadcast false sends only to the
// presumed primary (view 0 optimization), true to every replica.
func (c *Client) send(broadcast bool) {
	call := c.call
	if broadcast {
		for _, r := range c.replicas {
			c.net.Send(c.id, r, call.req)
		}
	} else {
		c.net.Send(c.id, c.replicas[0], call.req)
	}
	call.gen++
	gen := call.gen
	c.net.After(c.RetryTimeoutUs, func() {
		if call.settled || gen != call.gen {
			return
		}
		c.send(true)
	})
}

// Receive implements Handler: tally replies until f+1 match.
func (c *Client) Receive(from ID, msg Message) {
	rep, ok := msg.(Reply)
	if !ok || c.call == nil || c.call.settled || rep.ReqSeq != c.call.req.Seq {
		return
	}
	key := string(rep.Result)
	voters := c.call.votes[key]
	if voters == nil {
		voters = make(map[ID]bool)
		c.call.votes[key] = voters
	}
	voters[rep.Replica] = true
	if len(voters) >= c.f+1 {
		c.call.settled = true
		c.call.gen++
		if c.call.done != nil {
			c.call.done([]byte(key))
		}
	}
}

// Group bundles a network, 3f+1 replicas and a client into a runnable
// control-tier cluster; ClusterBFT's §6.4 configuration instantiates the
// request handler behind one of these.
type Group struct {
	Net      *Network
	Name     string
	Replicas []*Replica
	Client   *Client
	F        int
}

// NewGroup builds a group of 3f+1 replicas over fresh state machines
// produced by smFactory (one per replica — they must be deterministic
// and mutually consistent).
func NewGroup(f int, smFactory func(i int) StateMachine) *Group {
	return NewGroupOn(NewNetwork(), "", f, smFactory)
}

// NewGroupOn builds a named group on an existing network, so several
// independent replica groups — one per control-tier shard — run their
// protocol rounds concurrently over one shared virtual-time transport.
// Groups sharing a network must have distinct names.
func NewGroupOn(net *Network, name string, f int, smFactory func(i int) StateMachine) *Group {
	g := &Group{Net: net, Name: name, F: f}
	for i := 0; i < 3*f+1; i++ {
		g.Replicas = append(g.Replicas, NewReplicaIn(net, name, i, f, smFactory(i)))
	}
	g.Client = NewClientIn(net, name, "0", f)
	return g
}

// Start submits op asynchronously: done fires when f+1 replicas agree.
// Unlike Invoke it does not drive the network — the caller runs it,
// which is how concurrent invocations on several groups sharing one
// network interleave their protocol rounds.
func (g *Group) Start(op []byte, done func([]byte)) error {
	return g.Client.Invoke(op, done)
}

// Invoke runs one operation synchronously through the group and returns
// the agreed result plus the virtual time the invocation took. It fails
// if the network drains without agreement.
func (g *Group) Invoke(op []byte) ([]byte, int64, error) {
	var result []byte
	settled := false
	start := g.Net.Now()
	err := g.Client.Invoke(op, func(res []byte) {
		result = res
		settled = true
	})
	if err != nil {
		return nil, 0, err
	}
	// Run just until the client accepts a result (leaving retransmission
	// timers queued), bounded so a broken group cannot churn view
	// changes forever.
	g.Net.RunWhile(2_000_000, func() bool { return !settled })
	if !settled {
		return nil, 0, fmt.Errorf("bft: no agreement for op (%d msgs delivered)", g.Net.Delivered())
	}
	return result, g.Net.Now() - start, nil
}
