package mapred

// The combining, sort-merge shuffle data path. Map tasks fold
// post-digest records into per-partition open-addressing tables keyed by
// the canonical shuffle key and emit one partial-state record per
// (partition, key); every partition leaves the map task as a key-sorted
// run, and the reduce side replaces its global sort with a k-way
// loser-tree merge over the pre-sorted runs. Verification points digest
// the pre-shuffle stream inside the map operator chain, before any
// record reaches a combiner, so the digests — and, by the algebraic
// restrictions pig.Aggregate.Algebraic enforces — the STORE outputs are
// byte-identical with combining on or off.

import (
	"slices"
	"strings"

	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// aggAcc is the partial state of one aggregate over one group: the
// record count and the running sum (SUM/AVG) or extremum (MIN/MAX);
// COUNT uses only n.
type aggAcc struct {
	n int64
	v tuple.Value
}

// mergeAgg folds one increment into acc — the single aggregation step
// shared by every code path: the map-side combiner and the combiner-off
// reduce fold call it with (1, column value) per raw record, the
// reduce-side partial merge with a task-local (n, v) pair. For SUM the
// fold is Add(Add(Int(0), v1), v2)... exactly as the pre-combiner
// implementation computed it, so uncombined results are byte-identical
// by construction; MIN/MAX keep the first-arriving extremum on Compare
// ties, which merging task-local extrema in task order preserves.
func mergeAgg(agg *pig.Aggregate, acc *aggAcc, n int64, v tuple.Value) {
	switch agg.Func {
	case "count":
		// n is the whole state.
	case "sum", "avg":
		if acc.n == 0 {
			acc.v = tuple.Int(0)
		}
		acc.v = tuple.Add(acc.v, v)
	case "min":
		if acc.n == 0 || tuple.Compare(v, acc.v) < 0 {
			acc.v = v
		}
	case "max":
		if acc.n == 0 || tuple.Compare(v, acc.v) > 0 {
			acc.v = v
		}
	}
	acc.n += n
}

// finalizeAgg turns merged partial state into the output value. AVG is
// the integer-division determinism workaround of §5.4 over the (sum,
// count) pair; unknown functions yield null, as the pre-combiner
// implementation did.
func finalizeAgg(agg *pig.Aggregate, acc aggAcc) tuple.Value {
	switch agg.Func {
	case "count":
		return tuple.Int(acc.n)
	case "sum", "min", "max":
		return acc.v
	case "avg":
		return tuple.Div(acc.v, tuple.Int(acc.n))
	default:
		return tuple.Null()
	}
}

// aggOrdinals lists the generator positions carrying aggregates, in
// generator order — the layout of partial-state tuples.
func aggOrdinals(gens []pig.GenItem) []int {
	var idx []int
	for i, g := range gens {
		if g.Agg != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// partialTuple encodes per-aggregate partial state as a flat
// [n0, v0, n1, v1, ...] tuple, so combined records flow through the
// same interRec plumbing (and byte accounting) as raw ones.
func partialTuple(accs []aggAcc) tuple.Tuple {
	t := make(tuple.Tuple, 2*len(accs))
	for i, a := range accs {
		t[2*i] = tuple.Int(a.n)
		t[2*i+1] = a.v
	}
	return t
}

// partialAcc decodes the i-th aggregate's (n, v) pair from a
// partial-state tuple.
func partialAcc(t tuple.Tuple, i int) (int64, tuple.Value) {
	if 2*i+1 >= len(t) {
		return 0, tuple.Null()
	}
	return t[2*i].Int(), t[2*i+1]
}

// combiner folds a map task's post-digest output into per-partition
// open-addressing tables keyed by the canonical shuffle key. Hits cost
// zero allocations: the key encodes into the task's scratch buffer, the
// probe compares bytes against stored keys without materializing a
// string, and only a first-seen key allocates its entry.
type combiner struct {
	spec   *ReduceSpec
	aggs   []*pig.Aggregate // ReduceAggregate: aggregates in generator order
	tag    int
	keyBuf tuple.Tuple // reusable key projection, cloned on first sight
	parts  []combinePart
}

type combinePart struct {
	entries []combineEntry
	slots   []int32 // 1-based indices into entries; 0 = empty
}

type combineEntry struct {
	hash   uint64
	keyStr string
	key    tuple.Tuple
	first  tuple.Tuple // ReduceDistinct: first-arriving tuple of the key
	accs   []aggAcc    // ReduceAggregate: one per aggregate generator
}

func newCombiner(spec *ReduceSpec, in *JobInput, numParts int) *combiner {
	c := &combiner{
		spec:   spec,
		tag:    in.Tag,
		keyBuf: make(tuple.Tuple, len(in.KeyCols)),
		parts:  make([]combinePart, numParts),
	}
	for _, i := range aggOrdinals(spec.Gens) {
		c.aggs = append(c.aggs, spec.Gens[i].Agg)
	}
	return c
}

// fold routes one post-chain tuple into its partition's table, merging
// into the existing entry when the key was already seen. keyCols is the
// input's shuffle key projection; scratch is the task's reusable encode
// buffer, returned possibly grown.
func (c *combiner) fold(t tuple.Tuple, keyCols []int, scratch []byte) []byte {
	for i, col := range keyCols {
		if col < len(t) {
			c.keyBuf[i] = t[col]
		} else {
			c.keyBuf[i] = tuple.Null()
		}
	}
	scratch = tuple.AppendEncoded(scratch[:0], c.keyBuf)
	h := uint64(fnvOffset64)
	for _, b := range scratch {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	p := partitionOfBytes(scratch, len(c.parts))
	e := c.parts[p].find(h, scratch)
	if e == nil {
		e = c.parts[p].insert(h, scratch, t, c)
	}
	for i, agg := range c.aggs {
		mergeAgg(agg, &e.accs[i], 1, colOf(t, agg.ColIdx))
	}
	return scratch
}

// partitionOfBytes is partitionOf over the key's encoded bytes — the
// same FNV-1a fold over the same bytes, so combined and uncombined
// records of one key always land on the same reduce partition.
func partitionOfBytes(key []byte, numReduces int) int {
	if numReduces <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return int(h % uint32(numReduces))
}

func (p *combinePart) find(h uint64, key []byte) *combineEntry {
	if len(p.slots) == 0 {
		return nil
	}
	mask := uint64(len(p.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := p.slots[i]
		if s == 0 {
			return nil
		}
		e := &p.entries[s-1]
		// string(key) in a comparison does not allocate.
		if e.hash == h && e.keyStr == string(key) {
			return e
		}
	}
}

func (p *combinePart) insert(h uint64, key []byte, t tuple.Tuple, c *combiner) *combineEntry {
	if 4*(len(p.entries)+1) > 3*len(p.slots) {
		p.grow()
	}
	e := combineEntry{hash: h, keyStr: string(key), key: c.keyBuf.Clone()}
	if c.spec.Kind == ReduceDistinct {
		e.first = t
	} else {
		e.accs = make([]aggAcc, len(c.aggs))
	}
	p.entries = append(p.entries, e)
	p.place(h, int32(len(p.entries)))
	return &p.entries[len(p.entries)-1]
}

func (p *combinePart) place(h uint64, idx int32) {
	mask := uint64(len(p.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if p.slots[i] == 0 {
			p.slots[i] = idx
			return
		}
	}
}

func (p *combinePart) grow() {
	n := 2 * len(p.slots)
	if n == 0 {
		n = 16
	}
	p.slots = make([]int32, n)
	for i := range p.entries {
		p.place(p.entries[i].hash, int32(i+1))
	}
}

// emit materializes every partition as interRec records — the distinct
// key's first-arriving tuple, or the flat partial-state tuple — in
// table insertion order (first arrival), and returns the partitions
// with their serialized-byte total. sortRuns orders them afterwards.
func (c *combiner) emit() ([][]interRec, int64) {
	parts := make([][]interRec, len(c.parts))
	var total int64
	for pi := range c.parts {
		entries := c.parts[pi].entries
		if len(entries) == 0 {
			continue
		}
		recs := make([]interRec, len(entries))
		for i := range entries {
			e := &entries[i]
			t := e.first
			if c.spec.Kind != ReduceDistinct {
				t = partialTuple(e.accs)
			}
			recs[i] = interRec{keyStr: e.keyStr, key: e.key, tag: c.tag, t: t, encLen: tuple.EncodedLen(t)}
			total += recs[i].bytes()
		}
		parts[pi] = recs
	}
	return parts, total
}

// sortRuns stable-sorts each emitted partition into the run order the
// reduce-side merge expects: by canonical key for grouping kinds, by
// the ORDER BY comparator for sorts. Stability keeps equal keys in
// arrival order, so the merge's (key, run, position) emission order is
// exactly the (key, global arrival) order the previous reduce-side
// global sort produced. Bare-LIMIT pass-through jobs (ReduceSort with
// no OrderBy) keep arrival order untouched.
func sortRuns(parts [][]interRec, spec *ReduceSpec) {
	if spec == nil {
		return
	}
	if spec.Kind == ReduceSort {
		if len(spec.OrderBy) == 0 {
			return
		}
		for _, p := range parts {
			slices.SortStableFunc(p, func(a, b interRec) int {
				return orderCmp(a.t, b.t, spec.OrderBy)
			})
		}
		return
	}
	for _, p := range parts {
		slices.SortStableFunc(p, func(a, b interRec) int {
			return strings.Compare(a.keyStr, b.keyStr)
		})
	}
}

// mergeRuns streams the k-way merge of pre-sorted runs through yield in
// (cmp, run index, position) order, using a loser tree: internal nodes
// cache the loser of their subtree so re-seating the champion after
// each pop costs one leaf-to-root comparison path (log k comparisons)
// instead of a k-wide scan. A nil cmp treats all records as equal, so
// runs concatenate in run order. Runs are read-only throughout —
// concurrent reduce attempts may share them.
func mergeRuns(runs [][]interRec, cmp func(a, b *interRec) int, yield func(*interRec)) {
	live := make([][]interRec, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	k := len(live)
	switch k {
	case 0:
		return
	case 1:
		for i := range live[0] {
			yield(&live[0][i])
		}
		return
	}
	pos := make([]int, k)
	head := func(r int32) *interRec {
		if pos[r] >= len(live[r]) {
			return nil
		}
		return &live[r][pos[r]]
	}
	// beats reports whether run a's head is emitted before run b's:
	// smaller record first, lower run index on ties, exhausted runs
	// last.
	beats := func(a, b int32) bool {
		ha, hb := head(a), head(b)
		if hb == nil {
			return ha != nil
		}
		if ha == nil {
			return false
		}
		if cmp != nil {
			if c := cmp(ha, hb); c != 0 {
				return c < 0
			}
		}
		return a < b
	}
	// Heap-shaped tree: leaf r sits at node k+r, internal nodes 1..k-1
	// hold the loser of their subtree, and the overall winner bubbles
	// out of the build.
	tree := make([]int32, k)
	winner := make([]int32, 2*k)
	for r := 0; r < k; r++ {
		winner[k+r] = int32(r)
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winner[2*j], winner[2*j+1]
		if beats(a, b) {
			winner[j], tree[j] = a, b
		} else {
			winner[j], tree[j] = b, a
		}
	}
	champ := winner[1]
	for {
		h := head(champ)
		if h == nil {
			return
		}
		yield(h)
		pos[champ]++
		// Replay the champion's leaf-to-root path: the new head competes
		// against the cached losers.
		cur := champ
		for j := (k + int(champ)) / 2; j >= 1; j /= 2 {
			if beats(tree[j], cur) {
				tree[j], cur = cur, tree[j]
			}
		}
		champ = cur
	}
}
