package mapred

import (
	"strings"
	"testing"

	"clusterbft/internal/pig"
)

func plan(t *testing.T, src string) *pig.Plan {
	t.Helper()
	p, err := pig.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compile(t *testing.T, src string, opts CompileOptions) []*JobSpec {
	t.Helper()
	jobs, err := Compile(plan(t, src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

const followerSrc = `
edges = LOAD 'in/edges' AS (user:int, follower:int);
ne = FILTER edges BY follower != 0;
g = GROUP ne BY user;
counts = FOREACH g GENERATE group AS user, COUNT(ne) AS n;
STORE counts INTO 'out/counts';
`

func TestCompileSingleShuffleJob(t *testing.T) {
	jobs := compile(t, followerSrc, CompileOptions{NumReduces: 3})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1:\n%v", len(jobs), jobs)
	}
	j := jobs[0]
	if j.Reduce == nil || j.Reduce.Kind != ReduceAggregate {
		t.Fatalf("reduce = %+v", j.Reduce)
	}
	if j.NumReduces != 3 {
		t.Errorf("NumReduces = %d", j.NumReduces)
	}
	if len(j.Inputs) != 1 || j.Inputs[0].Path != "in/edges" {
		t.Fatalf("inputs = %+v", j.Inputs)
	}
	in := j.Inputs[0]
	if len(in.Ops) != 1 || in.Ops[0].Kind != PhysFilter {
		t.Errorf("map ops = %+v", in.Ops)
	}
	if len(in.KeyCols) != 1 || in.KeyCols[0] != 0 {
		t.Errorf("key cols = %v", in.KeyCols)
	}
	if j.Output != "out/counts" || !j.Final {
		t.Errorf("output = %q final=%v", j.Output, j.Final)
	}
	if len(j.Reduce.Gens) != 2 {
		t.Errorf("gens = %d", len(j.Reduce.Gens))
	}
}

func TestCompileMapOnly(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (u:int, v:int);
f = FILTER a BY v > 2;
p = FOREACH f GENERATE u + v AS s;
STORE p INTO 'o';
`, CompileOptions{})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Reduce != nil {
		t.Error("map-only job should have no reduce")
	}
	if len(j.Inputs[0].Ops) != 2 {
		t.Errorf("ops = %+v", j.Inputs[0].Ops)
	}
	if j.Inputs[0].KeyCols != nil {
		t.Error("map-only input must have nil key cols")
	}
}

func TestCompileChainedShuffles(t *testing.T) {
	jobs := compile(t, `
w = LOAD 'weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
g2 = GROUP avgs BY a;
counts = FOREACH g2 GENERATE group AS a, COUNT(avgs) AS n;
STORE counts INTO 'out';
`, CompileOptions{})
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	first, second := jobs[0], jobs[1]
	if first.Final || !second.Final {
		t.Error("finality misassigned")
	}
	if second.Inputs[0].Path != first.Output {
		t.Errorf("chain: second reads %q, first writes %q", second.Inputs[0].Path, first.Output)
	}
	if len(second.Deps) != 1 || second.Deps[0] != first.ID {
		t.Errorf("deps = %v", second.Deps)
	}
	if !strings.HasPrefix(first.Output, "tmp/") {
		t.Errorf("intermediate output = %q", first.Output)
	}
}

func TestCompileJoin(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'e' AS (u:int, f:int);
b = LOAD 'e' AS (u:int, f:int);
j = JOIN a BY u, b BY f;
p = FOREACH j GENERATE a::f, b::u;
STORE p INTO 'o';
`, CompileOptions{NumReduces: 2})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Reduce.Kind != ReduceJoin {
		t.Fatalf("kind = %v", j.Reduce.Kind)
	}
	if len(j.Inputs) != 2 {
		t.Fatalf("inputs = %d", len(j.Inputs))
	}
	if j.Inputs[0].Tag != 0 || j.Inputs[1].Tag != 1 {
		t.Errorf("tags = %d,%d", j.Inputs[0].Tag, j.Inputs[1].Tag)
	}
	if j.Inputs[0].KeyCols[0] != 0 || j.Inputs[1].KeyCols[0] != 1 {
		t.Errorf("key cols = %v,%v", j.Inputs[0].KeyCols, j.Inputs[1].KeyCols)
	}
	// Post-join projection runs reduce-side.
	if len(j.Reduce.PostOps) != 1 || j.Reduce.PostOps[0].Kind != PhysProject {
		t.Errorf("post ops = %+v", j.Reduce.PostOps)
	}
}

func TestCompileOrderLimitSingleReduce(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (k, n:int);
o = ORDER a BY n DESC;
top = LIMIT o 5;
STORE top INTO 'o';
`, CompileOptions{NumReduces: 8})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Reduce.Kind != ReduceSort || j.NumReduces != 1 {
		t.Errorf("sort job: kind=%v reduces=%d", j.Reduce.Kind, j.NumReduces)
	}
	if len(j.Reduce.PostOps) != 1 || j.Reduce.PostOps[0].Kind != PhysLimit || j.Reduce.PostOps[0].Limit != 5 {
		t.Errorf("post ops = %+v", j.Reduce.PostOps)
	}
}

func TestCompileBareLimitBecomesSingleReducePass(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (k);
f = FILTER a BY k != 'z';
top = LIMIT f 3;
STORE top INTO 'o';
`, CompileOptions{NumReduces: 4})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Reduce == nil || j.Reduce.Kind != ReduceSort || j.NumReduces != 1 {
		t.Fatalf("bare limit job = %+v", j)
	}
	if len(j.Inputs[0].Ops) != 1 || j.Inputs[0].Ops[0].Kind != PhysFilter {
		t.Errorf("pre-limit map ops = %+v", j.Inputs[0].Ops)
	}
	if j.Inputs[0].KeyCols == nil || len(j.Inputs[0].KeyCols) != 0 {
		t.Errorf("constant key expected, got %v", j.Inputs[0].KeyCols)
	}
}

func TestCompileUnionFlattens(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (k, v:int);
b = LOAD 'y' AS (k, v:int);
u = UNION a, b;
g = GROUP u BY k;
s = FOREACH g GENERATE group, SUM(u.v);
STORE s INTO 'o';
`, CompileOptions{})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if len(j.Inputs) != 2 {
		t.Fatalf("union inputs = %d", len(j.Inputs))
	}
	if j.Inputs[0].Path != "x" || j.Inputs[1].Path != "y" {
		t.Errorf("paths = %q,%q", j.Inputs[0].Path, j.Inputs[1].Path)
	}
}

func TestCompileSharedVertexMaterializesOnce(t *testing.T) {
	// The airline pattern: one grouped count consumed by two stores.
	jobs := compile(t, `
fl = LOAD 'flights' AS (org, dst);
g = GROUP fl BY org;
c = FOREACH g GENERATE group AS org, COUNT(fl) AS n;
o1 = ORDER c BY n DESC;
t1 = LIMIT o1 20;
STORE t1 INTO 'out/top';
STORE c INTO 'out/all';
`, CompileOptions{})
	// Jobs: aggregate (materializes c), order+limit, identity publish.
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d:\n%v", len(jobs), jobs)
	}
	mat := 0
	for _, j := range jobs {
		if strings.HasPrefix(j.Output, "tmp/") {
			mat++
		}
	}
	if mat != 1 {
		t.Errorf("materialized %d temps, want 1", mat)
	}
}

func TestCompileDistinct(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (k, v);
d = DISTINCT a;
STORE d INTO 'o';
`, CompileOptions{NumReduces: 2})
	j := jobs[0]
	if j.Reduce.Kind != ReduceDistinct {
		t.Fatalf("kind = %v", j.Reduce.Kind)
	}
	if len(j.Inputs[0].KeyCols) != 2 {
		t.Errorf("distinct key = %v", j.Inputs[0].KeyCols)
	}
}

func TestCompileGroupAllSingleReduce(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (v:int);
g = GROUP a ALL;
c = FOREACH g GENERATE COUNT(a);
STORE c INTO 'o';
`, CompileOptions{NumReduces: 4})
	j := jobs[0]
	if j.NumReduces != 1 {
		t.Errorf("GROUP ALL reduces = %d, want 1", j.NumReduces)
	}
	if len(j.Inputs[0].KeyCols) != 0 || j.Inputs[0].KeyCols == nil {
		t.Errorf("constant key expected, got %v", j.Inputs[0].KeyCols)
	}
}

func TestCompileDigestPoints(t *testing.T) {
	p := plan(t, followerSrc)
	filterID := p.ByAlias("ne").ID
	groupID := p.ByAlias("g").ID
	feID := p.ByAlias("counts").ID
	jobs, err := Compile(p, CompileOptions{Points: []int{filterID, groupID, feID}})
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	pts := j.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	// Filter and group digests sit map-side; the FOREACH digest reduce-side.
	mapDigests := 0
	for _, op := range j.Inputs[0].Ops {
		if op.Kind == PhysDigest {
			mapDigests++
		}
	}
	if mapDigests != 2 {
		t.Errorf("map-side digests = %d, want 2 (filter + group)", mapDigests)
	}
	redDigests := 0
	for _, op := range j.Reduce.PostOps {
		if op.Kind == PhysDigest {
			redDigests++
		}
	}
	if redDigests != 1 {
		t.Errorf("reduce-side digests = %d, want 1 (foreach)", redDigests)
	}
}

func TestCompileLoadPoint(t *testing.T) {
	p := plan(t, followerSrc)
	loadID := p.ByAlias("edges").ID
	jobs, err := Compile(p, CompileOptions{Points: []int{loadID}})
	if err != nil {
		t.Fatal(err)
	}
	ops := jobs[0].Inputs[0].Ops
	if len(ops) == 0 || ops[0].Kind != PhysDigest {
		t.Errorf("load digest should be first map op, ops = %+v", ops)
	}
}

func TestCompileJoinPointReduceSide(t *testing.T) {
	p := plan(t, `
a = LOAD 'e' AS (u:int, f:int);
b = LOAD 'e' AS (u:int, f:int);
j = JOIN a BY u, b BY f;
p2 = FOREACH j GENERATE a::f, b::u;
STORE p2 INTO 'o';
`)
	jid := p.ByAlias("j").ID
	jobs, err := Compile(p, CompileOptions{Points: []int{jid}})
	if err != nil {
		t.Fatal(err)
	}
	post := jobs[0].Reduce.PostOps
	if len(post) < 1 || post[0].Kind != PhysDigest {
		t.Errorf("join digest should lead post ops: %+v", post)
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := compile(t, followerSrc, CompileOptions{NumReduces: 2})
	b := compile(t, followerSrc, CompileOptions{NumReduces: 2})
	if len(a) != len(b) {
		t.Fatal("job counts differ across compilations")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("job %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJobSpecClone(t *testing.T) {
	jobs := compile(t, followerSrc, CompileOptions{})
	orig := jobs[0]
	c := orig.Clone()
	c.Inputs[0].Path = "mutated"
	c.Inputs[0].KeyCols[0] = 99
	c.Reduce.PostOps = append(c.Reduce.PostOps, Op{Kind: PhysLimit})
	if orig.Inputs[0].Path == "mutated" {
		t.Error("clone aliases input path")
	}
	if orig.Inputs[0].KeyCols[0] == 99 {
		t.Error("clone aliases key cols")
	}
}

func TestTaskIDStableAcrossReplicas(t *testing.T) {
	js1 := &JobState{Spec: &JobSpec{ID: "a", Replica: 0}}
	js2 := &JobState{Spec: &JobSpec{ID: "b", Replica: 1}}
	t1 := &Task{Job: js1, Kind: MapTask, InputIdx: 1, Index: 4}
	t2 := &Task{Job: js2, Kind: MapTask, InputIdx: 1, Index: 4}
	if t1.ID() != t2.ID() {
		t.Errorf("task IDs differ: %q vs %q", t1.ID(), t2.ID())
	}
	r := &Task{Job: js1, Kind: ReduceTask, Index: 2}
	if r.ID() != "r002" {
		t.Errorf("reduce id = %q", r.ID())
	}
}

func TestKindStrings(t *testing.T) {
	if PhysFilter.String() != "filter" || PhysDigest.String() != "digest" {
		t.Error("PhysKind names")
	}
	if ReduceAggregate.String() != "aggregate" || ReduceSort.String() != "sort" {
		t.Error("ReduceKind names")
	}
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Error("TaskKind names")
	}
}
