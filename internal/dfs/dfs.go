// Package dfs provides the trusted storage layer ClusterBFT assumes
// (paper §2.3): an in-memory, append-only, HDFS-like file system. Files
// hold text records (lines); directories are implicit path prefixes, and
// MapReduce outputs follow the Hadoop convention of part files under an
// output directory. The file system counts bytes read and written so the
// Table 3 "HDFS write" metric can be reported.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"clusterbft/internal/obs"
)

// FS is a concurrency-safe in-memory file system. The zero value is not
// usable; construct with New.
type FS struct {
	// WriteHook, when set, transforms the lines of every Append before
	// they are stored; ReadHook transforms the result of each logical
	// read (once per ReadLines or ReadTree call, applied to the copy
	// handed to the caller — stored data is never touched). Both are
	// nil-safe and zero-cost when unset; they exist for fault injection,
	// which uses them to corrupt or truncate record streams at the
	// storage boundary. Set hooks before using the FS concurrently; a
	// hook must be a pure function and must not call back into the FS.
	ReadHook  func(path string, lines []string) []string
	WriteHook func(path string, lines []string) []string

	mu    sync.RWMutex
	files map[string]*file

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

type file struct {
	lines []string
	bytes int64
}

// New returns an empty file system.
func New() *FS {
	return &FS{files: make(map[string]*file)}
}

// ErrNotFound is returned when a path does not exist.
type ErrNotFound struct{ Path string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("dfs: %s: no such file", e.Path) }

// ErrExists is returned by Create when the path already exists.
type ErrExists struct{ Path string }

func (e *ErrExists) Error() string { return fmt.Sprintf("dfs: %s: file exists", e.Path) }

func clean(path string) string {
	return strings.TrimPrefix(strings.TrimSuffix(path, "/"), "/")
}

// Create makes an empty file at path, failing if it already exists.
func (fs *FS) Create(path string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return &ErrExists{Path: path}
	}
	fs.files[path] = &file{}
	return nil
}

// Append adds lines to the file at path, creating it if needed. The file
// system is append-only in keeping with cloud-store semantics (§1): there
// is no way to overwrite existing records in place.
func (fs *FS) Append(path string, lines ...string) {
	path = clean(path)
	if fs.WriteHook != nil {
		lines = fs.WriteHook(path, lines)
	}
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		f = &file{}
		fs.files[path] = f
	}
	f.lines = append(f.lines, lines...)
	f.bytes += n
	fs.mu.Unlock()
	fs.bytesWritten.Add(n)
}

// ReadLines returns a copy of the lines of the file at path.
func (fs *FS) ReadLines(path string) ([]string, error) {
	path = clean(path)
	out, err := fs.readRaw(path)
	if err == nil && fs.ReadHook != nil {
		out = fs.ReadHook(path, out)
	}
	return out, err
}

// readRaw is ReadLines without the read hook; ReadTree builds on it so a
// logical tree read passes through the hook exactly once.
func (fs *FS) readRaw(path string) ([]string, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.RUnlock()
		return nil, &ErrNotFound{Path: path}
	}
	out := make([]string, len(f.lines))
	copy(out, f.lines)
	n := f.bytes
	fs.mu.RUnlock()
	fs.bytesRead.Add(n)
	return out, nil
}

// Exists reports whether the exact path exists as a file.
func (fs *FS) Exists(path string) bool {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Delete removes the file at path (and only that file). Deleting a
// missing file is an error, matching HDFS -rm semantics.
func (fs *FS) Delete(path string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return &ErrNotFound{Path: path}
	}
	delete(fs.files, path)
	return nil
}

// DeleteTree removes every file whose path equals prefix or sits under
// prefix + "/". It returns the number of files removed.
func (fs *FS) DeleteTree(prefix string) int {
	prefix = clean(prefix)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for p := range fs.files {
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			delete(fs.files, p)
			n++
		}
	}
	return n
}

// List returns the sorted paths of all files at or under prefix. An empty
// prefix lists everything.
func (fs *FS) List(prefix string) []string {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if prefix == "" || p == prefix || strings.HasPrefix(p, prefix+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the stored byte size of the file at path (records plus one
// newline each).
func (fs *FS) Size(path string) (int64, error) {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, &ErrNotFound{Path: path}
	}
	return f.bytes, nil
}

// TreeSize returns the total byte size of all files at or under prefix.
func (fs *FS) TreeSize(prefix string) int64 {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for p, f := range fs.files {
		if prefix == "" || p == prefix || strings.HasPrefix(p, prefix+"/") {
			n += f.bytes
		}
	}
	return n
}

// LineCount returns the number of records in the file at path.
func (fs *FS) LineCount(path string) (int, error) {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, &ErrNotFound{Path: path}
	}
	return len(f.lines), nil
}

// ReadTree reads and concatenates, in sorted path order, every file at or
// under prefix. This is how MapReduce consumers read a part-file output
// directory.
func (fs *FS) ReadTree(prefix string) ([]string, error) {
	paths := fs.List(prefix)
	if len(paths) == 0 {
		return nil, &ErrNotFound{Path: prefix}
	}
	var out []string
	for _, p := range paths {
		lines, err := fs.readRaw(p)
		if err != nil {
			return nil, err
		}
		out = append(out, lines...)
	}
	if fs.ReadHook != nil {
		out = fs.ReadHook(clean(prefix), out)
	}
	return out, nil
}

// BytesWritten returns the cumulative bytes written since construction
// (or the last ResetCounters).
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// Instrument registers live views of the I/O counters into reg.
func (fs *FS) Instrument(reg *obs.Registry) {
	if fs == nil || reg == nil {
		return
	}
	reg.Func("dfs.bytes_written", fs.BytesWritten)
	reg.Func("dfs.bytes_read", fs.BytesRead)
	reg.Func("dfs.files", func() int64 {
		fs.mu.RLock()
		defer fs.mu.RUnlock()
		return int64(len(fs.files))
	})
}

// BytesRead returns the cumulative bytes read since construction (or the
// last ResetCounters).
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }

// ResetCounters zeroes the read/write byte counters without touching file
// contents; experiments call this between measured phases.
func (fs *FS) ResetCounters() {
	fs.bytesWritten.Store(0)
	fs.bytesRead.Store(0)
}
