package mapred

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"clusterbft/internal/digest"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// interRec is one shuffled record: its extracted key (canonical string
// for partitioning/grouping plus decoded values for key expressions), the
// join tag, and the payload tuple.
type interRec struct {
	keyStr string
	key    tuple.Tuple
	tag    int
	t      tuple.Tuple
}

// bytes estimates the serialized size of the record for local-I/O
// accounting (key + payload + framing).
func (r interRec) bytes() int64 {
	return int64(len(r.keyStr)) + int64(len(tuple.EncodeLine(r.t))) + 2
}

// digestFactory builds the digest writer for one verification point of
// the running task; nil disables digests.
type digestFactory func(point int) *digest.Writer

// opChain executes a physical operator chain over a tuple stream,
// feeding PhysDigest points into their writers.
type opChain struct {
	ops     []Op
	writers []*digest.Writer // parallel to ops; non-nil only for digests
	passed  []int64          // parallel to ops; PhysLimit counters
	digests int64            // records folded into digest writers
}

func newOpChain(ops []Op, df digestFactory) *opChain {
	c := &opChain{
		ops:     ops,
		writers: make([]*digest.Writer, len(ops)),
		passed:  make([]int64, len(ops)),
	}
	if df != nil {
		for i, op := range ops {
			if op.Kind == PhysDigest {
				c.writers[i] = df(op.Point)
			}
		}
	}
	return c
}

// apply runs one tuple through the chain; ok is false when the tuple was
// dropped (filter miss or limit exhausted).
func (c *opChain) apply(t tuple.Tuple) (tuple.Tuple, bool) {
	for i, op := range c.ops {
		switch op.Kind {
		case PhysFilter:
			if !op.Pred.Eval(t).Truthy() {
				return nil, false
			}
		case PhysProject:
			out := make(tuple.Tuple, len(op.Gens))
			for g, gen := range op.Gens {
				out[g] = gen.Expr.Eval(t)
			}
			t = out
		case PhysDigest:
			if c.writers[i] != nil {
				c.writers[i].Add(t)
				c.digests++
			}
		case PhysLimit:
			if c.passed[i] >= op.Limit {
				return nil, false
			}
			c.passed[i]++
		case PhysSample:
			if !sampleKeep(t, op.Fraction) {
				return nil, false
			}
		}
	}
	return t, true
}

// close finalizes all digest writers in the chain.
func (c *opChain) close() {
	for _, w := range c.writers {
		if w != nil {
			w.Close()
		}
	}
}

// sampleKeep deterministically selects a fraction of tuples by hashing
// their canonical bytes, so every replica samples the same subset and
// digests stay comparable (§5.4 determinism requirement). fraction is
// clamped to [0, 1]: it is client input, and converting a negative
// float to uint64 yields a platform-dependent value in Go (the spec
// leaves out-of-range float→integer conversions implementation-defined)
// rather than the "keep nothing" a negative fraction means.
func sampleKeep(t tuple.Tuple, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write(tuple.AppendCanonical(nil, t))
	const buckets = 1 << 20
	return h.Sum64()%buckets < uint64(fraction*buckets)
}

// partitionOf hash-partitions a shuffle key string.
func partitionOf(keyStr string, numReduces int) int {
	if numReduces <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(keyStr))
	return int(h.Sum32() % uint32(numReduces))
}

// extractKey projects the shuffle key out of a post-chain tuple.
func extractKey(t tuple.Tuple, keyCols []int) (string, tuple.Tuple) {
	key := make(tuple.Tuple, len(keyCols))
	for i, c := range keyCols {
		if c < len(t) {
			key[i] = t[c]
		} else {
			key[i] = tuple.Null()
		}
	}
	return tuple.EncodeLine(key), key
}

// mapOutcome carries the effects of one executed map task.
type mapOutcome struct {
	partitions [][]interRec // shuffle jobs: per-reduce-partition records
	outLines   []string     // map-only jobs: final output records
	recordsIn  int64
	recordsOut int64
	digested   int64
	localBytes int64 // shuffle bytes written
}

// corruptFn tampers tuples at the task source; nil for honest execution.
type corruptFn func(tuple.Tuple) tuple.Tuple

// runMapTask executes one map task over its split's raw lines.
func runMapTask(job *JobSpec, inputIdx int, lines []string, df digestFactory, corrupt corruptFn) *mapOutcome {
	in := &job.Inputs[inputIdx]
	chain := newOpChain(in.Ops, df)
	defer chain.close()
	out := &mapOutcome{}
	shuffle := in.KeyCols != nil
	if shuffle {
		out.partitions = make([][]interRec, job.NumReduces)
	}
	for _, line := range lines {
		t := tuple.DecodeLine(line, in.Schema)
		out.recordsIn++
		if corrupt != nil {
			t = corrupt(t)
		}
		t, ok := chain.apply(t)
		if !ok {
			continue
		}
		out.recordsOut++
		if shuffle {
			keyStr, key := extractKey(t, in.KeyCols)
			rec := interRec{keyStr: keyStr, key: key, tag: in.Tag, t: t}
			p := partitionOf(keyStr, job.NumReduces)
			out.partitions[p] = append(out.partitions[p], rec)
			out.localBytes += rec.bytes()
		} else {
			out.outLines = append(out.outLines, tuple.EncodeLine(t))
		}
	}
	out.digested = chain.digests
	return out
}

// reduceOutcome carries the effects of one executed reduce task.
type reduceOutcome struct {
	outLines   []string
	recordsIn  int64
	recordsOut int64
	digested   int64
}

// runReduceTask executes one reduce task over its partition's records,
// which the caller supplies in deterministic map-task order (the engine's
// stand-in for the paper's §5.4 "order intermediate output by mapper id"
// determinism fix).
func runReduceTask(spec *ReduceSpec, records []interRec, df digestFactory) (*reduceOutcome, error) {
	chain := newOpChain(spec.PostOps, df)
	defer chain.close()
	out := &reduceOutcome{recordsIn: int64(len(records))}
	emit := func(t tuple.Tuple) {
		if t, ok := chain.apply(t); ok {
			out.recordsOut++
			out.outLines = append(out.outLines, tuple.EncodeLine(t))
		}
	}

	switch spec.Kind {
	case ReduceSort:
		tuples := make([]tuple.Tuple, len(records))
		for i, r := range records {
			tuples[i] = r.t
		}
		if len(spec.OrderBy) > 0 {
			sort.SliceStable(tuples, func(i, j int) bool {
				return orderLess(tuples[i], tuples[j], spec.OrderBy)
			})
		}
		for _, t := range tuples {
			emit(t)
		}
	case ReduceDistinct:
		seen := make(map[string]bool, len(records))
		keys := make([]string, 0, len(records))
		byKey := make(map[string]tuple.Tuple, len(records))
		for _, r := range records {
			if !seen[r.keyStr] {
				seen[r.keyStr] = true
				keys = append(keys, r.keyStr)
				byKey[r.keyStr] = r.t
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			emit(byKey[k])
		}
	case ReduceAggregate, ReduceJoin:
		groups := make(map[string][]interRec)
		keys := make([]string, 0)
		for _, r := range records {
			if _, ok := groups[r.keyStr]; !ok {
				keys = append(keys, r.keyStr)
			}
			groups[r.keyStr] = append(groups[r.keyStr], r)
		}
		sort.Strings(keys)
		for _, k := range keys {
			group := groups[k]
			if spec.Kind == ReduceAggregate {
				emit(aggregateGroup(spec.Gens, group))
				continue
			}
			var left, right []tuple.Tuple
			for _, r := range group {
				if r.tag == 0 {
					left = append(left, r.t)
				} else {
					right = append(right, r.t)
				}
			}
			for _, l := range left {
				for _, r := range right {
					emit(tuple.Concat(l, r))
				}
			}
		}
	default:
		return nil, fmt.Errorf("mapred: unknown reduce kind %v", spec.Kind)
	}
	out.digested = chain.digests
	return out, nil
}

func orderLess(a, b tuple.Tuple, keys []pig.OrderKey) bool {
	for _, k := range keys {
		var av, bv tuple.Value
		if k.Col < len(a) {
			av = a[k.Col]
		}
		if k.Col < len(b) {
			bv = b[k.Col]
		}
		c := tuple.Compare(av, bv)
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// aggregateGroup evaluates one grouped FOREACH row: key expressions over
// the group key, aggregates over the bag.
func aggregateGroup(gens []pig.GenItem, group []interRec) tuple.Tuple {
	key := group[0].key
	out := make(tuple.Tuple, len(gens))
	for i, gen := range gens {
		if gen.Agg == nil {
			out[i] = gen.Expr.Eval(key)
			continue
		}
		out[i] = applyAggregate(gen.Agg, group)
	}
	return out
}

func applyAggregate(agg *pig.Aggregate, group []interRec) tuple.Value {
	switch agg.Func {
	case "count":
		return tuple.Int(int64(len(group)))
	case "sum", "avg":
		sum := tuple.Int(0)
		for _, r := range group {
			sum = tuple.Add(sum, colOf(r.t, agg.ColIdx))
		}
		if agg.Func == "sum" {
			return sum
		}
		// AVG uses the same integer-division determinism workaround as
		// the paper's prototype (§5.4) when operands are integral.
		return tuple.Div(sum, tuple.Int(int64(len(group))))
	case "min", "max":
		best := colOf(group[0].t, agg.ColIdx)
		for _, r := range group[1:] {
			v := colOf(r.t, agg.ColIdx)
			c := tuple.Compare(v, best)
			if (agg.Func == "min" && c < 0) || (agg.Func == "max" && c > 0) {
				best = v
			}
		}
		return best
	default:
		return tuple.Null()
	}
}

func colOf(t tuple.Tuple, idx int) tuple.Value {
	if idx >= 0 && idx < len(t) {
		return t[idx]
	}
	return tuple.Null()
}

// linesBytes sums serialized record sizes (records + newlines).
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}

// splitLines partitions a record count into deterministic contiguous
// splits of at most per records; n==0 yields one empty split so that
// empty inputs still produce a (digest-reporting) task.
func splitLines(n, per int) [][2]int {
	if per <= 0 {
		per = 10000
	}
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// joinPartitionName keeps part-file names sortable and unique per task.
func partFileName(kind TaskKind, inputIdx, index int) string {
	if kind == MapTask {
		return fmt.Sprintf("part-m-%d-%05d", inputIdx, index)
	}
	return fmt.Sprintf("part-r-%05d", index)
}

// cleanPath normalizes a DFS path for prefix joins.
func joinPath(prefix, p string) string {
	if prefix == "" {
		return p
	}
	return strings.TrimSuffix(prefix, "/") + "/" + strings.TrimPrefix(p, "/")
}
