package core

import (
	"reflect"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// chainScript has three GROUP stages; with verification points forced at
// avgs and counts it compiles into three chained sub-graphs c0 -> c1 -> c2.
const chainScript = `
w = LOAD 'data/weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
g2 = GROUP avgs BY a;
counts = FOREACH g2 GENERATE group AS a, COUNT(avgs) AS n;
g3 = GROUP counts BY n;
final = FOREACH g3 GENERATE group AS n, COUNT(counts) AS m;
STORE final INTO 'out/final';
`

// diamondScript splits avgs into two overlapping branches re-joined at the
// end; with points at avgs, hs and cs it compiles into a diamond
// c0 -> {c1, c2} -> c3.
const diamondScript = `
w = LOAD 'data/weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
hot = FILTER avgs BY a >= 5;
cold = FILTER avgs BY a <= 30;
gh = GROUP hot BY st;
hs = FOREACH gh GENERATE group AS st, COUNT(hot) AS n;
gc = GROUP cold BY st;
cs = FOREACH gc GENERATE group AS st, COUNT(cold) AS n;
j = JOIN hs BY st, cs BY st;
STORE j INTO 'out/j';
`

// liarHarness builds the offline-comparison repair scenario on n nodes:
// node-000 is a full-time commission liar and every other node is a 6x
// straggler, so the corrupt replica reliably finishes first and becomes
// the optimistic source for downstream sub-graphs.
func liarHarness(t *testing.T, nodes int, cfg Config) *harness {
	t.Helper()
	fs := dfs.New()
	fs.Append("data/weather", weatherData(2000)...)
	cl := cluster.New(nodes, 3)
	if err := cl.SetAdversary("node-000", cluster.FaultCommission, 1.0, 5); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < cl.Len(); i++ {
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, int64(i))
		adv.SlowFactor = 6
		cl.Nodes()[i].Adversary = adv
	}
	susp := NewSuspicionTable(0)
	eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := NewController(eng, cfg, susp, nil)
	return &harness{fs: fs, cl: cl, eng: eng, ctrl: ctrl}
}

// TestRestartExhaustionTearsDownConsumers is the regression test for the
// restart-cascade early return: when a mid-chain sub-graph exhausts
// MaxAttempts inside restart(), its already-launched consumers must be
// torn down with it — the pre-fix code returned before touching them,
// leaving downstream sub-graphs to run to "verified" against the dead
// upstream's stale optimistic output.
func TestRestartExhaustionTearsDownConsumers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 3
	cfg.MaxAttempts = 1 // the first restart of any sub-graph exhausts it
	cfg.ForcePointAliases = []string{"avgs", "counts"}
	h := liarHarness(t, 3, cfg)

	_, err := h.ctrl.Run(chainScript)
	if err == nil {
		t.Fatal("exhaustion must surface as a run error")
	}
	failed := false
	for _, cs := range h.ctrl.clusters {
		if cs.failed {
			failed = true
		}
	}
	if !failed {
		t.Error("no sub-graph marked failed despite the run error")
	}
	// The core invariant: a sub-graph may only count as verified when every
	// upstream it consumed from is verified too. Pre-fix, the terminal
	// sub-graph stays launched after its input sub-graph failed and later
	// "verifies" against the dead attempt's output.
	for _, cs := range h.ctrl.clusters {
		if !cs.verified {
			continue
		}
		for _, u := range cs.upstream {
			if !h.ctrl.clusters[u].verified {
				t.Errorf("cluster %d verified but upstream %d is not (failed=%v launched=%v)",
					cs.id, u, h.ctrl.clusters[u].failed, h.ctrl.clusters[u].launched)
			}
		}
	}
	// Consumers of a failed sub-graph must not be left running either.
	for _, cs := range h.ctrl.clusters {
		if cs.launched && !cs.verified && !cs.failed {
			t.Errorf("cluster %d left launched after upstream failure", cs.id)
		}
	}
	if free, total := h.eng.FreeSlotsTotal(), h.cl.TotalSlots(); free != total {
		t.Errorf("slots leaked across the teardown: free=%d total=%d", free, total)
	}
}

// TestRestartDiamondCascadeSingleCharge pins the cascade accounting on a
// diamond DAG: when both middle sub-graphs restart off the same deviant
// source in one verification event, their shared consumer is restarted
// (and charged) once per cascade, the run still verifies, and the final
// output matches a fault-free run.
func TestRestartDiamondCascadeSingleCharge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 3
	cfg.ForcePointAliases = []string{"avgs", "hs", "cs"}

	clean := newHarness(t, 16, 3, cfg)
	cleanRes, err := clean.ctrl.Run(diamondScript)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.outputLines(t, cleanRes, "out/j")
	if len(want) == 0 {
		t.Fatal("diamond script produced no output; scenario broken")
	}

	h := liarHarness(t, 3, cfg)
	res, err := h.ctrl.Run(diamondScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("diamond run did not verify")
	}
	if res.Clusters != 4 {
		t.Fatalf("expected 4 sub-graphs (diamond), got %d", res.Clusters)
	}
	if got := h.outputLines(t, res, "out/j"); !reflect.DeepEqual(got, want) {
		t.Errorf("verified output differs from clean run:\n got %v\nwant %v", got, want)
	}
	for _, cs := range h.ctrl.clusters {
		// One optimistic launch plus at most one restart per upstream
		// verification round; double-charging in a single cascade blows
		// past this bound and toward MaxAttempts.
		if cs.totalTries > 4 {
			t.Errorf("cluster %d charged %d attempts; cascade over-counting", cs.id, cs.totalTries)
		}
		if cs.totalTries >= cfg.MaxAttempts {
			t.Errorf("cluster %d burned all %d attempts on a recoverable fault", cs.id, cs.totalTries)
		}
	}
	if free, total := h.eng.FreeSlotsTotal(), h.cl.TotalSlots(); free != total {
		t.Errorf("slots leaked: free=%d total=%d", free, total)
	}
}

// TestRetryReArmsTimeoutPerAttempt guards the §4.2 step-6 loop: every
// re-initiated attempt gets a fresh verifier timer for its doubled
// timeout, keyed to the new attempt's sid. Two always-omitting nodes can
// hang the first attempts of both sub-graphs; if any attempt ran without
// its own timer the run would never drain past the hung replicas.
func TestRetryReArmsTimeoutPerAttempt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 2
	cfg.TimeoutUs = 60_000_000
	cfg.MaxAttempts = 8
	h := newHarness(t, 6, 2, cfg)
	for _, n := range []cluster.NodeID{"node-000", "node-001"} {
		if err := h.cl.SetAdversary(n, cluster.FaultOmission, 1.0, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("double omission should recover via timeout retries")
	}
	if res.Attempts <= res.Clusters {
		t.Fatalf("no re-initiation happened: attempts=%d clusters=%d", res.Attempts, res.Clusters)
	}
	// Each retried sub-graph must have doubled its timeout at least once;
	// the retry only fires because the fresh timer for the new sid did.
	doubled := false
	for _, cs := range h.ctrl.clusters {
		if !cs.verified {
			t.Errorf("cluster %d not verified", cs.id)
		}
		if cs.timeoutUs > cfg.TimeoutUs {
			doubled = true
		}
	}
	if !doubled {
		t.Error("no sub-graph carries a doubled timeout after retries")
	}
}

// TestRelaunchedAttemptStartsFromCleanOutput guards the attempt-scoped
// output namespace: a re-initiated attempt must never append onto a dead
// attempt's partial part-files, so the post-retry winner's output is
// byte-identical to a fault-free run (same records, same count — an
// append would duplicate records without changing the sorted key set).
func TestRelaunchedAttemptStartsFromCleanOutput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 2 // optimistic f+1: one commission fault forces a full re-run

	clean := newHarness(t, 16, 3, cfg)
	cleanRes, err := clean.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.outputLines(t, cleanRes, "out/counts")

	h := newHarness(t, 16, 3, cfg)
	if err := h.cl.SetAdversary("node-001", cluster.FaultCommission, 1.0, 7); err != nil {
		t.Fatal(err)
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts <= res.Clusters {
		t.Fatalf("scenario did not retry: attempts=%d clusters=%d", res.Attempts, res.Clusters)
	}
	got := h.outputLines(t, res, "out/counts")
	if len(got) != len(want) {
		t.Fatalf("record count %d != clean %d: relaunch appended onto stale output", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-retry winner output differs from clean run:\n got %v\nwant %v", got, want)
	}
}
