package mapred

import (
	"fmt"
	"reflect"
	"testing"

	"clusterbft/internal/tuple"
)

func TestRunSampleKeepsFraction(t *testing.T) {
	var lines []string
	for i := 0; i < 10000; i++ {
		lines = append(lines, fmt.Sprintf("%d\tpayload-%d", i, i))
	}
	tr := run(t, `
a = LOAD 'x' AS (k:int, v);
s = SAMPLE a 0.3;
STORE s INTO 'o';
`, map[string][]string{"x": lines}, CompileOptions{}, nil)
	got := tr.output(t, "o")
	frac := float64(len(got)) / float64(len(lines))
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("sampled fraction = %.3f, want ~0.30", frac)
	}
}

func TestRunSampleDeterministicAcrossRuns(t *testing.T) {
	var lines []string
	for i := 0; i < 2000; i++ {
		lines = append(lines, fmt.Sprintf("%d\tv", i))
	}
	in := map[string][]string{"x": lines}
	src := `
a = LOAD 'x' AS (k:int, v);
s = SAMPLE a 0.5;
STORE s INTO 'o';
`
	a := run(t, src, in, CompileOptions{}, nil).output(t, "o")
	b := run(t, src, in, CompileOptions{}, nil).output(t, "o")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampling must be deterministic (digest comparability)")
	}
}

func TestSampleIntoGroup(t *testing.T) {
	// SAMPLE composes with downstream shuffles.
	// Rows must be distinct: sampling hashes tuple values, so identical
	// rows are kept or dropped together (which keeps replicas
	// deterministic but would skew this test's counts).
	var lines []string
	for i := 0; i < 3000; i++ {
		lines = append(lines, fmt.Sprintf("k%d\t%d", i%5, i))
	}
	tr := run(t, `
a = LOAD 'x' AS (k, v:int);
s = SAMPLE a 0.5;
g = GROUP s BY k;
c = FOREACH g GENERATE group AS k, COUNT(s) AS n;
STORE c INTO 'o';
`, map[string][]string{"x": lines}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "o")
	if len(got) != 5 {
		t.Fatalf("groups = %d, want 5: %v", len(got), got)
	}
	var total int64
	for _, l := range got {
		total += tuple.DecodeLine(l, nil)[1].Int()
	}
	frac := float64(total) / 3000
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("sampled-then-counted fraction = %.3f", frac)
	}
}

func TestSampleKeepHelper(t *testing.T) {
	keep := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if sampleKeep(tuple.Tuple{tuple.Int(int64(i))}, 0.1) {
			keep++
		}
	}
	frac := float64(keep) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("keep fraction = %.3f, want ~0.10", frac)
	}
	// Fraction 1 keeps everything.
	for i := 0; i < 100; i++ {
		if !sampleKeep(tuple.Tuple{tuple.Int(int64(i))}, 1.0) {
			t.Fatal("fraction 1.0 must keep all")
		}
	}
	// Same tuple, same verdict.
	tup := tuple.Tuple{tuple.Str("stable")}
	first := sampleKeep(tup, 0.5)
	for i := 0; i < 10; i++ {
		if sampleKeep(tup, 0.5) != first {
			t.Fatal("sampleKeep not deterministic")
		}
	}
}

func TestSampleKeepFractionClamped(t *testing.T) {
	// A negative fraction must keep nothing: before clamping, the
	// float→uint64 conversion of a negative product is platform-defined
	// in Go, so a hostile or buggy script could sample differently per
	// replica and break digest comparability.
	tuples := make([]tuple.Tuple, 0, 1000)
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, tuple.Tuple{tuple.Int(int64(i)), tuple.Str("v")})
	}
	cases := []struct {
		fraction float64
		lo, hi   float64 // acceptable kept-fraction bounds
	}{
		{-0.1, 0, 0},
		{0, 0, 0},
		{0.5, 0.45, 0.55},
		{1, 1, 1},
		{1.5, 1, 1},
	}
	for _, tc := range cases {
		kept := 0
		for _, tp := range tuples {
			if sampleKeep(tp, tc.fraction) {
				kept++
			}
		}
		frac := float64(kept) / float64(len(tuples))
		if frac < tc.lo || frac > tc.hi {
			t.Errorf("fraction %v kept %.3f of tuples, want within [%v, %v]",
				tc.fraction, frac, tc.lo, tc.hi)
		}
	}
}

func TestCompileSampleIsMapSide(t *testing.T) {
	jobs := compile(t, `
a = LOAD 'x' AS (k, v:int);
s = SAMPLE a 0.5;
g = GROUP s BY k;
c = FOREACH g GENERATE group, COUNT(s);
STORE c INTO 'o';
`, CompileOptions{})
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (sample fuses into the map side)", len(jobs))
	}
	found := false
	for _, op := range jobs[0].Inputs[0].Ops {
		if op.Kind == PhysSample && op.Fraction == 0.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("PhysSample missing from map ops: %+v", jobs[0].Inputs[0].Ops)
	}
}
