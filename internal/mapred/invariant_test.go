package mapred

import (
	"fmt"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
)

// Slot-accounting invariant: whatever mixture of completions, kills,
// hung tasks and speculative backups a run goes through, every slot must
// be returned once the engine settles (completed or killed jobs).

func slotFixture(t *testing.T, rows int) (*Engine, []*JobSpec) {
	t.Helper()
	fs := dfs.New()
	var lines []string
	for i := 0; i < rows; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%40, i))
	}
	fs.Append("in/edges", lines...)
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(5, 2), nil, DefaultCostModel())
	return eng, jobs
}

func TestSlotInvariantHonestRun(t *testing.T) {
	eng, jobs := slotFixture(t, 25000)
	if _, err := eng.Submit(jobs[0]); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}

func TestSlotInvariantAfterKill(t *testing.T) {
	eng, jobs := slotFixture(t, 25000)
	if _, err := eng.Submit(jobs[0]); err != nil {
		t.Fatal(err)
	}
	// Kill mid-flight.
	eng.After(1_500_000, func() { eng.KillJob(jobs[0].ID) })
	eng.Run()
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots after kill = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}

func TestSlotInvariantKillReleasesHungTasks(t *testing.T) {
	eng, jobs := slotFixture(t, 25000)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(jobs[0]); err != nil {
		t.Fatal(err)
	}
	eng.After(30_000_000, func() { eng.KillJob(jobs[0].ID) })
	eng.Run()
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots after killing hung job = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}

func TestSlotInvariantWithSpeculation(t *testing.T) {
	eng, jobs := slotFixture(t, 25000)
	eng.Speculation = true
	adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 2)
	adv.SlowFactor = 25
	eng.Cluster.Nodes()[2].Adversary = adv
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !js.Done {
		t.Fatal("job incomplete")
	}
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots after speculative run = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}

func TestSlotInvariantSpeculationRescuedOmission(t *testing.T) {
	eng, jobs := slotFixture(t, 25000)
	eng.Speculation = true
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 0.6, 7); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if js.Done {
		// Hung originals were rescued; their slots must be back.
		if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
			t.Errorf("free slots = %d, want %d", got, eng.Cluster.TotalSlots())
		}
	}
}

func TestMetricsCPUIncludesLosingAttempts(t *testing.T) {
	// Speculative duplicates burn CPU even when they lose: a straggler
	// run with speculation costs at least as much CPU as a fully honest
	// run of the same workload (the duplicated work plus the slow
	// attempt's inflated duration are all accounted).
	run := func(straggler, spec bool) (int64, int64) {
		eng, jobs := slotFixture(t, 25000)
		eng.Speculation = spec
		if straggler {
			adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 2)
			adv.SlowFactor = 25
			eng.Cluster.Nodes()[2].Adversary = adv
		}
		if _, err := eng.Submit(jobs[0]); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return eng.Metrics.CPUTimeUs, eng.Metrics.SpeculativeTasks
	}
	honest, _ := run(false, false)
	with, backups := run(true, true)
	if backups == 0 {
		t.Skip("no speculation triggered in this layout")
	}
	if with <= honest {
		t.Errorf("straggler+speculation CPU %d should exceed honest CPU %d", with, honest)
	}
}
