package mapred

import (
	"testing"

	"clusterbft/internal/obs"
	"clusterbft/internal/tuple"
)

// Shuffle-path allocation pins: partitioning and sampling run once per
// shuffled record, so both must stay allocation-free (the inline FNV-1a
// loops replaced hash/fnv's heap-allocated states; the sample hash runs
// over a per-chain scratch buffer).

func TestPartitionOfAllocs(t *testing.T) {
	got := testing.AllocsPerRun(200, func() {
		_ = partitionOf("1234\tsome-key", 16)
	})
	if got != 0 {
		t.Errorf("partitionOf allocs/record = %v, want 0", got)
	}
}

func TestSampleKeepHashAllocs(t *testing.T) {
	row := tuple.Tuple{tuple.Int(42), tuple.Str("payload"), tuple.Int(7)}
	scratch := make([]byte, 0, 128)
	got := testing.AllocsPerRun(200, func() {
		scratch = tuple.AppendCanonical(scratch[:0], row)
		_ = sampleKeepHash(scratch, 0.5)
	})
	if got != 0 {
		t.Errorf("sample path allocs/record = %v, want 0", got)
	}
}

// TestMapInnerLoopObsAllocs pins the disabled-observability contract on
// the map-task inner loop: running a split with the zero taskObs (nil
// counters, the default when no registry is attached) allocates exactly
// as much as running it with live counters — the hook itself costs no
// allocations either way, so per-task allocation counts stay governed by
// the data plane alone.
func TestMapInnerLoopObsAllocs(t *testing.T) {
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 4})
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	lines := make([]string, 512)
	for i := range lines {
		lines[i] = "12\t34"
	}
	measure := func(o taskObs) float64 {
		return testing.AllocsPerRun(20, func() {
			_ = runMapTask(job, 0, lines, nil, nil, o)
		})
	}
	disabled := measure(taskObs{})
	r := obs.NewRegistry()
	enabled := measure(taskObs{
		mapRecords:     r.Counter("m"),
		shuffleRecords: r.Counter("s"),
		outRecords:     r.Counter("o"),
	})
	if disabled != enabled {
		t.Errorf("map inner-loop allocs: disabled=%v enabled=%v, want equal", disabled, enabled)
	}
}

// TestPartitionOfObsAllocs re-pins partitionOf now that the shuffle path
// runs under optional counters: the hot function itself takes no hook,
// and a surrounding nil counter touch stays free.
func TestPartitionOfObsAllocs(t *testing.T) {
	var c *obs.Counter
	got := testing.AllocsPerRun(200, func() {
		c.Inc()
		_ = partitionOf("1234\tsome-key", 16)
	})
	if got != 0 {
		t.Errorf("partitionOf+nil-counter allocs/record = %v, want 0", got)
	}
}

// TestSampleKeepHashMatchesWrapper: the scratch-buffer fast path and the
// allocate-per-call wrapper must agree on every verdict (replicas mixing
// the two would diverge on sampled subsets).
func TestSampleKeepHashMatchesWrapper(t *testing.T) {
	for i := 0; i < 500; i++ {
		row := tuple.Tuple{tuple.Int(int64(i)), tuple.Str("v")}
		canon := tuple.AppendCanonical(nil, row)
		for _, frac := range []float64{-1, 0, 0.3, 0.9, 1, 2} {
			if sampleKeep(row, frac) != sampleKeepHash(canon, frac) {
				t.Fatalf("sampleKeep disagreement at i=%d frac=%v", i, frac)
			}
		}
	}
}

// TestCombineFoldAllocs pins the combiner's steady-state cost: once a
// key has its table entry, folding another record with that key is
// allocation-free — the key projection fills the reusable keyBuf, the
// canonical encoding lands in the task's scratch buffer, and the probe
// compares stored keys against raw bytes without materializing a
// string.
func TestCombineFoldAllocs(t *testing.T) {
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 4})
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	if !job.Reduce.Combine {
		t.Fatal("follower job not marked combinable")
	}
	rows := make([]tuple.Tuple, 16)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.Int(int64(i)), tuple.Int(int64(i * 7))}
	}
	comb := newCombiner(job.Reduce, &job.Inputs[0], job.NumReduces)
	scratch := make([]byte, 0, 64)
	for _, r := range rows { // first sight: entries allocate here, not below
		scratch = comb.fold(r, job.Inputs[0].KeyCols, scratch)
	}
	got := testing.AllocsPerRun(100, func() {
		for _, r := range rows {
			scratch = comb.fold(r, job.Inputs[0].KeyCols, scratch)
		}
	})
	if got != 0 {
		t.Errorf("combiner fold allocs/batch = %v, want 0 on table hits", got)
	}
}
