// Package dfs provides the trusted storage layer ClusterBFT assumes
// (paper §2.3): an append-only, HDFS-like file system holding text
// records (lines). Directories are implicit path prefixes, and MapReduce
// outputs follow the Hadoop convention of part files under an output
// directory. The file system counts bytes read and written so the
// Table 3 "HDFS write" metric can be reported.
//
// Since PR 7 the at-rest representation is block-structured rather than
// a []string per file: records accumulate in a small unsealed tail and
// are sealed into columnar, length-prefixed blocks (~Options.BlockSize
// encoded bytes each, see block.go), optionally flate-compressed, and —
// under a resident-memory budget — spilled to a temp file on disk. All
// of this is invisible above the API line: reads reconstruct the exact
// record lines that were appended, verification digests are taken over
// canonical record bytes (never block bytes), and the line-level
// Read/Write hooks keep firing on exactly the streams they always saw.
package dfs

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"clusterbft/internal/obs"
)

// Options configures the block data plane of an FS. The zero value
// matches the historical behaviour as closely as possible: default
// block size, no compression, unlimited resident memory (nothing ever
// spills, no temp files are created).
type Options struct {
	// BlockSize is the target encoded size of one sealed block in
	// bytes; <= 0 selects DefaultBlockSize (256 KiB). Records never
	// split across blocks, so a single record larger than BlockSize
	// makes an oversized block.
	BlockSize int
	// MemBudget caps the resident encoded bytes of sealed blocks;
	// when an append pushes the total past the budget, the oldest
	// resident blocks spill to the spill file until the total is back
	// under. <= 0 disables spilling entirely. The budget governs
	// sealed blocks only: each file's unsealed tail additionally holds
	// up to ~BlockSize of pending records.
	MemBudget int64
	// SpillDir is where the spill file is created; "" uses the system
	// temp directory. The file is removed by Close.
	SpillDir string
	// Compress enables per-block flate compression of sealed blocks.
	Compress bool
}

// ParseBytes parses a human byte size: a non-negative integer with an
// optional k/m/g (KiB/MiB/GiB) suffix, case-insensitive.
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	if len(s) > 0 {
		switch s[len(s)-1] {
		case 'k', 'K':
			mult, s = 1<<10, s[:len(s)-1]
		case 'm', 'M':
			mult, s = 1<<20, s[:len(s)-1]
		case 'g', 'G':
			mult, s = 1<<30, s[:len(s)-1]
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("dfs: bad byte size %q", s)
	}
	return n * mult, nil
}

// FS is a concurrency-safe block-structured file system. The zero value
// is not usable; construct with New or NewWith.
type FS struct {
	// WriteHook, when set, transforms the lines of every Append before
	// they are stored; ReadHook transforms the result of each logical
	// read (once per ReadLines or ReadTree call, applied to the copy
	// handed to the caller — stored data is never touched). Both are
	// nil-safe and zero-cost when unset; they exist for fault injection,
	// which uses them to corrupt or truncate record streams at the
	// storage boundary. Append is the block-encode boundary and
	// ReadLines/ReadTree (and reader opens, which materialize through
	// them when a hook is set) are the block-decode boundary, so hooks
	// observe exactly the line streams they saw on the legacy []string
	// store. Set hooks before using the FS concurrently; a hook must be
	// a pure function and must not call back into the FS.
	ReadHook  func(path string, lines []string) []string
	WriteHook func(path string, lines []string) []string

	opts Options

	mu    sync.RWMutex
	files map[string]*file
	paths []string // incrementally-maintained sorted path index

	// Spill machinery, guarded by mu. The spill file is append-only and
	// never reclaimed: spilled block bytes stay valid at their offsets
	// even after the owning file is deleted, so open readers keep
	// working (HDFS unlink semantics).
	spillF   *os.File
	spillOff int64
	spillErr error

	// Block accounting, guarded by mu.
	residentBlocks int64 // sealed blocks currently held in memory
	residentBytes  int64 // their encoded bytes
	maxResident    int64 // high-water mark of residentBytes (post-spill)
	spilledBlocks  int64
	spilledBytes   int64
	rawPayload     int64 // uncompressed payload bytes of sealed blocks
	storedPayload  int64 // stored payload bytes (post-compression)
	residentQ      []*block

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// file is one stored file: sealed blocks plus the unsealed tail.
type file struct {
	blocks       []*block
	pending      []string
	pendingBytes int
	lines        int
	bytes        int64 // logical size: record bytes plus one newline each
}

// block is one sealed batch of records. data is nil once spilled, in
// which case (off, size) locate the encoded bytes in the spill file.
// Encoded bytes are immutable after sealing; readers may hold the data
// slice across a spill transition safely.
type block struct {
	records int
	logical int64
	data    []byte
	off     int64
	size    int
	freed   bool // owning file deleted; skip when evicting
}

// New returns an empty file system with default options (everything
// resident, uncompressed).
func New() *FS { return NewWith(Options{}) }

// NewWith returns an empty file system with the given block data-plane
// options. The spill file is created lazily on first spill; if creating
// or writing it fails, spilling stops and blocks stay resident (the
// sticky error is reported by SpillErr and Close).
func NewWith(opts Options) *FS {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	return &FS{opts: opts, files: make(map[string]*file)}
}

// Close releases the spill file, if any. Open readers holding spilled
// block references must not be used afterwards.
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	err := fs.spillErr
	if fs.spillF != nil {
		name := fs.spillF.Name()
		if cerr := fs.spillF.Close(); err == nil {
			err = cerr
		}
		if rerr := os.Remove(name); err == nil {
			err = rerr
		}
		fs.spillF = nil
	}
	return err
}

// ErrNotFound is returned when a path does not exist.
type ErrNotFound struct{ Path string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("dfs: %s: no such file", e.Path) }

// ErrExists is returned by Create when the path already exists.
type ErrExists struct{ Path string }

func (e *ErrExists) Error() string { return fmt.Sprintf("dfs: %s: file exists", e.Path) }

func clean(path string) string {
	return strings.TrimPrefix(strings.TrimSuffix(path, "/"), "/")
}

// ---- path index -------------------------------------------------------

// insertPath adds path to the sorted index; caller holds mu.
func (fs *FS) insertPath(path string) {
	i := sort.SearchStrings(fs.paths, path)
	if i < len(fs.paths) && fs.paths[i] == path {
		return
	}
	fs.paths = append(fs.paths, "")
	copy(fs.paths[i+1:], fs.paths[i:])
	fs.paths[i] = path
}

// removePathRange splices [lo, hi) out of the index; caller holds mu.
func (fs *FS) removePathRange(lo, hi int) {
	if lo >= hi {
		return
	}
	fs.paths = append(fs.paths[:lo], fs.paths[hi:]...)
}

// pathRanges returns the index ranges matching prefix: the exact path
// (if present) and the half-open range of everything under prefix+"/".
// Matches within each range are contiguous because the index is sorted;
// the two ranges are returned separately since unrelated paths (e.g.
// "a!b" between "a" and "a/x") may sit between them. An empty prefix
// matches everything. Caller holds mu.
func (fs *FS) pathRanges(prefix string) (exact bool, lo, hi int) {
	if prefix == "" {
		return false, 0, len(fs.paths)
	}
	i := sort.SearchStrings(fs.paths, prefix)
	exact = i < len(fs.paths) && fs.paths[i] == prefix
	sub := prefix + "/"
	lo = sort.SearchStrings(fs.paths, sub)
	// "/"+1 == "0": everything under prefix+"/" sorts before prefix+"0".
	hi = sort.SearchStrings(fs.paths, prefix+"0")
	return exact, lo, hi
}

// ---- writes -----------------------------------------------------------

// Create makes an empty file at path, failing if it already exists.
func (fs *FS) Create(path string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return &ErrExists{Path: path}
	}
	fs.files[path] = &file{}
	fs.insertPath(path)
	return nil
}

// Append adds lines to the file at path, creating it if needed. The file
// system is append-only in keeping with cloud-store semantics (§1): there
// is no way to overwrite existing records in place. Appended records land
// in the file's unsealed tail; once the tail reaches the target block
// size it is sealed into encoded (optionally compressed) blocks, which
// spill to disk when the resident-memory budget is exceeded.
func (fs *FS) Append(path string, lines ...string) {
	path = clean(path)
	if fs.WriteHook != nil {
		lines = fs.WriteHook(path, lines)
	}
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		f = &file{}
		fs.files[path] = f
		fs.insertPath(path)
	}
	f.pending = append(f.pending, lines...)
	f.pendingBytes += int(n)
	f.lines += len(lines)
	f.bytes += n
	fs.sealPending(f)
	fs.mu.Unlock()
	fs.bytesWritten.Add(n)
}

// sealPending seals full blocks off f's tail and enforces the resident
// budget; caller holds mu.
func (fs *FS) sealPending(f *file) {
	for f.pendingBytes >= fs.opts.BlockSize {
		// Take the shortest prefix of pending lines reaching the target.
		take, taken := 0, 0
		for _, l := range f.pending {
			taken += len(l) + 1
			take++
			if taken >= fs.opts.BlockSize {
				break
			}
		}
		chunk := f.pending[:take]
		data, rawLen := encodeBlockStats(chunk, fs.opts.Compress)
		b := &block{records: take, logical: int64(taken), data: data}
		f.blocks = append(f.blocks, b)
		rest := f.pending[take:]
		f.pending = append([]string(nil), rest...) // release sealed strings
		f.pendingBytes -= taken
		fs.rawPayload += int64(rawLen)
		fs.storedPayload += int64(len(data))
		fs.residentBlocks++
		fs.residentBytes += int64(len(data))
		fs.residentQ = append(fs.residentQ, b)
	}
	fs.enforceBudget()
	if fs.residentBytes > fs.maxResident {
		fs.maxResident = fs.residentBytes
	}
}

// enforceBudget spills the oldest resident blocks until resident bytes
// fit the budget; caller holds mu. On spill-file errors spilling is
// disabled (sticky) and blocks stay resident.
func (fs *FS) enforceBudget() {
	if fs.opts.MemBudget <= 0 || fs.spillErr != nil {
		return
	}
	for fs.residentBytes > fs.opts.MemBudget && len(fs.residentQ) > 0 {
		b := fs.residentQ[0]
		fs.residentQ = fs.residentQ[1:]
		if b.data == nil {
			continue
		}
		if b.freed {
			// Owning file deleted: drop without paying a spill write.
			fs.residentBlocks--
			fs.residentBytes -= int64(len(b.data))
			b.data = nil
			continue
		}
		if err := fs.spillBlock(b); err != nil {
			fs.spillErr = err
			return
		}
	}
}

// spillBlock writes one resident block to the spill file; caller holds
// mu.
func (fs *FS) spillBlock(b *block) error {
	if fs.spillF == nil {
		dir := fs.opts.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		f, err := os.CreateTemp(dir, "clusterbft-spill-*.blk")
		if err != nil {
			return err
		}
		fs.spillF = f
	}
	if _, err := fs.spillF.WriteAt(b.data, fs.spillOff); err != nil {
		return err
	}
	b.off = fs.spillOff
	b.size = len(b.data)
	fs.spillOff += int64(b.size)
	fs.residentBlocks--
	fs.residentBytes -= int64(b.size)
	fs.spilledBlocks++
	fs.spilledBytes += int64(b.size)
	b.data = nil
	return nil
}

// loadBlock returns the decoded lines of b. Safe for concurrent use:
// the encoded bytes are immutable once sealed, and a spilled block is
// read back with a positioned read. Decode failure means the trusted
// store itself broke (spill-file corruption), which the fault model
// assumes away — it panics rather than inventing an error path every
// reader would have to thread.
func (fs *FS) loadBlock(b *block) []string {
	fs.mu.RLock()
	data := b.data
	off, size := b.off, b.size
	fs.mu.RUnlock()
	if data == nil {
		buf := make([]byte, size)
		fs.mu.RLock()
		sf := fs.spillF
		fs.mu.RUnlock()
		if sf == nil {
			panic("dfs: spilled block with no spill file")
		}
		if _, err := sf.ReadAt(buf, off); err != nil {
			panic(fmt.Sprintf("dfs: spill read: %v", err))
		}
		data = buf
	}
	lines, err := DecodeBlock(data)
	if err != nil {
		panic(fmt.Sprintf("dfs: block decode: %v", err))
	}
	return lines
}

// ---- reads ------------------------------------------------------------

// ReadLines returns a copy of the lines of the file at path.
func (fs *FS) ReadLines(path string) ([]string, error) {
	path = clean(path)
	out, err := fs.readRaw(path)
	if err == nil && fs.ReadHook != nil {
		out = fs.ReadHook(path, out)
	}
	return out, err
}

// readRaw is ReadLines without the read hook; ReadTree builds on it so a
// logical tree read passes through the hook exactly once.
func (fs *FS) readRaw(path string) ([]string, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.RUnlock()
		return nil, &ErrNotFound{Path: path}
	}
	blocks := f.blocks // sealed prefix is append-only; snapshot is stable
	tail := f.pending[:len(f.pending):len(f.pending)]
	n := f.bytes
	total := f.lines
	fs.mu.RUnlock()

	out := make([]string, 0, total)
	for _, b := range blocks {
		out = append(out, fs.loadBlock(b)...)
	}
	out = append(out, tail...)
	fs.bytesRead.Add(n)
	return out, nil
}

// Exists reports whether the exact path exists as a file.
func (fs *FS) Exists(path string) bool {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Delete removes the file at path (and only that file). Deleting a
// missing file is an error, matching HDFS -rm semantics. Spilled block
// bytes are not reclaimed from the spill file (it is append-only), but
// resident block memory is released.
func (fs *FS) Delete(path string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return &ErrNotFound{Path: path}
	}
	fs.freeBlocks(f)
	delete(fs.files, path)
	if i := sort.SearchStrings(fs.paths, path); i < len(fs.paths) && fs.paths[i] == path {
		fs.removePathRange(i, i+1)
	}
	return nil
}

// freeBlocks releases the resident memory of f's sealed blocks; caller
// holds mu. Blocks still queued for eviction are marked freed and
// skipped there.
func (fs *FS) freeBlocks(f *file) {
	for _, b := range f.blocks {
		if b.freed {
			continue
		}
		b.freed = true
		if b.data != nil {
			fs.residentBlocks--
			fs.residentBytes -= int64(len(b.data))
			b.data = nil
		}
	}
}

// DeleteTree removes every file whose path equals prefix or sits under
// prefix + "/". It returns the number of files removed.
func (fs *FS) DeleteTree(prefix string) int {
	prefix = clean(prefix)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	exact, lo, hi := fs.pathRanges(prefix)
	n := hi - lo
	for _, p := range fs.paths[lo:hi] {
		fs.freeBlocks(fs.files[p])
		delete(fs.files, p)
	}
	fs.removePathRange(lo, hi)
	if exact {
		i := sort.SearchStrings(fs.paths, prefix)
		fs.freeBlocks(fs.files[prefix])
		delete(fs.files, prefix)
		fs.removePathRange(i, i+1)
		n++
	}
	return n
}

// List returns the sorted paths of all files at or under prefix. An
// empty prefix lists everything. The sorted path index makes this
// O(matched + log files) rather than a scan-and-sort of the whole map.
func (fs *FS) List(prefix string) []string {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	exact, lo, hi := fs.pathRanges(prefix)
	if !exact && lo >= hi {
		return nil
	}
	out := make([]string, 0, hi-lo+1)
	if exact {
		out = append(out, prefix)
	}
	return append(out, fs.paths[lo:hi]...)
}

// Size returns the stored byte size of the file at path (records plus one
// newline each). This is the logical size — the Table 3 metrics it feeds
// are independent of block encoding and compression.
func (fs *FS) Size(path string) (int64, error) {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, &ErrNotFound{Path: path}
	}
	return f.bytes, nil
}

// TreeSize returns the total byte size of all files at or under prefix.
func (fs *FS) TreeSize(prefix string) int64 {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	exact, lo, hi := fs.pathRanges(prefix)
	var n int64
	if exact {
		n += fs.files[prefix].bytes
	}
	for _, p := range fs.paths[lo:hi] {
		n += fs.files[p].bytes
	}
	return n
}

// LineCount returns the number of records in the file at path.
func (fs *FS) LineCount(path string) (int, error) {
	path = clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, &ErrNotFound{Path: path}
	}
	return f.lines, nil
}

// ReadTree reads and concatenates, in sorted path order, every file at or
// under prefix. This is how MapReduce consumers read a part-file output
// directory.
func (fs *FS) ReadTree(prefix string) ([]string, error) {
	paths := fs.List(prefix)
	if len(paths) == 0 {
		return nil, &ErrNotFound{Path: prefix}
	}
	var out []string
	for _, p := range paths {
		lines, err := fs.readRaw(p)
		if err != nil {
			return nil, err
		}
		out = append(out, lines...)
	}
	if fs.ReadHook != nil {
		out = fs.ReadHook(clean(prefix), out)
	}
	return out, nil
}

// ---- counters ---------------------------------------------------------

// BytesWritten returns the cumulative logical bytes written since
// construction (or the last ResetCounters).
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// BytesRead returns the cumulative logical bytes read since construction
// (or the last ResetCounters).
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }

// ResetCounters zeroes the read/write byte counters without touching file
// contents; experiments call this between measured phases.
func (fs *FS) ResetCounters() {
	fs.bytesWritten.Store(0)
	fs.bytesRead.Store(0)
}

// ResidentBlocks counts sealed blocks currently held in memory.
func (fs *FS) ResidentBlocks() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.residentBlocks
}

// ResidentBytes sums the encoded bytes of resident sealed blocks.
func (fs *FS) ResidentBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.residentBytes
}

// MaxResidentBytes is the high-water mark of ResidentBytes, sampled
// after each append's budget enforcement — the number the out-of-core
// experiment checks against the configured budget.
func (fs *FS) MaxResidentBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.maxResident
}

// SpilledBlocks counts blocks written to the spill file.
func (fs *FS) SpilledBlocks() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.spilledBlocks
}

// SpillBytes sums the encoded bytes written to the spill file.
func (fs *FS) SpillBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.spilledBytes
}

// CompressedRatio reports stored/raw payload bytes over all sealed
// blocks, in percent (100 when nothing was compressed; 0 when nothing
// was sealed yet reads as 100 for stability).
func (fs *FS) CompressedRatio() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.rawPayload == 0 {
		return 100
	}
	return fs.storedPayload * 100 / fs.rawPayload
}

// SpillErr returns the sticky spill-file error, if any; after such an
// error blocks stay resident (the budget is best-effort, not a
// correctness property).
func (fs *FS) SpillErr() error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.spillErr
}

// Instrument registers live views of the I/O and block counters into reg.
func (fs *FS) Instrument(reg *obs.Registry) {
	if fs == nil || reg == nil {
		return
	}
	reg.Func("dfs.bytes_written", fs.BytesWritten)
	reg.Func("dfs.bytes_read", fs.BytesRead)
	reg.Func("dfs.files", func() int64 {
		fs.mu.RLock()
		defer fs.mu.RUnlock()
		return int64(len(fs.files))
	})
	reg.Func("dfs.blocks_resident", fs.ResidentBlocks)
	reg.Func("dfs.resident_bytes", fs.ResidentBytes)
	reg.Func("dfs.max_resident_bytes", fs.MaxResidentBytes)
	reg.Func("dfs.blocks_spilled", fs.SpilledBlocks)
	reg.Func("dfs.spill_bytes", fs.SpillBytes)
	reg.Func("dfs.compressed_ratio", fs.CompressedRatio)
}
