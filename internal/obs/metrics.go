package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (no-ops) and safe for concurrent use: task bodies on
// the worker pool increment counters while the simulation goroutine
// reads others. Sums are order-independent, so concurrent increments do
// not threaten determinism of final values.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions (slots in use,
// queue depth). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed, registration-time bucket
// boundaries (upper bounds, inclusive, in ascending order) plus an
// implicit +Inf bucket, and tracks sum and count. Observe is nil-safe
// and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// DurationBucketsUs is a general-purpose set of virtual-microsecond
// latency boundaries: 1ms..100s in roughly 3x steps.
var DurationBucketsUs = []int64{
	1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
	1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
}

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds, for components that need bucketed observations without
// a registry (the engine's speculation thresholds, for instance).
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values; 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Quantile returns the upper bound of the bucket holding the q-th
// observation (0 < q <= 1). The second result is false when the
// histogram is nil, empty, or the quantile falls in the +Inf bucket —
// callers must treat that as "no estimate" rather than a value.
// Bucket upper bounds make this a conservative (over-)estimate, which
// is the right bias for straggler thresholds.
func (h *Histogram) Quantile(q float64) (int64, bool) {
	if h == nil {
		return 0, false
	}
	n := h.n.Load()
	if n == 0 || q <= 0 || q > 1 {
		return 0, false
	}
	target := int64(float64(n)*q + 0.999999)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= target {
			return b, true
		}
	}
	return 0, false // quantile lives in the +Inf bucket
}

// BucketCount returns the count of bucket i (i == len(Bounds()) is the
// +Inf bucket).
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Label is one key=value pair attached to an instrument family member.
type Label struct {
	K string
	V string
}

// seriesKey identifies one instrument: its kind, base name, and the
// canonical label suffix (empty for unlabeled instruments). Keying the
// registry by the full triple lets the same base name carry many label
// sets, and keeps register-or-get semantics per (kind, name, labels).
type seriesKey struct {
	kind   string
	name   string
	suffix string
}

// series is one registered instrument plus the metadata the snapshot
// and exposition encoders need (base name, parsed labels).
type series struct {
	key    seriesKey
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

// Registry is a named collection of instruments. Register-or-get
// methods return the existing instrument when the (kind, name, labels)
// triple is taken, so components created in sequence (e.g. one engine
// per experiment rig) accumulate into shared counters. Func gauges are
// read-only views over external state (the mapred.Metrics compatibility
// view); re-registering a func name replaces the reader.
//
// Labeled families are registered through With: reg.With("policy",
// "quiz").Counter("verify.tasks") creates the series
// verify.tasks{policy="quiz"}. Label resolution happens once at
// registration; the returned instruments are the same atomic types as
// unlabeled ones, so hot-path Add/Observe stays allocation-free.
//
// All methods are nil-safe: a nil *Registry hands out nil instruments,
// which are themselves no-ops, so "metrics off" needs no wiring at all.
type Registry struct {
	mu     sync.Mutex
	series map[seriesKey]*series
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[seriesKey]*series),
		help:   make(map[string]string),
	}
}

// get registers (or returns the existing) series for key.
func (r *Registry) get(key seriesKey, labels []Label) *series {
	s := r.series[key]
	if s == nil {
		s = &series{key: key, labels: labels}
		r.series[key] = s
	}
	return s
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name string) *Counter {
	return r.counter(name, nil, "")
}

func (r *Registry) counter(name string, labels []Label, suffix string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(seriesKey{kind: KindCounter, name: name, suffix: suffix}, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	return r.gauge(name, nil, "")
}

func (r *Registry) gauge(name string, labels []Label, suffix string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(seriesKey{kind: KindGauge, name: name, suffix: suffix}, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram under name.
// bounds are ascending upper bounds; they are fixed at first
// registration and later bounds arguments for the same name are ignored.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	return r.histogram(name, bounds, nil, "")
}

func (r *Registry) histogram(name string, bounds []int64, labels []Label, suffix string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(seriesKey{kind: KindHist, name: name, suffix: suffix}, labels)
	if s.h == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		s.h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return s.h
}

// Func registers a read-only gauge computed at snapshot time. Replaces
// any previous func under the same name.
func (r *Registry) Func(name string, fn func() int64) {
	r.fnGauge(name, fn, nil, "")
}

func (r *Registry) fnGauge(name string, fn func() int64, labels []Label, suffix string) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(seriesKey{kind: KindFunc, name: name, suffix: suffix}, labels)
	s.fn = fn
}

// Help records the HELP text rendered for every series of the named
// family by the Prometheus exposition encoder. Plain-text snapshots
// ignore it.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// View is a registry handle with a fixed label set. Instruments
// registered through a View become members of labeled families; the
// label set is canonicalised (key-sorted, escaped) once, when the View
// is built, so registration through a long-lived View adds no per-call
// label work beyond a map lookup.
//
// A nil View (from a nil Registry) hands out nil instruments, keeping
// the whole chain nil-safe: reg.With("a", "b").Counter("x").Inc() is a
// no-op when reg is nil.
type View struct {
	r      *Registry
	labels []Label
	suffix string
}

// With returns a View whose instruments carry the given label pairs
// (key1, value1, key2, value2, ...). A trailing odd argument is
// ignored. Keys are sorted, so With("a","1","b","2") and
// With("b","2","a","1") address the same series.
func (r *Registry) With(kv ...string) *View {
	if r == nil {
		return nil
	}
	n := len(kv) / 2
	labels := make([]Label, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, Label{K: kv[i], V: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].K < labels[j].K })
	return &View{r: r, labels: labels, suffix: labelSuffix(labels)}
}

// With extends the view's label set with more pairs, returning a new
// View. The receiver is unchanged.
func (v *View) With(kv ...string) *View {
	if v == nil {
		return nil
	}
	flat := make([]string, 0, len(v.labels)*2+len(kv))
	for _, l := range v.labels {
		flat = append(flat, l.K, l.V)
	}
	flat = append(flat, kv...)
	return v.r.With(flat...)
}

// Counter registers (or returns the existing) labeled counter.
func (v *View) Counter(name string) *Counter {
	if v == nil {
		return nil
	}
	return v.r.counter(name, v.labels, v.suffix)
}

// Gauge registers (or returns the existing) labeled gauge.
func (v *View) Gauge(name string) *Gauge {
	if v == nil {
		return nil
	}
	return v.r.gauge(name, v.labels, v.suffix)
}

// Histogram registers (or returns the existing) labeled histogram.
func (v *View) Histogram(name string, bounds []int64) *Histogram {
	if v == nil {
		return nil
	}
	return v.r.histogram(name, bounds, v.labels, v.suffix)
}

// Func registers a labeled read-only gauge computed at snapshot time.
func (v *View) Func(name string, fn func() int64) {
	if v == nil {
		return
	}
	v.r.fnGauge(name, fn, v.labels, v.suffix)
}

// labelSuffix renders labels canonically as {k="v",...} with Prometheus
// value escaping; empty string for an empty label set.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies Prometheus text-format label escaping:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Instrument kinds as reported in Sample.Kind.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindHist    = "hist"
	KindFunc    = "func"
)

// Sample is one named value of a registry snapshot. Histograms expand
// into one sample per bucket plus _count and _sum. Labels is the
// canonical {k="v",...} suffix, empty for unlabeled instruments.
type Sample struct {
	Name   string
	Labels string
	Kind   string // "counter", "gauge", "hist", "func"
	Value  int64
}

// sortedSeries returns the registry's series ordered by (name, labels,
// kind). Caller must hold r.mu.
func (r *Registry) sortedSeries() []*series {
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.name != b.name {
			return a.name < b.name
		}
		if a.suffix != b.suffix {
			return a.suffix < b.suffix
		}
		return a.kind < b.kind
	})
	return out
}

// Snapshot reads every instrument into a deterministic sample list,
// sorted by (Name, Labels).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.series)+4*len(r.series)/2)
	for _, s := range r.sortedSeries() {
		switch s.key.kind {
		case KindCounter:
			out = append(out, Sample{Name: s.key.name, Labels: s.key.suffix, Kind: KindCounter, Value: s.c.Value()})
		case KindGauge:
			out = append(out, Sample{Name: s.key.name, Labels: s.key.suffix, Kind: KindGauge, Value: s.g.Value()})
		case KindFunc:
			out = append(out, Sample{Name: s.key.name, Labels: s.key.suffix, Kind: KindFunc, Value: s.fn()})
		case KindHist:
			h, lb := s.h, s.key.suffix
			out = append(out, Sample{Name: s.key.name + "_count", Labels: lb, Kind: KindHist, Value: h.Count()})
			out = append(out, Sample{Name: s.key.name + "_sum", Labels: lb, Kind: KindHist, Value: h.Sum()})
			for i, b := range h.bounds {
				out = append(out, Sample{
					Name: s.key.name + "_le_" + strconv.FormatInt(b, 10), Labels: lb, Kind: KindHist, Value: h.BucketCount(i),
				})
			}
			out = append(out, Sample{Name: s.key.name + "_le_inf", Labels: lb, Kind: KindHist, Value: h.BucketCount(len(h.bounds))})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// RenderText formats the snapshot as an aligned two-column table, one
// series per line, sorted by (name, labels). It shares the Snapshot
// path with the Prometheus encoder, so the file dump and the HTTP
// exposition cannot drift.
func (r *Registry) RenderText() string {
	samples := r.Snapshot()
	width := 0
	for _, s := range samples {
		if n := len(s.Name) + len(s.Labels); n > width {
			width = n
		}
	}
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%-*s  %d\n", width, s.Name+s.Labels, s.Value)
	}
	return b.String()
}
