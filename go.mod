module clusterbft

go 1.24
