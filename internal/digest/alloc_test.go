package digest

import (
	"testing"

	"clusterbft/internal/tuple"
)

// TestWriterAddAllocs pins the per-record cost of folding a tuple into a
// verification digest: zero allocations once the writer's canonical
// buffer is warm. Every record of every verified stream passes through
// Add, so a regression here multiplies across whole jobs.
func TestWriterAddAllocs(t *testing.T) {
	w := NewWriter(Key{SID: "s", Point: 1, Task: "m0"}, 0, 0, func(Report) {})
	row := tuple.Tuple{tuple.Int(7), tuple.Str("some-payload-column"), tuple.Float(2.5)}
	w.Add(row) // warm the canonical buffer
	got := testing.AllocsPerRun(200, func() {
		w.Add(row)
	})
	if got != 0 {
		t.Errorf("Writer.Add allocs/record = %v, want 0", got)
	}
}
