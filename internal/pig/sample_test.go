package pig

import (
	"strings"
	"testing"

	"clusterbft/internal/tuple"
)

func TestParseSample(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (k, v:int);
s = SAMPLE a 0.25;
STORE s INTO 'o';
`)
	v := p.ByAlias("s")
	if v == nil || v.Kind != OpSample {
		t.Fatalf("sample vertex: %v", v)
	}
	if v.Fraction != 0.25 {
		t.Errorf("fraction = %v", v.Fraction)
	}
	if v.Schema.Len() != 2 {
		t.Errorf("sample keeps parent schema: %v", v.Schema)
	}
	if OpSample.IsShuffle() {
		t.Error("SAMPLE is map-side")
	}
	if OpSample.String() != "SAMPLE" {
		t.Error("kind name")
	}
}

func TestParseSampleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"zero", "a = LOAD 'x' AS (k);\ns = SAMPLE a 0.0;\nSTORE s INTO 'o';", "fraction"},
		{"above one", "a = LOAD 'x' AS (k);\ns = SAMPLE a 1.5;\nSTORE s INTO 'o';", "fraction"},
		{"not number", "a = LOAD 'x' AS (k);\ns = SAMPLE a lots;\nSTORE s INTO 'o';", "fraction"},
		{"grouped", "a = LOAD 'x' AS (k);\ng = GROUP a BY k;\ns = SAMPLE g 0.5;\nSTORE s INTO 'o';", "grouped"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want %q", err, c.want)
			}
		})
	}
}

func TestSampleFractionOne(t *testing.T) {
	// SAMPLE a 1 keeps everything (integer literal accepted).
	p := mustParse(t, `
a = LOAD 'x' AS (k);
s = SAMPLE a 1;
STORE s INTO 'o';
`)
	if p.ByAlias("s").Fraction != 1 {
		t.Errorf("fraction = %v", p.ByAlias("s").Fraction)
	}
}

func TestNewScalarFunctions(t *testing.T) {
	s := tuple.NewSchema("txt", "f")
	row := tuple.Tuple{tuple.Str("hello world"), tuple.Float(2.5)}
	cases := []struct {
		src  string
		want tuple.Value
	}{
		{"SUBSTRING(txt, 0, 5)", tuple.Str("hello")},
		{"SUBSTRING(txt, 6, 50)", tuple.Str("world")},
		{"SUBSTRING(txt, 99, 5)", tuple.Str("")},
		{"SUBSTRING(txt, -3, 2)", tuple.Str("he")},
		{"ROUND(f)", tuple.Int(3)},
		{"ROUND(f - 3)", tuple.Int(-1)}, // round(-0.5) -> -1
		{"ROUND(7)", tuple.Int(7)},
		{"REPLACE(txt, 'world', 'pig')", tuple.Str("hello pig")},
		{"REPLACE(txt, 'zzz', 'x')", tuple.Str("hello world")},
	}
	for _, c := range cases {
		e := parseTestExpr(t, c.src)
		if err := e.Bind(s); err != nil {
			t.Fatalf("Bind(%q): %v", c.src, err)
		}
		got := e.Eval(row)
		if !tuple.Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("%q = %v (%v), want %v (%v)", c.src, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}
