package core

import (
	"fmt"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/mapred"
)

// checkLedger pins the cost-attribution invariant at quiesce: the four
// ledger buckets partition Metrics.CPUTimeUs exactly, so the in-flight
// residue is zero once the controller has drained.
func checkLedger(t *testing.T, h *harness, label string) mapred.CostBuckets {
	t.Helper()
	b := h.eng.Ledger.Buckets()
	if got, want := b.TotalUs(), h.eng.Metrics.CPUTimeUs; got != want {
		t.Errorf("%s: ledger buckets sum to %dus, engine charged %dus (in_flight=%d)",
			label, got, want, want-got)
	}
	return b
}

// TestCostLedgerFaultFree: on an honest cluster every policy's spend
// decomposes into committed work plus that policy's verification bucket
// — nothing is superseded, so recovery_rerun stays zero, and the quiz
// modes pay their redundancy as quiz CPU while full-r pays it as the
// r-1 non-winner replicas.
func TestCostLedgerFaultFree(t *testing.T) {
	for _, p := range []Policy{PolicyFull, PolicyQuiz, PolicyDeferred, PolicyAuto} {
		cfg := DefaultConfig()
		cfg.VerifyPolicy = p
		cfg.QuizFraction = 1
		h := newHarness(t, 16, 3, cfg)
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("policy %v: not verified", p)
		}
		b := checkLedger(t, h, p.String())
		if b.CommittedUs == 0 {
			t.Errorf("policy %v: no committed CPU", p)
		}
		if b.RecoveryRerunUs != 0 {
			t.Errorf("policy %v: fault-free run charged %dus recovery_rerun", p, b.RecoveryRerunUs)
		}
		switch p {
		case PolicyFull:
			if b.VerifyFullUs == 0 {
				t.Errorf("full-r charged no verify_full (non-winner replicas)")
			}
			if b.VerifyQuizUs != 0 || b.VerifyDeferredUs != 0 {
				t.Errorf("full-r charged quiz buckets: %+v", b)
			}
		case PolicyQuiz:
			if b.VerifyQuizUs == 0 {
				t.Errorf("quiz policy charged no verify_quiz")
			}
		case PolicyDeferred, PolicyAuto: // auto resolves to deferred on a clean history
			if b.VerifyDeferredUs == 0 {
				t.Errorf("policy %v charged no verify_deferred", p)
			}
		}
		// The ledger's committed+waste view must agree with the engine's
		// pinned committed/lost split: lost CPU is exactly waste plus the
		// lost share of superseded attempts (zero here).
		if b.VerifyUs()*2 > b.TotalUs() && p != PolicyFull {
			t.Errorf("policy %v: verification overhead %dus dominates total %dus", p, b.VerifyUs(), b.TotalUs())
		}
	}
}

// TestCostLedgerUnderCommission: with replica-0 map tasks corrupted, the
// cheap policies escalate (superseded attempts land in recovery_rerun)
// and full-r outvotes the liar in place (its committed work becomes
// verification redundancy). The sum invariant holds either way.
func TestCostLedgerUnderCommission(t *testing.T) {
	for _, p := range []Policy{PolicyFull, PolicyQuiz, PolicyDeferred} {
		cfg := DefaultConfig()
		cfg.VerifyPolicy = p
		cfg.QuizFraction = 1
		h := commissionHarness(t, cfg)
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("policy %v: not verified", p)
		}
		b := checkLedger(t, h, p.String())
		switch p {
		case PolicyFull:
			// The corrupted replica commits but never wins: its spend is
			// full-r verification redundancy, not committed output.
			if b.VerifyFullUs == 0 {
				t.Errorf("full-r: corrupt replica's CPU not in verify_full: %+v", b)
			}
		default:
			// Quiz catches the liar and the attempt is escalated:
			// everything the superseded attempt spent — its tasks AND the
			// quizzes that exposed it — is recovery re-run cost, and the
			// replacement full-r attempt pays verify_full redundancy.
			if b.RecoveryRerunUs == 0 {
				t.Errorf("policy %v: escalation charged no recovery_rerun: %+v", p, b)
			}
			if b.VerifyFullUs == 0 {
				t.Errorf("policy %v: escalated full-r attempt charged no verify_full: %+v", p, b)
			}
			if h.eng.QuizTasks == 0 {
				t.Errorf("policy %v: no quiz tasks ran", p)
			}
		}
	}
}

// TestCostLedgerAcrossRuns: one controller serving several Runs (with a
// faulty middle run) keeps the invariant as folded sids accumulate into
// the settled buckets — the ledger is cumulative, like CPUTimeUs.
func TestCostLedgerAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VerifyPolicy = PolicyQuiz
	cfg.QuizFraction = 1
	h := commissionHarness(t, cfg)
	hook := h.eng.TaskHook
	for run := 0; run < 3; run++ {
		if run == 1 {
			h.eng.TaskHook = hook
		} else {
			h.eng.TaskHook = nil
		}
		if _, err := h.ctrl.Run(weatherScript); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		checkLedger(t, h, "after run")
	}
	if b := h.eng.Ledger.Buckets(); b.RecoveryRerunUs == 0 {
		t.Error("faulty middle run left no recovery_rerun spend")
	}
}

// TestCostLedgerNoLeakAcrossRuns: a controller reused for many
// sequential scripts must not accrete ledger state. Every run folds its
// sids at teardown, and teardownRun drops the fold tombstones once the
// simulation has drained — so live and folded map sizes must return to
// zero after every run, including runs that exercised the retry path
// (superseded attempt groups are where tombstones come from). The
// buckets-sum invariant (I6) must also keep holding as charges
// accumulate across runs.
func TestCostLedgerNoLeakAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 2
	cfg.TimeoutUs = 60_000_000
	h := newHarness(t, 6, 2, cfg)
	// Omission nodes force verifier-timeout retries, producing superseded
	// sids whose late charges need tombstones.
	for i, n := range []cluster.NodeID{"node-000", "node-001"} {
		if err := h.cl.SetAdversary(n, cluster.FaultOmission, 0.9, int64(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	retried := false
	for run := 0; run < 3; run++ {
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !res.Verified {
			t.Fatalf("run %d: not verified", run)
		}
		if res.Attempts > res.Clusters {
			retried = true
		}
		live, folded := h.eng.Ledger.Sizes()
		if live != 0 || folded != 0 {
			t.Fatalf("run %d: ledger retains live=%d folded=%d sids after teardown", run, live, folded)
		}
		checkLedger(t, h, fmt.Sprintf("run %d", run))
	}
	if !retried {
		t.Error("scenario lost its shape: no run exercised the retry path")
	}
}
