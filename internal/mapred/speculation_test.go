package mapred

import (
	"fmt"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/pig"
)

// specFixture builds an engine over enough data for multiple map tasks.
func specFixture(t *testing.T, nodes, slots int, speculation bool) (*Engine, []*JobSpec) {
	t.Helper()
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ { // 3 map splits
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	p, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(nodes, slots), nil, DefaultCostModel())
	eng.Speculation = speculation
	return eng, p
}

func compileHelper(src string, opts CompileOptions) ([]*JobSpec, error) {
	pl, err := parseHelper(src)
	if err != nil {
		return nil, err
	}
	return Compile(pl, opts)
}

func TestSpeculationRescuesOmission(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, true)
	// One omission node: any task landing there hangs; with speculation
	// a backup on another node completes the job anyway.
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if !js.Done {
		t.Fatal("speculation failed to rescue the job from a hung task")
	}
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Error("no backup tasks counted")
	}
}

func TestNoSpeculationLeavesJobHung(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, false)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if js.Done {
		t.Fatal("without speculation a hung task must stall the job")
	}
}

func TestSlowFaultStretchesLatency(t *testing.T) {
	run := func(slow bool) int64 {
		eng, jobs := specFixture(t, 4, 2, false)
		if slow {
			for _, n := range eng.Cluster.Nodes() {
				n.Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
				n.Adversary.SlowFactor = 5
			}
		}
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	fast, stretched := run(false), run(true)
	if stretched < 3*fast {
		t.Errorf("5x stragglers everywhere should stretch latency: %d vs %d", stretched, fast)
	}
}

func TestSlowFaultOutputUnchanged(t *testing.T) {
	honest, honestJobs := specFixture(t, 4, 2, false)
	if _, err := honest.Submit(honestJobs[0]); err != nil {
		t.Fatal(err)
	}
	honest.Run()
	want, err := honest.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}

	slowEng, slowJobs := specFixture(t, 4, 2, false)
	slowEng.Cluster.Nodes()[0].Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if _, err := slowEng.Submit(slowJobs[0]); err != nil {
		t.Fatal(err)
	}
	slowEng.Run()
	got, err := slowEng.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d differs: %q vs %q (stragglers are benign)", i, got[i], want[i])
		}
	}
}

func TestSpeculationAgainstStraggler(t *testing.T) {
	// A single straggler node: with speculation the job finishes much
	// closer to the honest latency because the backup overtakes.
	run := func(speculation bool) int64 {
		eng, jobs := specFixture(t, 6, 2, speculation)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("speculation should beat a 20x straggler: with=%d without=%d", with, without)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		eng, jobs := specFixture(t, 6, 2, true)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, _ := eng.Submit(jobs[0])
		eng.Run()
		return js.Latency(), eng.Metrics.SpeculativeTasks
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Errorf("speculation nondeterministic: (%d,%d) vs (%d,%d)", l1, s1, l2, s2)
	}
}

func TestAdversarySlowdownDefault(t *testing.T) {
	a := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if a.Slowdown() != 4 {
		t.Errorf("default slowdown = %v, want 4", a.Slowdown())
	}
	a.SlowFactor = 7
	if a.Slowdown() != 7 {
		t.Errorf("explicit slowdown = %v", a.Slowdown())
	}
	var nilAdv *cluster.Adversary
	if nilAdv.Slowdown() != 4 {
		t.Error("nil adversary slowdown should default")
	}
}

func parseHelper(src string) (*pig.Plan, error) { return pig.Parse(src) }
