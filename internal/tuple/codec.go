package tuple

import (
	"strings"
)

// The line codec stores tuples as tab-separated text records, one per
// line, mirroring the default PigStorage format. Tabs, newlines and
// backslashes inside string values are escaped so the encoding is
// canonical: a given tuple always encodes to exactly one byte sequence.
// Digest computation depends on this property.
//
// One inherited ambiguity (shared with Hadoop's text formats): a tuple
// holding a single empty field encodes to the empty line, which decodes
// as the empty tuple. Replicas process identical streams identically, so
// digest comparison is unaffected; schema-carrying consumers should
// treat zero-column records as absent rows.
//
// The codec is the per-record hot path of the whole engine (every map
// input, shuffle key, digest fold and output line goes through it), so
// the Append* entry points write into caller-owned buffers and allocate
// nothing themselves; numeric values are formatted with strconv's
// append forms rather than through Value.Str.

// EncodeLine renders t as one tab-separated record without a trailing
// newline.
func EncodeLine(t Tuple) string {
	buf := make([]byte, 0, EncodedLen(t))
	return string(AppendEncoded(buf, t))
}

// AppendEncoded appends the tab-separated encoding of t (no trailing
// newline) to dst and returns the extended slice. It allocates only when
// dst lacks capacity, so a caller looping over records can reuse one
// scratch buffer across the whole stream.
func AppendEncoded(dst []byte, t Tuple) []byte {
	for i, v := range t {
		if i > 0 {
			dst = append(dst, '\t')
		}
		dst = appendEscapedValue(dst, v)
	}
	return dst
}

// AppendCanonical appends the canonical byte encoding of t (the escaped
// tab-separated record followed by '\n') to dst and returns the extended
// slice. This is the exact byte stream fed to verification digests.
func AppendCanonical(dst []byte, t Tuple) []byte {
	return append(AppendEncoded(dst, t), '\n')
}

// EncodedLen returns len(EncodeLine(t)) without encoding: the shuffle
// path sizes record-byte accounting and encode buffers with it.
func EncodedLen(t Tuple) int {
	n := 0
	for i, v := range t {
		if i > 0 {
			n++
		}
		n += escapedValueLen(v)
	}
	return n
}

// DecodeLine parses one encoded record into a tuple, coercing columns by
// the schema when provided (extra columns coerce as TypeAny; missing
// schema columns are not padded). Loops over many records should use a
// Decoder instead, which amortizes the escaped-path scratch buffer.
func DecodeLine(line string, schema *Schema) Tuple {
	var d Decoder
	return d.DecodeLine(line, schema)
}

// Decoder decodes record lines while reusing one unescape scratch buffer
// across calls, so the escaped slow path costs two allocations per record
// (the backing string shared by every unescaped field, and the tuple)
// instead of one per field. The zero value is ready to use. Not safe for
// concurrent use; each task body owns its own Decoder.
type Decoder struct {
	buf    []byte
	bounds []int
}

// DecodeLine parses one encoded record into a tuple; see the package
// function for semantics.
func (d *Decoder) DecodeLine(line string, schema *Schema) Tuple {
	if line == "" {
		return Tuple{}
	}
	if strings.IndexByte(line, '\\') < 0 {
		return decodePlain(line, schema)
	}
	// Escaped slow path: unescape the whole line into the shared scratch
	// buffer, recording where each field ends, then cut one backing
	// string into per-field substrings.
	d.buf = d.buf[:0]
	d.bounds = d.bounds[:0]
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && i+1 < len(line):
			i++
			switch line[i] {
			case 't':
				d.buf = append(d.buf, '\t')
			case 'n':
				d.buf = append(d.buf, '\n')
			case '\\':
				d.buf = append(d.buf, '\\')
			default:
				d.buf = append(d.buf, '\\', line[i])
			}
		case c == '\t':
			d.bounds = append(d.bounds, len(d.buf))
		default:
			d.buf = append(d.buf, c)
		}
	}
	d.bounds = append(d.bounds, len(d.buf))
	all := string(d.buf)
	t := make(Tuple, len(d.bounds))
	start := 0
	for i, end := range d.bounds {
		t[i] = fieldType(schema, i).Coerce(all[start:end])
		start = end
	}
	return t
}

// decodePlain is the escape-free fast path: every field is a direct
// slice of line, so the only allocation is the tuple itself.
func decodePlain(line string, schema *Schema) Tuple {
	t := make(Tuple, strings.Count(line, "\t")+1)
	start := 0
	for i := range t {
		rest := line[start:]
		end := strings.IndexByte(rest, '\t')
		if end < 0 {
			end = len(rest)
		}
		t[i] = fieldType(schema, i).Coerce(rest[:end])
		start += end + 1
	}
	return t
}

func fieldType(schema *Schema, i int) FieldType {
	if schema != nil && i < len(schema.Fields) {
		return schema.Fields[i].Type
	}
	return TypeAny
}

// appendEscapedValue appends the escaped text form of v. Numeric and
// null values never contain escape bytes, so only strings go through the
// escape scan.
func appendEscapedValue(dst []byte, v Value) []byte {
	if v.kind == KindString {
		return appendEscaped(dst, v.s)
	}
	return v.appendText(dst)
}

// escapedValueLen returns len of the escaped text form of v without
// allocating.
func escapedValueLen(v Value) int {
	if v.kind == KindString {
		return escapedLen(v.s)
	}
	return v.textLen()
}

func appendEscaped(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, "\t\n\\") {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			dst = append(dst, '\\', 't')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\\':
			dst = append(dst, '\\', '\\')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// escapedLen is len(appendEscaped(nil, s)) without the encode.
func escapedLen(s string) int {
	n := len(s)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t', '\n', '\\':
			n++
		}
	}
	return n
}
