package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindNull, "null"},
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindString, "string"},
		{Kind(99), "kind(99)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestValueConstructorsAndKinds(t *testing.T) {
	if Int(3).Kind() != KindInt {
		t.Error("Int kind mismatch")
	}
	if Float(3.5).Kind() != KindFloat {
		t.Error("Float kind mismatch")
	}
	if Str("x").Kind() != KindString {
		t.Error("Str kind mismatch")
	}
	if Null().Kind() != KindNull {
		t.Error("Null kind mismatch")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be null")
	}
}

func TestBool(t *testing.T) {
	if Bool(true).Int() != 1 || Bool(false).Int() != 0 {
		t.Error("Bool mapping incorrect")
	}
	if !Bool(true).Truthy() || Bool(false).Truthy() {
		t.Error("Bool truthiness incorrect")
	}
}

func TestIntCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
	}{
		{Int(42), 42},
		{Float(3.9), 3},
		{Float(-3.9), -3},
		{Str("17"), 17},
		{Str(" 17 "), 17},
		{Str("-8"), -8},
		{Str("abc"), 0},
		{Str(""), 0},
		{Null(), 0},
	}
	for _, c := range cases {
		if got := c.v.Int(); got != c.want {
			t.Errorf("(%v).Int() = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFloatCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{Int(42), 42},
		{Float(3.5), 3.5},
		{Str("2.25"), 2.25},
		{Str("nope"), 0},
		{Null(), 0},
	}
	for _, c := range cases {
		if got := c.v.Float(); got != c.want {
			t.Errorf("(%v).Float() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestStrCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-5), "-5"},
		{Float(2.5), "2.5"},
		{Str("hello"), "hello"},
		{Null(), ""},
	}
	for _, c := range cases {
		if got := c.v.Str(); got != c.want {
			t.Errorf("(%#v).Str() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Int(1), Int(-1), Float(0.1), Str("a")}
	falsy := []Value{Int(0), Float(0), Str(""), Null()}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		// Mixed numeric/string compares textual forms.
		{Int(10), Str("10"), 0},
		{Int(2), Str("10"), 1}, // "2" > "10" lexicographically
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveOnStrings(t *testing.T) {
	f := func(a, b, c string) bool {
		x, y, z := Str(a), Str(b), Str(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(3), Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Equal(Str("a"), Str("b")) {
		t.Error("distinct strings should not be equal")
	}
}

func TestArithmeticInts(t *testing.T) {
	cases := []struct {
		got, want Value
	}{
		{Add(Int(2), Int(3)), Int(5)},
		{Sub(Int(2), Int(3)), Int(-1)},
		{Mul(Int(4), Int(3)), Int(12)},
		{Div(Int(7), Int(2)), Int(3)}, // integer division (§5.4)
		{Mod(Int(7), Int(2)), Int(1)},
	}
	for i, c := range cases {
		if !Equal(c.got, c.want) || c.got.Kind() != c.want.Kind() {
			t.Errorf("case %d: got %v (%v), want %v (%v)", i, c.got, c.got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestArithmeticFloatPromotion(t *testing.T) {
	v := Add(Int(1), Float(0.5))
	if v.Kind() != KindFloat || v.Float() != 1.5 {
		t.Errorf("Add(1, 0.5) = %v (%v)", v, v.Kind())
	}
	v = Div(Float(7), Int(2))
	if v.Kind() != KindFloat || v.Float() != 3.5 {
		t.Errorf("Div(7.0, 2) = %v (%v)", v, v.Kind())
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	ops := []func(a, b Value) Value{Add, Sub, Mul, Div, Mod}
	for i, op := range ops {
		if !op(Null(), Int(1)).IsNull() || !op(Int(1), Null()).IsNull() {
			t.Errorf("op %d must propagate null", i)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if !Div(Int(1), Int(0)).IsNull() {
		t.Error("int division by zero must be null")
	}
	if !Div(Float(1), Float(0)).IsNull() {
		t.Error("float division by zero must be null")
	}
	if !Mod(Int(1), Int(0)).IsNull() {
		t.Error("mod by zero must be null")
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct {
		in, want Value
	}{
		{Float(3.99), Int(3)},
		{Float(-3.99), Int(-3)},
		{Int(5), Int(5)},
		{Str("x"), Str("x")},
		{Null(), Null()},
	}
	for _, c := range cases {
		got := Truncate(c.in)
		if got.Kind() != c.want.Kind() || !Equal(got, c.want) {
			t.Errorf("Truncate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Equal(Add(Int(a), Int(b)), Add(Int(b), Int(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatStrRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := Float(x)
		return Str(v.Str()).Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
