// Command faultsim drives the fault-isolation simulator of §6.3: a
// 250-node cluster running replicated jobs with Byzantine nodes, printing
// how quickly the fault analyzer narrows suspicion to the faulty nodes.
//
// Usage:
//
//	faultsim [-p 0.6] [-f 1] [-mix r1|r2|large] [-time 300] [-seed 1] [-trials 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbft/internal/faultsim"
)

func main() {
	p := flag.Float64("p", 0.6, "commission probability of a faulty node")
	f := flag.Int("f", 1, "tolerated faults (replicas = 3f+1)")
	mixName := flag.String("mix", "r1", "job size mix: r1 (6:3:1), r2 (2:2:1) or large")
	simTime := flag.Int("time", 300, "simulated ticks")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 1, "averaging trials for jobs-to-isolate")
	flag.Parse()

	var mix faultsim.Mix
	switch *mixName {
	case "r1":
		mix = faultsim.R1
	case "r2":
		mix = faultsim.R2
	case "large":
		mix = faultsim.Mix{Large: 10, Medium: 1, Small: 1}
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	cfg := faultsim.Config{
		F:              *f,
		CommissionProb: *p,
		Mix:            mix,
		MaxTime:        *simTime,
		Seed:           *seed,
	}

	if *trials > 1 {
		avg := faultsim.JobsToIsolate(cfg, *trials)
		fmt.Printf("avg jobs until |D|=f over %d trials: %.1f\n", *trials, avg)
		return
	}

	res := faultsim.Run(cfg)
	fmt.Printf("jobs completed:      %d\n", res.JobsCompleted)
	fmt.Printf("faults observed:     %d\n", res.FaultsObserved)
	fmt.Printf("|D|=f after:         %d jobs (t=%d)\n", res.JobsAtSaturation, res.TimeAtSaturation)
	fmt.Printf("true faulty nodes:   %v\n", res.TrueFaulty)
	fmt.Printf("final suspects:      %v\n", res.Suspects)
	fmt.Printf("exactly isolated:    %v\n", res.Isolated)
	fmt.Println("\nsuspicion population (every 15 ticks):")
	fmt.Println("time  low  med  high")
	for _, s := range res.Samples {
		if s.Time%15 == 0 {
			fmt.Printf("%4d  %3d  %3d  %4d\n", s.Time, s.Low, s.Med, s.High)
		}
	}
}
