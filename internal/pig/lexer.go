// Package pig implements the PigLatin-subset data-flow language ClusterBFT
// scripts are written in (paper §2.2): a lexer, a recursive-descent parser,
// an expression evaluator, and a logical-plan DAG with schema propagation.
// The logical plan is the structure the graph analyzer (internal/analyze)
// places verification points on and the compiler (internal/mapred) turns
// into MapReduce jobs.
package pig

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is one lexical token with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isKeyword reports whether an identifier token equals the given keyword,
// case-insensitively (PigLatin keywords are case-insensitive).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) isSymbol(sym string) bool {
	return t.kind == tokSymbol && t.text == sym
}

// lexer scans script source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// lexError reports a malformed token.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("pig: line %d: %s", e.line, e.msg)
}

// next returns the next token, skipping whitespace and comments
// (both "-- line" and "/* block */" forms).
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(), nil
	case c == '\'':
		return l.lexString()
	default:
		return l.lexSymbol()
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	// Allow alias::column compound names as a single identifier token.
	for l.pos+2 < len(l.src) && l.src[l.pos] == ':' && l.src[l.pos+1] == ':' && isIdentStart(l.src[l.pos+2]) {
		l.pos += 2
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}
}

func (l *lexer) lexNumber() token {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}
}

func (l *lexer) lexString() (token, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\'':
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			if l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(l.src[l.pos])
				}
			}
			l.pos++
		case '\n':
			return token{}, &lexError{line: line, msg: "unterminated string literal"}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, &lexError{line: line, msg: "unterminated string literal"}
}

// twoCharSymbols are multi-character operators, longest match first.
var twoCharSymbols = []string{"==", "!=", "<=", ">="}

func (l *lexer) lexSymbol() (token, error) {
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			tok := token{kind: tokSymbol, text: s, line: l.line}
			l.pos += len(s)
			return tok, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '=', ';', '(', ')', ',', '<', '>', '+', '-', '*', '/', '%', '.', ':':
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	default:
		return token{}, &lexError{line: l.line, msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// lexAll tokenizes the whole source, returning the token stream including
// the trailing EOF token.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
