package mapred

import (
	"fmt"
	"reflect"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/tuple"
)

// crashInput is large enough for several map splits so a crash lands
// while attempts are in flight.
func crashInput(n int) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%7, i))
	}
	return lines
}

const crashSrc = `
a = LOAD 'in/big' AS (k:int, v:int);
g = GROUP a BY k;
s = FOREACH g GENERATE group AS k, COUNT(a) AS n;
STORE s INTO 'out/s';
`

// TestCrashNodeMidRunRecovers fail-stops a node while its attempts are
// running: the engine must requeue the lost tasks onto survivors, finish
// the job with output identical to an undisturbed run, and keep slot
// accounting exact through the crash and the later rejoin.
func TestCrashNodeMidRunRecovers(t *testing.T) {
	clean := run(t, crashSrc, map[string][]string{"in/big": crashInput(30_000)}, CompileOptions{NumReduces: 2}, nil)
	want := clean.output(t, "out/s")

	var cl *cluster.Cluster
	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(30_000)}, CompileOptions{NumReduces: 2}, func(e *Engine) {
		cl = e.Cluster
		e.After(1_000_000, func() {
			if !e.CrashNode("node-000") {
				t.Error("CrashNode reported node-000 already dead")
			}
		})
	})
	if got := tr.output(t, "out/s"); !reflect.DeepEqual(got, want) {
		t.Errorf("post-crash output = %v, want %v", got, want)
	}
	if !tr.eng.Idle() {
		t.Fatal("engine not idle after recovery")
	}
	if !tr.eng.NodeDead("node-000") {
		t.Error("node-000 should still be dead")
	}
	// The dead node's capacity is gone, not leaked into the free pool.
	var deadSlots int
	for _, n := range cl.Nodes() {
		if n.ID == "node-000" {
			deadSlots = n.Slots
		}
	}
	if free := tr.eng.FreeSlotsTotal(); free != cl.TotalSlots()-deadSlots {
		t.Errorf("free slots %d, want %d", free, cl.TotalSlots()-deadSlots)
	}
	if !tr.eng.RejoinNode("node-000") {
		t.Fatal("rejoin refused")
	}
	if free := tr.eng.FreeSlotsTotal(); free != cl.TotalSlots() {
		t.Errorf("free slots after rejoin %d, want %d", free, cl.TotalSlots())
	}
}

// TestCrashAllNodesThenRejoin crashes the whole cluster mid-run; the job
// stalls with no live slots until the scheduled rejoins bring capacity
// back, then completes correctly.
func TestCrashAllNodesThenRejoin(t *testing.T) {
	clean := run(t, crashSrc, map[string][]string{"in/big": crashInput(30_000)}, CompileOptions{NumReduces: 2}, nil)
	want := clean.output(t, "out/s")

	var cl *cluster.Cluster
	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(30_000)}, CompileOptions{NumReduces: 2}, func(e *Engine) {
		cl = e.Cluster
		e.After(1_000_000, func() {
			for _, n := range e.Cluster.Nodes() {
				e.CrashNode(n.ID)
			}
		})
		e.After(20_000_000, func() {
			for _, n := range e.Cluster.Nodes() {
				e.RejoinNode(n.ID)
			}
		})
	})
	if got := tr.output(t, "out/s"); !reflect.DeepEqual(got, want) {
		t.Errorf("post-outage output = %v, want %v", got, want)
	}
	if free := tr.eng.FreeSlotsTotal(); free != cl.TotalSlots() {
		t.Errorf("free slots %d, want %d after full rejoin", free, cl.TotalSlots())
	}
}

// TestCrashRejoinNoops pins the idempotency contract: crashing a dead or
// unknown node and rejoining a live one are reported no-ops.
func TestCrashRejoinNoops(t *testing.T) {
	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(100)}, CompileOptions{}, nil)
	e := tr.eng
	if e.CrashNode("node-999") {
		t.Error("crashing an unknown node must be a no-op")
	}
	if e.RejoinNode("node-001") {
		t.Error("rejoining a live node must be a no-op")
	}
	if !e.CrashNode("node-001") || e.CrashNode("node-001") {
		t.Error("second crash of the same node must report dead")
	}
	if !e.RejoinNode("node-001") {
		t.Error("rejoin after crash must succeed")
	}
}

// TestTaskHookStragglerSlowsJob checks the chaos overlay path: a hook
// slowdown multiplies virtual durations exactly like a FaultSlow
// adversary, without changing results.
func TestTaskHookStragglerSlowsJob(t *testing.T) {
	clean := run(t, crashSrc, map[string][]string{"in/big": crashInput(5_000)}, CompileOptions{NumReduces: 2}, nil)
	want := clean.output(t, "out/s")
	var cleanEnd int64
	for _, j := range clean.jobs {
		if js := clean.eng.Job(j.ID); js != nil && js.DoneTime > cleanEnd {
			cleanEnd = js.DoneTime
		}
	}

	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(5_000)}, CompileOptions{NumReduces: 2}, func(e *Engine) {
		e.TaskHook = func(node cluster.NodeID, _ *Task) TaskFault {
			return TaskFault{SlowFactor: 8}
		}
	})
	if got := tr.output(t, "out/s"); !reflect.DeepEqual(got, want) {
		t.Errorf("straggled output = %v, want %v", got, want)
	}
	var slowEnd int64
	for _, j := range tr.jobs {
		if js := tr.eng.Job(j.ID); js != nil && js.DoneTime > slowEnd {
			slowEnd = js.DoneTime
		}
	}
	if slowEnd <= cleanEnd {
		t.Errorf("8x straggler finished at %d, clean at %d", slowEnd, cleanEnd)
	}
}

// TestTaskHookHangWithholdsResult checks an injected omission: the hung
// attempt never completes and is counted like an adversary hang.
func TestTaskHookHangWithholdsResult(t *testing.T) {
	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(100)}, CompileOptions{}, func(e *Engine) {
		e.TaskHook = func(node cluster.NodeID, t *Task) TaskFault {
			return TaskFault{Hang: true}
		}
	})
	if tr.eng.Idle() {
		t.Fatal("all-hang run cannot complete")
	}
	if tr.eng.Metrics.TasksHung == 0 {
		t.Error("hung attempts not counted")
	}
}

// TestTaskHookCorruptTampersOutput checks an injected commission fault:
// map inputs are tampered, so results (and digests) deviate from an
// honest run while the job still completes.
func TestTaskHookCorruptTampersOutput(t *testing.T) {
	clean := run(t, crashSrc, map[string][]string{"in/big": crashInput(5_000)}, CompileOptions{NumReduces: 2}, nil)
	want := clean.output(t, "out/s")

	tr := run(t, crashSrc, map[string][]string{"in/big": crashInput(5_000)}, CompileOptions{NumReduces: 2}, func(e *Engine) {
		e.TaskHook = func(node cluster.NodeID, _ *Task) TaskFault {
			return TaskFault{Corrupt: func(tp tuple.Tuple) tuple.Tuple { return cluster.Corrupt(tp) }}
		}
	})
	if got := tr.output(t, "out/s"); reflect.DeepEqual(got, want) {
		t.Error("corrupting hook left output identical to honest run")
	}
	if !tr.eng.Idle() {
		t.Error("corrupted run should still complete")
	}
}
