package bft

import (
	"fmt"
	"strings"
	"testing"
)

// TestEquivocatingPrimarySafety: the primary proposes different requests
// for the same sequence number to different backups. Safety must hold:
// no two honest replicas execute different operations at the same log
// position (liveness may require a view change, which the client's
// retransmission triggers).
func TestEquivocatingPrimarySafety(t *testing.T) {
	g, sms := newGroup(1)
	primary := ReplicaID(0)
	// The primary equivocates: pre-prepares sent to replicas 2 and 3
	// carry a different (forged) request for the same slot.
	g.Net.Transform = func(from, to ID, msg Message) Message {
		pp, ok := msg.(PrePrepare)
		if !ok || from != primary {
			return msg
		}
		if to == ReplicaID(2) || to == ReplicaID(3) {
			forged := Request{Client: pp.Request.Client, Seq: pp.Request.Seq, Op: []byte("forged")}
			return PrePrepare{View: pp.View, Seq: pp.Seq, Digest: forged.Digest(), Request: forged}
		}
		return msg
	}
	res, _, err := g.Invoke([]byte("real"))
	// Either the protocol converges on exactly one of the two ops, or it
	// cannot settle at all. Both are safe; divergent execution is not.
	if err == nil {
		if string(res) != "1:real" && string(res) != "1:forged" {
			t.Errorf("settled on unexpected result %q", res)
		}
	}
	// Drain with a bounded budget: an unsettled client retransmits
	// forever, so an unbounded drain would never return.
	g.Net.Run(100_000)
	// No two replicas may hold different first log entries.
	var first string
	for i, sm := range sms {
		if len(sm.ops) == 0 {
			continue
		}
		if first == "" {
			first = sm.ops[0]
		} else if sm.ops[0] != first {
			t.Fatalf("replica %d executed %q at slot 1, another executed %q — safety violated",
				i, sm.ops[0], first)
		}
	}
}

// TestCorruptedPrepareVotesIgnored: a Byzantine backup sends prepare
// votes with wrong digests; quorums must not count them.
func TestCorruptedPrepareVotesIgnored(t *testing.T) {
	g, _ := newGroup(1)
	evil := ReplicaID(3)
	g.Net.Transform = func(from, to ID, msg Message) Message {
		if from != evil {
			return msg
		}
		switch m := msg.(type) {
		case Prepare:
			m.Digest[0] ^= 0xFF
			return m
		case Commit:
			m.Digest[0] ^= 0xFF
			return m
		}
		return msg
	}
	res, _, err := g.Invoke([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:x" {
		t.Errorf("result = %q", res)
	}
}

// TestPipelineManyOps pushes a longer sequence through the group and
// checks order and results stay consistent.
func TestPipelineManyOps(t *testing.T) {
	g, sms := newGroup(1)
	for i := 0; i < 20; i++ {
		op := fmt.Sprintf("op-%02d", i)
		res, _, err := g.Invoke([]byte(op))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		want := fmt.Sprintf("%d:%s", i+1, op)
		if string(res) != want {
			t.Fatalf("op %d: result %q, want %q", i, res, want)
		}
	}
	ref := strings.Join(sms[0].ops, "|")
	for i, sm := range sms {
		if strings.Join(sm.ops, "|") != ref {
			t.Errorf("replica %d log diverged", i)
		}
	}
}

// TestSuccessiveViewChanges: two consecutive faulty primaries; the third
// view's primary makes progress.
func TestSuccessiveViewChanges(t *testing.T) {
	g, _ := newGroup(1)
	dead0, dead1 := ReplicaID(0), ReplicaID(1)
	// Primary of view 0 is silent; the would-be primary of view 1 is
	// silent too... but two silent replicas exceed f=1, so instead make
	// primary 0 silent and primary 1 drop only its NewView/PrePrepare
	// duties (it still votes, staying within f=1 "Byzantine" count by
	// being the single faulty node after 0 recovers).
	phase := 0
	g.Net.Drop = func(from, to ID, msg Message) bool {
		if from == dead0 {
			return true
		}
		if phase == 0 && from == dead1 {
			switch msg.(type) {
			case NewView, PrePrepare:
				return true // view-1 primary won't lead
			}
		}
		return false
	}
	res, _, err := g.Invoke([]byte("persist"))
	if err != nil {
		t.Fatalf("no progress after successive view changes: %v", err)
	}
	if string(res) != "1:persist" {
		t.Errorf("result = %q", res)
	}
	for _, r := range g.Replicas[2:] {
		if r.View() < 2 {
			t.Errorf("%v should have reached view >= 2", r)
		}
	}
}

// TestTransformHookIdentity: a pass-through transform changes nothing.
func TestTransformHookIdentity(t *testing.T) {
	g, _ := newGroup(1)
	g.Net.Transform = func(_, _ ID, msg Message) Message { return msg }
	res, _, err := g.Invoke([]byte("same"))
	if err != nil || string(res) != "1:same" {
		t.Errorf("res=%q err=%v", res, err)
	}
}
