package pig

import (
	"fmt"
	"strconv"
	"strings"

	"clusterbft/internal/tuple"
)

// Parse compiles PigLatin-subset source into a logical plan.
//
// Supported statements:
//
//	a = LOAD 'path' [USING fn] AS (col[:type], ...);
//	b = FILTER a BY expr;
//	c = GROUP b BY col | BY (c1, c2) | ALL;
//	d = FOREACH c GENERATE item [AS name], ...;
//	e = JOIN a BY col, b BY col;
//	f = UNION a, b [, c ...];
//	g = DISTINCT a;
//	h = ORDER a BY col [ASC|DESC], ...;
//	i = LIMIT h 20;
//	j = SAMPLE a 0.25;
//	STORE i INTO 'path';
//
// Keywords are case-insensitive. Comments: "-- ..." and "/* ... */".
func Parse(src string) (*Plan, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, plan: newPlan()}
	if err := p.parseScript(); err != nil {
		return nil, err
	}
	if len(p.plan.Stores()) == 0 {
		return nil, fmt.Errorf("pig: script has no STORE statement")
	}
	return p.plan, nil
}

type parser struct {
	toks []token
	pos  int
	plan *Plan
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("pig: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	t := p.advance()
	if !t.isSymbol(sym) {
		return p.errf(t, "expected %q, found %s", sym, t)
	}
	return nil
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if !t.isKeyword(kw) {
		return p.errf(t, "expected %s, found %s", kw, t)
	}
	return nil
}

// expectIdent consumes a non-keyword identifier.
func (p *parser) expectIdent(what string) (token, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected %s, found %s", what, t)
	}
	return t, nil
}

// expectString consumes a string literal.
func (p *parser) expectString(what string) (token, error) {
	t := p.advance()
	if t.kind != tokString {
		return t, p.errf(t, "expected %s (quoted string), found %s", what, t)
	}
	return t, nil
}

// lookupAlias resolves a relation alias to its vertex.
func (p *parser) lookupAlias(t token) (*Vertex, error) {
	v := p.plan.ByAlias(t.text)
	if v == nil {
		return nil, p.errf(t, "unknown alias %q", t.text)
	}
	return v, nil
}

func (p *parser) parseScript() error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil
		case t.isKeyword("STORE"):
			if err := p.parseStore(); err != nil {
				return err
			}
		case t.kind == tokIdent:
			if err := p.parseAssign(); err != nil {
				return err
			}
		default:
			return p.errf(t, "expected statement, found %s", t)
		}
	}
}

func (p *parser) parseStore() error {
	kw := p.advance() // STORE
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return err
	}
	path, err := p.expectString("output path")
	if err != nil {
		return err
	}
	if err := p.skipUsing(); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if parent.Kind == OpGroup {
		return p.errf(kw, "cannot STORE a grouped relation directly; add a FOREACH")
	}
	p.plan.add(&Vertex{
		Kind:    OpStore,
		Line:    kw.line,
		Path:    path.text,
		Parents: []*Vertex{parent},
		Schema:  parent.Schema.Clone(),
	})
	return nil
}

// skipUsing consumes an optional "USING fn('arg', ...)" clause, which we
// accept for script compatibility and ignore (only the default storage
// codec exists).
func (p *parser) skipUsing() error {
	if !p.peek().isKeyword("USING") {
		return nil
	}
	p.advance()
	if _, err := p.expectIdent("storage function"); err != nil {
		return err
	}
	if p.peek().isSymbol("(") {
		depth := 0
		for {
			t := p.advance()
			switch {
			case t.kind == tokEOF:
				return p.errf(t, "unterminated USING clause")
			case t.isSymbol("("):
				depth++
			case t.isSymbol(")"):
				depth--
				if depth == 0 {
					return nil
				}
			}
		}
	}
	return nil
}

func (p *parser) parseAssign() error {
	alias := p.advance()
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	op := p.advance()
	if op.kind != tokIdent {
		return p.errf(op, "expected operator keyword, found %s", op)
	}
	var (
		v   *Vertex
		err error
	)
	switch strings.ToUpper(op.text) {
	case "LOAD":
		v, err = p.parseLoad(alias)
	case "FILTER":
		v, err = p.parseFilter(alias)
	case "GROUP", "COGROUP":
		v, err = p.parseGroup(alias)
	case "JOIN":
		v, err = p.parseJoin(alias)
	case "FOREACH":
		v, err = p.parseForEach(alias)
	case "UNION":
		v, err = p.parseUnion(alias)
	case "DISTINCT":
		v, err = p.parseDistinct(alias)
	case "ORDER":
		v, err = p.parseOrder(alias)
	case "LIMIT":
		v, err = p.parseLimit(alias)
	case "SAMPLE":
		v, err = p.parseSample(alias)
	default:
		return p.errf(op, "unsupported operator %q", op.text)
	}
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	p.plan.add(v)
	return nil
}

func (p *parser) parseLoad(alias token) (*Vertex, error) {
	path, err := p.expectString("input path")
	if err != nil {
		return nil, err
	}
	if err := p.skipUsing(); err != nil {
		return nil, err
	}
	if !p.peek().isKeyword("AS") {
		return nil, p.errf(p.peek(), "LOAD requires an AS (schema) clause")
	}
	p.advance()
	schema, err := p.parseSchemaDecl()
	if err != nil {
		return nil, err
	}
	return &Vertex{
		Kind:   OpLoad,
		Alias:  alias.text,
		Line:   alias.line,
		Path:   path.text,
		Schema: schema,
	}, nil
}

func (p *parser) parseSchemaDecl() (*tuple.Schema, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	s := &tuple.Schema{}
	for {
		name, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		ft := tuple.TypeAny
		if p.peek().isSymbol(":") {
			p.advance()
			tn, err := p.expectIdent("column type")
			if err != nil {
				return nil, err
			}
			ft = typeFromName(tn.text)
		}
		s.Fields = append(s.Fields, tuple.Field{Name: name.text, Type: ft})
		t := p.advance()
		switch {
		case t.isSymbol(","):
			continue
		case t.isSymbol(")"):
			return s, nil
		default:
			return nil, p.errf(t, "expected ',' or ')' in schema, found %s", t)
		}
	}
}

func typeFromName(s string) tuple.FieldType {
	switch strings.ToLower(s) {
	case "int", "long":
		return tuple.TypeInt
	case "float", "double":
		return tuple.TypeFloat
	case "chararray", "bytearray":
		return tuple.TypeString
	default:
		return tuple.TypeAny
	}
}

func (p *parser) parseFilter(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(alias, "cannot FILTER a grouped relation")
	}
	if err := pred.Bind(parent.Schema); err != nil {
		return nil, p.errf(alias, "%v", err)
	}
	return &Vertex{
		Kind:    OpFilter,
		Alias:   alias.text,
		Line:    alias.line,
		Pred:    pred,
		Parents: []*Vertex{parent},
		Schema:  parent.Schema.Clone(),
	}, nil
}

func (p *parser) parseGroup(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(src, "cannot GROUP a grouped relation; add a FOREACH first")
	}
	v := &Vertex{
		Kind:    OpGroup,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: []*Vertex{parent},
	}
	t := p.advance()
	switch {
	case t.isKeyword("ALL"):
		v.GroupAll = true
		v.Schema = tuple.NewSchema("group")
	case t.isKeyword("BY"):
		names, err := p.parseKeyList()
		if err != nil {
			return nil, err
		}
		cols, err := resolveCols(parent.Schema, names, alias.line)
		if err != nil {
			return nil, err
		}
		v.GroupCols = cols
		ks := &tuple.Schema{}
		for _, c := range cols {
			ks.Fields = append(ks.Fields, parent.Schema.Fields[c])
		}
		v.Schema = ks
	default:
		return nil, p.errf(t, "expected BY or ALL, found %s", t)
	}
	return v, nil
}

// parseKeyList parses "col" or "(c1, c2, ...)".
func (p *parser) parseKeyList() ([]string, error) {
	if !p.peek().isSymbol("(") {
		t, err := p.expectIdent("key column")
		if err != nil {
			return nil, err
		}
		return []string{t.text}, nil
	}
	p.advance()
	var names []string
	for {
		t, err := p.expectIdent("key column")
		if err != nil {
			return nil, err
		}
		names = append(names, t.text)
		nxt := p.advance()
		switch {
		case nxt.isSymbol(","):
			continue
		case nxt.isSymbol(")"):
			return names, nil
		default:
			return nil, p.errf(nxt, "expected ',' or ')', found %s", nxt)
		}
	}
}

func (p *parser) parseJoin(alias token) (*Vertex, error) {
	var parents []*Vertex
	var joinCols [][]int
	for {
		src, err := p.expectIdent("relation alias")
		if err != nil {
			return nil, err
		}
		parent, err := p.lookupAlias(src)
		if err != nil {
			return nil, err
		}
		if parent.Kind == OpGroup {
			return nil, p.errf(src, "cannot JOIN a grouped relation")
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		names, err := p.parseKeyList()
		if err != nil {
			return nil, err
		}
		cols, err := resolveCols(parent.Schema, names, alias.line)
		if err != nil {
			return nil, err
		}
		parents = append(parents, parent)
		joinCols = append(joinCols, cols)
		if !p.peek().isSymbol(",") {
			break
		}
		p.advance()
	}
	if len(parents) != 2 {
		return nil, p.errf(alias, "JOIN requires exactly two inputs, got %d", len(parents))
	}
	if len(joinCols[0]) != len(joinCols[1]) {
		return nil, p.errf(alias, "JOIN key lists have different lengths")
	}
	return &Vertex{
		Kind:     OpJoin,
		Alias:    alias.text,
		Line:     alias.line,
		Parents:  parents,
		JoinCols: joinCols,
		Schema:   qualify(parents),
	}, nil
}

func (p *parser) parseForEach(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("GENERATE"); err != nil {
		return nil, err
	}
	var gens []GenItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := GenItem{Expr: e}
		if p.peek().isKeyword("AS") {
			p.advance()
			name, err := p.expectIdent("output column name")
			if err != nil {
				return nil, err
			}
			item.Name = name.text
		}
		gens = append(gens, item)
		if !p.peek().isSymbol(",") {
			break
		}
		p.advance()
	}
	schema, err := bindGens(parent, gens, alias.line)
	if err != nil {
		return nil, err
	}
	return &Vertex{
		Kind:    OpForEach,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: []*Vertex{parent},
		Gens:    gens,
		Schema:  schema,
	}, nil
}

func (p *parser) parseUnion(alias token) (*Vertex, error) {
	var parents []*Vertex
	for {
		src, err := p.expectIdent("relation alias")
		if err != nil {
			return nil, err
		}
		parent, err := p.lookupAlias(src)
		if err != nil {
			return nil, err
		}
		if parent.Kind == OpGroup {
			return nil, p.errf(src, "cannot UNION a grouped relation")
		}
		parents = append(parents, parent)
		if !p.peek().isSymbol(",") {
			break
		}
		p.advance()
	}
	if len(parents) < 2 {
		return nil, p.errf(alias, "UNION requires at least two inputs")
	}
	arity := parents[0].Schema.Len()
	for _, par := range parents[1:] {
		if par.Schema.Len() != arity {
			return nil, p.errf(alias, "UNION inputs have mismatched arity (%d vs %d)", arity, par.Schema.Len())
		}
	}
	return &Vertex{
		Kind:    OpUnion,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: parents,
		Schema:  parents[0].Schema.Clone(),
	}, nil
}

func (p *parser) parseDistinct(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(src, "cannot DISTINCT a grouped relation")
	}
	return &Vertex{
		Kind:    OpDistinct,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: []*Vertex{parent},
		Schema:  parent.Schema.Clone(),
	}, nil
}

func (p *parser) parseOrder(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(src, "cannot ORDER a grouped relation")
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var keys []OrderKey
	for {
		name, err := p.expectIdent("order column")
		if err != nil {
			return nil, err
		}
		cols, err := resolveCols(parent.Schema, []string{name.text}, alias.line)
		if err != nil {
			return nil, err
		}
		key := OrderKey{Col: cols[0]}
		if p.peek().isKeyword("DESC") {
			key.Desc = true
			p.advance()
		} else if p.peek().isKeyword("ASC") {
			p.advance()
		}
		keys = append(keys, key)
		if !p.peek().isSymbol(",") {
			break
		}
		p.advance()
	}
	return &Vertex{
		Kind:    OpOrder,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: []*Vertex{parent},
		OrderBy: keys,
		Schema:  parent.Schema.Clone(),
	}, nil
}

func (p *parser) parseLimit(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(src, "cannot LIMIT a grouped relation")
	}
	t := p.advance()
	if t.kind != tokNumber {
		return nil, p.errf(t, "expected limit count, found %s", t)
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || n < 0 {
		return nil, p.errf(t, "invalid limit count %q", t.text)
	}
	return &Vertex{
		Kind:    OpLimit,
		Alias:   alias.text,
		Line:    alias.line,
		Parents: []*Vertex{parent},
		LimitN:  n,
		Schema:  parent.Schema.Clone(),
	}, nil
}

func (p *parser) parseSample(alias token) (*Vertex, error) {
	src, err := p.expectIdent("relation alias")
	if err != nil {
		return nil, err
	}
	parent, err := p.lookupAlias(src)
	if err != nil {
		return nil, err
	}
	if parent.Kind == OpGroup {
		return nil, p.errf(src, "cannot SAMPLE a grouped relation")
	}
	t := p.advance()
	if t.kind != tokNumber {
		return nil, p.errf(t, "expected sample fraction, found %s", t)
	}
	frac, err := strconv.ParseFloat(t.text, 64)
	if err != nil || frac <= 0 || frac > 1 {
		return nil, p.errf(t, "sample fraction must be in (0, 1], got %q", t.text)
	}
	return &Vertex{
		Kind:     OpSample,
		Alias:    alias.text,
		Line:     alias.line,
		Parents:  []*Vertex{parent},
		Fraction: frac,
		Schema:   parent.Schema.Clone(),
	}, nil
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().isKeyword("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().isKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().isKeyword("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

var comparisonOps = []string{"==", "!=", "<=", ">=", "<", ">"}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range comparisonOps {
		if p.peek().isSymbol(op) {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().isSymbol("+") || p.peek().isSymbol("-") {
		op := p.advance().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnaryMinus()
	if err != nil {
		return nil, err
	}
	for p.peek().isSymbol("*") || p.peek().isSymbol("/") || p.peek().isSymbol("%") {
		op := p.advance().text
		r, err := p.parseUnaryMinus()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnaryMinus() (Expr, error) {
	if p.peek().isSymbol("-") {
		p.advance()
		x, err := p.parseUnaryMinus()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf(t, "invalid number %q", t.text)
			}
			return &Lit{V: tuple.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "invalid number %q", t.text)
		}
		return &Lit{V: tuple.Int(n)}, nil
	case tokString:
		return &Lit{V: tuple.Str(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf(t, "unexpected %s in expression", t)
	case tokIdent:
		// Function call?
		if p.peek().isSymbol("(") {
			p.advance()
			var args []Expr
			if !p.peek().isSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.peek().isSymbol(",") {
						break
					}
					p.advance()
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &Call{Func: strings.ToLower(t.text), Args: args}, nil
		}
		// Dotted reference "bag.col" (used in aggregate arguments).
		name := t.text
		for p.peek().isSymbol(".") {
			p.advance()
			part, err := p.expectIdent("column after '.'")
			if err != nil {
				return nil, err
			}
			name += "." + part.text
		}
		return &Col{Name: name}, nil
	default:
		return nil, p.errf(t, "unexpected %s in expression", t)
	}
}
