// Command promcheck validates a Prometheus text-exposition document
// (version 0.0.4) read from stdin, using the same parser the repo's
// tests pin against the /metrics encoder. CI pipes a live `curl
// /metrics` through it so a malformed exposition fails the build.
//
//	curl -s localhost:9090/metrics | go run ./scripts/promcheck
//
// Exits 0 and prints family/series counts on success, 1 on any
// syntax, type or contiguity violation.
package main

import (
	"fmt"
	"os"

	"clusterbft/internal/obs"
)

func main() {
	st, err := obs.ParseExposition(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if st.Series == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: exposition contains no series")
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d families, %d series)\n", st.Families, st.Series)
}
