package pig

import (
	"strings"
	"testing"
)

const followerScript = `
edges = LOAD 'twitter/edges' AS (user:int, follower:int);
nonempty = FILTER edges BY follower != 0;
grouped = GROUP nonempty BY user;
counts = FOREACH grouped GENERATE group AS user, COUNT(nonempty) AS followers;
STORE counts INTO 'out/followers';
`

func mustParse(t *testing.T, src string) *Plan {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseFollowerScript(t *testing.T) {
	p := mustParse(t, followerScript)
	if len(p.Vertices) != 5 {
		t.Fatalf("vertices = %d, want 5\n%s", len(p.Vertices), p)
	}
	kinds := []OpKind{OpLoad, OpFilter, OpGroup, OpForEach, OpStore}
	for i, k := range kinds {
		if p.Vertices[i].Kind != k {
			t.Errorf("vertex %d kind = %v, want %v", i, p.Vertices[i].Kind, k)
		}
	}
	fe := p.ByAlias("counts")
	if fe == nil || fe.Schema.Len() != 2 {
		t.Fatalf("counts schema: %v", fe)
	}
	if fe.Schema.Fields[0].Name != "user" || fe.Schema.Fields[1].Name != "followers" {
		t.Errorf("counts schema = %v", fe.Schema)
	}
	if fe.Gens[1].Agg == nil || fe.Gens[1].Agg.Func != "count" || fe.Gens[1].Agg.ColIdx != -1 {
		t.Errorf("COUNT agg = %+v", fe.Gens[1].Agg)
	}
}

func TestParseEdgesLinked(t *testing.T) {
	p := mustParse(t, followerScript)
	g := p.ByAlias("grouped")
	f := p.ByAlias("nonempty")
	if len(g.Parents) != 1 || g.Parents[0] != f {
		t.Error("group parent should be the filter vertex")
	}
	if len(f.Children) != 1 || f.Children[0] != g {
		t.Error("filter child should be the group vertex")
	}
}

func TestParseSchemaTypes(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (i:int, l:long, f:float, d:double, c:chararray, b:bytearray, untyped);
STORE a INTO 'y';
`)
	s := p.ByAlias("a").Schema
	wantTypes := []string{"int", "int", "float", "float", "chararray", "chararray", "any"}
	for i, w := range wantTypes {
		if got := s.Fields[i].Type.String(); got != w {
			t.Errorf("field %d type = %s, want %s", i, got, w)
		}
	}
}

func TestParseJoin(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'e' AS (user:int, follower:int);
b = LOAD 'e' AS (user:int, follower:int);
j = JOIN a BY user, b BY follower;
two = FOREACH j GENERATE a::follower, b::user;
STORE two INTO 'out';
`)
	j := p.ByAlias("j")
	if j.Kind != OpJoin || len(j.Parents) != 2 {
		t.Fatalf("join vertex: %v", j)
	}
	if j.Schema.Len() != 4 {
		t.Fatalf("join schema arity = %d", j.Schema.Len())
	}
	if j.Schema.Fields[0].Name != "a::user" || j.Schema.Fields[3].Name != "b::follower" {
		t.Errorf("join schema = %v", j.Schema)
	}
	if j.JoinCols[0][0] != 0 || j.JoinCols[1][0] != 1 {
		t.Errorf("join cols = %v", j.JoinCols)
	}
	two := p.ByAlias("two")
	if two.Schema.Fields[0].Name != "follower" || two.Schema.Fields[1].Name != "user" {
		t.Errorf("projection names = %v", two.Schema)
	}
}

func TestParseMultiKeyJoin(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (k1, k2, v);
b = LOAD 'y' AS (k1, k2, w);
j = JOIN a BY (k1, k2), b BY (k1, k2);
STORE j INTO 'out';
`)
	j := p.ByAlias("j")
	if len(j.JoinCols[0]) != 2 || len(j.JoinCols[1]) != 2 {
		t.Errorf("multi-key join cols = %v", j.JoinCols)
	}
}

func TestParseOrderLimit(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (airport, n:int);
o = ORDER a BY n DESC, airport;
top = LIMIT o 20;
STORE top INTO 'out';
`)
	o := p.ByAlias("o")
	if len(o.OrderBy) != 2 || !o.OrderBy[0].Desc || o.OrderBy[1].Desc {
		t.Errorf("order keys = %+v", o.OrderBy)
	}
	if p.ByAlias("top").LimitN != 20 {
		t.Errorf("limit = %d", p.ByAlias("top").LimitN)
	}
}

func TestParseUnionDistinct(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (k, v);
b = LOAD 'y' AS (k, v);
u = UNION a, b;
d = DISTINCT u;
STORE d INTO 'out';
`)
	u := p.ByAlias("u")
	if u.Kind != OpUnion || len(u.Parents) != 2 {
		t.Fatalf("union: %v", u)
	}
	if p.ByAlias("d").Kind != OpDistinct {
		t.Error("distinct vertex missing")
	}
}

func TestParseUnionArityMismatch(t *testing.T) {
	_, err := Parse(`
a = LOAD 'x' AS (k);
b = LOAD 'y' AS (k, v);
u = UNION a, b;
STORE u INTO 'out';
`)
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("want arity error, got %v", err)
	}
}

func TestParseGroupAll(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (v:int);
g = GROUP a ALL;
c = FOREACH g GENERATE COUNT(a);
STORE c INTO 'out';
`)
	g := p.ByAlias("g")
	if !g.GroupAll {
		t.Error("GroupAll not set")
	}
	c := p.ByAlias("c")
	if c.Gens[0].Agg == nil || c.Gens[0].Agg.ColIdx != -1 {
		t.Errorf("COUNT over all: %+v", c.Gens[0])
	}
}

func TestParseAggregatesWithColumn(t *testing.T) {
	p := mustParse(t, `
w = LOAD 'weather' AS (station, temp:int);
g = GROUP w BY station;
avgs = FOREACH g GENERATE group, AVG(w.temp) AS avgt, SUM(w.temp), MIN(w.temp), MAX(w.temp);
STORE avgs INTO 'out';
`)
	avgs := p.ByAlias("avgs")
	funcs := []string{"", "avg", "sum", "min", "max"}
	for i := 1; i < 5; i++ {
		if avgs.Gens[i].Agg == nil || avgs.Gens[i].Agg.Func != funcs[i] {
			t.Errorf("gen %d = %+v, want func %s", i, avgs.Gens[i].Agg, funcs[i])
		}
		if avgs.Gens[i].Agg.ColIdx != 1 {
			t.Errorf("gen %d colIdx = %d, want 1", i, avgs.Gens[i].Agg.ColIdx)
		}
	}
	if avgs.Schema.Fields[1].Name != "avgt" {
		t.Errorf("AS name: %v", avgs.Schema)
	}
	if avgs.Schema.Fields[2].Name != "sum" {
		t.Errorf("derived agg name: %v", avgs.Schema)
	}
}

func TestParseAggregateQualifiedColumn(t *testing.T) {
	// "w::temp" spelling for the bag column.
	p := mustParse(t, `
w = LOAD 'weather' AS (station, temp:int);
g = GROUP w BY station;
s = FOREACH g GENERATE group, SUM(w::temp);
STORE s INTO 'out';
`)
	if p.ByAlias("s").Gens[1].Agg.ColIdx != 1 {
		t.Error("qualified bag column did not resolve")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no store", "a = LOAD 'x' AS (v);", "no STORE"},
		{"unknown alias", "STORE ghost INTO 'o';", "unknown alias"},
		{"unknown op", "a = FROBNICATE b;", "unsupported operator"},
		{"load no schema", "a = LOAD 'x';\nSTORE a INTO 'o';", "AS"},
		{"filter group", "a = LOAD 'x' AS (v);\ng = GROUP a BY v;\nf = FILTER g BY v == 1;\nSTORE f INTO 'o';", "grouped"},
		{"store group", "a = LOAD 'x' AS (v);\ng = GROUP a BY v;\nSTORE g INTO 'o';", "FOREACH"},
		{"agg without group", "a = LOAD 'x' AS (v);\nc = FOREACH a GENERATE COUNT(a);\nSTORE c INTO 'o';", "grouped relation"},
		{"join one input", "a = LOAD 'x' AS (v);\nj = JOIN a BY v;\nSTORE j INTO 'o';", "two inputs"},
		{"join key mismatch", "a = LOAD 'x' AS (k1, k2);\nb = LOAD 'y' AS (k);\nj = JOIN a BY (k1,k2), b BY k;\nSTORE j INTO 'o';", "different lengths"},
		{"union one input", "a = LOAD 'x' AS (v);\nu = UNION a;\nSTORE u INTO 'o';", "at least two"},
		{"bad limit", "a = LOAD 'x' AS (v);\nl = LIMIT a x;\nSTORE l INTO 'o';", "limit count"},
		{"unknown column", "a = LOAD 'x' AS (v);\nf = FILTER a BY w == 1;\nSTORE f INTO 'o';", "unknown column"},
		{"group unknown col", "a = LOAD 'x' AS (v);\ng = GROUP a BY w;\nSTORE g INTO 'o';", "unknown column"},
		{"missing semicolon", "a = LOAD 'x' AS (v)\nSTORE a INTO 'o';", `";"`},
		{"sum of bare bag", "a = LOAD 'x' AS (v:int);\ng = GROUP a BY v;\nc = FOREACH g GENERATE SUM(a);\nSTORE c INTO 'o';", "needs a column"},
		{"count two args", "a = LOAD 'x' AS (v:int);\ng = GROUP a BY v;\nc = FOREACH g GENERATE COUNT(a, a);\nSTORE c INTO 'o';", "one argument"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseUsingClausesIgnored(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' USING PigStorage(',') AS (v);
STORE a INTO 'o' USING PigStorage();
`)
	if p.ByAlias("a").Path != "x" {
		t.Error("path lost around USING clause")
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, `
-- leading comment
a = LOAD 'x' AS (v); /* inline */
STORE a INTO 'o'; -- trailing
`)
}

func TestPlanString(t *testing.T) {
	p := mustParse(t, followerScript)
	s := p.String()
	for _, want := range []string{"LOAD(edges)", "FILTER(nonempty)", "GROUP(grouped)", "FOREACH(counts)", "STORE"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestPlanLookups(t *testing.T) {
	p := mustParse(t, followerScript)
	if len(p.Loads()) != 1 || len(p.Stores()) != 1 {
		t.Errorf("loads=%d stores=%d", len(p.Loads()), len(p.Stores()))
	}
	if p.ByID(0) == nil || p.ByID(0).Kind != OpLoad {
		t.Error("ByID(0) should be the load")
	}
	if p.ByID(99) != nil {
		t.Error("ByID out of range should be nil")
	}
	if p.ByAlias("nope") != nil {
		t.Error("ByAlias unknown should be nil")
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpLoad.String() != "LOAD" || OpStore.String() != "STORE" {
		t.Error("OpKind names wrong")
	}
	if !OpGroup.IsShuffle() || !OpJoin.IsShuffle() || !OpOrder.IsShuffle() || !OpDistinct.IsShuffle() {
		t.Error("shuffle kinds misclassified")
	}
	if OpFilter.IsShuffle() || OpForEach.IsShuffle() || OpUnion.IsShuffle() || OpLimit.IsShuffle() {
		t.Error("non-shuffle kinds misclassified")
	}
}

func TestGroupRefRewriteMultiKey(t *testing.T) {
	// With a multi-column key, key columns are referenced by name.
	p := mustParse(t, `
a = LOAD 'x' AS (k1, k2, v:int);
g = GROUP a BY (k1, k2);
c = FOREACH g GENERATE k1, k2, COUNT(a);
STORE c INTO 'o';
`)
	c := p.ByAlias("c")
	if c.Schema.Len() != 3 {
		t.Errorf("schema = %v", c.Schema)
	}
}

func TestParseFilterComplexPredicate(t *testing.T) {
	p := mustParse(t, `
a = LOAD 'x' AS (u:int, f:int, s);
b = FILTER a BY (u > 10 AND f != 0) OR NOT s == 'skip';
STORE b INTO 'o';
`)
	if p.ByAlias("b").Pred == nil {
		t.Fatal("predicate missing")
	}
}
