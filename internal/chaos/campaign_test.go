package chaos

import (
	"strings"
	"testing"
)

// TestChaosCampaign is the property test of the fault-injection
// subsystem: 200 seeded schedules (40 under -short) run end-to-end, each
// checked against the global invariants — every sub-graph Verified or
// explicitly failed, verified outputs byte-identical to a clean run,
// slot accounting restored to cluster capacity, every fault attribution
// traced to an injected fault, and the BFT group agreeing under
// quorum-bounded message perturbations. The campaign runs twice and the
// reports must be byte-identical: the whole subsystem is a pure function
// of the seeds.
func TestChaosCampaign(t *testing.T) {
	cfg := DefaultCampaign()
	if testing.Short() {
		cfg.Schedules = 40
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}

	// The campaign must actually exercise the recovery machinery, not
	// coast through no-op schedules.
	var retries, verified, mangled, netRuns int
	for _, sr := range rep.Results {
		retries += sr.Recoveries["retry"] + sr.Recoveries["restart"]
		if sr.Verified {
			verified++
		}
		mangled += sr.Mangled
		if sr.NetRan {
			netRuns++
		}
	}
	if retries == 0 {
		t.Error("no schedule triggered a retry or restart")
	}
	if verified == 0 {
		t.Error("no schedule recovered to verified")
	}
	if mangled == 0 {
		t.Error("no schedule mangled stored data")
	}
	if netRuns == 0 {
		t.Error("no schedule perturbed the BFT network")
	}

	again, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Render(), again.Render()
	if a != b {
		line := "?"
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				line = la[i]
				break
			}
		}
		t.Fatalf("campaign is not deterministic; first divergent line:\n%s", line)
	}
}
