package obs

import (
	"strings"
	"testing"
)

// TestWriteExpositionShape pins the encoder's exact output for a small
// registry: family ordering, HELP/TYPE lines, label suffixes, and the
// cumulative histogram expansion.
func TestWriteExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Help("mapred.tasks", "tasks by stage")
	r.With("stage", "map").Counter("mapred.tasks").Add(3)
	r.With("stage", "reduce").Counter("mapred.tasks").Add(1)
	r.Gauge("slots.free").Set(7)
	h := r.Histogram("lat.us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_us histogram
lat_us_bucket{le="10"} 1
lat_us_bucket{le="100"} 2
lat_us_bucket{le="+Inf"} 3
lat_us_sum 5055
lat_us_count 3
# HELP mapred_tasks tasks by stage
# TYPE mapred_tasks counter
mapred_tasks{stage="map"} 3
mapred_tasks{stage="reduce"} 1
# TYPE slots_free gauge
slots_free 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	st, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if st.Families != 3 || st.Series != 8 {
		t.Errorf("stats = %+v, want 3 families / 8 series", st)
	}
}

// TestWriteExpositionLabeledHistogram: the le label merges into an
// existing label suffix, keeping one series per (labels, bound).
func TestWriteExpositionLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.With("job", "j1").Histogram("dur", []int64{10}).Observe(3)
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dur_bucket{job="j1",le="10"} 1`,
		`dur_bucket{job="j1",le="+Inf"} 1`,
		`dur_sum{job="j1"} 3`,
		`dur_count{job="j1"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("labeled histogram exposition does not parse: %v", err)
	}
}

// TestPromNameSanitisation: dots become underscores, bad runes are
// replaced, leading digits gain a prefix.
func TestPromNameSanitisation(t *testing.T) {
	cases := map[string]string{
		"mapred.cpu_us":  "mapred_cpu_us",
		"a-b c":          "a_b_c",
		"9lives":         "_9lives",
		"ok_name:colons": "ok_name:colons",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseExpositionRejects: the validator catches the classes of
// malformed output the CI smoke check is there to detect.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":   "foo-bar 1\n",
		"bad label name":    `m{9x="v"} 1` + "\n",
		"unquoted value":    `m{a=v} 1` + "\n",
		"bad escape":        `m{a="\q"} 1` + "\n",
		"unterminated":      `m{a="v 1` + "\n",
		"missing value":     "m\n",
		"bad value":         "m notanumber\n",
		"unknown type":      "# TYPE m widget\nm 1\n",
		"duplicate type":    "# TYPE m counter\nm 1\n# TYPE m counter\n",
		"duplicate series":  `m{a="1"} 1` + "\n" + `m{a="1"} 2` + "\n",
		"broken contiguity": "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"bad timestamp":     "m 1 notats\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted %q", name, doc)
		}
	}
	// And the things it must tolerate: comments, timestamps, floats,
	// empty label blocks, untyped bare samples.
	ok := "# just a comment\n# TYPE m counter\nm{} 1 1712345678\nother 3.14\n"
	st, err := ParseExposition(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("parser rejected valid input: %v", err)
	}
	if st.Series != 2 || st.Families != 2 {
		t.Errorf("stats = %+v, want 2 series / 2 families", st)
	}
}
