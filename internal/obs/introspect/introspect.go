// Package introspect is the embeddable live-observability HTTP plane:
// a handler (and tiny server wrapper) that exposes a run's obs.Registry
// as Prometheus text exposition, its obs.JobsBoard as JSON job/
// sub-graph status, its obs.Tracer as drainable JSONL spans, and the
// standard net/http/pprof profiles — everything a long faultsim
// campaign or experiments run needs to be watched while it executes.
//
// The package depends only on internal/obs and the standard library;
// producers (engine, controller, chaos campaign) stay unaware of HTTP
// and push into the obs mirrors, which are safe to read concurrently
// with the simulation.
//
// Endpoints:
//
//	/metrics                 Prometheus text exposition of the registry
//	/healthz                 "ok" (200), or the Health callback's error (503)
//	/jobs                    JSON: all jobs, sub-graphs, suspicion, cost buckets
//	/jobs/{id}               JSON: one job (IDs may contain slashes)
//	/jobs/{id}/stragglers    JSON: per-stage duration stats + flagged stragglers
//	/trace                   span ring as JSONL; ?drain=1 empties the ring
//	/debug/pprof/            CPU/heap/goroutine profiles
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"

	"clusterbft/internal/obs"
)

// Options wires the run's observability surfaces into the handler. Any
// field may be nil: the corresponding endpoint degrades gracefully
// (empty exposition, empty job list, 404 trace).
type Options struct {
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Board    *obs.JobsBoard

	// Health, when set, is consulted by /healthz; a non-nil error turns
	// the endpoint 503. Nil means "healthy whenever we can answer".
	Health func() error

	// Cost, when set, returns the run-level cost-attribution buckets
	// rendered into /jobs (typically mapred's CostBuckets). Declared as
	// any so this package needs no dependency on the engine.
	Cost func() any

	// SIDCost, when set, resolves one live sub-graph's buckets for
	// /jobs/{id} responses.
	SIDCost func(sid string) (any, bool)
}

// jobsResponse is the /jobs JSON document.
type jobsResponse struct {
	Jobs      []obs.JobStatus     `json:"jobs"`
	SIDs      []obs.SIDStatus     `json:"sids,omitempty"`
	Suspicion obs.SuspicionStatus `json:"suspicion"`
	Cost      any                 `json:"cost,omitempty"`
}

// jobResponse is the /jobs/{id} JSON document.
type jobResponse struct {
	obs.JobStatus
	SIDCost any `json:"sid_cost,omitempty"`
}

// Handler builds the introspection mux over o.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WriteExposition(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if o.Health != nil {
			if err := o.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		resp := jobsResponse{
			Jobs:      o.Board.Jobs(),
			SIDs:      o.Board.SIDs(),
			Suspicion: o.Board.Suspicion(),
		}
		if resp.Jobs == nil {
			resp.Jobs = []obs.JobStatus{}
		}
		if o.Cost != nil {
			resp.Cost = o.Cost()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/jobs/")
		if rest, ok := strings.CutSuffix(id, "/stragglers"); ok {
			rep, found := o.Board.Stragglers(rest)
			if !found {
				http.NotFound(w, r)
				return
			}
			writeJSON(w, rep)
			return
		}
		js, ok := o.Board.Job(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		resp := jobResponse{JobStatus: js}
		if o.SIDCost != nil && js.SID != "" {
			if c, ok := o.SIDCost(js.SID); ok {
				resp.SIDCost = c
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if o.Tracer == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		var spans []obs.Span
		if r.URL.Query().Get("drain") == "1" {
			spans = o.Tracer.Drain()
		} else {
			spans = o.Tracer.Spans()
		}
		_ = obs.WriteSpansJSONL(w, spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "clusterbft introspection\n\n"+
			"/metrics\n/healthz\n/jobs\n/jobs/{id}\n/jobs/{id}/stragglers\n/trace[?drain=1]\n/debug/pprof/\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a started introspection listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (":8080", "127.0.0.1:0", ...) and serves the
// introspection handler in a background goroutine. The returned
// Server's Addr reports the bound address, so ":0" works for tests and
// port auto-assignment.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
