package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordsAndExportsJSONL(t *testing.T) {
	tr := NewTracer(16)
	tr.Record("job", "j1", "job", 0, 100, A("id", "j1"))
	tr.Record("task", "node-0", "m0-000", 10, 60, A("job", "j1"), AI("dur", 50))
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	want0 := `{"cat":"job","track":"j1","name":"job","vstart":0,"vend":100,"attrs":[{"k":"id","v":"j1"}]}`
	if lines[0] != want0 {
		t.Errorf("line 0 = %s\nwant     %s", lines[0], want0)
	}
	// Byte-identical re-export.
	var b2 bytes.Buffer
	if err := tr.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("JSONL export must be deterministic")
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record("c", "t", "s", int64(i), int64(i)+1)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained = %d, want 3", len(spans))
	}
	if spans[0].VStart != 2 || spans[2].VStart != 4 {
		t.Errorf("ring kept %v..%v, want oldest=2 newest=4", spans[0].VStart, spans[2].VStart)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestChromeTraceValid pins the Chrome trace_event contract Perfetto
// needs: a top-level traceEvents array whose "X" events carry name, ts,
// dur, pid and tid, with one thread_name metadata event per track.
func TestChromeTraceValid(t *testing.T) {
	tr := NewTracer(16)
	tr.Record("task", "node-0", "m0", 100, 200, A("job", "j1"))
	tr.Record("task", "node-1", "m1", 100, 250)
	tr.Instant("suspicion", "verifier", "fault", 300)
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *int64            `json:"ts"`
			Dur  *int64            `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xEvents, metaEvents int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("X event without non-negative dur: %+v", ev)
			}
		case "M":
			metaEvents++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Fatalf("bad metadata event: %+v", ev)
			}
		}
	}
	if xEvents != 3 {
		t.Errorf("X events = %d, want 3", xEvents)
	}
	if metaEvents != 3 { // node-0, node-1, verifier
		t.Errorf("thread_name events = %d, want 3", metaEvents)
	}
}

func TestWallClockOnlyWhenEnabled(t *testing.T) {
	tr := NewTracer(4)
	tr.Record("c", "t", "first", 0, 1)
	now := int64(1000)
	tr.EnableWallClock(func() int64 { now++; return now })
	if tr.WallNow() == 0 {
		t.Fatal("WallNow must read the enabled clock")
	}
	tr.Record("c", "t", "second", 0, 1)
	spans := tr.Spans()
	if spans[0].WallEnd != 0 {
		t.Error("span recorded before EnableWallClock must have no wall time")
	}
	if spans[1].WallEnd == 0 {
		t.Error("span recorded after EnableWallClock must carry a wall end")
	}
	// JSONL stays wall-free either way.
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "wall") {
		t.Error("JSONL export must exclude wall-clock fields")
	}
}

func TestWriteTraceFiles(t *testing.T) {
	tr := NewTracer(4)
	tr.Record("c", "t", "s", 0, 10)
	dir := t.TempDir()
	path := dir + "/run.trace.json"
	twin, err := WriteTraceFiles(tr, path)
	if err != nil {
		t.Fatal(err)
	}
	if want := dir + "/run.trace.jsonl"; twin != want {
		t.Errorf("twin = %q, want %q", twin, want)
	}
}
