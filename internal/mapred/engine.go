package mapred

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/obs"
	"clusterbft/internal/pool"
	"clusterbft/internal/tuple"
)

// CostModel sets the virtual-time costs of engine operations, in
// microseconds. Latency results are reported in this virtual time, which
// makes runs deterministic and lets replicas overlap regardless of how
// many host CPUs the simulation itself gets.
type CostModel struct {
	TaskStartupUs   int64 // task-tracker JVM spin-up per task
	MapRecordUs     int64 // per input record in a map task
	ReduceRecordUs  int64 // per record in or out of a reduce task
	ShuffleRecordUs int64 // per record written to / read from shuffle
	CombineRecordUs int64 // per record folded into a map-side combiner
	DigestRecordUs  int64 // per record folded into a verification digest
	HeartbeatUs     int64 // task-tracker heartbeat interval (§4.2 step 1)
	SplitRecords    int   // records per map input split
}

// DefaultCostModel returns costs loosely calibrated to Hadoop 1.x: long
// task startup, cheap per-record processing, digesting noticeably cheaper
// than processing (the paper measures <10% overhead for one verification
// point, §6.1).
func DefaultCostModel() CostModel {
	return CostModel{
		TaskStartupUs:   800_000,
		MapRecordUs:     4,
		ReduceRecordUs:  6,
		ShuffleRecordUs: 1,
		CombineRecordUs: 1,
		DigestRecordUs:  1,
		HeartbeatUs:     200_000,
		SplitRecords:    10_000,
	}
}

// Metrics accumulates the resource counters Table 3 reports.
type Metrics struct {
	CPUTimeUs         int64 // summed task durations
	HDFSBytesRead     int64 // job input reads
	HDFSBytesWritten  int64 // job output writes (intermediate and final)
	LocalBytesRead    int64 // shuffle reads
	LocalBytesWritten int64 // shuffle writes
	MapTasks          int64
	ReduceTasks       int64
	RecordsIn         int64
	RecordsOut        int64
	ShuffleRecords    int64 // records crossing the shuffle (post-combiner)
	CombinedRecords   int64 // records folded into map-side combiners
	DigestRecords     int64
	JobsCompleted     int64
	TasksHung         int64 // omission faults observed
	SpeculativeTasks  int64 // backup copies launched
}

// TaskFault is one fault verdict for a dispatched task attempt, drawn by
// the engine's TaskHook before the body runs. The zero value is honest
// execution.
type TaskFault struct {
	// SlowFactor > 1 multiplies the attempt's virtual duration
	// (straggler). Values <= 1 are ignored.
	SlowFactor float64
	// Hang withholds the attempt's result forever (omission): the slot
	// stays occupied and no completion event fires.
	Hang bool
	// Corrupt, when non-nil, tampers every input tuple of a map task
	// (commission); ignored for reduce tasks, matching the node
	// adversary's behaviour.
	Corrupt func(tuple.Tuple) tuple.Tuple
}

// JobState tracks one submitted job through execution.
type JobState struct {
	Spec *JobSpec
	// Nodes is the job cluster: every node that was assigned any task of
	// this job (including hung ones); input to fault isolation (§4.3).
	Nodes map[cluster.NodeID]bool

	SubmitTime int64
	DoneTime   int64
	Done       bool
	Killed     bool

	depsLeft   int
	dependents []*JobState
	runnable   bool

	splits      [][][2]int    // per input: line ranges
	inputSrcs   []*dfs.Reader // per input: streaming view opened at runnable time
	mapOutcomes []*mapOutcome // indexed by map task ordinal
	mapOrdinal  map[string]int
	mapsTotal   int
	mapsDone    int
	redsTotal   int
	redsDone    int

	// auditParts retains each committed part's produced lines (before any
	// write hook) when Spec.Audit is set, so completeJob can digest the
	// job's output as produced for AuditIOOutPoint.
	auditParts map[string][]string

	running    map[string][]*runningTask // task ID -> active attempts
	committed  map[string]bool           // task IDs whose result committed
	maxDur     map[TaskKind]int64        // longest committed duration per kind
	speculated map[string]int            // backups spawned per task ID (not yet invalidated by loss)

	hasDependents bool // another submitted job consumes this job's output

	runnableTime int64 // when the job's map tasks entered the ready queue
	mapsDoneTime int64 // when the last map task committed

	// Per-(job, stage) committed-duration histograms, registered as
	// labeled families {job, stage} when the engine has a registry; nil
	// (free) otherwise.
	obsMapDur *obs.Histogram
	obsRedDur *obs.Histogram
}

type runningTask struct {
	task      *Task
	node      cluster.NodeID
	start     int64
	wallStart int64 // wall-clock dispatch time; 0 unless tracing with a wall clock
	hung      bool
	dead      bool
}

// Latency returns the job's virtual makespan; valid once Done.
func (j *JobState) Latency() int64 { return j.DoneTime - j.SubmitTime }

// ProducedLines returns the job's output lines exactly as its tasks
// produced them (before any storage write hook), concatenated in sorted
// part-name order — the stream the AuditIOOutPoint and CkptPoint
// digests cover. Nil unless the job ran with Audit or Ckpt set.
func (j *JobState) ProducedLines() []string {
	if j.auditParts == nil {
		return nil
	}
	parts := make([]string, 0, len(j.auditParts))
	for p := range j.auditParts {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	var lines []string
	for _, p := range parts {
		lines = append(lines, j.auditParts[p]...)
	}
	return lines
}

// HasDependents reports whether another submitted job consumes this
// job's output. With the controller's rewriting, dependents are always
// same-replica consumers, so corruption of such an output is detectable
// by digest comparison — chaos uses this to pick sound write-mangle
// targets (tampering an output nobody re-reads within the replica would
// land after the digests were taken, which trusted storage rules out).
func (j *JobState) HasDependents() bool { return j.hasDependents }

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the deterministic virtual-time MapReduce runtime: a job
// tracker (queue + dependency tracking), task trackers (node slots
// claimed via heartbeat ticks), and the execution of real map/reduce
// work. All engine state mutation happens on the single simulation
// goroutine; the heavy data work of task bodies is computed eagerly on
// a bounded worker pool the moment a task is dispatched, and its
// effects (metrics, outputs, digest reports) commit in virtual-time
// order on the simulation goroutine, keeping results byte-identical at
// every pool size.
type Engine struct {
	FS      *dfs.FS
	Cluster *cluster.Cluster
	Sched   Scheduler
	Cost    CostModel
	Metrics Metrics

	// QuizTasks counts tasks re-executed through Requiz. It lives outside
	// Metrics so the Table 3 snapshot (whose %+v rendering golden
	// fixtures pin) keeps its shape; quiz CPU still folds into
	// Metrics.CPUTimeUs.
	QuizTasks int64

	// Workers bounds how many task bodies compute concurrently on the
	// host; 0 means GOMAXPROCS, 1 reproduces fully serial execution.
	// Changing it after the first task dispatched has no effect.
	Workers int

	// Trace, when set, records job, stage, and task spans onto the
	// virtual timeline. Nil (the default) disables tracing; the
	// instrumentation is nil-safe and allocation-free when disabled.
	Trace *obs.Tracer

	// Board, when set, mirrors live job/task state for the introspection
	// server's /jobs endpoints. Nil (the default) is free: every hook is
	// a nil-safe no-op.
	Board *obs.JobsBoard

	// Ledger attributes every charged CPU microsecond to a cost bucket
	// (committed / replica_waste / verify / recovery_rerun). Always
	// present: NewEngine creates one, and the invariant that its buckets
	// sum to Metrics.CPUTimeUs at quiesce is pinned by tests.
	Ledger *CostLedger

	// TaskHook, when set, is consulted on the simulation goroutine at
	// every task dispatch, after the node adversary's own draw, and may
	// overlay additional faults on the attempt (chaos injection). Nil is
	// free; the hook must be deterministic given (node, task) because it
	// runs in dispatch order.
	TaskHook func(node cluster.NodeID, t *Task) TaskFault

	// DigestChunk is the paper's d: records per digest chunk (§6.4);
	// <= 0 means one digest per task stream.
	DigestChunk int
	// DigestSink receives verification digests as tasks complete.
	DigestSink func(digest.Report)
	// OnJobDone fires when a job's last task completes.
	OnJobDone func(*JobState)

	now    int64
	seq    int64
	events eventHeap

	// Speculation enables Hadoop-style backup tasks: a task still
	// running SpecLagFactor times longer than the slowest committed
	// sibling of its kind gets a second copy on another node; the first
	// completion wins. Backups rescue replicas from stragglers and from
	// omission-hung tasks without waiting for the verifier timeout.
	Speculation    bool
	SpecLagFactor  float64 // default 2.0
	SpecIntervalUs int64   // sweep period; default 1s virtual
	// SpecQuantile, when > 0 with Speculation on, adds a second trigger:
	// an attempt running longer than SpecLagFactor times the
	// SpecQuantile bucket bound of committed durations for the same
	// (base job, task kind) gets a backup. The histogram is keyed by
	// base job ID, so a healthy replica's commits inform a fully-hung
	// sibling replica — which the maxDur rule (per-job, needs one
	// committed task in the same job) never can. 0 (the default) keeps
	// legacy behavior exactly.
	SpecQuantile float64
	// SpecMinSamples gates the quantile trigger until the histogram has
	// at least this many observations; default 1 — a single committed
	// sibling is exactly the evidence the legacy maxDur trigger trusts,
	// and the quantile histogram merely widens it across replicas. The
	// campaign workload's later jobs run ONE map per replica, so any
	// higher floor leaves a replica pinned to hanging nodes waiting out
	// the full verifier timeout: no sibling of its own ever commits, and
	// the healthy replicas contribute just one observation each.
	SpecMinSamples int

	jobs       map[string]*JobState
	jobOrder   []string
	byOutput   map[string]*JobState
	dead       map[cluster.NodeID]bool
	ticks      int
	specArmed  bool
	ready      []*Task
	freeSlots  map[cluster.NodeID]int
	sidBinding map[cluster.NodeID]map[string]int
	tickArmed  bool

	// specHist holds committed-duration histograms per (base job ID,
	// task kind), feeding the SpecQuantile trigger. Cross-replica by
	// construction: replicas of one cluster share base IDs.
	specHist map[string]*obs.Histogram

	workers *pool.Pool
	pending []pendingBody

	// Registry-backed instruments, set by InstrumentMetrics; all nil (and
	// therefore free) when no registry is attached.
	obsReg          *obs.Registry
	obsTask         taskObs
	obsCPUCommitted *obs.Counter   // CPU of attempts whose result committed
	obsCPULost      *obs.Counter   // CPU of hung, raced, and killed attempts
	obsTaskDur      *obs.Histogram // committed task durations
	obsDigestRecs   *obs.Counter   // records folded into digest writers
}

// pendingBody is a task body dispatched to the worker pool but not yet
// joined back into the simulation: settle waits on fut, charges the
// duration and schedules the commit event.
type pendingBody struct {
	rt   *runningTask
	fut  *pool.Future[bodyResult]
	buf  *digest.Buffer
	slow float64
	hung bool
}

// bodyResult is what a task body computation yields: the attempt's
// virtual duration and a commit closure applying its effects. The body
// runs off the simulation goroutine and only reads state fixed before
// dispatch; commit runs on the simulation goroutine at completion time.
type bodyResult struct {
	dur    int64
	commit func()
}

// NewEngine builds an engine over the given storage and worker cluster.
// sched may be nil (FIFO).
func NewEngine(fs *dfs.FS, cl *cluster.Cluster, sched Scheduler, cost CostModel) *Engine {
	if sched == nil {
		sched = FIFOScheduler{}
	}
	e := &Engine{
		FS:             fs,
		Cluster:        cl,
		Sched:          sched,
		Cost:           cost,
		Ledger:         NewCostLedger(),
		SpecLagFactor:  2.0,
		SpecIntervalUs: 1_000_000,
		SpecMinSamples: 1,
		specHist:       make(map[string]*obs.Histogram),
		jobs:           make(map[string]*JobState),
		byOutput:       make(map[string]*JobState),
		dead:           make(map[cluster.NodeID]bool),
		freeSlots:      make(map[cluster.NodeID]int),
		sidBinding:     make(map[cluster.NodeID]map[string]int),
	}
	for _, n := range cl.Nodes() {
		e.freeSlots[n.ID] = n.Slots
	}
	return e
}

// InstrumentMetrics registers the engine into reg. Every Metrics field
// gets a live Func view under mapred.metrics.* — the struct stays the
// canonical Table 3 snapshot (golden fixtures pin its %+v), the registry
// is the uniform read path. On top of the compatibility view come
// instruments the struct deliberately does not carry: the committed/lost
// CPU split (CPUTimeUs itself includes losing attempts, a pinned
// semantic), a committed-task duration histogram, data-plane record
// counters threaded into task bodies, digest record counts, and the
// engine's DFS counters.
func (e *Engine) InstrumentMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.obsReg = reg
	m := &e.Metrics
	reg.Func("mapred.metrics.cpu_time_us", func() int64 { return m.CPUTimeUs })
	reg.Func("mapred.metrics.hdfs_bytes_read", func() int64 { return m.HDFSBytesRead })
	reg.Func("mapred.metrics.hdfs_bytes_written", func() int64 { return m.HDFSBytesWritten })
	reg.Func("mapred.metrics.local_bytes_read", func() int64 { return m.LocalBytesRead })
	reg.Func("mapred.metrics.local_bytes_written", func() int64 { return m.LocalBytesWritten })
	reg.Func("mapred.metrics.map_tasks", func() int64 { return m.MapTasks })
	reg.Func("mapred.metrics.reduce_tasks", func() int64 { return m.ReduceTasks })
	reg.Func("mapred.metrics.records_in", func() int64 { return m.RecordsIn })
	reg.Func("mapred.metrics.records_out", func() int64 { return m.RecordsOut })
	reg.Func("mapred.metrics.shuffle_records", func() int64 { return m.ShuffleRecords })
	reg.Func("mapred.metrics.combined_records", func() int64 { return m.CombinedRecords })
	reg.Func("mapred.metrics.digest_records", func() int64 { return m.DigestRecords })
	reg.Func("mapred.metrics.jobs_completed", func() int64 { return m.JobsCompleted })
	reg.Func("mapred.metrics.tasks_hung", func() int64 { return m.TasksHung })
	reg.Func("mapred.metrics.speculative_tasks", func() int64 { return m.SpeculativeTasks })
	e.obsCPUCommitted = reg.Counter("mapred.cpu_committed_us")
	e.obsCPULost = reg.Counter("mapred.cpu_lost_us")
	e.obsTaskDur = reg.Histogram("mapred.task_duration_us", obs.DurationBucketsUs)
	led := e.Ledger
	reg.Help("cost.cpu_us", "CPU microseconds attributed by the cost ledger; buckets sum to mapred.metrics.cpu_time_us at quiesce")
	reg.With("bucket", "committed").Func("cost.cpu_us", func() int64 { return led.Buckets().CommittedUs })
	reg.With("bucket", "replica_waste").Func("cost.cpu_us", func() int64 { return led.Buckets().ReplicaWasteUs })
	reg.With("bucket", "verify", "mode", CostModeFull).Func("cost.cpu_us", func() int64 { return led.Buckets().VerifyFullUs })
	reg.With("bucket", "verify", "mode", CostModeQuiz).Func("cost.cpu_us", func() int64 { return led.Buckets().VerifyQuizUs })
	reg.With("bucket", "verify", "mode", CostModeDeferred).Func("cost.cpu_us", func() int64 { return led.Buckets().VerifyDeferredUs })
	reg.With("bucket", "recovery_rerun").Func("cost.cpu_us", func() int64 { return led.Buckets().RecoveryRerunUs })
	reg.With("bucket", "in_flight").Func("cost.cpu_us", func() int64 { return m.CPUTimeUs - led.TotalUs() })
	e.obsDigestRecs = reg.Counter("digest.records")
	e.obsTask = taskObs{
		mapRecords:     reg.Counter("mapred.task.map_records"),
		reduceRecords:  reg.Counter("mapred.task.reduce_records"),
		shuffleRecords: reg.Counter("mapred.task.shuffle_records"),
		combineRecords: reg.Counter("mapred.task.combine_records"),
		mergedRuns:     reg.Counter("mapred.task.merged_runs"),
		outRecords:     reg.Counter("mapred.task.out_records"),
	}
	e.FS.Instrument(reg)
	if e.workers != nil {
		e.workers.Instrument(reg)
	}
}

// Now returns the current virtual time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// Registry returns the metrics registry attached via InstrumentMetrics;
// nil when metrics are off. Components layered over the engine (the
// controller's checkpoint counters) register through it so everything
// lands in one exposition.
func (e *Engine) Registry() *obs.Registry { return e.obsReg }

// After schedules fn at now+delayUs on the simulation clock.
func (e *Engine) After(delayUs int64, fn func()) {
	if delayUs < 0 {
		delayUs = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delayUs, seq: e.seq, fn: fn})
}

// Job returns the state of a submitted job, or nil.
func (e *Engine) Job(id string) *JobState { return e.jobs[id] }

// JobByOutput returns the job writing under the output directory dir, or
// nil. Chaos injection uses it to map DFS paths back to jobs.
func (e *Engine) JobByOutput(dir string) *JobState { return e.byOutput[dir] }

// Submit enqueues a job. Dependencies must have been submitted earlier
// (compiler output order satisfies this). Duplicate IDs are an error.
func (e *Engine) Submit(spec *JobSpec) (*JobState, error) {
	if _, ok := e.jobs[spec.ID]; ok {
		return nil, fmt.Errorf("mapred: duplicate job id %q", spec.ID)
	}
	js := &JobState{
		Spec:       spec,
		Nodes:      make(map[cluster.NodeID]bool),
		SubmitTime: e.now,
		mapOrdinal: make(map[string]int),
		running:    make(map[string][]*runningTask),
		committed:  make(map[string]bool),
		maxDur:     make(map[TaskKind]int64),
		speculated: make(map[string]int),
	}
	e.jobs[spec.ID] = js
	e.jobOrder = append(e.jobOrder, spec.ID)
	e.byOutput[spec.Output] = js
	for _, dep := range spec.Deps {
		d := e.jobs[dep]
		if d == nil {
			return nil, fmt.Errorf("mapred: job %q depends on unsubmitted %q", spec.ID, dep)
		}
		d.hasDependents = true
		if !d.Done {
			js.depsLeft++
			d.dependents = append(d.dependents, js)
		}
	}
	e.Board.JobSubmitted(spec.ID, spec.SID, spec.Replica, e.now)
	if js.depsLeft == 0 {
		e.makeRunnable(js)
	}
	return js, nil
}

// makeRunnable computes splits and enqueues the job's map tasks.
func (e *Engine) makeRunnable(js *JobState) {
	if js.runnable || js.Killed {
		return
	}
	js.runnable = true
	js.runnableTime = e.now
	js.splits = make([][][2]int, len(js.Spec.Inputs))
	js.inputSrcs = make([]*dfs.Reader, len(js.Spec.Inputs))
	for i, in := range js.Spec.Inputs {
		src := e.openInput(in.Path)
		js.inputSrcs[i] = src
		if js.Spec.Audit && in.AuditIn && e.DigestSink != nil {
			// Digest the input exactly as read back — the flat
			// concatenation the reader serves, after any storage-layer
			// read transformation — so a mismatch against the producer's
			// as-produced digest convicts the storage boundary.
			lines := src.ReadRange(0, src.NumRecords())
			e.DigestSink(auditReport(js.Spec, AuditIOInPoint,
				fmt.Sprintf("%s/in%d", baseID(js.Spec.ID), i),
				int64(len(lines)), digest.OfLines(lines)))
		}
		js.splits[i] = splitLines(src.NumRecords(), e.Cost.SplitRecords)
		for s := range js.splits[i] {
			t := &Task{Job: js, Kind: MapTask, InputIdx: i, Index: s}
			t.Home = e.splitHome(in.Path, s)
			js.mapOrdinal[t.ID()] = js.mapsTotal
			js.mapsTotal++
			e.ready = append(e.ready, t)
		}
	}
	js.mapOutcomes = make([]*mapOutcome, js.mapsTotal)
	e.Board.JobStages(js.Spec.ID, js.mapsTotal, -1)
	if e.obsReg != nil {
		js.obsMapDur = e.obsReg.With("job", baseID(js.Spec.ID), "stage", "map").
			Histogram("mapred.stage_task_duration_us", obs.DurationBucketsUs)
	}
	e.armTick()
}

// openInput opens a streaming reader over an input file or part-file
// tree; missing paths read as empty (an upstream job may legitimately
// have produced no records). The reader snapshots the input's blocks
// without decoding them — map task bodies decode only their own split's
// blocks, off the simulation goroutine.
func (e *Engine) openInput(path string) *dfs.Reader {
	if e.FS.Exists(path) {
		if r, err := e.FS.OpenReader(path); err == nil {
			return r
		}
	}
	r, err := e.FS.OpenTreeReader(path)
	if err != nil {
		return &dfs.Reader{}
	}
	return r
}

// splitHome deterministically assigns a "hosting" node for locality-aware
// schedulers by hashing (path, split) with FNV-1a. Unsigned arithmetic
// throughout: the previous hand-rolled h*31 hash negated its sum, which
// overflows for math.MinInt and left the distribution weak.
func (e *Engine) splitHome(path string, split int) cluster.NodeID {
	nodes := e.Cluster.Nodes()
	if len(nodes) == 0 {
		return ""
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(split))
	h.Write(b[:])
	return nodes[h.Sum64()%uint64(len(nodes))].ID
}

// armTick schedules the next heartbeat scheduling round if needed.
func (e *Engine) armTick() {
	if e.tickArmed || len(e.ready) == 0 {
		return
	}
	e.tickArmed = true
	e.After(e.Cost.HeartbeatUs, func() {
		e.tickArmed = false
		if e.tick() {
			e.armTick()
		}
	})
}

// tick is one heartbeat round: every node with free slots asks the
// scheduler for work (§4.2 steps 1–5). The starting node rotates across
// ticks — heartbeats arrive in no fixed order in Hadoop, and a fixed
// order would starve high-numbered nodes on small workloads — while
// keeping runs deterministic. It reports whether another heartbeat is
// worthwhile: when no free slot saw a single legal candidate, only an
// engine event (completion, kill, submit, speculation) can change
// schedulability, and every one of those re-arms the tick — so
// re-arming here would spin the heartbeat forever on a permanently
// unplaceable task (e.g. a backup whose only legal node hosts the hung
// original).
func (e *Engine) tick() bool {
	nodes := e.Cluster.Nodes()
	if len(nodes) == 0 {
		return false
	}
	e.ticks++
	start := e.ticks % len(nodes)
	sawWork := false
	for i := range nodes {
		node := nodes[(start+i)%len(nodes)]
		if e.dead[node.ID] {
			continue // crashed: no heartbeat, no slots
		}
		for e.freeSlots[node.ID] > 0 {
			cands := e.legalTasks(node)
			if len(cands) == 0 {
				break
			}
			sawWork = true
			t := e.Sched.Pick(node, cands)
			if t == nil {
				break
			}
			e.startTask(node, t)
		}
	}
	e.settle()
	return sawWork
}

// legalTasks filters the ready queue to tasks allowed on node: tasks of a
// replicated job (non-empty SID) may only land on a node bound to the
// same replica of that sub-graph, never a different one (§5.3).
func (e *Engine) legalTasks(node *cluster.Node) []*Task {
	var out []*Task
	for _, t := range e.ready {
		if t.Job.committed[t.ID()] {
			continue // a backup whose original already finished
		}
		sid := t.Job.Spec.SID
		if sid != "" {
			if bound, ok := e.sidBinding[node.ID][sid]; ok && bound != t.Job.Spec.Replica {
				continue
			}
		}
		// A backup copy must not share a node with a live attempt.
		dup := false
		for _, rt := range t.Job.running[t.ID()] {
			if rt.node == node.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, t)
	}
	return out
}

func (e *Engine) removeReady(t *Task) {
	for i, r := range e.ready {
		if r == t {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			return
		}
	}
}

// bodyPool lazily builds the worker pool computing task bodies.
func (e *Engine) bodyPool() *pool.Pool {
	if e.workers == nil {
		e.workers = pool.New(e.Workers)
		e.workers.Instrument(e.obsReg)
	}
	return e.workers
}

// startTask claims a slot for t on node and dispatches its body to the
// worker pool. Bookkeeping (slots, bindings, attempt lists, adversary
// draw) happens here on the simulation goroutine; the data work runs
// concurrently and is joined by settle at the end of the tick.
func (e *Engine) startTask(node *cluster.Node, t *Task) {
	e.removeReady(t)
	e.freeSlots[node.ID]--
	js := t.Job
	js.Nodes[node.ID] = true
	if sid := js.Spec.SID; sid != "" {
		if e.sidBinding[node.ID] == nil {
			e.sidBinding[node.ID] = make(map[string]int)
		}
		e.sidBinding[node.ID][sid] = js.Spec.Replica
	}
	rt := &runningTask{task: t, node: node.ID, start: e.now, wallStart: e.Trace.WallNow()}
	js.running[t.ID()] = append(js.running[t.ID()], rt)
	e.Board.TaskStarted(js.Spec.ID)

	// Byzantine behaviour draw (§2.3). Drawn here, not in the body, so
	// the adversary's seeded RNG advances in deterministic dispatch
	// order.
	var corrupt corruptFn
	hung := false
	slow := 1.0
	if adv := node.Adversary; adv != nil && adv.Fire() {
		switch adv.Kind {
		case cluster.FaultCommission:
			corrupt = cluster.Corrupt
		case cluster.FaultOmission:
			hung = true
		case cluster.FaultSlow:
			slow = adv.Slowdown()
		}
	}
	// Chaos overlay: injected faults compose with (and never mask) the
	// node adversary's draw.
	if e.TaskHook != nil {
		f := e.TaskHook(node.ID, t)
		if f.Corrupt != nil && corrupt == nil {
			corrupt = f.Corrupt
		}
		if f.Hang {
			hung = true
		}
		if f.SlowFactor > slow {
			slow = f.SlowFactor
		}
	}

	// Digest reports are buffered per attempt and replayed at commit
	// time, never emitted straight into the sink from the body: the
	// body runs off the simulation goroutine and attempts may lose.
	buf := &digest.Buffer{}
	chunk := e.DigestChunk
	digestRecs := e.obsDigestRecs
	df := func(point int) *digest.Writer {
		key := digest.Key{SID: js.Spec.SID, Point: point, Task: t.ID()}
		w := digest.NewWriter(key, js.Spec.Replica, chunk, buf.Add)
		w.Obs = digestRecs
		return w
	}

	var body func() bodyResult
	if t.Kind == MapTask {
		body = e.mapBody(t, df, buf.Add, corrupt)
	} else {
		body = e.reduceBody(t, df, buf.Add)
	}
	e.pending = append(e.pending, pendingBody{
		rt:   rt,
		fut:  pool.Go(e.bodyPool(), body),
		buf:  buf,
		slow: slow,
		hung: hung,
	})
	e.armSpec()
}

// settle joins every task body dispatched this tick, in dispatch order:
// charge CPU, then schedule the completion event that commits the
// attempt's effects. All bodies of one tick start at the same virtual
// instant, so joining after the assignment loop loses no virtual time
// while letting the bodies compute concurrently on the pool.
func (e *Engine) settle() {
	pend := e.pending
	e.pending = nil
	for _, p := range pend {
		res := p.fut.Wait()
		dur := res.dur
		if p.slow > 1 {
			dur = int64(float64(dur) * p.slow)
		}
		e.Metrics.CPUTimeUs += dur
		if p.hung {
			p.rt.hung = true
			e.Metrics.TasksHung++
			// The withheld result never commits: its CPU is lost work.
			e.obsCPULost.Add(dur)
			spec := p.rt.task.Job.Spec
			e.Ledger.ResolveLost(spec.SID, spec.Replica, dur)
			e.Board.TaskHung(spec.ID)
			e.Trace.Instant("fault", string(p.rt.node), p.rt.task.ID()+" hung", e.now,
				obs.A("job", p.rt.task.Job.Spec.ID))
			continue // no completion event: the node withholds the result
		}
		e.scheduleCommit(p, dur, res.commit)
	}
}

// scheduleCommit arms the completion event for one live attempt: at
// start+dur the attempt's effects commit, unless the attempt died or a
// sibling won the race in the meantime.
func (e *Engine) scheduleCommit(p pendingBody, dur int64, commit func()) {
	rt := p.rt
	t := rt.task
	js := t.Job
	e.After(dur, func() {
		if rt.dead {
			e.obsCPULost.Add(dur) // torn down before its completion fired
			e.Ledger.ResolveLost(js.Spec.SID, js.Spec.Replica, dur)
			e.Board.TaskLost(js.Spec.ID)
			return
		}
		e.unlink(js, t.ID(), rt)
		e.releaseSlot(rt.node)
		if js.Killed || js.committed[t.ID()] {
			e.obsCPULost.Add(dur) // job gone, or a backup raced us and won
			e.Ledger.ResolveLost(js.Spec.SID, js.Spec.Replica, dur)
			e.Board.TaskLost(js.Spec.ID)
			e.armTick()
			return
		}
		js.committed[t.ID()] = true
		e.obsCPUCommitted.Add(dur)
		e.obsTaskDur.Observe(dur)
		e.Ledger.ResolveCommitted(js.Spec.SID, js.Spec.Replica, dur)
		e.Board.TaskCommitted(js.Spec.ID, t.Kind.String(), t.ID(), dur)
		if t.Kind == MapTask {
			js.obsMapDur.Observe(dur)
		} else {
			js.obsRedDur.Observe(dur)
		}
		if e.SpecQuantile > 0 {
			k := specKey(js.Spec.ID, t.Kind)
			h := e.specHist[k]
			if h == nil {
				h = obs.NewHistogram(obs.DurationBucketsUs)
				e.specHist[k] = h
			}
			h.Observe(dur)
		}
		if e.Trace != nil {
			e.Trace.Emit(obs.Span{
				Cat: "task", Track: string(rt.node), Name: t.ID(),
				VStart: rt.start, VEnd: e.now, WallStart: rt.wallStart,
				Attrs: []obs.Attr{obs.A("job", js.Spec.ID), obs.A("kind", t.Kind.String())},
			})
		}
		// A queued backup copy that never started is dead weight now; a
		// committed task must not linger on the ready queue (it would
		// never be legal again, and would arm heartbeats forever).
		e.removeReady(t)
		if dur > js.maxDur[t.Kind] {
			js.maxDur[t.Kind] = dur
		}
		// The first commit of a kind gives laggard siblings a baseline to
		// be measured against; wake the sweep for them.
		e.armSpec()
		// Tear down losing sibling attempts (hung originals included).
		for _, other := range js.running[t.ID()] {
			other.dead = true
			e.releaseSlot(other.node)
		}
		delete(js.running, t.ID())
		// Digests first: when commit completes the job, the verifier
		// must already hold this task's reports, in emission order.
		p.buf.Replay(e.DigestSink)
		commit()
		e.armTick()
	})
}

// unlink removes one attempt from a task's live list.
func (e *Engine) unlink(js *JobState, tid string, rt *runningTask) {
	rts := js.running[tid]
	for i, x := range rts {
		if x == rt {
			js.running[tid] = append(rts[:i], rts[i+1:]...)
			return
		}
	}
}

// armSpec schedules the next speculative-execution sweep.
func (e *Engine) armSpec() {
	if !e.Speculation || e.specArmed {
		return
	}
	e.specArmed = true
	e.After(e.SpecIntervalUs, func() {
		e.specArmed = false
		if e.specSweep() {
			e.armSpec()
		}
	})
}

// specSweep launches backups for laggard tasks and reports whether a
// future sweep could still act. Only a task with a single live attempt,
// no backup yet, and a committed sibling to compare against can benefit
// from the clock advancing — it either gets its backup now or on a
// later sweep. Everything else (hung attempts with backups pending,
// tasks with no committed sibling) changes state only through engine
// events, and those re-arm the sweep; re-arming on "anything still
// running" would spin the event loop forever when a hung task's backup
// can never be placed. Iteration follows submission order and sorted
// task IDs so runs stay deterministic.
func (e *Engine) specSweep() bool {
	again := false
	for _, id := range e.jobOrder {
		js := e.jobs[id]
		if js == nil || js.Done || js.Killed {
			continue
		}
		tids := make([]string, 0, len(js.running))
		for tid := range js.running {
			tids = append(tids, tid)
		}
		sort.Strings(tids)
		for _, tid := range tids {
			rts := js.running[tid]
			if len(rts) == 0 {
				continue
			}
			if e.SpecQuantile > 0 {
				// Quantile mode allows capped re-speculation: a backup that
				// itself lands on a hung node must not pin the task forever.
				// A task qualifies only when every spawned backup has been
				// placed (len(rts) counts live placed attempts, speculated
				// counts spawns — original included in rts makes the queue
				// empty exactly when len(rts) > speculated) and fewer than
				// maxQuantileBackups were spawned.
				if js.speculated[tid] >= maxQuantileBackups || len(rts) <= js.speculated[tid] {
					continue
				}
			} else if js.speculated[tid] > 0 || len(rts) > 1 {
				continue
			}
			kind := rts[0].task.Kind
			// Legacy trigger: the slowest committed sibling of the same
			// kind in the same job, scaled by the lag factor.
			threshold := js.maxDur[kind]
			// Quantile trigger: committed durations for the same base job
			// across all replicas. A fully-hung replica has maxDur == 0
			// forever; its healthy siblings' histogram still catches it.
			if e.SpecQuantile > 0 {
				h := e.specHist[specKey(js.Spec.ID, kind)]
				if h.Count() >= int64(e.SpecMinSamples) {
					if ub, ok := h.Quantile(e.SpecQuantile); ok {
						if threshold == 0 || ub < threshold {
							threshold = ub
						}
					}
				}
			}
			if threshold == 0 {
				// No comparator yet: only an engine event (a commit) can
				// change that, and commits re-arm the sweep.
				continue
			}
			// The youngest live attempt governs the trigger: with multiple
			// attempts (quantile re-speculation), spawning again is only
			// justified once even the freshest backup has lagged past the
			// threshold. With a single attempt this is the legacy check.
			newest := rts[0].start
			for _, rt := range rts[1:] {
				if rt.start > newest {
					newest = rt.start
				}
			}
			if float64(e.now-newest) > e.SpecLagFactor*float64(threshold) {
				js.speculated[tid]++
				e.Metrics.SpeculativeTasks++
				e.ready = append(e.ready, rts[0].task)
				e.armTick()
			} else {
				again = true
			}
		}
	}
	return again
}

// maxQuantileBackups caps backups per task under quantile speculation.
// Two backups drive the probability that every attempt of a task sits
// on a pathological node to (bad placement)^3 while bounding the slot
// pressure hung attempts can exert.
const maxQuantileBackups = 2

// specKey is the specHist map key: base job ID (stable across replicas
// and attempts) plus task kind.
func specKey(jobID string, kind TaskKind) string {
	return baseID(jobID) + "|" + kind.String()
}

// mapBody returns the map task's data work as a closure safe to run off
// the simulation goroutine: it reads only state fixed before dispatch
// (the split's lines, the job spec, the cost model) and writes only
// attempt-local state (the outcome and the attempt's digest buffer).
// The commit closure it yields runs back on the simulation goroutine.
// emit receives the attempt's audit digest reports (the attempt's own
// buffer in normal execution, a quiz buffer under Requiz); it is only
// consulted when the spec has Audit set.
func (e *Engine) mapBody(t *Task, df digestFactory, emit func(digest.Report), corrupt corruptFn) func() bodyResult {
	js := t.Job
	split := js.splits[t.InputIdx][t.Index]
	src := js.inputSrcs[t.InputIdx]
	cost := e.Cost
	o := e.obsTask
	return func() bodyResult {
		// Decode only this split's blocks, here on the worker pool —
		// block decode parallelizes across map tasks and the split's
		// lines never outlive the body. ReadRange is concurrency-safe.
		lines := src.ReadRange(split[0], split[1])
		out := runMapTask(js.Spec, t.InputIdx, lines, df, corrupt, o)
		if js.Spec.Audit && emit != nil {
			sum, n := auditMapSum(out)
			emit(auditReport(js.Spec, AuditTaskPoint, baseID(js.Spec.ID)+"/"+t.ID(), n, sum))
		}
		inBytes := linesBytes(lines)
		// Shuffle cost is charged on the post-combiner record count: the
		// combiner shrinks what crosses the wire and pays CombineRecordUs
		// per folded record instead. Map-only jobs write recordsOut lines
		// and are charged the same rate for them.
		shuffleRecs := out.shuffleRecs
		if js.Spec.Reduce == nil {
			shuffleRecs = out.recordsOut
		}
		dur := cost.TaskStartupUs +
			cost.MapRecordUs*out.recordsIn +
			cost.DigestRecordUs*out.digested +
			cost.CombineRecordUs*out.combinedIn +
			cost.ShuffleRecordUs*shuffleRecs
		commit := func() {
			e.Metrics.MapTasks++
			e.Metrics.RecordsIn += out.recordsIn
			e.Metrics.HDFSBytesRead += inBytes
			e.Metrics.LocalBytesWritten += out.localBytes
			e.Metrics.DigestRecords += out.digested
			e.Metrics.ShuffleRecords += out.shuffleRecs
			e.Metrics.CombinedRecords += out.combinedIn
			ord := js.mapOrdinal[t.ID()]
			js.mapOutcomes[ord] = out
			js.mapsDone++
			if js.Spec.Reduce == nil {
				// Map-only job: task output is final.
				e.writeOutput(js, partFileName(MapTask, t.InputIdx, t.Index), out.outLines)
				e.Metrics.RecordsOut += out.recordsOut
			}
			if js.mapsDone == js.mapsTotal {
				e.mapsFinished(js)
			}
		}
		return bodyResult{dur: dur, commit: commit}
	}
}

// mapsFinished either completes a map-only job or enqueues reduces.
func (e *Engine) mapsFinished(js *JobState) {
	js.mapsDoneTime = e.now
	e.Trace.Record("stage", js.Spec.ID, "map", js.runnableTime, e.now,
		obs.AI("tasks", int64(js.mapsTotal)))
	if js.Spec.Reduce == nil {
		e.completeJob(js)
		return
	}
	js.redsTotal = js.Spec.NumReduces
	for r := 0; r < js.redsTotal; r++ {
		e.ready = append(e.ready, &Task{Job: js, Kind: ReduceTask, Index: r})
	}
	e.Board.JobStages(js.Spec.ID, -1, js.redsTotal)
	if e.obsReg != nil {
		js.obsRedDur = e.obsReg.With("job", baseID(js.Spec.ID), "stage", "reduce").
			Histogram("mapred.stage_task_duration_us", obs.DurationBucketsUs)
	}
	e.armTick()
}

// reduceBody returns the reduce task's data work as a closure safe to
// run off the simulation goroutine. Reduce tasks are only dispatched
// after every map of the job committed, so js.mapOutcomes is immutable
// while the body reads it (committed-task guards prevent late backup
// attempts from writing outcomes again).
func (e *Engine) reduceBody(t *Task, df digestFactory, emit func(digest.Report)) func() bodyResult {
	js := t.Job
	cost := e.Cost
	o := e.obsTask
	return func() bodyResult {
		// Each map outcome contributes its partition as one pre-sorted
		// run; the merge reads runs in place, so attempts (including
		// backups of the same task) share them without copying.
		runs := make([][]interRec, 0, len(js.mapOutcomes))
		var localBytes int64
		for _, out := range js.mapOutcomes {
			if out == nil || t.Index >= len(out.partitions) {
				continue
			}
			runs = append(runs, out.partitions[t.Index])
			for i := range out.partitions[t.Index] {
				localBytes += out.partitions[t.Index][i].bytes()
			}
		}
		out, err := runReduceTask(js.Spec.Reduce, runs, df, o)
		if err != nil {
			// Compiled specs cannot produce unknown reduce kinds; treat as a
			// job with no output rather than crash the simulation.
			out = &reduceOutcome{}
		}
		if js.Spec.Audit && emit != nil {
			sum, n := auditReduceSum(out)
			emit(auditReport(js.Spec, AuditTaskPoint, baseID(js.Spec.ID)+"/"+t.ID(), n, sum))
		}
		dur := cost.TaskStartupUs +
			cost.ReduceRecordUs*(out.recordsIn+out.recordsOut) +
			cost.ShuffleRecordUs*out.recordsIn +
			cost.DigestRecordUs*out.digested
		commit := func() {
			e.Metrics.ReduceTasks++
			e.Metrics.LocalBytesRead += localBytes
			e.Metrics.DigestRecords += out.digested
			e.Metrics.RecordsOut += out.recordsOut
			e.writeOutput(js, partFileName(ReduceTask, 0, t.Index), out.outLines)
			js.redsDone++
			if js.redsDone == js.redsTotal {
				e.completeJob(js)
			}
		}
		return bodyResult{dur: dur, commit: commit}
	}
}

// writeOutput persists task output and accounts the HDFS write. Under
// Spec.Audit or Spec.Ckpt the produced lines are retained per part
// (before the storage layer's write hook can transform them) for the
// job's as-produced output digest and checkpoint capture.
func (e *Engine) writeOutput(js *JobState, part string, lines []string) {
	if js.Spec.Audit || js.Spec.Ckpt {
		if js.auditParts == nil {
			js.auditParts = make(map[string][]string)
		}
		js.auditParts[part] = lines
	}
	path := joinPath(js.Spec.Output, part)
	e.FS.Append(path, lines...)
	e.Metrics.HDFSBytesWritten += linesBytes(lines)
}

// completeJob finishes a job and unblocks dependents.
func (e *Engine) completeJob(js *JobState) {
	js.Done = true
	js.DoneTime = e.now
	if js.Spec.Audit && e.DigestSink != nil {
		// Digest the job's output as produced, concatenated in sorted
		// part-name order — the order ReadTree serves it to consumers —
		// so the producer-side digest is directly comparable to any
		// consumer's AuditIOInPoint digest of the same tree.
		lines := js.ProducedLines()
		e.DigestSink(auditReport(js.Spec, AuditIOOutPoint, baseID(js.Spec.ID),
			int64(len(lines)), digest.OfLines(lines)))
	}
	if js.Spec.Ckpt && e.DigestSink != nil {
		// Checkpoint digest over the same as-produced stream: the
		// controller persists a replica's retained lines only under f+1
		// agreement on this digest, so checkpoint bytes are exactly the
		// verified bytes even when a storage write hook mangled the DFS
		// copy.
		lines := js.ProducedLines()
		e.DigestSink(auditReport(js.Spec, CkptPoint, baseID(js.Spec.ID),
			int64(len(lines)), digest.OfLines(lines)))
	}
	if js.Spec.Reduce != nil {
		e.Trace.Record("stage", js.Spec.ID, "reduce", js.mapsDoneTime, e.now,
			obs.AI("tasks", int64(js.redsTotal)))
	}
	e.Trace.Record("job", js.Spec.ID, "job", js.SubmitTime, e.now,
		obs.A("sid", js.Spec.SID))
	// Release any attempts still occupying slots (hung originals whose
	// work was rescued by a backup).
	for tid, rts := range js.running {
		for _, rt := range rts {
			rt.dead = true
			e.releaseSlot(rt.node)
		}
		delete(js.running, tid)
	}
	e.Metrics.JobsCompleted++
	e.Board.JobDone(js.Spec.ID, e.now)
	for _, dep := range js.dependents {
		dep.depsLeft--
		if dep.depsLeft == 0 {
			e.makeRunnable(dep)
		}
	}
	if e.OnJobDone != nil {
		e.OnJobDone(js)
	}
}

// KillJob aborts a job: running tasks are torn down (their slots free
// immediately, matching Hadoop's task kill), queued tasks are dropped,
// and its output so far is left in place for inspection.
func (e *Engine) KillJob(id string) {
	js := e.jobs[id]
	if js == nil || js.Done || js.Killed {
		return
	}
	js.Killed = true
	for tid, rts := range js.running {
		for _, rt := range rts {
			rt.dead = true
			e.releaseSlot(rt.node)
		}
		delete(js.running, tid)
	}
	var keep []*Task
	for _, t := range e.ready {
		if t.Job != js {
			keep = append(keep, t)
		}
	}
	e.ready = keep
	e.Board.JobKilled(id, e.now)
	e.armTick()
}

// releaseSlot returns one task slot to a node — unless the node crashed,
// in which case its capacity vanished with it and RejoinNode restores the
// full complement. Every teardown path that pairs with a startTask slot
// claim must go through here so crash-stop cannot mint phantom slots.
func (e *Engine) releaseSlot(n cluster.NodeID) {
	if !e.dead[n] {
		e.freeSlots[n]++
	}
}

// CrashNode fail-stops a node at the current virtual time: its slots
// vanish, its replica bindings are forgotten, and every attempt it was
// running dies. A dead attempt's task is requeued when no other live
// attempt exists and its result has not committed, so surviving nodes
// (or the node itself after RejoinNode) can pick the work back up — the
// task-level recovery Hadoop performs below the verifier's timeout.
// Crashing an unknown or already-dead node is a no-op. It reports
// whether the node was alive.
func (e *Engine) CrashNode(id cluster.NodeID) bool {
	if e.dead[id] {
		return false
	}
	known := false
	for _, n := range e.Cluster.Nodes() {
		if n.ID == id {
			known = true
			break
		}
	}
	if !known {
		return false
	}
	e.dead[id] = true
	e.freeSlots[id] = 0
	delete(e.sidBinding, id)
	e.Trace.Instant("fault", string(id), "crash", e.now)
	// jobOrder iteration keeps the requeue order deterministic.
	for _, jid := range e.jobOrder {
		js := e.jobs[jid]
		if js == nil || js.Done || js.Killed {
			continue
		}
		tids := make([]string, 0, len(js.running))
		for tid := range js.running {
			tids = append(tids, tid)
		}
		sort.Strings(tids)
		for _, tid := range tids {
			rts := js.running[tid]
			survivors := rts[:0]
			lost := false
			for _, rt := range rts {
				if rt.node == id {
					rt.dead = true
					lost = true
				} else {
					survivors = append(survivors, rt)
				}
			}
			js.running[tid] = survivors
			if !lost {
				continue
			}
			// Any loss re-opens speculation for this task: if the crash
			// took the backup while a hung or slow original survives, the
			// stale speculated flag would otherwise block every future
			// sweep from launching a replacement backup.
			delete(js.speculated, tid)
			if len(survivors) == 0 && !js.committed[tid] {
				// No live attempt remains: put the task back on the ready
				// queue and let speculation treat the rerun as a fresh
				// original. All attempts of a tid share one Task.
				delete(js.running, tid)
				e.ready = append(e.ready, rts[0].task)
			}
		}
	}
	e.armTick()
	// Wake the sweep: with the speculated flags cleared above, a
	// surviving straggler may need a fresh backup, and no commit event
	// is guaranteed to re-arm it.
	e.armSpec()
	return true
}

// RejoinNode brings a crashed node back with its full slot complement
// (and no memory of prior replica bindings — the crash cleared them, so
// the scheduler may bind it to any replica afresh). Rejoining a live or
// unknown node is a no-op. It reports whether a rejoin happened.
func (e *Engine) RejoinNode(id cluster.NodeID) bool {
	if !e.dead[id] {
		return false
	}
	delete(e.dead, id)
	for _, n := range e.Cluster.Nodes() {
		if n.ID == id {
			e.freeSlots[id] = n.Slots
			break
		}
	}
	e.Trace.Instant("fault", string(id), "rejoin", e.now)
	e.armTick()
	return true
}

// NodeDead reports whether id is currently crash-stopped.
func (e *Engine) NodeDead(id cluster.NodeID) bool { return e.dead[id] }

// Run processes events until the queue drains. Jobs hung on omission
// faults leave the queue empty with jobs incomplete — callers arm
// timeouts via After to regain control (the verifier does, §4.2 step 6).
func (e *Engine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// FreeSlotsTotal sums currently free task slots across the cluster; when
// the engine is idle it must equal the cluster's total capacity (an
// invariant the tests check under faults, kills and speculation).
func (e *Engine) FreeSlotsTotal() int {
	total := 0
	for _, n := range e.Cluster.Nodes() {
		total += e.freeSlots[n.ID]
	}
	return total
}

// Idle reports whether no job is runnable, running, or pending.
func (e *Engine) Idle() bool {
	for _, js := range e.jobs {
		if !js.Done && !js.Killed {
			return false
		}
	}
	return true
}

// JobCount returns how many submitted jobs the engine still tracks;
// lifecycle tests pin it to prove ForgetSID bounds engine state across
// repeated controller runs.
func (e *Engine) JobCount() int { return len(e.jobs) }

// baseID returns the job's compile-time base ID: a controller-rewritten
// spec ID has the form "<prefix>/<base>" where base is stable across
// replicas and attempts. An ID with no '/' is its own base.
func baseID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// auditReport builds a one-shot audit digest report for a job's stream.
func auditReport(spec *JobSpec, point int, task string, records int64, sum digest.Sum) digest.Report {
	return digest.Report{
		Key:     digest.Key{SID: spec.SID, Point: point, Task: task},
		Replica: spec.Replica,
		Final:   true,
		Records: records,
		Sum:     sum,
	}
}

// TaskIDs lists the job's task identities in deterministic order: map
// tasks by (input, split), then reduce tasks by partition. Valid once
// the job is runnable (splits computed); for a Done job it covers every
// task that committed.
func (j *JobState) TaskIDs() []string {
	out := make([]string, 0, j.mapsTotal+j.redsTotal)
	for i := range j.splits {
		for s := range j.splits[i] {
			out = append(out, (&Task{Kind: MapTask, InputIdx: i, Index: s}).ID())
		}
	}
	for r := 0; r < j.redsTotal; r++ {
		out = append(out, (&Task{Kind: ReduceTask, Index: r}).ID())
	}
	return out
}

// taskByID reconstructs a Task of js from its stable identity, checking
// the identity names real work within the job's computed splits and
// partitions.
func (e *Engine) taskByID(js *JobState, tid string) (*Task, error) {
	var inputIdx, index int
	if n, err := fmt.Sscanf(tid, "m%d-%03d", &inputIdx, &index); n == 2 && err == nil {
		if inputIdx < 0 || inputIdx >= len(js.splits) || index < 0 || index >= len(js.splits[inputIdx]) {
			return nil, fmt.Errorf("mapred: job %s has no map task %q", js.Spec.ID, tid)
		}
		return &Task{Job: js, Kind: MapTask, InputIdx: inputIdx, Index: index}, nil
	}
	if n, err := fmt.Sscanf(tid, "r%03d", &index); n == 1 && err == nil {
		if index < 0 || index >= js.redsTotal {
			return nil, fmt.Errorf("mapred: job %s has no reduce task %q", js.Spec.ID, tid)
		}
		return &Task{Job: js, Kind: ReduceTask, Index: index}, nil
	}
	return nil, fmt.Errorf("mapred: bad task id %q", tid)
}

// Requiz re-executes one committed task of a completed job on the
// trusted tier — the quiz step of the quiz/deferred verification
// policies. The task body runs honestly (no node adversary, no chaos
// hook) over the same retained inputs the primary attempt consumed (the
// split's range of the job's retained input reader for a map task — the
// reader snapshots the input at runnable time, so the quiz re-reads the
// exact records the primary saw — the primary's committed map
// outcomes for a reduce task), computing the same in-chain
// verification-point digests plus the AuditTaskPoint output digest, all
// tagged with quizReplica. The re-execution holds no cluster slot: the
// trusted tier is modeled as parallel capacity, but its CPU is charged
// to Metrics.CPUTimeUs (the ε of "1+ε cost" verification) and its
// digests replay to sink after the body's virtual duration elapses, so
// verification latency is honest. The task's output is discarded —
// quizzes verify, they never publish.
func (e *Engine) Requiz(jobID, taskID string, quizReplica int, sink func(digest.Report), done func()) error {
	js := e.jobs[jobID]
	if js == nil {
		return fmt.Errorf("mapred: requiz of unknown job %q", jobID)
	}
	if !js.Done {
		return fmt.Errorf("mapred: requiz of incomplete job %q", jobID)
	}
	t, err := e.taskByID(js, taskID)
	if err != nil {
		return err
	}
	buf := &digest.Buffer{}
	chunk := e.DigestChunk
	df := func(point int) *digest.Writer {
		key := digest.Key{SID: js.Spec.SID, Point: point, Task: t.ID()}
		w := digest.NewWriter(key, quizReplica, chunk, buf.Add)
		w.Obs = e.obsDigestRecs
		return w
	}
	// Audit-task reports built from the job spec carry the primary's
	// replica index; restamp them so quiz evidence never overwrites the
	// primary's entries in the verifier's store.
	quizAdd := func(r digest.Report) {
		r.Replica = quizReplica
		buf.Add(r)
	}
	var body func() bodyResult
	if t.Kind == MapTask {
		body = e.mapBody(t, df, quizAdd, nil)
	} else {
		body = e.reduceBody(t, df, quizAdd)
	}
	res := pool.Go(e.bodyPool(), body).Wait()
	e.Metrics.CPUTimeUs += res.dur
	e.obsCPUCommitted.Add(res.dur)
	e.Ledger.Quiz(js.Spec.SID, res.dur)
	e.QuizTasks++
	e.Trace.Instant("quiz", "trusted", jobID+"/"+taskID, e.now)
	e.After(res.dur, func() {
		// res.commit is deliberately dropped: the primary already
		// committed this task's effects.
		buf.Replay(sink)
		if done != nil {
			done()
		}
	})
	return nil
}

// SIDForgetter is implemented by schedulers that keep per-sub-graph
// affinity state; Engine.ForgetSID forwards to it so attempt teardown
// prunes the whole stack.
type SIDForgetter interface {
	ForgetSID(sid string)
}

// ForgetSID drops every trace of a sub-graph attempt from the engine:
// its jobs, output registrations, queued tasks, and per-node replica
// bindings, plus the scheduler's affinity state when the scheduler
// implements SIDForgetter. The controller calls it for superseded
// attempts once their replacement verified and for all attempts at
// end-of-run teardown, so engine state stays bounded across repeated
// runs. Callers must not forget a sid that may still receive events
// (live attempts, or completed attempts a pending quiz still reads).
func (e *Engine) ForgetSID(sid string) {
	if sid == "" {
		return
	}
	for n, m := range e.sidBinding {
		delete(m, sid)
		if len(m) == 0 {
			delete(e.sidBinding, n)
		}
	}
	keepOrder := e.jobOrder[:0]
	for _, id := range e.jobOrder {
		js := e.jobs[id]
		if js != nil && js.Spec.SID == sid {
			delete(e.jobs, id)
			if e.byOutput[js.Spec.Output] == js {
				delete(e.byOutput, js.Spec.Output)
			}
			continue
		}
		keepOrder = append(keepOrder, id)
	}
	e.jobOrder = keepOrder
	keepReady := e.ready[:0]
	for _, t := range e.ready {
		if t.Job.Spec.SID != sid {
			keepReady = append(keepReady, t)
		}
	}
	e.ready = keepReady
	if f, ok := e.Sched.(SIDForgetter); ok {
		f.ForgetSID(sid)
	}
	e.Ledger.Fold(sid)
}
