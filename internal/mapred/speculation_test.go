package mapred

import (
	"fmt"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/pig"
)

// specFixture builds an engine over enough data for multiple map tasks.
func specFixture(t *testing.T, nodes, slots int, speculation bool) (*Engine, []*JobSpec) {
	t.Helper()
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ { // 3 map splits
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	p, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(nodes, slots), nil, DefaultCostModel())
	eng.Speculation = speculation
	return eng, p
}

func compileHelper(src string, opts CompileOptions) ([]*JobSpec, error) {
	pl, err := parseHelper(src)
	if err != nil {
		return nil, err
	}
	return Compile(pl, opts)
}

func TestSpeculationRescuesOmission(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, true)
	// One omission node: any task landing there hangs; with speculation
	// a backup on another node completes the job anyway.
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if !js.Done {
		t.Fatal("speculation failed to rescue the job from a hung task")
	}
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Error("no backup tasks counted")
	}
}

func TestNoSpeculationLeavesJobHung(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, false)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if js.Done {
		t.Fatal("without speculation a hung task must stall the job")
	}
}

func TestSlowFaultStretchesLatency(t *testing.T) {
	run := func(slow bool) int64 {
		eng, jobs := specFixture(t, 4, 2, false)
		if slow {
			for _, n := range eng.Cluster.Nodes() {
				n.Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
				n.Adversary.SlowFactor = 5
			}
		}
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	fast, stretched := run(false), run(true)
	if stretched < 3*fast {
		t.Errorf("5x stragglers everywhere should stretch latency: %d vs %d", stretched, fast)
	}
}

func TestSlowFaultOutputUnchanged(t *testing.T) {
	honest, honestJobs := specFixture(t, 4, 2, false)
	if _, err := honest.Submit(honestJobs[0]); err != nil {
		t.Fatal(err)
	}
	honest.Run()
	want, err := honest.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}

	slowEng, slowJobs := specFixture(t, 4, 2, false)
	slowEng.Cluster.Nodes()[0].Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if _, err := slowEng.Submit(slowJobs[0]); err != nil {
		t.Fatal(err)
	}
	slowEng.Run()
	got, err := slowEng.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d differs: %q vs %q (stragglers are benign)", i, got[i], want[i])
		}
	}
}

func TestSpeculationAgainstStraggler(t *testing.T) {
	// A single straggler node: with speculation the job finishes much
	// closer to the honest latency because the backup overtakes.
	run := func(speculation bool) int64 {
		eng, jobs := specFixture(t, 6, 2, speculation)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("speculation should beat a 20x straggler: with=%d without=%d", with, without)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		eng, jobs := specFixture(t, 6, 2, true)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, _ := eng.Submit(jobs[0])
		eng.Run()
		return js.Latency(), eng.Metrics.SpeculativeTasks
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Errorf("speculation nondeterministic: (%d,%d) vs (%d,%d)", l1, s1, l2, s2)
	}
}

func TestAdversarySlowdownDefault(t *testing.T) {
	a := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if a.Slowdown() != 4 {
		t.Errorf("default slowdown = %v, want 4", a.Slowdown())
	}
	a.SlowFactor = 7
	if a.Slowdown() != 7 {
		t.Errorf("explicit slowdown = %v", a.Slowdown())
	}
	var nilAdv *cluster.Adversary
	if nilAdv.Slowdown() != 4 {
		t.Error("nil adversary slowdown should default")
	}
}

func parseHelper(src string) (*pig.Plan, error) { return pig.Parse(src) }

func TestBackupNeverSharesNodeWithLiveOriginal(t *testing.T) {
	// §4.2: a speculative backup defeats omission-fault recovery if it
	// lands on the node still running (or hanging) the original, so the
	// engine must never co-locate two live attempts of one task. Checked
	// continuously over a run with hung originals and backups in flight.
	eng, jobs := specFixture(t, 6, 2, true)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	var check func()
	check = func() {
		for tid, rts := range js.running {
			seen := map[cluster.NodeID]bool{}
			for _, rt := range rts {
				if rt.dead {
					continue
				}
				if seen[rt.node] {
					t.Errorf("task %s has two live attempts on %s", tid, rt.node)
				}
				seen[rt.node] = true
			}
		}
		if !js.Done && !js.Killed && eng.Now() < 600_000_000 {
			eng.After(500_000, check)
		}
	}
	eng.After(500_000, check)
	eng.Run()
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Skip("no backups launched in this layout")
	}
	if !js.Done {
		t.Fatal("backups on honest nodes should have rescued the job")
	}
}

func TestUnplaceableBackupDoesNotSpinEngine(t *testing.T) {
	// A single-node cluster with a sometimes-omission adversary: hung
	// tasks earn backups, but the only legal node is the one hanging the
	// original, so the backups can never be placed. The engine must go
	// quiescent (Run returns, job incomplete) instead of re-arming
	// heartbeats and speculation sweeps forever — before the fix this
	// test never returned.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(1, 2), nil, DefaultCostModel())
	eng.Speculation = true
	if err := eng.Cluster.SetAdversary("node-000", cluster.FaultOmission, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 || eng.Metrics.SpeculativeTasks == 0 {
		t.Fatalf("scenario lost its shape: hung=%d spec=%d",
			eng.Metrics.TasksHung, eng.Metrics.SpeculativeTasks)
	}
	if js.Done {
		t.Fatal("a hung task with no legal backup node cannot complete")
	}
	// The queued backups stay pending — never started, never placed on
	// the hanging node.
	for _, rdy := range eng.ready {
		for _, rt := range js.running[rdy.ID()] {
			if !rt.hung {
				t.Errorf("queued backup %s coexists with a live attempt", rdy.ID())
			}
		}
	}
}

func TestCommittedTaskLeavesReadyQueue(t *testing.T) {
	// A backup queued while the cluster is saturated may still be queued
	// when the original commits; the commit must purge it from the ready
	// queue. Before the fix the stale entry re-armed heartbeats forever
	// and Run never returned. Single node + mixed straggler forces the
	// shape: the backup is never placeable, and the slow original
	// eventually commits on its own.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(1, 2), nil, DefaultCostModel())
	eng.Speculation = true
	adv := cluster.NewAdversary(cluster.FaultSlow, 0.5, 2)
	adv.SlowFactor = 25
	eng.Cluster.Nodes()[0].Adversary = adv
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Fatalf("scenario lost its shape: no backup queued")
	}
	if !js.Done {
		t.Fatal("stragglers are benign; the job must complete")
	}
	if len(eng.ready) != 0 {
		t.Fatalf("%d committed task(s) left on the ready queue", len(eng.ready))
	}
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}

// pinSched wraps a scheduler and asserts two placement invariants at
// every pick: the node being offered work has a genuinely free slot,
// and a speculative backup is never handed to a node already hosting a
// live attempt of the same task (the straggler's — or hung original's —
// own node). These are the rules the specSweep re-launch path depends
// on; a regression here silently turns backups into no-ops.
type pinSched struct {
	t     *testing.T
	e     *Engine
	inner Scheduler
}

func (p *pinSched) Pick(node *cluster.Node, cands []*Task) *Task {
	if p.e.freeSlots[node.ID] <= 0 {
		p.t.Errorf("scheduler offered work to %s with %d free slots", node.ID, p.e.freeSlots[node.ID])
	}
	picked := p.inner.Pick(node, cands)
	if picked != nil {
		for _, rt := range picked.Job.running[picked.ID()] {
			if !rt.dead && rt.node == node.ID {
				p.t.Errorf("backup of %s placed on %s, which still hosts a live attempt", picked.ID(), node.ID)
			}
		}
	}
	return picked
}

func TestBackupRelaunchPlacementPins(t *testing.T) {
	// Two nodes, one of them hanging every task it touches: the hung
	// originals pin their slots, so for long stretches the honest node is
	// the only one with capacity — and each hung task's sole legal backup
	// target. Every placement decision of the run is audited by pinSched.
	eng, jobs := specFixture(t, 2, 2, true)
	eng.Sched = &pinSched{t: t, e: eng, inner: eng.Sched}
	if err := eng.Cluster.SetAdversary("node-000", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 || eng.Metrics.SpeculativeTasks == 0 {
		t.Fatalf("scenario lost its shape: hung=%d spec=%d",
			eng.Metrics.TasksHung, eng.Metrics.SpeculativeTasks)
	}
	if !js.Done {
		t.Fatal("backups on the honest node should have rescued the job")
	}
	// The hung node's claimed slots stay claimed; accounting never goes
	// negative and never exceeds capacity.
	for _, n := range eng.Cluster.Nodes() {
		if free := eng.freeSlots[n.ID]; free < 0 || free > n.Slots {
			t.Errorf("node %s free slots = %d of %d", n.ID, free, n.Slots)
		}
	}
}

func TestKillJobDiscardsInFlightBackups(t *testing.T) {
	// KillJob racing an in-flight speculative re-launch: the controller
	// kills a replica's jobs (verification completed elsewhere, or the
	// sub-graph was superseded) while a backup attempt is still running.
	// Neither the backup nor any other attempt of the killed job may
	// commit afterwards, and the ledger must charge the torn-down work as
	// lost — committed charges for the job's sid must not move.
	eng, jobs := specFixture(t, 6, 2, true)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	spec := jobs[0]
	spec.SID = "sid-kill"
	eng.Ledger = NewCostLedger()
	eng.Ledger.Launch(spec.SID, CostModeFull)
	js, err := eng.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var killedAt int64
	var committedAtKill int
	var committedUsAtKill int64
	var poll func()
	poll = func() {
		if js.Done || killedAt > 0 {
			return
		}
		// Kill the moment a backup attempt is live next to its original.
		inFlight := false
		for _, rts := range js.running {
			live := 0
			for _, rt := range rts {
				if !rt.dead {
					live++
				}
			}
			if live > 1 {
				inFlight = true
				break
			}
		}
		if inFlight {
			killedAt = eng.Now()
			committedAtKill = len(js.committed)
			b, _ := eng.Ledger.SIDBuckets(spec.SID)
			committedUsAtKill = b.CommittedUs
			eng.KillJob(spec.ID)
			return
		}
		eng.After(200_000, poll)
	}
	eng.After(200_000, poll)
	eng.Run()
	if killedAt == 0 {
		t.Skip("no backup was in flight in this layout")
	}
	if js.Done {
		t.Fatal("killed job reported Done")
	}
	if !js.Killed {
		t.Fatal("job not marked Killed")
	}
	if got := len(js.committed); got != committedAtKill {
		t.Errorf("%d task(s) committed after KillJob (had %d at kill)", got-committedAtKill, committedAtKill)
	}
	if len(js.running) != 0 {
		t.Errorf("%d task(s) still listed running after kill", len(js.running))
	}
	b, ok := eng.Ledger.SIDBuckets(spec.SID)
	if !ok {
		t.Fatal("sid vanished from ledger")
	}
	if b.CommittedUs != committedUsAtKill {
		t.Errorf("committed charges moved after kill: %d -> %d us", committedUsAtKill, b.CommittedUs)
	}
	if got, want := eng.Ledger.TotalUs(), eng.Metrics.CPUTimeUs; got != want {
		t.Errorf("ledger buckets sum to %dus, engine charged %dus", got, want)
	}
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}
