package digest

import (
	"testing"

	"clusterbft/internal/obs"
	"clusterbft/internal/tuple"
)

// TestWriterAddAllocs pins the per-record cost of folding a tuple into a
// verification digest: zero allocations once the writer's canonical
// buffer is warm. Every record of every verified stream passes through
// Add, so a regression here multiplies across whole jobs.
func TestWriterAddAllocs(t *testing.T) {
	w := NewWriter(Key{SID: "s", Point: 1, Task: "m0"}, 0, 0, func(Report) {})
	row := tuple.Tuple{tuple.Int(7), tuple.Str("some-payload-column"), tuple.Float(2.5)}
	w.Add(row) // warm the canonical buffer
	got := testing.AllocsPerRun(200, func() {
		w.Add(row)
	})
	if got != 0 {
		t.Errorf("Writer.Add allocs/record = %v, want 0", got)
	}
}

// TestWriterAddObsAllocs pins that the observability hook keeps Add
// allocation-free in both states: counter absent (nil, the default) and
// counter attached (an atomic add).
func TestWriterAddObsAllocs(t *testing.T) {
	row := tuple.Tuple{tuple.Int(7), tuple.Str("some-payload-column"), tuple.Float(2.5)}
	for _, withCounter := range []bool{false, true} {
		w := NewWriter(Key{SID: "s", Point: 1, Task: "m0"}, 0, 0, func(Report) {})
		if withCounter {
			w.Obs = obs.NewRegistry().Counter("digest.records")
		}
		w.Add(row) // warm the canonical buffer
		got := testing.AllocsPerRun(200, func() { w.Add(row) })
		if got != 0 {
			t.Errorf("Writer.Add allocs/record (counter=%v) = %v, want 0", withCounter, got)
		}
	}
}
