// Weather analysis with a fully BFT control tier: the paper's §6.4
// configuration. The average-temperature script runs with 3f+1 worker
// replicas and chunked digests (one digest every d records), while the
// request handler itself is replicated over 3f+1 PBFT replicas that
// order every batch of digest verdicts — no implicit trust anywhere.
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"

	"clusterbft/internal/bft"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

// verdictSM is the replicated request-handler state: an ordered log of
// digest-verdict batches.
type verdictSM struct{ applied int }

func (s *verdictSM) Apply(op []byte) []byte {
	s.applied++
	return []byte(fmt.Sprintf("committed %s as #%d", op, s.applied))
}

func main() {
	const (
		f = 2
		d = 500 // records per digest: approximation accuracy knob
	)

	fs := dfs.New()
	fs.Append(workload.WeatherPath, workload.Weather(40_000, 200, 11)...)
	workers := cluster.New(32, 3)

	cfg := core.DefaultConfig()
	cfg.F = f
	cfg.R = 3*f + 1
	cfg.DigestChunk = d
	susp := core.NewSuspicionTable(0)
	eng := mapred.NewEngine(fs, workers, core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := core.NewController(eng, cfg, susp, nil)

	res, err := ctrl.Run(workload.WeatherScript)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data plane: verified=%v latency=%.2fs replicas=%d digests=%d (d=%d records)\n",
		res.Verified, float64(res.LatencyUs)/1e6, cfg.R, res.DigestReports, d)

	// Control tier: 3f+1 request-handler replicas order the verdicts.
	group := bft.NewGroup(f, func(int) bft.StateMachine { return &verdictSM{} })
	const batch = 20
	batches := int((res.DigestReports + batch - 1) / batch)
	start := group.Net.Now()
	for i := 0; i < batches; i++ {
		if _, _, err := group.Invoke(fmt.Appendf(nil, "verdict-batch-%03d", i)); err != nil {
			log.Fatal(err)
		}
	}
	controlUs := group.Net.Now() - start
	fmt.Printf("control tier: %d PBFT replicas ordered %d verdict batches in %.3fs (virtual)\n",
		3*f+1, batches, float64(controlUs)/1e6)
	fmt.Printf("end-to-end assured latency: %.2fs\n",
		float64(res.LatencyUs+controlUs)/1e6)

	hist, err := fs.ReadTree(res.Outputs["out/weather/histogram"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage-temperature histogram (%d buckets), first rows:\n", len(hist))
	for i, l := range hist {
		if i >= 8 {
			break
		}
		fmt.Println(" ", l)
	}
}
