package core

import (
	"testing"

	"clusterbft/internal/cluster"
)

func ids(ns ...string) []cluster.NodeID {
	out := make([]cluster.NodeID, len(ns))
	for i, n := range ns {
		out[i] = cluster.NodeID(n)
	}
	return out
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		s    float64
		want Category
	}{
		{0, None},
		{-1, None},
		{0.1, Low},
		{0.33, Low},
		{0.34, Med},
		{0.5, Med},
		{0.659, Med},
		{0.66, High},
		{1, High},
	}
	for _, c := range cases {
		if got := Categorize(c.s); got != c.want {
			t.Errorf("Categorize(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{None: "none", Low: "low", Med: "med", High: "high", Category(9): "unknown"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestSuspicionLevels(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordJob(ids("a", "b"))
	st.RecordJob(ids("a", "b"))
	st.RecordJob(ids("a"))
	st.RecordFault(ids("a"))
	if got := st.Level("a"); got < 0.32 || got > 0.34 {
		t.Errorf("Level(a) = %v, want 1/3", got)
	}
	if st.Level("b") != 0 {
		t.Errorf("Level(b) = %v", st.Level("b"))
	}
	if st.Level("unknown") != 0 {
		t.Error("unknown node should be 0")
	}
}

func TestSuspicionFaultBeforeJob(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordFault(ids("x"))
	if st.Level("x") != 1 {
		t.Errorf("fault with no completed jobs should be 1, got %v", st.Level("x"))
	}
}

func TestSuspicionCapped(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordJob(ids("a"))
	st.RecordFault(ids("a"))
	st.RecordFault(ids("a"))
	if st.Level("a") != 1 {
		t.Errorf("Level should cap at 1, got %v", st.Level("a"))
	}
}

func TestExclusionThreshold(t *testing.T) {
	st := NewSuspicionTable(0.5)
	st.RecordJob(ids("a", "b"))
	st.RecordFault(ids("a"))
	if !st.Excluded("a") {
		t.Error("node a should fall off the inclusion list (s=1 > 0.5)")
	}
	if st.Excluded("b") {
		t.Error("node b should remain included")
	}
	st.Reinstate("a")
	if st.Excluded("a") || st.Level("a") != 0 {
		t.Error("reinstate should clear exclusion and history")
	}
}

func TestExclusionDisabled(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordFault(ids("a"))
	if st.Excluded("a") {
		t.Error("threshold 0 must not evict")
	}
}

func TestHistogram(t *testing.T) {
	st := NewSuspicionTable(0)
	for i := 0; i < 4; i++ {
		st.RecordJob(ids("a", "b", "c"))
	}
	st.RecordFault(ids("a")) // 1/4 = 0.25 -> Low
	st.RecordFault(ids("b"))
	st.RecordFault(ids("b"))
	st.RecordFault(ids("b")) // 3/4 = 0.75 -> High
	h := st.Histogram()
	if h[Low] != 1 || h[High] != 1 || h[None] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSuspectsOrdered(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordJob(ids("a", "b", "c"))
	st.RecordJob(ids("a"))
	st.RecordFault(ids("a", "b"))
	got := st.Suspects()
	// b: 1/1 = 1.0; a: 1/2 = 0.5.
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Suspects = %v", got)
	}
}

func TestCategoryOf(t *testing.T) {
	st := NewSuspicionTable(0)
	st.RecordJob(ids("a"))
	st.RecordFault(ids("a"))
	if st.CategoryOf("a") != High {
		t.Errorf("CategoryOf(a) = %v", st.CategoryOf("a"))
	}
}
