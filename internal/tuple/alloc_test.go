package tuple

import "testing"

// Allocation regressions in the codec multiply across every record the
// engine touches, so the per-record costs are pinned here with
// testing.AllocsPerRun. The budgets are exact: a fix that adds an
// allocation must consciously raise them.

func TestDecodeLinePlainAllocs(t *testing.T) {
	schema := NewSchema("user", "follower", "note")
	line := "1234\t5678\tplain-text-field"
	got := testing.AllocsPerRun(200, func() {
		_ = DecodeLine(line, schema)
	})
	// Exactly the Tuple backing array: escape-free fields slice the line.
	if got != 1 {
		t.Errorf("DecodeLine (escape-free) allocs/record = %v, want 1", got)
	}
}

func TestDecoderEscapedAllocs(t *testing.T) {
	schema := NewSchema("user", "note", "more")
	line := "1234\tesc\\taped\\nvalue\tand\\\\more"
	var d Decoder
	d.DecodeLine(line, schema) // warm the scratch buffers
	got := testing.AllocsPerRun(200, func() {
		_ = d.DecodeLine(line, schema)
	})
	// Exactly the shared backing string for the unescaped fields plus the
	// Tuple backing array — the per-field strings.Builder churn of the old
	// slow path is gone.
	if got != 2 {
		t.Errorf("Decoder.DecodeLine (escaped, warm) allocs/record = %v, want 2", got)
	}
}

func TestDecoderMatchesDecodeLine(t *testing.T) {
	schema := NewSchema("a", "b")
	lines := []string{
		"",
		"plain\tfields\there",
		"esc\\taped\t\\n\\\\",
		"\\t\t\\t",
		"trailing\\",
		"lone\\q\tescape",
	}
	var d Decoder
	for _, line := range lines {
		want := DecodeLine(line, schema)
		got := d.DecodeLine(line, schema)
		if len(got) != len(want) {
			t.Fatalf("%q: Decoder gave %d cols, package func %d", line, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q col %d: Decoder %v, package func %v", line, i, got[i], want[i])
			}
		}
	}
}

func TestAppendCanonicalAllocs(t *testing.T) {
	row := Tuple{Int(42), Str("payload-column"), Float(1.5), Null()}
	buf := make([]byte, 0, 128)
	got := testing.AllocsPerRun(200, func() {
		buf = AppendCanonical(buf[:0], row)
	})
	if got != 0 {
		t.Errorf("AppendCanonical (warm buffer) allocs/record = %v, want 0", got)
	}
}

func TestEncodedLenAllocs(t *testing.T) {
	row := Tuple{Int(-9000), Str("a\tb"), Float(2.25)}
	got := testing.AllocsPerRun(200, func() {
		_ = EncodedLen(row)
	})
	if got != 0 {
		t.Errorf("EncodedLen allocs/record = %v, want 0", got)
	}
}

func TestEncodedLenMatchesEncodeLine(t *testing.T) {
	rows := []Tuple{
		{},
		{Null()},
		{Int(0)},
		{Int(-9223372036854775808), Int(9223372036854775807)},
		{Float(0.1), Float(-2.5e300), Float(3)},
		{Str(""), Str("plain"), Str("tab\tnl\nbs\\")},
		{Int(7), Str("x"), Null(), Float(1.25)},
	}
	for _, r := range rows {
		if got, want := EncodedLen(r), len(EncodeLine(r)); got != want {
			t.Errorf("EncodedLen(%v) = %d, len(EncodeLine) = %d", r, got, want)
		}
	}
}
