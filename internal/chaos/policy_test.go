package chaos

import (
	"testing"

	"clusterbft/internal/core"
)

// TestChaosCampaignPolicies reruns the fault-injection campaign with the
// controllers under quiz and deferred verification: every invariant must
// still hold — in particular I4, so every commission fault the cheap
// policies detect (quiz mismatch, storage-boundary audit, escalated
// full-r agreement) is attributed to an injected fault — and the report
// must stay a pure function of the seeds.
func TestChaosCampaignPolicies(t *testing.T) {
	for _, p := range []core.Policy{core.PolicyQuiz, core.PolicyDeferred} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultCampaign()
			cfg.Schedules = 60
			if testing.Short() {
				cfg.Schedules = 20
			}
			cfg.Core.VerifyPolicy = p
			// Sample every task so a corrupted primary is always quizzed.
			cfg.Core.QuizFraction = 1
			rep, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations() {
				t.Errorf("invariant violation: %s", v)
			}

			// The cheap policy must still exercise detection and recovery:
			// schedules with faults escalate, and runs end verified.
			var recovered, verified int
			for _, sr := range rep.Results {
				recovered += sr.Recoveries["escalate"] + sr.Recoveries["retry"] + sr.Recoveries["restart"]
				if sr.Verified {
					verified++
				}
			}
			if recovered == 0 {
				t.Error("no schedule escalated or retried under the cheap policy")
			}
			if verified == 0 {
				t.Error("no schedule recovered to verified")
			}

			again, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Render() != again.Render() {
				t.Fatal("policy campaign is not deterministic")
			}
		})
	}
}
