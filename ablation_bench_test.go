// Ablation benchmarks for the design choices DESIGN.md calls out:
// approximate offline comparison vs conservative verification, the
// overlap-maximizing scheduler vs packing, §3.3 probe jobs, marker-placed
// vs naive verification points, and speculative execution against
// stragglers. Each bench reports the measured effect as custom metrics.
package clusterbft_test

import (
	"testing"

	clusterbft "clusterbft"
	"clusterbft/internal/faultsim"
	"clusterbft/internal/workload"
)

// BenchmarkAblationOfflineComparison measures the latency advantage of
// starting downstream sub-graphs on the first completed replica before
// verification finishes (§3.3 "approximate, offline redundancy").
func BenchmarkAblationOfflineComparison(b *testing.B) {
	data := workload.Weather(20_000, 100, 3)
	run := func(offline bool) int64 {
		cfg := clusterbft.DefaultConfig()
		cfg.Offline = offline
		// r = f+1 = 2 replicas on two nodes, one a straggler:
		// verification must wait for the slow replica, but offline mode
		// starts the downstream sub-graph on the fast replica's output
		// immediately.
		cfg.R = 2
		sys := clusterbft.New(2, 3, cfg)
		sys.LoadData(workload.WeatherPath, data...)
		if err := sys.InjectFault("node-001", clusterbft.FaultSlow, 1.0, 4); err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(workload.WeatherScript)
		if err != nil {
			b.Fatal(err)
		}
		return res.LatencyUs
	}
	for i := 0; i < b.N; i++ {
		off := run(true)
		cons := run(false)
		if i == 0 {
			b.ReportMetric(float64(cons)/float64(off), "conservative/offline-latency")
			if off > cons {
				b.Errorf("offline (%d) slower than conservative (%d)", off, cons)
			}
		}
	}
}

// BenchmarkAblationOverlapScheduling compares the overlap-maximizing
// allocation against packing in time-to-exact-isolation (§4.2's
// "intersections" scheduling strategy).
func BenchmarkAblationOverlapScheduling(b *testing.B) {
	measure := func(alloc faultsim.Allocation) float64 {
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			r := faultsim.Run(faultsim.Config{
				CommissionProb: 0.5, Seed: 900 + seed*31, MaxTime: 600, Allocation: alloc,
			})
			if r.TimeToExactIsolation >= 0 {
				total += r.TimeToExactIsolation
			} else {
				total += 600
			}
		}
		return float64(total) / 5
	}
	for i := 0; i < b.N; i++ {
		rotate := measure(faultsim.AllocRotate)
		pack := measure(faultsim.AllocPack)
		if i == 0 {
			b.ReportMetric(rotate, "rotate-isolation-ticks")
			b.ReportMetric(pack, "pack-isolation-ticks")
		}
	}
}

// BenchmarkAblationProbeJobs measures §3.3's dummy probe jobs: deliberate
// overlay of suspicious sets versus waiting for accidental overlap.
func BenchmarkAblationProbeJobs(b *testing.B) {
	measure := func(probes bool) float64 {
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			r := faultsim.Run(faultsim.Config{
				CommissionProb: 0.35, Seed: 700 + seed*19, MaxTime: 500, Probes: probes,
			})
			if r.TimeToExactIsolation >= 0 {
				total += r.TimeToExactIsolation
			} else {
				total += 500
			}
		}
		return float64(total) / 5
	}
	for i := 0; i < b.N; i++ {
		with := measure(true)
		without := measure(false)
		if i == 0 {
			b.ReportMetric(with, "probed-isolation-ticks")
			b.ReportMetric(without, "unprobed-isolation-ticks")
		}
	}
}

// BenchmarkAblationMarkerPlacement compares the Fig 3 marker function
// against naive placement (digest at every candidate vertex) for honest
// runs: the marker buys most of the detection power at a fraction of the
// digest cost.
func BenchmarkAblationMarkerPlacement(b *testing.B) {
	data := workload.Twitter(20_000, 800, 5)
	run := func(points int) (int64, int64) {
		cfg := clusterbft.DefaultConfig()
		cfg.Points = points
		sys := clusterbft.New(16, 3, cfg)
		sys.LoadData(workload.TwitterPath, data...)
		res, err := sys.Run(workload.FollowerScript)
		if err != nil {
			b.Fatal(err)
		}
		return res.LatencyUs, res.Metrics.DigestRecords
	}
	for i := 0; i < b.N; i++ {
		markedLat, markedDig := run(2)
		allLat, allDig := run(-1)
		if i == 0 {
			b.ReportMetric(float64(allLat)/float64(markedLat), "all/marked-latency")
			b.ReportMetric(float64(allDig)/float64(max64(markedDig, 1)), "all/marked-digest-records")
		}
	}
}

// BenchmarkAblationSpeculation measures speculative execution against a
// straggler node (an extension beyond the paper; Hadoop has it, the
// virtual-time engine models it).
func BenchmarkAblationSpeculation(b *testing.B) {
	data := workload.Twitter(30_000, 800, 9) // 3 map splits
	run := func(spec bool) int64 {
		// Unreplicated run whose map tasks spread across nodes: the
		// tasks landing on the 20x straggler become within-job outliers
		// that speculation detects and re-executes elsewhere.
		sys := clusterbft.New(6, 2, clusterbft.DefaultConfig())
		sys.LoadData(workload.TwitterPath, data...)
		sys.SetSpeculation(spec)
		if err := sys.InjectFaultWithFactor("node-001", clusterbft.FaultSlow, 1.0, 4, 20); err != nil {
			b.Fatal(err)
		}
		lat, err := sys.RunPlain(workload.FollowerScript)
		if err != nil {
			b.Fatal(err)
		}
		return lat
	}
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		if i == 0 {
			b.ReportMetric(float64(without)/float64(with), "nospec/spec-latency")
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
