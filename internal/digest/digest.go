// Package digest implements ClusterBFT's approximate output comparison
// (paper §3.3, §4.1): instead of shipping whole replica outputs to the
// trusted tier, each task computes streaming SHA-256 digests of the
// canonical bytes of the tuples flowing through a verification point. A
// digest is emitted every d records ("approximation accuracy", §6.4) plus
// one final digest at stream close; the verifier then matches f+1 equal
// digests per (point, task, chunk) across replicas.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"

	"clusterbft/internal/obs"
	"clusterbft/internal/tuple"
)

// Sum is a SHA-256 digest value.
type Sum [sha256.Size]byte

// String renders the first 8 bytes in hex, enough for logs.
func (s Sum) String() string { return hex.EncodeToString(s[:8]) }

// Key identifies a digest position independent of which replica produced
// it: corresponding digests from different replicas share a Key and must
// match.
type Key struct {
	SID   string // sub-graph (job) identifier
	Point int    // verification point: logical-plan vertex ID
	Task  string // task identity, stable across replicas (e.g. "m003")
	Chunk int    // chunk index within the task's stream
}

// String renders the key as "sid/point/task#chunk".
func (k Key) String() string {
	return fmt.Sprintf("%s/p%d/%s#%d", k.SID, k.Point, k.Task, k.Chunk)
}

// Report is one digest sent from a worker to the trusted verifier.
type Report struct {
	Key     Key
	Replica int   // which replica of the job produced it
	Final   bool  // closing chunk of the stream
	Records int64 // records covered by this chunk
	Sum     Sum
}

// Writer computes chunked digests over a tuple stream. Not safe for
// concurrent use; each task owns its writers.
type Writer struct {
	key     Key
	replica int
	every   int // records per chunk; <= 0 means a single final digest
	emit    func(Report)

	// Obs, when set, counts every record folded into the stream. Nil (the
	// default) is free: the alloc tests pin Add at zero allocations with
	// and without a counter.
	Obs *obs.Counter

	h       hash.Hash
	buf     []byte
	inChunk int64
	chunk   int
	closed  bool
}

// NewWriter returns a Writer that digests the stream for one verification
// point of one task. every is the paper's d parameter: a digest is
// emitted after each `every` records (and a final one at Close); every <=
// 0 disables chunking so only the final digest is produced. emit must be
// non-nil.
func NewWriter(key Key, replica, every int, emit func(Report)) *Writer {
	return &Writer{
		key:     key,
		replica: replica,
		every:   every,
		emit:    emit,
		h:       sha256.New(),
		buf:     make([]byte, 0, 128),
	}
}

// Add folds one tuple's canonical bytes into the current chunk, emitting
// a Report when the chunk fills.
func (w *Writer) Add(t tuple.Tuple) {
	if w.closed {
		return
	}
	w.buf = tuple.AppendCanonical(w.buf[:0], t)
	w.h.Write(w.buf)
	w.inChunk++
	w.Obs.Inc()
	if w.every > 0 && w.inChunk >= int64(w.every) {
		w.flush(false)
	}
}

// Close emits the final digest covering any remaining records. The final
// digest is always emitted, even for an empty stream, so replicas that
// produce no output still report something comparable. Close is
// idempotent.
func (w *Writer) Close() {
	if w.closed {
		return
	}
	w.flush(true)
	w.closed = true
}

// Records returns the number of records folded into the current (open)
// chunk; used by tests.
func (w *Writer) Records() int64 { return w.inChunk }

func (w *Writer) flush(final bool) {
	r := Report{
		Key:     Key{SID: w.key.SID, Point: w.key.Point, Task: w.key.Task, Chunk: w.chunk},
		Replica: w.replica,
		Final:   final,
		Records: w.inChunk,
	}
	w.h.Sum(r.Sum[:0])
	w.emit(r)
	w.h.Reset()
	w.inChunk = 0
	w.chunk++
}

// Buffer is a Report sink that records reports in emission order so a
// task body computed off the simulation goroutine can hand its digests
// back for deterministic replay at commit time. The zero value is ready
// to use. A Buffer is owned by one task attempt: Add runs on the worker
// computing the body, Replay on the committing goroutine; the engine's
// future handoff sequences the two, so no locking is needed here.
type Buffer struct {
	reports []Report
}

// Add records one report. It is the emit callback wired into the
// attempt's writers.
func (b *Buffer) Add(r Report) { b.reports = append(b.reports, r) }

// Len returns the number of buffered reports.
func (b *Buffer) Len() int { return len(b.reports) }

// Reports returns the buffered reports in emission order. The slice is
// shared; callers must not mutate it.
func (b *Buffer) Reports() []Report { return b.reports }

// Replay feeds the buffered reports to sink in emission order — the
// same order a Writer emitting straight into the sink would have
// produced. A nil sink is a no-op (digests disabled).
func (b *Buffer) Replay(sink func(Report)) {
	if sink == nil {
		return
	}
	for _, r := range b.reports {
		sink(r)
	}
}

// Of computes the one-shot digest of a full tuple stream; used by tests
// and by offline re-verification.
func Of(tuples []tuple.Tuple) Sum {
	h := sha256.New()
	var buf []byte
	for _, t := range tuples {
		buf = tuple.AppendCanonical(buf[:0], t)
		h.Write(buf)
	}
	var s Sum
	h.Sum(s[:0])
	return s
}

// OfLines computes the one-shot digest of a stream of already-encoded
// records, one per line with a newline separator so record boundaries
// stay part of the digested bytes. The engine's audit digests (task
// outputs and storage-boundary streams for quiz/deferred verification)
// are built on it.
func OfLines(lines []string) Sum {
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	var s Sum
	h.Sum(s[:0])
	return s
}
