package pig

import (
	"strings"
	"testing"

	"clusterbft/internal/tuple"
)

// parseTestExpr parses a standalone expression via the parser internals.
func parseTestExpr(t *testing.T, src string) Expr {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &parser{toks: toks, plan: newPlan()}
	e, err := p.parseExpr()
	if err != nil {
		t.Fatalf("parseExpr(%q): %v", src, err)
	}
	return e
}

func evalOn(t *testing.T, src string, s *tuple.Schema, row tuple.Tuple) tuple.Value {
	t.Helper()
	e := parseTestExpr(t, src)
	if err := e.Bind(s); err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	return e.Eval(row)
}

var exprSchema = tuple.NewSchema("a", "b", "s")

func row(a, b int64, s string) tuple.Tuple {
	return tuple.Tuple{tuple.Int(a), tuple.Int(b), tuple.Str(s)}
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"a + b", 7},
		{"a - b", 3},
		{"a * b", 10},
		{"a / b", 2},
		{"a % b", 1},
		{"a + b * 2", 9},    // precedence
		{"(a + b) * 2", 14}, // parens
		{"-a + b", -3},      // unary minus
		{"a - -b", 7},       // double negative
	}
	for _, c := range cases {
		got := evalOn(t, c.src, exprSchema, row(5, 2, "x"))
		if got.Int() != c.want {
			t.Errorf("%q = %v, want %d", c.src, got, c.want)
		}
	}
}

func TestExprComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a == 5", true},
		{"a != 5", false},
		{"a < 6", true},
		{"a <= 5", true},
		{"a > 5", false},
		{"a >= 5", true},
		{"s == 'x'", true},
		{"s != ''", true},
	}
	for _, c := range cases {
		got := evalOn(t, c.src, exprSchema, row(5, 2, "x"))
		if got.Truthy() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprLogical(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a == 5 AND b == 2", true},
		{"a == 5 and b == 3", false},
		{"a == 9 OR b == 2", true},
		{"NOT (a == 5)", false},
		{"NOT a == 9 AND b == 2", true},
		{"a == 9 OR a == 5 AND b == 2", true}, // AND binds tighter
	}
	for _, c := range cases {
		got := evalOn(t, c.src, exprSchema, row(5, 2, "x"))
		if got.Truthy() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprScalarFunctions(t *testing.T) {
	s := tuple.NewSchema("a", "b", "s")
	r := tuple.Tuple{tuple.Int(-4), tuple.Float(3.9), tuple.Str("Hi")}
	cases := []struct {
		src  string
		want tuple.Value
	}{
		{"ABS(a)", tuple.Int(4)},
		{"TRUNC(b)", tuple.Int(3)},
		{"CONCAT(s, '!')", tuple.Str("Hi!")},
		{"SIZE(s)", tuple.Int(2)},
		{"UPPER(s)", tuple.Str("HI")},
		{"LOWER(s)", tuple.Str("hi")},
	}
	for _, c := range cases {
		e := parseTestExpr(t, c.src)
		if err := e.Bind(s); err != nil {
			t.Fatalf("Bind(%q): %v", c.src, err)
		}
		got := e.Eval(r)
		if !tuple.Equal(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprUnknownFunction(t *testing.T) {
	e := parseTestExpr(t, "NOPE(a)")
	if err := e.Bind(exprSchema); err == nil {
		t.Error("unknown function should fail Bind")
	}
}

func TestExprArityError(t *testing.T) {
	e := parseTestExpr(t, "CONCAT(a)")
	if err := e.Bind(exprSchema); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Errorf("arity check: %v", err)
	}
}

func TestColPositional(t *testing.T) {
	got := evalOn(t, "$1", exprSchema, row(5, 2, "x"))
	if got.Int() != 2 {
		t.Errorf("$1 = %v", got)
	}
	e := parseTestExpr(t, "$9")
	if err := e.Bind(exprSchema); err == nil {
		t.Error("out-of-range positional should fail Bind")
	}
}

func TestColUnknown(t *testing.T) {
	e := parseTestExpr(t, "zzz")
	if err := e.Bind(exprSchema); err == nil {
		t.Error("unknown column should fail Bind")
	}
}

func TestColSuffixMatch(t *testing.T) {
	s := tuple.NewSchema("A::user", "B::user", "A::id")
	// "id" matches only A::id.
	c := &Col{Name: "id"}
	if err := c.Bind(s); err != nil {
		t.Fatal(err)
	}
	if c.Index() != 2 {
		t.Errorf("suffix match index = %d", c.Index())
	}
	// "user" is ambiguous.
	amb := &Col{Name: "user"}
	if err := amb.Bind(s); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity: %v", err)
	}
	// Exact qualified reference works.
	q := &Col{Name: "B::user"}
	if err := q.Bind(s); err != nil || q.Index() != 1 {
		t.Errorf("qualified bind: %v idx=%d", err, q.Index())
	}
}

func TestColShortTupleYieldsNull(t *testing.T) {
	c := &Col{Name: "b"}
	if err := c.Bind(exprSchema); err != nil {
		t.Fatal(err)
	}
	if !c.Eval(tuple.Tuple{tuple.Int(1)}).IsNull() {
		t.Error("reference past tuple end should be null")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"a + b", "(a + b)"},
		{"NOT a", "not(a)"},
		{"'lit'", "'lit'"},
		{"3", "3"},
		{"CONCAT(a, b)", "CONCAT(a, b)"},
	}
	for _, c := range cases {
		if got := parseTestExpr(t, c.src).String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFloatLiteral(t *testing.T) {
	got := evalOn(t, "b + 0.5", exprSchema, row(0, 2, ""))
	if got.Kind() != tuple.KindFloat || got.Float() != 2.5 {
		t.Errorf("float literal eval = %v", got)
	}
}

func TestIsAggregateFunc(t *testing.T) {
	for _, name := range []string{"COUNT", "count", "Sum", "avg", "MIN", "max"} {
		if !IsAggregateFunc(name) {
			t.Errorf("%q should be aggregate", name)
		}
	}
	if IsAggregateFunc("concat") {
		t.Error("concat is not an aggregate")
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// Right side references an out-of-schema positional that would panic
	// if evaluated without binding; short circuit avoids evaluating it.
	s := tuple.NewSchema("a")
	e := &Binary{Op: "and", L: &Lit{V: tuple.Bool(false)}, R: &Col{Name: "a"}}
	if err := e.Bind(s); err != nil {
		t.Fatal(err)
	}
	if e.Eval(tuple.Tuple{tuple.Int(1)}).Truthy() {
		t.Error("false AND x must be false")
	}
	or := &Binary{Op: "or", L: &Lit{V: tuple.Bool(true)}, R: &Col{Name: "a"}}
	if err := or.Bind(s); err != nil {
		t.Fatal(err)
	}
	if !or.Eval(tuple.Tuple{tuple.Int(0)}).Truthy() {
		t.Error("true OR x must be true")
	}
}
