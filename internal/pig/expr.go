package pig

import (
	"fmt"
	"strconv"
	"strings"

	"clusterbft/internal/tuple"
)

// Expr is a scalar expression over one tuple. Expressions are built by
// the parser with unresolved column names; Bind resolves names to column
// indices against a schema before any Eval call.
type Expr interface {
	// Bind resolves column references against the schema.
	Bind(s *tuple.Schema) error
	// Eval computes the expression over one tuple. Eval must only be
	// called after a successful Bind.
	Eval(t tuple.Tuple) tuple.Value
	// String renders the expression in source-like form.
	String() string
}

// Col references a column by name ("user", "A::user") or by position
// ("$0"). Bind resolves it to an index.
type Col struct {
	Name string
	idx  int
}

// Bind resolves the column name. Resolution tries, in order: positional
// $N, exact name match, then unique suffix match on "::name" (so "user"
// finds "A::user" after a join when unambiguous).
func (c *Col) Bind(s *tuple.Schema) error {
	if strings.HasPrefix(c.Name, "$") {
		n, err := strconv.Atoi(c.Name[1:])
		if err != nil || n < 0 || n >= s.Len() {
			return fmt.Errorf("pig: positional reference %s out of range for schema %s", c.Name, s)
		}
		c.idx = n
		return nil
	}
	if i := s.Index(c.Name); i >= 0 {
		c.idx = i
		return nil
	}
	// Suffix match for qualified columns.
	found := -1
	for i, f := range s.Fields {
		if strings.HasSuffix(f.Name, "::"+c.Name) {
			if found >= 0 {
				return fmt.Errorf("pig: column %q is ambiguous in schema %s", c.Name, s)
			}
			found = i
		}
	}
	if found < 0 {
		return fmt.Errorf("pig: unknown column %q in schema %s", c.Name, s)
	}
	c.idx = found
	return nil
}

// Eval returns the referenced field, or null if the tuple is short.
func (c *Col) Eval(t tuple.Tuple) tuple.Value {
	if c.idx < len(t) {
		return t[c.idx]
	}
	return tuple.Null()
}

// Index returns the resolved column index; valid only after Bind.
func (c *Col) Index() int { return c.idx }

func (c *Col) String() string { return c.Name }

// Lit is a literal constant.
type Lit struct {
	V tuple.Value
}

// Bind is a no-op for literals.
func (l *Lit) Bind(*tuple.Schema) error { return nil }

// Eval returns the constant.
func (l *Lit) Eval(tuple.Tuple) tuple.Value { return l.V }

func (l *Lit) String() string {
	if l.V.Kind() == tuple.KindString {
		return "'" + l.V.Str() + "'"
	}
	return l.V.Str()
}

// Binary applies an infix operator: arithmetic (+ - * / %), comparison
// (== != < <= > >=) or logical (and, or).
type Binary struct {
	Op   string
	L, R Expr
}

// Bind binds both operands.
func (b *Binary) Bind(s *tuple.Schema) error {
	if err := b.L.Bind(s); err != nil {
		return err
	}
	return b.R.Bind(s)
}

// Eval applies the operator. Logical operators short-circuit.
func (b *Binary) Eval(t tuple.Tuple) tuple.Value {
	switch b.Op {
	case "and":
		if !b.L.Eval(t).Truthy() {
			return tuple.Bool(false)
		}
		return tuple.Bool(b.R.Eval(t).Truthy())
	case "or":
		if b.L.Eval(t).Truthy() {
			return tuple.Bool(true)
		}
		return tuple.Bool(b.R.Eval(t).Truthy())
	}
	lv, rv := b.L.Eval(t), b.R.Eval(t)
	switch b.Op {
	case "+":
		return tuple.Add(lv, rv)
	case "-":
		return tuple.Sub(lv, rv)
	case "*":
		return tuple.Mul(lv, rv)
	case "/":
		return tuple.Div(lv, rv)
	case "%":
		return tuple.Mod(lv, rv)
	case "==":
		return tuple.Bool(tuple.Equal(lv, rv))
	case "!=":
		return tuple.Bool(!tuple.Equal(lv, rv))
	case "<":
		return tuple.Bool(tuple.Compare(lv, rv) < 0)
	case "<=":
		return tuple.Bool(tuple.Compare(lv, rv) <= 0)
	case ">":
		return tuple.Bool(tuple.Compare(lv, rv) > 0)
	case ">=":
		return tuple.Bool(tuple.Compare(lv, rv) >= 0)
	default:
		return tuple.Null()
	}
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Unary applies "not" or arithmetic negation.
type Unary struct {
	Op string // "not" or "-"
	X  Expr
}

// Bind binds the operand.
func (u *Unary) Bind(s *tuple.Schema) error { return u.X.Bind(s) }

// Eval applies the operator.
func (u *Unary) Eval(t tuple.Tuple) tuple.Value {
	v := u.X.Eval(t)
	switch u.Op {
	case "not":
		return tuple.Bool(!v.Truthy())
	case "-":
		return tuple.Sub(tuple.Int(0), v)
	default:
		return tuple.Null()
	}
}

func (u *Unary) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X) }

// Call invokes a built-in scalar function. Aggregate function names
// (COUNT, SUM, ...) never reach Eval: the plan builder recognizes them
// inside FOREACH..GENERATE over a grouped relation and converts them to
// Aggregate items.
type Call struct {
	Func string // lower-cased by the parser
	Args []Expr
}

// scalarFuncs lists supported scalar built-ins with their arities.
var scalarFuncs = map[string]int{
	"concat":    2,
	"size":      1,
	"trunc":     1,
	"abs":       1,
	"upper":     1,
	"lower":     1,
	"substring": 3,
	"round":     1,
	"replace":   3,
}

// Bind checks the function exists with the right arity and binds args.
func (c *Call) Bind(s *tuple.Schema) error {
	arity, ok := scalarFuncs[c.Func]
	if !ok {
		return fmt.Errorf("pig: unknown function %s", strings.ToUpper(c.Func))
	}
	if len(c.Args) != arity {
		return fmt.Errorf("pig: %s takes %d argument(s), got %d", strings.ToUpper(c.Func), arity, len(c.Args))
	}
	for _, a := range c.Args {
		if err := a.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval applies the function.
func (c *Call) Eval(t tuple.Tuple) tuple.Value {
	switch c.Func {
	case "concat":
		return tuple.Str(c.Args[0].Eval(t).Str() + c.Args[1].Eval(t).Str())
	case "size":
		return tuple.Int(int64(len(c.Args[0].Eval(t).Str())))
	case "trunc":
		return tuple.Truncate(c.Args[0].Eval(t))
	case "abs":
		v := c.Args[0].Eval(t)
		if v.Kind() == tuple.KindFloat {
			if f := v.Float(); f < 0 {
				return tuple.Float(-f)
			}
			return v
		}
		if i := v.Int(); i < 0 {
			return tuple.Int(-i)
		}
		return tuple.Int(v.Int())
	case "upper":
		return tuple.Str(strings.ToUpper(c.Args[0].Eval(t).Str()))
	case "lower":
		return tuple.Str(strings.ToLower(c.Args[0].Eval(t).Str()))
	case "substring":
		s := c.Args[0].Eval(t).Str()
		start := int(c.Args[1].Eval(t).Int())
		length := int(c.Args[2].Eval(t).Int())
		if start < 0 {
			start = 0
		}
		if start >= len(s) || length <= 0 {
			return tuple.Str("")
		}
		end := start + length
		if end > len(s) {
			end = len(s)
		}
		return tuple.Str(s[start:end])
	case "round":
		v := c.Args[0].Eval(t)
		if v.Kind() != tuple.KindFloat {
			return tuple.Int(v.Int())
		}
		f := v.Float()
		if f >= 0 {
			return tuple.Int(int64(f + 0.5))
		}
		return tuple.Int(int64(f - 0.5))
	case "replace":
		return tuple.Str(strings.ReplaceAll(
			c.Args[0].Eval(t).Str(),
			c.Args[1].Eval(t).Str(),
			c.Args[2].Eval(t).Str()))
	default:
		return tuple.Null()
	}
}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return strings.ToUpper(c.Func) + "(" + strings.Join(args, ", ") + ")"
}

// IsAggregateFunc reports whether name (any case) is one of the five
// aggregate functions supported over grouped relations.
func IsAggregateFunc(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	default:
		return false
	}
}
