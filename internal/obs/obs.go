// Package obs is the unified observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms, read-only func
// gauges) and a virtual-time span tracer with deterministic exports.
// Every component of the pipeline — engine, controller, DFS, worker
// pool, BFT tier — registers into one Registry and emits spans into one
// Tracer, so a run can be read as a single timeline instead of a pile of
// ad-hoc counters.
//
// Two properties are load-bearing and tested:
//
//   - Nil safety: every method of every instrument is a no-op on a nil
//     receiver. Components hold possibly-nil *Counter / *Tracer fields
//     and call them unconditionally; "observability off" is the zero
//     value of everything, with no configuration and no branches beyond
//     the nil check.
//
//   - Allocation freedom when disabled (and for counters, also when
//     enabled): the per-record hot paths of the data plane call these
//     hooks, and the AllocsPerRun pins of internal/mapred and
//     internal/digest would fail if a hook allocated.
//
// Determinism: spans carry virtual timestamps from the simulation
// clocks, so traces of a seeded run are byte-identical across hosts,
// pool sizes and -race. Wall-clock fields are populated only when a
// wall clock is explicitly enabled and are excluded from the JSONL
// export, which is the format pinned by golden fixtures.
package obs

import "strconv"

// Attr is one span attribute. Attribute order is preserved, which keeps
// exports deterministic (unlike a map).
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// A builds a string attribute.
func A(k, v string) Attr { return Attr{K: k, V: v} }

// AI builds an integer attribute.
func AI(k string, v int64) Attr { return Attr{K: k, V: strconv.FormatInt(v, 10)} }
