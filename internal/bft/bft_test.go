package bft

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// appendSM is a deterministic state machine: a log of applied ops whose
// Apply result encodes (position, op).
type appendSM struct {
	ops []string
}

func (s *appendSM) Apply(op []byte) []byte {
	s.ops = append(s.ops, string(op))
	return []byte(fmt.Sprintf("%d:%s", len(s.ops), op))
}

func newGroup(f int) (*Group, []*appendSM) {
	sms := make([]*appendSM, 3*f+1)
	g := NewGroup(f, func(i int) StateMachine {
		sms[i] = &appendSM{}
		return sms[i]
	})
	return g, sms
}

func TestHappyPathSingleOp(t *testing.T) {
	g, sms := newGroup(1)
	res, lat, err := g.Invoke([]byte("op-a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:op-a" {
		t.Errorf("result = %q", res)
	}
	if lat <= 0 {
		t.Errorf("latency = %d", lat)
	}
	for i, sm := range sms {
		if len(sm.ops) != 1 || sm.ops[0] != "op-a" {
			t.Errorf("replica %d log = %v", i, sm.ops)
		}
	}
}

func TestSequentialOpsTotalOrder(t *testing.T) {
	g, sms := newGroup(1)
	for i := 0; i < 5; i++ {
		op := fmt.Sprintf("op-%d", i)
		res, _, err := g.Invoke([]byte(op))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		want := fmt.Sprintf("%d:%s", i+1, op)
		if string(res) != want {
			t.Errorf("op %d result = %q, want %q", i, res, want)
		}
	}
	ref := strings.Join(sms[0].ops, ",")
	for i, sm := range sms {
		if got := strings.Join(sm.ops, ","); got != ref {
			t.Errorf("replica %d order %q != %q", i, got, ref)
		}
	}
}

func TestToleratesSilentBackup(t *testing.T) {
	g, sms := newGroup(1)
	// Replica 2 (a backup) is completely silent.
	silent := ReplicaID(2)
	g.Net.Drop = func(from, to ID, _ Message) bool { return from == silent }
	res, _, err := g.Invoke([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:x" {
		t.Errorf("result = %q", res)
	}
	// Honest replicas executed.
	executed := 0
	for _, sm := range sms {
		if len(sm.ops) == 1 {
			executed++
		}
	}
	if executed < 2*1+1 {
		t.Errorf("only %d replicas executed", executed)
	}
}

func TestToleratesSilentPrimaryViaViewChange(t *testing.T) {
	g, _ := newGroup(1)
	primary := ReplicaID(0)
	g.Net.Drop = func(from, to ID, _ Message) bool { return from == primary }
	res, _, err := g.Invoke([]byte("y"))
	if err != nil {
		t.Fatalf("view change did not recover: %v", err)
	}
	if string(res) != "1:y" {
		t.Errorf("result = %q", res)
	}
	for _, r := range g.Replicas[1:] {
		if r.View() == 0 {
			t.Errorf("%v still in view 0 after faulty primary", r)
		}
	}
}

func TestProgressAfterViewChange(t *testing.T) {
	g, _ := newGroup(1)
	primary := ReplicaID(0)
	g.Net.Drop = func(from, to ID, _ Message) bool { return from == primary }
	if _, _, err := g.Invoke([]byte("a")); err != nil {
		t.Fatal(err)
	}
	// Second op in the new view must also succeed.
	res, _, err := g.Invoke([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "2:b" {
		t.Errorf("result = %q", res)
	}
}

func TestCorruptReplicaOutvoted(t *testing.T) {
	g, _ := newGroup(1)
	g.Replicas[1].CorruptResults = true
	res, _, err := g.Invoke([]byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:z" {
		t.Errorf("client accepted corrupt result %q", res)
	}
}

func TestF2Group(t *testing.T) {
	g, sms := newGroup(2)
	// Two silent backups (the max for f=2).
	s1, s2 := ReplicaID(3), ReplicaID(5)
	g.Net.Drop = func(from, to ID, _ Message) bool { return from == s1 || from == s2 }
	res, _, err := g.Invoke([]byte("w"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:w" {
		t.Errorf("result = %q", res)
	}
	executed := 0
	for _, sm := range sms {
		if len(sm.ops) == 1 {
			executed++
		}
	}
	if executed < 5 {
		t.Errorf("executed on %d replicas, want >= 2f+1 = 5", executed)
	}
}

func TestDuplicateRequestNotReExecuted(t *testing.T) {
	g, sms := newGroup(1)
	if _, _, err := g.Invoke([]byte("once")); err != nil {
		t.Fatal(err)
	}
	// Retransmit the identical request (same client seq) manually.
	req := Request{Client: g.Client.ID(), Seq: 1, Op: []byte("once")}
	for _, r := range g.Replicas {
		g.Net.Send(g.Client.ID(), r.ID(), req)
	}
	g.Net.Run(0)
	for i, sm := range sms {
		if len(sm.ops) != 1 {
			t.Errorf("replica %d executed %d times", i, len(sm.ops))
		}
	}
}

func TestClientRejectsConcurrentCalls(t *testing.T) {
	g, _ := newGroup(1)
	if err := g.Client.Invoke([]byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Client.Invoke([]byte("b"), nil); err == nil {
		t.Error("second outstanding call should be rejected")
	}
}

func TestLatencyScalesWithF(t *testing.T) {
	g1, _ := newGroup(1)
	_, lat1, err := g1.Invoke([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	g3, _ := newGroup(3)
	_, lat3, err := g3.Invoke([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if lat3 < lat1 {
		t.Errorf("f=3 latency %d < f=1 latency %d", lat3, lat1)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (string, int64) {
		g, sms := newGroup(1)
		for i := 0; i < 3; i++ {
			if _, _, err := g.Invoke([]byte(fmt.Sprintf("op%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return strings.Join(sms[0].ops, ","), g.Net.Now()
	}
	ops1, t1 := run()
	ops2, t2 := run()
	if ops1 != ops2 || t1 != t2 {
		t.Errorf("nondeterministic: (%q,%d) vs (%q,%d)", ops1, t1, ops2, t2)
	}
}

func TestRequestDigestBindsIdentity(t *testing.T) {
	a := Request{Client: "c", Seq: 1, Op: []byte("op")}
	b := Request{Client: "c", Seq: 2, Op: []byte("op")}
	c := Request{Client: "d", Seq: 1, Op: []byte("op")}
	d := Request{Client: "c", Seq: 1, Op: []byte("other")}
	if a.Digest() == b.Digest() || a.Digest() == c.Digest() || a.Digest() == d.Digest() {
		t.Error("digest collisions across distinct requests")
	}
	if a.Digest() != (Request{Client: "c", Seq: 1, Op: []byte("op")}).Digest() {
		t.Error("digest not deterministic")
	}
}

func TestNetworkDropAndTrace(t *testing.T) {
	net := NewNetwork()
	var got []string
	net.Register("a", handlerFunc(func(from ID, msg Message) {
		got = append(got, fmt.Sprintf("%s:%v", from, msg))
	}))
	net.Drop = func(from, to ID, _ Message) bool { return from == "blocked" }
	traced := 0
	net.Trace = func(from, to ID, msg Message) { traced++ }
	net.Send("blocked", "a", "nope")
	net.Send("ok", "a", "hi")
	net.Run(0)
	if len(got) != 1 || got[0] != "ok:hi" {
		t.Errorf("got %v", got)
	}
	if traced != 1 || net.Delivered() != 1 {
		t.Errorf("trace=%d delivered=%d", traced, net.Delivered())
	}
}

type handlerFunc func(from ID, msg Message)

func (f handlerFunc) Receive(from ID, msg Message) { f(from, msg) }

func TestNetworkDeliveryOrdering(t *testing.T) {
	net := NewNetwork()
	var order []string
	net.Register("x", handlerFunc(func(_ ID, msg Message) {
		order = append(order, msg.(string))
	}))
	net.Delay = func(from, to ID) int64 {
		if from == "slow" {
			return 5000
		}
		return 1000
	}
	net.Send("slow", "x", "second")
	net.Send("fast", "x", "first")
	net.Run(0)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
}

func TestReplicaStringAndIDs(t *testing.T) {
	g, _ := newGroup(1)
	if g.Replicas[2].ID() != "replica-2" {
		t.Errorf("ID = %v", g.Replicas[2].ID())
	}
	if !strings.Contains(g.Replicas[0].String(), "view=0") {
		t.Errorf("String = %q", g.Replicas[0].String())
	}
}

func TestResultBytesAreCopied(t *testing.T) {
	g, _ := newGroup(1)
	op := []byte("mut")
	var res []byte
	err := g.Client.Invoke(op, func(r []byte) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	op[0] = 'X' // mutate caller's buffer after Invoke
	g.Net.Run(0)
	if !bytes.Contains(res, []byte("mut")) {
		t.Errorf("result %q affected by caller mutation", res)
	}
}
