// Package analyze implements ClusterBFT's graph analyzer (paper §4.1): it
// computes data-flow levels and input ratios (Fig 5) over a logical plan
// and runs the marker function (Fig 3) that places the n verification
// points requested by the client, respecting the adversary model.
package analyze

import (
	"sort"

	"clusterbft/internal/pig"
)

// Model is the adversary model (paper §2.3) under which verification
// points are chosen.
type Model uint8

const (
	// Weak adversaries cause only omission or commission faults; any
	// vertex of the data-flow graph may carry a verification point.
	Weak Model = iota + 1
	// Strong adversaries control nodes fully; only points where data
	// flows between MapReduce jobs (materialization points) are
	// meaningful verification points.
	Strong
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	default:
		return "unknown"
	}
}

// SizeFunc reports the input size in bytes of a LOAD path. The graph
// analyzer uses it for input ratios; unknown paths should return 0.
type SizeFunc func(path string) int64

// Analysis holds the graph-analyzer results for one plan.
type Analysis struct {
	Plan   *pig.Plan
	Levels map[int]int     // vertex ID -> level (Table 2)
	Ratios map[int]float64 // vertex ID -> input ratio (Fig 5)
}

// Analyze computes levels and input ratios for the plan. size may be nil,
// in which case all loads are treated as equal-sized.
func Analyze(p *pig.Plan, size SizeFunc) *Analysis {
	a := &Analysis{
		Plan:   p,
		Levels: Levels(p),
		Ratios: make(map[int]float64, len(p.Vertices)),
	}
	a.computeRatios(size)
	return a
}

// Levels computes level(v) per Table 2: 1 for LOAD vertices, otherwise
// 1 + the maximum parent level. Plan order is topological, so one pass
// suffices.
func Levels(p *pig.Plan) map[int]int {
	levels := make(map[int]int, len(p.Vertices))
	for _, v := range p.Vertices {
		if v.Kind == pig.OpLoad {
			levels[v.ID] = 1
			continue
		}
		maxParent := 0
		for _, par := range v.Parents {
			if l := levels[par.ID]; l > maxParent {
				maxParent = l
			}
		}
		levels[v.ID] = 1 + maxParent
	}
	return levels
}

// computeRatios implements INPUT_RATIO from Fig 5:
//
//	ir[load] = input_size(load) / Σ input_size(all loads)
//	ir[v]    = Σ_{p∈parents(v)} ir[p] / Σ_{n: level(n)=level(v)-1} ir[n]
func (a *Analysis) computeRatios(size SizeFunc) {
	var totalLoad float64
	loadSize := make(map[int]float64)
	for _, v := range a.Plan.Loads() {
		s := 1.0
		if size != nil {
			if b := size(v.Path); b > 0 {
				s = float64(b)
			}
		}
		loadSize[v.ID] = s
		totalLoad += s
	}

	// Sum of ratios per level, filled as we go (plan order is
	// topological, and level(v)-1 vertices always precede v).
	levelSum := make(map[int]float64)
	for _, v := range a.Plan.Vertices {
		var ir float64
		if v.Kind == pig.OpLoad {
			if totalLoad > 0 {
				ir = loadSize[v.ID] / totalLoad
			}
		} else {
			var parentSum float64
			for _, p := range v.Parents {
				parentSum += a.Ratios[p.ID]
			}
			if denom := levelSum[a.Levels[v.ID]-1]; denom > 0 {
				ir = parentSum / denom
			}
		}
		a.Ratios[v.ID] = ir
		levelSum[a.Levels[v.ID]] += ir
	}
}

// hasShuffleAncestor reports whether any proper ancestor of v forces a
// shuffle, i.e. whether v executes on the reduce side of some job.
func hasShuffleAncestor(v *pig.Vertex) bool {
	for _, p := range v.Parents {
		if p.Kind.IsShuffle() || hasShuffleAncestor(p) {
			return true
		}
	}
	return false
}

// Candidates returns the vertex IDs eligible to carry a verification
// point under the adversary model, in plan order.
//
// Under a weak adversary any vertex except STORE qualifies (the paper's
// Fig 4 discussion considers points right after LOAD). Under a strong
// adversary only materialization points qualify: vertices whose output is
// written between MapReduce jobs — reduce-side vertices feeding a further
// shuffle, parents of STOREs, and reduce-side vertices shared by several
// consumers.
func (a *Analysis) Candidates(m Model) []int {
	var out []int
	for _, v := range a.Plan.Vertices {
		if v.Kind == pig.OpStore {
			continue
		}
		if m == Weak {
			out = append(out, v.ID)
			continue
		}
		if !v.Kind.IsShuffle() && !hasShuffleAncestor(v) {
			continue // map-side of the first job: never materialized
		}
		if v.Kind == pig.OpUnion {
			continue // unions flatten into their consumers; no materialization
		}
		materialized := len(v.Children) > 1
		for _, c := range v.Children {
			if c.Kind.IsShuffle() || c.Kind == pig.OpStore {
				materialized = true
			}
		}
		if materialized {
			out = append(out, v.ID)
		}
	}
	return out
}

// Mark implements the MARK function of Fig 3: greedily select n
// verification points maximizing score(v) = ir[v] + dist(v, M), where
// dist is the undirected edge distance to the nearest already-marked
// vertex. M is seeded with the LOAD vertices (their input is trusted
// storage, so they behave as implicit verification points — this matches
// the ".5+1" / ".6+2" distance annotations of Fig 4) plus any
// extraSeeds: ClusterBFT passes the final STORE parents, which are
// always verified, so the n explicit points land mid-flow where they
// best split re-computation cost against detection probability (the
// Fig 4 tradeoff discussion). Seeded vertices are never picked. Ties
// break on the lower vertex ID so marking is deterministic. Fewer than n
// candidates yields all of them.
func (a *Analysis) Mark(n int, m Model, extraSeeds ...int) []int {
	candidates := a.Candidates(m)
	marked := make(map[int]bool)
	seeds := make([]int, 0, 4+len(extraSeeds))
	for _, v := range a.Plan.Loads() {
		seeds = append(seeds, v.ID)
	}
	for _, id := range extraSeeds {
		seeds = append(seeds, id)
		marked[id] = true
	}
	var out []int
	for len(out) < n {
		dist := a.distances(append(append([]int(nil), seeds...), out...))
		best, bestScore := -1, -1.0
		for _, id := range candidates {
			if marked[id] {
				continue
			}
			score := a.Ratios[id] + float64(dist[id])
			if score > bestScore {
				best, bestScore = id, score
			}
		}
		if best < 0 {
			break // candidate set exhausted
		}
		marked[best] = true
		out = append(out, best)
	}
	sort.Ints(out)
	return out
}

// distances runs a multi-source BFS over the undirected plan graph from
// the seed vertex IDs, returning edge distances. Unreachable vertices get
// a distance one past the largest finite distance, keeping scores finite.
func (a *Analysis) distances(seeds []int) map[int]int {
	dist := make(map[int]int, len(a.Plan.Vertices))
	queue := make([]*pig.Vertex, 0, len(seeds))
	for _, id := range seeds {
		if v := a.Plan.ByID(id); v != nil {
			dist[v.ID] = 0
			queue = append(queue, v)
		}
	}
	maxSeen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range neighbors(v) {
			if _, ok := dist[nb.ID]; !ok {
				dist[nb.ID] = dist[v.ID] + 1
				if dist[nb.ID] > maxSeen {
					maxSeen = dist[nb.ID]
				}
				queue = append(queue, nb)
			}
		}
	}
	for _, v := range a.Plan.Vertices {
		if _, ok := dist[v.ID]; !ok {
			dist[v.ID] = maxSeen + 1
		}
	}
	return dist
}

func neighbors(v *pig.Vertex) []*pig.Vertex {
	out := make([]*pig.Vertex, 0, len(v.Parents)+len(v.Children))
	out = append(out, v.Parents...)
	out = append(out, v.Children...)
	return out
}
