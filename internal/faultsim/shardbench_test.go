package faultsim

import (
	"fmt"
	"testing"
)

func testBenchConfig() ShardBenchConfig {
	cfg := DefaultShardBench()
	cfg.Clusters = 96
	cfg.Keys = 24
	return cfg
}

// TestShardBenchMergeIdenticalAcrossShardCounts is the cross-shard
// convergence check of the scaling experiment: the merged evidence
// stream, the FaultAnalyzer's convictions and the eviction set must be
// byte-identical whether verdicts ran through 1 pipeline or 8. The
// per-sid partitioning argument (DESIGN.md §13) says they must.
func TestShardBenchMergeIdenticalAcrossShardCounts(t *testing.T) {
	var base *ShardBenchResult
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := testBenchConfig()
		cfg.Shards = shards
		res := ShardBench(cfg)
		if res.Reports == 0 || res.Verdicts == 0 {
			t.Fatalf("shards=%d: empty workload: %+v", shards, res)
		}
		if res.Evidence == 0 || res.Convictions == 0 {
			t.Fatalf("shards=%d: no Byzantine evidence surfaced: %+v", shards, res)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Fingerprint != base.Fingerprint {
			t.Errorf("shards=%d fingerprint %s != shards=1 %s", shards, res.Fingerprint, base.Fingerprint)
		}
		if res.Evidence != base.Evidence || res.Verdicts != base.Verdicts ||
			res.Convictions != base.Convictions || res.Evicted != base.Evicted ||
			res.WorkTotal != base.WorkTotal {
			t.Errorf("shards=%d diverged: %+v vs %+v", shards, res, base)
		}
	}
}

// TestShardBenchReplaysByteIdentically pins fixed-seed fixed-shard-count
// determinism, including with per-shard BFT sequencing groups running
// concurrently over one shared network.
func TestShardBenchReplaysByteIdentically(t *testing.T) {
	for _, seq := range []bool{false, true} {
		cfg := testBenchConfig()
		cfg.Shards = 4
		cfg.Clusters = 48
		cfg.BFTSequence = seq
		a, b := ShardBench(cfg), ShardBench(cfg)
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("bft=%v: replay diverged: %s vs %s", seq, a.Fingerprint, b.Fingerprint)
		}
		if seq && a.BFTCommits == 0 {
			t.Error("sequencing enabled but no shard group committed a batch")
		}
	}
}

// TestShardBenchCriticalPathScales asserts the deterministic scaling
// claim: with one core per shard, the critical path at 8 shards is at
// least 3x shorter than the serial pipeline's (the acceptance bar of
// the verdict-throughput experiment; BenchmarkVerdictThroughput shows
// the wall-clock equivalent on multi-core hosts).
func TestShardBenchCriticalPathScales(t *testing.T) {
	cfg := testBenchConfig()
	cfg.Shards = 1
	one := ShardBench(cfg)
	cfg.Shards = 8
	eight := ShardBench(cfg)
	speedup := float64(one.SpanUnits) / float64(eight.SpanUnits)
	if speedup < 3 {
		t.Errorf("critical-path speedup at 8 shards = %.2fx (span %d -> %d), want >= 3x",
			speedup, one.SpanUnits, eight.SpanUnits)
	}
}

// BenchmarkVerdictThroughput is the shard-sweep wall-clock benchmark
// folded into BENCH_dataplane.json (scripts/bench_dataplane.sh). Each
// op verifies a full workload; records/op reports digest reports
// processed, so throughput in reports/sec is records_per_op / (ns/op
// / 1e9). Wall-clock scaling tracks the deterministic SpanUnits curve
// only when GOMAXPROCS provides a core per shard.
func BenchmarkVerdictThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		// "=" not "-": the GOMAXPROCS suffix on benchmark names is
		// "-N", and bench_dataplane.sh strips exactly that.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var reports int64
			for i := 0; i < b.N; i++ {
				cfg := testBenchConfig()
				cfg.Shards = shards
				res := ShardBench(cfg)
				reports += int64(res.Reports)
			}
			b.ReportMetric(float64(reports)/float64(b.N), "records/op")
		})
	}
}
