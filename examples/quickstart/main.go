// Quickstart: run one data-analysis script under ClusterBFT protection.
//
// The example generates a synthetic Twitter follower graph, runs the
// paper's follower-count script with the default configuration (f=1,
// four replicas, two verification points chosen by the graph analyzer)
// on a simulated 16-node untrusted tier, and prints the verified output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

func main() {
	// 1. Trusted storage with the input dataset.
	fs := dfs.New()
	fs.Append(workload.TwitterPath, workload.Twitter(20_000, 500, 1)...)

	// 2. The untrusted worker tier: 16 nodes, 3 task slots each.
	workers := cluster.New(16, 3)

	// 3. The trusted control tier: engine + ClusterBFT controller with
	//    the resource manager's overlap-maximizing scheduler.
	cfg := core.DefaultConfig()
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	engine := mapred.NewEngine(fs, workers, core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := core.NewController(engine, cfg, susp, nil)

	// 4. Submit the script.
	res, err := ctrl.Run(workload.FollowerScript)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("verified: %v in %.2f virtual seconds (%d sub-graphs, %d digests)\n",
		res.Verified, float64(res.LatencyUs)/1e6, res.Clusters, res.DigestReports)

	// 5. Read the verified winner replica's output.
	lines, err := fs.ReadTree(res.Outputs["out/twitter/followers"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d users with followers; first few:\n", len(lines))
	for i, l := range lines {
		if i >= 10 {
			break
		}
		fmt.Println(" ", l)
	}
}
