package cluster

import (
	"testing"

	"clusterbft/internal/tuple"
)

func TestNewCluster(t *testing.T) {
	c := New(4, 3)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.TotalSlots() != 12 {
		t.Errorf("TotalSlots = %d", c.TotalSlots())
	}
	if c.Nodes()[0].ID != "node-000" || c.Nodes()[3].ID != "node-003" {
		t.Errorf("node IDs: %v %v", c.Nodes()[0].ID, c.Nodes()[3].ID)
	}
	if c.Node("node-002") == nil {
		t.Error("lookup failed")
	}
	if c.Node("node-999") != nil {
		t.Error("unknown lookup should be nil")
	}
}

func TestSetAdversary(t *testing.T) {
	c := New(3, 2)
	if err := c.SetAdversary("node-001", FaultCommission, 1.0, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAdversary("node-999", FaultOmission, 1.0, 7); err == nil {
		t.Error("unknown node should error")
	}
	faulty := c.FaultyNodes()
	if len(faulty) != 1 || faulty[0] != "node-001" {
		t.Errorf("FaultyNodes = %v", faulty)
	}
	if !c.Node("node-001").Faulty() {
		t.Error("node should report faulty")
	}
	if c.Node("node-000").Faulty() {
		t.Error("honest node reports faulty")
	}
}

func TestAdversaryFireAlways(t *testing.T) {
	a := NewAdversary(FaultCommission, 1.0, 1)
	for i := 0; i < 10; i++ {
		if !a.Fire() {
			t.Fatal("probability 1.0 must always fire")
		}
	}
}

func TestAdversaryFireNever(t *testing.T) {
	cases := []*Adversary{
		nil,
		NewAdversary(FaultNone, 1.0, 1),
		NewAdversary(FaultCommission, 0, 1),
	}
	for i, a := range cases {
		for j := 0; j < 10; j++ {
			if a.Fire() {
				t.Fatalf("case %d must never fire", i)
			}
		}
	}
}

func TestAdversaryFireProbabilistic(t *testing.T) {
	a := NewAdversary(FaultCommission, 0.5, 42)
	fires := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if a.Fire() {
			fires++
		}
	}
	if fires < trials/3 || fires > 2*trials/3 {
		t.Errorf("p=0.5 fired %d/%d times", fires, trials)
	}
}

func TestAdversaryDeterministicSeed(t *testing.T) {
	a := NewAdversary(FaultCommission, 0.5, 99)
	b := NewAdversary(FaultCommission, 0.5, 99)
	for i := 0; i < 100; i++ {
		if a.Fire() != b.Fire() {
			t.Fatal("same seed must give same draws")
		}
	}
}

func TestCorruptChangesEveryField(t *testing.T) {
	in := tuple.Tuple{tuple.Int(5), tuple.Float(1.5), tuple.Str("x"), tuple.Null()}
	out := Corrupt(in)
	if len(out) != len(in) {
		t.Fatalf("arity changed: %d", len(out))
	}
	for i := range in {
		if tuple.Equal(in[i], out[i]) {
			t.Errorf("field %d unchanged: %v", i, out[i])
		}
	}
	// Original untouched.
	if in[0].Int() != 5 {
		t.Error("Corrupt mutated its input")
	}
}

func TestCorruptChangesDigestBytes(t *testing.T) {
	in := tuple.Tuple{tuple.Int(1), tuple.Str("a")}
	a := tuple.AppendCanonical(nil, in)
	b := tuple.AppendCanonical(nil, Corrupt(in))
	if string(a) == string(b) {
		t.Error("corruption must change canonical bytes")
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:       "none",
		FaultCommission: "commission",
		FaultOmission:   "omission",
		FaultKind(9):    "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
