package mapred

import (
	"container/heap"
	"fmt"
	"sort"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
)

// CostModel sets the virtual-time costs of engine operations, in
// microseconds. Latency results are reported in this virtual time, which
// makes runs deterministic and lets replicas overlap regardless of how
// many host CPUs the simulation itself gets.
type CostModel struct {
	TaskStartupUs   int64 // task-tracker JVM spin-up per task
	MapRecordUs     int64 // per input record in a map task
	ReduceRecordUs  int64 // per record in or out of a reduce task
	ShuffleRecordUs int64 // per record written to / read from shuffle
	DigestRecordUs  int64 // per record folded into a verification digest
	HeartbeatUs     int64 // task-tracker heartbeat interval (§4.2 step 1)
	SplitRecords    int   // records per map input split
}

// DefaultCostModel returns costs loosely calibrated to Hadoop 1.x: long
// task startup, cheap per-record processing, digesting noticeably cheaper
// than processing (the paper measures <10% overhead for one verification
// point, §6.1).
func DefaultCostModel() CostModel {
	return CostModel{
		TaskStartupUs:   800_000,
		MapRecordUs:     4,
		ReduceRecordUs:  6,
		ShuffleRecordUs: 1,
		DigestRecordUs:  1,
		HeartbeatUs:     200_000,
		SplitRecords:    10_000,
	}
}

// Metrics accumulates the resource counters Table 3 reports.
type Metrics struct {
	CPUTimeUs         int64 // summed task durations
	HDFSBytesRead     int64 // job input reads
	HDFSBytesWritten  int64 // job output writes (intermediate and final)
	LocalBytesRead    int64 // shuffle reads
	LocalBytesWritten int64 // shuffle writes
	MapTasks          int64
	ReduceTasks       int64
	RecordsIn         int64
	RecordsOut        int64
	DigestRecords     int64
	JobsCompleted     int64
	TasksHung         int64 // omission faults observed
	SpeculativeTasks  int64 // backup copies launched
}

// JobState tracks one submitted job through execution.
type JobState struct {
	Spec *JobSpec
	// Nodes is the job cluster: every node that was assigned any task of
	// this job (including hung ones); input to fault isolation (§4.3).
	Nodes map[cluster.NodeID]bool

	SubmitTime int64
	DoneTime   int64
	Done       bool
	Killed     bool

	depsLeft   int
	dependents []*JobState
	runnable   bool

	splits      [][][2]int    // per input: line ranges
	inputLines  [][]string    // lazy cache of input records
	mapOutcomes []*mapOutcome // indexed by map task ordinal
	mapOrdinal  map[string]int
	mapsTotal   int
	mapsDone    int
	redsTotal   int
	redsDone    int

	running    map[string][]*runningTask // task ID -> active attempts
	committed  map[string]bool           // task IDs whose result committed
	maxDur     map[TaskKind]int64        // longest committed duration per kind
	speculated map[string]bool           // task IDs with a backup launched
}

type runningTask struct {
	task  *Task
	node  cluster.NodeID
	start int64
	hung  bool
	dead  bool
}

// Latency returns the job's virtual makespan; valid once Done.
func (j *JobState) Latency() int64 { return j.DoneTime - j.SubmitTime }

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the deterministic virtual-time MapReduce runtime: a job
// tracker (queue + dependency tracking), task trackers (node slots
// claimed via heartbeat ticks), and the execution of real map/reduce
// work. All callbacks run on the single simulation goroutine.
type Engine struct {
	FS      *dfs.FS
	Cluster *cluster.Cluster
	Sched   Scheduler
	Cost    CostModel
	Metrics Metrics

	// DigestChunk is the paper's d: records per digest chunk (§6.4);
	// <= 0 means one digest per task stream.
	DigestChunk int
	// DigestSink receives verification digests as tasks complete.
	DigestSink func(digest.Report)
	// OnJobDone fires when a job's last task completes.
	OnJobDone func(*JobState)

	now    int64
	seq    int64
	events eventHeap

	// Speculation enables Hadoop-style backup tasks: a task still
	// running SpecLagFactor times longer than the slowest committed
	// sibling of its kind gets a second copy on another node; the first
	// completion wins. Backups rescue replicas from stragglers and from
	// omission-hung tasks without waiting for the verifier timeout.
	Speculation    bool
	SpecLagFactor  float64 // default 2.0
	SpecIntervalUs int64   // sweep period; default 1s virtual

	jobs       map[string]*JobState
	jobOrder   []string
	ticks      int
	specArmed  bool
	ready      []*Task
	freeSlots  map[cluster.NodeID]int
	sidBinding map[cluster.NodeID]map[string]int
	tickArmed  bool
}

// NewEngine builds an engine over the given storage and worker cluster.
// sched may be nil (FIFO).
func NewEngine(fs *dfs.FS, cl *cluster.Cluster, sched Scheduler, cost CostModel) *Engine {
	if sched == nil {
		sched = FIFOScheduler{}
	}
	e := &Engine{
		FS:             fs,
		Cluster:        cl,
		Sched:          sched,
		Cost:           cost,
		SpecLagFactor:  2.0,
		SpecIntervalUs: 1_000_000,
		jobs:           make(map[string]*JobState),
		freeSlots:      make(map[cluster.NodeID]int),
		sidBinding:     make(map[cluster.NodeID]map[string]int),
	}
	for _, n := range cl.Nodes() {
		e.freeSlots[n.ID] = n.Slots
	}
	return e
}

// Now returns the current virtual time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// After schedules fn at now+delayUs on the simulation clock.
func (e *Engine) After(delayUs int64, fn func()) {
	if delayUs < 0 {
		delayUs = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delayUs, seq: e.seq, fn: fn})
}

// Job returns the state of a submitted job, or nil.
func (e *Engine) Job(id string) *JobState { return e.jobs[id] }

// Submit enqueues a job. Dependencies must have been submitted earlier
// (compiler output order satisfies this). Duplicate IDs are an error.
func (e *Engine) Submit(spec *JobSpec) (*JobState, error) {
	if _, ok := e.jobs[spec.ID]; ok {
		return nil, fmt.Errorf("mapred: duplicate job id %q", spec.ID)
	}
	js := &JobState{
		Spec:       spec,
		Nodes:      make(map[cluster.NodeID]bool),
		SubmitTime: e.now,
		mapOrdinal: make(map[string]int),
		running:    make(map[string][]*runningTask),
		committed:  make(map[string]bool),
		maxDur:     make(map[TaskKind]int64),
		speculated: make(map[string]bool),
	}
	e.jobs[spec.ID] = js
	e.jobOrder = append(e.jobOrder, spec.ID)
	for _, dep := range spec.Deps {
		d := e.jobs[dep]
		if d == nil {
			return nil, fmt.Errorf("mapred: job %q depends on unsubmitted %q", spec.ID, dep)
		}
		if !d.Done {
			js.depsLeft++
			d.dependents = append(d.dependents, js)
		}
	}
	if js.depsLeft == 0 {
		e.makeRunnable(js)
	}
	return js, nil
}

// makeRunnable computes splits and enqueues the job's map tasks.
func (e *Engine) makeRunnable(js *JobState) {
	if js.runnable || js.Killed {
		return
	}
	js.runnable = true
	js.splits = make([][][2]int, len(js.Spec.Inputs))
	js.inputLines = make([][]string, len(js.Spec.Inputs))
	for i, in := range js.Spec.Inputs {
		lines := e.readInput(in.Path)
		js.inputLines[i] = lines
		js.splits[i] = splitLines(len(lines), e.Cost.SplitRecords)
		for s := range js.splits[i] {
			t := &Task{Job: js, Kind: MapTask, InputIdx: i, Index: s}
			t.Home = e.splitHome(in.Path, s)
			js.mapOrdinal[t.ID()] = js.mapsTotal
			js.mapsTotal++
			e.ready = append(e.ready, t)
		}
	}
	js.mapOutcomes = make([]*mapOutcome, js.mapsTotal)
	e.armTick()
}

// readInput loads an input file or part-file tree; missing paths read as
// empty (an upstream job may legitimately have produced no records).
func (e *Engine) readInput(path string) []string {
	if e.FS.Exists(path) {
		lines, err := e.FS.ReadLines(path)
		if err == nil {
			return lines
		}
	}
	lines, err := e.FS.ReadTree(path)
	if err != nil {
		return nil
	}
	return lines
}

// splitHome deterministically assigns a "hosting" node for locality-aware
// schedulers, spreading a file's splits round-robin from a hash of the
// path.
func (e *Engine) splitHome(path string, split int) cluster.NodeID {
	nodes := e.Cluster.Nodes()
	if len(nodes) == 0 {
		return ""
	}
	h := 0
	for i := 0; i < len(path); i++ {
		h = h*31 + int(path[i])
	}
	if h < 0 {
		h = -h
	}
	return nodes[(h+split)%len(nodes)].ID
}

// armTick schedules the next heartbeat scheduling round if needed.
func (e *Engine) armTick() {
	if e.tickArmed || len(e.ready) == 0 {
		return
	}
	e.tickArmed = true
	e.After(e.Cost.HeartbeatUs, func() {
		e.tickArmed = false
		e.tick()
		e.armTick()
	})
}

// tick is one heartbeat round: every node with free slots asks the
// scheduler for work (§4.2 steps 1–5). The starting node rotates across
// ticks — heartbeats arrive in no fixed order in Hadoop, and a fixed
// order would starve high-numbered nodes on small workloads — while
// keeping runs deterministic.
func (e *Engine) tick() {
	nodes := e.Cluster.Nodes()
	if len(nodes) == 0 {
		return
	}
	e.ticks++
	start := e.ticks % len(nodes)
	for i := range nodes {
		node := nodes[(start+i)%len(nodes)]
		for e.freeSlots[node.ID] > 0 {
			cands := e.legalTasks(node)
			if len(cands) == 0 {
				break
			}
			t := e.Sched.Pick(node, cands)
			if t == nil {
				break
			}
			e.startTask(node, t)
		}
	}
}

// legalTasks filters the ready queue to tasks allowed on node: tasks of a
// replicated job (non-empty SID) may only land on a node bound to the
// same replica of that sub-graph, never a different one (§5.3).
func (e *Engine) legalTasks(node *cluster.Node) []*Task {
	var out []*Task
	for _, t := range e.ready {
		if t.Job.committed[t.ID()] {
			continue // a backup whose original already finished
		}
		sid := t.Job.Spec.SID
		if sid != "" {
			if bound, ok := e.sidBinding[node.ID][sid]; ok && bound != t.Job.Spec.Replica {
				continue
			}
		}
		// A backup copy must not share a node with a live attempt.
		dup := false
		for _, rt := range t.Job.running[t.ID()] {
			if rt.node == node.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, t)
	}
	return out
}

func (e *Engine) removeReady(t *Task) {
	for i, r := range e.ready {
		if r == t {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			return
		}
	}
}

// startTask executes t on node and schedules its completion.
func (e *Engine) startTask(node *cluster.Node, t *Task) {
	e.removeReady(t)
	e.freeSlots[node.ID]--
	js := t.Job
	js.Nodes[node.ID] = true
	if sid := js.Spec.SID; sid != "" {
		if e.sidBinding[node.ID] == nil {
			e.sidBinding[node.ID] = make(map[string]int)
		}
		e.sidBinding[node.ID][sid] = js.Spec.Replica
	}
	rt := &runningTask{task: t, node: node.ID, start: e.now}
	js.running[t.ID()] = append(js.running[t.ID()], rt)

	// Byzantine behaviour draw (§2.3).
	var corrupt corruptFn
	hung := false
	slow := 1.0
	if adv := node.Adversary; adv != nil && adv.Fire() {
		switch adv.Kind {
		case cluster.FaultCommission:
			corrupt = cluster.Corrupt
		case cluster.FaultOmission:
			hung = true
		case cluster.FaultSlow:
			slow = adv.Slowdown()
		}
	}

	var reports []digest.Report
	df := func(point int) *digest.Writer {
		key := digest.Key{SID: js.Spec.SID, Point: point, Task: t.ID()}
		return digest.NewWriter(key, js.Spec.Replica, e.DigestChunk, func(r digest.Report) {
			reports = append(reports, r)
		})
	}

	var dur int64
	var commit func()
	if t.Kind == MapTask {
		dur, commit = e.execMap(node, t, df, corrupt)
	} else {
		dur, commit = e.execReduce(t, df)
	}
	if slow > 1 {
		dur = int64(float64(dur) * slow)
	}
	e.Metrics.CPUTimeUs += dur
	e.armSpec()

	if hung {
		rt.hung = true
		e.Metrics.TasksHung++
		return // no completion event: the node withholds the result
	}
	e.After(dur, func() {
		if rt.dead {
			return
		}
		e.unlink(js, t.ID(), rt)
		e.freeSlots[rt.node]++
		if js.Killed || js.committed[t.ID()] {
			e.armTick() // job gone, or a backup raced us and won
			return
		}
		js.committed[t.ID()] = true
		if dur > js.maxDur[t.Kind] {
			js.maxDur[t.Kind] = dur
		}
		// Tear down losing sibling attempts (hung originals included).
		for _, other := range js.running[t.ID()] {
			other.dead = true
			e.freeSlots[other.node]++
		}
		delete(js.running, t.ID())
		// Digests first: when commit completes the job, the verifier
		// must already hold this task's reports.
		for _, r := range reports {
			if e.DigestSink != nil {
				e.DigestSink(r)
			}
		}
		commit()
		e.armTick()
	})
}

// unlink removes one attempt from a task's live list.
func (e *Engine) unlink(js *JobState, tid string, rt *runningTask) {
	rts := js.running[tid]
	for i, x := range rts {
		if x == rt {
			js.running[tid] = append(rts[:i], rts[i+1:]...)
			return
		}
	}
}

// armSpec schedules the next speculative-execution sweep.
func (e *Engine) armSpec() {
	if !e.Speculation || e.specArmed {
		return
	}
	e.specArmed = true
	e.After(e.SpecIntervalUs, func() {
		e.specArmed = false
		if e.specSweep() {
			e.armSpec()
		}
	})
}

// specSweep launches backups for laggard tasks and reports whether any
// task is still running. Iteration follows submission order and sorted
// task IDs so runs stay deterministic.
func (e *Engine) specSweep() bool {
	anyRunning := false
	for _, id := range e.jobOrder {
		js := e.jobs[id]
		if js == nil || js.Done || js.Killed {
			continue
		}
		tids := make([]string, 0, len(js.running))
		for tid := range js.running {
			tids = append(tids, tid)
		}
		sort.Strings(tids)
		for _, tid := range tids {
			rts := js.running[tid]
			if len(rts) == 0 {
				continue
			}
			anyRunning = true
			base := js.maxDur[rts[0].task.Kind]
			if base == 0 || js.speculated[tid] || len(rts) > 1 {
				continue
			}
			if float64(e.now-rts[0].start) > e.SpecLagFactor*float64(base) {
				js.speculated[tid] = true
				e.Metrics.SpeculativeTasks++
				e.ready = append(e.ready, rts[0].task)
				e.armTick()
			}
		}
	}
	return anyRunning
}

// execMap runs a map task's data work immediately and returns its virtual
// duration plus a commit closure applied at completion time.
func (e *Engine) execMap(node *cluster.Node, t *Task, df digestFactory, corrupt corruptFn) (int64, func()) {
	js := t.Job
	split := js.splits[t.InputIdx][t.Index]
	lines := js.inputLines[t.InputIdx][split[0]:split[1]]
	out := runMapTask(js.Spec, t.InputIdx, lines, df, corrupt)

	inBytes := linesBytes(lines)
	dur := e.Cost.TaskStartupUs +
		e.Cost.MapRecordUs*out.recordsIn +
		e.Cost.DigestRecordUs*out.digested +
		e.Cost.ShuffleRecordUs*out.recordsOut
	commit := func() {
		e.Metrics.MapTasks++
		e.Metrics.RecordsIn += out.recordsIn
		e.Metrics.HDFSBytesRead += inBytes
		e.Metrics.LocalBytesWritten += out.localBytes
		e.Metrics.DigestRecords += out.digested
		ord := js.mapOrdinal[t.ID()]
		js.mapOutcomes[ord] = out
		js.mapsDone++
		if js.Spec.Reduce == nil {
			// Map-only job: task output is final.
			e.writeOutput(js, partFileName(MapTask, t.InputIdx, t.Index), out.outLines)
			e.Metrics.RecordsOut += out.recordsOut
		}
		if js.mapsDone == js.mapsTotal {
			e.mapsFinished(js)
		}
	}
	return dur, commit
}

// mapsFinished either completes a map-only job or enqueues reduces.
func (e *Engine) mapsFinished(js *JobState) {
	if js.Spec.Reduce == nil {
		e.completeJob(js)
		return
	}
	js.redsTotal = js.Spec.NumReduces
	for r := 0; r < js.redsTotal; r++ {
		e.ready = append(e.ready, &Task{Job: js, Kind: ReduceTask, Index: r})
	}
	e.armTick()
}

// execReduce runs a reduce task's data work and returns duration plus a
// commit closure.
func (e *Engine) execReduce(t *Task, df digestFactory) (int64, func()) {
	js := t.Job
	var records []interRec
	var localBytes int64
	for _, out := range js.mapOutcomes {
		if out == nil || t.Index >= len(out.partitions) {
			continue
		}
		for _, r := range out.partitions[t.Index] {
			records = append(records, r)
			localBytes += r.bytes()
		}
	}
	out, err := runReduceTask(js.Spec.Reduce, records, df)
	if err != nil {
		// Compiled specs cannot produce unknown reduce kinds; treat as a
		// job with no output rather than crash the simulation.
		out = &reduceOutcome{}
	}
	dur := e.Cost.TaskStartupUs +
		e.Cost.ReduceRecordUs*(out.recordsIn+out.recordsOut) +
		e.Cost.ShuffleRecordUs*out.recordsIn +
		e.Cost.DigestRecordUs*out.digested
	commit := func() {
		e.Metrics.ReduceTasks++
		e.Metrics.LocalBytesRead += localBytes
		e.Metrics.DigestRecords += out.digested
		e.Metrics.RecordsOut += out.recordsOut
		e.writeOutput(js, partFileName(ReduceTask, 0, t.Index), out.outLines)
		js.redsDone++
		if js.redsDone == js.redsTotal {
			e.completeJob(js)
		}
	}
	return dur, commit
}

// writeOutput persists task output and accounts the HDFS write.
func (e *Engine) writeOutput(js *JobState, part string, lines []string) {
	path := joinPath(js.Spec.Output, part)
	e.FS.Append(path, lines...)
	e.Metrics.HDFSBytesWritten += linesBytes(lines)
}

// completeJob finishes a job and unblocks dependents.
func (e *Engine) completeJob(js *JobState) {
	js.Done = true
	js.DoneTime = e.now
	// Release any attempts still occupying slots (hung originals whose
	// work was rescued by a backup).
	for tid, rts := range js.running {
		for _, rt := range rts {
			rt.dead = true
			e.freeSlots[rt.node]++
		}
		delete(js.running, tid)
	}
	e.Metrics.JobsCompleted++
	for _, dep := range js.dependents {
		dep.depsLeft--
		if dep.depsLeft == 0 {
			e.makeRunnable(dep)
		}
	}
	if e.OnJobDone != nil {
		e.OnJobDone(js)
	}
}

// KillJob aborts a job: running tasks are torn down (their slots free
// immediately, matching Hadoop's task kill), queued tasks are dropped,
// and its output so far is left in place for inspection.
func (e *Engine) KillJob(id string) {
	js := e.jobs[id]
	if js == nil || js.Done || js.Killed {
		return
	}
	js.Killed = true
	for tid, rts := range js.running {
		for _, rt := range rts {
			rt.dead = true
			e.freeSlots[rt.node]++
		}
		delete(js.running, tid)
	}
	var keep []*Task
	for _, t := range e.ready {
		if t.Job != js {
			keep = append(keep, t)
		}
	}
	e.ready = keep
	e.armTick()
}

// Run processes events until the queue drains. Jobs hung on omission
// faults leave the queue empty with jobs incomplete — callers arm
// timeouts via After to regain control (the verifier does, §4.2 step 6).
func (e *Engine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// FreeSlotsTotal sums currently free task slots across the cluster; when
// the engine is idle it must equal the cluster's total capacity (an
// invariant the tests check under faults, kills and speculation).
func (e *Engine) FreeSlotsTotal() int {
	total := 0
	for _, n := range e.Cluster.Nodes() {
		total += e.freeSlots[n.ID]
	}
	return total
}

// Idle reports whether no job is runnable, running, or pending.
func (e *Engine) Idle() bool {
	for _, js := range e.jobs {
		if !js.Done && !js.Killed {
			return false
		}
	}
	return true
}
