package clusterbft_test

import (
	"strings"
	"testing"

	clusterbft "clusterbft"
	"clusterbft/internal/workload"
)

func newSystem(t *testing.T, cfg clusterbft.Config) *clusterbft.System {
	t.Helper()
	sys := clusterbft.New(16, 3, cfg)
	sys.LoadData(workload.TwitterPath, workload.Twitter(5_000, 300, 1)...)
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := newSystem(t, clusterbft.DefaultConfig())
	res, err := sys.Run(workload.FollowerScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	out, err := sys.Output(res, "out/twitter/followers")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty output")
	}
	for _, l := range out[:3] {
		if !strings.Contains(l, "\t") {
			t.Errorf("malformed record %q", l)
		}
	}
	if sys.VirtualNow() <= 0 {
		t.Error("virtual clock did not advance")
	}
	if sys.EngineMetrics().JobsCompleted == 0 {
		t.Error("no jobs recorded")
	}
}

func TestSystemFaultInjectionAndSuspicion(t *testing.T) {
	cfg := clusterbft.DefaultConfig()
	cfg.SuspicionThreshold = 0.5
	sys := newSystem(t, cfg)
	if err := sys.InjectFault("node-002", clusterbft.FaultCommission, 1.0, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectFault("node-999", clusterbft.FaultCommission, 1.0, 7); err == nil {
		t.Error("unknown node should error")
	}
	var detected bool
	for i := 0; i < 3 && !detected; i++ {
		res, err := sys.Run(workload.FollowerScript)
		if err != nil {
			t.Fatal(err)
		}
		detected = res.FaultyReplicas > 0
	}
	if !detected {
		t.Fatal("fault never detected over three runs")
	}
	if sys.Suspicion("node-002") == 0 {
		t.Error("suspicion did not rise")
	}
	if len(sys.Suspects()) == 0 {
		t.Error("no suspects")
	}
}

func TestSystemRunPlainBaseline(t *testing.T) {
	sys := newSystem(t, clusterbft.DefaultConfig())
	lat, err := sys.RunPlain(workload.FollowerScript)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("latency = %d", lat)
	}
}

func TestSystemOutputUnknownStore(t *testing.T) {
	sys := newSystem(t, clusterbft.DefaultConfig())
	res, err := sys.Run(workload.FollowerScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Output(res, "out/ghost"); err == nil {
		t.Error("unknown store should error")
	}
}
