package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clusterbft/internal/bft"
	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/tuple"
)

// Injector binds one Schedule onto the per-layer injection hooks. All
// decisions are pure functions of (event salt, site identity), so a run
// under the same schedule replays identically regardless of worker-pool
// interleaving; the only mutable state is the record of which replica
// namespaces had data mangled, kept for fault-attribution checks.
type Injector struct {
	Sched *Schedule

	mu      sync.Mutex
	mangled map[string]bool // "sid/r<idx>" whose stored/read data was tampered

	corrupts map[cluster.NodeID]func(tuple.Tuple) tuple.Tuple
	netSeq   uint64
}

// NewInjector prepares an injector for one schedule. Attach it to each
// layer the run uses; layers without matching events are left untouched
// (their hooks stay nil and cost nothing).
func NewInjector(s *Schedule) *Injector {
	in := &Injector{
		Sched:    s,
		mangled:  make(map[string]bool),
		corrupts: make(map[cluster.NodeID]func(tuple.Tuple) tuple.Tuple),
	}
	for _, ev := range s.Events {
		if ev.Kind == Commission {
			in.corrupts[ev.Node] = saltedCorrupt(ev.Node, ev.Salt)
		}
	}
	return in
}

// AttachEngine wires task faults, storage mangling and crash/rejoin pairs
// into an engine that has not started running yet.
func (in *Injector) AttachEngine(eng *mapred.Engine) {
	var taskEvents, storeEvents []Event
	for _, ev := range in.Sched.Events {
		switch ev.Kind {
		case Straggler, HangTask, Commission:
			taskEvents = append(taskEvents, ev)
		case MangleRead, MangleWrite, TruncateWrite:
			storeEvents = append(storeEvents, ev)
		case CrashRejoin:
			ev := ev
			eng.After(ev.AtUs, func() { eng.CrashNode(ev.Node) })
			eng.After(ev.AtUs+ev.DownUs, func() { eng.RejoinNode(ev.Node) })
		}
	}
	if len(taskEvents) > 0 {
		eng.TaskHook = in.taskHook(taskEvents)
	}
	if len(storeEvents) > 0 {
		in.attachFS(eng, eng.FS, storeEvents)
	}
}

// taskHook draws the fault overlay for one dispatched attempt. The draw
// site is the engine job ID plus the task ID — both replica- and
// attempt-scoped — so each attempt of each replica rolls independently,
// and a relaunched attempt is not doomed to repeat its predecessor's
// hang.
func (in *Injector) taskHook(events []Event) func(cluster.NodeID, *mapred.Task) mapred.TaskFault {
	return func(node cluster.NodeID, t *mapred.Task) mapred.TaskFault {
		var f mapred.TaskFault
		for _, ev := range events {
			if ev.Node != node {
				continue
			}
			switch ev.Kind {
			case Straggler:
				if ev.Slow > f.SlowFactor {
					f.SlowFactor = ev.Slow
				}
			case HangTask:
				if det(ev.Salt, t.Job.Spec.ID+"/"+t.ID()) < ev.Prob {
					f.Hang = true
				}
			case Commission:
				if f.Corrupt == nil && det(ev.Salt, t.Job.Spec.ID+"/"+t.ID()) < ev.Prob {
					f.Corrupt = in.corrupts[node]
				}
			}
		}
		return f
	}
}

// attachFS wires read/write mangling. Only intra-replica intermediates —
// outputs whose producing job has same-replica consumers — are eligible:
// their corruption surfaces in the consumer's digests and is pinned to
// one replica. Mangling a raw input would hit every replica identically
// (undetectable collusion), and mangling a verification-boundary output
// after its digests were taken would model a broken trusted store, which
// the paper assumes away.
func (in *Injector) attachFS(eng *mapred.Engine, fs *dfs.FS, events []Event) {
	var readEvents, writeEvents []Event
	for _, ev := range events {
		if ev.Kind == MangleRead {
			readEvents = append(readEvents, ev)
		} else {
			writeEvents = append(writeEvents, ev)
		}
	}
	apply := func(events []Event, path string, lines []string) []string {
		repIdx, repKey, ok := replicaOf(path)
		if !ok || len(lines) == 0 {
			return lines
		}
		for _, ev := range events {
			if repIdx != ev.Replica || det(ev.Salt, path) >= ev.Prob {
				continue
			}
			if !eligible(eng, path) {
				continue
			}
			switch ev.Kind {
			case TruncateWrite:
				lines = lines[:len(lines)-1]
			default: // MangleRead, MangleWrite
				// Append a tampered duplicate of the first record, tagged
				// with the replica so two mangled streams are never equal.
				tampered := append([]string(nil), lines...)
				tampered = append(tampered, lines[0]+"\x00"+repKey)
				lines = tampered
			}
			in.mu.Lock()
			in.mangled[repKey] = true
			in.mu.Unlock()
			if len(lines) == 0 {
				break
			}
		}
		return lines
	}
	if len(writeEvents) > 0 {
		fs.WriteHook = func(path string, lines []string) []string {
			return apply(writeEvents, path, lines)
		}
	}
	if len(readEvents) > 0 {
		fs.ReadHook = func(path string, lines []string) []string {
			return apply(readEvents, path, lines)
		}
	}
}

// replicaOf parses the attempt-scoped namespace "x/<sid>/r<idx>/..." and
// returns the replica index plus the "sid/r<idx>" attribution key.
func replicaOf(path string) (int, string, bool) {
	parts := strings.SplitN(path, "/", 4)
	if len(parts) < 4 || parts[0] != "x" || len(parts[2]) < 2 || parts[2][0] != 'r' {
		return 0, "", false
	}
	idx, err := strconv.Atoi(parts[2][1:])
	if err != nil {
		return 0, "", false
	}
	return idx, parts[1] + "/" + parts[2], true
}

// eligible reports whether the path belongs to an output with
// same-replica dependents. Part-file paths resolve through their parent
// directory; tree reads pass the directory itself.
func eligible(eng *mapred.Engine, path string) bool {
	dir := path
	if i := strings.LastIndexByte(path, '/'); i > 0 && strings.HasPrefix(path[i+1:], "part-") {
		dir = path[:i]
	}
	js := eng.JobByOutput(dir)
	return js != nil && js.HasDependents()
}

// MangledReplicas returns the sorted "sid/r<idx>" keys whose data this
// injector tampered — the ground truth a campaign checks fault
// attribution against.
func (in *Injector) MangledReplicas() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.mangled))
	for k := range in.mangled {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WasMangled reports whether the replica behind the "sid/r<idx>" key had
// its stored or read data tampered.
func (in *Injector) WasMangled(key string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.mangled[key]
}

// AttachNetwork wires message perturbation for the schedule's net events
// into a BFT bus. Each message touching a victim replica draws once per
// matching event from a sequence counter — deterministic because the bus
// runs on a single driving goroutine in virtual time.
func (in *Injector) AttachNetwork(net *bft.Network) {
	var events []Event
	for _, ev := range in.Sched.Events {
		switch ev.Kind {
		case NetDrop, NetDup, NetDelay:
			events = append(events, ev)
		}
	}
	if len(events) == 0 {
		return
	}
	net.Perturb = func(from, to bft.ID, _ bft.Message) bft.Perturbation {
		var p bft.Perturbation
		for _, ev := range events {
			victim := bft.ReplicaID(ev.Replica)
			if from != victim && to != victim {
				continue
			}
			in.netSeq++
			if det(ev.Salt, strconv.FormatUint(in.netSeq, 10)) >= ev.Prob {
				continue
			}
			switch ev.Kind {
			case NetDrop:
				p.Drop = true
			case NetDup:
				p.Dup++
			case NetDelay:
				p.ExtraDelayUs += 5_000
			}
		}
		return p
	}
}

// saltedCorrupt builds a commission fault distinct per victim node: two
// commission-faulty nodes must never produce byte-identical corruption,
// or their replicas could assemble an accidental f+1 agreement the
// verifier has no way to reject. The numeric delta draws from the full
// hash width — an earlier %5 draw collided between nodes one time in
// five, and on all-integer tuples (no string field to carry the node
// tag) two victims then corrupted byte-identically, formed a false f+1
// and got the honest replica blamed.
func saltedCorrupt(node cluster.NodeID, salt uint64) func(tuple.Tuple) tuple.Tuple {
	delta := int64(det64(salt, string(node))%1_000_000_007) + 1
	tag := fmt.Sprintf("\x00%s", node)
	return func(t tuple.Tuple) tuple.Tuple {
		out := make(tuple.Tuple, len(t))
		for i, v := range t {
			switch v.Kind() {
			case tuple.KindInt:
				out[i] = tuple.Int(v.Int() + delta)
			case tuple.KindFloat:
				out[i] = tuple.Float(v.Float() + float64(delta))
			case tuple.KindString:
				out[i] = tuple.Str(v.Str() + tag)
			default:
				out[i] = v
			}
		}
		return out
	}
}
