package bft

import (
	"testing"
)

// TestViewChangeAfterPartialProgress is the regression test for the
// new-view sequence-numbering bug: when a slot's pre-prepare was seen
// but the round stalled before execution (here: every view-0 prepare is
// lost), the new primary must re-propose starting right after the last
// EXECUTED sequence. The pre-fix code restarted after the highest
// PROPOSED sequence, leaving a permanent hole below the re-proposals —
// installView purges unexecuted slots, the in-order execution loop can
// never cross the hole, and the group live-locks through endless view
// changes with the request pending forever.
func TestViewChangeAfterPartialProgress(t *testing.T) {
	g, sms := newGroup(1)
	g.Net.Drop = func(from, to ID, msg Message) bool {
		p, ok := msg.(Prepare)
		return ok && p.View == 0
	}
	res, _, err := g.Invoke([]byte("held-op"))
	if err != nil {
		t.Fatalf("view change after a stalled round did not recover: %v", err)
	}
	if string(res) != "1:held-op" {
		t.Errorf("result = %q, want %q", res, "1:held-op")
	}
	for i, r := range g.Replicas {
		if r.View() == 0 {
			t.Errorf("replica %d still in view 0; the stall never triggered a view change", i)
		}
	}
	// Progress must continue in the new view.
	res, _, err = g.Invoke([]byte("next-op"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "2:next-op" {
		t.Errorf("second result = %q", res)
	}
	for i, sm := range sms {
		if len(sm.ops) > 0 && sm.ops[0] != "held-op" {
			t.Errorf("replica %d executed %q first, want held-op", i, sm.ops[0])
		}
	}
}
