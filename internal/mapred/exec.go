package mapred

import (
	"fmt"
	"slices"
	"strings"

	"clusterbft/internal/digest"
	"clusterbft/internal/obs"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// interRec is one shuffled record: its extracted key (canonical string
// for partitioning/grouping plus decoded values for key expressions), the
// join tag, and the payload tuple.
type interRec struct {
	keyStr string
	key    tuple.Tuple
	tag    int
	t      tuple.Tuple
	encLen int // len(EncodeLine(t)), fixed at record creation
}

// bytes estimates the serialized size of the record for local-I/O
// accounting (key + payload + framing).
func (r interRec) bytes() int64 {
	return int64(len(r.keyStr)) + int64(r.encLen) + 2
}

// digestFactory builds the digest writer for one verification point of
// the running task; nil disables digests.
type digestFactory func(point int) *digest.Writer

// opChain executes a physical operator chain over a tuple stream,
// feeding PhysDigest points into their writers.
type opChain struct {
	ops     []Op
	writers []*digest.Writer // parallel to ops; non-nil only for digests
	passed  []int64          // parallel to ops; PhysLimit counters
	digests int64            // records folded into digest writers
	scratch []byte           // reusable canonical-encode buffer (sampling)
}

func newOpChain(ops []Op, df digestFactory) *opChain {
	c := &opChain{
		ops:     ops,
		writers: make([]*digest.Writer, len(ops)),
		passed:  make([]int64, len(ops)),
	}
	if df != nil {
		for i, op := range ops {
			if op.Kind == PhysDigest {
				c.writers[i] = df(op.Point)
			}
		}
	}
	return c
}

// apply runs one tuple through the chain; ok is false when the tuple was
// dropped (filter miss or limit exhausted).
func (c *opChain) apply(t tuple.Tuple) (tuple.Tuple, bool) {
	for i, op := range c.ops {
		switch op.Kind {
		case PhysFilter:
			if !op.Pred.Eval(t).Truthy() {
				return nil, false
			}
		case PhysProject:
			out := make(tuple.Tuple, len(op.Gens))
			for g, gen := range op.Gens {
				out[g] = gen.Expr.Eval(t)
			}
			t = out
		case PhysDigest:
			if c.writers[i] != nil {
				c.writers[i].Add(t)
				c.digests++
			}
		case PhysLimit:
			if c.passed[i] >= op.Limit {
				return nil, false
			}
			c.passed[i]++
		case PhysSample:
			c.scratch = tuple.AppendCanonical(c.scratch[:0], t)
			if !sampleKeepHash(c.scratch, op.Fraction) {
				return nil, false
			}
		}
	}
	return t, true
}

// close finalizes all digest writers in the chain.
func (c *opChain) close() {
	for _, w := range c.writers {
		if w != nil {
			w.Close()
		}
	}
}

// sampleKeep deterministically selects a fraction of tuples by hashing
// their canonical bytes, so every replica samples the same subset and
// digests stay comparable (§5.4 determinism requirement). fraction is
// clamped to [0, 1]: it is client input, and converting a negative
// float to uint64 yields a platform-dependent value in Go (the spec
// leaves out-of-range float→integer conversions implementation-defined)
// rather than the "keep nothing" a negative fraction means.
func sampleKeep(t tuple.Tuple, fraction float64) bool {
	return sampleKeepHash(tuple.AppendCanonical(nil, t), fraction)
}

// FNV-1a parameters, inlined so the hot path hashes without the
// heap-allocated hash.Hash of hash/fnv. The loops below fold bytes
// exactly as fnv.New64a/New32a do (xor then multiply), so every hash
// value — and with it sampling subsets and shuffle placement — is
// unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// sampleKeepHash is sampleKeep over pre-encoded canonical bytes; callers
// on the per-record path reuse one scratch buffer for the encoding.
func sampleKeepHash(canon []byte, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := uint64(fnvOffset64)
	for _, b := range canon {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	const buckets = 1 << 20
	return h%buckets < uint64(fraction*buckets)
}

// partitionOf hash-partitions a shuffle key string (inline FNV-1a over
// the string bytes; no []byte copy).
func partitionOf(keyStr string, numReduces int) int {
	if numReduces <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(keyStr); i++ {
		h ^= uint32(keyStr[i])
		h *= fnvPrime32
	}
	return int(h % uint32(numReduces))
}

// extractKey projects the shuffle key out of a post-chain tuple,
// encoding the canonical key string through the caller's scratch buffer
// (returned possibly grown).
func extractKey(t tuple.Tuple, keyCols []int, scratch []byte) (string, tuple.Tuple, []byte) {
	key := make(tuple.Tuple, len(keyCols))
	for i, c := range keyCols {
		if c < len(t) {
			key[i] = t[c]
		} else {
			key[i] = tuple.Null()
		}
	}
	scratch = tuple.AppendEncoded(scratch[:0], key)
	return string(scratch), key, scratch
}

// taskObs carries optional observability counters into task bodies.
// The zero value disables everything: nil counters no-op, so honest hot
// paths pay a predictable nil check and zero allocations either way
// (pinned by the alloc tests).
type taskObs struct {
	mapRecords     *obs.Counter // records read by map tasks
	reduceRecords  *obs.Counter // records entering reduce tasks
	shuffleRecords *obs.Counter // records written into shuffle partitions
	outRecords     *obs.Counter // records emitted to task output
}

// mapOutcome carries the effects of one executed map task.
type mapOutcome struct {
	partitions [][]interRec // shuffle jobs: per-reduce-partition records
	outLines   []string     // map-only jobs: final output records
	recordsIn  int64
	recordsOut int64
	digested   int64
	localBytes int64 // shuffle bytes written
}

// corruptFn tampers tuples at the task source; nil for honest execution.
type corruptFn func(tuple.Tuple) tuple.Tuple

// runMapTask executes one map task over its split's raw lines.
func runMapTask(job *JobSpec, inputIdx int, lines []string, df digestFactory, corrupt corruptFn, o taskObs) *mapOutcome {
	in := &job.Inputs[inputIdx]
	chain := newOpChain(in.Ops, df)
	defer chain.close()
	out := &mapOutcome{}
	shuffle := in.KeyCols != nil
	if shuffle {
		out.partitions = make([][]interRec, job.NumReduces)
		per := len(lines)/job.NumReduces + 1
		for p := range out.partitions {
			out.partitions[p] = make([]interRec, 0, per)
		}
	}
	var scratch []byte // per-task encode buffer, reused across records
	for _, line := range lines {
		t := tuple.DecodeLine(line, in.Schema)
		out.recordsIn++
		o.mapRecords.Inc()
		if corrupt != nil {
			t = corrupt(t)
		}
		t, ok := chain.apply(t)
		if !ok {
			continue
		}
		out.recordsOut++
		if shuffle {
			var keyStr string
			var key tuple.Tuple
			keyStr, key, scratch = extractKey(t, in.KeyCols, scratch)
			rec := interRec{keyStr: keyStr, key: key, tag: in.Tag, t: t, encLen: tuple.EncodedLen(t)}
			p := partitionOf(keyStr, job.NumReduces)
			out.partitions[p] = append(out.partitions[p], rec)
			out.localBytes += rec.bytes()
		} else {
			scratch = tuple.AppendEncoded(scratch[:0], t)
			out.outLines = append(out.outLines, string(scratch))
		}
	}
	out.digested = chain.digests
	if shuffle {
		o.shuffleRecords.Add(out.recordsOut)
	} else {
		o.outRecords.Add(out.recordsOut)
	}
	return out
}

// reduceOutcome carries the effects of one executed reduce task.
type reduceOutcome struct {
	outLines   []string
	recordsIn  int64
	recordsOut int64
	digested   int64
}

// runReduceTask executes one reduce task over its partition's records,
// which the caller supplies in deterministic map-task order (the engine's
// stand-in for the paper's §5.4 "order intermediate output by mapper id"
// determinism fix). Grouping kinds sort an index permutation by
// (keyStr, arrival) and walk equal-key runs: keys are visited in sorted
// order with values in arrival order, exactly the emission order the
// old map+sort.Strings grouping produced, but with no map churn and no
// moves of the records themselves (an in-place stable sort of the
// pointer-heavy interRec spends most of its time in write barriers).
func runReduceTask(spec *ReduceSpec, records []interRec, df digestFactory, o taskObs) (*reduceOutcome, error) {
	chain := newOpChain(spec.PostOps, df)
	defer chain.close()
	out := &reduceOutcome{recordsIn: int64(len(records))}
	o.reduceRecords.Add(out.recordsIn)
	var scratch []byte // per-task encode buffer, reused across emits
	emit := func(t tuple.Tuple) {
		if t, ok := chain.apply(t); ok {
			out.recordsOut++
			scratch = tuple.AppendEncoded(scratch[:0], t)
			out.outLines = append(out.outLines, string(scratch))
		}
	}

	switch spec.Kind {
	case ReduceSort:
		idx := identityOrder(len(records))
		if len(spec.OrderBy) > 0 {
			slices.SortFunc(idx, func(a, b int32) int {
				if c := orderCmp(records[a].t, records[b].t, spec.OrderBy); c != 0 {
					return c
				}
				return int(a - b) // arrival tie-break = stable sort
			})
		}
		for _, i := range idx {
			emit(records[i].t)
		}
	case ReduceDistinct:
		forEachGroup(records, keyOrder(records), func(group []int32) {
			emit(records[group[0]].t) // first arrival of each key, keys sorted
		})
	case ReduceAggregate:
		forEachGroup(records, keyOrder(records), func(group []int32) {
			emit(aggregateGroup(spec.Gens, records, group))
		})
	case ReduceJoin:
		forEachGroup(records, keyOrder(records), func(group []int32) {
			// Split by tag; arrival order within each side is preserved
			// by the key sort's arrival tie-break.
			left := 0
			for _, i := range group {
				if records[i].tag == 0 {
					left++
				}
			}
			sides := make([]tuple.Tuple, len(group))
			l, r := 0, left
			for _, i := range group {
				if records[i].tag == 0 {
					sides[l] = records[i].t
					l++
				} else {
					sides[r] = records[i].t
					r++
				}
			}
			for _, lt := range sides[:left] {
				for _, rt := range sides[left:] {
					emit(tuple.Concat(lt, rt))
				}
			}
		})
	default:
		return nil, fmt.Errorf("mapred: unknown reduce kind %v", spec.Kind)
	}
	out.digested = chain.digests
	o.outRecords.Add(out.recordsOut)
	return out, nil
}

func identityOrder(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// keyOrder returns the permutation of records' indices ordered by
// (keyStr, arrival) — the stable-by-key order (§5.4) — while the
// records stay put.
func keyOrder(records []interRec) []int32 {
	idx := identityOrder(len(records))
	slices.SortFunc(idx, func(a, b int32) int {
		if c := strings.Compare(records[a].keyStr, records[b].keyStr); c != 0 {
			return c
		}
		return int(a - b) // arrival tie-break = stable sort
	})
	return idx
}

// forEachGroup walks maximal equal-key runs of the key-sorted
// permutation idx. Group slices alias idx and are only valid for the
// call.
func forEachGroup(records []interRec, idx []int32, fn func(group []int32)) {
	for start := 0; start < len(idx); {
		key := records[idx[start]].keyStr
		end := start + 1
		for end < len(idx) && records[idx[end]].keyStr == key {
			end++
		}
		fn(idx[start:end])
		start = end
	}
}

// orderCmp compares two tuples under an ORDER BY key list, three-way.
func orderCmp(a, b tuple.Tuple, keys []pig.OrderKey) int {
	for _, k := range keys {
		var av, bv tuple.Value
		if k.Col < len(a) {
			av = a[k.Col]
		}
		if k.Col < len(b) {
			bv = b[k.Col]
		}
		c := tuple.Compare(av, bv)
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// aggregateGroup evaluates one grouped FOREACH row: key expressions over
// the group key, aggregates over the bag (group indexes records).
func aggregateGroup(gens []pig.GenItem, records []interRec, group []int32) tuple.Tuple {
	key := records[group[0]].key
	out := make(tuple.Tuple, len(gens))
	for i, gen := range gens {
		if gen.Agg == nil {
			out[i] = gen.Expr.Eval(key)
			continue
		}
		out[i] = applyAggregate(gen.Agg, records, group)
	}
	return out
}

func applyAggregate(agg *pig.Aggregate, records []interRec, group []int32) tuple.Value {
	switch agg.Func {
	case "count":
		return tuple.Int(int64(len(group)))
	case "sum", "avg":
		sum := tuple.Int(0)
		for _, i := range group {
			sum = tuple.Add(sum, colOf(records[i].t, agg.ColIdx))
		}
		if agg.Func == "sum" {
			return sum
		}
		// AVG uses the same integer-division determinism workaround as
		// the paper's prototype (§5.4) when operands are integral.
		return tuple.Div(sum, tuple.Int(int64(len(group))))
	case "min", "max":
		best := colOf(records[group[0]].t, agg.ColIdx)
		for _, i := range group[1:] {
			v := colOf(records[i].t, agg.ColIdx)
			c := tuple.Compare(v, best)
			if (agg.Func == "min" && c < 0) || (agg.Func == "max" && c > 0) {
				best = v
			}
		}
		return best
	default:
		return tuple.Null()
	}
}

func colOf(t tuple.Tuple, idx int) tuple.Value {
	if idx >= 0 && idx < len(t) {
		return t[idx]
	}
	return tuple.Null()
}

// linesBytes sums serialized record sizes (records + newlines).
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}

// splitLines partitions a record count into deterministic contiguous
// splits of at most per records; n==0 yields one empty split so that
// empty inputs still produce a (digest-reporting) task.
func splitLines(n, per int) [][2]int {
	if per <= 0 {
		per = 10000
	}
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// joinPartitionName keeps part-file names sortable and unique per task.
func partFileName(kind TaskKind, inputIdx, index int) string {
	if kind == MapTask {
		return fmt.Sprintf("part-m-%d-%05d", inputIdx, index)
	}
	return fmt.Sprintf("part-r-%05d", index)
}

// cleanPath normalizes a DFS path for prefix joins.
func joinPath(prefix, p string) string {
	if prefix == "" {
		return p
	}
	return strings.TrimSuffix(prefix, "/") + "/" + strings.TrimPrefix(p, "/")
}
