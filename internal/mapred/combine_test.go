package mapred

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"

	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// TestCompileMarksCombine pins which compiled jobs carry the combiner
// flag: algebraic grouped aggregates and DISTINCT combine, float-typed
// SUM/AVG and sorts don't, and DisableCombine turns everything off.
func TestCompileMarksCombine(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []bool // per compiled job with a Reduce spec, in job order
		opts CompileOptions
	}{
		{name: "count-int-key", src: followerSrc, want: []bool{true}},
		{name: "count-disabled", src: followerSrc, want: []bool{false},
			opts: CompileOptions{DisableCombine: true}},
		{name: "avg-int", src: `
a = LOAD 'in/w' AS (st, temp:int);
g = GROUP a BY st;
r = FOREACH g GENERATE group AS st, AVG(a.temp) AS t;
STORE r INTO 'out/r';
`, want: []bool{true}},
		{name: "avg-untyped", src: `
a = LOAD 'in/w' AS (st, temp);
g = GROUP a BY st;
r = FOREACH g GENERATE group AS st, AVG(a.temp) AS t;
STORE r INTO 'out/r';
`, want: []bool{false}},
		{name: "min-max-any-type", src: `
a = LOAD 'in/w' AS (st, temp);
g = GROUP a BY st;
r = FOREACH g GENERATE group AS st, MIN(a.temp), MAX(a.temp), COUNT(a);
STORE r INTO 'out/r';
`, want: []bool{true}},
		{name: "mixed-one-inalgebraic", src: `
a = LOAD 'in/w' AS (st, temp);
g = GROUP a BY st;
r = FOREACH g GENERATE group AS st, MIN(a.temp), SUM(a.temp);
STORE r INTO 'out/r';
`, want: []bool{false}},
		{name: "distinct", src: `
a = LOAD 'in/w' AS (st, temp:int);
d = DISTINCT a;
STORE d INTO 'out/d';
`, want: []bool{true}},
		{name: "order", src: `
a = LOAD 'in/w' AS (st, temp:int);
o = ORDER a BY temp;
STORE o INTO 'out/o';
`, want: []bool{false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs, err := compileHelper(tc.src, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			var got []bool
			for _, j := range jobs {
				if j.Reduce != nil {
					got = append(got, j.Reduce.Combine)
				}
			}
			if !slices.Equal(got, tc.want) {
				t.Errorf("combine flags = %v, want %v", got, tc.want)
			}
		})
	}
}

// equivalenceScripts are grouped-aggregate / DISTINCT workloads whose
// observables must not depend on the combiner setting. Aliases name the
// verification points to instrument.
var equivalenceScripts = []struct {
	name    string
	src     string
	aliases []string
	stores  []string
}{
	{name: "follower-count", src: followerSrc,
		aliases: []string{"ne", "counts"}, stores: []string{"out/counts"}},
	{name: "all-aggregates-int", src: `
w = LOAD 'in/weather' AS (st, temp:int);
g = GROUP w BY st;
r = FOREACH g GENERATE group AS st, COUNT(w) AS n, SUM(w.temp), AVG(w.temp), MIN(w.temp), MAX(w.temp);
STORE r INTO 'out/agg';
`, aliases: []string{"r"}, stores: []string{"out/agg"}},
	{name: "group-all", src: `
w = LOAD 'in/weather' AS (st, temp:int);
g = GROUP w ALL;
r = FOREACH g GENERATE COUNT(w) AS n, AVG(w.temp) AS t;
STORE r INTO 'out/all';
`, aliases: []string{"r"}, stores: []string{"out/all"}},
	{name: "distinct", src: `
w = LOAD 'in/weather' AS (st, temp:int);
d = DISTINCT w;
STORE d INTO 'out/d';
`, aliases: []string{"d"}, stores: []string{"out/d"}},
	{name: "avg-untyped-not-combined", src: `
w = LOAD 'in/weather' AS (st, temp);
g = GROUP w BY st;
r = FOREACH g GENERATE group AS st, AVG(w.temp) AS t;
STORE r INTO 'out/u';
`, aliases: []string{"r"}, stores: []string{"out/u"}},
	{name: "chained-groups", src: `
w = LOAD 'in/weather' AS (st, temp:int);
g = GROUP w BY st;
c = FOREACH g GENERATE group AS st, COUNT(w) AS n;
g2 = GROUP c BY n;
c2 = FOREACH g2 GENERATE group AS n, COUNT(c) AS stations;
STORE c2 INTO 'out/chain';
`, aliases: []string{"c", "c2"}, stores: []string{"out/chain"}},
}

// observables renders everything a verifier or consumer can see — the
// digest-report multiset and the raw bytes of every STORE tree. Report
// ordering is normalized by the fully qualifying (key, replica) sort:
// combining changes task durations, so interleaving across tasks may
// legitimately differ while the set of reports may not.
func observables(t *testing.T, tr *testRun, stores []string) string {
	t.Helper()
	lines := make([]string, 0, len(tr.reports))
	for _, r := range tr.reports {
		lines = append(lines, fmt.Sprintf("%s replica=%d final=%v records=%d sum=%s",
			r.Key.String(), r.Replica, r.Final, r.Records, hex.EncodeToString(r.Sum[:])))
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, store := range stores {
		out, err := tr.fs.ReadTree(store)
		if err != nil {
			t.Fatalf("read %s: %v", store, err)
		}
		fmt.Fprintf(&b, "## %s\n", store)
		for _, l := range out {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func weatherLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		// Skewed stations, negative and positive temperatures, a few
		// repeated rows for DISTINCT to collapse.
		lines[i] = fmt.Sprintf("st-%d\t%d", i%13, (i*37+11)%201-100)
	}
	return lines
}

// TestCombineOnOffEquivalence is the contract the whole design rests
// on: for every workload, STORE bytes (in part-file order) and the
// digest-report multiset are byte-identical with the combiner on and
// off.
func TestCombineOnOffEquivalence(t *testing.T) {
	edgeLines := make([]string, 400)
	for i := range edgeLines {
		edgeLines[i] = fmt.Sprintf("%d\t%d", i%23, (i*31+7)%40) // some zero followers
	}
	inputs := map[string][]string{
		"in/edges":   edgeLines,
		"in/weather": weatherLines(400),
	}
	for _, sc := range equivalenceScripts {
		t.Run(sc.name, func(t *testing.T) {
			p := plan(t, sc.src)
			points := digestPoints(t, p, sc.aliases...)
			var got [2]string
			for i, disable := range []bool{false, true} {
				opts := CompileOptions{Points: points, NumReduces: 3, DisableCombine: disable}
				tr := run(t, sc.src, inputs, opts, func(e *Engine) { e.DigestChunk = 50 })
				got[i] = observables(t, tr, sc.stores)
			}
			if got[0] != got[1] {
				t.Errorf("observables differ between combine on and off:\n--- on ---\n%s--- off ---\n%s",
					got[0], got[1])
			}
		})
	}
}

// TestMapTaskCombineOutcome checks the combiner's accounting: every
// surviving record is folded, the shuffle carries one partial per
// (partition, key), and each partition leaves the task key-sorted.
func TestMapTaskCombineOutcome(t *testing.T) {
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 4})
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	if !job.Reduce.Combine {
		t.Fatal("follower job not marked combinable")
	}
	lines := make([]string, 600)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%16, i+1) // 16 keys, no zero followers
	}
	out := runMapTask(job, 0, lines, nil, nil, taskObs{})
	if out.recordsOut != 600 || out.combinedIn != 600 {
		t.Errorf("recordsOut=%d combinedIn=%d, want 600/600", out.recordsOut, out.combinedIn)
	}
	if out.shuffleRecs != 16 {
		t.Errorf("shuffleRecs=%d, want 16 (one partial per key)", out.shuffleRecs)
	}
	total := 0
	for pi, part := range out.partitions {
		total += len(part)
		if !slices.IsSortedFunc(part, func(a, b interRec) int {
			return strings.Compare(a.keyStr, b.keyStr)
		}) {
			t.Error("partition not key-sorted")
		}
		for _, r := range part {
			if p := partitionOf(r.keyStr, job.NumReduces); p != pi {
				t.Errorf("key %q combined into partition %d, partitionOf says %d", r.keyStr, pi, p)
			}
		}
	}
	if total != 16 {
		t.Errorf("emitted records=%d, want 16", total)
	}
}

// TestPartitionOfBytesMatchesString: the byte and string variants of the
// partition hash must agree on every key, or combined and uncombined
// records of one key would land on different reduce tasks.
func TestPartitionOfBytesMatchesString(t *testing.T) {
	keys := []string{"", "a", "st-7", "12\t34", "\x00\xff", "longer-key-with-more-bytes"}
	for _, k := range keys {
		for _, n := range []int{1, 2, 3, 16} {
			if partitionOf(k, n) != partitionOfBytes([]byte(k), n) {
				t.Errorf("partition mismatch for %q n=%d", k, n)
			}
		}
	}
}

// TestMergeRunsMatchesReferenceSort: the loser-tree merge over sorted
// runs must emit exactly the (cmp, run, position) order a global stable
// sort of the tagged concatenation produces.
func TestMergeRunsMatchesReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(6)
		runs := make([][]interRec, k)
		type tagged struct {
			rec      interRec
			run, pos int
		}
		var all []tagged
		for r := range runs {
			n := rng.Intn(8)
			recs := make([]interRec, n)
			for i := range recs {
				recs[i] = interRec{keyStr: fmt.Sprintf("k%02d", rng.Intn(5))}
			}
			slices.SortStableFunc(recs, func(a, b interRec) int {
				return strings.Compare(a.keyStr, b.keyStr)
			})
			runs[r] = recs
			for i, rec := range recs {
				all = append(all, tagged{rec: rec, run: r, pos: i})
			}
		}
		slices.SortStableFunc(all, func(a, b tagged) int {
			if c := strings.Compare(a.rec.keyStr, b.rec.keyStr); c != 0 {
				return c
			}
			if c := a.run - b.run; c != 0 {
				return c
			}
			return a.pos - b.pos
		})
		var got []string
		cmp := func(a, b *interRec) int { return strings.Compare(a.keyStr, b.keyStr) }
		mergeRuns(runs, cmp, func(r *interRec) { got = append(got, r.keyStr) })
		want := make([]string, len(all))
		for i, a := range all {
			want[i] = a.rec.keyStr
		}
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: merge order %v, want %v (runs %v)", trial, got, want, runs)
		}
	}
}

// TestMergeRunsNilCmpConcatenates: a nil comparator (bare-LIMIT
// pass-through jobs) must emit runs whole, in run order.
func TestMergeRunsNilCmp(t *testing.T) {
	runs := [][]interRec{
		{{keyStr: "z"}, {keyStr: "a"}},
		{},
		{{keyStr: "m"}},
	}
	var got []string
	mergeRuns(runs, nil, func(r *interRec) { got = append(got, r.keyStr) })
	if want := []string{"z", "a", "m"}; !slices.Equal(got, want) {
		t.Errorf("nil-cmp merge = %v, want %v", got, want)
	}
}

// TestReduceMergeLeavesRunsIntact: reduce attempts share map outcomes,
// so the merge must never mutate runs (a backup attempt of the same
// task reads them concurrently).
func TestReduceMergeLeavesRunsIntact(t *testing.T) {
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 1})
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%7, i+1)
	}
	out := runMapTask(job, 0, lines, nil, nil, taskObs{})
	runs := [][]interRec{out.partitions[0]}
	before := make([]interRec, len(runs[0]))
	copy(before, runs[0])
	if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i].keyStr != runs[0][i].keyStr || !tuple.EqualTuples(before[i].t, runs[0][i].t) {
			t.Fatalf("run mutated at %d", i)
		}
	}
}

// TestMergeAggSingleFoldMatchesLegacy pins the single-code-path
// contract replacing the old per-group recompute: folding records one
// at a time through mergeAgg and finalizing must equal the direct
// whole-group computation for every aggregate.
func TestMergeAggSingleFold(t *testing.T) {
	vals := []int64{5, -3, 12, 0, 7, -3}
	cases := []struct {
		fn   string
		want tuple.Value
	}{
		{"count", tuple.Int(6)},
		{"sum", tuple.Int(18)},
		{"avg", tuple.Int(3)},
		{"min", tuple.Int(-3)},
		{"max", tuple.Int(12)},
	}
	for _, tc := range cases {
		agg := &pig.Aggregate{Func: tc.fn, ColIdx: 0}
		var whole aggAcc
		for _, v := range vals {
			mergeAgg(agg, &whole, 1, tuple.Int(v))
		}
		// Split the fold at every point and merge the two partials.
		for cut := 0; cut <= len(vals); cut++ {
			var a, b aggAcc
			for _, v := range vals[:cut] {
				mergeAgg(agg, &a, 1, tuple.Int(v))
			}
			for _, v := range vals[cut:] {
				mergeAgg(agg, &b, 1, tuple.Int(v))
			}
			var m aggAcc
			if a.n > 0 {
				mergeAgg(agg, &m, a.n, a.v)
			}
			if b.n > 0 {
				mergeAgg(agg, &m, b.n, b.v)
			}
			got := finalizeAgg(agg, m)
			if tuple.Compare(got, tc.want) != 0 || tuple.Compare(got, finalizeAgg(agg, whole)) != 0 {
				t.Errorf("%s cut=%d: merged=%v whole=%v want=%v",
					tc.fn, cut, got, finalizeAgg(agg, whole), tc.want)
			}
		}
	}
}
