package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the Prometheus text-exposition side of the registry: a
// deterministic encoder (WriteExposition) used by both the /metrics
// endpoint and the -metrics file dump, and a small validating parser
// (ParseExposition) used by tests and the CI smoke check so the
// encoder's output is machine-verified without external dependencies.

// promName sanitises a registry name into the Prometheus metric-name
// charset [a-zA-Z0-9_:]: dots (the registry's namespace separator) and
// every other invalid byte become underscores; a leading digit gains an
// underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline (double quotes are legal in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promType maps a registry kind to its exposition TYPE.
func promType(kind string) string {
	switch kind {
	case KindCounter:
		return "counter"
	case KindGauge, KindFunc:
		return "gauge"
	case KindHist:
		return "histogram"
	}
	return "untyped"
}

// promFamily is one exposition family: every series sharing a sanitised
// name. Mixed kinds under one sanitised name (possible when two raw
// names collide after sanitisation) degrade the family to untyped.
type promFamily struct {
	name    string // sanitised
	rawName string // first raw name seen, for HELP lookup
	typ     string
	series  []*series
}

// WriteExposition writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with optional
// # HELP and a # TYPE line, series within a family sorted by label
// suffix, histograms expanded into cumulative _bucket/_sum/_count.
// The output of a quiesced registry is deterministic byte-for-byte.
func (r *Registry) WriteExposition(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := r.sortedSeries()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	byName := make(map[string]*promFamily)
	var order []string
	for _, s := range all {
		name := promName(s.key.name)
		f := byName[name]
		if f == nil {
			f = &promFamily{name: name, rawName: s.key.name, typ: promType(s.key.kind)}
			byName[name] = f
			order = append(order, name)
		} else if f.typ != promType(s.key.kind) {
			f.typ = "untyped"
		}
		f.series = append(f.series, s)
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := byName[name]
		if h := help[f.rawName]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(h))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch s.key.kind {
			case KindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key.suffix, s.c.Value())
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key.suffix, s.g.Value())
			case KindFunc:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key.suffix, s.fn())
			case KindHist:
				writeHistSeries(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistSeries expands one histogram series into cumulative buckets
// plus _sum and _count, merging the le label into any existing suffix.
func writeHistSeries(w io.Writer, name string, s *series) {
	h := s.h
	var cum int64
	for i, b := range h.bounds {
		cum += h.BucketCount(i)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, histSuffix(s, strconv.FormatInt(b, 10)), cum)
	}
	cum += h.BucketCount(len(h.bounds))
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, histSuffix(s, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.key.suffix, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key.suffix, h.Count())
}

// histSuffix renders a histogram series' label suffix with le appended.
func histSuffix(s *series, le string) string {
	if s.key.suffix == "" {
		return `{le="` + le + `"}`
	}
	return s.key.suffix[:len(s.key.suffix)-1] + `,le="` + le + `"}`
}

// ExpositionStats summarises a parsed exposition document.
type ExpositionStats struct {
	Families int
	Series   int
}

// ParseExposition validates Prometheus text-exposition input: metric
// and label name syntax, label-value escaping, numeric sample values,
// TYPE correctness, family contiguity (all samples of a family follow
// its TYPE line before the next family starts) and duplicate series.
// It returns basic counts so callers can assert non-emptiness.
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	var st ExpositionStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := make(map[string]string) // family -> type
	seen := make(map[string]bool)    // full series key
	closed := make(map[string]bool)  // families whose block ended
	cur := ""                        // family of the current block
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return st, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return st, fmt.Errorf("line %d: TYPE needs a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := typed[name]; dup {
					return st, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if closed[name] {
					return st, fmt.Errorf("line %d: family %q reopened", lineNo, name)
				}
				typed[name] = fields[3]
				if cur != "" && cur != name {
					closed[cur] = true
				}
				cur = name
				st.Families++
			}
			continue
		}
		name, labels, rest, err := parseSampleLine(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := sampleFamily(name, typed)
		if fam != cur {
			if cur != "" {
				closed[cur] = true
			}
			if closed[fam] {
				return st, fmt.Errorf("line %d: family %q not contiguous", lineNo, fam)
			}
			cur = fam
			if _, ok := typed[fam]; !ok {
				st.Families++ // untyped family introduced by a bare sample
			}
		}
		key := name + labels
		if seen[key] {
			return st, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		st.Series++
		val := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 { // optional timestamp
			val = rest[:i]
			if _, err := strconv.ParseInt(strings.TrimSpace(rest[i+1:]), 10, 64); err != nil {
				return st, fmt.Errorf("line %d: bad timestamp %q", lineNo, rest[i+1:])
			}
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return st, fmt.Errorf("line %d: bad value %q", lineNo, val)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	return st, nil
}

// sampleFamily maps a sample name to its family, folding histogram and
// summary suffixes back onto a declared family name.
func sampleFamily(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSampleLine splits "name{labels} value [ts]" validating name and
// label syntax. It returns the name, the raw label suffix (canonical
// form, "" when absent) and the remainder after the series.
func parseSampleLine(line string) (name, labels, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		j, err := scanLabels(line, i)
		if err != nil {
			return "", "", "", err
		}
		labels = line[i:j]
		i = j
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", "", fmt.Errorf("missing value after %q", name)
	}
	return name, labels, line[i+1:], nil
}

// scanLabels validates the {k="v",...} block starting at open; it
// returns the index just past the closing brace.
func scanLabels(line string, open int) (int, error) {
	i := open + 1
	for {
		if i < len(line) && line[i] == '}' { // {} and trailing comma
			return i + 1, nil
		}
		start := i
		for i < len(line) && line[i] != '=' {
			i++
		}
		if i >= len(line) || !validLabelName(line[start:i]) {
			return 0, fmt.Errorf("invalid label name %q", line[start:min(i, len(line))])
		}
		i++ // '='
		if i >= len(line) || line[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		i++
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' {
				if i+1 >= len(line) {
					return 0, fmt.Errorf("dangling escape in label value")
				}
				switch line[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in label value", line[i+1])
				}
				i++
			}
			i++
		}
		if i >= len(line) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		if i < len(line) && line[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("expected , or } in label block")
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
