package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWithCanonicalOrdering: label pairs are key-sorted at View build
// time, so permuted With calls address the same series.
func TestWithCanonicalOrdering(t *testing.T) {
	r := NewRegistry()
	c1 := r.With("b", "2", "a", "1").Counter("m")
	c2 := r.With("a", "1", "b", "2").Counter("m")
	if c1 != c2 {
		t.Fatal("permuted label order produced distinct instruments")
	}
	c1.Add(5)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1: %+v", len(snap), snap)
	}
	if snap[0].Labels != `{a="1",b="2"}` || snap[0].Value != 5 {
		t.Errorf("sample = %+v, want canonical {a=\"1\",b=\"2\"} = 5", snap[0])
	}
}

// TestWithChaining: View.With extends the label set; the chained view
// addresses the same series as a flat With.
func TestWithChaining(t *testing.T) {
	r := NewRegistry()
	chained := r.With("job", "j1").With("stage", "map").Counter("tasks")
	flat := r.With("job", "j1", "stage", "map").Counter("tasks")
	if chained != flat {
		t.Fatal("chained With diverges from flat With")
	}
	// The intermediate view is unchanged by the extension.
	base := r.With("job", "j1")
	_ = base.With("stage", "reduce")
	if got := base.suffix; got != `{job="j1"}` {
		t.Errorf("base view mutated by With extension: %q", got)
	}
}

// TestLabeledFamilies: the same base name carries many label sets plus
// an unlabeled member, and the snapshot orders members by label suffix.
func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("req").Add(1)
	r.With("code", "500").Counter("req").Add(2)
	r.With("code", "200").Counter("req").Add(3)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %+v, want 3 members", snap)
	}
	wantLabels := []string{"", `{code="200"}`, `{code="500"}`}
	wantVals := []int64{1, 3, 2}
	for i := range snap {
		if snap[i].Name != "req" || snap[i].Labels != wantLabels[i] || snap[i].Value != wantVals[i] {
			t.Errorf("snap[%d] = %+v, want req%s = %d", i, snap[i], wantLabels[i], wantVals[i])
		}
	}
	text := r.RenderText()
	if !strings.Contains(text, `req{code="500"}`) {
		t.Errorf("RenderText missing labeled member:\n%s", text)
	}
}

// TestLabelValueEscaping: backslash, quote and newline in label values
// are escaped in the canonical suffix (shared by snapshot, text dump
// and Prometheus exposition).
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.With("path", "a\\b\"c\nd").Counter("m").Inc()
	snap := r.Snapshot()
	want := `{path="a\\b\"c\nd"}`
	if len(snap) != 1 || snap[0].Labels != want {
		t.Fatalf("escaped suffix = %q, want %q", snap[0].Labels, want)
	}
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing escaped label:\n%s", b.String())
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("escaped exposition does not re-parse: %v", err)
	}
}

// TestNilViewChain: the whole labeled chain is nil-safe when metrics
// are off.
func TestNilViewChain(t *testing.T) {
	var r *Registry
	v := r.With("a", "1")
	if v != nil {
		t.Fatal("nil registry must hand out a nil view")
	}
	v.With("b", "2").Counter("x").Inc()
	v.Gauge("y").Set(1)
	v.Histogram("z", DurationBucketsUs).Observe(1)
	v.Func("w", func() int64 { return 1 })
}

// TestSnapshotRaceHammer drives Snapshot, WriteExposition and RenderText
// against concurrent writers and concurrent label registration; run
// under -race this pins the lock discipline, and the final snapshots pin
// deterministic (name, labels) ordering regardless of registration
// interleaving.
func TestSnapshotRaceHammer(t *testing.T) {
	r := NewRegistry()
	r.Help("hammer.ops", "hammer counter family")
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: bump pre-registered labeled instruments.
	for w := 0; w < 4; w++ {
		c := r.With("writer", string(rune('a'+w))).Counter("hammer.ops")
		h := r.With("writer", string(rune('a'+w))).Histogram("hammer.lat", []int64{10, 100})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(int64(i % 200))
				}
			}
		}()
	}
	// Registrars: keep creating new family members while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.With("shard", string(rune('A'+i%26))).Gauge("hammer.depth").Set(int64(i))
		}
	}()
	// Readers: all three read paths share Snapshot/sortedSeries.
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap := r.Snapshot()
				for j := 1; j < len(snap); j++ {
					prev, cur := snap[j-1], snap[j]
					if prev.Name > cur.Name || (prev.Name == cur.Name && prev.Labels >= cur.Labels) {
						t.Errorf("snapshot out of order: %v >= %v", prev, cur)
						return
					}
				}
				_ = r.RenderText()
				var b strings.Builder
				if err := r.WriteExposition(&b); err != nil {
					t.Errorf("exposition during hammer: %v", err)
					return
				}
			}
		}()
	}
	// Let the hammer run a bounded amount of work, then stop writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Readers/registrar are finite; writers stop when told.
	for i := 0; i < 2; i++ {
		snap := r.Snapshot()
		_ = snap
	}
	close(stop)
	<-done

	// Quiesced: two snapshots are identical and the exposition parses.
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1) != len(s2) {
		t.Fatalf("post-hammer snapshots differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("post-hammer snapshot not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("post-hammer exposition invalid: %v\n%s", err, b.String())
	}
}

// Labeled hot-path allocation pins: once registered through a View, a
// labeled instrument is the same atomic type as an unlabeled one.
func TestLabeledCounterAddAllocs(t *testing.T) {
	c := NewRegistry().With("job", "j1", "stage", "map").Counter("hot")
	if got := testing.AllocsPerRun(200, func() { c.Add(1) }); got != 0 {
		t.Errorf("labeled Counter.Add allocs = %v, want 0", got)
	}
}

func TestLabeledHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().With("job", "j1").Histogram("lat", DurationBucketsUs)
	if got := testing.AllocsPerRun(200, func() { h.Observe(12345) }); got != 0 {
		t.Errorf("labeled Histogram.Observe allocs = %v, want 0", got)
	}
}

func TestNilViewCounterAllocs(t *testing.T) {
	var r *Registry
	c := r.With("a", "b").Counter("off")
	if got := testing.AllocsPerRun(200, func() { c.Add(1) }); got != 0 {
		t.Errorf("nil labeled Counter.Add allocs = %v, want 0", got)
	}
}
