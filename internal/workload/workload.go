// Package workload provides seeded synthetic stand-ins for the paper's
// datasets — the WWW'10 Twitter follower graph (§6.1), the RITA airline
// on-time data (§6.2) and the NOAA surface-summary weather data (§6.4) —
// plus the four Pig scripts the evaluation runs. The generators reproduce
// the properties the experiments actually exercise: schemas, row counts,
// key skew and key cardinality; the semantic content of rows is
// irrelevant to digest/replication overhead measurements.
package workload

import (
	"fmt"
	"math/rand"
)

// FollowerScript counts followers per user (Fig 8 i: Load, Filter,
// Group, ForEach/Count, Store).
const FollowerScript = `
edges = LOAD 'data/twitter/edges' AS (user:int, follower:int);
nonempty = FILTER edges BY follower != 0;
grouped = GROUP nonempty BY user;
counts = FOREACH grouped GENERATE group AS user, COUNT(nonempty) AS followers;
STORE counts INTO 'out/twitter/followers';
`

// TwoHopScript lists pairs of users two hops apart via a self-join
// (Fig 8 ii): u follows v, v follows w => (u, w).
const TwoHopScript = `
a = LOAD 'data/twitter/edges' AS (user:int, follower:int);
b = LOAD 'data/twitter/edges' AS (user:int, follower:int);
hops = JOIN a BY follower, b BY user;
proper = FILTER hops BY a::user != b::follower;
pairs = FOREACH proper GENERATE a::user AS src, b::follower AS dst;
STORE pairs INTO 'out/twitter/twohop';
`

// AirlineScript is the multi-store query of §6.2 (Fig 8 iii): top 20
// airports by outgoing flights, by incoming flights, and overall.
const AirlineScript = `
fl = LOAD 'data/airline/flights' AS (year:int, month:int, origin, dest, delay:int);
byorigin = GROUP fl BY origin;
outbound = FOREACH byorigin GENERATE group AS airport, COUNT(fl) AS n;
o1 = ORDER outbound BY n DESC;
topout = LIMIT o1 20;
STORE topout INTO 'out/airline/outbound';

bydest = GROUP fl BY dest;
inbound = FOREACH bydest GENERATE group AS airport, COUNT(fl) AS n;
o2 = ORDER inbound BY n DESC;
topin = LIMIT o2 20;
STORE topin INTO 'out/airline/inbound';

both = UNION outbound, inbound;
byairport = GROUP both BY airport;
overall = FOREACH byairport GENERATE group AS airport, SUM(both.n) AS n;
o3 = ORDER overall BY n DESC;
topall = LIMIT o3 20;
STORE topall INTO 'out/airline/overall';
`

// WeatherScript computes per-station multi-year average temperatures and
// counts stations sharing each average (§6.4). AVG is integer (§5.4).
const WeatherScript = `
w = LOAD 'data/weather/gsod' AS (station, date:int, temp:int);
bystation = GROUP w BY station;
avgs = FOREACH bystation GENERATE group AS station, AVG(w.temp) AS avgtemp;
byavg = GROUP avgs BY avgtemp;
counts = FOREACH byavg GENERATE group AS avgtemp, COUNT(avgs) AS stations;
STORE counts INTO 'out/weather/histogram';
`

// Paths used by the scripts above.
const (
	TwitterPath = "data/twitter/edges"
	AirlinePath = "data/airline/flights"
	WeatherPath = "data/weather/gsod"
)

// Twitter generates a follower-edge list with a skewed (Zipf-like)
// follower distribution over `users` user IDs. About 2% of rows carry a
// zero follower ID, exercising the script's filter stage like the
// original dataset's empty records.
func Twitter(edges, users int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(users-1))
	out := make([]string, 0, edges)
	for i := 0; i < edges; i++ {
		user := int(zipf.Uint64()) + 1
		follower := rng.Intn(users) + 1
		if rng.Intn(50) == 0 {
			follower = 0 // "empty" record, filtered by the script
		}
		out = append(out, fmt.Sprintf("%d\t%d", user, follower))
	}
	return out
}

// airports is a pool of plausible IATA codes.
var airports = []string{
	"ATL", "ORD", "DFW", "DEN", "LAX", "PHX", "IAH", "LAS", "DTW", "SLC",
	"SFO", "MSP", "JFK", "EWR", "CLT", "BOS", "SEA", "MIA", "MCO", "PHL",
	"LGA", "BWI", "FLL", "SAN", "TPA", "MDW", "DCA", "STL", "PDX", "HNL",
	"OAK", "MEM", "CLE", "SMF", "MCI", "SJC", "PIT", "IND", "MKE", "CMH",
}

// Airline generates flight rows (year, month, origin, dest, delay) over
// `airports` hubs with heavy skew toward the big hubs, matching the
// RITA data's traffic distribution.
func Airline(rows, hubs int, seed int64) []string {
	if hubs <= 1 || hubs > len(airports) {
		hubs = len(airports)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 3, uint64(hubs-1))
	out := make([]string, 0, rows)
	for i := 0; i < rows; i++ {
		origin := airports[zipf.Uint64()]
		dest := airports[zipf.Uint64()]
		for dest == origin {
			dest = airports[rng.Intn(hubs)]
		}
		year := 2007 + rng.Intn(2)
		month := rng.Intn(12) + 1
		delay := rng.Intn(120) - 15
		out = append(out, fmt.Sprintf("%d\t%d\t%s\t%s\t%d", year, month, origin, dest, delay))
	}
	return out
}

// Weather generates daily surface-summary rows (station, yyyymmdd date,
// integer temperature) across `stations` weather stations, each with its
// own base climate so per-station averages differ but collide often
// enough for the second grouping stage to aggregate.
func Weather(rows, stations int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	base := make([]int, stations)
	for i := range base {
		base[i] = 20 + rng.Intn(60) // station climate in °F
	}
	out := make([]string, 0, rows)
	for i := 0; i < rows; i++ {
		st := rng.Intn(stations)
		year := 2005 + rng.Intn(5)
		day := rng.Intn(28) + 1
		month := rng.Intn(12) + 1
		date := year*10000 + month*100 + day
		temp := base[st] + rng.Intn(21) - 10
		out = append(out, fmt.Sprintf("st%05d\t%d\t%d", st, date, temp))
	}
	return out
}
