package chaos

import (
	"fmt"

	"clusterbft/internal/bft"
)

// countSM is the deterministic state machine behind net-chaos runs: it
// numbers operations in execution order, so any ordering divergence
// between replicas shows up as a result mismatch at the client.
type countSM struct{ n int }

func (s *countSM) Apply(op []byte) []byte {
	s.n++
	return []byte(fmt.Sprintf("%d:%s", s.n, op))
}

// netRun drives ops sequential operations through a fresh 3f+1 replica
// group with the injector's network perturbations attached. It returns
// how many operations reached f+1 agreement with the expected result;
// any shortfall is an error, since schedules bound perturbed replicas to
// at most f.
func netRun(in *Injector, f, ops int) (int, error) {
	g := bft.NewGroup(f, func(int) bft.StateMachine { return &countSM{} })
	in.AttachNetwork(g.Net)
	agreed := 0
	for i := 0; i < ops; i++ {
		op := fmt.Sprintf("op-%d", i)
		res, _, err := g.Invoke([]byte(op))
		if err != nil {
			return agreed, fmt.Errorf("op %d: %w", i, err)
		}
		if want := fmt.Sprintf("%d:%s", i+1, op); string(res) != want {
			return agreed, fmt.Errorf("op %d agreed on %q, want %q", i, res, want)
		}
		agreed++
	}
	return agreed, nil
}
