package faultsim

import (
	"strings"
	"testing"

	"clusterbft/internal/analyze"
)

// TestTimelineShowsConvergence pins the shape of the suspicion audit
// trail on a run that fully isolates the faulty node: raw mismatch
// evidence first, then the analyzer's intersection steps (with
// exonerated nodes), ending in a conviction — with monotone virtual
// timestamps throughout.
func TestTimelineShowsConvergence(t *testing.T) {
	r := Run(Config{CommissionProb: 0.8, Seed: 3, MaxTime: 400})
	if !r.Isolated {
		t.Fatal("expected this seeded run to isolate the faulty node")
	}
	if len(r.Timeline) == 0 {
		t.Fatal("timeline is empty")
	}

	first := map[analyze.AuditKind]int{}
	var exonerations, prevT int
	for i, e := range r.Timeline {
		if _, ok := first[e.Kind]; !ok {
			first[e.Kind] = i
		}
		if e.Kind == analyze.AuditIntersect {
			if len(e.Removed) == 0 {
				t.Errorf("intersect event %d removed no nodes: %+v", i, e)
			}
			exonerations += len(e.Removed)
		}
		if int(e.T) < prevT {
			t.Fatalf("timestamps not monotone at event %d: %d < %d", i, e.T, prevT)
		}
		prevT = int(e.T)
	}
	mi, ok := first[analyze.AuditMismatch]
	if !ok {
		t.Fatal("no mismatch events")
	}
	ii, ok := first[analyze.AuditIntersect]
	if !ok {
		t.Fatal("no intersection events: the analyzer never refined")
	}
	ci, ok := first[analyze.AuditConviction]
	if !ok {
		t.Fatal("no conviction: D never narrowed to a single node")
	}
	if !(mi < ii && ii <= ci) {
		t.Errorf("order mismatch(%d) -> intersect(%d) -> conviction(%d) violated", mi, ii, ci)
	}
	if exonerations == 0 {
		t.Error("no nodes were exonerated on the way to isolation")
	}

	out := r.RenderTimeline(0)
	for _, want := range []string{"mismatch", "new-suspect-set", "intersect", "exonerated=", "conviction", "t="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q", want)
		}
	}
	// The convicted node is the true faulty one.
	conv := r.Timeline[ci]
	if len(conv.Nodes) != 1 || len(r.TrueFaulty) != 1 || conv.Nodes[0] != r.TrueFaulty[0] {
		t.Errorf("conviction %v does not match true faulty %v", conv.Nodes, r.TrueFaulty)
	}
}

// TestTimelineDeterministic: same seed, same timeline.
func TestTimelineDeterministic(t *testing.T) {
	a := Run(Config{CommissionProb: 0.7, Seed: 42, MaxTime: 120})
	b := Run(Config{CommissionProb: 0.7, Seed: 42, MaxTime: 120})
	if a.RenderTimeline(0) != b.RenderTimeline(0) {
		t.Error("timeline differs across identically-seeded runs")
	}
}
