package experiments

import (
	"fmt"

	"clusterbft/internal/faultsim"
)

// ShardScaleRow is one shard-count measurement of the verdict-throughput
// scaling experiment.
type ShardScaleRow struct {
	Shards      int
	Reports     int
	Verdicts    int
	Evidence    int
	Evicted     int
	WorkMax     uint64
	SpanUnits   uint64
	Speedup     float64 // SpanUnits(1) / SpanUnits(N)
	Fingerprint string
}

// ShardScaleResult reproduces the sharded-control-tier scaling study:
// the same 250-node verdict workload run through 1, 2, 4 and 8 parallel
// verdict pipelines, with the cross-shard suspicion merge active (global
// evictions feed back into placement every round). Speedup is the
// deterministic critical-path ratio SpanUnits(1)/SpanUnits(N) — the
// throughput scaling with one core per shard — so the table is
// byte-identical across runs and hosts; BenchmarkVerdictThroughput in
// internal/faultsim reports the wall-clock equivalent. MergeOK asserts
// the fingerprints of the merged evidence stream and final suspicion
// state agree at every shard count.
type ShardScaleResult struct {
	Nodes   int
	Rows    []ShardScaleRow
	MergeOK bool
}

// Render prints one row per shard count.
func (r *ShardScaleResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%d", row.Reports),
			fmt.Sprintf("%d", row.Verdicts),
			fmt.Sprintf("%d", row.Evidence),
			fmt.Sprintf("%d", row.Evicted),
			fmt.Sprintf("%d", row.WorkMax),
			fmt.Sprintf("%d", row.SpanUnits),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	out := fmt.Sprintf("Verdict-throughput scaling: %d nodes, sharded control tier\n", r.Nodes)
	out += table([]string{"shards", "reports", "verdicts", "evidence", "evicted", "work-max", "span", "speedup"}, rows)
	return out + fmt.Sprintf("cross-shard merge identical at every shard count: %v\n", r.MergeOK)
}

// ShardScale runs the verdict workload at shard counts 1, 2, 4 and 8.
func ShardScale(sc Scale) *ShardScaleResult {
	base := faultsim.DefaultShardBench()
	base.Seed = sc.Seed + 10
	if sc.TwitterEdges < 100_000 { // small scale: trim the stream, keep the 250-node tier
		base.Clusters = 96
		base.Keys = 24
	}
	res := &ShardScaleResult{Nodes: base.Nodes, MergeOK: true}
	var spanOne uint64
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		r := faultsim.ShardBench(cfg)
		if shards == 1 {
			spanOne = r.SpanUnits
		}
		row := ShardScaleRow{
			Shards:      shards,
			Reports:     r.Reports,
			Verdicts:    r.Verdicts,
			Evidence:    r.Evidence,
			Evicted:     r.Evicted,
			WorkMax:     r.WorkMax,
			SpanUnits:   r.SpanUnits,
			Speedup:     float64(spanOne) / float64(r.SpanUnits),
			Fingerprint: r.Fingerprint,
		}
		if len(res.Rows) > 0 && row.Fingerprint != res.Rows[0].Fingerprint {
			res.MergeOK = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
