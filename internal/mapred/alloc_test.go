package mapred

import (
	"testing"

	"clusterbft/internal/tuple"
)

// Shuffle-path allocation pins: partitioning and sampling run once per
// shuffled record, so both must stay allocation-free (the inline FNV-1a
// loops replaced hash/fnv's heap-allocated states; the sample hash runs
// over a per-chain scratch buffer).

func TestPartitionOfAllocs(t *testing.T) {
	got := testing.AllocsPerRun(200, func() {
		_ = partitionOf("1234\tsome-key", 16)
	})
	if got != 0 {
		t.Errorf("partitionOf allocs/record = %v, want 0", got)
	}
}

func TestSampleKeepHashAllocs(t *testing.T) {
	row := tuple.Tuple{tuple.Int(42), tuple.Str("payload"), tuple.Int(7)}
	scratch := make([]byte, 0, 128)
	got := testing.AllocsPerRun(200, func() {
		scratch = tuple.AppendCanonical(scratch[:0], row)
		_ = sampleKeepHash(scratch, 0.5)
	})
	if got != 0 {
		t.Errorf("sample path allocs/record = %v, want 0", got)
	}
}

// TestSampleKeepHashMatchesWrapper: the scratch-buffer fast path and the
// allocate-per-call wrapper must agree on every verdict (replicas mixing
// the two would diverge on sampled subsets).
func TestSampleKeepHashMatchesWrapper(t *testing.T) {
	for i := 0; i < 500; i++ {
		row := tuple.Tuple{tuple.Int(int64(i)), tuple.Str("v")}
		canon := tuple.AppendCanonical(nil, row)
		for _, frac := range []float64{-1, 0, 0.3, 0.9, 1, 2} {
			if sampleKeep(row, frac) != sampleKeepHash(canon, frac) {
				t.Fatalf("sampleKeep disagreement at i=%d frac=%v", i, frac)
			}
		}
	}
}
