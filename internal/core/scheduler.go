package core

import (
	"clusterbft/internal/cluster"
	"clusterbft/internal/mapred"
)

// OverlapScheduler is ClusterBFT's resource manager policy (§4.2): honor
// the inclusion list (suspicious nodes get no work), then pick tasks so
// that a node hosts tasks from as many *different* jobs as it has
// resource units — deliberately overlapping job clusters so that a faulty
// node contaminates several clusters and the fault analyzer can intersect
// them. Among equally-overlapping candidates it prefers data-local
// splits, then FIFO order.
type OverlapScheduler struct {
	// Suspicion, when set, supplies the inclusion list.
	Suspicion *SuspicionTable

	// sids tracks which sub-graphs each node already hosts; Pick updates
	// it because the engine always starts the returned task.
	sids map[cluster.NodeID]map[string]bool
}

// NewOverlapScheduler builds the scheduler around a suspicion table
// (which may be nil).
func NewOverlapScheduler(susp *SuspicionTable) *OverlapScheduler {
	return &OverlapScheduler{
		Suspicion: susp,
		sids:      make(map[cluster.NodeID]map[string]bool),
	}
}

// Pick implements mapred.Scheduler.
func (s *OverlapScheduler) Pick(node *cluster.Node, candidates []*mapred.Task) *mapred.Task {
	if s.Suspicion != nil && s.Suspicion.Excluded(node.ID) {
		return nil // off the inclusion list (§4.2)
	}
	hosted := s.sids[node.ID]
	var best *mapred.Task
	bestScore := -1
	for _, t := range candidates {
		score := 0
		if hosted != nil && hosted[t.Job.Spec.SID] {
			// Replica affinity: a node bound to this sub-graph replica
			// keeps serving it. Without this, early replicas spread over
			// (and permanently bind, §5.3) every node, starving later
			// replicas of the same sub-graph out of legal placements.
			score += 4
		} else {
			score += 2 // new job cluster on this node: maximize overlap
		}
		if t.Home == node.ID {
			score++ // data-local
		}
		if score > bestScore {
			best, bestScore = t, score
		}
	}
	if best != nil {
		if hosted == nil {
			hosted = make(map[string]bool)
			s.sids[node.ID] = hosted
		}
		hosted[best.Job.Spec.SID] = true
	}
	return best
}

// ForgetSID implements mapred.SIDForgetter: it drops the affinity state
// of a dead or superseded attempt on every node, so the per-node sid
// sets stay bounded across retries and repeated controller runs instead
// of pinning affinity for sub-graphs that no longer exist.
func (s *OverlapScheduler) ForgetSID(sid string) {
	for n, hosted := range s.sids {
		delete(hosted, sid)
		if len(hosted) == 0 {
			delete(s.sids, n)
		}
	}
}

// HostedSIDs counts (node, sid) affinity entries currently tracked;
// lifecycle tests pin it to prove teardown prunes scheduler state.
func (s *OverlapScheduler) HostedSIDs() int {
	n := 0
	for _, hosted := range s.sids {
		n += len(hosted)
	}
	return n
}
