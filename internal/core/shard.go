package core

import (
	"hash/fnv"
	"sort"
	"strconv"

	"clusterbft/internal/digest"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
)

// The sharded control tier (DESIGN.md §13). One Matcher serializes every
// digest verdict of a run — the throughput ceiling the ROADMAP names for
// "millions of users". A VerdictPool partitions that work across N
// independent shard pipelines, each owning a private Matcher and a
// worker goroutine, keyed by FNV-1a hash of the sub-graph attempt id
// (sid). Partitioning by sid is sound because every Matcher operation is
// single-sid: replicas of one attempt only ever compare against each
// other, so two shards never need each other's digest vectors.
//
// The pool is lock-free with respect to its shards: there is no shared
// mutex anywhere on the digest hot path. The only synchronization is
// the per-shard FIFO channel (submission) and a barrier token (Sync).
// The protocol is single-producer: exactly one goroutine — the
// simulation goroutine in the controller, the driving loop in the
// faultsim harness — calls Submit/RequestVerdict/Sync, and it may read
// shard state directly (MatcherFor, Forget) only between a Sync and the
// next Submit, when every worker is provably quiescent. The channel
// round-trips establish the happens-before edges, so the race detector
// accepts the whole protocol without a single lock.
//
// Determinism: every submission is stamped with a monotonic sequence
// number by the producer. Workers record suspicion evidence and
// checkpoint-agreement events into a per-shard buffer; Sync drains all
// buffers and merges them in stamp order, which assigns the global
// order of AuditTrail/suspicion effects at the merge layer rather than
// at emit time. Because sharding is per-sid, each sid's report
// subsequence is identical at any shard count — so the merged evidence
// stream, and everything downstream of it (FaultAnalyzer intersection,
// suspicion levels, eviction), is byte-identical whether the pool runs
// 1 shard or 8.

// VerdictEventKind tags one entry of the merged evidence stream.
type VerdictEventKind uint8

const (
	// VerdictDeviant reports a replica whose digests left the f+1
	// majority for its sid (first detection only; the shard dedupes).
	VerdictDeviant VerdictEventKind = iota
	// VerdictCkpt reports f+1 agreement reached on a checkpoint-point
	// key; the merge layer may persist the interior output.
	VerdictCkpt
	// VerdictDecision carries a full Agreement verdict computed
	// shard-side for a RequestVerdict call (used by the throughput
	// harness; the controller computes verdicts inline post-sync).
	VerdictDecision
)

// VerdictEvent is one merged evidence item. Stamp is the global
// submission sequence number assigned by the producer; Sync returns
// events sorted by it.
type VerdictEvent struct {
	Stamp   uint64
	Shard   int
	SID     string
	Kind    VerdictEventKind
	Replica int        // VerdictDeviant
	Key     digest.Key // VerdictCkpt

	// VerdictDecision payload.
	Majority []int
	Deviants []int
	OK       bool
}

type verdictReq struct {
	sid       string
	completed []int
}

// shardMsg is the single message type a shard worker receives: exactly
// one of report (Add + online comparison), verdict (Agreement), or sync
// (barrier token, acknowledged by closing the channel) is set.
type shardMsg struct {
	report  digest.Report
	stamp   uint64
	verdict *verdictReq
	sync    chan struct{}
}

// verdictShard is one pipeline: a worker goroutine draining ch into a
// private Matcher. All fields below ch are worker-owned while the
// worker runs; the producer may touch them only post-Sync.
type verdictShard struct {
	idx  int
	ch   chan shardMsg
	done chan struct{}

	m *Matcher
	// deviant dedupes first detections per (sid, replica) so the event
	// stream carries each piece of evidence once, mirroring the
	// idempotence of markFaulty.
	deviant map[string]map[int]bool
	// votes counts reports accumulated per sid; it models the cost of
	// the online comparison (KeyDeviants scans every vote of the sid)
	// and of fingerprinting, giving the deterministic work accounting
	// the scaling experiment reports.
	votes  map[string]int
	events []VerdictEvent
	work   uint64

	obsReports  *obs.Counter
	obsDeviants *obs.Counter
	obsWork     *obs.Counter
}

// VerdictPool runs N shard pipelines. See the package comment above for
// the single-producer protocol.
type VerdictPool struct {
	f      int
	shards []*verdictShard
	stamp  uint64
	closed bool

	obsSyncs *obs.Counter
}

// NewVerdictPool starts n shard workers (clamped to >= 1) for
// f-tolerant matching. reg, when non-nil, registers per-shard labeled
// counter families (core.shard.reports{shard="i"}, …); nil costs
// nothing.
func NewVerdictPool(f, n int, reg *obs.Registry) *VerdictPool {
	if n < 1 {
		n = 1
	}
	p := &VerdictPool{f: f}
	if reg != nil {
		p.obsSyncs = reg.Counter("core.shard.syncs")
	}
	for i := 0; i < n; i++ {
		s := &verdictShard{
			idx:     i,
			ch:      make(chan shardMsg, 256),
			done:    make(chan struct{}),
			m:       NewMatcher(f),
			deviant: make(map[string]map[int]bool),
			votes:   make(map[string]int),
		}
		if reg != nil {
			v := reg.With("shard", strconv.Itoa(i))
			s.obsReports = v.Counter("core.shard.reports")
			s.obsDeviants = v.Counter("core.shard.deviants")
			s.obsWork = v.Counter("core.shard.work")
		}
		p.shards = append(p.shards, s)
		go s.run()
	}
	return p
}

// Shards returns the pipeline count.
func (p *VerdictPool) Shards() int { return len(p.shards) }

// ShardOf is the partitioning function: FNV-1a over the sid, mod N.
func (p *VerdictPool) ShardOf(sid string) int {
	h := fnv.New32a()
	h.Write([]byte(sid))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// Submit routes one digest report to its sid's shard. Producer-only.
func (p *VerdictPool) Submit(r digest.Report) {
	p.stamp++
	s := p.shards[p.ShardOf(r.Key.SID)]
	s.ch <- shardMsg{report: r, stamp: p.stamp}
}

// RequestVerdict asks the owning shard to run the offline f+1 agreement
// over the completed replicas of sid; the decision arrives as a
// VerdictDecision event at the next Sync. Producer-only.
func (p *VerdictPool) RequestVerdict(sid string, completed []int) {
	p.stamp++
	s := p.shards[p.ShardOf(sid)]
	s.ch <- shardMsg{verdict: &verdictReq{sid: sid, completed: completed}, stamp: p.stamp}
}

// Sync drains every shard pipeline (barrier) and returns the merged
// evidence stream in global submission order. After Sync returns — and
// until the next Submit/RequestVerdict — the producer may read shard
// state directly via MatcherFor and mutate it via Forget.
func (p *VerdictPool) Sync() []VerdictEvent {
	toks := make([]chan struct{}, len(p.shards))
	for i, s := range p.shards {
		toks[i] = make(chan struct{})
		s.ch <- shardMsg{sync: toks[i]}
	}
	for _, t := range toks {
		<-t
	}
	p.obsSyncs.Inc()
	var merged []VerdictEvent
	for _, s := range p.shards {
		merged = append(merged, s.events...)
		s.events = s.events[:0]
	}
	// Stamps are globally unique per submission; events sharing a stamp
	// come from one report on one shard and were appended in
	// deterministic order, which the stable sort preserves.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Stamp < merged[j].Stamp })
	return merged
}

// MatcherFor returns the private Matcher owning sid. Valid only between
// a Sync and the next Submit.
func (p *VerdictPool) MatcherFor(sid string) *Matcher {
	return p.shards[p.ShardOf(sid)].m
}

// Forget drops all shard state for one attempt. Valid only between a
// Sync and the next Submit.
func (p *VerdictPool) Forget(sid string) {
	s := p.shards[p.ShardOf(sid)]
	s.m.Forget(sid)
	delete(s.deviant, sid)
	delete(s.votes, sid)
}

// Work returns each shard's deterministic work-unit counter (votes
// scanned by online comparison + fingerprinting). Valid only post-Sync.
func (p *VerdictPool) Work() []uint64 {
	out := make([]uint64, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.work
	}
	return out
}

// Stamps returns the number of submissions so far (reports + verdict
// requests). Producer-only.
func (p *VerdictPool) Stamps() uint64 { return p.stamp }

// Close stops every worker and waits for them to exit. Goroutines are
// not garbage-collected, so every pool owner must Close; idempotent.
func (p *VerdictPool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, s := range p.shards {
		close(s.ch)
	}
	for _, s := range p.shards {
		<-s.done
	}
}

func (s *verdictShard) run() {
	defer close(s.done)
	for msg := range s.ch {
		if msg.sync != nil {
			close(msg.sync)
			continue
		}
		s.process(msg)
	}
}

func (s *verdictShard) process(msg shardMsg) {
	if v := msg.verdict; v != nil {
		s.work += uint64(s.votes[v.sid])
		s.obsWork.Add(int64(s.votes[v.sid]))
		majority, deviants, ok := s.m.Agreement(v.sid, v.completed)
		s.events = append(s.events, VerdictEvent{
			Stamp: msg.stamp, Shard: s.idx, SID: v.sid, Kind: VerdictDecision,
			Majority: majority, Deviants: deviants, OK: ok,
		})
		return
	}
	r := msg.report
	sid := r.Key.SID
	s.m.Add(r)
	s.votes[sid]++
	units := uint64(1 + s.votes[sid])
	s.work += units
	s.obsReports.Inc()
	s.obsWork.Add(int64(units))
	if r.Key.Point == mapred.CkptPoint {
		s.events = append(s.events, VerdictEvent{
			Stamp: msg.stamp, Shard: s.idx, SID: sid, Kind: VerdictCkpt, Key: r.Key,
		})
	}
	for _, rep := range s.m.KeyDeviants(sid) {
		seen := s.deviant[sid]
		if seen == nil {
			seen = make(map[int]bool)
			s.deviant[sid] = seen
		}
		if seen[rep] {
			continue
		}
		seen[rep] = true
		s.obsDeviants.Inc()
		s.events = append(s.events, VerdictEvent{
			Stamp: msg.stamp, Shard: s.idx, SID: sid, Kind: VerdictDeviant, Replica: rep,
		})
	}
}
