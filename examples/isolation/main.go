// Fault isolation at fleet scale: the paper's §6.3 study as a runnable
// example. A 250-node cluster executes a stream of replicated jobs while
// one node occasionally lies; the fault analyzer intersects the faulty
// job clusters until exactly the guilty node remains — first without,
// then with §3.3's probe jobs, showing how deliberate overlap of
// suspicious sets speeds isolation.
//
//	go run ./examples/isolation
package main

import (
	"fmt"

	"clusterbft/internal/faultsim"
)

func run(label string, probes bool) {
	r := faultsim.Run(faultsim.Config{
		CommissionProb: 0.4, // the node lies on 40% of its involvements
		Seed:           21,
		MaxTime:        400,
		Probes:         probes,
	})
	fmt.Printf("== %s ==\n", label)
	fmt.Printf("truly faulty:        %v\n", r.TrueFaulty)
	fmt.Printf("jobs completed:      %d (faults observed: %d, probes: %d)\n",
		r.JobsCompleted, r.FaultsObserved, r.ProbesLaunched)
	fmt.Printf("|D| = f after:       %d jobs (t=%d)\n", r.JobsAtSaturation, r.TimeAtSaturation)
	fmt.Printf("exact isolation at:  t=%d\n", r.TimeToExactIsolation)
	fmt.Printf("final suspects:      %v (exact: %v)\n\n", r.Suspects, r.Isolated)
}

func main() {
	run("accidental overlap only", false)
	run("with probe jobs (§3.3)", true)

	// The suspicion timeline of the probed run, like Fig 12.
	r := faultsim.Run(faultsim.Config{CommissionProb: 0.4, Seed: 21, MaxTime: 150, Probes: true})
	fmt.Println("suspicion population over time (low/med/high):")
	for _, s := range r.Samples {
		if s.Time%15 == 0 {
			fmt.Printf("  t=%3d  %3d / %3d / %3d\n", s.Time, s.Low, s.Med, s.High)
		}
	}
}
