package mapred

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clusterbft/internal/obs"
)

// traceRun executes the seeded golden workload with a tracer attached
// and returns the tracer. Deterministic: no wall clock, fixed seed
// lines, serial workers (Workers=1) so span commit order is reproduced
// exactly — the JSONL fixture pins it byte for byte.
func traceRun(t *testing.T) *obs.Tracer {
	t.Helper()
	lines := make([]string, 3000)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%97, (i*31+7)%500)
	}
	p := plan(t, followerSrc)
	opts := CompileOptions{Points: digestPoints(t, p, "ne", "counts"), NumReduces: 3}
	tracer := obs.NewTracer(0)
	run(t, followerSrc, map[string][]string{"in/edges": lines}, opts, func(e *Engine) {
		e.DigestChunk = 200
		e.Workers = 1
		e.Trace = tracer
	})
	return tracer
}

// TestGoldenTraceJSONL pins the deterministic JSONL trace export of the
// seeded golden workload against a committed fixture, byte for byte.
// The virtual-time span stream is part of the engine's observable
// surface now: schedule drift, task reordering, or span-shape changes
// fail loudly here. Regenerate deliberately with
// CLUSTERBFT_UPDATE_GOLDEN=1.
func TestGoldenTraceJSONL(t *testing.T) {
	tracer := traceRun(t)
	var b bytes.Buffer
	if err := tracer.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if os.Getenv("CLUSTERBFT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read fixture (CLUSTERBFT_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
				break
			}
		}
		t.Fatalf("trace stream diverged from committed fixture (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestGoldenTraceChromeTwin checks the same run's Chrome trace_event
// export is valid trace JSON whose X events correspond one-to-one with
// the JSONL spans.
func TestGoldenTraceChromeTwin(t *testing.T) {
	tracer := traceRun(t)
	var b bytes.Buffer
	if err := tracer.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  *int64 `json:"ts"`
			Pid *int   `json:"pid"`
			Tid *int   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var x int
	for _, ev := range doc.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		if ev.Ph == "X" {
			x++
		}
	}
	if x != tracer.Len() {
		t.Errorf("chrome X events = %d, JSONL spans = %d", x, tracer.Len())
	}
	// Span mix sanity: the follower script compiles to one job with a
	// map stage and a reduce stage (1 map split, 3 reduce partitions).
	var jobs, stages, tasks int
	for _, s := range tracer.Spans() {
		switch s.Cat {
		case "job":
			jobs++
		case "stage":
			stages++
		case "task":
			tasks++
		}
	}
	if jobs != 1 || stages != 2 || tasks != 4 {
		t.Errorf("span mix jobs=%d stages=%d tasks=%d, want 1/2/4", jobs, stages, tasks)
	}
}
