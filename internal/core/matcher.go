package core

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"clusterbft/internal/digest"
)

// Matcher is the verifier's digest store (§4.1): it collects digest
// reports from replicas and asserts that at least f+1 corresponding
// digests match. Matching happens at two granularities:
//
//   - per key (approximate, online): as soon as f+1 replicas agree on one
//     chunk, any replica reporting a different sum for that chunk is a
//     commission fault — detection can start before sub-jobs complete;
//   - per replica (offline): a completed replica's full digest vector is
//     rolled into a fingerprint; f+1 equal fingerprints verify the
//     sub-graph.
type Matcher struct {
	f     int
	bySID map[string]map[int]map[digest.Key]digest.Sum
}

// NewMatcher builds a matcher asserting f+1 agreement.
func NewMatcher(f int) *Matcher {
	return &Matcher{f: f, bySID: make(map[string]map[int]map[digest.Key]digest.Sum)}
}

// Add stores one report.
func (m *Matcher) Add(r digest.Report) {
	replicas := m.bySID[r.Key.SID]
	if replicas == nil {
		replicas = make(map[int]map[digest.Key]digest.Sum)
		m.bySID[r.Key.SID] = replicas
	}
	sums := replicas[r.Replica]
	if sums == nil {
		sums = make(map[digest.Key]digest.Sum)
		replicas[r.Replica] = sums
	}
	sums[r.Key] = r.Sum
}

// Reports returns how many digests replica has filed under sid.
func (m *Matcher) Reports(sid string, replica int) int {
	return len(m.bySID[sid][replica])
}

// Fingerprint rolls a replica's digest vector for sid into one sum,
// iterating keys in sorted order so equal vectors give equal prints.
func (m *Matcher) Fingerprint(sid string, replica int) digest.Sum {
	sums := m.bySID[sid][replica]
	keys := make([]digest.Key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Chunk < b.Chunk
	})
	h := sha256.New()
	for _, k := range keys {
		s := sums[k]
		fmt.Fprintf(h, "%d|%s|%d|", k.Point, k.Task, k.Chunk)
		h.Write(s[:])
	}
	var out digest.Sum
	h.Sum(out[:0])
	return out
}

// Agreement groups the given (completed) replicas of sid by fingerprint.
// ok reports whether some group reaches f+1; then majority holds that
// group's replicas (ascending) and deviants every other given replica.
func (m *Matcher) Agreement(sid string, completed []int) (majority, deviants []int, ok bool) {
	groups := make(map[digest.Sum][]int)
	for _, rep := range completed {
		fp := m.Fingerprint(sid, rep)
		groups[fp] = append(groups[fp], rep)
	}
	var best []int
	for _, g := range groups {
		sort.Ints(g)
		if len(g) > len(best) || (len(g) == len(best) && len(g) > 0 && (len(best) == 0 || g[0] < best[0])) {
			best = g
		}
	}
	if len(best) < m.f+1 {
		return nil, nil, false
	}
	inBest := make(map[int]bool, len(best))
	for _, r := range best {
		inBest[r] = true
	}
	for _, r := range completed {
		if !inBest[r] {
			deviants = append(deviants, r)
		}
	}
	sort.Ints(deviants)
	return best, deviants, true
}

// KeyDeviants performs the online per-key check over everything reported
// so far for sid: for each key where exactly one sum has f+1 replica
// votes, any replica with a different sum is deviant. This flags
// commission faults before replicas finish (approximate, offline
// comparison, §3.3).
//
// A key where TWO sums reach f+1 votes yields no deviants. With at most
// f faulty replicas every f+1 class contains an honest replica, and
// honest replicas agree — so two qualifying classes prove the fault
// budget was exceeded for this key and the evidence is unusable.
// Short chunks make the case practical, not hypothetical: two replicas
// faulty in unrelated ways (a truncated partition, a corruption that
// shifted a record into another partition) both emit an EMPTY stream
// for the key, and empty streams share the digest of no input. Picking
// a winner here — the pre-fix code took whichever class map iteration
// happened to visit first — blamed honest replicas nondeterministically.
func (m *Matcher) KeyDeviants(sid string) []int {
	replicas := m.bySID[sid]
	votes := make(map[digest.Key]map[digest.Sum][]int)
	for rep, sums := range replicas {
		for k, s := range sums {
			if votes[k] == nil {
				votes[k] = make(map[digest.Sum][]int)
			}
			votes[k][s] = append(votes[k][s], rep)
		}
	}
	deviant := make(map[int]bool)
	for _, bysum := range votes {
		var winner []int
		ambiguous := false
		for _, reps := range bysum {
			if len(reps) >= m.f+1 {
				if winner != nil {
					ambiguous = true
				}
				winner = reps
			}
		}
		if winner == nil || ambiguous {
			continue
		}
		inWin := make(map[int]bool, len(winner))
		for _, r := range winner {
			inWin[r] = true
		}
		for _, reps := range bysum {
			for _, r := range reps {
				if !inWin[r] {
					deviant[r] = true
				}
			}
		}
	}
	out := make([]int, 0, len(deviant))
	for r := range deviant {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// KeyAgreement resolves one exact key of sid: it returns the sum with
// at least f+1 replica votes and the ascending list of agreeing
// replicas. Like KeyDeviants, a key where two sums both reach f+1 is
// ambiguous (the fault budget was exceeded) and yields ok=false — the
// checkpoint path must never persist bytes whose agreement evidence is
// unusable.
func (m *Matcher) KeyAgreement(sid string, key digest.Key) (digest.Sum, []int, bool) {
	votes := make(map[digest.Sum][]int)
	for rep, sums := range m.bySID[sid] {
		if s, ok := sums[key]; ok {
			votes[s] = append(votes[s], rep)
		}
	}
	var winSum digest.Sum
	var winner []int
	for s, reps := range votes {
		if len(reps) >= m.f+1 {
			if winner != nil {
				return digest.Sum{}, nil, false // ambiguous
			}
			winSum, winner = s, reps
		}
	}
	if winner == nil {
		return digest.Sum{}, nil, false
	}
	sort.Ints(winner)
	return winSum, winner, true
}

// Forget drops all state for a sub-graph attempt (after verification or
// abandonment) so long controller runs don't accumulate stale digests.
func (m *Matcher) Forget(sid string) {
	delete(m.bySID, sid)
}

// SIDs returns how many sub-graph attempts currently hold digest state;
// lifecycle tests pin it to prove the controller's Forget sweep bounds
// matcher growth across retries and repeated runs.
func (m *Matcher) SIDs() int { return len(m.bySID) }

// Lookup returns the sum a replica reported for one exact key under sid.
func (m *Matcher) Lookup(sid string, replica int, key digest.Key) (digest.Sum, bool) {
	s, ok := m.bySID[sid][replica][key]
	return s, ok
}

// QuizAgrees checks quiz evidence against the primary: every digest the
// quiz replica filed under sid (the re-executed tasks' chunk digests and
// audit output digests — nothing else, since quizzes only run sampled
// tasks) must have been reported with an identical sum by the primary
// replica. A key the primary never reported counts as disagreement: the
// quiz re-derived a stream the primary hid or chunked differently, and
// the always-emitted final chunk makes a shorter honest stream produce a
// missing-key mismatch rather than silence.
func (m *Matcher) QuizAgrees(sid string, primary, quiz int) bool {
	prim := m.bySID[sid][primary]
	for k, qs := range m.bySID[sid][quiz] {
		ps, ok := prim[k]
		if !ok || ps != qs {
			return false
		}
	}
	return true
}
