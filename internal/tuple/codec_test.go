package tuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSimple(t *testing.T) {
	in := Tuple{Int(1), Str("hello"), Int(-3)}
	line := EncodeLine(in)
	if line != "1\thello\t-3" {
		t.Fatalf("EncodeLine = %q", line)
	}
	out := DecodeLine(line, nil)
	if !EqualTuples(in, out) {
		t.Errorf("round trip: got %v, want %v", out, in)
	}
}

func TestEncodeEscaping(t *testing.T) {
	in := Tuple{Str("a\tb"), Str("c\nd"), Str(`e\f`)}
	line := EncodeLine(in)
	if strings.ContainsAny(line, "\n") {
		t.Fatalf("encoded line contains raw newline: %q", line)
	}
	out := DecodeLine(line, nil)
	if out[0].Str() != "a\tb" || out[1].Str() != "c\nd" || out[2].Str() != `e\f` {
		t.Errorf("escape round trip failed: %v", out)
	}
}

func TestDecodeWithSchema(t *testing.T) {
	s := &Schema{Fields: []Field{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeString},
	}}
	out := DecodeLine("42\t42", s)
	if out[0].Kind() != KindInt || out[1].Kind() != KindString {
		t.Errorf("schema coercion failed: kinds %v %v", out[0].Kind(), out[1].Kind())
	}
}

func TestDecodeExtraColumnsBeyondSchema(t *testing.T) {
	s := NewSchema("a")
	out := DecodeLine("1\t2\tx", s)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[1].Kind() != KindInt || out[2].Kind() != KindString {
		t.Error("extra columns should coerce as TypeAny")
	}
}

func TestDecodeEmptyLine(t *testing.T) {
	if got := DecodeLine("", nil); len(got) != 0 {
		t.Errorf("DecodeLine(\"\") = %v", got)
	}
}

func TestDecodeEmptyFields(t *testing.T) {
	out := DecodeLine("\t\t", nil)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	for i, v := range out {
		if v.Str() != "" {
			t.Errorf("field %d = %q, want empty", i, v.Str())
		}
	}
}

func TestAppendCanonicalMatchesEncodeLine(t *testing.T) {
	in := Tuple{Int(7), Str("x\ty"), Float(1.5)}
	canon := AppendCanonical(nil, in)
	if string(canon) != EncodeLine(in)+"\n" {
		t.Errorf("canonical %q != line %q + newline", canon, EncodeLine(in))
	}
}

func TestAppendCanonicalAppends(t *testing.T) {
	prefix := []byte("pre|")
	out := AppendCanonical(prefix, Tuple{Int(1)})
	if string(out) != "pre|1\n" {
		t.Errorf("AppendCanonical did not append: %q", out)
	}
}

func TestTrailingBackslashSurvives(t *testing.T) {
	in := Tuple{Str(`end\`)}
	out := DecodeLine(EncodeLine(in), nil)
	if out[0].Str() != `end\` {
		t.Errorf("trailing backslash round trip: %q", out[0].Str())
	}
}

func TestUnknownEscapePassthrough(t *testing.T) {
	// A stray escape not produced by the encoder is preserved verbatim.
	out := DecodeLine(`a\qb`, nil)
	if out[0].Str() != `a\qb` {
		t.Errorf("got %q", out[0].Str())
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(fields []string) bool {
		in := make(Tuple, len(fields))
		for i, s := range fields {
			in[i] = Str(s)
		}
		if len(in) == 0 || (len(in) == 1 && fields[0] == "") {
			// Empty tuples and single-empty-field tuples share the empty
			// line encoding (documented codec ambiguity); skip.
			return true
		}
		// Skip tuples whose fields would be re-inferred as ints; use
		// a schema to force string typing for a faithful comparison.
		schema := &Schema{Fields: make([]Field, len(in))}
		for i := range schema.Fields {
			schema.Fields[i] = Field{Name: "c", Type: TypeString}
		}
		out := DecodeLine(EncodeLine(in), schema)
		return EqualTuples(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalDeterminismProperty(t *testing.T) {
	f := func(a int64, s string) bool {
		tup := Tuple{Int(a), Str(s)}
		x := AppendCanonical(nil, tup)
		y := AppendCanonical(nil, tup.Clone())
		return string(x) == string(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
