package experiments

import (
	"fmt"

	"clusterbft/internal/chaos"
	"clusterbft/internal/cluster"
)

// RecoveryRow is one fault scenario's end-to-end outcome on the chaos
// campaign workload: how much virtual time the run took, how many
// sub-graph attempts it needed, and which recovery actions the
// controller exercised on the way to (or instead of) verification.
type RecoveryRow struct {
	Scenario   string
	LatencyUs  int64
	Attempts   int
	Recoveries map[string]int
	Verified   bool
	Violations int
}

// RecoveryResult is the recovery-latency table: the paper's recovery
// story (§4.2 retry at r+1, §4.3 fault isolation) measured as added
// virtual latency per injected fault class, against the clean run.
type RecoveryResult struct {
	Rows []RecoveryRow
}

// Recovery runs one hand-built schedule per fault class through the
// deterministic fault-injection subsystem and reports the recovery
// latency relative to the fault-free run. Scenarios reuse the campaign
// workload (three chained sub-graphs, R=3 on a 6x2 cluster), so rows are
// comparable with campaign reports; every row is a pure function of the
// fixed schedules below.
func Recovery() (*RecoveryResult, error) {
	cfg := chaos.DefaultCampaign()
	baseline, err := chaos.Baseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovery baseline: %w", err)
	}
	node := func(i int) cluster.NodeID {
		return cluster.NodeID(fmt.Sprintf("node-%03d", i))
	}
	scenarios := []struct {
		name  string
		sched *chaos.Schedule
	}{
		{"clean", &chaos.Schedule{}},
		{"crash+rejoin", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.CrashRejoin, Node: node(2), AtUs: 2_000_000, DownUs: 20_000_000, Salt: 11},
		}}},
		{"straggler x6", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.Straggler, Node: node(1), Slow: 6, Salt: 12},
		}}},
		{"hang p=0.6", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.HangTask, Node: node(3), Prob: 600, Salt: 13},
		}}},
		// One hanging node is masked by replication: verification takes
		// the first f+1 agreeing replicas and kills the laggard. Hanging
		// half the cluster exceeds that margin and forces the timeout
		// path — retry at r+1 with a doubled timeout (§4.2 step 6).
		{"hang 3 nodes p=0.9", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.HangTask, Node: node(0), Prob: 900, Salt: 21},
			{Kind: chaos.HangTask, Node: node(2), Prob: 900, Salt: 22},
			{Kind: chaos.HangTask, Node: node(4), Prob: 900, Salt: 23},
		}}},
		{"commission p=0.9", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.Commission, Node: node(4), Prob: 900, Salt: 14},
		}}},
		{"truncate-write", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.TruncateWrite, Replica: 1, Prob: 950, Salt: 15},
		}}},
	}
	res := &RecoveryResult{}
	for _, sc := range scenarios {
		sr := chaos.RunSchedule(cfg, sc.sched, baseline)
		res.Rows = append(res.Rows, RecoveryRow{
			Scenario:   sc.name,
			LatencyUs:  sr.EndUs,
			Attempts:   sr.Attempts,
			Recoveries: sr.Recoveries,
			Verified:   sr.Verified,
			Violations: len(sr.Violations),
		})
	}
	return res, nil
}

// Render prints the recovery-latency table.
func (r *RecoveryResult) Render() string {
	var clean int64
	for _, row := range r.Rows {
		if row.Scenario == "clean" {
			clean = row.LatencyUs
		}
	}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		outcome := "verified"
		if !row.Verified {
			outcome = "failed"
		}
		if row.Violations > 0 {
			outcome += fmt.Sprintf(" (%d violations)", row.Violations)
		}
		rows[i] = []string{
			row.Scenario,
			seconds(row.LatencyUs),
			ratio(row.LatencyUs, clean),
			fmt.Sprintf("%d", row.Attempts),
			renderRecov(row.Recoveries),
			outcome,
		}
	}
	return "recovery latency by fault class (campaign workload, R=3, 6x2 cluster):\n" +
		table([]string{"scenario", "latency(s)", "vs clean", "attempts", "recovery actions", "outcome"}, rows)
}

func renderRecov(m map[string]int) string {
	keys := []string{"retry", "restart", "fail"}
	out := ""
	for _, k := range keys {
		if m[k] > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", k, m[k])
		}
	}
	if out == "" {
		return "-"
	}
	return out
}
