#!/usr/bin/env sh
# Regenerates BENCH_dataplane.json: the tracked ns/op, B/op and allocs/op
# baseline of the per-record data plane (see bench_dataplane_test.go and
# EXPERIMENTS.md "Data-plane micro-benchmarks"), plus the verdict-plane
# shard sweep (BenchmarkVerdictThroughput in internal/faultsim — note its
# wall-clock only scales with shards when GOMAXPROCS provides the cores;
# the deterministic scaling table is `experiments -exp shardscale`).
# Run from the repo root:
#
#   scripts/bench_dataplane.sh [extra go-test args]
#
# Compare a work-in-progress change against the committed baseline with
# `git diff BENCH_dataplane.json` before updating it.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_dataplane.json

{
	go test -run='^$' -bench='BenchmarkDataplane' -benchmem "$@" ./internal/mapred/
	go test -run='^$' -bench='BenchmarkVerdictThroughput' -benchmem "$@" ./internal/faultsim/
} |
	awk '
	BEGIN { print "{"; first = 1 }
	/^goos:/ { goos = $2 }
	/^goarch:/ { goarch = $2 }
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	$1 ~ /^Benchmark(Dataplane|VerdictThroughput)/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkDataplane/, "", name)
		sub(/^Benchmark/, "", name)
		ns = ""; bytes = ""; allocs = ""; records = ""
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			if ($(i + 1) == "B/op") bytes = $i
			if ($(i + 1) == "allocs/op") allocs = $i
			if ($(i + 1) == "records/op") records = $i
		}
		if (ns == "") next
		if (!first) printf ",\n"
		first = 0
		printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"records_per_op\": %s}", \
			name, ns, bytes, allocs, records
	}
	END {
		printf "\n  ,\"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"note\": \"per-op = one batch; records_per_op records per batch\"}\n", goos, goarch, cpu
		print "}"
	}' >"$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out"
