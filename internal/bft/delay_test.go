package bft

import (
	"fmt"
	"strings"
	"testing"
)

// Agreement must hold under arbitrary (but fair) per-link message delays:
// reordering across links cannot produce divergent logs or wrong results.

func TestAgreementUnderRandomDelays(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, sms := newGroup(1)
			// Deterministic pseudo-random delays in [1ms, 40ms] per message.
			x := uint64(seed)
			g.Net.Delay = func(from, to ID) int64 {
				x = x*6364136223846793005 + 1442695040888963407
				return 1_000 + int64(x%40_000)
			}
			for i := 0; i < 4; i++ {
				op := fmt.Sprintf("op-%d", i)
				res, _, err := g.Invoke([]byte(op))
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				want := fmt.Sprintf("%d:%s", i+1, op)
				if string(res) != want {
					t.Fatalf("op %d: got %q, want %q", i, res, want)
				}
			}
			g.Net.Run(50_000) // drain stragglers
			ref := strings.Join(sms[0].ops, "|")
			for i, sm := range sms {
				if got := strings.Join(sm.ops, "|"); got != ref && len(sm.ops) == len(sms[0].ops) {
					t.Errorf("replica %d log %q != %q", i, got, ref)
				}
			}
		})
	}
}

func TestAgreementUnderDelaysWithSilentReplica(t *testing.T) {
	g, _ := newGroup(1)
	silent := ReplicaID(2)
	x := uint64(99)
	g.Net.Delay = func(from, to ID) int64 {
		x = x*6364136223846793005 + 1442695040888963407
		return 1_000 + int64(x%30_000)
	}
	g.Net.Drop = func(from, to ID, _ Message) bool { return from == silent }
	for i := 0; i < 3; i++ {
		res, _, err := g.Invoke([]byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		want := fmt.Sprintf("%d:v%d", i+1, i)
		if string(res) != want {
			t.Fatalf("op %d: %q != %q", i, res, want)
		}
	}
}

func TestSlowPrimaryLinkStillLive(t *testing.T) {
	// The primary's outbound link is slow but not dead: either the
	// protocol finishes in view 0 (slowly) or a view change takes over;
	// both must yield the correct result.
	g, _ := newGroup(1)
	primary := ReplicaID(0)
	g.Net.Delay = func(from, to ID) int64 {
		if from == primary {
			return 45_000 // just under the 50ms view-change timeout
		}
		return 1_000
	}
	res, lat, err := g.Invoke([]byte("slowly"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:slowly" {
		t.Errorf("result = %q", res)
	}
	if lat <= 0 {
		t.Error("latency not measured")
	}
}
