package experiments

import (
	"fmt"

	"clusterbft/internal/core"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

// OverheadRow is one configuration of the Fig 9 / Fig 10 latency
// comparisons: the script run once with digests (Single Execution) and
// with 4 replicas plus f+1 digest matching (BFT Execution).
type OverheadRow struct {
	Label    string
	Points   []string // forced point aliases; nil means marker(n)
	N        int      // marker point count when Points is nil
	SingleUs int64
	BFTUs    int64
}

// OverheadResult is a full Fig 9 or Fig 10 dataset.
type OverheadResult struct {
	Name      string
	PurePigUs int64
	Rows      []OverheadRow
}

// Render prints the figure's series: latency and overhead over Pure Pig.
func (r *OverheadResult) Render() string {
	rows := [][]string{{"Pure Pig", seconds(r.PurePigUs), "-", seconds(r.PurePigUs), "-"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			seconds(row.SingleUs), overheadPct(row.SingleUs, r.PurePigUs),
			seconds(row.BFTUs), overheadPct(row.BFTUs, r.PurePigUs),
		})
	}
	return r.Name + "\n" + table(
		[]string{"config", "single(s)", "single-ovh", "bft(s)", "bft-ovh"}, rows)
}

// runOverhead measures one script under pure, single and BFT execution
// for each point configuration.
func runOverhead(sc Scale, name, script, dataPath string, data []string, rows []OverheadRow) (*OverheadResult, error) {
	res := &OverheadResult{Name: name}

	pure := newRig(sc, dataPath, data)
	lat, err := core.RunPlainOpts(pure.eng, script, mapred.CompileOptions{
		NumReduces: 2, DisableCombine: sc.DisableCombine,
	})
	if err != nil {
		return nil, fmt.Errorf("%s pure: %w", name, err)
	}
	res.PurePigUs = lat

	for _, row := range rows {
		single, err := runOnce(sc, script, dataPath, data, core.Config{
			F: 0, R: 1, ForcePointAliases: row.Points, Points: row.N,
			NumReduces: 2, TimeoutUs: 3_600_000_000, Offline: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s single %s: %w", name, row.Label, err)
		}
		bft, err := runOnce(sc, script, dataPath, data, core.Config{
			F: 1, R: 4, ForcePointAliases: row.Points, Points: row.N,
			NumReduces: 2, TimeoutUs: 3_600_000_000, Offline: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s bft %s: %w", name, row.Label, err)
		}
		row.SingleUs = single.LatencyUs
		row.BFTUs = bft.LatencyUs
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runOnce(sc Scale, script, dataPath string, data []string, cfg core.Config) (*core.Result, error) {
	r := newRig(sc, dataPath, data)
	return r.controller(cfg).Run(script)
}

// Fig9 reproduces "Latency of running Twitter Follower Analysis": Pure
// Pig vs Single vs BFT execution with 1, 2 and 3 verification points
// placed by the marker function. The paper reports ~8% minimal overhead
// and 9/14/19% worst case for 1/2/3 points.
func Fig9(sc Scale) (*OverheadResult, error) {
	data := workload.Twitter(sc.TwitterEdges, sc.TwitterUsers, sc.Seed)
	rows := []OverheadRow{
		{Label: "1 point", N: 1},
		{Label: "2 points", N: 2},
		{Label: "3 points", N: 3},
	}
	return runOverhead(sc, "Fig 9: Twitter Follower Analysis latency",
		workload.FollowerScript, workload.TwitterPath, data, rows)
}

// Fig10 reproduces "Digest computation overhead for Twitter Two Hop
// Analysis": digests at the Join, Project and Filter operators and their
// combinations.
func Fig10(sc Scale) (*OverheadResult, error) {
	// The self-join's output grows with the square of per-user edge
	// counts; a wider user pool keeps the paper-scale join tractable
	// while preserving the skewed shape.
	data := workload.Twitter(sc.TwitterEdges/2, sc.TwitterUsers*5, sc.Seed+1)
	rows := []OverheadRow{
		{Label: "Join", Points: []string{"hops"}},
		{Label: "Project", Points: []string{"pairs"}},
		{Label: "Filter", Points: []string{"proper"}},
		{Label: "J&F", Points: []string{"hops", "proper"}},
		{Label: "J,P&F", Points: []string{"hops", "pairs", "proper"}},
	}
	return runOverhead(sc, "Fig 10: Twitter Two Hop Analysis digest overhead",
		workload.TwoHopScript, workload.TwitterPath, data, rows)
}
