// Command faultsim drives the fault-isolation simulator of §6.3: a
// 250-node cluster running replicated jobs with Byzantine nodes, printing
// how quickly the fault analyzer narrows suspicion to the faulty nodes.
//
// Usage:
//
//	faultsim [-p 0.6] [-f 1] [-mix r1|r2|large] [-time 300] [-seed 1] [-trials 1]
//	         [-timeline 40] [--trace=run.json] [--metrics]
//
// -timeline prints the suspicion convergence timeline — every digest
// mismatch, intersection/exoneration step, and conviction, stamped with
// the simulator tick it happened at. --trace exports the same audit
// trail as a Chrome trace_event timeline (one row per event kind, plus a
// .jsonl twin); --metrics prints run counters as a registry snapshot.
//
// A second mode drives the deterministic fault-injection subsystem
// instead of the suspicion simulator:
//
//	faultsim -chaos [-seed 7]        one seeded schedule end-to-end
//	faultsim -campaign 200 [-seed 1] N schedules with invariant checks
//
// In chaos mode -http serves the live introspection plane (/metrics,
// /healthz, /jobs, /trace, pprof) while the campaign runs; the registry,
// jobs board and trace ring are shared across schedules, so a long
// campaign can be watched converge. The cost buckets shown under /jobs
// are the currently-running schedule's ledger.
//
// Both print the schedule(s), recovery actions and invariant outcomes;
// the same seed always reproduces the same report byte-for-byte.
// -verify-policy=full|quiz|deferred|auto runs the campaign's controllers
// under that verification policy (quiz/deferred sample at fraction 1 so
// every commission fault is quizzable). The storage flags (-block-size,
// -mem-budget, -spill-dir, -compress) configure the chaos runs' DFS
// block data plane; reports are byte-identical at any setting. The
// suspicion simulator has no storage layer and ignores them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"clusterbft/internal/analyze"
	"clusterbft/internal/chaos"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/faultsim"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/obs/introspect"
)

func main() {
	p := flag.Float64("p", 0.6, "commission probability of a faulty node")
	f := flag.Int("f", 1, "tolerated faults (replicas = 3f+1)")
	mixName := flag.String("mix", "r1", "job size mix: r1 (6:3:1), r2 (2:2:1) or large")
	simTime := flag.Int("time", 300, "simulated ticks")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 1, "averaging trials for jobs-to-isolate")
	timeline := flag.Int("timeline", 0, "print the last N suspicion audit events (-1 = all, 0 = off)")
	traceFile := flag.String("trace", "", "write the audit trail as Chrome trace_event JSON here (a .jsonl twin is written next to it)")
	metrics := flag.Bool("metrics", false, "print run counters as a metrics registry snapshot")
	chaosRun := flag.Bool("chaos", false, "run one seeded fault-injection schedule end-to-end (uses -seed)")
	campaign := flag.Int("campaign", 0, "run N seeded fault-injection schedules with invariant checks (uses -seed as base)")
	policyName := flag.String("verify-policy", "full", "chaos-mode verification policy: full, quiz, deferred or auto")
	checkpoint := flag.Bool("checkpoint", false, "chaos mode: enable checkpoint-granular recovery and quantile straggler re-launch in every schedule")
	shards := flag.Int("shards", 0, "chaos mode: split each controller's digest verification across N parallel verdict pipelines (<=1: inline)")
	httpAddr := flag.String("http", "", "chaos mode: serve live introspection (/metrics, /healthz, /jobs, /trace, pprof) on this address, e.g. :8080")
	storageFlags := dfs.Flags(flag.CommandLine)
	flag.Parse()

	if *chaosRun || *campaign > 0 {
		policy, err := core.ParsePolicy(*policyName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		storage, err := storageFlags()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		cfg := chaos.DefaultCampaign()
		cfg.BaseSeed = *seed
		cfg.Schedules = *campaign
		cfg.Core.VerifyPolicy = policy
		cfg.Core.Storage = storage
		cfg.Core.Checkpoint = *checkpoint
		cfg.Core.Shards = *shards
		if *checkpoint {
			cfg.Speculation = true
			cfg.SpecQuantile = 0.95
		}
		if policy != core.PolicyFull {
			cfg.Core.QuizFraction = 1
		}
		if *chaosRun && *campaign <= 0 {
			cfg.Schedules = 1
		}
		if *httpAddr != "" {
			reg := obs.NewRegistry()
			tracer := obs.NewTracer(0)
			board := obs.NewJobsBoard()
			var cur atomic.Pointer[mapred.Engine]
			cfg.Observe = func(e *mapred.Engine) {
				e.InstrumentMetrics(reg)
				e.Trace = tracer
				e.Board = board
				cur.Store(e)
			}
			srv, err := introspect.Start(*httpAddr, introspect.Options{
				Registry: reg,
				Tracer:   tracer,
				Board:    board,
				Cost: func() any {
					if e := cur.Load(); e != nil {
						return e.Ledger.Buckets()
					}
					return nil
				},
				SIDCost: func(sid string) (any, bool) {
					if e := cur.Load(); e != nil {
						if b, ok := e.Ledger.SIDBuckets(sid); ok {
							return b, true
						}
					}
					return nil, false
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
				os.Exit(2)
			}
			defer srv.Close()
			fmt.Printf("introspection: %s\n", srv.URL())
		}
		rep, err := chaos.RunCampaign(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if len(rep.Violations()) > 0 {
			os.Exit(1)
		}
		return
	}

	var mix faultsim.Mix
	switch *mixName {
	case "r1":
		mix = faultsim.R1
	case "r2":
		mix = faultsim.R2
	case "large":
		mix = faultsim.Mix{Large: 10, Medium: 1, Small: 1}
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	cfg := faultsim.Config{
		F:              *f,
		CommissionProb: *p,
		Mix:            mix,
		MaxTime:        *simTime,
		Seed:           *seed,
	}

	if *trials > 1 {
		avg := faultsim.JobsToIsolate(cfg, *trials)
		fmt.Printf("avg jobs until |D|=f over %d trials: %.1f\n", *trials, avg)
		return
	}

	res := faultsim.Run(cfg)
	fmt.Printf("jobs completed:      %d\n", res.JobsCompleted)
	fmt.Printf("faults observed:     %d\n", res.FaultsObserved)
	fmt.Printf("|D|=f after:         %d jobs (t=%d)\n", res.JobsAtSaturation, res.TimeAtSaturation)
	fmt.Printf("true faulty nodes:   %v\n", res.TrueFaulty)
	fmt.Printf("final suspects:      %v\n", res.Suspects)
	fmt.Printf("exactly isolated:    %v\n", res.Isolated)
	fmt.Println("\nsuspicion population (every 15 ticks):")
	fmt.Println("time  low  med  high")
	for _, s := range res.Samples {
		if s.Time%15 == 0 {
			fmt.Printf("%4d  %3d  %3d  %4d\n", s.Time, s.Low, s.Med, s.High)
		}
	}

	if *timeline != 0 {
		max := *timeline
		if max < 0 {
			max = 0 // RenderTimeline treats <= 0 as "everything"
		}
		fmt.Printf("\nsuspicion convergence timeline (%d events, t = simulator tick):\n%s",
			len(res.Timeline), res.RenderTimeline(max))
	}
	if *traceFile != "" {
		twin, err := obs.WriteTraceFiles(auditTracer(res.Timeline), *traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %s (chrome://tracing, Perfetto)  jsonl: %s  events: %d\n",
			*traceFile, twin, len(res.Timeline))
	}
	if *metrics {
		reg := obs.NewRegistry()
		reg.Counter("faultsim.jobs_completed").Add(int64(res.JobsCompleted))
		reg.Counter("faultsim.faults_observed").Add(int64(res.FaultsObserved))
		reg.Counter("faultsim.probes_launched").Add(int64(res.ProbesLaunched))
		reg.Counter("faultsim.audit_events").Add(int64(len(res.Timeline)))
		for _, e := range res.Timeline {
			reg.Counter("faultsim.audit." + e.Kind.String()).Inc()
		}
		fmt.Printf("\nmetrics:\n%s", reg.RenderText())
	}
}

// auditTracer converts the run's audit trail into instant spans, one
// trace row per event kind, so the convergence shows up as vertical
// streaks in Perfetto (ts is the simulator tick).
func auditTracer(events []analyze.AuditEvent) *obs.Tracer {
	tr := obs.NewTracer(len(events))
	for _, e := range events {
		attrs := make([]obs.Attr, 0, 3)
		attrs = append(attrs, obs.A("nodes", joinNodes(e.Nodes)))
		if len(e.Removed) > 0 {
			attrs = append(attrs, obs.A("exonerated", joinNodes(e.Removed)))
		}
		if e.Detail != "" {
			attrs = append(attrs, obs.A("detail", e.Detail))
		}
		tr.Record("suspicion", e.Kind.String(), e.Kind.String(), e.T, e.T, attrs...)
	}
	return tr
}

func joinNodes(ids []cluster.NodeID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}
