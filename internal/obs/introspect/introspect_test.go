package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/pig"
)

const testScript = `
w = LOAD 'data/weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
g2 = GROUP avgs BY a;
counts = FOREACH g2 GENERATE group AS a, COUNT(avgs) AS n;
STORE counts INTO 'out/counts';
`

func weatherData(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("st%02d\t%d", i%8, (i*37)%40)
	}
	return lines
}

// rig is a BFT-controlled run wired the way cmd/pigrun -http wires one.
type rig struct {
	eng  *mapred.Engine
	ctrl *core.Controller
	srv  *Server
}

func newRig(t *testing.T) *rig {
	t.Helper()
	fs := dfs.New()
	fs.Append("data/weather", weatherData(500)...)
	cfg := core.DefaultConfig()
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	eng := mapred.NewEngine(fs, cluster.New(8, 3), core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	reg := obs.NewRegistry()
	eng.InstrumentMetrics(reg)
	eng.Trace = obs.NewTracer(0)
	eng.Board = obs.NewJobsBoard()
	ctrl := core.NewController(eng, cfg, susp, nil)
	srv, err := Start("127.0.0.1:0", Options{
		Registry: reg,
		Tracer:   eng.Trace,
		Board:    eng.Board,
		Cost:     func() any { return eng.Ledger.Buckets() },
		SIDCost: func(sid string) (any, bool) {
			b, ok := eng.Ledger.SIDBuckets(sid)
			return b, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); fs.Close() })
	return &rig{eng: eng, ctrl: ctrl, srv: srv}
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// jobsDoc mirrors the /jobs JSON contract the dashboard scrapes.
type jobsDoc struct {
	Jobs      []obs.JobStatus     `json:"jobs"`
	SIDs      []obs.SIDStatus     `json:"sids"`
	Suspicion obs.SuspicionStatus `json:"suspicion"`
	Cost      *mapred.CostBuckets `json:"cost"`
}

// TestMetricsGolden pins the /metrics exposition byte-for-byte for a
// fixed registry, including label-escaping edge cases, and checks the
// body re-parses with the in-repo validator.
func TestMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Help("cost.cpu_us", "per-bucket cost attribution")
	reg.With("bucket", "committed").Func("cost.cpu_us", func() int64 { return 900 })
	reg.With("bucket", "verify", "mode", "quiz").Func("cost.cpu_us", func() int64 { return 100 })
	reg.Help("mapred.cpu_us", "virtual CPU microseconds charged to task bodies")
	reg.Counter("mapred.cpu_us").Add(1234567)
	h := reg.With("stage", "map", "job", "weird\"job\\name\n").Histogram("mapred.stage_task_duration_us", []int64{1000, 10000})
	h.Observe(500)
	h.Observe(20000)
	reg.Gauge("slots.free").Set(12)

	srv, err := Start("127.0.0.1:0", Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, ct := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if body != string(want) {
		t.Errorf("/metrics diverges from %s:\ngot:\n%s\nwant:\n%s", golden, body, want)
	}
	st, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("golden exposition does not parse: %v", err)
	}
	if st.Families != 4 || st.Series != 9 {
		t.Errorf("stats = %+v, want 4 families / 9 series", st)
	}
}

// TestEndpointsAfterRealRun drives a real verified run and round-trips
// every JSON endpoint against the engine's own state.
func TestEndpointsAfterRealRun(t *testing.T) {
	r := newRig(t)
	res, err := r.ctrl.Run(testScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run not verified")
	}
	base := r.srv.URL()

	code, body, ct := get(t, base+"/jobs")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/jobs status=%d content-type=%q", code, ct)
	}
	var doc jobsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/jobs JSON: %v\n%s", err, body)
	}
	if len(doc.Jobs) == 0 || len(doc.SIDs) == 0 {
		t.Fatalf("/jobs empty: %d jobs, %d sids", len(doc.Jobs), len(doc.SIDs))
	}
	var done *obs.JobStatus
	for i := range doc.Jobs {
		j := &doc.Jobs[i]
		if j.State != "done" && j.State != "killed" {
			t.Errorf("job %s still %q after quiesce", j.ID, j.State)
		}
		if j.State == "done" && done == nil {
			done = j
		}
	}
	if done == nil {
		t.Fatal("no done job on the board")
	}
	if done.SID == "" || done.MapsTotal == 0 || done.MapsDone != done.MapsTotal || done.Progress != 1 {
		t.Errorf("done job malformed: %+v", done)
	}
	verified := 0
	for _, s := range doc.SIDs {
		if s.State == "verified" {
			verified++
			if s.Policy != "full" {
				t.Errorf("sid %s policy = %q, want full", s.SID, s.Policy)
			}
		}
	}
	if verified == 0 {
		t.Errorf("no verified sid on the board: %+v", doc.SIDs)
	}
	if doc.Cost == nil || doc.Cost.CommittedUs == 0 {
		t.Fatalf("/jobs cost missing or empty: %+v", doc.Cost)
	}
	if got, want := doc.Cost.TotalUs(), r.eng.Metrics.CPUTimeUs; got != want {
		t.Errorf("/jobs cost buckets sum to %d, engine charged %d", got, want)
	}

	// Job IDs contain slashes; the /jobs/{id} route must take them whole.
	if !strings.Contains(done.ID, "/") {
		t.Fatalf("expected a slash-scoped job ID, got %q", done.ID)
	}
	code, body, _ = get(t, base+"/jobs/"+done.ID)
	if code != http.StatusOK {
		t.Fatalf("/jobs/%s status = %d", done.ID, code)
	}
	var one obs.JobStatus
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("/jobs/{id} JSON: %v", err)
	}
	if one.ID != done.ID || one.TasksCommitted != done.TasksCommitted {
		t.Errorf("/jobs/{id} = %+v, want %+v", one, done)
	}

	code, body, _ = get(t, base+"/jobs/"+done.ID+"/stragglers")
	if code != http.StatusOK {
		t.Fatalf("stragglers status = %d", code)
	}
	var rep obs.StragglerReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("stragglers JSON: %v", err)
	}
	if rep.Job != done.ID || len(rep.Stages) == 0 {
		t.Errorf("straggler report malformed: %+v", rep)
	}

	if code, _, _ := get(t, base+"/jobs/no/such/job"); code != http.StatusNotFound {
		t.Errorf("missing job status = %d, want 404", code)
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// /metrics reflects the run and parses.
	_, body, _ = get(t, base+"/metrics")
	st, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics invalid after run: %v", err)
	}
	if st.Series == 0 {
		t.Error("/metrics empty after run")
	}
	if !strings.Contains(body, `cost_cpu_us{bucket="committed"}`) {
		t.Error("/metrics missing cost attribution family")
	}
	if !strings.Contains(body, "mapred_stage_task_duration_us_bucket") {
		t.Error("/metrics missing per-stage duration histogram")
	}

	// /trace streams spans as JSONL; drain empties the ring.
	_, body, ct = get(t, base+"/trace?drain=1")
	if !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("/trace content-type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/trace drained no spans")
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Errorf("trace line not JSON: %v", err)
	}
	if _, body, _ = get(t, base+"/trace"); strings.TrimSpace(body) != "" {
		t.Errorf("ring not empty after drain: %q", body)
	}
}

// TestEndpointsLiveDuringRun hammers the introspection plane from HTTP
// goroutines while the simulation executes — the concurrency contract
// the whole package exists for (run with -race).
func TestEndpointsLiveDuringRun(t *testing.T) {
	r := newRig(t)
	base := r.srv.URL()
	runErr := make(chan error, 1)
	runDone := make(chan struct{})
	go func() {
		_, err := r.ctrl.Run(testScript)
		runErr <- err
		close(runDone)
	}()
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		for i := 0; ; i++ {
			select {
			case <-runDone:
				return
			default:
			}
			for _, path := range []string{"/jobs", "/metrics", "/healthz", "/trace"} {
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("live GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	<-hammerDone
}

// TestHealthCallbackAndUnservedEndpoints: a failing Health turns 503,
// and a handler with no tracer 404s /trace instead of crashing.
func TestHealthCallbackAndUnservedEndpoints(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{
		Health: func() error { return fmt.Errorf("sim wedged") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, srv.URL()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "sim wedged") {
		t.Errorf("/healthz = %d %q, want 503", code, body)
	}
	if code, _, _ := get(t, srv.URL()+"/trace"); code != http.StatusNotFound {
		t.Errorf("/trace with no tracer = %d, want 404", code)
	}
	// Nil registry and board degrade to empty documents, not panics.
	if code, body, _ := get(t, srv.URL()+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics with nil registry = %d %q", code, body)
	}
	code, body, _ = get(t, srv.URL()+"/jobs")
	if code != http.StatusOK || !strings.Contains(body, `"jobs": []`) {
		t.Errorf("/jobs with nil board = %d %q", code, body)
	}
}

// TestStragglersBeforeAnyCommit: a job queried the instant it is
// submitted — zero committed tasks, zero duration observations — must
// serialize as an empty report with "stages": [] and "stragglers": [],
// never null arrays or degenerate NaN/Inf-shaped quantiles computed
// over an empty window.
func TestStragglersBeforeAnyCommit(t *testing.T) {
	r := newRig(t)
	plan, err := pig.Parse(testScript)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := mapred.Compile(plan, mapred.CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Submit puts the job on the board; no Run, so nothing ever commits.
	if _, err := r.eng.Submit(jobs[0]); err != nil {
		t.Fatal(err)
	}
	id := jobs[0].ID
	code, body, _ := get(t, r.srv.URL()+"/jobs/"+id+"/stragglers")
	if code != http.StatusOK {
		t.Fatalf("stragglers before commit status = %d, body %q", code, body)
	}
	var rep obs.StragglerReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("stragglers JSON: %v", err)
	}
	if rep.Job != id {
		t.Errorf("report job = %q, want %q", rep.Job, id)
	}
	if rep.Stages == nil || len(rep.Stages) != 0 {
		t.Errorf("stages = %#v, want empty non-nil slice", rep.Stages)
	}
	if rep.Stragglers == nil || len(rep.Stragglers) != 0 {
		t.Errorf("stragglers = %#v, want empty non-nil slice", rep.Stragglers)
	}
	for _, tok := range []string{`"stages": null`, `"stragglers": null`, "NaN", "Inf"} {
		if strings.Contains(body, tok) {
			t.Errorf("raw body contains %q: %s", tok, body)
		}
	}
}
