package mapred

import (
	"fmt"
	"testing"
)

// fuzzScripts are the workload shapes FuzzCombineEquivalence drives:
// every combinable reduce kind, the non-combinable AVG fallback, and a
// two-job chain whose second shuffle consumes combined output.
var fuzzScripts = []struct {
	src     string
	aliases []string
	stores  []string
}{
	{src: followerSrc, aliases: []string{"ne", "counts"}, stores: []string{"out/counts"}},
	{src: `
w = LOAD 'in/edges' AS (user:int, follower:int);
g = GROUP w BY user;
r = FOREACH g GENERATE group AS user, SUM(w.follower), AVG(w.follower), MIN(w.follower), MAX(w.follower), COUNT(w);
STORE r INTO 'out/agg';
`, aliases: []string{"r"}, stores: []string{"out/agg"}},
	{src: `
w = LOAD 'in/edges' AS (user:int, follower:int);
d = DISTINCT w;
STORE d INTO 'out/d';
`, aliases: []string{"d"}, stores: []string{"out/d"}},
	{src: `
w = LOAD 'in/edges' AS (user:int, follower:int);
g = GROUP w ALL;
r = FOREACH g GENERATE COUNT(w), SUM(w.follower), AVG(w.follower);
STORE r INTO 'out/all';
`, aliases: []string{"r"}, stores: []string{"out/all"}},
	{src: `
w = LOAD 'in/edges' AS (user:int, follower);
g = GROUP w BY user;
r = FOREACH g GENERATE group AS user, AVG(w.follower);
STORE r INTO 'out/u';
`, aliases: []string{"r"}, stores: []string{"out/u"}},
	{src: `
w = LOAD 'in/edges' AS (user:int, follower:int);
g = GROUP w BY user;
c = FOREACH g GENERATE group AS user, COUNT(w) AS n;
g2 = GROUP c BY n;
c2 = FOREACH g2 GENERATE group AS n, COUNT(c) AS users;
STORE c2 INTO 'out/chain';
`, aliases: []string{"c", "c2"}, stores: []string{"out/chain"}},
}

// FuzzCombineEquivalence randomizes grouped-aggregate and DISTINCT
// workloads (data distribution, row count, reduce parallelism, digest
// chunking, script shape) and requires the combiner to be invisible:
// identical STORE bytes and identical verification-point digest reports
// with combining on and off. Extends the codec fuzz corpus's role as
// the data plane's byte-level safety net to the shuffle's semantics.
func FuzzCombineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(120), uint8(7), uint8(3), uint8(40))
	f.Add(int64(2), uint8(1), uint16(200), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint8(2), uint16(64), uint8(16), uint8(4), uint8(10))
	f.Add(int64(4), uint8(3), uint16(33), uint8(3), uint8(2), uint8(200))
	f.Add(int64(5), uint8(4), uint16(90), uint8(5), uint8(3), uint8(25))
	f.Add(int64(6), uint8(5), uint16(150), uint8(9), uint8(2), uint8(50))
	f.Fuzz(func(t *testing.T, seed int64, script uint8, rows uint16, keys, reduces, chunk uint8) {
		sc := fuzzScripts[int(script)%len(fuzzScripts)]
		n := int(rows)%256 + 1
		k := int(keys)%32 + 1
		nr := int(reduces)%4 + 1
		lines := make([]string, n)
		state := uint64(seed)
		for i := range lines {
			// xorshift64: cheap deterministic stream seeded by the fuzzer.
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			user := int(state % uint64(k))
			follower := int(state>>8%257) - 64 // negatives, zeros, repeats
			lines[i] = fmt.Sprintf("%d\t%d", user, follower)
		}
		inputs := map[string][]string{"in/edges": lines}
		p := plan(t, sc.src)
		points := digestPoints(t, p, sc.aliases...)
		var got [2]string
		for i, disable := range []bool{false, true} {
			opts := CompileOptions{Points: points, NumReduces: nr, DisableCombine: disable}
			tr := run(t, sc.src, inputs, opts, func(e *Engine) { e.DigestChunk = int(chunk) })
			got[i] = observables(t, tr, sc.stores)
		}
		if got[0] != got[1] {
			t.Errorf("combiner changed observables (script %d, n=%d k=%d r=%d chunk=%d):\n--- on ---\n%s--- off ---\n%s",
				int(script)%len(fuzzScripts), n, k, nr, int(chunk), got[0], got[1])
		}
	})
}
