package mapred

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/pig"
)

// testRun executes a script on a fresh engine and returns the engine and
// the sorted lines of each STORE output.
type testRun struct {
	fs      *dfs.FS
	eng     *Engine
	plan    *pig.Plan
	jobs    []*JobSpec
	reports []digest.Report
}

func run(t *testing.T, script string, inputs map[string][]string, opts CompileOptions, mutate func(*Engine)) *testRun {
	t.Helper()
	return runOn(t, dfs.New(), script, inputs, opts, mutate)
}

// runOn is run over a caller-built FS, so suites can exercise the same
// script on differently-configured block data planes (tiny blocks,
// spill budgets, compression).
func runOn(t *testing.T, fs *dfs.FS, script string, inputs map[string][]string, opts CompileOptions, mutate func(*Engine)) *testRun {
	t.Helper()
	for path, lines := range inputs {
		fs.Append(path, lines...)
	}
	p, err := pig.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(4, 2)
	eng := NewEngine(fs, cl, nil, DefaultCostModel())
	tr := &testRun{fs: fs, eng: eng, plan: p, jobs: jobs}
	eng.DigestSink = func(r digest.Report) { tr.reports = append(tr.reports, r) }
	if mutate != nil {
		mutate(eng)
	}
	for _, j := range jobs {
		if _, err := eng.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	return tr
}

func (tr *testRun) output(t *testing.T, path string) []string {
	t.Helper()
	lines, err := tr.fs.ReadTree(path)
	if err != nil {
		t.Fatalf("read output %s: %v", path, err)
	}
	sort.Strings(lines)
	return lines
}

func edges() []string {
	// user<TAB>follower
	return []string{
		"1\t2", "1\t3", "1\t0", // user 1: 2 real followers (0 filtered)
		"2\t1", "2\t3", "2\t4",
		"3\t1",
	}
}

func TestRunFollowerCount(t *testing.T) {
	tr := run(t, followerSrc, map[string][]string{"in/edges": edges()}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "out/counts")
	want := []string{"1\t2", "2\t3", "3\t1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("counts = %v, want %v", got, want)
	}
	if !tr.eng.Idle() {
		t.Error("engine should be idle after run")
	}
}

func TestRunMapOnly(t *testing.T) {
	tr := run(t, `
a = LOAD 'x' AS (u:int, v:int);
f = FILTER a BY v > 10;
p = FOREACH f GENERATE u, u * v AS prod;
STORE p INTO 'o';
`, map[string][]string{"x": {"1\t5", "2\t20", "3\t30"}}, CompileOptions{}, nil)
	got := tr.output(t, "o")
	want := []string{"2\t40", "3\t90"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("out = %v, want %v", got, want)
	}
}

func TestRunJoinTwoHop(t *testing.T) {
	// Two-hop: J = JOIN A BY user, B BY follower pairs (follower-of-A,
	// user-of-B) two hops apart... here simply verify join semantics.
	tr := run(t, `
a = LOAD 'e' AS (u:int, f:int);
b = LOAD 'e' AS (u:int, f:int);
j = JOIN a BY u, b BY f;
p = FOREACH j GENERATE b::u AS src, a::f AS dst;
STORE p INTO 'o';
`, map[string][]string{"e": {"1\t2", "2\t3"}}, CompileOptions{}, nil)
	// a.u==b.f: (1,2)x(2,3): a=(1,2) matches b=(2,... wait b.f==1? no.
	// Pairs: a.u=2 joins b.f=2 -> b=(1,2),a=(2,3): src=1 dst=3.
	got := tr.output(t, "o")
	want := []string{"1\t3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("two hop = %v, want %v", got, want)
	}
}

func TestRunOrderLimit(t *testing.T) {
	tr := run(t, `
a = LOAD 'x' AS (k, n:int);
o = ORDER a BY n DESC;
top = LIMIT o 2;
STORE top INTO 'out';
`, map[string][]string{"x": {"a\t5", "b\t9", "c\t7", "d\t1"}}, CompileOptions{}, nil)
	lines, err := tr.fs.ReadTree("out")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b\t9", "c\t7"} // order preserved in single reduce
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("top = %v, want %v", lines, want)
	}
}

func TestRunOrderAscendingAndTies(t *testing.T) {
	tr := run(t, `
a = LOAD 'x' AS (k, n:int);
o = ORDER a BY n, k DESC;
STORE o INTO 'out';
`, map[string][]string{"x": {"a\t2", "b\t1", "c\t2"}}, CompileOptions{}, nil)
	lines, _ := tr.fs.ReadTree("out")
	want := []string{"b\t1", "c\t2", "a\t2"}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("order = %v, want %v", lines, want)
	}
}

func TestRunUnionDistinct(t *testing.T) {
	tr := run(t, `
a = LOAD 'x' AS (k);
b = LOAD 'y' AS (k);
u = UNION a, b;
d = DISTINCT u;
STORE d INTO 'out';
`, map[string][]string{"x": {"p", "q"}, "y": {"q", "r"}}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "out")
	want := []string{"p", "q", "r"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct = %v, want %v", got, want)
	}
}

func TestRunGroupAllAndAvg(t *testing.T) {
	tr := run(t, `
w = LOAD 'temps' AS (st, temp:int);
g = GROUP w BY st;
avgs = FOREACH g GENERATE group AS st, AVG(w.temp) AS a, MIN(w.temp), MAX(w.temp), SUM(w.temp);
STORE avgs INTO 'out';
`, map[string][]string{"temps": {"s1\t10", "s1\t15", "s2\t7"}}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	// AVG is integer division: (10+15)/2 = 12.
	want := []string{"s1\t12\t10\t15\t25", "s2\t7\t7\t7\t7"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("aggregates = %v, want %v", got, want)
	}
}

func TestRunMultiStoreShared(t *testing.T) {
	tr := run(t, `
fl = LOAD 'flights' AS (org, dst);
g = GROUP fl BY org;
c = FOREACH g GENERATE group AS org, COUNT(fl) AS n;
o = ORDER c BY n DESC;
top = LIMIT o 1;
STORE top INTO 'out/top';
STORE c INTO 'out/all';
`, map[string][]string{"flights": {"A\tB", "A\tC", "B\tC"}}, CompileOptions{}, nil)
	top := tr.output(t, "out/top")
	all := tr.output(t, "out/all")
	if !reflect.DeepEqual(top, []string{"A\t2"}) {
		t.Errorf("top = %v", top)
	}
	if !reflect.DeepEqual(all, []string{"A\t2", "B\t1"}) {
		t.Errorf("all = %v", all)
	}
}

func TestRunEmptyInput(t *testing.T) {
	tr := run(t, followerSrc, map[string][]string{"in/edges": {}}, CompileOptions{}, nil)
	if !tr.eng.Idle() {
		t.Fatal("job over empty input should complete")
	}
	got := tr.output(t, "out/counts")
	if len(got) != 0 {
		t.Errorf("output = %v, want empty", got)
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	opts := CompileOptions{NumReduces: 2}
	in := map[string][]string{"in/edges": edges()}
	a := run(t, followerSrc, in, opts, nil)
	b := run(t, followerSrc, in, opts, nil)
	if !reflect.DeepEqual(a.output(t, "out/counts"), b.output(t, "out/counts")) {
		t.Error("outputs differ across identical runs")
	}
	la := a.eng.Job(a.jobs[0].ID).Latency()
	lb := b.eng.Job(b.jobs[0].ID).Latency()
	if la != lb {
		t.Errorf("latencies differ: %d vs %d", la, lb)
	}
}

func digestPoints(t *testing.T, p *pig.Plan, aliases ...string) []int {
	t.Helper()
	var pts []int
	for _, a := range aliases {
		v := p.ByAlias(a)
		if v == nil {
			t.Fatalf("alias %q missing", a)
		}
		pts = append(pts, v.ID)
	}
	return pts
}

func TestRunDigestsEmitted(t *testing.T) {
	p, err := pig.Parse(followerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := CompileOptions{Points: digestPoints(t, p, "counts"), NumReduces: 2}
	tr := run(t, followerSrc, map[string][]string{"in/edges": edges()}, opts, nil)
	if len(tr.reports) == 0 {
		t.Fatal("no digest reports")
	}
	// One final report per reduce task.
	finals := 0
	for _, r := range tr.reports {
		if r.Final {
			finals++
		}
		if r.Key.Point != p.ByAlias("counts").ID {
			t.Errorf("unexpected point %d", r.Key.Point)
		}
	}
	if finals != 2 {
		t.Errorf("final digests = %d, want one per reduce task", finals)
	}
}

func TestRunReplicasProduceMatchingDigests(t *testing.T) {
	// Submit two replicas of the same job (distinct outputs) and check
	// digest agreement per (point, task, chunk).
	p, err := pig.Parse(followerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := CompileOptions{Points: digestPoints(t, p, "ne", "counts"), NumReduces: 2}
	fs := dfs.New()
	fs.Append("in/edges", edges()...)
	jobs, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(8, 2)
	eng := NewEngine(fs, cl, nil, DefaultCostModel())
	var reports []digest.Report
	eng.DigestSink = func(r digest.Report) { reports = append(reports, r) }
	for rep := 0; rep < 2; rep++ {
		j := jobs[0].Clone()
		j.ID = fmt.Sprintf("r%d-%s", rep, j.ID)
		j.SID = "sid-1"
		j.Replica = rep
		j.Output = fmt.Sprintf("rep%d/out", rep)
		if _, err := eng.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()

	byKey := make(map[digest.Key]map[int]digest.Sum)
	for _, r := range reports {
		if byKey[r.Key] == nil {
			byKey[r.Key] = make(map[int]digest.Sum)
		}
		byKey[r.Key][r.Replica] = r.Sum
	}
	if len(byKey) == 0 {
		t.Fatal("no digests")
	}
	for k, sums := range byKey {
		if len(sums) != 2 {
			t.Errorf("key %v has %d replicas", k, len(sums))
			continue
		}
		if sums[0] != sums[1] {
			t.Errorf("replica digests differ at %v", k)
		}
	}
	// And the replica outputs are identical.
	o0, _ := fs.ReadTree("rep0/out")
	o1, _ := fs.ReadTree("rep1/out")
	if !reflect.DeepEqual(o0, o1) {
		t.Error("replica outputs differ")
	}
}

func TestRunCommissionFaultChangesDigest(t *testing.T) {
	p, err := pig.Parse(followerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := CompileOptions{Points: digestPoints(t, p, "counts"), NumReduces: 1}
	honest := run(t, followerSrc, map[string][]string{"in/edges": edges()}, opts, nil)
	faulty := run(t, followerSrc, map[string][]string{"in/edges": edges()}, opts, func(e *Engine) {
		for _, n := range e.Cluster.Nodes() {
			n.Adversary = cluster.NewAdversary(cluster.FaultCommission, 1.0, 3)
		}
	})
	if len(honest.reports) == 0 || len(faulty.reports) == 0 {
		t.Fatal("missing digests")
	}
	hf := finalsByKey(honest.reports)
	ff := finalsByKey(faulty.reports)
	same := true
	for k, s := range hf {
		if fs, ok := ff[k]; ok && fs != s {
			same = false
		}
	}
	if same {
		t.Error("commission fault did not perturb any digest")
	}
}

func finalsByKey(reports []digest.Report) map[digest.Key]digest.Sum {
	out := make(map[digest.Key]digest.Sum)
	for _, r := range reports {
		out[r.Key] = r.Sum
	}
	return out
}

func TestRunOmissionHangsJob(t *testing.T) {
	tr := run(t, followerSrc, map[string][]string{"in/edges": edges()}, CompileOptions{}, func(e *Engine) {
		for _, n := range e.Cluster.Nodes() {
			n.Adversary = cluster.NewAdversary(cluster.FaultOmission, 1.0, 3)
		}
	})
	if tr.eng.Idle() {
		t.Fatal("omission faults everywhere should stall the job")
	}
	if tr.eng.Metrics.TasksHung == 0 {
		t.Error("hung tasks not counted")
	}
	js := tr.eng.Job(tr.jobs[0].ID)
	if js.Done {
		t.Error("job must not complete")
	}
}

func TestKillJobFreesSlots(t *testing.T) {
	fs := dfs.New()
	fs.Append("in/edges", edges()...)
	p, _ := pig.Parse(followerSrc)
	jobs, _ := Compile(p, CompileOptions{})
	cl := cluster.New(1, 1) // one slot: a hung task blocks everything
	if err := cl.SetAdversary("node-000", cluster.FaultOmission, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cl, nil, DefaultCostModel())
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Kill the job after it hangs, then run an honest job.
	eng.After(10_000_000, func() {
		if js.Done {
			t.Error("job finished despite omission")
		}
		eng.KillJob(jobs[0].ID)
		cl.Nodes()[0].Adversary = nil
		j2 := jobs[0].Clone()
		j2.ID = "retry"
		j2.Output = "out2"
		if _, err := eng.Submit(j2); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	retry := eng.Job("retry")
	if retry == nil || !retry.Done {
		t.Fatal("retry did not complete after kill freed the slot")
	}
	if !js.Killed {
		t.Error("killed flag unset")
	}
}

func TestReplicaExclusionConstraint(t *testing.T) {
	// Two replicas of one SID on a 2-node cluster: node sets must be
	// disjoint even across many tasks.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 25000; i++ { // several splits
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	p, _ := pig.Parse(followerSrc)
	jobs, _ := Compile(p, CompileOptions{NumReduces: 2})
	cl := cluster.New(2, 4)
	eng := NewEngine(fs, cl, nil, DefaultCostModel())
	for rep := 0; rep < 2; rep++ {
		j := jobs[0].Clone()
		j.ID = fmt.Sprintf("rep%d", rep)
		j.SID = "s"
		j.Replica = rep
		j.Output = fmt.Sprintf("o%d", rep)
		if _, err := eng.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	j0, j1 := eng.Job("rep0"), eng.Job("rep1")
	if !j0.Done || !j1.Done {
		t.Fatal("jobs incomplete")
	}
	for n := range j0.Nodes {
		if j1.Nodes[n] {
			t.Errorf("node %s ran tasks of both replicas", n)
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	tr := run(t, followerSrc, map[string][]string{"in/edges": edges()}, CompileOptions{NumReduces: 2}, nil)
	m := tr.eng.Metrics
	if m.MapTasks == 0 || m.ReduceTasks != 2 {
		t.Errorf("tasks: %+v", m)
	}
	if m.RecordsIn != int64(len(edges())) {
		t.Errorf("RecordsIn = %d", m.RecordsIn)
	}
	if m.RecordsOut != 3 {
		t.Errorf("RecordsOut = %d", m.RecordsOut)
	}
	if m.HDFSBytesRead == 0 || m.HDFSBytesWritten == 0 {
		t.Error("HDFS byte counters empty")
	}
	if m.LocalBytesWritten == 0 || m.LocalBytesRead == 0 {
		t.Error("shuffle byte counters empty")
	}
	if m.CPUTimeUs == 0 || m.JobsCompleted != 1 {
		t.Errorf("cpu/jobs: %+v", m)
	}
	// No digests configured.
	if m.DigestRecords != 0 {
		t.Errorf("DigestRecords = %d", m.DigestRecords)
	}
}

func TestDigestCostIncreasesCPU(t *testing.T) {
	in := map[string][]string{"in/edges": edges()}
	plain := run(t, followerSrc, in, CompileOptions{}, nil)
	p, _ := pig.Parse(followerSrc)
	withDigest := run(t, followerSrc, in, CompileOptions{Points: digestPoints(t, p, "ne", "counts")}, nil)
	if withDigest.eng.Metrics.CPUTimeUs <= plain.eng.Metrics.CPUTimeUs {
		t.Errorf("digesting should cost CPU: %d vs %d",
			withDigest.eng.Metrics.CPUTimeUs, plain.eng.Metrics.CPUTimeUs)
	}
	if withDigest.eng.Metrics.DigestRecords == 0 {
		t.Error("digest records not counted")
	}
}

func TestSubmitErrors(t *testing.T) {
	fs := dfs.New()
	cl := cluster.New(1, 1)
	eng := NewEngine(fs, cl, nil, DefaultCostModel())
	spec := &JobSpec{ID: "a", Inputs: []JobInput{{Path: "x"}}, NumReduces: 1, Output: "o"}
	if _, err := eng.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(spec); err == nil {
		t.Error("duplicate submit should fail")
	}
	bad := &JobSpec{ID: "b", Deps: []string{"ghost"}, Inputs: []JobInput{{Path: "x"}}, NumReduces: 1, Output: "o2"}
	if _, err := eng.Submit(bad); err == nil {
		t.Error("unknown dep should fail")
	}
}

func TestAfterAndNow(t *testing.T) {
	eng := NewEngine(dfs.New(), cluster.New(1, 1), nil, DefaultCostModel())
	var times []int64
	eng.After(100, func() { times = append(times, eng.Now()) })
	eng.After(50, func() { times = append(times, eng.Now()) })
	eng.After(-5, func() { times = append(times, eng.Now()) })
	eng.Run()
	if !reflect.DeepEqual(times, []int64{0, 50, 100}) {
		t.Errorf("times = %v", times)
	}
}

func TestLocalitySchedulerPrefersHome(t *testing.T) {
	node := &cluster.Node{ID: "node-001"}
	js := &JobState{Spec: &JobSpec{ID: "j"}}
	remote := &Task{Job: js, Kind: MapTask, Index: 0, Home: "node-000"}
	local := &Task{Job: js, Kind: MapTask, Index: 1, Home: "node-001"}
	got := LocalityScheduler{}.Pick(node, []*Task{remote, local})
	if got != local {
		t.Error("locality scheduler did not prefer local task")
	}
	got = LocalityScheduler{}.Pick(node, []*Task{remote})
	if got != remote {
		t.Error("fallback to FIFO failed")
	}
}

func TestReplicatedLatencyOverheadIsModest(t *testing.T) {
	// The headline claim (§6.1): with enough nodes, running 4 replicas
	// with digests costs only a little extra latency over one replica,
	// because replicas execute in parallel.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%100, i%977))
	}
	fs.Append("in/edges", lines...)
	p, _ := pig.Parse(followerSrc)
	opts := CompileOptions{Points: digestPoints(t, p, "counts"), NumReduces: 2}
	jobs, _ := Compile(p, opts)

	single := NewEngine(dfsWith(lines), cluster.New(32, 3), nil, DefaultCostModel())
	j := jobs[0].Clone()
	j.Output = "single/out"
	if _, err := single.Submit(j); err != nil {
		t.Fatal(err)
	}
	single.Run()
	singleLat := single.Job(j.ID).Latency()

	bft := NewEngine(dfsWith(lines), cluster.New(32, 3), nil, DefaultCostModel())
	var latencies []int64
	for rep := 0; rep < 4; rep++ {
		jr := jobs[0].Clone()
		jr.ID = fmt.Sprintf("rep%d", rep)
		jr.SID = "s"
		jr.Replica = rep
		jr.Output = fmt.Sprintf("bft/out%d", rep)
		if _, err := bft.Submit(jr); err != nil {
			t.Fatal(err)
		}
	}
	bft.Run()
	for rep := 0; rep < 4; rep++ {
		js := bft.Job(fmt.Sprintf("rep%d", rep))
		if !js.Done {
			t.Fatal("replica incomplete")
		}
		latencies = append(latencies, js.Latency())
	}
	worst := latencies[0]
	for _, l := range latencies {
		if l > worst {
			worst = l
		}
	}
	if float64(worst) > 1.6*float64(singleLat) {
		t.Errorf("replicated latency %d vs single %d: overhead too high", worst, singleLat)
	}
}

func dfsWith(lines []string) *dfs.FS {
	fs := dfs.New()
	fs.Append("in/edges", lines...)
	return fs
}
