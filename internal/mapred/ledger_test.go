package mapred

import (
	"testing"

	"clusterbft/internal/cluster"
)

// checkLedgerInvariant pins the tentpole claim: every CPU microsecond
// the engine charged sits in exactly one ledger bucket once the run has
// drained, so in-flight residue is zero.
func checkLedgerInvariant(t *testing.T, e *Engine) CostBuckets {
	t.Helper()
	b := e.Ledger.Buckets()
	if got, want := b.TotalUs(), e.Metrics.CPUTimeUs; got != want {
		t.Errorf("ledger buckets sum to %dus, engine charged %dus (in_flight=%d)",
			got, want, want-got)
	}
	return b
}

// TestLedgerPlainRunAllCommitted: an honest unreplicated run has no
// verification, no waste, no recovery — the whole spend is committed.
func TestLedgerPlainRunAllCommitted(t *testing.T) {
	tr := run(t, followerSrc, map[string][]string{"in/edges": edges()}, CompileOptions{NumReduces: 2}, nil)
	b := checkLedgerInvariant(t, tr.eng)
	if b.CommittedUs == 0 || b.CommittedUs != tr.eng.Metrics.CPUTimeUs {
		t.Errorf("plain run: committed=%d, want the full %dus", b.CommittedUs, tr.eng.Metrics.CPUTimeUs)
	}
	if b.ReplicaWasteUs != 0 || b.VerifyUs() != 0 || b.RecoveryRerunUs != 0 {
		t.Errorf("plain run charged non-committed buckets: %+v", b)
	}
}

// TestLedgerSpeculationWaste: a hung attempt rescued by a speculative
// backup is charged CPU that never served anyone — it must land in
// replica_waste, and the sum invariant must survive the rescue.
func TestLedgerSpeculationWaste(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, true)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if !js.Done {
		t.Fatal("speculation failed to rescue the job")
	}
	b := checkLedgerInvariant(t, eng)
	if b.ReplicaWasteUs == 0 {
		t.Error("hung attempts charged no replica_waste")
	}
	if b.CommittedUs == 0 {
		t.Error("rescued run committed nothing")
	}
}

// TestLedgerRoutingVerified unit-tests disposition routing: after a
// verdict, the winner's committed work is real output, the losers'
// committed work is verification redundancy, lost work is waste, and
// quiz CPU lands in the mode's verify bucket.
func TestLedgerRoutingVerified(t *testing.T) {
	l := NewCostLedger()
	l.Launch("s1", CostModeQuiz)
	l.ResolveCommitted("s1", 0, 100)
	l.ResolveCommitted("s1", 1, 80)
	l.ResolveLost("s1", 1, 30)
	l.Quiz("s1", 25)

	// Live sid: committed work provisionally counts as committed.
	if b, ok := l.SIDBuckets("s1"); !ok || b.CommittedUs != 180 || b.ReplicaWasteUs != 30 || b.VerifyQuizUs != 25 {
		t.Errorf("live routing = %+v (ok=%v)", b, ok)
	}

	l.Verified("s1", 0)
	b, ok := l.SIDBuckets("s1")
	if !ok {
		t.Fatal("verified sid vanished")
	}
	want := CostBuckets{CommittedUs: 100, ReplicaWasteUs: 30, VerifyQuizUs: 80 + 25}
	if b != want {
		t.Errorf("verified routing = %+v, want %+v", b, want)
	}
	if got := l.TotalUs(); got != 235 {
		t.Errorf("TotalUs = %d, want 235", got)
	}
}

// TestLedgerRoutingSuperseded: a superseded attempt group's entire spend
// — committed, lost, and quiz alike — is recovery re-run cost.
func TestLedgerRoutingSuperseded(t *testing.T) {
	l := NewCostLedger()
	l.Launch("s1", CostModeFull)
	l.ResolveCommitted("s1", 0, 100)
	l.ResolveLost("s1", 2, 40)
	l.Quiz("s1", 10)
	l.Supersede("s1")
	b, _ := l.SIDBuckets("s1")
	if b != (CostBuckets{RecoveryRerunUs: 150}) {
		t.Errorf("superseded routing = %+v, want all 150us in recovery_rerun", b)
	}
}

// TestLedgerFoldAndLateArrivals: folding settles a sid's attribution and
// drops its state; resolutions arriving after the fold (a dead
// straggler's completion event firing after the replacement verified)
// must still land in a bucket so the sum invariant cannot drift.
func TestLedgerFoldAndLateArrivals(t *testing.T) {
	l := NewCostLedger()
	l.Launch("s1", CostModeFull)
	l.ResolveCommitted("s1", 0, 50)
	l.Supersede("s1")
	l.Fold("s1")
	if _, ok := l.SIDBuckets("s1"); ok {
		t.Error("folded sid still resolvable via SIDBuckets")
	}
	if b := l.Buckets(); b.RecoveryRerunUs != 50 {
		t.Errorf("settled = %+v, want 50us recovery_rerun", b)
	}
	// Late work on a superseded sid is recovery re-run by definition.
	l.ResolveLost("s1", 1, 7)
	l.ResolveCommitted("s1", 1, 3)
	l.Quiz("s1", 2)
	if b := l.Buckets(); b.RecoveryRerunUs != 62 || b.TotalUs() != 62 {
		t.Errorf("after late arrivals = %+v, want 62us recovery_rerun", b)
	}

	// A verified sid folded at teardown keeps its attribution; late lost
	// work (impossible in practice, defensive) stays waste not committed.
	l.Launch("s2", CostModeDeferred)
	l.ResolveCommitted("s2", 0, 20)
	l.Verified("s2", 0)
	l.Fold("s2")
	l.ResolveLost("s2", 0, 5)
	b := l.Buckets()
	if b.CommittedUs != 20 || b.ReplicaWasteUs != 5 {
		t.Errorf("verified fold + late = %+v", b)
	}

	// Folding a still-live sid (end-of-run teardown of failed work)
	// treats it as superseded.
	l.Launch("s3", CostModeQuiz)
	l.ResolveCommitted("s3", 0, 9)
	l.Fold("s3")
	if b := l.Buckets(); b.RecoveryRerunUs != 62+9 {
		t.Errorf("live fold = %+v, want live spend in recovery_rerun", b)
	}
}

// TestLedgerNilSafe: a nil ledger ignores everything, like the rest of
// the obs plane.
func TestLedgerNilSafe(t *testing.T) {
	var l *CostLedger
	l.Launch("s", CostModeFull)
	l.ResolveCommitted("s", 0, 1)
	l.ResolveLost("s", 0, 1)
	l.Quiz("s", 1)
	l.Verified("s", 0)
	l.Supersede("s")
	l.Fold("s")
	if b := l.Buckets(); b != (CostBuckets{}) {
		t.Errorf("nil ledger accumulated %+v", b)
	}
	if _, ok := l.SIDBuckets("s"); ok {
		t.Error("nil ledger resolved a sid")
	}
	if l.TotalUs() != 0 {
		t.Error("nil ledger non-zero total")
	}
}
