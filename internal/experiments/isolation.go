package experiments

import (
	"fmt"

	"clusterbft/internal/faultsim"
)

// Fig11Point is one (probability, configuration) average.
type Fig11Point struct {
	CommissionProb float64
	Jobs           map[string]float64 // series label -> avg jobs to |D|=f
}

// Fig11Result reproduces "Number of jobs required to identify disjoint
// set of faults": jobs completed until |D| = f versus the probability a
// faulty node produces a commission failure, for job-size ratios r1
// (6:3:1) and r2 (2:2:1) and f ∈ {1 (4 replicas), 2 (7 replicas)}.
type Fig11Result struct {
	Series []string
	Points []Fig11Point
}

// Render prints one row per probability.
func (r *Fig11Result) Render() string {
	header := append([]string{"p(commission)"}, r.Series...)
	var rows [][]string
	for _, pt := range r.Points {
		row := []string{fmt.Sprintf("%.1f", pt.CommissionProb)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f", pt.Jobs[s]))
		}
		rows = append(rows, row)
	}
	return "Fig 11: jobs completed until |D| = f\n" + table(header, rows)
}

// Fig11 sweeps commission probability 0.1–1.0 over the four paper
// configurations, averaging over sc.Trials seeded runs each.
func Fig11(sc Scale) *Fig11Result {
	configs := map[string]faultsim.Config{
		"r1,f=1": {Mix: faultsim.R1, F: 1},
		"r1,f=2": {Mix: faultsim.R1, F: 2},
		"r2,f=1": {Mix: faultsim.R2, F: 1},
		"r2,f=2": {Mix: faultsim.R2, F: 2},
	}
	res := &Fig11Result{Series: []string{"r1,f=1", "r1,f=2", "r2,f=1", "r2,f=2"}}
	for p := 1; p <= 10; p++ {
		prob := float64(p) / 10
		pt := Fig11Point{CommissionProb: prob, Jobs: make(map[string]float64)}
		for _, name := range res.Series {
			cfg := configs[name]
			cfg.CommissionProb = prob
			cfg.Seed = sc.Seed
			cfg.MaxTime = sc.SimTime * 10 // generous bound for low p
			pt.Jobs[name] = faultsim.JobsToIsolate(cfg, sc.Trials)
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// SuspicionResult reproduces Figs 12 and 13: the Low/Med/High suspicion
// population over time for one representative run.
type SuspicionResult struct {
	Name             string
	Samples          []faultsim.Sample
	TimeAtSaturation int
	TrueFaulty       int
	Isolated         bool
}

// Render prints samples every 15 ticks like the paper's x-axis.
func (r *SuspicionResult) Render() string {
	var rows [][]string
	for _, s := range r.Samples {
		if s.Time%15 != 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Time),
			fmt.Sprintf("%d", s.Low),
			fmt.Sprintf("%d", s.Med),
			fmt.Sprintf("%d", s.High),
		})
	}
	out := r.Name + "\n" + table([]string{"time", "low", "med", "high"}, rows)
	return out + fmt.Sprintf("|D|=f at t=%d; %d truly faulty; isolated=%v\n",
		r.TimeAtSaturation, r.TrueFaulty, r.Isolated)
}

// Fig12 shows suspicion levels over time for the default mix: suspects
// appear after the first commission fault, then pruning leaves only the
// truly faulty nodes in the High bucket.
func Fig12(sc Scale) *SuspicionResult {
	r := faultsim.Run(faultsim.Config{
		CommissionProb: 0.6,
		Seed:           sc.Seed + 3,
		MaxTime:        sc.SimTime,
	})
	return &SuspicionResult{
		Name:             "Fig 12: suspicion level changes over time",
		Samples:          r.Samples,
		TimeAtSaturation: r.TimeAtSaturation,
		TrueFaulty:       len(r.TrueFaulty),
		Isolated:         r.Isolated,
	}
}

// Fig13 uses a large-job-heavy mix so several big overlapping job
// clusters fault together, spiking the suspect population before |D|
// saturates and pruning takes over.
func Fig13(sc Scale) *SuspicionResult {
	r := faultsim.Run(faultsim.Config{
		CommissionProb: 0.6,
		Mix:            faultsim.Mix{Large: 10, Medium: 1, Small: 1},
		Seed:           sc.Seed + 4,
		MaxTime:        sc.SimTime,
	})
	return &SuspicionResult{
		Name:             "Fig 13: suspicion spikes under multiple large faulty clusters",
		Samples:          r.Samples,
		TimeAtSaturation: r.TimeAtSaturation,
		TrueFaulty:       len(r.TrueFaulty),
		Isolated:         r.Isolated,
	}
}
