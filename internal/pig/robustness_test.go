package pig

import (
	"strings"
	"testing"
	"testing/quick"
)

// Parser robustness: arbitrary input must never panic — it either parses
// or returns an error.

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnMangledScripts(t *testing.T) {
	// Mutate a valid script by deleting byte ranges; every mutation must
	// be handled gracefully.
	base := `
edges = LOAD 'in' AS (user:int, follower:int);
ne = FILTER edges BY follower != 0;
g = GROUP ne BY user;
counts = FOREACH g GENERATE group AS user, COUNT(ne) AS n;
o = ORDER counts BY n DESC;
top = LIMIT o 10;
STORE top INTO 'out';
`
	for start := 0; start < len(base); start += 7 {
		for _, width := range []int{1, 5, 23} {
			end := start + width
			if end > len(base) {
				end = len(base)
			}
			mutated := base[:start] + base[end:]
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation [%d:%d]: %v", start, end, r)
					}
				}()
				_, _ = Parse(mutated)
			}()
		}
	}
}

func TestParseDeepExpressionNesting(t *testing.T) {
	depth := 200
	expr := strings.Repeat("(", depth) + "v" + strings.Repeat(")", depth)
	src := "a = LOAD 'x' AS (v:int);\nb = FILTER a BY " + expr + " == 1;\nSTORE b INTO 'o';"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deeply nested expression should parse: %v", err)
	}
}

func TestParseLongScript(t *testing.T) {
	// A long chain of filters parses and builds a linear plan.
	var b strings.Builder
	b.WriteString("r0 = LOAD 'x' AS (v:int);\n")
	const n = 150
	for i := 1; i <= n; i++ {
		b.WriteString("r")
		b.WriteString(itoa(i))
		b.WriteString(" = FILTER r")
		b.WriteString(itoa(i - 1))
		b.WriteString(" BY v != ")
		b.WriteString(itoa(i))
		b.WriteString(";\n")
	}
	b.WriteString("STORE r")
	b.WriteString(itoa(n))
	b.WriteString(" INTO 'o';\n")
	p, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vertices) != n+2 {
		t.Errorf("vertices = %d, want %d", len(p.Vertices), n+2)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("lexer panic on %q: %v", src, r)
			}
		}()
		_, _ = lexAll(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
