package chaos

import (
	"reflect"
	"strings"
	"testing"
)

// TestShardedBaselineMatchesInline is the CI shard-smoke anchor: a clean
// run with the control tier split over 4 verdict pipelines must produce
// verified outputs byte-identical to the inline (-shards=1) tier. The
// merge layer's determinism argument (DESIGN.md §13) says sharding only
// changes *when* evidence is applied, never *what* is decided.
func TestShardedBaselineMatchesInline(t *testing.T) {
	inline := DefaultCampaign()
	sharded := DefaultCampaign()
	sharded.Core.Shards = 4
	a, err := Baseline(inline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baseline(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("verified outputs differ between -shards=1 and -shards=4:\ninline:  %v\nsharded: %v", a, b)
	}
}

// TestChaosCampaignSharded runs the seeded chaos campaign with the
// sharded control tier: every invariant I1-I7 must hold at -shards=4 —
// sub-graphs verified or explicitly failed under injected crash,
// omission, commission, mangle and BFT-network faults, verified outputs
// byte-identical to the clean baseline, fault attributions traced, slot
// accounting restored — and the whole campaign must replay
// byte-identically (the report is a pure function of the seeds even
// with four concurrent verdict pipelines).
func TestChaosCampaignSharded(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Core.Shards = 4
	cfg.Schedules = 40
	if testing.Short() {
		cfg.Schedules = 24
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	var retries, verified int
	for _, sr := range rep.Results {
		retries += sr.Recoveries["retry"] + sr.Recoveries["restart"]
		if sr.Verified {
			verified++
		}
	}
	if retries == 0 {
		t.Error("no schedule triggered a retry or restart")
	}
	if verified == 0 {
		t.Error("no schedule recovered to verified")
	}

	again, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := rep.Render(), again.Render(); a != b {
		line := "?"
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				line = la[i]
				break
			}
		}
		t.Fatalf("sharded campaign is not deterministic; first divergent line:\n%s", line)
	}
}
