package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/pig"
)

const weatherScript = `
w = LOAD 'data/weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
g2 = GROUP avgs BY a;
counts = FOREACH g2 GENERATE group AS a, COUNT(avgs) AS n;
STORE counts INTO 'out/counts';
`

func weatherData(n int) []string {
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("st%02d\t%d", i%10, (i*37)%40))
	}
	return lines
}

type harness struct {
	fs   *dfs.FS
	cl   *cluster.Cluster
	eng  *mapred.Engine
	ctrl *Controller
}

func newHarness(t *testing.T, nodes, slots int, cfg Config) *harness {
	t.Helper()
	fs := dfs.New()
	fs.Append("data/weather", weatherData(2000)...)
	cl := cluster.New(nodes, slots)
	susp := NewSuspicionTable(cfg.SuspicionThreshold)
	eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := NewController(eng, cfg, susp, nil)
	return &harness{fs: fs, cl: cl, eng: eng, ctrl: ctrl}
}

func (h *harness) outputLines(t *testing.T, res *Result, store string) []string {
	t.Helper()
	path, ok := res.Outputs[store]
	if !ok {
		t.Fatalf("no output mapping for %q: %v", store, res.Outputs)
	}
	lines, err := h.fs.ReadTree(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	sort.Strings(lines)
	return lines
}

func TestControllerHonestRun(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run not verified")
	}
	if res.Clusters < 2 {
		t.Errorf("expected >= 2 sub-graphs with 2 points, got %d", res.Clusters)
	}
	if res.Attempts != res.Clusters {
		t.Errorf("honest run should need exactly one attempt per cluster: %d vs %d", res.Attempts, res.Clusters)
	}
	if res.FaultyReplicas != 0 || len(res.Suspects) != 0 {
		t.Errorf("no faults expected: %+v", res)
	}
	if res.LatencyUs <= 0 {
		t.Error("latency not measured")
	}
	if len(h.outputLines(t, res, "out/counts")) == 0 {
		t.Error("no output records")
	}
}

func TestControllerOutputMatchesPlainRun(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	bftOut := h.outputLines(t, res, "out/counts")

	fs2 := dfs.New()
	fs2.Append("data/weather", weatherData(2000)...)
	eng2 := mapred.NewEngine(fs2, cluster.New(16, 3), nil, mapred.DefaultCostModel())
	if _, err := RunPlain(eng2, weatherScript); err != nil {
		t.Fatal(err)
	}
	plain, err := fs2.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(plain)
	if strings.Join(bftOut, "|") != strings.Join(plain, "|") {
		t.Errorf("BFT output differs from plain run:\n%v\nvs\n%v", bftOut, plain)
	}
}

func TestControllerSingleExecution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.F = 0
	cfg.R = 1
	h := newHarness(t, 8, 2, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.FaultyReplicas != 0 {
		t.Errorf("single execution should verify trivially: %+v", res)
	}
}

func TestControllerDetectsCommissionFault(t *testing.T) {
	cfg := DefaultConfig() // r=4, f=1
	h := newHarness(t, 16, 3, cfg)
	if err := h.cl.SetAdversary("node-003", cluster.FaultCommission, 1.0, 11); err != nil {
		t.Fatal(err)
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("r=4 should verify despite one faulty node")
	}
	if res.FaultyReplicas == 0 {
		t.Error("faulty replica not detected")
	}
	// Every deviant replica's cluster contains the bad node, so the
	// suspicion set must include it.
	found := false
	for _, s := range res.Suspects {
		if s == "node-003" {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %v do not include the faulty node", res.Suspects)
	}
	if h.ctrl.Susp.Level("node-003") == 0 {
		t.Error("suspicion level of faulty node is zero")
	}
	// Output still correct.
	if len(h.outputLines(t, res, "out/counts")) == 0 {
		t.Error("no verified output")
	}
}

func TestControllerOptimisticR2Retries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 2 // optimistic f+1: one commission fault forces a re-run
	h := newHarness(t, 16, 3, cfg)
	if err := h.cl.SetAdversary("node-001", cluster.FaultCommission, 1.0, 7); err != nil {
		t.Fatal(err)
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("retry should eventually verify")
	}
	if res.Attempts <= res.Clusters {
		t.Errorf("expected re-initiated sub-graphs: attempts=%d clusters=%d", res.Attempts, res.Clusters)
	}
}

func TestControllerTimeoutOnOmission(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 2
	cfg.TimeoutUs = 60_000_000
	h := newHarness(t, 6, 2, cfg)
	// Omission faults: some replica hangs, the verifier timeout fires,
	// and the sub-graph is re-initiated with r+1 and a doubled timeout
	// (Table 3, r=3 case 2 behaviour). Several nodes omit with p=0.5 so
	// hitting one does not depend on exact task placement.
	for i, n := range []cluster.NodeID{"node-000", "node-001", "node-002"} {
		if err := h.cl.SetAdversary(n, cluster.FaultOmission, 0.9, int64(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("timeout path should recover")
	}
	if res.Attempts <= res.Clusters {
		t.Error("omission should force at least one re-initiation")
	}
	suspected := false
	for _, n := range []cluster.NodeID{"node-000", "node-001", "node-002"} {
		if h.ctrl.Susp.Level(n) > 0 {
			suspected = true
		}
	}
	if !suspected {
		t.Error("no omission node was suspected")
	}
}

func TestControllerCvsPRecomputationAdvantage(t *testing.T) {
	// Table 3's shape: with a commission fault and optimistic r=2,
	// ClusterBFT (intermediate points) re-runs only the failed
	// sub-graph, while P (final-only) re-runs the whole pipeline, so
	// C's latency multiplier is lower.
	runWith := func(finalOnly bool) int64 {
		cfg := DefaultConfig()
		cfg.R = 2
		cfg.VerifyFinalOnly = finalOnly
		h := newHarness(t, 20, 3, cfg)
		if err := h.cl.SetAdversary("node-002", cluster.FaultCommission, 1.0, 13); err != nil {
			t.Fatal(err)
		}
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatalf("finalOnly=%v: %v", finalOnly, err)
		}
		if !res.Verified {
			t.Fatalf("finalOnly=%v not verified", finalOnly)
		}
		return res.LatencyUs
	}
	c := runWith(false)
	p := runWith(true)
	if c >= p {
		t.Errorf("ClusterBFT latency %d should beat final-only %d under recomputation", c, p)
	}
}

func TestControllerVerifyFinalOnlySingleCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VerifyFinalOnly = true
	h := newHarness(t, 16, 3, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Errorf("final-only verification should form one cluster, got %d", res.Clusters)
	}
}

func TestControllerConservativeMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offline = false
	h := newHarness(t, 16, 3, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("conservative mode failed")
	}
}

func TestControllerOfflineFasterOrEqual(t *testing.T) {
	lat := func(offline bool) int64 {
		cfg := DefaultConfig()
		cfg.Offline = offline
		h := newHarness(t, 16, 3, cfg)
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatal(err)
		}
		return res.LatencyUs
	}
	off, cons := lat(true), lat(false)
	if off > cons {
		t.Errorf("offline (optimistic) latency %d should be <= conservative %d", off, cons)
	}
}

func TestControllerSuspicionExclusionEvictsNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SuspicionThreshold = 0.5
	h := newHarness(t, 16, 3, cfg)
	if err := h.cl.SetAdversary("node-004", cluster.FaultCommission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	// Run several scripts; the bad node should eventually be excluded.
	for i := 0; i < 3; i++ {
		if _, err := h.ctrl.Run(weatherScript); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if !h.ctrl.Susp.Excluded("node-004") {
		t.Errorf("faulty node not evicted; level=%v", h.ctrl.Susp.Level("node-004"))
	}
}

func TestControllerLatencyOverheadVsPlain(t *testing.T) {
	// Headline (§6.1 / Fig 9): BFT execution with digests stays within a
	// modest factor of Pure Pig when replicas run in parallel.
	cfg := DefaultConfig()
	h := newHarness(t, 32, 3, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}

	fs2 := dfs.New()
	fs2.Append("data/weather", weatherData(2000)...)
	eng2 := mapred.NewEngine(fs2, cluster.New(32, 3), nil, mapred.DefaultCostModel())
	plain, err := RunPlain(eng2, weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.LatencyUs) / float64(plain)
	if ratio > 1.75 {
		t.Errorf("BFT/plain latency ratio %.2f too high (bft=%d plain=%d)", ratio, res.LatencyUs, plain)
	}
}

func TestControllerStrongModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = analyze.Strong
	h := newHarness(t, 16, 3, cfg)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("strong-model run failed")
	}
}

func TestControllerParseError(t *testing.T) {
	h := newHarness(t, 4, 2, DefaultConfig())
	if _, err := h.ctrl.Run("this is not pig;"); err == nil {
		t.Error("bad script must error")
	}
}

func TestRunPlainErrors(t *testing.T) {
	eng := mapred.NewEngine(dfs.New(), cluster.New(2, 2), nil, mapred.DefaultCostModel())
	if _, err := RunPlain(eng, "garbage"); err == nil {
		t.Error("parse error expected")
	}
}

func TestOverlapSchedulerExclusion(t *testing.T) {
	susp := NewSuspicionTable(0.5)
	susp.RecordJob([]cluster.NodeID{"node-000"})
	susp.RecordFault([]cluster.NodeID{"node-000"})
	s := NewOverlapScheduler(susp)
	node := &cluster.Node{ID: "node-000", Slots: 2}
	js := &mapred.JobState{Spec: &mapred.JobSpec{ID: "j", SID: "s1"}}
	task := &mapred.Task{Job: js, Kind: mapred.MapTask}
	if s.Pick(node, []*mapred.Task{task}) != nil {
		t.Error("excluded node must get no work")
	}
}

func TestOverlapSchedulerReplicaAffinity(t *testing.T) {
	s := NewOverlapScheduler(nil)
	node := &cluster.Node{ID: "node-001", Slots: 3}
	mk := func(sid string) *mapred.Task {
		return &mapred.Task{Job: &mapred.JobState{Spec: &mapred.JobSpec{ID: sid + "-j", SID: sid}}, Kind: mapred.MapTask}
	}
	first := s.Pick(node, []*mapred.Task{mk("a")})
	if first == nil || first.Job.Spec.SID != "a" {
		t.Fatal("first pick failed")
	}
	// A node already serving sub-graph "a" keeps packing "a" tasks
	// (replica affinity prevents later replicas being starved of legal
	// nodes), even when a new SID is on offer.
	got := s.Pick(node, []*mapred.Task{mk("b"), mk("a")})
	if got == nil || got.Job.Spec.SID != "a" {
		t.Errorf("overlap scheduler picked %v, want affine SID a", got)
	}
}

func TestOverlapSchedulerNewSIDOverRemote(t *testing.T) {
	// Among non-hosted SIDs, candidates tie on the overlap score and
	// locality breaks the tie.
	s := NewOverlapScheduler(nil)
	node := &cluster.Node{ID: "node-001", Slots: 3}
	js1 := &mapred.JobState{Spec: &mapred.JobSpec{ID: "x-j", SID: "x"}}
	js2 := &mapred.JobState{Spec: &mapred.JobSpec{ID: "y-j", SID: "y"}}
	remote := &mapred.Task{Job: js1, Kind: mapred.MapTask, Home: "node-009"}
	local := &mapred.Task{Job: js2, Kind: mapred.MapTask, Home: "node-001"}
	if got := s.Pick(node, []*mapred.Task{remote, local}); got != local {
		t.Errorf("picked %v, want the local new-SID task", got)
	}
}

func TestOverlapSchedulerLocalityTiebreak(t *testing.T) {
	s := NewOverlapScheduler(nil)
	node := &cluster.Node{ID: "node-002", Slots: 1}
	js := &mapred.JobState{Spec: &mapred.JobSpec{ID: "j", SID: "x"}}
	remote := &mapred.Task{Job: js, Kind: mapred.MapTask, Index: 0, Home: "node-000"}
	local := &mapred.Task{Job: js, Kind: mapred.MapTask, Index: 1, Home: "node-002"}
	got := s.Pick(node, []*mapred.Task{remote, local})
	if got != local {
		t.Error("equal-overlap tie should break by locality")
	}
}

// TestControllerAuditTrailAndSpans runs the commission-fault scenario
// with the full observability stack attached: the audit trail (via
// AttachAudit, stamped by the engine clock) must record the digest
// mismatches naming the faulty replica's cluster and the suspicion
// score changes they cause, and the tracer must carry verification
// spans plus suspicion instants alongside the engine's task spans.
func TestControllerAuditTrailAndSpans(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig()) // r=4, f=1
	if err := h.cl.SetAdversary("node-003", cluster.FaultCommission, 1.0, 11); err != nil {
		t.Fatal(err)
	}
	trail := analyze.NewAuditTrail(h.eng.Now)
	h.ctrl.AttachAudit(trail)
	tracer := obs.NewTracer(0)
	h.eng.Trace = tracer

	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.FaultyReplicas == 0 {
		t.Fatalf("scenario did not detect the fault: %+v", res)
	}

	var mismatches, scores int
	for _, e := range trail.Events() {
		switch e.Kind {
		case analyze.AuditMismatch:
			mismatches++
			found := false
			for _, n := range e.Nodes {
				if n == "node-003" {
					found = true
				}
			}
			if !found {
				t.Errorf("mismatch event does not name the faulty node: %+v", e)
			}
			if e.T <= 0 {
				t.Errorf("mismatch not stamped with engine time: %+v", e)
			}
		case analyze.AuditScore:
			scores++
		}
	}
	if mismatches == 0 {
		t.Error("no mismatch events in the audit trail")
	}
	if scores == 0 {
		t.Error("no suspicion-score events in the audit trail")
	}
	if out := analyze.RenderTimeline(trail.Events(), 0); !strings.Contains(out, "mismatch") {
		t.Errorf("rendered trail missing mismatch lines:\n%s", out)
	}

	var verifySpans, suspicionSpans, taskSpans int
	for _, s := range tracer.Spans() {
		switch s.Cat {
		case "verify":
			verifySpans++
			if s.VEnd < s.VStart {
				t.Errorf("verify span ends before it starts: %+v", s)
			}
		case "suspicion":
			suspicionSpans++
		case "task":
			taskSpans++
		}
	}
	if verifySpans == 0 || suspicionSpans == 0 || taskSpans == 0 {
		t.Errorf("span mix verify=%d suspicion=%d task=%d, want all > 0",
			verifySpans, suspicionSpans, taskSpans)
	}
}

// TestControllerCombinedCommissionCaught pins the combiner's interplay
// with §5 verification: with map-side combining active (the default),
// a commission-faulty node corrupts records that reach the shuffle only
// as combined partial state — yet the verification points digest the
// pre-combine stream, so the deviation is still detected and attributed,
// and the verified output matches an honest combiner-off run byte for
// byte.
func TestControllerCombinedCommissionCaught(t *testing.T) {
	// The first weather job must actually combine, or this test would
	// silently degrade into the plain commission scenario.
	plan, err := pig.Parse(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := mapred.Compile(plan, mapred.CompileOptions{NumReduces: DefaultConfig().NumReduces})
	if err != nil {
		t.Fatal(err)
	}
	combined := false
	for _, j := range jobs {
		if j.Reduce != nil && j.Reduce.Combine {
			combined = true
		}
	}
	if !combined {
		t.Fatal("weather script compiles with no combined job; test premise broken")
	}

	h := newHarness(t, 16, 3, DefaultConfig()) // r=4, f=1, combiners on
	if err := h.cl.SetAdversary("node-003", cluster.FaultCommission, 1.0, 11); err != nil {
		t.Fatal(err)
	}
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("combined run should verify despite one faulty node")
	}
	if res.FaultyReplicas == 0 {
		t.Error("commission fault on combined partials not detected")
	}
	found := false
	for _, s := range res.Suspects {
		if s == "node-003" {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %v do not include the faulty node", res.Suspects)
	}
	if h.eng.Metrics.CombinedRecords == 0 {
		t.Error("no records were combined; combiner was not active")
	}

	// Honest combiner-off baseline: same observables.
	cfg := DefaultConfig()
	cfg.DisableCombine = true
	h2 := newHarness(t, 16, 3, cfg)
	res2, err := h2.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Verified {
		t.Fatal("combiner-off baseline failed to verify")
	}
	if h2.eng.Metrics.CombinedRecords != 0 {
		t.Error("DisableCombine did not reach the engine")
	}
	on := h.outputLines(t, res, "out/counts")
	off := h2.outputLines(t, res2, "out/counts")
	if strings.Join(on, "|") != strings.Join(off, "|") {
		t.Errorf("verified output differs between combine on (faulty) and off (honest):\n%v\nvs\n%v", on, off)
	}
}
