// Package core implements ClusterBFT itself (paper §4): the request
// handler (graph analysis, job initiation, replication), the verifier
// (f+1 digest matching with timeouts and re-execution at higher
// replication), suspicion tracking, the fault analyzer that isolates
// Byzantine nodes by intersecting suspicious job clusters, and the
// resource manager's overlap-maximizing task scheduler.
package core

import (
	"fmt"
	"sort"
	"sync"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
)

// Category buckets a suspicion level s (paper §6.3): None (s = 0), Low
// (0 < s <= 0.33), Med (0.33 < s < 0.66), High (s >= 0.66).
type Category uint8

// Suspicion categories.
const (
	None Category = iota
	Low
	Med
	High
)

// String names the category.
func (c Category) String() string {
	switch c {
	case None:
		return "none"
	case Low:
		return "low"
	case Med:
		return "med"
	case High:
		return "high"
	}
	return "unknown"
}

// Categorize maps a suspicion level to its bucket.
func Categorize(s float64) Category {
	switch {
	case s <= 0:
		return None
	case s <= 0.33:
		return Low
	case s < 0.66:
		return Med
	default:
		return High
	}
}

type nodeStats struct {
	jobs   int
	faults int
}

// SuspicionTable tracks per-node suspicion s = faults/jobs (§4.1) and
// implements the resource manager's inclusion list: nodes whose suspicion
// exceeds the configured threshold are excluded from further scheduling
// until an administrator re-initializes them (§4.2).
type SuspicionTable struct {
	mu sync.Mutex
	// Threshold above which a node leaves the inclusion list; <= 0
	// disables eviction.
	threshold float64
	stats     map[cluster.NodeID]*nodeStats
	excluded  map[cluster.NodeID]bool

	// Audit, when set, receives a score event whenever a node's
	// suspicion level crosses into a different category. Nil disables
	// logging.
	Audit *analyze.AuditTrail
}

// NewSuspicionTable builds an empty table with the given eviction
// threshold (0 disables eviction).
func NewSuspicionTable(threshold float64) *SuspicionTable {
	return &SuspicionTable{
		threshold: threshold,
		stats:     make(map[cluster.NodeID]*nodeStats),
		excluded:  make(map[cluster.NodeID]bool),
	}
}

func (t *SuspicionTable) get(n cluster.NodeID) *nodeStats {
	s := t.stats[n]
	if s == nil {
		s = &nodeStats{}
		t.stats[n] = s
	}
	return s
}

// RecordJob counts one completed job on each node of a job cluster.
func (t *SuspicionTable) RecordJob(nodes []cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nodes {
		before := Categorize(t.level(n))
		t.get(n).jobs++
		t.auditScore(n, before)
	}
}

// RecordFault raises the fault count of every node involved in a job
// cluster that returned an incorrect (or missing) digest.
func (t *SuspicionTable) RecordFault(nodes []cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nodes {
		before := Categorize(t.level(n))
		s := t.get(n)
		s.faults++
		if t.threshold > 0 && t.level(n) > t.threshold {
			t.excluded[n] = true
		}
		t.auditScore(n, before)
	}
}

// auditScore logs a score event if n's suspicion category changed from
// before. Called with the lock held.
func (t *SuspicionTable) auditScore(n cluster.NodeID, before Category) {
	if t.Audit == nil {
		return
	}
	after := Categorize(t.level(n))
	if after == before {
		return
	}
	s := t.stats[n]
	detail := fmt.Sprintf("s=%.2f (%d faults / %d jobs) %s→%s",
		t.level(n), s.faults, s.jobs, before, after)
	if t.excluded[n] {
		detail += ", excluded from scheduling"
	}
	t.Audit.Add(analyze.AuditScore, []cluster.NodeID{n}, detail)
}

// level computes s with the lock held.
func (t *SuspicionTable) level(n cluster.NodeID) float64 {
	s := t.stats[n]
	if s == nil || s.jobs == 0 {
		if s != nil && s.faults > 0 {
			return 1 // faulted before completing any job
		}
		return 0
	}
	l := float64(s.faults) / float64(s.jobs)
	if l > 1 {
		l = 1
	}
	return l
}

// Level returns the node's suspicion level in [0, 1].
func (t *SuspicionTable) Level(n cluster.NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.level(n)
}

// CategoryOf buckets the node's current suspicion level.
func (t *SuspicionTable) CategoryOf(n cluster.NodeID) Category {
	return Categorize(t.Level(n))
}

// Excluded reports whether the node fell off the inclusion list.
func (t *SuspicionTable) Excluded(n cluster.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.excluded[n]
}

// Reinstate puts an (administrator-reinitialized) node back on the
// inclusion list with a clean history.
func (t *SuspicionTable) Reinstate(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.excluded, n)
	delete(t.stats, n)
}

// Histogram counts nodes per suspicion category (only nodes with history
// appear). Figures 12 and 13 plot this over time.
func (t *SuspicionTable) Histogram() map[Category]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := make(map[Category]int)
	for n := range t.stats {
		h[Categorize(t.level(n))]++
	}
	return h
}

// Suspects returns nodes with non-zero suspicion, most suspicious first
// (ties by node ID for determinism).
func (t *SuspicionTable) Suspects() []cluster.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.NodeID
	for n := range t.stats {
		if t.level(n) > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := t.level(out[i]), t.level(out[j])
		if li != lj {
			return li > lj
		}
		return out[i] < out[j]
	})
	return out
}
