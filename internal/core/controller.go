package core

import (
	"fmt"
	"sort"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/pig"
)

// Config parameterizes one ClusterBFT request (paper §4.1: the client
// specifies f, a replication factor r, and n verification points, chosen
// from perceived threat level).
type Config struct {
	// F is the number of simultaneous faults to tolerate.
	F int
	// R is the initial replication degree: f+1 (optimistic — may need
	// re-runs), 2f+1 (safe absent omissions) or 3f+1 (§3.3).
	R int
	// Points is n, the number of verification points the graph analyzer
	// marks; -1 marks every candidate vertex (the "Individual"
	// configuration of Fig 14).
	Points int
	// ForcePointAliases bypasses the marker function and places
	// verification points at the named relation aliases (used by the
	// Fig 9/10 sweeps, which vary the instrumented operator).
	ForcePointAliases []string
	// Model is the adversary model restricting candidate points.
	Model analyze.Model
	// VerifyFinalOnly is the paper's "P" baseline (Table 3): digests only
	// at final outputs, so any fault re-runs the whole script.
	VerifyFinalOnly bool
	// DigestChunk is d, records per digest (§6.4); <= 0 digests whole
	// streams.
	DigestChunk int
	// NumReduces is the reduce parallelism handed to the compiler.
	NumReduces int
	// DisableCombine turns off map-side combining in compiled jobs (the
	// -combine=off escape hatch); observables are identical either way.
	DisableCombine bool
	// TimeoutUs is the verifier timeout for one sub-graph attempt; on
	// expiry the sub-graph is re-initiated with r+1 replicas and twice
	// the timeout (§4.2 step 6).
	TimeoutUs int64
	// MaxAttempts bounds re-initiations per sub-graph.
	MaxAttempts int
	// Offline enables approximate offline comparison (§3.3): follow-up
	// sub-graphs start on the first completed replica's output before
	// verification finishes, and are restarted if that replica turns out
	// deviant.
	Offline bool
	// SuspicionThreshold evicts nodes from the inclusion list (§4.2);
	// <= 0 disables eviction.
	SuspicionThreshold float64
	// VerifyPolicy selects how sub-graphs are verified: PolicyFull (the
	// zero value behaves as full) replicates r times, PolicyQuiz and
	// PolicyDeferred run one primary at "1+ε" cost, and PolicyAuto picks
	// per sub-graph from suspicion history. See policy.go.
	VerifyPolicy Policy
	// QuizFraction is the fraction of a primary's tasks re-executed as
	// quizzes under PolicyQuiz/PolicyDeferred; <= 0 defaults to 0.25 and
	// values above 1 are clamped. At least one task is always quizzed.
	QuizFraction float64
	// Storage configures the DFS block data plane (block size, resident
	// memory budget, spill directory, compression). It does not affect
	// observables: digests are over canonical record bytes, never block
	// bytes. Harnesses that construct the FS themselves (faultsim chaos
	// mode, the experiments rig) read it from here; the controller never
	// builds an FS.
	Storage dfs.Options
	// Checkpoint persists f+1-agreed interior job outputs of full-r
	// sub-graphs to durable ckpt/ paths, so a later attempt of the same
	// sub-graph re-executes only the DAG suffix downstream of the last
	// verified point (see checkpoint.go). Off by default; off is
	// byte-identical to historical behavior.
	Checkpoint bool
	// Shards > 1 partitions the verifier across that many independent
	// verdict pipelines (per-shard matcher state and worker goroutine,
	// no shared mutex on the digest hot path), keyed by sub-graph
	// attempt hash; suspicion evidence is merged back in deterministic
	// global order at the controller's decision points (see shard.go and
	// DESIGN.md §13). <= 1 keeps the historical inline verifier and is
	// byte-identical to it. Verified outputs are identical at any shard
	// count; a fixed (seed, shard count) pair replays byte-identically.
	Shards int
}

// DefaultConfig mirrors the paper's common setup: f=1, full BFT
// replication, two verification points, weak adversary, offline
// comparison.
func DefaultConfig() Config {
	return Config{
		F:           1,
		R:           4,
		Points:      2,
		Model:       analyze.Weak,
		DigestChunk: 0,
		NumReduces:  2,
		TimeoutUs:   600_000_000, // 10 virtual minutes
		MaxAttempts: 6,
		Offline:     true,
	}
}

// Result summarizes one assured script execution.
type Result struct {
	// Verified is true when every sub-graph reached f+1 agreement.
	Verified bool
	// LatencyUs is the virtual time from submission until the last final
	// sub-graph verified.
	LatencyUs int64
	// Outputs maps each STORE path of the script to the DFS location of
	// the verified winner replica's output.
	Outputs map[string]string
	// Attempts counts sub-graph attempts across the run (1 per cluster
	// when nothing fails).
	Attempts int
	// Clusters is the number of replicated sub-graphs.
	Clusters int
	// PointsUsed are the verification-point vertex IDs.
	PointsUsed []int
	// FaultyReplicas counts replicas whose digests deviated.
	FaultyReplicas int
	// Suspects is the fault analyzer's final suspicion set.
	Suspects []cluster.NodeID
	// DigestReports counts digests the verifier received.
	DigestReports int64
	// Metrics snapshots the engine counters over the run.
	Metrics mapred.Metrics
}

// sourceRef records which upstream replica's output a sub-graph attempt
// consumed.
type sourceRef struct {
	sid      string
	replica  int
	prefix   string
	verified bool
}

type repState struct {
	idx       int
	prefix    string
	jobIDs    []string
	done      int
	completed bool
	faulty    bool
	nodes     NodeSet
}

type clusterState struct {
	id       int
	jobs     []*mapred.JobSpec // templates, topological
	upstream []int
	terminal bool
	// hasInDep marks template IDs some other job of the SAME cluster
	// depends on; only those are checkpoint-eligible (boundary jobs must
	// always re-execute so a recovery suffix is never empty).
	hasInDep map[string]bool

	attempt    int
	totalTries int
	r          int
	// suffixBoost counts the timeout escalations of r earned while
	// attempts re-executed only a checkpointed suffix; a later full
	// re-execution sheds them, since the checkpointed-prefix jobs were
	// never implicated (suffix-scoped replica sizing, DESIGN.md §12).
	suffixBoost int
	timeoutUs   int64
	sid         string
	launchedAtV int64
	launched    bool
	verified    bool
	failed      bool
	verifiedAt  int64
	winner      int
	winnerFP    digest.Sum
	sources     map[int]sourceRef
	replicas    []*repState
	// launchJobs is the template subset the current attempt actually
	// submitted (all of cs.jobs unless checkpoints covered a prefix);
	// repState.jobIDs, onJobDone counting and quiz sampling index it.
	launchJobs []*mapred.JobSpec

	// policy is the verification policy resolved at first launch (see
	// decidePolicy); escalation rewrites it to PolicyFull.
	policy Policy
	// quizPending counts quiz re-executions still running for the current
	// attempt; quizFailed latches the first mismatch so stragglers don't
	// escalate twice.
	quizPending int
	quizFailed  bool
	// staleSids holds superseded attempts' sids; their matcher/engine
	// state is swept once the sub-graph verifies (after the downstream
	// restart decisions, which still fingerprint old source sids).
	staleSids []string
}

// Controller is the trusted control tier: request handler + verifier +
// resource-manager bookkeeping, driving an untrusted mapred.Engine. A
// controller owns its engine's callbacks. Suspicion state persists across
// Run calls, which is how fault isolation sharpens over a stream of jobs.
type Controller struct {
	Eng  *mapred.Engine
	Cfg  Config
	Susp *SuspicionTable
	FA   *FaultAnalyzer

	// OnRecovery, when set, observes the controller's lifecycle decisions
	// for each sub-graph: "launch", "verify", "retry" (timeout or
	// no-agreement re-initiation at r+1), "restart" (deviant optimistic
	// source), "escalate" (quiz or storage-boundary evidence revoking a
	// quiz/deferred policy — always followed by a retry or restart) and
	// "fail" (MaxAttempts exhausted). The attempt argument is
	// the sub-graph's total launch count so far. Nil costs nothing; chaos
	// campaigns and the recovery-latency experiment tabulate it.
	OnRecovery func(action string, cluster, attempt int)

	matcher *Matcher
	// pool is the sharded verdict plane (Cfg.Shards > 1): onDigest
	// becomes a routing step and all evidence/matcher effects apply at
	// syncVerdicts merge points. Nil means the inline matcher serves
	// every verdict, byte-identical to historical behavior. Run-scoped:
	// built in initRun, closed in teardownRun so worker goroutines never
	// outlive the run.
	pool    *VerdictPool
	runSeq  int
	reports int64
	audit   *analyze.AuditTrail

	// checkpoint registry: cluster id -> template job ID -> entry.
	// Run-scoped (reset in initRun); entries survive across attempts of
	// one run, which is the whole point.
	ckpts     map[int]map[string]*ckptEntry
	ckptStats CheckpointStats
	// checkpoint counters, registered only when Cfg.Checkpoint is set so
	// the /metrics surface of legacy configs stays byte-identical.
	obsCkptSaves          *obs.Counter
	obsCkptHits           *obs.Counter
	obsCkptBytesWritten   *obs.Counter
	obsCkptBytesReclaimed *obs.Counter

	// run-scoped state
	clusterOf  map[string]int // template job ID -> cluster
	producedBy map[string]string
	templates  map[string]*mapred.JobSpec
	clusters   []*clusterState
	jobRef     map[string][2]int // engine job ID -> (cluster, replica)
	sidIndex   map[string]*clusterState
	attempts   int
	faultyReps int
	runErr     error
}

// NewController wires a controller to an engine. susp and fa may be nil
// for fresh state.
func NewController(eng *mapred.Engine, cfg Config, susp *SuspicionTable, fa *FaultAnalyzer) *Controller {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.Model == 0 {
		cfg.Model = analyze.Weak
	}
	if cfg.VerifyPolicy == 0 {
		cfg.VerifyPolicy = PolicyFull
	}
	if cfg.QuizFraction <= 0 {
		cfg.QuizFraction = 0.25
	}
	if cfg.QuizFraction > 1 {
		cfg.QuizFraction = 1
	}
	if susp == nil {
		susp = NewSuspicionTable(cfg.SuspicionThreshold)
	}
	if fa == nil {
		fa = NewFaultAnalyzer(cfg.F)
	}
	c := &Controller{Eng: eng, Cfg: cfg, Susp: susp, FA: fa, matcher: NewMatcher(cfg.F)}
	eng.DigestChunk = cfg.DigestChunk
	eng.DigestSink = c.onDigest
	eng.OnJobDone = c.onJobDone
	if cfg.Checkpoint {
		if reg := eng.Registry(); reg != nil {
			c.obsCkptSaves = reg.Counter("core.checkpoint.saves")
			c.obsCkptHits = reg.Counter("core.checkpoint.hits")
			c.obsCkptBytesWritten = reg.Counter("core.checkpoint.bytes_written")
			c.obsCkptBytesReclaimed = reg.Counter("core.checkpoint.bytes_reclaimed")
		}
	}
	return c
}

// AttachAudit routes the suspicion audit trail through the pipeline:
// digest-mismatch evidence from the verifier, category transitions from
// the suspicion table, and every intersection step of the fault analyzer
// land in trail with the evidence that caused them. Nil detaches.
func (c *Controller) AttachAudit(trail *analyze.AuditTrail) {
	c.audit = trail
	c.Susp.Audit = trail
	c.FA.Audit = trail
}

// Run executes one script under BFT protection and blocks until the
// simulation drains.
func (c *Controller) Run(script string) (*Result, error) {
	plan, err := pig.Parse(script)
	if err != nil {
		return nil, err
	}
	points, err := c.choosePoints(plan)
	if err != nil {
		return nil, err
	}
	jobs, err := mapred.Compile(plan, mapred.CompileOptions{
		Points:         points,
		NumReduces:     c.Cfg.NumReduces,
		DisableCombine: c.Cfg.DisableCombine,
	})
	if err != nil {
		return nil, err
	}
	c.runSeq++
	c.initRun(jobs, points)

	start := c.Eng.Now()
	for _, cs := range c.clusters {
		if len(cs.upstream) == 0 {
			c.tryLaunch(cs)
		}
	}
	c.Eng.Run()
	// Sweep every remaining attempt's verifier and engine state: digest
	// vectors, scheduler affinity and job records are request-scoped, and
	// a controller serving a stream of Runs must not accumulate them.
	c.teardownRun()
	if c.runErr != nil {
		return nil, c.runErr
	}

	res := &Result{
		Verified:       true,
		Outputs:        make(map[string]string),
		Attempts:       c.attempts,
		Clusters:       len(c.clusters),
		PointsUsed:     points,
		FaultyReplicas: c.faultyReps,
		Suspects:       c.FA.Suspects(),
		DigestReports:  c.reports,
		Metrics:        c.Eng.Metrics,
	}
	for _, cs := range c.clusters {
		if !cs.verified {
			res.Verified = false
			continue
		}
		if cs.terminal && cs.verifiedAt-start > res.LatencyUs {
			res.LatencyUs = cs.verifiedAt - start
		}
		winPrefix := cs.replicas[cs.winner].prefix
		for _, j := range cs.jobs {
			if j.Final {
				res.Outputs[j.Output] = winPrefix + "/" + j.Output
			}
		}
	}
	if !res.Verified {
		return res, fmt.Errorf("core: run ended with unverified sub-graphs")
	}
	return res, nil
}

// choosePoints runs the graph analyzer. Final outputs are always
// verified; VerifyFinalOnly stops there (the P baseline), otherwise the
// marker function adds the client's n points (§4.1). A forced alias
// that names no relation in the plan is a configuration error: silently
// skipping it would run the script with fewer verification points than
// the client asked for.
func (c *Controller) choosePoints(plan *pig.Plan) ([]int, error) {
	set := make(map[int]bool)
	for _, st := range plan.Stores() {
		set[st.Parents[0].ID] = true
	}
	switch {
	case c.Cfg.VerifyFinalOnly:
		// final outputs only (the P / Full baselines)
	case len(c.Cfg.ForcePointAliases) > 0:
		for _, alias := range c.Cfg.ForcePointAliases {
			v := plan.ByAlias(alias)
			if v == nil {
				return nil, fmt.Errorf("core: forced verification point %q names no relation in the script", alias)
			}
			set[v.ID] = true
		}
	case c.Cfg.Points < 0:
		a := analyze.Analyze(plan, c.sizeOf)
		for _, p := range a.Candidates(c.Cfg.Model) {
			set[p] = true
		}
	case c.Cfg.Points > 0:
		a := analyze.Analyze(plan, c.sizeOf)
		// Final outputs are already verified; seed them into the marker
		// so the n explicit points land mid-flow (Fig 4's tradeoff).
		finals := make([]int, 0, len(set))
		for id := range set {
			finals = append(finals, id)
		}
		sort.Ints(finals)
		for _, p := range a.Mark(c.Cfg.Points, c.Cfg.Model, finals...) {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out, nil
}

func (c *Controller) sizeOf(path string) int64 {
	if n, err := c.Eng.FS.Size(path); err == nil {
		return n
	}
	return c.Eng.FS.TreeSize(path)
}

// initRun groups compiled jobs into sub-graphs: the job DAG is cut below
// every job materializing a verification point, and each connected
// component becomes one replicated cluster (§3.3 "variable granularity").
func (c *Controller) initRun(jobs []*mapred.JobSpec, points []int) {
	pointSet := make(map[int]bool, len(points))
	for _, p := range points {
		pointSet[p] = true
	}
	c.templates = make(map[string]*mapred.JobSpec, len(jobs))
	c.producedBy = make(map[string]string, len(jobs))
	for _, j := range jobs {
		c.templates[j.ID] = j
		c.producedBy[j.Output] = j.ID
	}
	boundary := func(id string) bool {
		j := c.templates[id]
		return j != nil && pointSet[j.OutVertex]
	}
	// Union-find over job IDs, skipping edges out of boundary jobs.
	parent := make(map[string]string, len(jobs))
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, j := range jobs {
		parent[j.ID] = j.ID
	}
	for _, j := range jobs {
		for _, d := range j.Deps {
			if !boundary(d) {
				parent[find(j.ID)] = find(d)
			}
		}
	}
	c.clusterOf = make(map[string]int, len(jobs))
	c.clusters = nil
	rootIdx := make(map[string]int)
	for _, j := range jobs { // template order is topological
		root := find(j.ID)
		idx, ok := rootIdx[root]
		if !ok {
			idx = len(c.clusters)
			rootIdx[root] = idx
			c.clusters = append(c.clusters, &clusterState{
				id:        idx,
				r:         c.Cfg.R,
				timeoutUs: c.Cfg.TimeoutUs,
				sources:   make(map[int]sourceRef),
			})
		}
		c.clusterOf[j.ID] = idx
		cs := c.clusters[idx]
		cs.jobs = append(cs.jobs, j)
		if j.Final {
			cs.terminal = true
		}
	}
	for _, j := range jobs {
		jc := c.clusterOf[j.ID]
		for _, d := range j.Deps {
			if dc := c.clusterOf[d]; dc != jc {
				if !contains(c.clusters[jc].upstream, dc) {
					c.clusters[jc].upstream = append(c.clusters[jc].upstream, dc)
				}
			} else {
				cs := c.clusters[jc]
				if cs.hasInDep == nil {
					cs.hasInDep = make(map[string]bool)
				}
				cs.hasInDep[d] = true
			}
		}
	}
	c.ckpts = make(map[int]map[string]*ckptEntry)
	c.jobRef = make(map[string][2]int)
	c.sidIndex = make(map[string]*clusterState)
	c.attempts = 0
	c.faultyReps = 0
	c.reports = 0
	c.runErr = nil
	if c.Cfg.Shards > 1 {
		// Lazily per run, so the registry the host attached after
		// NewController still receives the per-shard families, and so
		// teardownRun can reap the worker goroutines between runs.
		c.pool = NewVerdictPool(c.Cfg.F, c.Cfg.Shards, c.Eng.Registry())
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sourcesReady reports whether every upstream sub-graph can supply input:
// a verified winner, or (offline mode) any completed replica.
func (c *Controller) sourcesReady(cs *clusterState) bool {
	for _, u := range cs.upstream {
		up := c.clusters[u]
		if up.verified {
			continue
		}
		if !c.Cfg.Offline {
			return false
		}
		if up.failed || firstCompleted(up) < 0 {
			return false
		}
	}
	return true
}

// firstCompleted picks the optimistic source replica: the first
// completed one the online digest comparison has not already flagged as
// deviant (consuming a known-corrupt output would guarantee a restart).
func firstCompleted(cs *clusterState) int {
	for _, rs := range cs.replicas {
		if rs.completed && !rs.faulty {
			return rs.idx
		}
	}
	return -1
}

// tryLaunch starts a sub-graph attempt once its inputs are available.
func (c *Controller) tryLaunch(cs *clusterState) {
	if cs.launched || cs.verified || cs.failed || !c.sourcesReady(cs) {
		return
	}
	if cs.policy == 0 {
		cs.policy = c.decidePolicy()
		if cs.policy != PolicyFull {
			// Healthy history: one primary replica; verification comes
			// from quiz re-execution and storage-boundary audits.
			cs.r = 1
		}
	}
	cs.launched = true
	cs.launchedAtV = c.Eng.Now()
	cs.totalTries++
	c.attempts++
	cs.quizPending = 0
	cs.quizFailed = false
	if cs.sid != "" {
		// The superseded attempt's digests are still needed for the
		// downstream restart decisions at verification; sweep then.
		cs.staleSids = append(cs.staleSids, cs.sid)
		c.Eng.Ledger.Supersede(cs.sid)
		c.Eng.Board.SIDState(cs.sid, "superseded", -1)
	}
	cs.sid = fmt.Sprintf("run%d-c%d-a%d", c.runSeq, cs.id, cs.attempt)
	c.sidIndex[cs.sid] = cs
	cs.sources = make(map[int]sourceRef)
	for _, u := range cs.upstream {
		up := c.clusters[u]
		if up.verified {
			cs.sources[u] = sourceRef{
				sid: up.sid, replica: up.winner,
				prefix: up.replicas[up.winner].prefix, verified: true,
			}
		} else {
			rep := firstCompleted(up)
			cs.sources[u] = sourceRef{
				sid: up.sid, replica: rep,
				prefix: up.replicas[rep].prefix,
			}
		}
	}
	// Checkpoint-granular recovery: compute the suffix this attempt must
	// actually execute. skip maps template IDs whose f+1-agreed output an
	// earlier attempt persisted (and whose source signature still
	// matches); their consumers read the checkpoint file instead.
	skip, run := c.coveredTemplates(cs)
	cs.launchJobs = cs.jobs
	if skip != nil {
		cs.launchJobs = make([]*mapred.JobSpec, 0, len(run))
		for _, tmpl := range cs.jobs { // keep topological template order
			if run[tmpl.ID] {
				cs.launchJobs = append(cs.launchJobs, tmpl)
			}
		}
		for _, tmpl := range cs.jobs {
			if e := skip[tmpl.ID]; e != nil {
				cs.ckptHit(c, e)
			}
		}
	}
	// Suffix-scoped replica sizing: timeout escalations earned while
	// re-executing only a checkpointed suffix priced the extra replicas
	// for that suffix, not for the checkpointed-prefix jobs — which were
	// f+1-agreed and never re-ran. When a later attempt must re-execute
	// the full sub-graph (checkpoints invalidated or dropped), it sheds
	// those suffix escalations and runs at the degree the prefix always
	// had. Full-graph escalations are untouched, and so is every
	// checkpoint-off configuration (suffixBoost stays 0 there).
	if skip == nil && cs.suffixBoost > 0 {
		cs.r -= cs.suffixBoost
		cs.suffixBoost = 0
	}
	c.Eng.Ledger.Launch(cs.sid, cs.policy.String())
	c.Eng.Board.SetSID(obs.SIDStatus{
		SID: cs.sid, Cluster: cs.id, Attempt: cs.totalTries, Replicas: cs.r,
		Policy: cs.policy.String(), State: "running", Winner: -1,
	})
	cs.replicas = make([]*repState, cs.r)
	for rep := 0; rep < cs.r; rep++ {
		rs := &repState{idx: rep, nodes: make(NodeSet)}
		rs.prefix = fmt.Sprintf("x/%s/r%d", cs.sid, rep)
		cs.replicas[rep] = rs
		// Attempt-scoped sids already give every launch a fresh namespace;
		// the purge makes the no-append guarantee unconditional — a
		// relaunch must never Append onto a dead attempt's partial records
		// even if a prefix were ever reused.
		c.Eng.FS.DeleteTree(rs.prefix)
		for _, tmpl := range cs.launchJobs {
			spec := c.rewriteJob(cs, rs, tmpl, skip)
			rs.jobIDs = append(rs.jobIDs, spec.ID)
			c.jobRef[spec.ID] = [2]int{cs.id, rep}
			if _, err := c.Eng.Submit(spec); err != nil {
				c.fail(fmt.Errorf("core: submit %s: %w", spec.ID, err))
				return
			}
		}
	}
	c.notify("launch", cs)
	c.armTimeout(cs)
}

// ckptHit accounts one checkpoint-covered job at launch: the skipping
// attempt avoids recomputing its output on every one of its replicas.
func (cs *clusterState) ckptHit(c *Controller, e *ckptEntry) {
	c.ckptStats.Hits++
	c.ckptStats.BytesReclaimed += e.bytes * int64(cs.r)
	c.obsCkptHits.Inc()
	c.obsCkptBytesReclaimed.Add(e.bytes * int64(cs.r))
}

// armTimeout arms the verifier timer for the current attempt. The timer
// is keyed by the attempt's sid, so a stale timer from an earlier attempt
// can never fire a retry against a newer one, and every attempt —
// including re-initiations carrying a doubled timeout — runs under its
// own fresh timer.
func (c *Controller) armTimeout(cs *clusterState) {
	sid := cs.sid
	c.Eng.After(cs.timeoutUs, func() { c.onTimeout(cs, sid) })
}

// rewriteJob clones a template for one replica of one attempt, rewriting
// paths, IDs and dependencies into the replica's namespace; inputs
// produced by upstream sub-graphs point at the chosen source replica.
func (c *Controller) rewriteJob(cs *clusterState, rs *repState, tmpl *mapred.JobSpec, skip map[string]*ckptEntry) *mapred.JobSpec {
	spec := tmpl.Clone()
	spec.ID = rs.prefix + "/" + tmpl.ID
	spec.SID = cs.sid
	spec.Replica = rs.idx
	spec.Output = rs.prefix + "/" + tmpl.Output
	// Quiz/deferred attempts carry audit digests: per-task pre-combine
	// sums quizzes are checked against, plus storage-boundary in/out sums
	// that pin what actually crossed the untrusted DFS.
	spec.Audit = cs.policy != PolicyFull
	spec.Ckpt = c.ckptEligible(cs, tmpl.ID)
	var deps []string
	for _, d := range tmpl.Deps {
		if c.clusterOf[d] == cs.id && skip[d] == nil {
			deps = append(deps, rs.prefix+"/"+d)
		}
		// Cross-cluster deps are satisfied by data availability: the
		// source replica completed before this attempt launched. A
		// checkpoint-skipped producer's data is likewise already durable.
	}
	spec.Deps = deps
	for i := range spec.Inputs {
		path := spec.Inputs[i].Path
		prod, ok := c.producedBy[path]
		if !ok {
			continue // raw script input from trusted storage
		}
		if c.clusterOf[prod] == cs.id {
			if e := skip[prod]; e != nil {
				// Checkpoint-covered producer: read the f+1-agreed bytes
				// from the trusted ckpt/ path, like a script input.
				spec.Inputs[i].Path = e.path
				continue
			}
			spec.Inputs[i].AuditIn = spec.Audit
			spec.Inputs[i].Path = rs.prefix + "/" + path
		} else {
			spec.Inputs[i].AuditIn = spec.Audit
			src := cs.sources[c.clusterOf[prod]]
			spec.Inputs[i].Path = src.prefix + "/" + path
		}
	}
	return spec
}

func (c *Controller) fail(err error) {
	if c.runErr == nil {
		c.runErr = err
	}
}

func (c *Controller) notify(action string, cs *clusterState) {
	if c.OnRecovery != nil {
		c.OnRecovery(action, cs.id, cs.totalTries)
	}
}

// ClusterStatus is a read-only snapshot of one sub-graph's recovery
// state, exposed for invariant checks (chaos campaigns assert every
// sub-graph ends Verified or explicitly Failed).
type ClusterStatus struct {
	ID        int
	Attempts  int
	Upstream  []int
	Verified  bool
	Failed    bool
	Launched  bool
	Terminal  bool
	TimeoutUs int64
	// R is the replication degree of the most recent attempt (suffix
	// escalations included; see suffix-scoped sizing in tryLaunch).
	R int
}

// ClusterStates snapshots every sub-graph of the most recent Run.
func (c *Controller) ClusterStates() []ClusterStatus {
	out := make([]ClusterStatus, len(c.clusters))
	for i, cs := range c.clusters {
		out[i] = ClusterStatus{
			ID:        cs.id,
			Attempts:  cs.totalTries,
			Upstream:  append([]int(nil), cs.upstream...),
			Verified:  cs.verified,
			Failed:    cs.failed,
			Launched:  cs.launched,
			Terminal:  cs.terminal,
			TimeoutUs: cs.timeoutUs,
			R:         cs.r,
		}
	}
	return out
}

// onDigest stores digests as they stream in from the untrusted tier and
// runs the approximate online comparison (§3.3): as soon as f+1 replicas
// agree on a chunk, any replica reporting a different sum for it is a
// commission fault — detected before the sub-job completes, and even if
// that replica is later cancelled. Reports from superseded attempts
// (stragglers killed by a retry, racing their cancellation) are dropped
// before touching the matcher: storing them would silently regrow state
// for sids the Forget sweep already reclaimed.
func (c *Controller) onDigest(r digest.Report) {
	cs := c.sidIndex[r.Key.SID]
	if cs == nil || cs.sid != r.Key.SID {
		return
	}
	c.reports++
	if c.pool != nil {
		// Sharded control tier: the hot path is a stamped routing step;
		// matching, online comparison and checkpoint agreement happen on
		// the sid's shard pipeline, and their effects land in
		// deterministic global order at the next syncVerdicts.
		c.pool.Submit(r)
		return
	}
	c.matcher.Add(r)
	if r.Key.Point == mapred.CkptPoint {
		c.maybeCheckpoint(cs, r.Key)
	}
	for _, rep := range c.matcher.KeyDeviants(cs.sid) {
		if rep < len(cs.replicas) {
			c.markFaulty(cs, cs.replicas[rep])
		}
	}
}

// mat resolves the Matcher owning a sid: the sharded pool's pipeline
// matcher, or the inline one. Shard matchers may only be read at
// decision points, which all run after a syncVerdicts barrier.
func (c *Controller) mat(sid string) *Matcher {
	if c.pool != nil {
		return c.pool.MatcherFor(sid)
	}
	return c.matcher
}

// syncVerdicts is the merge layer of the sharded control tier: it
// barriers every shard pipeline and applies the merged evidence stream
// — commission deviants and checkpoint agreements — in global
// submission order on the simulation goroutine. Every controller
// decision point (job completion, quiz completion, verifier timeout,
// teardown) enters through here, so decisions observe exactly the
// evidence a single inline matcher would have accumulated by that
// event, and AuditTrail/suspicion ordering is assigned here rather
// than at emit time. No-op when unsharded.
func (c *Controller) syncVerdicts() {
	if c.pool == nil {
		return
	}
	for _, ev := range c.pool.Sync() {
		cs := c.sidIndex[ev.SID]
		if cs == nil || cs.sid != ev.SID {
			continue // attempt superseded after submission
		}
		switch ev.Kind {
		case VerdictCkpt:
			c.maybeCheckpoint(cs, ev.Key)
		case VerdictDeviant:
			if ev.Replica < len(cs.replicas) {
				c.markFaulty(cs, cs.replicas[ev.Replica])
			}
		}
	}
}

// onJobDone advances replica completion and verification.
func (c *Controller) onJobDone(js *mapred.JobState) {
	c.syncVerdicts()
	ref, ok := c.jobRef[js.Spec.ID]
	if !ok {
		return
	}
	cs := c.clusters[ref[0]]
	if js.Spec.SID != cs.sid {
		return // stale attempt
	}
	rs := cs.replicas[ref[1]]
	for n := range js.Nodes {
		rs.nodes[n] = true
	}
	rs.done++
	if rs.done < len(rs.jobIDs) {
		return
	}
	rs.completed = true
	c.Susp.RecordJob(rs.nodes.Sorted())
	c.checkVerify(cs)
	if c.Cfg.Offline && !cs.verified {
		for _, d := range c.clusters {
			if contains(d.upstream, cs.id) {
				c.tryLaunch(d)
			}
		}
	}
}

// checkVerify applies the verification rule for the sub-graph's policy.
// Full: f+1 completed replicas with identical digest vectors verify the
// sub-graph; deviants are commission faults (§4.1, §4.3). Quiz/deferred
// delegate to checkVerifyPolicy.
func (c *Controller) checkVerify(cs *clusterState) {
	if cs.verified {
		return
	}
	if cs.policy == PolicyQuiz || cs.policy == PolicyDeferred {
		c.checkVerifyPolicy(cs)
		return
	}
	var completed []int
	for _, rs := range cs.replicas {
		if rs.completed {
			completed = append(completed, rs.idx)
		}
	}
	majority, deviants, ok := c.mat(cs.sid).Agreement(cs.sid, completed)
	if !ok {
		if len(completed) == cs.r {
			// Everyone replied and still no f+1 agreement: rerun with a
			// higher replication degree.
			c.retry(cs, false)
		}
		return
	}
	c.markVerified(cs, majority[0], deviants)
}

// markVerified finalizes a sub-graph: records the winner, punishes
// deviants, frees unfinished replicas, propagates downstream and sweeps
// superseded attempts' verifier state.
func (c *Controller) markVerified(cs *clusterState, winner int, deviants []int) {
	cs.verified = true
	cs.verifiedAt = c.Eng.Now()
	c.notify("verify", cs)
	cs.winner = winner
	cs.winnerFP = c.mat(cs.sid).Fingerprint(cs.sid, cs.winner)
	c.Eng.Ledger.Verified(cs.sid, winner)
	c.Eng.Board.SIDState(cs.sid, "verified", winner)
	c.Eng.Trace.Record("verify", "verifier", cs.sid, cs.launchedAtV, cs.verifiedAt,
		obs.AI("winner", int64(cs.winner)), obs.AI("deviants", int64(len(deviants))))
	for _, rep := range deviants {
		c.markFaulty(cs, cs.replicas[rep])
	}
	// Unfinished replicas are no longer needed; their slots free up.
	for _, rs := range cs.replicas {
		if !rs.completed {
			c.killReplica(rs)
		}
	}
	// Propagate downstream: restart consumers that optimistically read a
	// deviant replica, launch the rest.
	for _, d := range c.clusters {
		if !contains(d.upstream, cs.id) {
			continue
		}
		src, launched := d.sources[cs.id]
		if launched && d.launched && !c.sourceMatchesWinner(cs, src) {
			c.restart(d)
		}
		c.tryLaunch(d)
	}
	// The restart decisions above were the last readers of superseded
	// attempts' digest vectors (sourceMatchesWinner fingerprints old
	// source sids); reclaim them now.
	for _, sid := range cs.staleSids {
		c.forgetSID(sid)
	}
	cs.staleSids = nil
}

// quizReplica is the replica index quiz re-executions report under; the
// primary is always 0 under quiz/deferred (r=1), and keeping quizzes at
// a fixed non-zero index lets the matcher compare the two vectors with
// the machinery it already has. The online KeyDeviants pass never sees
// an f+1 class among {primary, quiz} with f >= 1, so quiz evidence is
// judged only by QuizAgrees.
const quizReplica = 1

// checkVerifyPolicy runs when the primary replica of a quiz/deferred
// sub-graph completes: audit the storage boundaries, then either verify
// optimistically (deferred) or hold verification until the quiz set
// agrees (quiz). Any mismatch escalates to full replication.
func (c *Controller) checkVerifyPolicy(cs *clusterState) {
	rs := cs.replicas[0]
	if !rs.completed {
		return
	}
	if rs.faulty {
		// Flagged before completion (e.g. by a downstream conflict);
		// don't verify a known-bad primary.
		c.escalate(cs, "primary replica flagged during execution")
		return
	}
	clean, badUpstreams := c.auditIO(cs)
	if len(badUpstreams) > 0 {
		// Our io-in digest conflicts with what an upstream primary
		// claimed to have stored: the *upstream* output is suspect
		// (its storage write or its deferred verification). Escalating
		// it restarts the cascade, which tears this attempt down too.
		for _, u := range badUpstreams {
			c.markFaulty(u, u.replicas[0])
			c.escalate(u, fmt.Sprintf("downstream sub-graph c%d read data conflicting with the stored-output digest", cs.id))
		}
		return
	}
	if !clean {
		// In-cluster boundary mismatch: what a job read back from the
		// DFS is not what the producing job claims to have written.
		c.markFaulty(cs, rs)
		c.escalate(cs, "storage boundary digest mismatch")
		return
	}
	if cs.policy == PolicyDeferred {
		// Optimistic: downstream proceeds now; quizzes may still revoke.
		c.markVerified(cs, 0, nil)
	}
	c.startQuiz(cs)
	if cs.quizPending == 0 && !cs.verified && !cs.failed && cs.launched {
		// Nothing quizzable (empty sub-graph) — boundary audits are the
		// only evidence available, and they passed.
		c.markVerified(cs, 0, nil)
	}
}

// auditIO cross-checks storage-boundary audit digests for the primary of
// an audited sub-graph. In-cluster: each consumed input's io-in digest
// must equal the producing job's io-out digest (clean=false otherwise).
// Cross-cluster: the io-in digest must equal the io-out digest the
// source replica reported under its own sid; a conflict implicates the
// upstream, returned in badUpstreams. Pairs where either side is absent
// (unaudited upstream policy, raw script inputs) are skipped.
func (c *Controller) auditIO(cs *clusterState) (clean bool, badUpstreams []*clusterState) {
	clean = true
	blamed := make(map[int]bool)
	for _, tmpl := range cs.jobs {
		for i := range tmpl.Inputs {
			prod, produced := c.producedBy[tmpl.Inputs[i].Path]
			if !produced {
				continue
			}
			inKey := digest.Key{SID: cs.sid, Point: mapred.AuditIOInPoint,
				Task: fmt.Sprintf("%s/in%d", tmpl.ID, i)}
			inSum, haveIn := c.mat(cs.sid).Lookup(cs.sid, 0, inKey)
			if !haveIn {
				continue
			}
			pc := c.clusterOf[prod]
			if pc == cs.id {
				outKey := digest.Key{SID: cs.sid, Point: mapred.AuditIOOutPoint, Task: prod}
				outSum, haveOut := c.mat(cs.sid).Lookup(cs.sid, 0, outKey)
				if haveOut && outSum != inSum {
					clean = false
				}
				continue
			}
			src, haveSrc := cs.sources[pc]
			if !haveSrc || src.replica < 0 {
				continue
			}
			outKey := digest.Key{SID: src.sid, Point: mapred.AuditIOOutPoint, Task: prod}
			outSum, haveOut := c.mat(src.sid).Lookup(src.sid, src.replica, outKey)
			if haveOut && outSum != inSum && !blamed[pc] {
				blamed[pc] = true
				badUpstreams = append(badUpstreams, c.clusters[pc])
			}
		}
	}
	return clean, badUpstreams
}

// startQuiz samples the primary's committed tasks and re-executes each on
// the trusted tier; the recomputed digests flow back through onDigest
// tagged as quizReplica. Sampling never leaves a sub-graph unquizzed: if
// the draw comes up empty, the terminal job's first task is quizzed.
func (c *Controller) startQuiz(cs *clusterState) {
	rs := cs.replicas[0]
	sid := cs.sid
	type pick struct{ jobID, tid string }
	var picks []pick
	for ji := range cs.launchJobs {
		js := c.Eng.Job(rs.jobIDs[ji])
		if js == nil || !js.Done {
			continue
		}
		for _, tid := range js.TaskIDs() {
			if quizPick(sid, cs.launchJobs[ji].ID, tid, c.Cfg.QuizFraction) {
				picks = append(picks, pick{rs.jobIDs[ji], tid})
			}
		}
	}
	if len(picks) == 0 && len(rs.jobIDs) > 0 {
		last := rs.jobIDs[len(rs.jobIDs)-1]
		if js := c.Eng.Job(last); js != nil && js.Done {
			if tids := js.TaskIDs(); len(tids) > 0 {
				picks = append(picks, pick{last, tids[0]})
			}
		}
	}
	for _, p := range picks {
		err := c.Eng.Requiz(p.jobID, p.tid, quizReplica, c.onDigest,
			func() { c.onQuizDone(cs, sid) })
		if err != nil {
			c.fail(fmt.Errorf("core: quiz %s/%s: %w", p.jobID, p.tid, err))
			return
		}
		cs.quizPending++
	}
}

// onQuizDone fires as each quiz re-execution commits its digests.
func (c *Controller) onQuizDone(cs *clusterState, sid string) {
	c.syncVerdicts() // the quiz digests themselves route through the pool
	if cs.sid != sid || cs.failed {
		return // quiz of a superseded attempt straggling in
	}
	cs.quizPending--
	if cs.quizFailed {
		return // already escalated on an earlier quiz of this attempt
	}
	if !c.mat(sid).QuizAgrees(sid, 0, quizReplica) {
		// A trusted re-execution of the primary's own task, against the
		// primary's own stored inputs, produced different records: the
		// primary computed wrongly (commission), and with r=1 there is
		// no honest majority to fall back on — rerun at full r.
		cs.quizFailed = true
		c.markFaulty(cs, cs.replicas[0])
		c.escalate(cs, "quiz re-execution digest mismatch")
		return
	}
	if cs.quizPending == 0 && cs.policy == PolicyQuiz && !cs.verified {
		c.markVerified(cs, 0, nil)
	}
}

// escalate abandons the cheap policy for a sub-graph that produced fault
// evidence and reruns it under full replication. An already-verified
// (deferred) sub-graph is revoked via the restart cascade so consumers
// of its optimistic output are torn down with it; an unverified one goes
// through the ordinary retry machinery.
func (c *Controller) escalate(cs *clusterState, detail string) {
	if cs.failed {
		return
	}
	c.audit.Add(analyze.AuditEscalate, nil,
		fmt.Sprintf("sub-graph c%d (%s) escalated to full replication: %s", cs.id, cs.sid, detail))
	c.notify("escalate", cs)
	if cs.verified {
		cs.policy = PolicyFull
		if cs.r < c.Cfg.R {
			cs.r = c.Cfg.R
		}
		c.restart(cs)
		return
	}
	c.retry(cs, false)
}

// forgetSID reclaims every trace of one sub-graph attempt: the verifier's
// digest vectors, the controller's sid index and the engine's job and
// scheduler-affinity records.
func (c *Controller) forgetSID(sid string) {
	if c.pool != nil {
		c.pool.Forget(sid)
	} else {
		c.matcher.Forget(sid)
	}
	delete(c.sidIndex, sid)
	c.Eng.ForgetSID(sid)
}

// teardownRun sweeps all remaining attempts after the simulation drains;
// verified winners' outputs live in the DFS, so nothing referenced by
// Result is touched.
func (c *Controller) teardownRun() {
	c.syncVerdicts()
	sids := make([]string, 0, len(c.sidIndex))
	for sid := range c.sidIndex {
		sids = append(sids, sid)
	}
	sort.Strings(sids)
	for _, sid := range sids {
		c.forgetSID(sid)
	}
	for _, cs := range c.clusters {
		for _, sid := range cs.staleSids {
			c.forgetSID(sid)
		}
		cs.staleSids = nil
		c.dropCkpts(cs)
	}
	// The forgetSID sweep above folded every remaining sid; with the run
	// drained no late ledger charge can arrive, so the tombstones that
	// route such charges are dead weight — drop them to keep ledger map
	// sizes at baseline across sequential runs.
	c.Eng.Ledger.DropFolds()
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
}

// sourceMatchesWinner reports whether a consumed source replica produced
// the same digest vector as the verified winner (same attempt or not).
func (c *Controller) sourceMatchesWinner(cs *clusterState, src sourceRef) bool {
	if src.verified || (src.sid == cs.sid && src.replica == cs.winner) {
		return true
	}
	return c.mat(src.sid).Fingerprint(src.sid, src.replica) == cs.winnerFP
}

// liveNodes unions the nodes recorded at replica-job completion with the
// engine's live view (tasks assigned to still-running or hung jobs), so
// omission faults attribute to the nodes actually involved.
func (c *Controller) liveNodes(rs *repState) NodeSet {
	s := rs.nodes.Clone()
	for _, id := range rs.jobIDs {
		if js := c.Eng.Job(id); js != nil {
			for n := range js.Nodes {
				s[n] = true
			}
		}
	}
	return s
}

// markFaulty records a commission-faulty replica: suspicion for every
// node in its job cluster and a report to the fault analyzer.
func (c *Controller) markFaulty(cs *clusterState, rs *repState) {
	if rs.faulty {
		return
	}
	rs.faulty = true
	c.faultyReps++
	nodes := c.liveNodes(rs)
	sorted := nodes.Sorted()
	c.audit.Add(analyze.AuditMismatch, sorted,
		fmt.Sprintf("replica %d of %s deviated from the f+1 majority", rs.idx, cs.sid))
	c.Eng.Trace.Instant("suspicion", "verifier", "fault "+cs.sid, c.Eng.Now(),
		obs.AI("replica", int64(rs.idx)), obs.AI("nodes", int64(len(sorted))))
	c.Susp.RecordFault(sorted)
	c.FA.Report(nodes)
	if c.Eng.Board != nil {
		names := make([]string, len(sorted))
		for i, n := range sorted {
			names[i] = string(n)
		}
		c.Eng.Board.SIDFaulty(cs.sid, rs.idx, names)
		c.pushSuspicion()
	}
}

// pushSuspicion mirrors the suspicion table into the jobs board so the
// /jobs endpoint can serve it without touching controller state from
// HTTP goroutines. Called at decision points on the simulation
// goroutine.
func (c *Controller) pushSuspicion() {
	b := c.Eng.Board
	if b == nil {
		return
	}
	h := c.Susp.Histogram()
	st := obs.SuspicionStatus{Low: h[Low], Med: h[Med], High: h[High]}
	for _, n := range c.Susp.Suspects() {
		st.Suspects = append(st.Suspects, string(n))
		if c.Susp.Excluded(n) {
			st.Excluded = append(st.Excluded, string(n))
		}
	}
	b.SetSuspicion(st)
}

func (c *Controller) killReplica(rs *repState) {
	for _, id := range rs.jobIDs {
		c.Eng.KillJob(id)
	}
}

// retry re-initiates a sub-graph with r+1 replicas and a doubled timeout
// (§4.2 step 6). omission marks incomplete replicas' nodes suspicious
// first (timeout path).
func (c *Controller) retry(cs *clusterState, omission bool) {
	if cs.verified || cs.failed {
		return
	}
	if omission {
		for _, rs := range cs.replicas {
			if rs.completed {
				continue
			}
			if nodes := c.liveNodes(rs); len(nodes) > 0 {
				sorted := nodes.Sorted()
				c.audit.Add(analyze.AuditMismatch, sorted,
					fmt.Sprintf("replica %d of %s timed out (omission)", rs.idx, cs.sid))
				c.Susp.RecordFault(sorted)
			}
		}
		c.pushSuspicion()
	}
	for _, rs := range cs.replicas {
		c.killReplica(rs)
	}
	if cs.totalTries >= c.Cfg.MaxAttempts {
		c.failCluster(cs)
		// Exhaustion outside a restart cascade: consumers launched against
		// this sub-graph's optimistic output must not keep running.
		c.restart(cs)
		return
	}
	cs.attempt++
	if cs.policy == PolicyQuiz || cs.policy == PolicyDeferred {
		// The cheap policy saw fault evidence (or timed out): rerun at
		// full replication before growing r beyond the configured degree.
		cs.policy = PolicyFull
		if cs.r < c.Cfg.R {
			cs.r = c.Cfg.R
		} else {
			cs.r++
		}
	} else {
		cs.r++
		if len(cs.launchJobs) < len(cs.jobs) {
			// The attempt that failed re-executed only a checkpointed
			// suffix, so this escalation is scoped to the suffix; a later
			// full re-execution sheds it (see tryLaunch).
			cs.suffixBoost++
		}
	}
	cs.timeoutUs *= 2
	cs.launched = false
	c.notify("retry", cs)
	c.tryLaunch(cs)
}

// restart re-runs a sub-graph (same r) because its optimistic input came
// from a replica later found deviant; consumers restart transitively.
//
// The cascade is collected up front (breadth-first, deduplicated) instead
// of by recursion: a consumer reached through two upstream paths in one
// event is killed and charged exactly once, and — the critical ordering —
// every member of the cascade is torn down even when one of them exhausts
// MaxAttempts. The recursive version checked exhaustion before visiting
// consumers and returned early, leaving already-launched downstream
// sub-graphs running against the dead attempt's stale optimistic output,
// where they could still reach "verified".
func (c *Controller) restart(root *clusterState) {
	affected := []*clusterState{root}
	seen := map[int]bool{root.id: true}
	for i := 0; i < len(affected); i++ {
		for _, d := range c.clusters {
			if contains(d.upstream, affected[i].id) && d.launched && !seen[d.id] {
				seen[d.id] = true
				affected = append(affected, d)
			}
		}
	}
	for _, cs := range affected {
		if cs.failed {
			continue
		}
		for _, rs := range cs.replicas {
			c.killReplica(rs)
		}
		// The cascade exists because upstream data lineage is suspect;
		// checkpoints derived from it must not shortcut the re-run. (The
		// per-entry source-signature check already rejects them — fresh
		// attempts get fresh sids — but dropping reclaims the files.)
		c.dropCkpts(cs)
		wasLaunched := cs.launched
		cs.verified = false
		cs.launched = false
		if wasLaunched {
			cs.attempt++
			if cs.totalTries >= c.Cfg.MaxAttempts {
				c.failCluster(cs)
				continue
			}
			c.notify("restart", cs)
		}
	}
	// Relaunch survivors upstream-first; consumers of a still-incomplete
	// (or failed) upstream defer inside tryLaunch and are re-triggered by
	// the normal completion propagation.
	for _, cs := range affected {
		c.tryLaunch(cs)
	}
}

// failCluster marks a sub-graph permanently failed and surfaces the
// run-level error. Its consumers are not torn down here — the restart
// cascade that discovered the exhaustion already holds them in its
// worklist, and unlaunched consumers are fenced by sourcesReady.
func (c *Controller) failCluster(cs *clusterState) {
	cs.failed = true
	c.dropCkpts(cs)
	c.Eng.Ledger.Supersede(cs.sid)
	c.Eng.Board.SIDState(cs.sid, "failed", -1)
	c.notify("fail", cs)
	c.fail(fmt.Errorf("core: sub-graph c%d exhausted %d attempts", cs.id, cs.totalTries))
}

// onTimeout fires when a sub-graph attempt exceeds the verifier timeout.
func (c *Controller) onTimeout(cs *clusterState, sid string) {
	c.syncVerdicts()
	if cs.sid != sid || cs.verified || cs.failed || !cs.launched {
		return
	}
	c.retry(cs, true)
}

// RunPlain executes a script without replication or verification — the
// "Pure Pig" baseline of §6.1 — and returns the virtual latency.
func RunPlain(eng *mapred.Engine, script string) (int64, error) {
	return RunPlainOpts(eng, script, mapred.CompileOptions{NumReduces: 2})
}

// RunPlainOpts is RunPlain with explicit compile options, so baselines
// can mirror a controller's combiner setting.
func RunPlainOpts(eng *mapred.Engine, script string, opts mapred.CompileOptions) (int64, error) {
	plan, err := pig.Parse(script)
	if err != nil {
		return 0, err
	}
	jobs, err := mapred.Compile(plan, opts)
	if err != nil {
		return 0, err
	}
	start := eng.Now()
	states := make([]*mapred.JobState, 0, len(jobs))
	for _, j := range jobs {
		js, err := eng.Submit(j)
		if err != nil {
			return 0, err
		}
		states = append(states, js)
	}
	eng.Run()
	var end int64
	for _, js := range states {
		if !js.Done {
			return 0, fmt.Errorf("core: plain job %s incomplete", js.Spec.ID)
		}
		if js.DoneTime > end {
			end = js.DoneTime
		}
	}
	return end - start, nil
}
