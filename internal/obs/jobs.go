package obs

import (
	"sort"
	"sync"
)

// JobsBoard is the live job-state surface behind the /jobs endpoints.
// The engine and controller push state transitions into it from the
// simulation goroutine; HTTP handlers read JSON-ready snapshots from
// any goroutine. It is deliberately a plain mutex-guarded mirror — the
// authoritative state stays inside Engine/Controller, which are not
// safe to read concurrently with a run.
//
// All methods are nil-safe no-ops, so a disabled board costs one nil
// check per hook, like the rest of the obs instruments.
type JobsBoard struct {
	mu      sync.Mutex
	jobs    map[string]*JobStatus
	jobIDs  []string // insertion order, for FIFO eviction
	sids    map[string]*SIDStatus
	sidIDs  []string
	susp    SuspicionStatus
	maxJobs int
	maxDur  int // per-stage retained task durations
}

// Defaults bounding the board's memory on long campaigns.
const (
	defaultBoardMaxJobs      = 4096
	defaultBoardMaxDurations = 2048
)

// JobStatus is the JSON shape of one job (one replica of one stage
// sub-graph run by the engine).
type JobStatus struct {
	ID             string  `json:"id"`
	SID            string  `json:"sid,omitempty"`
	Replica        int     `json:"replica"`
	State          string  `json:"state"` // pending, running, done, killed
	SubmitV        int64   `json:"submit_vus"`
	DoneV          int64   `json:"done_vus,omitempty"`
	MapsTotal      int     `json:"maps_total"`
	MapsDone       int     `json:"maps_done"`
	RedsTotal      int     `json:"reduces_total"`
	RedsDone       int     `json:"reduces_done"`
	TasksRunning   int     `json:"tasks_running"`
	TasksCommitted int     `json:"tasks_committed"`
	TasksLost      int     `json:"tasks_lost"`
	TasksHung      int     `json:"tasks_hung"`
	Progress       float64 `json:"progress"`

	stages map[string]*stageDurations
}

// StageStats summarises one stage's committed task durations.
type StageStats struct {
	Stage    string `json:"stage"`
	Tasks    int    `json:"tasks"`
	MinUs    int64  `json:"min_us"`
	MedianUs int64  `json:"median_us"`
	P95Us    int64  `json:"p95_us"`
	MaxUs    int64  `json:"max_us"`
	SumUs    int64  `json:"sum_us"`
}

// TaskSample is one committed task duration retained for straggler
// analysis.
type TaskSample struct {
	Task  string `json:"task"`
	DurUs int64  `json:"dur_us"`
}

// StragglerReport flags tasks of one (job, stage) whose duration
// exceeds twice the stage median — the signal ROADMAP item 5's
// speculative re-launch will act on.
type StragglerReport struct {
	Job        string       `json:"job"`
	Stages     []StageStats `json:"stages"`
	Stragglers []struct {
		Stage string `json:"stage"`
		TaskSample
		MedianUs int64 `json:"stage_median_us"`
	} `json:"stragglers"`
	Truncated bool `json:"truncated,omitempty"`
}

// stageDurations retains up to maxDur committed task durations per
// stage (FIFO window) for straggler reports.
type stageDurations struct {
	samples   []TaskSample
	truncated bool
	sumUs     int64
	tasks     int
	minUs     int64
	maxUs     int64
}

// SIDStatus is the JSON shape of one verification sub-graph attempt
// group, pushed by the controller.
type SIDStatus struct {
	SID            string   `json:"sid"`
	Cluster        int      `json:"cluster"`
	Attempt        int      `json:"attempt"`
	Replicas       int      `json:"replicas"`
	Policy         string   `json:"policy"`
	State          string   `json:"state"` // running, verified, failed, superseded
	Winner         int      `json:"winner,omitempty"`
	FaultyReplicas []int    `json:"faulty_replicas,omitempty"`
	FaultyNodes    []string `json:"faulty_nodes,omitempty"`
}

// SuspicionStatus is the controller's latest suspicion-table summary.
type SuspicionStatus struct {
	Low      int      `json:"low"`
	Med      int      `json:"med"`
	High     int      `json:"high"`
	Suspects []string `json:"suspects,omitempty"`
	Excluded []string `json:"excluded,omitempty"`
}

// NewJobsBoard returns an empty board with default retention bounds.
func NewJobsBoard() *JobsBoard {
	return &JobsBoard{
		jobs:    make(map[string]*JobStatus),
		sids:    make(map[string]*SIDStatus),
		maxJobs: defaultBoardMaxJobs,
		maxDur:  defaultBoardMaxDurations,
	}
}

// job returns (creating if needed) the entry for id. Caller holds mu.
func (b *JobsBoard) job(id string) *JobStatus {
	j := b.jobs[id]
	if j == nil {
		if len(b.jobIDs) >= b.maxJobs {
			// Evict the oldest finished job; if none is finished, the
			// oldest outright — bounded memory beats a perfect window.
			evicted := false
			for i, old := range b.jobIDs {
				if s := b.jobs[old]; s == nil || s.State == "done" || s.State == "killed" {
					delete(b.jobs, old)
					b.jobIDs = append(b.jobIDs[:i], b.jobIDs[i+1:]...)
					evicted = true
					break
				}
			}
			if !evicted {
				delete(b.jobs, b.jobIDs[0])
				b.jobIDs = b.jobIDs[1:]
			}
		}
		j = &JobStatus{ID: id, State: "pending", stages: make(map[string]*stageDurations)}
		b.jobs[id] = j
		b.jobIDs = append(b.jobIDs, id)
	}
	return j
}

// JobSubmitted records a new job entering the engine.
func (b *JobsBoard) JobSubmitted(id, sid string, replica int, at int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	j.SID, j.Replica, j.SubmitV, j.State = sid, replica, at, "running"
	b.mu.Unlock()
}

// JobStages records the discovered stage shape (maps at submit, reduces
// when the map stage finishes).
func (b *JobsBoard) JobStages(id string, mapsTotal, redsTotal int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	if mapsTotal >= 0 {
		j.MapsTotal = mapsTotal
	}
	if redsTotal >= 0 {
		j.RedsTotal = redsTotal
	}
	b.mu.Unlock()
}

// TaskStarted moves one task into the running set.
func (b *JobsBoard) TaskStarted(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.job(id).TasksRunning++
	b.mu.Unlock()
}

// TaskCommitted settles one committed task: stage progress, duration
// retention for stragglers.
func (b *JobsBoard) TaskCommitted(id, stage, task string, durUs int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	if j.TasksRunning > 0 {
		j.TasksRunning--
	}
	j.TasksCommitted++
	switch stage {
	case "map":
		j.MapsDone++
	case "reduce":
		j.RedsDone++
	}
	total := j.MapsTotal + j.RedsTotal
	if total > 0 {
		j.Progress = float64(j.MapsDone+j.RedsDone) / float64(total)
	}
	sd := j.stages[stage]
	if sd == nil {
		sd = &stageDurations{minUs: durUs, maxUs: durUs}
		j.stages[stage] = sd
	}
	sd.tasks++
	sd.sumUs += durUs
	if durUs < sd.minUs || sd.tasks == 1 {
		sd.minUs = durUs
	}
	if durUs > sd.maxUs {
		sd.maxUs = durUs
	}
	if len(sd.samples) >= b.maxDur {
		sd.samples = sd.samples[1:]
		sd.truncated = true
	}
	sd.samples = append(sd.samples, TaskSample{Task: task, DurUs: durUs})
	b.mu.Unlock()
}

// TaskLost settles one lost task attempt (raced backup, dead worker).
func (b *JobsBoard) TaskLost(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	if j.TasksRunning > 0 {
		j.TasksRunning--
	}
	j.TasksLost++
	b.mu.Unlock()
}

// TaskHung records a task whose worker died mid-compute; the attempt
// never completes.
func (b *JobsBoard) TaskHung(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	if j.TasksRunning > 0 {
		j.TasksRunning--
	}
	j.TasksHung++
	b.mu.Unlock()
}

// JobDone marks a job completed at virtual time at.
func (b *JobsBoard) JobDone(id string, at int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	j.State, j.DoneV, j.Progress = "done", at, 1
	b.mu.Unlock()
}

// JobKilled marks a job killed (losing replica, superseded attempt).
func (b *JobsBoard) JobKilled(id string, at int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	j := b.job(id)
	if j.State != "done" {
		j.State, j.DoneV = "killed", at
	}
	b.mu.Unlock()
}

// SetSID upserts a verification sub-graph entry.
func (b *JobsBoard) SetSID(st SIDStatus) {
	if b == nil || st.SID == "" {
		return
	}
	b.mu.Lock()
	if _, ok := b.sids[st.SID]; !ok {
		if len(b.sidIDs) >= b.maxJobs {
			delete(b.sids, b.sidIDs[0])
			b.sidIDs = b.sidIDs[1:]
		}
		b.sidIDs = append(b.sidIDs, st.SID)
	}
	cp := st
	b.sids[st.SID] = &cp
	b.mu.Unlock()
}

// SIDState updates just the state (and winner) of an existing entry.
func (b *JobsBoard) SIDState(sid, state string, winner int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if s := b.sids[sid]; s != nil {
		s.State = state
		if winner >= 0 {
			s.Winner = winner
		}
	}
	b.mu.Unlock()
}

// SIDFaulty appends a replica index (and the blamed nodes) to a sid's
// faulty set.
func (b *JobsBoard) SIDFaulty(sid string, replica int, nodes []string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if s := b.sids[sid]; s != nil {
		s.FaultyReplicas = append(s.FaultyReplicas, replica)
		s.FaultyNodes = append(s.FaultyNodes, nodes...)
	}
	b.mu.Unlock()
}

// SetSuspicion replaces the suspicion summary. The controller calls it
// on the simulation goroutine because SuspicionTable itself is not
// safe for concurrent reads.
func (b *JobsBoard) SetSuspicion(s SuspicionStatus) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.susp = s
	b.mu.Unlock()
}

// Jobs returns every job's status, ID-sorted.
func (b *JobsBoard) Jobs() []JobStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := make([]JobStatus, 0, len(b.jobs))
	for _, j := range b.jobs {
		cp := *j
		cp.stages = nil
		out = append(out, cp)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Job returns one job's status.
func (b *JobsBoard) Job(id string) (JobStatus, bool) {
	if b == nil {
		return JobStatus{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.jobs[id]
	if j == nil {
		return JobStatus{}, false
	}
	cp := *j
	cp.stages = nil
	return cp, true
}

// SIDs returns every verification sub-graph entry, sid-sorted.
func (b *JobsBoard) SIDs() []SIDStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := make([]SIDStatus, 0, len(b.sids))
	for _, s := range b.sids {
		out = append(out, *s)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// Suspicion returns the latest suspicion summary.
func (b *JobsBoard) Suspicion() SuspicionStatus {
	if b == nil {
		return SuspicionStatus{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.susp
}

// Stragglers builds the per-stage duration report for one job. A task
// is flagged when its duration exceeds 2x the stage median (and the
// stage has at least 3 committed tasks, so tiny stages don't flag
// their only member).
func (b *JobsBoard) Stragglers(id string) (StragglerReport, bool) {
	if b == nil {
		return StragglerReport{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.jobs[id]
	if j == nil {
		return StragglerReport{}, false
	}
	// Empty slices, not nil: a job queried before any task commits must
	// serialize as an empty report ("stages": []), never null — and a
	// stage with zero retained samples yields no stats row at all rather
	// than degenerate (NaN/Inf-shaped) quantiles.
	rep := StragglerReport{Job: id, Stages: []StageStats{}}
	rep.Stragglers = make([]struct {
		Stage string `json:"stage"`
		TaskSample
		MedianUs int64 `json:"stage_median_us"`
	}, 0)
	stages := make([]string, 0, len(j.stages))
	for st := range j.stages {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		sd := j.stages[st]
		if sd == nil || len(sd.samples) == 0 {
			continue
		}
		med := medianDur(sd.samples)
		rep.Stages = append(rep.Stages, StageStats{
			Stage: st, Tasks: sd.tasks, MinUs: sd.minUs, MedianUs: med,
			P95Us: quantileDur(sd.samples, 0.95),
			MaxUs: sd.maxUs, SumUs: sd.sumUs,
		})
		rep.Truncated = rep.Truncated || sd.truncated
		if sd.tasks < 3 || med <= 0 {
			continue
		}
		for _, smp := range sd.samples {
			if smp.DurUs > 2*med {
				rep.Stragglers = append(rep.Stragglers, struct {
					Stage string `json:"stage"`
					TaskSample
					MedianUs int64 `json:"stage_median_us"`
				}{Stage: st, TaskSample: smp, MedianUs: med})
			}
		}
	}
	return rep, true
}

// medianDur returns the median of the retained duration window.
func medianDur(samples []TaskSample) int64 {
	return quantileDur(samples, 0.5)
}

// quantileDur returns the q-th sample (nearest-rank) of the retained
// duration window; 0 when the window is empty.
func quantileDur(samples []TaskSample, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	ds := make([]int64, len(samples))
	for i, s := range samples {
		ds[i] = s.DurUs
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(float64(len(ds)) * q)
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}
