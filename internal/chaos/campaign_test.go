package chaos

import (
	"clusterbft/internal/dfs"
	"strings"
	"testing"
)

// TestChaosCampaign is the property test of the fault-injection
// subsystem: 200 seeded schedules (40 under -short) run end-to-end, each
// checked against the global invariants — every sub-graph Verified or
// explicitly failed, verified outputs byte-identical to a clean run,
// slot accounting restored to cluster capacity, every fault attribution
// traced to an injected fault, and the BFT group agreeing under
// quorum-bounded message perturbations. The campaign runs twice and the
// reports must be byte-identical: the whole subsystem is a pure function
// of the seeds.
func TestChaosCampaign(t *testing.T) {
	cfg := DefaultCampaign()
	if testing.Short() {
		cfg.Schedules = 40
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}

	// The campaign must actually exercise the recovery machinery, not
	// coast through no-op schedules.
	var retries, verified, mangled, netRuns int
	for _, sr := range rep.Results {
		retries += sr.Recoveries["retry"] + sr.Recoveries["restart"]
		if sr.Verified {
			verified++
		}
		mangled += sr.Mangled
		if sr.NetRan {
			netRuns++
		}
	}
	if retries == 0 {
		t.Error("no schedule triggered a retry or restart")
	}
	if verified == 0 {
		t.Error("no schedule recovered to verified")
	}
	if mangled == 0 {
		t.Error("no schedule mangled stored data")
	}
	if netRuns == 0 {
		t.Error("no schedule perturbed the BFT network")
	}

	again, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Render(), again.Render()
	if a != b {
		line := "?"
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				line = la[i]
				break
			}
		}
		t.Fatalf("campaign is not deterministic; first divergent line:\n%s", line)
	}
}

// TestCampaignByteIdenticalAcrossStorage replays the same seeded
// schedule batch on the default all-resident data plane and on a
// deliberately hostile block configuration — tiny compressed blocks
// under a resident budget that forces spilling — and requires the two
// campaign reports to be byte-for-byte identical. Faults are injected
// at the line-stream level and digests are over canonical record bytes,
// so every mangle, recovery action and invariant outcome must land the
// same way regardless of how bytes rest on disk.
func TestCampaignByteIdenticalAcrossStorage(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Schedules = 12

	base, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spillCfg := cfg
	spillCfg.Core.Storage = dfs.Options{
		BlockSize: 512,
		MemBudget: 1 << 10,
		SpillDir:  t.TempDir(),
		Compress:  true,
	}
	spill, err := RunCampaign(spillCfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := base.Render(), spill.Render()
	if a != b {
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("reports diverge at line %d:\n  resident %q\n  spill    %q", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("reports diverge in length: %d vs %d bytes", len(a), len(b))
	}
}
