package faultsim

import (
	"math/rand"

	"clusterbft/internal/core"
)

// Allocation selects the slot-placement policy, the knob behind the
// paper's observation that deliberately overlapping job clusters speeds
// fault isolation (§4.2: "the scheduling strategy we use is to cause as
// many intersections as there are resource units in a node"; "other
// strategies can also be used to overlap clusters which we intend to
// explore in future work").
type Allocation uint8

const (
	// AllocRotate (default) starts each job's placement at a rotating
	// offset, maximizing how many distinct job clusters intersect on a
	// node.
	AllocRotate Allocation = iota
	// AllocPack always fills from node 0, so concurrent jobs overlap
	// only by necessity — the low-overlap baseline for the ablation.
	AllocPack
)

// String names the policy.
func (a Allocation) String() string {
	if a == AllocPack {
		return "pack"
	}
	return "rotate"
}

// probePlacement biases a probe job's first replica onto half of a
// suspicious set (the paper's §3.3 "dummy jobs can be used to further
// probe nodes in such a suspicious replication group"): if the probe
// faults, the intersection narrows the suspect set; honest probes let
// bystanders' suspicion decay faster.
type probePlacement struct {
	targets []int // node indices from the suspicious set to include
}

// pickProbeTargets selects up to half the members of the first
// non-singleton disjoint suspect set, in deterministic order.
func pickProbeTargets(fa *core.FaultAnalyzer) []int {
	for _, x := range fa.Disjoint() {
		if len(x) < 2 {
			continue
		}
		ids := x.Sorted()
		half := (len(ids) + 1) / 2
		out := make([]int, 0, half)
		for _, id := range ids[:half] {
			out = append(out, nodeIdx(id))
		}
		return out
	}
	return nil
}

// allocateProbe places a small probe job whose first replica contains
// the target suspects (plus filler) and whose remaining replicas use
// fresh nodes. Placement rules (capacity, per-job disjoint replicas)
// match allocate. Returns ok=false without side effects when the
// targets or capacity are unavailable.
func allocateProbe(cfg Config, rng *rand.Rand, free []int, offset *int, targets []int, faulty map[int]bool, now int) (*job, bool) {
	slots := cfg.Small.Min
	if slots < len(targets) {
		slots = len(targets)
	}
	j := &job{
		end:      now + 1, // probes are short
		replicas: make([]core.NodeSet, cfg.Replicas),
		faulty:   make([]bool, cfg.Replicas),
	}
	taken := make(map[int]int)
	used := make([]map[int]bool, cfg.Replicas)
	for ri := range j.replicas {
		j.replicas[ri] = make(core.NodeSet)
		used[ri] = make(map[int]bool)
	}
	place := func(ri, n int) bool {
		if used[ri][n] {
			return false
		}
		for prev := 0; prev < cfg.Replicas; prev++ {
			if prev != ri && used[prev][n] {
				return false
			}
		}
		if free[n]-taken[n] <= 0 {
			return false
		}
		taken[n]++
		used[ri][n] = true
		j.replicas[ri][nodeID(n)] = true
		return true
	}
	// Replica 0 hosts the suspects under test.
	for _, n := range targets {
		if !place(0, n) {
			return nil, false
		}
	}
	for ri := 0; ri < cfg.Replicas; ri++ {
		need := slots - len(j.replicas[ri])
		for probe := 0; probe < cfg.Nodes && need > 0; probe++ {
			n := (*offset + probe) % cfg.Nodes
			if place(ri, n) {
				need--
			}
		}
		if need > 0 {
			return nil, false
		}
	}
	for n, k := range taken {
		free[n] -= k
	}
	*offset = (*offset + slots) % cfg.Nodes
	for ri, rep := range j.replicas {
		for n := range rep {
			if faulty[nodeIdx(n)] && rng.Float64() < cfg.CommissionProb {
				j.faulty[ri] = true
			}
		}
	}
	return j, true
}
