// Command clusterbft runs a PigLatin-subset script under Byzantine fault
// tolerant protection on a simulated cluster (the untrusted tier), and
// prints the verified outputs plus fault-isolation results.
//
// Usage:
//
//	clusterbft -script q.pig -input data/edges=edges.tsv \
//	    [-f 1] [-r 4] [-points 2] [-nodes 16] [-slots 3] \
//	    [-d 0] [-final-only] [-faulty node-003:commission:1.0] [-show 20]
//	    [-verify-policy=full|quiz|deferred|auto] [-explain]
//	    [-block-size N] [-mem-budget 64m] [-spill-dir DIR] [-compress]
//	    [--trace=run.json] [--metrics] [-http :8080]
//
// Inputs are tab-separated local files copied into the trusted in-memory
// DFS at the path the script LOADs. -faulty attaches an adversary to a
// node (kind: commission or omission; probability in [0,1]) and may be
// repeated. --trace/--metrics/-http are the observability flags shared
// with pigrun, experiments and faultsim: trace timeline export, metrics
// registry dump, and the live HTTP introspection plane (/metrics,
// /healthz, /jobs, /trace, pprof).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/obs/introspect"
	"clusterbft/internal/pig"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbft:", err)
		os.Exit(1)
	}
}

func run() error {
	var inputs, faulty repeated
	script := flag.String("script", "", "path to the Pig script (required)")
	flag.Var(&inputs, "input", "dfspath=localfile input mapping (repeatable)")
	flag.Var(&faulty, "faulty", "node:kind:probability adversary (repeatable)")
	f := flag.Int("f", 1, "tolerated faults")
	r := flag.Int("r", 4, "replication degree (f+1, 2f+1 or 3f+1)")
	points := flag.Int("points", 2, "verification points (-1: every candidate vertex)")
	nodes := flag.Int("nodes", 16, "untrusted tier size")
	slots := flag.Int("slots", 3, "task slots per node")
	d := flag.Int("d", 0, "digest granularity: records per digest (0: per stream)")
	finalOnly := flag.Bool("final-only", false, "verify final outputs only (the P baseline)")
	policyName := flag.String("verify-policy", "full", "verification policy: full, quiz, deferred or auto")
	checkpoint := flag.Bool("checkpoint", false, "persist verified interior outputs as checkpoints so retries re-execute only the DAG suffix, and arm quantile straggler re-launch")
	shards := flag.Int("shards", 0, "split digest verification across N parallel verdict pipelines (<=1: inline; outputs are identical either way)")
	show := flag.Int("show", 20, "output records to print per store")
	explain := flag.Bool("explain", false, "print the replication structure after the run")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline here (a .jsonl twin is written next to it)")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	httpAddr := flag.String("http", "", "serve live introspection (/metrics, /healthz, /jobs, /trace, pprof) on this address, e.g. :8080")
	storageFlags := dfs.Flags(flag.CommandLine)
	flag.Parse()

	if *script == "" {
		return fmt.Errorf("-script is required")
	}
	src, err := os.ReadFile(*script)
	if err != nil {
		return err
	}

	storage, err := storageFlags()
	if err != nil {
		return err
	}
	fs := dfs.NewWith(storage)
	defer fs.Close()
	for _, in := range inputs {
		dfsPath, local, ok := strings.Cut(in, "=")
		if !ok {
			return fmt.Errorf("bad -input %q (want dfspath=localfile)", in)
		}
		if err := loadFile(fs, dfsPath, local); err != nil {
			return err
		}
	}

	cl := cluster.New(*nodes, *slots)
	for _, spec := range faulty {
		if err := attachAdversary(cl, spec); err != nil {
			return err
		}
	}

	cfg := core.DefaultConfig()
	cfg.F = *f
	cfg.R = *r
	cfg.Points = *points
	cfg.DigestChunk = *d
	cfg.VerifyFinalOnly = *finalOnly
	cfg.VerifyPolicy, err = core.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	cfg.Storage = storage
	cfg.Checkpoint = *checkpoint
	cfg.Shards = *shards
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	eng := mapred.NewEngine(fs, cl, core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	if *checkpoint {
		eng.Speculation = true
		eng.SpecQuantile = 0.95
	}
	ctrl := core.NewController(eng, cfg, susp, nil)

	var reg *obs.Registry
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
		eng.InstrumentMetrics(reg)
	}
	var tracer *obs.Tracer
	if *traceFile != "" || *httpAddr != "" {
		tracer = obs.NewTracer(0)
		if *traceFile != "" {
			tracer.EnableWallClock(obs.WallUnixMicros)
		}
		eng.Trace = tracer
	}
	if *httpAddr != "" {
		eng.Board = obs.NewJobsBoard()
		srv, err := introspect.Start(*httpAddr, introspect.Options{
			Registry: reg,
			Tracer:   tracer,
			Board:    eng.Board,
			Cost:     func() any { return eng.Ledger.Buckets() },
			SIDCost: func(sid string) (any, bool) {
				b, ok := eng.Ledger.SIDBuckets(sid)
				return b, ok
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("introspection: %s\n", srv.URL())
	}

	if err := checkLoadPaths(fs, string(src)); err != nil {
		return err
	}

	res, err := ctrl.Run(string(src))
	if err != nil {
		return err
	}

	fmt.Printf("verified:        %v\n", res.Verified)
	fmt.Printf("latency:         %.2fs (virtual)\n", float64(res.LatencyUs)/1e6)
	fmt.Printf("sub-graphs:      %d (attempts: %d)\n", res.Clusters, res.Attempts)
	fmt.Printf("points:          %v\n", res.PointsUsed)
	fmt.Printf("digest reports:  %d\n", res.DigestReports)
	fmt.Printf("faulty replicas: %d\n", res.FaultyReplicas)
	if len(res.Suspects) > 0 {
		fmt.Printf("suspects:        %v\n", res.Suspects)
	}
	m := res.Metrics
	fmt.Printf("cpu time:        %.2fs   hdfs r/w: %d/%d B   shuffle r/w: %d/%d B\n",
		float64(m.CPUTimeUs)/1e6, m.HDFSBytesRead, m.HDFSBytesWritten, m.LocalBytesRead, m.LocalBytesWritten)
	if *explain {
		fmt.Println()
		fmt.Print(ctrl.Explain())
	}
	if *traceFile != "" {
		twin, err := obs.WriteTraceFiles(tracer, *traceFile)
		if err != nil {
			return err
		}
		fmt.Printf("trace: %s (chrome://tracing, Perfetto)  jsonl: %s  spans: %d  dropped: %d\n",
			*traceFile, twin, tracer.Len(), tracer.Dropped())
	}
	if *metrics {
		fmt.Printf("\nmetrics:\n%s", reg.RenderText())
	}

	var stores []string
	for store := range res.Outputs {
		stores = append(stores, store)
	}
	sort.Strings(stores)
	for _, store := range stores {
		lines, err := fs.ReadTree(res.Outputs[store])
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%d records):\n", store, len(lines))
		for i, l := range lines {
			if i >= *show {
				fmt.Printf("  ... %d more\n", len(lines)-i)
				break
			}
			fmt.Println(" ", l)
		}
	}
	return nil
}

// checkLoadPaths warns about LOAD paths with no data: the engine treats
// missing inputs as empty (legitimate for intermediate outputs), but for
// a CLI run an empty source is almost always a typo in -input.
func checkLoadPaths(fs *dfs.FS, src string) error {
	plan, err := pig.Parse(src)
	if err != nil {
		return err
	}
	for _, v := range plan.Loads() {
		if !fs.Exists(v.Path) && len(fs.List(v.Path)) == 0 {
			return fmt.Errorf("LOAD %q has no data; add -input %s=<file>", v.Path, v.Path)
		}
	}
	return nil
}

func loadFile(fs *dfs.FS, dfsPath, local string) error {
	fh, err := os.Open(local)
	if err != nil {
		return err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fs.Append(dfsPath, lines...)
	return nil
}

func attachAdversary(cl *cluster.Cluster, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad -faulty %q (want node:kind:probability)", spec)
	}
	var kind cluster.FaultKind
	switch parts[1] {
	case "commission":
		kind = cluster.FaultCommission
	case "omission":
		kind = cluster.FaultOmission
	default:
		return fmt.Errorf("unknown fault kind %q", parts[1])
	}
	p, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad probability in %q: %v", spec, err)
	}
	return cl.SetAdversary(cluster.NodeID(parts[0]), kind, p, 42)
}
