package mapred

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/pig"
)

// Parallelism invariance: a script's result set must not depend on the
// reduce-task count, split size, or cluster geometry — only the record
// multiset matters. This is the correctness property that makes replica
// digest comparison meaningful when all replicas share one configuration,
// and it guards the partitioner/merger against dropping or duplicating
// records.

func sortedOutput(t *testing.T, script string, inputs map[string][]string, opts CompileOptions, nodes, slots, split int) []string {
	t.Helper()
	tr := runWithGeometry(t, script, inputs, opts, nodes, slots, split)
	lines := []string{}
	for _, store := range storePaths(tr) {
		out, err := tr.fs.ReadTree(store)
		if err != nil {
			t.Fatalf("read %s: %v", store, err)
		}
		for _, l := range out {
			lines = append(lines, store+"|"+l)
		}
	}
	sort.Strings(lines)
	return lines
}

func storePaths(tr *testRun) []string {
	var out []string
	for _, v := range tr.plan.Stores() {
		out = append(out, v.Path)
	}
	sort.Strings(out)
	return out
}

// runWithGeometry executes a script on an explicit cluster geometry and
// split size.
func runWithGeometry(t *testing.T, script string, inputs map[string][]string, opts CompileOptions, nodes, slots, split int) *testRun {
	t.Helper()
	fs := dfs.New()
	for path, lines := range inputs {
		fs.Append(path, lines...)
	}
	p, err := pig.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cost := DefaultCostModel()
	cost.SplitRecords = split
	eng := NewEngine(fs, cluster.New(nodes, slots), nil, cost)
	tr := &testRun{fs: fs, eng: eng, plan: p, jobs: jobs}
	for _, j := range jobs {
		if _, err := eng.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for _, j := range jobs {
		if !eng.Job(j.ID).Done {
			t.Fatalf("job %s incomplete", j.ID)
		}
	}
	return tr
}

func TestOutputInvariantUnderReduceCount(t *testing.T) {
	inputs := map[string][]string{"in/edges": geomEdges(8000)}
	var ref []string
	for _, reduces := range []int{1, 2, 3, 5} {
		got := sortedOutput(t, followerSrc, inputs, CompileOptions{NumReduces: reduces}, 4, 2, 10000)
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("output differs at NumReduces=%d", reduces)
		}
	}
	if len(ref) == 0 {
		t.Fatal("empty reference output")
	}
}

func TestOutputInvariantUnderSplitSize(t *testing.T) {
	inputs := map[string][]string{"in/edges": geomEdges(8000)}
	var ref []string
	for _, split := range []int{500, 1_000, 10_000, 100_000} {
		got := sortedOutput(t, followerSrc, inputs, CompileOptions{NumReduces: 2}, 4, 2, split)
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("output differs at SplitRecords=%d", split)
		}
	}
}

func TestOutputInvariantUnderClusterGeometry(t *testing.T) {
	inputs := map[string][]string{"in/edges": geomEdges(8000)}
	var ref []string
	for _, geom := range [][2]int{{1, 1}, {2, 3}, {8, 2}, {16, 4}} {
		got := sortedOutput(t, followerSrc, inputs, CompileOptions{NumReduces: 2}, geom[0], geom[1], 2000)
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("output differs at geometry %v", geom)
		}
	}
}

func TestJoinInvariantUnderReduceCount(t *testing.T) {
	script := `
a = LOAD 'e' AS (u:int, f:int);
b = LOAD 'e' AS (u:int, f:int);
j = JOIN a BY f, b BY u;
p = FOREACH j GENERATE a::u, b::f;
STORE p INTO 'out/pairs';
`
	inputs := map[string][]string{"e": geomEdges(1500)}
	var ref []string
	for _, reduces := range []int{1, 2, 4} {
		got := sortedOutput(t, script, inputs, CompileOptions{NumReduces: reduces}, 4, 2, 10000)
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("join output differs at NumReduces=%d", reduces)
		}
	}
	if len(ref) == 0 {
		t.Fatal("join produced nothing")
	}
}

func geomEdges(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d\t%d", (i*31)%97, (i*17)%97)
	}
	return out
}
