package experiments

import (
	"fmt"
	"sort"

	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/obs"
	"clusterbft/internal/workload"
)

// OutOfCore demonstrates the block data plane's out-of-core operation:
// the follower workload runs under full BFT verification twice, once
// with the whole dataset resident (the historical behaviour) and once
// under a resident-memory budget of at most a quarter of the dataset
// with per-block compression on, forcing sealed blocks to spill to
// disk. The two runs must be observationally identical — same verified
// STORE records, same digest-report count, same engine metrics — since
// digests are taken over canonical record bytes, never block bytes.
// The spill run's resident high-water mark is asserted against the
// budget via the dfs obs gauges.

// OutOfCoreRow is one storage mode's measurements.
type OutOfCoreRow struct {
	Mode        string
	LatencyUs   int64
	MaxResident int64 // dfs.max_resident_bytes gauge after the run
	BlocksSpill int64 // dfs.blocks_spilled
	SpillBytes  int64 // dfs.spill_bytes
	CompressPct int64 // dfs.compressed_ratio (stored/raw, percent)
	DigestCount int64
}

// OutOfCoreResult is the out-of-core equivalence experiment's output.
type OutOfCoreResult struct {
	Name         string
	DatasetBytes int64
	BudgetBytes  int64
	BlockSize    int
	Identical    bool // outputs + digest counts + metrics matched
	Rows         []OutOfCoreRow
}

// Render prints the comparison shaped like the paper's tables.
func (r *OutOfCoreResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode,
			seconds(row.LatencyUs),
			fmt.Sprintf("%d", row.MaxResident),
			fmt.Sprintf("%d", row.BlocksSpill),
			fmt.Sprintf("%d", row.SpillBytes),
			fmt.Sprintf("%d%%", row.CompressPct),
			fmt.Sprintf("%d", row.DigestCount),
		})
	}
	return fmt.Sprintf("%s\ndataset: %d B   budget: %d B (%.1fx dataset/budget)   block: %d B   outputs+digests identical: %v\n%s",
		r.Name, r.DatasetBytes, r.BudgetBytes,
		float64(r.DatasetBytes)/float64(r.BudgetBytes), r.BlockSize, r.Identical,
		table(
			[]string{"storage", "latency", "max resident B", "blocks spilled", "spill B", "stored/raw", "digests"},
			rows))
}

// outOfCoreOutcome captures everything one mode's run produced that the
// equivalence check compares.
type outOfCoreOutcome struct {
	row     OutOfCoreRow
	outputs map[string][]string
	metrics string
}

// OutOfCore runs the experiment; see the package comment above.
func OutOfCore(sc Scale) (*OutOfCoreResult, error) {
	data := workload.Twitter(sc.TwitterEdges, sc.TwitterUsers, sc.Seed)
	var datasetBytes int64
	for _, l := range data {
		datasetBytes += int64(len(l)) + 1
	}
	// Budget at most a quarter of the dataset (the acceptance regime:
	// dataset >= 4x budget), block size an eighth of the budget so the
	// budget is always enforceable at block granularity.
	budget := datasetBytes / 4
	if budget < 4<<10 {
		budget = 4 << 10
	}
	blockSize := int(budget / 8)
	if blockSize < 1<<10 {
		blockSize = 1 << 10
	}

	res := &OutOfCoreResult{
		Name:         "Out-of-core block data plane: spill+compression vs all-resident",
		DatasetBytes: datasetBytes,
		BudgetBytes:  budget,
		BlockSize:    blockSize,
	}

	cfg := core.DefaultConfig()
	cfg.NumReduces = 2

	runMode := func(mode string, storage dfs.Options) (*outOfCoreOutcome, error) {
		msc := sc
		msc.Storage = storage
		r := newRig(msc, workload.TwitterPath, data)
		defer r.fs.Close()
		reg := obs.NewRegistry()
		r.fs.Instrument(reg)
		cr, err := r.controller(cfg).Run(workload.FollowerScript)
		if err != nil {
			return nil, fmt.Errorf("outofcore %s: %w", mode, err)
		}
		if !cr.Verified {
			return nil, fmt.Errorf("outofcore %s: run not verified", mode)
		}
		out := make(map[string][]string, len(cr.Outputs))
		for store, path := range cr.Outputs {
			lines, err := r.fs.ReadTree(path)
			if err != nil {
				return nil, fmt.Errorf("outofcore %s: read %s: %w", mode, path, err)
			}
			out[store] = lines
		}
		gauges := map[string]int64{}
		for _, s := range reg.Snapshot() {
			gauges[s.Name] = s.Value
		}
		return &outOfCoreOutcome{
			row: OutOfCoreRow{
				Mode:        mode,
				LatencyUs:   cr.LatencyUs,
				MaxResident: gauges["dfs.max_resident_bytes"],
				BlocksSpill: gauges["dfs.blocks_spilled"],
				SpillBytes:  gauges["dfs.spill_bytes"],
				CompressPct: gauges["dfs.compressed_ratio"],
				DigestCount: cr.DigestReports,
			},
			outputs: out,
			metrics: fmt.Sprintf("%+v", r.eng.Metrics),
		}, nil
	}

	base, err := runMode("resident", dfs.Options{})
	if err != nil {
		return nil, err
	}
	spill, err := runMode("spill+flate", dfs.Options{
		BlockSize: blockSize,
		MemBudget: budget,
		SpillDir:  sc.Storage.SpillDir,
		Compress:  true,
	})
	if err != nil {
		return nil, err
	}
	res.Rows = []OutOfCoreRow{base.row, spill.row}

	if spill.row.BlocksSpill == 0 {
		return nil, fmt.Errorf("outofcore: nothing spilled under a %d-byte budget over a %d-byte dataset", budget, datasetBytes)
	}
	if spill.row.MaxResident > budget {
		return nil, fmt.Errorf("outofcore: resident high-water mark %d B exceeds the %d B budget", spill.row.MaxResident, budget)
	}

	res.Identical = base.row.DigestCount == spill.row.DigestCount &&
		base.metrics == spill.metrics &&
		equalOutputs(base.outputs, spill.outputs)
	if !res.Identical {
		return nil, fmt.Errorf("outofcore: observables diverged between resident and spill runs")
	}
	return res, nil
}

// equalOutputs compares two store->records maps byte for byte.
func equalOutputs(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		la, lb := a[k], b[k]
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	return true
}
