package bft

import (
	"container/heap"

	"clusterbft/internal/obs"
)

// Handler consumes messages delivered by the network.
type Handler interface {
	Receive(from ID, msg Message)
}

// netEvent is a pending delivery or timer.
type netEvent struct {
	at  int64
	seq int64
	fn  func()
}

type netHeap []netEvent

func (h netHeap) Len() int { return len(h) }
func (h netHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h netHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *netHeap) Push(x any)   { *h = append(*h, x.(netEvent)) }
func (h *netHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Network is a deterministic virtual-time message bus. Delivery order is
// fully determined by send order and the Delay/Drop policies, making
// protocol tests reproducible. All handlers run on the driving goroutine.
type Network struct {
	now    int64
	seq    int64
	events netHeap
	nodes  map[ID]Handler

	// Delay returns the virtual-microsecond latency for a message;
	// defaults to a constant 1000 (1ms) when nil.
	Delay func(from, to ID) int64
	// Drop reports whether to silently lose a message; nil never drops.
	// Partition faults and silent-replica behaviours are modeled here.
	Drop func(from, to ID, msg Message) bool
	// Transform, when set, may replace a message in flight; returning
	// the input unchanged is a no-op. Byzantine behaviours beyond
	// silence — equivocation, corrupted votes — are modeled here.
	Transform func(from, to ID, msg Message) Message

	// Perturb, when set, draws a delivery perturbation for each message
	// after Drop/Transform: chaos injection uses it for seeded message
	// loss, duplication and reordering (extra delay) bounded to a quorum-
	// safe victim set. Nil is free.
	Perturb func(from, to ID, msg Message) Perturbation

	// Trace, when set, observes every delivered message.
	Trace func(from, to ID, msg Message)

	delivered int64
}

// Perturbation alters the delivery of one message. The zero value
// delivers normally.
type Perturbation struct {
	// Drop silently loses the message (all copies).
	Drop bool
	// Dup delivers this many extra copies on top of the original.
	Dup int
	// ExtraDelayUs is added to the base latency; duplicated copies get it
	// compounded per copy, which reorders them past later traffic.
	ExtraDelayUs int64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{nodes: make(map[ID]Handler)}
}

// Register attaches a handler under the given ID, replacing any previous
// registration.
func (n *Network) Register(id ID, h Handler) { n.nodes[id] = h }

// Now returns the current virtual time in microseconds.
func (n *Network) Now() int64 { return n.now }

// Delivered returns the number of messages delivered so far.
func (n *Network) Delivered() int64 { return n.delivered }

// Instrument registers live views of the bus into reg: delivered message
// count, registered replica count, and the current virtual time.
func (n *Network) Instrument(reg *obs.Registry) {
	if n == nil || reg == nil {
		return
	}
	reg.Func("bft.messages_delivered", n.Delivered)
	reg.Func("bft.replicas", func() int64 { return int64(len(n.nodes)) })
	reg.Func("bft.virtual_time_us", n.Now)
}

// Send schedules msg for delivery from -> to.
func (n *Network) Send(from, to ID, msg Message) {
	if n.Drop != nil && n.Drop(from, to, msg) {
		return
	}
	if n.Transform != nil {
		msg = n.Transform(from, to, msg)
	}
	delay := int64(1000)
	if n.Delay != nil {
		delay = n.Delay(from, to)
	}
	copies := 1
	if n.Perturb != nil {
		p := n.Perturb(from, to, msg)
		if p.Drop {
			return
		}
		copies += p.Dup
		delay += p.ExtraDelayUs
	}
	deliver := func() {
		h := n.nodes[to]
		if h == nil {
			return
		}
		n.delivered++
		if n.Trace != nil {
			n.Trace(from, to, msg)
		}
		h.Receive(from, msg)
	}
	for c := 0; c < copies; c++ {
		n.After(delay*int64(c+1), deliver)
	}
}

// After schedules fn at now+delayUs.
func (n *Network) After(delayUs int64, fn func()) {
	if delayUs < 0 {
		delayUs = 0
	}
	n.seq++
	heap.Push(&n.events, netEvent{at: n.now + delayUs, seq: n.seq, fn: fn})
}

// Run processes events until the queue drains or the optional budget of
// deliveries is exhausted (budget <= 0 means unbounded). It returns the
// virtual time reached.
func (n *Network) Run(budget int64) int64 {
	return n.RunWhile(budget, nil)
}

// RunWhile is Run with an additional stop condition checked before each
// event: processing halts as soon as cond returns false. Pending events
// (retransmission timers, in-flight messages) stay queued for the next
// Run, so the virtual clock reflects when the condition was met rather
// than when the queue drained.
func (n *Network) RunWhile(budget int64, cond func() bool) int64 {
	start := n.delivered
	for len(n.events) > 0 {
		if cond != nil && !cond() {
			break
		}
		if budget > 0 && n.delivered-start >= budget {
			break
		}
		ev := heap.Pop(&n.events).(netEvent)
		n.now = ev.at
		ev.fn()
	}
	return n.now
}
