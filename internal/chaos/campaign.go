package chaos

import (
	"fmt"
	"sort"
	"strings"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// CampaignConfig parameterizes a batch of seeded end-to-end chaos runs.
type CampaignConfig struct {
	// Schedules is how many seeded schedules to run; seeds are
	// BaseSeed, BaseSeed+1, ...
	Schedules int
	BaseSeed  int64
	// Nodes and Slots shape the simulated cluster of every run.
	Nodes, Slots int
	// Script is the protected PigLatin script; Data seeds the DFS.
	Script string
	Data   map[string][]string
	// Core is the controller configuration shared by every run.
	Core core.Config
	// Profile bounds schedule generation.
	Profile Profile
	// NetOps, when > 0, additionally runs that many operations through a
	// BFT replica group under the schedule's network perturbations.
	NetOps int
	// Speculation enables the engine's backup-task machinery for every
	// run; SpecQuantile additionally arms the cross-replica quantile
	// trigger. The checkpoint campaign leg sets both: checkpoint-granular
	// recovery and straggler re-launch ship together.
	Speculation  bool
	SpecQuantile float64
	// Observe, when set, is called with every freshly built engine (the
	// baseline's and each schedule's) before the run starts, so a caller
	// can attach metrics, tracing, or a jobs board to a live campaign.
	Observe func(*mapred.Engine)
}

// DefaultCampaign is a three-sub-graph chain on a small weather workload:
// big enough that faults land mid-pipeline and restart cascades cross
// sub-graph boundaries, small enough to run hundreds of schedules. The
// first two sub-graphs each hold TWO chained MR jobs, so they contain
// intra-replica intermediate outputs — the only storage the mangler may
// legally tamper with (mangling a verification-boundary output would be
// indistinguishable from an honest divergence).
func DefaultCampaign() CampaignConfig {
	script := `
w = LOAD 'data/weather' AS (st, temp:int);
g1 = GROUP w BY st;
avgs = FOREACH g1 GENERATE group AS st, AVG(w.temp) AS a;
g2 = GROUP avgs BY a;
counts = FOREACH g2 GENERATE group AS a, COUNT(avgs) AS n;
g3 = GROUP counts BY n;
c3 = FOREACH g3 GENERATE group AS n, COUNT(counts) AS m;
g4 = GROUP c3 BY m;
c4 = FOREACH g4 GENERATE group AS m, COUNT(c3) AS q;
g5 = GROUP c4 BY q;
final = FOREACH g5 GENERATE group AS q, COUNT(c4) AS z;
STORE final INTO 'out/final';
`
	lines := make([]string, 240)
	for i := range lines {
		lines[i] = fmt.Sprintf("st%02d\t%d", i%8, (i*37)%40)
	}
	cfg := core.DefaultConfig()
	cfg.R = 3
	cfg.ForcePointAliases = []string{"counts", "c4"}
	cfg.TimeoutUs = 30_000_000
	cfg.MaxAttempts = 4
	// MaxVictims 2 (> F) is deliberate: commission corruption is salted
	// per node, so two victim replicas of the same job still cannot form
	// a colluding f+1 majority — but a second victim makes genuine retry
	// rounds (not just speculative rescue) reachable.
	return CampaignConfig{
		Schedules: 200,
		BaseSeed:  1,
		Nodes:     6,
		Slots:     2,
		Script:    script,
		Data:      map[string][]string{"data/weather": lines},
		Core:      cfg,
		Profile: Profile{
			Nodes:         6,
			F:             1,
			MaxFaults:     4,
			MaxVictims:    2,
			CrashWindowUs: 120_000_000,
		},
		NetOps: 4,
	}
}

// ScheduleResult is the outcome of one seeded run plus any invariant
// violations it produced.
type ScheduleResult struct {
	Seed       int64
	Desc       string // deterministic schedule rendering
	Verified   bool
	Err        string
	Attempts   int
	Clusters   int
	EndUs      int64 // virtual time when the simulation drained
	Recoveries map[string]int
	Mangled    int
	NetAgreed  int
	NetRan     bool
	// CkptSaves/CkptHits count checkpoint persists and launch-time skips
	// (always zero unless the campaign runs with Core.Checkpoint).
	CkptSaves  int64
	CkptHits   int64
	Violations []string
}

// Report aggregates a campaign; Render is deterministic, so two runs of
// the same campaign must produce byte-identical reports.
type Report struct {
	Config  string
	Results []ScheduleResult
}

// Violations flattens every invariant violation across the campaign.
func (r *Report) Violations() []string {
	var out []string
	for _, sr := range r.Results {
		for _, v := range sr.Violations {
			out = append(out, fmt.Sprintf("seed=%d: %s", sr.Seed, v))
		}
	}
	return out
}

// Render produces the campaign report: one line per schedule plus a
// summary block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: %s\n", r.Config)
	verified, failed := 0, 0
	for _, sr := range r.Results {
		outcome := "verified"
		if !sr.Verified {
			outcome = "failed(" + sr.Err + ")"
			failed++
		} else {
			verified++
		}
		net := "-"
		if sr.NetRan {
			net = fmt.Sprintf("%d/agreed", sr.NetAgreed)
		}
		ckpt := ""
		if sr.CkptSaves > 0 || sr.CkptHits > 0 {
			ckpt = fmt.Sprintf(" ckpt=%d/%dhit", sr.CkptSaves, sr.CkptHits)
		}
		fmt.Fprintf(&b, "%-90s | %s attempts=%d end=%dus recov=%s mangled=%d net=%s%s\n",
			sr.Desc, outcome, sr.Attempts, sr.EndUs, renderCounts(sr.Recoveries), sr.Mangled, net, ckpt)
		for _, v := range sr.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "schedules=%d verified=%d failed=%d violations=%d\n",
		len(r.Results), verified, failed, len(r.Violations()))
	return b.String()
}

func renderCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// RunCampaign executes the configured number of seeded schedules and
// checks the global invariants after each: every sub-graph ends Verified
// or explicitly failed, verified outputs are byte-identical to a clean
// run, slot accounting returns to cluster capacity, and every fault
// attribution in the audit trail traces back to an injected fault. The
// returned error is non-nil only when the campaign itself cannot run
// (e.g. the fault-free baseline fails); schedule-level violations are in
// the report.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	baseline, err := cleanBaseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free baseline: %w", err)
	}
	rep := &Report{
		Config: fmt.Sprintf("schedules=%d base-seed=%d nodes=%dx%d r=%d maxAttempts=%d",
			cfg.Schedules, cfg.BaseSeed, cfg.Nodes, cfg.Slots, cfg.Core.R, cfg.Core.MaxAttempts),
	}
	for i := 0; i < cfg.Schedules; i++ {
		seed := cfg.BaseSeed + int64(i)
		rep.Results = append(rep.Results, runOne(cfg, Generate(seed, cfg.Profile), baseline))
	}
	return rep, nil
}

// Baseline runs the campaign script once with no faults and returns the
// sorted record set of every STORE output — the ground truth RunSchedule
// checks verified outputs against.
func Baseline(cfg CampaignConfig) (map[string][]string, error) {
	return cleanBaseline(cfg)
}

// RunSchedule executes one explicit (possibly hand-built) schedule under
// the campaign config and checks the same invariants as a campaign run.
// baseline may come from Baseline; nil skips the output comparison.
func RunSchedule(cfg CampaignConfig, sched *Schedule, baseline map[string][]string) ScheduleResult {
	return runOne(cfg, sched, baseline)
}

// cleanBaseline runs the script once with no faults and returns the
// sorted record set of every STORE output.
func cleanBaseline(cfg CampaignConfig) (map[string][]string, error) {
	h := newRun(cfg)
	defer h.fs.Close()
	res, err := h.ctrl.Run(cfg.Script)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(res.Outputs))
	for store, path := range res.Outputs {
		lines, err := h.fs.ReadTree(path)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
		sort.Strings(lines)
		out[store] = lines
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("script has no STORE outputs")
	}
	return out, nil
}

type chaosRun struct {
	fs   *dfs.FS
	cl   *cluster.Cluster
	eng  *mapred.Engine
	ctrl *core.Controller
}

func newRun(cfg CampaignConfig) *chaosRun {
	fs := dfs.NewWith(cfg.Core.Storage)
	for path, lines := range cfg.Data {
		fs.Append(path, lines...)
	}
	cl := cluster.New(cfg.Nodes, cfg.Slots)
	susp := core.NewSuspicionTable(cfg.Core.SuspicionThreshold)
	eng := mapred.NewEngine(fs, cl, core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	eng.Speculation = cfg.Speculation
	if cfg.SpecQuantile > 0 {
		eng.SpecQuantile = cfg.SpecQuantile
	}
	if cfg.Observe != nil {
		cfg.Observe(eng)
	}
	ctrl := core.NewController(eng, cfg.Core, susp, nil)
	return &chaosRun{fs: fs, cl: cl, eng: eng, ctrl: ctrl}
}

func runOne(cfg CampaignConfig, sched *Schedule, baseline map[string][]string) ScheduleResult {
	in := NewInjector(sched)
	h := newRun(cfg)
	defer h.fs.Close()
	trail := analyze.NewAuditTrail(h.eng.Now)
	h.ctrl.AttachAudit(trail)
	sr := ScheduleResult{Seed: sched.Seed, Desc: sched.String(), Recoveries: map[string]int{}}
	h.ctrl.OnRecovery = func(action string, _, _ int) { sr.Recoveries[action]++ }
	in.AttachEngine(h.eng)

	res, err := h.ctrl.Run(cfg.Script)
	sr.EndUs = h.eng.Now()
	sr.Verified = err == nil
	if err != nil {
		sr.Err = err.Error()
	}
	states := h.ctrl.ClusterStates()
	sr.Clusters = len(states)
	for _, st := range states {
		sr.Attempts += st.Attempts
	}
	sr.Mangled = len(in.MangledReplicas())
	ckpt := h.ctrl.CheckpointStats()
	sr.CkptSaves, sr.CkptHits = ckpt.Saves, ckpt.Hits

	bad := func(format string, args ...any) {
		sr.Violations = append(sr.Violations, fmt.Sprintf(format, args...))
	}

	// I7: checkpoint-granular recovery stays inside the protocol — a skip
	// can only consume a previously persisted f+1-agreed output, and the
	// off-configuration must never write or consume any. (Byte-identical
	// verified outputs under checkpointing is I3, which runs unchanged on
	// the checkpoint campaign leg.)
	if ckpt.Hits > 0 && ckpt.Saves == 0 {
		bad("checkpoint hits=%d with no saves", ckpt.Hits)
	}
	if !cfg.Core.Checkpoint && (ckpt.Saves > 0 || ckpt.Hits > 0) {
		bad("checkpointing disabled but saves=%d hits=%d", ckpt.Saves, ckpt.Hits)
	}

	// I1: terminal state — verified everywhere, or an explicit failure.
	if err == nil {
		for _, st := range states {
			if !st.Verified {
				bad("run verified but sub-graph c%d is not", st.ID)
			}
		}
	} else {
		failed := false
		for _, st := range states {
			if st.Failed {
				failed = true
			}
		}
		if !failed {
			bad("run errored (%v) with no sub-graph marked failed", err)
		}
	}
	// I5: verification respects dataflow — no sub-graph may be verified
	// on top of an unverified upstream.
	for _, st := range states {
		if !st.Verified {
			continue
		}
		for _, u := range st.Upstream {
			if !states[u].Verified {
				bad("sub-graph c%d verified over unverified upstream c%d", st.ID, u)
			}
		}
	}
	// I2: slot accounting returns to full capacity (every crash is paired
	// with a rejoin inside the drained event horizon).
	if free, total := h.eng.FreeSlotsTotal(), h.cl.TotalSlots(); free != total {
		bad("slot leak: free=%d total=%d", free, total)
	}
	// I6: cost attribution is complete — after the simulation drains,
	// every CPU microsecond the engine charged must sit in exactly one
	// ledger bucket (committed, replica waste, verify, recovery rerun).
	if got, want := h.eng.Ledger.Buckets().TotalUs(), h.eng.Metrics.CPUTimeUs; got != want {
		bad("cost ledger leak: buckets sum to %dus but engine charged %dus (unattributed=%d)",
			got, want, want-got)
	}
	// I3: a verified run's outputs are byte-identical to the clean run.
	if err == nil && res != nil {
		for store, want := range baseline {
			path, ok := res.Outputs[store]
			if !ok {
				bad("verified run missing output %s", store)
				continue
			}
			got, rerr := h.fs.ReadTree(path)
			if rerr != nil {
				bad("read verified output %s: %v", path, rerr)
				continue
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				bad("verified output %s differs from clean run (%d records vs %d)",
					store, len(got), len(want))
			}
		}
	}
	// I4: every commission-fault attribution is legitimate — the deviant
	// replica had its data mangled by the injector, or its job cluster
	// contains a scheduled victim node. Omission timeouts are exempt: the
	// paper's omission handling deliberately over-approximates.
	victims := map[cluster.NodeID]bool{}
	for _, n := range sched.Victims() {
		victims[n] = true
	}
	blamed := map[cluster.NodeID]bool{}
	for _, ev := range trail.Events() {
		if ev.Kind != analyze.AuditMismatch {
			continue
		}
		for _, n := range ev.Nodes {
			blamed[n] = true
		}
		if strings.Contains(ev.Detail, "timed out (omission)") {
			continue
		}
		var rep int
		var sid string
		if _, serr := fmt.Sscanf(ev.Detail, "replica %d of %s deviated", &rep, &sid); serr != nil {
			bad("unparseable mismatch attribution %q", ev.Detail)
			continue
		}
		if in.WasMangled(fmt.Sprintf("%s/r%d", sid, rep)) {
			continue
		}
		hit := false
		for _, n := range ev.Nodes {
			if victims[n] {
				hit = true
			}
		}
		if !hit {
			bad("mismatch blamed %v but no victim present and replica %s/r%d not mangled (%s)",
				ev.Nodes, sid, rep, ev.Detail)
		}
	}
	// Suspicion consistency: the fault analyzer may only suspect nodes
	// that appear in recorded evidence.
	for _, s := range h.ctrl.FA.Suspects() {
		if !blamed[s] {
			bad("analyzer suspects %s with no supporting audit evidence", s)
		}
	}
	// Clean schedules must run clean: no retries, no fault evidence.
	if len(sched.Events) == 0 {
		if err != nil {
			bad("clean schedule failed: %v", err)
		}
		if sr.Recoveries["retry"] > 0 || sr.Recoveries["restart"] > 0 || sr.Recoveries["fail"] > 0 {
			bad("clean schedule triggered recovery: %s", renderCounts(sr.Recoveries))
		}
		if len(blamed) > 0 {
			bad("clean schedule produced fault evidence against %d nodes", len(blamed))
		}
	}

	// Network chaos: the BFT control group must keep agreeing under the
	// schedule's quorum-bounded message perturbations.
	if cfg.NetOps > 0 && sched.HasNetEvents() {
		sr.NetRan = true
		agreed, nerr := netRun(in, cfg.Profile.F, cfg.NetOps)
		sr.NetAgreed = agreed
		if nerr != nil {
			bad("bft group under perturbation: %v", nerr)
		}
	}
	return sr
}

// HasNetEvents reports whether the schedule perturbs the BFT network.
func (s *Schedule) HasNetEvents() bool {
	for _, e := range s.Events {
		switch e.Kind {
		case NetDrop, NetDup, NetDelay:
			return true
		}
	}
	return false
}
