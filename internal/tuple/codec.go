package tuple

import (
	"strings"
)

// The line codec stores tuples as tab-separated text records, one per
// line, mirroring the default PigStorage format. Tabs, newlines and
// backslashes inside string values are escaped so the encoding is
// canonical: a given tuple always encodes to exactly one byte sequence.
// Digest computation depends on this property.
//
// One inherited ambiguity (shared with Hadoop's text formats): a tuple
// holding a single empty field encodes to the empty line, which decodes
// as the empty tuple. Replicas process identical streams identically, so
// digest comparison is unaffected; schema-carrying consumers should
// treat zero-column records as absent rows.

// EncodeLine renders t as one tab-separated record without a trailing
// newline.
func EncodeLine(t Tuple) string {
	var b strings.Builder
	AppendLine(&b, t)
	return b.String()
}

// AppendLine writes the tab-separated encoding of t to b.
func AppendLine(b *strings.Builder, t Tuple) {
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\t')
		}
		escapeTo(b, v.Str())
	}
}

// AppendCanonical appends the canonical byte encoding of t (the escaped
// tab-separated record followed by '\n') to dst and returns the extended
// slice. This is the exact byte stream fed to verification digests.
func AppendCanonical(dst []byte, t Tuple) []byte {
	for i, v := range t {
		if i > 0 {
			dst = append(dst, '\t')
		}
		dst = appendEscaped(dst, v.Str())
	}
	return append(dst, '\n')
}

// DecodeLine parses one encoded record into a tuple, coercing columns by
// the schema when provided (extra columns coerce as TypeAny; missing
// schema columns are not padded).
func DecodeLine(line string, schema *Schema) Tuple {
	if line == "" {
		return Tuple{}
	}
	fields := splitEscaped(line)
	t := make(Tuple, len(fields))
	for i, raw := range fields {
		ft := TypeAny
		if schema != nil && i < len(schema.Fields) {
			ft = schema.Fields[i].Type
		}
		t[i] = ft.Coerce(raw)
	}
	return t
}

func escapeTo(b *strings.Builder, s string) {
	if !strings.ContainsAny(s, "\t\n\\") {
		b.WriteString(s)
		return
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(s[i])
		}
	}
}

func appendEscaped(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, "\t\n\\") {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			dst = append(dst, '\\', 't')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\\':
			dst = append(dst, '\\', '\\')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// splitEscaped splits a record on unescaped tabs and unescapes each field.
func splitEscaped(line string) []string {
	var fields []string
	var cur strings.Builder
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && i+1 < len(line):
			i++
			switch line[i] {
			case 't':
				cur.WriteByte('\t')
			case 'n':
				cur.WriteByte('\n')
			case '\\':
				cur.WriteByte('\\')
			default:
				cur.WriteByte('\\')
				cur.WriteByte(line[i])
			}
		case c == '\t':
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	fields = append(fields, cur.String())
	return fields
}
