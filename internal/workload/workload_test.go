package workload

import (
	"strings"
	"testing"

	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

func TestScriptsParse(t *testing.T) {
	scripts := map[string]string{
		"follower": FollowerScript,
		"twohop":   TwoHopScript,
		"airline":  AirlineScript,
		"weather":  WeatherScript,
	}
	for name, src := range scripts {
		t.Run(name, func(t *testing.T) {
			p, err := pig.Parse(src)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(p.Stores()) == 0 {
				t.Error("no stores")
			}
		})
	}
}

func TestAirlineScriptIsMultiStore(t *testing.T) {
	p, err := pig.Parse(AirlineScript)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Stores()); got != 3 {
		t.Errorf("airline stores = %d, want 3", got)
	}
}

func TestTwitterShape(t *testing.T) {
	lines := Twitter(5000, 100, 1)
	if len(lines) != 5000 {
		t.Fatalf("rows = %d", len(lines))
	}
	zeros := 0
	users := map[string]int{}
	for _, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 {
			t.Fatalf("bad row %q", l)
		}
		if parts[1] == "0" {
			zeros++
		}
		users[parts[0]]++
	}
	if zeros == 0 || zeros > 500 {
		t.Errorf("zero-follower rows = %d, want a small nonzero fraction", zeros)
	}
	// Skew: the most popular user should have far more rows than the
	// median.
	max := 0
	for _, c := range users {
		if c > max {
			max = c
		}
	}
	if max < 5000/20 {
		t.Errorf("max user frequency %d too uniform", max)
	}
}

func TestTwitterDeterministic(t *testing.T) {
	a := Twitter(100, 50, 9)
	b := Twitter(100, 50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Twitter(100, 50, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAirlineShape(t *testing.T) {
	lines := Airline(2000, 20, 2)
	if len(lines) != 2000 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines[:50] {
		parts := strings.Split(l, "\t")
		if len(parts) != 5 {
			t.Fatalf("bad row %q", l)
		}
		if parts[2] == parts[3] {
			t.Errorf("origin == dest in %q", l)
		}
		year := tuple.Str(parts[0]).Int()
		if year < 2007 || year > 2008 {
			t.Errorf("year out of range: %q", l)
		}
	}
}

func TestAirlineHubClamp(t *testing.T) {
	lines := Airline(100, 9999, 3) // out-of-range hubs falls back
	if len(lines) != 100 {
		t.Fatal("generation failed with clamped hub count")
	}
}

func TestWeatherShape(t *testing.T) {
	lines := Weather(3000, 40, 4)
	stations := map[string]bool{}
	for _, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 3 {
			t.Fatalf("bad row %q", l)
		}
		stations[parts[0]] = true
		date := tuple.Str(parts[1]).Int()
		if date < 20050101 || date > 20091231 {
			t.Errorf("date out of range: %q", l)
		}
	}
	if len(stations) < 30 {
		t.Errorf("station coverage = %d of 40", len(stations))
	}
}
