// Package pool provides the bounded worker pool the MapReduce engine
// uses to compute task bodies off the simulation event loop. The pool
// bounds *concurrency* with a semaphore rather than keeping long-lived
// worker goroutines: each submission runs on its own goroutine that
// first acquires a slot, so an abandoned pool (engines have no Close)
// leaks nothing once in-flight work drains.
//
// Determinism contract: Submit returns a Future; callers that need
// reproducible behaviour must consume futures in a deterministic order
// (the engine waits in dispatch order), never race on which future
// finishes first.
package pool

import (
	"runtime"

	"clusterbft/internal/obs"
)

// Pool bounds how many submitted computations run concurrently.
type Pool struct {
	sem chan struct{}
	obs *obs.Counter // submissions; set by Instrument before first Go
}

// New builds a pool running at most size computations at once; size <= 0
// means runtime.GOMAXPROCS(0).
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Size returns the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// Instrument registers the pool into reg: its concurrency bound as a
// gauge and a counter of submitted computations. Call before the first
// Go; submissions already in flight keep the previous counter.
func (p *Pool) Instrument(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.Gauge("pool.size").Set(int64(p.Size()))
	p.obs = reg.Counter("pool.tasks_submitted")
}

// Future is the pending result of one submitted computation. Wait is
// not safe for concurrent use: one goroutine owns the future.
type Future[T any] struct {
	ch   chan T
	val  T
	done bool
}

// Go submits fn to the pool and returns its future. fn runs on a fresh
// goroutine once a concurrency slot frees; it must not touch state the
// submitting goroutine mutates before the corresponding Wait.
func Go[T any](p *Pool, fn func() T) *Future[T] {
	p.obs.Inc()
	f := &Future[T]{ch: make(chan T, 1)}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		f.ch <- fn()
	}()
	return f
}

// Wait blocks until fn finished and returns its result; repeated calls
// return the same value.
func (f *Future[T]) Wait() T {
	if !f.done {
		f.val = <-f.ch
		f.done = true
	}
	return f.val
}
