package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (no-ops) and safe for concurrent use: task bodies on
// the worker pool increment counters while the simulation goroutine
// reads others. Sums are order-independent, so concurrent increments do
// not threaten determinism of final values.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions (slots in use,
// queue depth). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed, registration-time bucket
// boundaries (upper bounds, inclusive, in ascending order) plus an
// implicit +Inf bucket, and tracks sum and count. Observe is nil-safe
// and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// DurationBucketsUs is a general-purpose set of virtual-microsecond
// latency boundaries: 1ms..100s in roughly 3x steps.
var DurationBucketsUs = []int64{
	1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
	1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values; 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCount returns the count of bucket i (i == len(Bounds()) is the
// +Inf bucket).
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Registry is a named collection of instruments. Register-or-get
// methods return the existing instrument when the name is taken, so
// components created in sequence (e.g. one engine per experiment rig)
// accumulate into shared counters. Func gauges are read-only views over
// external state (the mapred.Metrics compatibility view); re-registering
// a func name replaces the reader.
//
// All methods are nil-safe: a nil *Registry hands out nil instruments,
// which are themselves no-ops, so "metrics off" needs no wiring at all.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram registers (or returns the existing) histogram under name.
// bounds are ascending upper bounds; they are fixed at first
// registration and later bounds arguments for the same name are ignored.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Func registers a read-only gauge computed at snapshot time. Replaces
// any previous func under the same name.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Sample is one named value of a registry snapshot. Histograms expand
// into one sample per bucket plus _count and _sum.
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge", "hist", "func"
	Value int64
}

// Snapshot reads every instrument into a deterministic, name-sorted
// sample list.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+4*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, fn := range r.funcs {
		out = append(out, Sample{Name: name, Kind: "func", Value: fn()})
	}
	for name, h := range r.hists {
		out = append(out, Sample{Name: name + "_count", Kind: "hist", Value: h.Count()})
		out = append(out, Sample{Name: name + "_sum", Kind: "hist", Value: h.Sum()})
		for i, b := range h.bounds {
			out = append(out, Sample{
				Name: name + "_le_" + strconv.FormatInt(b, 10), Kind: "hist", Value: h.BucketCount(i),
			})
		}
		out = append(out, Sample{Name: name + "_le_inf", Kind: "hist", Value: h.BucketCount(len(h.bounds))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderText formats the snapshot as an aligned two-column table, one
// instrument per line, name-sorted.
func (r *Registry) RenderText() string {
	samples := r.Snapshot()
	width := 0
	for _, s := range samples {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%-*s  %d\n", width, s.Name, s.Value)
	}
	return b.String()
}
