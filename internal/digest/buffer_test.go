package digest

import (
	"reflect"
	"testing"

	"clusterbft/internal/tuple"
)

// Writer edge cases around the Buffer integration: negative chunking,
// Add after Close, double Close.

func TestNegativeEveryActsAsSingleDigest(t *testing.T) {
	for _, every := range []int{0, -1, -1000} {
		var got []Report
		w := NewWriter(Key{SID: "s", Point: 1, Task: "m000"}, 0, every, collect(&got))
		data := rows(7)
		for _, r := range data {
			w.Add(r)
		}
		w.Close()
		if len(got) != 1 {
			t.Fatalf("every=%d: reports = %d, want 1", every, len(got))
		}
		if !got[0].Final || got[0].Records != 7 || got[0].Sum != Of(data) {
			t.Errorf("every=%d: report = %+v", every, got[0])
		}
	}
}

func TestAddAfterCloseIgnored(t *testing.T) {
	var got []Report
	w := NewWriter(Key{SID: "s", Point: 1, Task: "m000"}, 0, 0, collect(&got))
	data := rows(3)
	for _, r := range data {
		w.Add(r)
	}
	w.Close()
	w.Add(tuple.Tuple{tuple.Str("late")})
	w.Close()
	if len(got) != 1 {
		t.Fatalf("reports = %d, want 1 (Add after Close must not reopen)", len(got))
	}
	if got[0].Sum != Of(data) {
		t.Error("late Add leaked into the closed digest")
	}
	if w.Records() != 0 {
		t.Errorf("records after close = %d, want 0", w.Records())
	}
}

func TestDoubleCloseEmitsOnce(t *testing.T) {
	var got []Report
	w := NewWriter(Key{SID: "s", Point: 2, Task: "r001"}, 1, 2, collect(&got))
	for _, r := range rows(3) {
		w.Add(r)
	}
	w.Close()
	w.Close()
	w.Close()
	finals := 0
	for _, r := range got {
		if r.Final {
			finals++
		}
	}
	if finals != 1 {
		t.Errorf("final reports = %d, want exactly 1", finals)
	}
}

// Buffer behaviour.

func TestBufferZeroValueEmpty(t *testing.T) {
	var b Buffer
	if b.Len() != 0 || len(b.Reports()) != 0 {
		t.Error("zero-value buffer must be empty")
	}
	called := false
	b.Replay(func(Report) { called = true })
	if called {
		t.Error("replay of an empty buffer must not call the sink")
	}
	b.Replay(nil) // must not panic
}

func TestBufferReplayNilSink(t *testing.T) {
	var b Buffer
	b.Add(Report{Replica: 1})
	b.Replay(nil) // digests disabled: must be a silent no-op
	if b.Len() != 1 {
		t.Error("replay must not consume the buffer")
	}
}

func TestBufferReplayPreservesEmissionOrder(t *testing.T) {
	// A writer emitting through a buffer, replayed, must produce the
	// exact report sequence the writer emitting straight into a sink
	// produces — that equivalence is what makes commit-time replay
	// transparent to the verifier.
	emitRows := func(emit func(Report)) {
		w := NewWriter(Key{SID: "s", Point: 1, Task: "m000"}, 2, 3, emit)
		for _, r := range rows(10) {
			w.Add(r)
		}
		w.Close()
		w2 := NewWriter(Key{SID: "s", Point: 4, Task: "m000"}, 2, 0, emit)
		for _, r := range rows(4) {
			w2.Add(r)
		}
		w2.Close()
	}
	var direct []Report
	emitRows(collect(&direct))

	var b Buffer
	emitRows(b.Add)
	var replayed []Report
	b.Replay(collect(&replayed))

	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("replayed sequence differs from direct emission:\n%v\nvs\n%v", replayed, direct)
	}
	if b.Len() != len(direct) || !reflect.DeepEqual(b.Reports(), direct) {
		t.Error("Reports() must expose the buffered sequence unchanged")
	}
	// Replay is repeatable — a retried commit sees the same sequence.
	var again []Report
	b.Replay(collect(&again))
	if !reflect.DeepEqual(again, replayed) {
		t.Error("second replay differs from first")
	}
}

func TestBufferChunkIndicesMonotonicPerPoint(t *testing.T) {
	var b Buffer
	w := NewWriter(Key{SID: "s", Point: 9, Task: "m001"}, 0, 2, b.Add)
	for _, r := range rows(7) {
		w.Add(r)
	}
	w.Close()
	for i, r := range b.Reports() {
		if r.Key.Chunk != i {
			t.Fatalf("report %d has chunk %d", i, r.Key.Chunk)
		}
		if i == len(b.Reports())-1 && !r.Final {
			t.Error("last buffered report must be the final chunk")
		}
	}
}
