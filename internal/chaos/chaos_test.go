package chaos

import (
	"reflect"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/tuple"
)

// TestGenerateDeterministic pins the schedule generator's core contract:
// a seed fully determines the schedule, and different seeds explore
// different fault plans.
func TestGenerateDeterministic(t *testing.T) {
	p := DefaultProfile(8)
	distinct := 0
	for seed := int64(1); seed <= 50; seed++ {
		a := Generate(seed, p)
		b := Generate(seed, p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a, b)
		}
		if a.String() != Generate(seed+1, p).String() {
			distinct++
		}
	}
	if distinct < 40 {
		t.Errorf("only %d/50 adjacent seeds produced distinct schedules", distinct)
	}
}

// TestGenerateRespectsBounds checks the quorum-safety bounds: node
// victims stay within MaxVictims, net victims within F, and integrity
// faults stay within the f=1 attribution budget — all commission events
// share one victim node, all storage mangles share one victim replica,
// and a schedule never mixes the two families.
func TestGenerateRespectsBounds(t *testing.T) {
	p := DefaultProfile(8)
	p.MaxFaults = 6
	p.MaxVictims = 2
	for seed := int64(1); seed <= 200; seed++ {
		s := Generate(seed, p)
		if got := len(s.Victims()); got > p.MaxVictims {
			t.Errorf("seed %d: %d node victims, max %d", seed, got, p.MaxVictims)
		}
		netVictims := map[int]bool{}
		storageVictim := -1
		commissionVictim := ""
		for _, ev := range s.Events {
			switch ev.Kind {
			case NetDrop, NetDup, NetDelay:
				netVictims[ev.Replica] = true
			case MangleRead, MangleWrite, TruncateWrite:
				if storageVictim >= 0 && ev.Replica != storageVictim {
					t.Errorf("seed %d: storage events target replicas %d and %d",
						seed, storageVictim, ev.Replica)
				}
				storageVictim = ev.Replica
			case Commission:
				if commissionVictim != "" && string(ev.Node) != commissionVictim {
					t.Errorf("seed %d: commission events target nodes %s and %s",
						seed, commissionVictim, ev.Node)
				}
				commissionVictim = string(ev.Node)
			}
		}
		if len(netVictims) > p.F {
			t.Errorf("seed %d: %d net victims, max %d", seed, len(netVictims), p.F)
		}
		if storageVictim >= 0 && commissionVictim != "" {
			t.Errorf("seed %d: schedule mixes storage mangles with commission faults", seed)
		}
	}
}

// TestSaltedCorruptDistinctPerNode guards against commission collusion:
// two victim nodes must never corrupt a tuple into identical bytes, or
// their replicas could assemble a false f+1 agreement.
func TestSaltedCorruptDistinctPerNode(t *testing.T) {
	in := tuple.Tuple{tuple.Str("st01"), tuple.Int(17), tuple.Float(2.5)}
	a := saltedCorrupt("node-000", 99)(in)
	b := saltedCorrupt("node-001", 99)(in)
	if tuple.EqualTuples(a, in) || tuple.EqualTuples(b, in) {
		t.Fatal("corruption left the tuple unchanged")
	}
	if tuple.EqualTuples(a, b) {
		t.Errorf("nodes corrupt identically: %v", a)
	}
	// All-integer tuples are the dangerous case: no string field carries
	// the node tag, so distinctness rests entirely on the numeric delta.
	// Every victim pair across every salt must still diverge.
	ints := tuple.Tuple{tuple.Int(3), tuple.Int(40)}
	nodes := []string{"node-000", "node-001", "node-002", "node-003", "node-004", "node-005"}
	for salt := uint64(1); salt <= 50; salt++ {
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				ci := saltedCorrupt(cluster.NodeID(nodes[i]), salt)(ints)
				cj := saltedCorrupt(cluster.NodeID(nodes[j]), salt)(ints)
				if tuple.EqualTuples(ci, cj) {
					t.Fatalf("salt %d: %s and %s corrupt all-int tuples identically (%v)",
						salt, nodes[i], nodes[j], ci)
				}
			}
		}
	}
}

// TestReplicaOf pins the attempt-namespace parser the storage mangler
// uses for attribution.
func TestReplicaOf(t *testing.T) {
	idx, key, ok := replicaOf("x/run1-c2-a0/r3/im/j4/part-r-00001")
	if !ok || idx != 3 || key != "run1-c2-a0/r3" {
		t.Errorf("got (%d, %q, %v)", idx, key, ok)
	}
	for _, p := range []string{"data/weather", "x/sid", "x/sid/q1/out", ""} {
		if _, _, ok := replicaOf(p); ok {
			t.Errorf("%q parsed as a replica path", p)
		}
	}
}

// TestDetDeterministicAndSpread sanity-checks the per-site draw: pure,
// and roughly uniform over [0, 1000).
func TestDetDeterministicAndSpread(t *testing.T) {
	if det(7, "a/b") != det(7, "a/b") {
		t.Fatal("det is not pure")
	}
	low := 0
	for i := 0; i < 2000; i++ {
		if det(42, string(rune(i))+"/site") < 500 {
			low++
		}
	}
	if low < 800 || low > 1200 {
		t.Errorf("det badly skewed: %d/2000 below 500", low)
	}
}
