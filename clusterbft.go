// Package clusterbft is a Go implementation of ClusterBFT (Stephen &
// Eugster, Middleware 2013): assured cloud data analysis that protects
// data-flow computations with Byzantine fault tolerant replication at
// variable granularity. Scripts written in a PigLatin subset compile to
// MapReduce jobs; sub-graphs of the data-flow DAG are replicated r-fold
// on an untrusted worker tier; SHA-256 digests of the streams crossing a
// small set of verification points are matched f+1-fold by a trusted
// verifier, which re-initiates failed sub-graphs at higher replication,
// tracks per-node suspicion, and intersects faulty job clusters to
// isolate Byzantine nodes.
//
// This package is the facade over the implementation: it bundles trusted
// storage, a simulated untrusted worker tier, the MapReduce engine and
// the ClusterBFT control tier into one System. The detailed machinery
// lives in internal/ packages (pig, mapred, core, bft, ...); everything
// a client needs is re-exported here.
//
// Basic usage:
//
//	sys := clusterbft.New(16, 3, clusterbft.DefaultConfig())
//	sys.LoadData("data/edges", lines...)
//	res, err := sys.Run(script)
//	out, _ := sys.Output(res, "out/counts")
package clusterbft

import (
	"fmt"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// Config parameterizes assured execution; see the field docs in
// internal/core. Zero values get sensible defaults via DefaultConfig.
type Config = core.Config

// Result summarizes one assured run.
type Result = core.Result

// Metrics are the engine's resource counters.
type Metrics = mapred.Metrics

// CostModel sets virtual-time costs for the simulated engine.
type CostModel = mapred.CostModel

// NodeID identifies a worker node ("node-000", "node-001", ...).
type NodeID = cluster.NodeID

// FaultKind classifies injected Byzantine behaviour.
type FaultKind = cluster.FaultKind

// Fault kinds for InjectFault.
const (
	FaultCommission = cluster.FaultCommission
	FaultOmission   = cluster.FaultOmission
	FaultSlow       = cluster.FaultSlow
)

// Adversary models for Config.Model.
const (
	WeakAdversary   = analyze.Weak
	StrongAdversary = analyze.Strong
)

// StorageOptions configures the trusted store's block data plane: block
// size, resident-memory budget, spill directory and per-block
// compression. Set via Config.Storage; the zero value keeps everything
// resident and uncompressed.
type StorageOptions = dfs.Options

// DefaultConfig mirrors the paper's common setup: f=1, r=4, two
// verification points, weak adversary, offline comparison.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultCostModel returns Hadoop-1.x-flavoured virtual-time costs.
func DefaultCostModel() CostModel { return mapred.DefaultCostModel() }

// System bundles one assured-analysis deployment: trusted storage, an
// untrusted simulated worker tier, the MapReduce engine and the
// ClusterBFT controller. A System is not safe for concurrent use.
type System struct {
	fs      *dfs.FS
	workers *cluster.Cluster
	engine  *mapred.Engine
	susp    *core.SuspicionTable
	ctrl    *core.Controller
}

// New builds a system with `nodes` worker nodes of `slots` task slots
// each, using the default cost model.
func New(nodes, slots int, cfg Config) *System {
	return NewWithCost(nodes, slots, cfg, mapred.DefaultCostModel())
}

// NewWithCost is New with an explicit virtual-time cost model.
func NewWithCost(nodes, slots int, cfg Config, cost CostModel) *System {
	fs := dfs.NewWith(cfg.Storage)
	workers := cluster.New(nodes, slots)
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	engine := mapred.NewEngine(fs, workers, core.NewOverlapScheduler(susp), cost)
	ctrl := core.NewController(engine, cfg, susp, nil)
	return &System{fs: fs, workers: workers, engine: engine, susp: susp, ctrl: ctrl}
}

// LoadData appends records (one per line, tab-separated columns) to the
// trusted store at path, where scripts LOAD them.
func (s *System) LoadData(path string, lines ...string) {
	s.fs.Append(path, lines...)
}

// InjectFault attaches a seeded Byzantine adversary to a node: a
// commission adversary corrupts task outputs, an omission adversary
// withholds task completions, a slow adversary stretches task durations.
// probability is the per-task chance of firing.
func (s *System) InjectFault(node NodeID, kind FaultKind, probability float64, seed int64) error {
	return s.workers.SetAdversary(node, kind, probability, seed)
}

// InjectFaultWithFactor is InjectFault with an explicit straggler factor
// for FaultSlow adversaries.
func (s *System) InjectFaultWithFactor(node NodeID, kind FaultKind, probability float64, seed int64, slowFactor float64) error {
	if err := s.workers.SetAdversary(node, kind, probability, seed); err != nil {
		return err
	}
	s.workers.Node(node).Adversary.SlowFactor = slowFactor
	return nil
}

// SetSpeculation toggles Hadoop-style speculative execution in the
// engine: laggard tasks get backup copies on other nodes, rescuing
// replicas from stragglers and omission-hung tasks.
func (s *System) SetSpeculation(on bool) { s.engine.Speculation = on }

// SetWorkers bounds the pool that computes task bodies: 0 means
// GOMAXPROCS, 1 serializes bodies. Every virtual-time observable
// (latencies, metrics, digests, outputs) is identical at any setting —
// the pool changes only wall-clock time. Must be called before the
// first Run.
func (s *System) SetWorkers(n int) { s.engine.Workers = n }

// Run executes a script under BFT protection and blocks until the
// simulation settles. Suspicion state persists across calls, so a stream
// of Runs sharpens fault isolation.
func (s *System) Run(script string) (*Result, error) {
	return s.ctrl.Run(script)
}

// RunPlain executes a script with no replication or verification (the
// "Pure Pig" baseline) and returns its virtual latency in microseconds.
func (s *System) RunPlain(script string) (int64, error) {
	return core.RunPlain(s.engine, script)
}

// Output reads the verified output of one STORE path from res.
func (s *System) Output(res *Result, store string) ([]string, error) {
	path, ok := res.Outputs[store]
	if !ok {
		return nil, fmt.Errorf("clusterbft: no verified output for store %q", store)
	}
	return s.fs.ReadTree(path)
}

// Suspicion returns a node's current suspicion level in [0, 1].
func (s *System) Suspicion(node NodeID) float64 { return s.susp.Level(node) }

// Excluded reports whether a node fell off the scheduler's inclusion
// list.
func (s *System) Excluded(node NodeID) bool { return s.susp.Excluded(node) }

// Suspects returns the fault analyzer's current suspicion set.
func (s *System) Suspects() []NodeID { return s.ctrl.FA.Suspects() }

// EngineMetrics snapshots the engine's cumulative resource counters.
func (s *System) EngineMetrics() Metrics { return s.engine.Metrics }

// VirtualNow returns the engine's virtual clock in microseconds.
func (s *System) VirtualNow() int64 { return s.engine.Now() }

// Close releases the trusted store's spill file, if a memory budget ever
// forced blocks to disk. Safe to call on systems that never spilled.
func (s *System) Close() error { return s.fs.Close() }
