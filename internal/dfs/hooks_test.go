package dfs

import (
	"fmt"
	"strings"
	"testing"
)

// hookLog installs recording Read/Write hooks on fs and returns the
// observation log they build: one entry per hook firing, capturing the
// path and the exact line stream the hook saw.
func hookLog(fs *FS) *[]string {
	log := &[]string{}
	fs.WriteHook = func(path string, lines []string) []string {
		*log = append(*log, "W "+path+" "+strings.Join(lines, "\x1f"))
		return lines
	}
	fs.ReadHook = func(path string, lines []string) []string {
		*log = append(*log, "R "+path+" "+strings.Join(lines, "\x1f"))
		return lines
	}
	return log
}

// TestHookEquivalenceBlockVsLegacy proves the chaos contract across
// storage configurations: fault-injection hooks observe byte-identical
// line streams whether the file sits in a single resident default-size
// block or is shredded into tiny compressed blocks that spill to disk.
// The same workload — creates, appends, single-file and tree reads,
// streaming reads — is replayed against both configurations and the two
// hook observation logs must match entry for entry.
func TestHookEquivalenceBlockVsLegacy(t *testing.T) {
	workload := func(fs *FS) {
		fs.Create("job/in")
		fs.Append("job/in", "alpha\t1", "beta\\t2", "gamma\\\\3")
		for i := 0; i < 40; i++ {
			fs.Append("job/in", fmt.Sprintf("row-%03d\t%d\tpayload-%d", i, i*i, i%7))
		}
		fs.Append("job/parts/part-0", "k1\t10", "k2\t20")
		fs.Append("job/parts/part-1", "k3\t30")
		if _, err := fs.ReadLines("job/in"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadTree("job/parts"); err != nil {
			t.Fatal(err)
		}
		// Streaming readers fall back to the materializing path when a
		// ReadHook is installed, so they must fire it identically too.
		r, err := fs.OpenReader("job/in")
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		tr, err := fs.OpenTreeReader("job/parts")
		if err != nil {
			t.Fatal(err)
		}
		tr.ReadRange(0, tr.NumRecords())
	}

	legacy := New()
	legacyLog := hookLog(legacy)
	workload(legacy)

	block := NewWith(Options{BlockSize: 48, MemBudget: 96, SpillDir: t.TempDir(), Compress: true})
	defer block.Close()
	blockLog := hookLog(block)
	workload(block)

	if block.SpilledBlocks() == 0 {
		t.Fatal("block-backed run never spilled; config not exercising the spill path")
	}
	if len(*legacyLog) != len(*blockLog) {
		t.Fatalf("hook firing counts differ: legacy %d, block %d", len(*legacyLog), len(*blockLog))
	}
	for i := range *legacyLog {
		if (*legacyLog)[i] != (*blockLog)[i] {
			t.Fatalf("hook observation %d diverged:\n  legacy %q\n  block  %q",
				i, (*legacyLog)[i], (*blockLog)[i])
		}
	}
}
