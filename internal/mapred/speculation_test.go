package mapred

import (
	"fmt"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/pig"
)

// specFixture builds an engine over enough data for multiple map tasks.
func specFixture(t *testing.T, nodes, slots int, speculation bool) (*Engine, []*JobSpec) {
	t.Helper()
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ { // 3 map splits
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	p, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(nodes, slots), nil, DefaultCostModel())
	eng.Speculation = speculation
	return eng, p
}

func compileHelper(src string, opts CompileOptions) ([]*JobSpec, error) {
	pl, err := parseHelper(src)
	if err != nil {
		return nil, err
	}
	return Compile(pl, opts)
}

func TestSpeculationRescuesOmission(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, true)
	// One omission node: any task landing there hangs; with speculation
	// a backup on another node completes the job anyway.
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if !js.Done {
		t.Fatal("speculation failed to rescue the job from a hung task")
	}
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Error("no backup tasks counted")
	}
}

func TestNoSpeculationLeavesJobHung(t *testing.T) {
	eng, jobs := specFixture(t, 6, 2, false)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 {
		t.Skip("omission node got no tasks in this layout")
	}
	if js.Done {
		t.Fatal("without speculation a hung task must stall the job")
	}
}

func TestSlowFaultStretchesLatency(t *testing.T) {
	run := func(slow bool) int64 {
		eng, jobs := specFixture(t, 4, 2, false)
		if slow {
			for _, n := range eng.Cluster.Nodes() {
				n.Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
				n.Adversary.SlowFactor = 5
			}
		}
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	fast, stretched := run(false), run(true)
	if stretched < 3*fast {
		t.Errorf("5x stragglers everywhere should stretch latency: %d vs %d", stretched, fast)
	}
}

func TestSlowFaultOutputUnchanged(t *testing.T) {
	honest, honestJobs := specFixture(t, 4, 2, false)
	if _, err := honest.Submit(honestJobs[0]); err != nil {
		t.Fatal(err)
	}
	honest.Run()
	want, err := honest.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}

	slowEng, slowJobs := specFixture(t, 4, 2, false)
	slowEng.Cluster.Nodes()[0].Adversary = cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if _, err := slowEng.Submit(slowJobs[0]); err != nil {
		t.Fatal(err)
	}
	slowEng.Run()
	got, err := slowEng.FS.ReadTree("out/counts")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d differs: %q vs %q (stragglers are benign)", i, got[i], want[i])
		}
	}
}

func TestSpeculationAgainstStraggler(t *testing.T) {
	// A single straggler node: with speculation the job finishes much
	// closer to the honest latency because the backup overtakes.
	run := func(speculation bool) int64 {
		eng, jobs := specFixture(t, 6, 2, speculation)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, err := eng.Submit(jobs[0])
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !js.Done {
			t.Fatal("job incomplete")
		}
		return js.Latency()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("speculation should beat a 20x straggler: with=%d without=%d", with, without)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		eng, jobs := specFixture(t, 6, 2, true)
		adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
		adv.SlowFactor = 20
		eng.Cluster.Nodes()[1].Adversary = adv
		js, _ := eng.Submit(jobs[0])
		eng.Run()
		return js.Latency(), eng.Metrics.SpeculativeTasks
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Errorf("speculation nondeterministic: (%d,%d) vs (%d,%d)", l1, s1, l2, s2)
	}
}

func TestAdversarySlowdownDefault(t *testing.T) {
	a := cluster.NewAdversary(cluster.FaultSlow, 1.0, 1)
	if a.Slowdown() != 4 {
		t.Errorf("default slowdown = %v, want 4", a.Slowdown())
	}
	a.SlowFactor = 7
	if a.Slowdown() != 7 {
		t.Errorf("explicit slowdown = %v", a.Slowdown())
	}
	var nilAdv *cluster.Adversary
	if nilAdv.Slowdown() != 4 {
		t.Error("nil adversary slowdown should default")
	}
}

func parseHelper(src string) (*pig.Plan, error) { return pig.Parse(src) }

func TestBackupNeverSharesNodeWithLiveOriginal(t *testing.T) {
	// §4.2: a speculative backup defeats omission-fault recovery if it
	// lands on the node still running (or hanging) the original, so the
	// engine must never co-locate two live attempts of one task. Checked
	// continuously over a run with hung originals and backups in flight.
	eng, jobs := specFixture(t, 6, 2, true)
	if err := eng.Cluster.SetAdversary("node-001", cluster.FaultOmission, 1.0, 3); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	var check func()
	check = func() {
		for tid, rts := range js.running {
			seen := map[cluster.NodeID]bool{}
			for _, rt := range rts {
				if rt.dead {
					continue
				}
				if seen[rt.node] {
					t.Errorf("task %s has two live attempts on %s", tid, rt.node)
				}
				seen[rt.node] = true
			}
		}
		if !js.Done && !js.Killed && eng.Now() < 600_000_000 {
			eng.After(500_000, check)
		}
	}
	eng.After(500_000, check)
	eng.Run()
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Skip("no backups launched in this layout")
	}
	if !js.Done {
		t.Fatal("backups on honest nodes should have rescued the job")
	}
}

func TestUnplaceableBackupDoesNotSpinEngine(t *testing.T) {
	// A single-node cluster with a sometimes-omission adversary: hung
	// tasks earn backups, but the only legal node is the one hanging the
	// original, so the backups can never be placed. The engine must go
	// quiescent (Run returns, job incomplete) instead of re-arming
	// heartbeats and speculation sweeps forever — before the fix this
	// test never returned.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(1, 2), nil, DefaultCostModel())
	eng.Speculation = true
	if err := eng.Cluster.SetAdversary("node-000", cluster.FaultOmission, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.TasksHung == 0 || eng.Metrics.SpeculativeTasks == 0 {
		t.Fatalf("scenario lost its shape: hung=%d spec=%d",
			eng.Metrics.TasksHung, eng.Metrics.SpeculativeTasks)
	}
	if js.Done {
		t.Fatal("a hung task with no legal backup node cannot complete")
	}
	// The queued backups stay pending — never started, never placed on
	// the hanging node.
	for _, rdy := range eng.ready {
		for _, rt := range js.running[rdy.ID()] {
			if !rt.hung {
				t.Errorf("queued backup %s coexists with a live attempt", rdy.ID())
			}
		}
	}
}

func TestCommittedTaskLeavesReadyQueue(t *testing.T) {
	// A backup queued while the cluster is saturated may still be queued
	// when the original commits; the commit must purge it from the ready
	// queue. Before the fix the stale entry re-armed heartbeats forever
	// and Run never returned. Single node + mixed straggler forces the
	// shape: the backup is never placeable, and the slow original
	// eventually commits on its own.
	fs := dfs.New()
	var lines []string
	for i := 0; i < 30000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%50, i))
	}
	fs.Append("in/edges", lines...)
	jobs, err := compileHelper(followerSrc, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(1, 2), nil, DefaultCostModel())
	eng.Speculation = true
	adv := cluster.NewAdversary(cluster.FaultSlow, 0.5, 2)
	adv.SlowFactor = 25
	eng.Cluster.Nodes()[0].Adversary = adv
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Fatalf("scenario lost its shape: no backup queued")
	}
	if !js.Done {
		t.Fatal("stragglers are benign; the job must complete")
	}
	if len(eng.ready) != 0 {
		t.Fatalf("%d committed task(s) left on the ready queue", len(eng.ready))
	}
	if got := eng.FreeSlotsTotal(); got != eng.Cluster.TotalSlots() {
		t.Errorf("free slots = %d, want %d", got, eng.Cluster.TotalSlots())
	}
}
