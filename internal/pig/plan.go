package pig

import (
	"fmt"
	"strings"

	"clusterbft/internal/tuple"
)

// OpKind enumerates logical-plan operator kinds.
type OpKind uint8

// Logical operators. OpGroup, OpJoin, OpOrder and OpDistinct force a
// shuffle (MapReduce job boundary) when compiled.
const (
	OpLoad OpKind = iota + 1
	OpFilter
	OpGroup
	OpJoin
	OpForEach
	OpUnion
	OpDistinct
	OpOrder
	OpLimit
	OpStore
	OpSample
)

// String returns the PigLatin-style operator name.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "LOAD"
	case OpFilter:
		return "FILTER"
	case OpGroup:
		return "GROUP"
	case OpJoin:
		return "JOIN"
	case OpForEach:
		return "FOREACH"
	case OpUnion:
		return "UNION"
	case OpDistinct:
		return "DISTINCT"
	case OpOrder:
		return "ORDER"
	case OpLimit:
		return "LIMIT"
	case OpStore:
		return "STORE"
	case OpSample:
		return "SAMPLE"
	default:
		return fmt.Sprintf("OP(%d)", uint8(k))
	}
}

// IsShuffle reports whether the operator forces a MapReduce boundary.
func (k OpKind) IsShuffle() bool {
	switch k {
	case OpGroup, OpJoin, OpOrder, OpDistinct:
		return true
	default:
		return false
	}
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Col  int // column index in the parent schema
	Desc bool
}

// Aggregate is one aggregate function application inside a FOREACH over a
// grouped relation.
type Aggregate struct {
	Func   string // count, sum, avg, min, max (lower case)
	ColIdx int    // column in the pre-group schema; -1 for COUNT(bag)
}

// Algebraic reports whether the aggregate decomposes into mergeable
// partial state whose merged result is byte-identical to one sequential
// fold over the whole bag, so a map-side combiner may pre-aggregate it.
// COUNT always decomposes (partial counts add). MIN/MAX decompose for
// any comparable column: the fold keeps the first-arriving extremum on
// Compare ties, and merging task-local extrema in task order preserves
// that choice. SUM and AVG decompose into (sum, count) partial state
// only when the aggregated bag column is declared int: integer addition
// is associative (including two's-complement wrap-around), while
// tuple.Add's float fallback reassociates rounding error and would break
// replica digest comparison. AVG additionally relies on the integer-
// division finalize (the §5.4 determinism workaround), which consumes
// exactly the (sum, count) pair. A declared-int column is guaranteed to
// hold KindInt values because it can only be produced by schema
// coercion — FOREACH projections always emit untyped (TypeAny) schemas.
func (a *Aggregate) Algebraic(bag *tuple.Schema) bool {
	switch a.Func {
	case "count", "min", "max":
		return true
	case "sum", "avg":
		return bag != nil && a.ColIdx >= 0 && a.ColIdx < len(bag.Fields) &&
			bag.Fields[a.ColIdx].Type == tuple.TypeInt
	default:
		return false
	}
}

// GenItem is one GENERATE item of a FOREACH: either a scalar expression
// (over the parent schema, or over the group key for grouped parents) or
// an Aggregate. Exactly one of Expr and Agg is set.
type GenItem struct {
	Expr Expr
	Agg  *Aggregate
	Name string // output column name
}

// Vertex is one node of the logical-plan DAG.
type Vertex struct {
	ID     int
	Kind   OpKind
	Alias  string // relation alias; empty for STORE
	Line   int    // source line, for error messages
	Schema *tuple.Schema

	Parents  []*Vertex
	Children []*Vertex

	// Operator-specific fields.
	Path      string     // LOAD source / STORE destination
	Pred      Expr       // FILTER predicate
	GroupCols []int      // GROUP key column indices in the parent schema
	GroupAll  bool       // GROUP ... ALL
	JoinCols  [][]int    // per-parent join key column indices
	Gens      []GenItem  // FOREACH generate list
	OrderBy   []OrderKey // ORDER keys
	LimitN    int64      // LIMIT count
	Fraction  float64    // SAMPLE keep fraction in (0, 1]
}

// String renders the vertex as "3:GROUP(c)".
func (v *Vertex) String() string {
	if v.Alias != "" {
		return fmt.Sprintf("%d:%s(%s)", v.ID, v.Kind, v.Alias)
	}
	return fmt.Sprintf("%d:%s", v.ID, v.Kind)
}

// Plan is a directed acyclic data-flow graph. Vertices are stored in
// construction order, which is topological because every statement only
// references previously defined aliases.
type Plan struct {
	Vertices []*Vertex
	byAlias  map[string]*Vertex
}

func newPlan() *Plan {
	return &Plan{byAlias: make(map[string]*Vertex)}
}

// ByAlias returns the vertex currently bound to alias, or nil.
func (p *Plan) ByAlias(alias string) *Vertex {
	return p.byAlias[alias]
}

// ByID returns the vertex with the given ID, or nil.
func (p *Plan) ByID(id int) *Vertex {
	for _, v := range p.Vertices {
		if v.ID == id {
			return v
		}
	}
	return nil
}

// Loads returns the LOAD vertices in plan order.
func (p *Plan) Loads() []*Vertex { return p.ofKind(OpLoad) }

// Stores returns the STORE vertices in plan order.
func (p *Plan) Stores() []*Vertex { return p.ofKind(OpStore) }

func (p *Plan) ofKind(k OpKind) []*Vertex {
	var out []*Vertex
	for _, v := range p.Vertices {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// add links a vertex beneath its parents and registers its alias.
func (p *Plan) add(v *Vertex) *Vertex {
	v.ID = len(p.Vertices)
	p.Vertices = append(p.Vertices, v)
	for _, par := range v.Parents {
		par.Children = append(par.Children, v)
	}
	if v.Alias != "" {
		p.byAlias[v.Alias] = v
	}
	return v
}

// String renders the plan one vertex per line with parent references,
// e.g. "2:GROUP(c) <- [1:FILTER(b)]".
func (p *Plan) String() string {
	var b strings.Builder
	for _, v := range p.Vertices {
		b.WriteString(v.String())
		if len(v.Parents) > 0 {
			b.WriteString(" <- [")
			for i, par := range v.Parents {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(par.String())
			}
			b.WriteString("]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// planError wraps a semantic error with its source line.
func planError(line int, format string, args ...any) error {
	return fmt.Errorf("pig: line %d: %s", line, fmt.Sprintf(format, args...))
}

// resolveCols maps column names to indices in s.
func resolveCols(s *tuple.Schema, names []string, line int) ([]int, error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		c := &Col{Name: n}
		if err := c.Bind(s); err != nil {
			return nil, planError(line, "%v", err)
		}
		idxs[i] = c.Index()
	}
	return idxs, nil
}

// qualify builds the output schema of a JOIN: each parent's columns
// renamed to "alias::name" (already-qualified names keep only their last
// component before requalification, matching Pig's display).
func qualify(parents []*Vertex) *tuple.Schema {
	out := &tuple.Schema{}
	for _, p := range parents {
		prefix := p.Alias
		for _, f := range p.Schema.Fields {
			name := f.Name
			if i := strings.LastIndex(name, "::"); i >= 0 {
				name = name[i+2:]
			}
			if prefix != "" {
				name = prefix + "::" + name
			}
			out.Fields = append(out.Fields, tuple.Field{Name: name, Type: f.Type})
		}
	}
	return out
}

// bindGens type-checks and binds the GENERATE list of a FOREACH vertex
// whose parent is v.Parents[0], filling in output names, and returns the
// output schema.
func bindGens(parent *Vertex, gens []GenItem, line int) (*tuple.Schema, error) {
	grouped := parent.Kind == OpGroup
	var keySchema, bagSchema *tuple.Schema
	var bagAlias string
	if grouped {
		keySchema = parent.Schema
		gp := parent.Parents[0]
		bagSchema = gp.Schema
		bagAlias = gp.Alias
	}
	out := &tuple.Schema{}
	for i := range gens {
		g := &gens[i]
		switch {
		case g.Agg != nil:
			return nil, planError(line, "internal: aggregate pre-bound")
		case grouped:
			if call, ok := g.Expr.(*Call); ok && IsAggregateFunc(call.Func) {
				agg, err := bindAggregate(call, bagAlias, bagSchema, line)
				if err != nil {
					return nil, err
				}
				g.Agg = agg
				g.Expr = nil
				if g.Name == "" {
					g.Name = call.Func
				}
			} else {
				rewriteGroupRef(g.Expr, parent)
				if err := g.Expr.Bind(keySchema); err != nil {
					return nil, planError(line, "%v", err)
				}
				if g.Name == "" {
					g.Name = deriveName(g.Expr, i)
				}
			}
		default:
			if call, ok := g.Expr.(*Call); ok && IsAggregateFunc(call.Func) {
				return nil, planError(line, "aggregate %s requires a grouped relation", strings.ToUpper(call.Func))
			}
			if err := g.Expr.Bind(parent.Schema); err != nil {
				return nil, planError(line, "%v", err)
			}
			if g.Name == "" {
				g.Name = deriveName(g.Expr, i)
			}
		}
		out.Fields = append(out.Fields, tuple.Field{Name: g.Name, Type: tuple.TypeAny})
	}
	return out, nil
}

// bindAggregate converts COUNT(B) / SUM(B.col) / AVG(B::col) calls into
// bound Aggregate descriptors against the pre-group (bag) schema.
func bindAggregate(call *Call, bagAlias string, bagSchema *tuple.Schema, line int) (*Aggregate, error) {
	if len(call.Args) != 1 {
		return nil, planError(line, "%s takes exactly one argument", strings.ToUpper(call.Func))
	}
	col, ok := call.Args[0].(*Col)
	if !ok {
		return nil, planError(line, "%s argument must be a relation or column reference", strings.ToUpper(call.Func))
	}
	name := col.Name
	// Bare bag alias: whole-tuple aggregate — only COUNT makes sense.
	if name == bagAlias {
		if call.Func != "count" {
			return nil, planError(line, "%s needs a column, e.g. %s(%s.col)",
				strings.ToUpper(call.Func), strings.ToUpper(call.Func), bagAlias)
		}
		return &Aggregate{Func: "count", ColIdx: -1}, nil
	}
	// Strip "bag." or "bag::" qualification.
	name = strings.TrimPrefix(name, bagAlias+".")
	name = strings.TrimPrefix(name, bagAlias+"::")
	c := &Col{Name: name}
	if err := c.Bind(bagSchema); err != nil {
		return nil, planError(line, "%v", err)
	}
	return &Aggregate{Func: call.Func, ColIdx: c.Index()}, nil
}

// rewriteGroupRef renames bare "group" column references to the group key
// column name when the GROUP key is a single column, so that downstream
// binding resolves against the key schema.
func rewriteGroupRef(e Expr, group *Vertex) {
	switch x := e.(type) {
	case *Col:
		if x.Name == "group" && group.Schema.Len() == 1 {
			x.Name = group.Schema.Fields[0].Name
		}
	case *Binary:
		rewriteGroupRef(x.L, group)
		rewriteGroupRef(x.R, group)
	case *Unary:
		rewriteGroupRef(x.X, group)
	case *Call:
		for _, a := range x.Args {
			rewriteGroupRef(a, group)
		}
	}
}

// deriveName picks an output column name for an unnamed GENERATE item.
func deriveName(e Expr, pos int) string {
	switch x := e.(type) {
	case *Col:
		name := x.Name
		if i := strings.LastIndex(name, "::"); i >= 0 {
			name = name[i+2:]
		}
		return name
	case *Call:
		return x.Func
	default:
		return fmt.Sprintf("f%d", pos)
	}
}
