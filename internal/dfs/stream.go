package dfs

// Streaming access to block-backed files. A Reader exposes a file (or a
// sorted part-file tree) as an indexed sequence of records without
// materializing the whole file: record ranges decode only the blocks
// they overlap, and batch iteration hands back one block's records at a
// time. A Writer is the mirror image for appends. Both sit strictly
// above the block layer — they never see encoded bytes, only record
// lines — so everything the FS guarantees about hooks, counters, and
// spilling holds for streamed access too.

// rseg is one contiguous run of records inside a Reader: either a
// sealed block (decoded on demand) or a snapshot of a file's unsealed
// tail (held directly).
type rseg struct {
	blk   *block
	lines []string
	n     int
}

// Reader is a positioned, random-access view over the records of a file
// or file tree, snapshotted at open time (appends after open are not
// visible, matching the copy semantics of ReadLines). The zero value is
// an empty reader. ReadRange and NumRecords are safe for concurrent
// use; Next is not.
type Reader struct {
	fs     *FS
	segs   []rseg
	starts []int // segs[i] covers records [starts[i], starts[i]+segs[i].n)
	total  int
	cursor int // next segment for Next

	logicalBytes int64 // accumulated by addFile, charged once at open
}

// OpenReader opens a streaming reader over the file at path. The file's
// full logical bytes are charged to the read counter at open, exactly
// as a ReadLines call would. When a ReadHook is set the reader
// materializes through ReadLines instead, so the hook observes the one
// whole-file line stream it expects.
func (fs *FS) OpenReader(path string) (*Reader, error) {
	path = clean(path)
	if fs.ReadHook != nil {
		lines, err := fs.ReadLines(path)
		if err != nil {
			return nil, err
		}
		return readerOver(lines), nil
	}
	fs.mu.RLock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.RUnlock()
		return nil, &ErrNotFound{Path: path}
	}
	r := &Reader{fs: fs}
	r.addFile(f)
	fs.mu.RUnlock()
	fs.bytesRead.Add(r.logicalBytes)
	return r, nil
}

// OpenTreeReader opens a streaming reader over the concatenation, in
// sorted path order, of every file at or under prefix — the streaming
// counterpart of ReadTree, with the same not-found and hook semantics.
func (fs *FS) OpenTreeReader(prefix string) (*Reader, error) {
	prefix = clean(prefix)
	if fs.ReadHook != nil {
		lines, err := fs.ReadTree(prefix)
		if err != nil {
			return nil, err
		}
		return readerOver(lines), nil
	}
	fs.mu.RLock()
	exact, lo, hi := fs.pathRanges(prefix)
	if !exact && lo >= hi {
		fs.mu.RUnlock()
		return nil, &ErrNotFound{Path: prefix}
	}
	r := &Reader{fs: fs}
	if exact {
		r.addFile(fs.files[prefix])
	}
	for _, p := range fs.paths[lo:hi] {
		r.addFile(fs.files[p])
	}
	fs.mu.RUnlock()
	fs.bytesRead.Add(r.logicalBytes)
	return r, nil
}

// readerOver wraps an already-materialized line slice (the hook path).
func readerOver(lines []string) *Reader {
	r := &Reader{}
	if len(lines) > 0 {
		r.segs = []rseg{{lines: lines, n: len(lines)}}
		r.starts = []int{0}
		r.total = len(lines)
	}
	return r
}

// addFile appends a file's segments to the reader; caller holds fs.mu.
func (r *Reader) addFile(f *file) {
	for _, b := range f.blocks {
		r.starts = append(r.starts, r.total)
		r.segs = append(r.segs, rseg{blk: b, n: b.records})
		r.total += b.records
	}
	if len(f.pending) > 0 {
		tail := f.pending[:len(f.pending):len(f.pending)]
		r.starts = append(r.starts, r.total)
		r.segs = append(r.segs, rseg{lines: tail, n: len(tail)})
		r.total += len(tail)
	}
	r.logicalBytes += f.bytes
}

// NumRecords returns the total record count snapshotted at open.
func (r *Reader) NumRecords() int { return r.total }

// ReadRange returns the records in [start, end), decoding only the
// blocks that range overlaps. It is stateless and safe to call
// concurrently from parallel task bodies. Out-of-range bounds are
// clamped.
func (r *Reader) ReadRange(start, end int) []string {
	if start < 0 {
		start = 0
	}
	if end > r.total {
		end = r.total
	}
	if start >= end {
		return nil
	}
	// Find the first overlapping segment by binary search on starts.
	lo, hi := 0, len(r.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.starts[mid] <= start {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	out := make([]string, 0, end-start)
	for i := lo; i < len(r.segs) && r.starts[i] < end; i++ {
		seg := r.segs[i]
		a, b := 0, seg.n
		if s := start - r.starts[i]; s > a {
			a = s
		}
		if e := end - r.starts[i]; e < b {
			b = e
		}
		lines := seg.lines
		if seg.blk != nil {
			lines = r.fs.loadBlock(seg.blk)
		}
		out = append(out, lines[a:b]...)
	}
	return out
}

// Next returns the next batch of records — one segment (typically one
// block) at a time — and false once the reader is exhausted.
func (r *Reader) Next() ([]string, bool) {
	if r.cursor >= len(r.segs) {
		return nil, false
	}
	seg := r.segs[r.cursor]
	r.cursor++
	if seg.blk != nil {
		return r.fs.loadBlock(seg.blk), true
	}
	return seg.lines, true
}

// Writer streams appended record batches into a file. Each Append is one
// storage write: the WriteHook (if set) fires per batch, sealed blocks
// form and spill incrementally as batches accumulate, exactly as direct
// FS.Append calls would.
type Writer struct {
	fs   *FS
	path string
}

// OpenWriter returns a streaming writer appending to path (created on
// first Append if missing).
func (fs *FS) OpenWriter(path string) *Writer {
	return &Writer{fs: fs, path: clean(path)}
}

// Append adds one batch of records to the file.
func (w *Writer) Append(lines ...string) { w.fs.Append(w.path, lines...) }

// Close is a no-op — appends are durable immediately — but gives
// callers a conventional lifecycle hook.
func (w *Writer) Close() error { return nil }
