package tuple

import (
	"fmt"
	"strings"
)

// Tuple is one row of a relation: an ordered list of Values.
type Tuple []Value

// Clone returns a copy of t; Values are immutable so a shallow copy of the
// slice suffices.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders the tuple as a parenthesized, comma-separated list.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.Str())
	}
	b.WriteByte(')')
	return b.String()
}

// Concat returns the concatenation of t followed by u as a new tuple.
func Concat(t, u Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(u))
	c = append(c, t...)
	c = append(c, u...)
	return c
}

// CompareTuples orders tuples field by field; shorter tuples sort first on
// a common-prefix tie.
func CompareTuples(a, b Tuple) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// EqualTuples reports whether a and b have equal length and fields.
func EqualTuples(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	return CompareTuples(a, b) == 0
}

// FieldType is the declared type of a schema column.
type FieldType uint8

// Supported declared column types. TypeAny defers typing to parse time
// (values that look like integers become ints, else strings).
const (
	TypeAny FieldType = iota
	TypeInt
	TypeFloat
	TypeString
)

// String returns the PigLatin-style name of the type.
func (ft FieldType) String() string {
	switch ft {
	case TypeAny:
		return "any"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "chararray"
	default:
		return fmt.Sprintf("type(%d)", uint8(ft))
	}
}

// Field is one named, typed column of a Schema.
type Field struct {
	Name string
	Type FieldType
}

// Schema describes the columns of a relation.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema of untyped (TypeAny) columns from names.
func NewSchema(names ...string) *Schema {
	s := &Schema{Fields: make([]Field, len(names))}
	for i, n := range names {
		s.Fields[i] = Field{Name: n, Type: TypeAny}
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Fields: make([]Field, len(s.Fields))}
	copy(c.Fields, s.Fields)
	return c
}

// String renders the schema as "(a:int, b:chararray)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		if f.Type != TypeAny {
			b.WriteByte(':')
			b.WriteString(f.Type.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Coerce parses raw column text according to the declared field type.
// TypeAny infers: integer-looking text becomes an int, else string.
func (ft FieldType) Coerce(raw string) Value {
	switch ft {
	case TypeInt:
		return Int(Str(raw).Int())
	case TypeFloat:
		return Float(Str(raw).Float())
	case TypeString:
		return Str(raw)
	default:
		if looksInt(raw) {
			return Int(Str(raw).Int())
		}
		return Str(raw)
	}
}

func looksInt(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		if len(s) == 1 {
			return false
		}
		i = 1
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
