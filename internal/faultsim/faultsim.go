// Package faultsim reproduces the paper's §6.3 fault-isolation study: a
// discrete-time simulator of resource allocation in a 250-node Hadoop
// cluster (3 slots per node) running a mix of large/medium/small
// replicated jobs, where a small set of Byzantine nodes produces
// commission faults with a configurable probability. Unlike the paper's
// standalone Java simulator, this one drives the production fault
// analyzer and suspicion table from internal/core, so the isolation
// behaviour measured is that of the real implementation.
package faultsim

import (
	"math/rand"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
)

// SizeClass is an inclusive slot-count range for one job category.
type SizeClass struct {
	Min, Max int
}

// Mix gives the ratio of large : medium : small jobs in the workload.
// The paper's r1 is 6:3:1 and r2 is 2:2:1.
type Mix struct {
	Large, Medium, Small int
}

// R1 and R2 are the paper's two job-size ratios.
var (
	R1 = Mix{Large: 6, Medium: 3, Small: 1}
	R2 = Mix{Large: 2, Medium: 2, Small: 1}
)

// Config parameterizes one simulation.
type Config struct {
	Nodes int // cluster size; paper: 250
	Slots int // slots per node; paper: 3
	F     int // tolerated faults; replicas defaults to 3F+1 (4 or 7)
	// Replicas overrides the replica count when > 0.
	Replicas int
	// FaultyNodes is how many Byzantine nodes exist; defaults to F.
	FaultyNodes int
	// CommissionProb is the per-replica-involvement probability that a
	// faulty node corrupts the replica's output (the x-axis of Fig 11).
	CommissionProb float64
	Mix            Mix
	// Large/Medium/Small override the paper's slot ranges when non-zero.
	Large, Medium, Small SizeClass
	// MaxJobLen is the maximum job length in ticks (length uniform in
	// [1, MaxJobLen]).
	MaxJobLen int
	// MaxTime bounds the simulation.
	MaxTime int
	// StopAtSaturation ends the run once |D| = f.
	StopAtSaturation bool
	// Probes enables §3.3 dummy probe jobs: once the analyzer holds a
	// multi-node suspect set, small jobs deliberately overlay half of it
	// to split the set faster.
	Probes bool
	// Allocation selects the placement policy (rotate = overlap
	// clusters, pack = minimal overlap); the isolation-speed ablation
	// compares them.
	Allocation Allocation
	Seed       int64
}

// withDefaults fills in the paper's setup.
func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 250
	}
	if c.Slots == 0 {
		c.Slots = 3
	}
	if c.F == 0 {
		c.F = 1
	}
	if c.Replicas == 0 {
		c.Replicas = 3*c.F + 1
	}
	if c.FaultyNodes == 0 {
		c.FaultyNodes = c.F
	}
	if c.Mix == (Mix{}) {
		c.Mix = R1
	}
	if c.Large == (SizeClass{}) {
		c.Large = SizeClass{Min: 20, Max: 30}
	}
	if c.Medium == (SizeClass{}) {
		c.Medium = SizeClass{Min: 10, Max: 15}
	}
	if c.Small == (SizeClass{}) {
		c.Small = SizeClass{Min: 3, Max: 5}
	}
	if c.MaxJobLen == 0 {
		c.MaxJobLen = 4
	}
	if c.MaxTime == 0 {
		c.MaxTime = 2000
	}
	return c
}

// Sample is one per-tick observation of the suspicion population
// (Figs 12 and 13).
type Sample struct {
	Time     int
	Low      int
	Med      int
	High     int
	Suspects int // nodes with s > 0
}

// Result summarizes a run.
type Result struct {
	// JobsAtSaturation is the number of completed jobs when |D| first
	// reached f (Fig 11); -1 if it never did.
	JobsAtSaturation int
	// TimeAtSaturation is the tick at which that happened; -1 if never.
	TimeAtSaturation int
	JobsCompleted    int
	FaultsObserved   int
	Samples          []Sample
	// Suspects is the fault analyzer's final suspicion set.
	Suspects []cluster.NodeID
	// TrueFaulty is the set of actually faulty nodes, for scoring.
	TrueFaulty []cluster.NodeID
	// Isolated reports whether every true faulty node is suspected and
	// no honest node remains in the final suspicion set.
	Isolated bool
	// TimeToExactIsolation is the first tick at which the analyzer's
	// suspect set equals the true faulty set; -1 if never.
	TimeToExactIsolation int
	// ProbesLaunched counts §3.3 dummy probe jobs.
	ProbesLaunched int
	// Timeline is the suspicion audit trail of the run: every digest
	// mismatch, intersection step, and suspicion-score change, stamped
	// with the simulator tick it happened at.
	Timeline []analyze.AuditEvent
}

// RenderTimeline formats the run's convergence timeline, one event per
// line (see analyze.RenderTimeline); max <= 0 renders everything.
func (r *Result) RenderTimeline(max int) string {
	return analyze.RenderTimeline(r.Timeline, max)
}

type job struct {
	end      int
	replicas []core.NodeSet
	faulty   []bool
}

// Run executes one seeded simulation.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	free := make([]int, cfg.Nodes)
	for i := range free {
		free[i] = cfg.Slots
	}
	faulty := make(map[int]bool, cfg.FaultyNodes)
	for len(faulty) < cfg.FaultyNodes {
		faulty[rng.Intn(cfg.Nodes)] = true
	}

	now := 0
	trail := analyze.NewAuditTrail(func() int64 { return int64(now) })
	fa := core.NewFaultAnalyzer(cfg.F)
	fa.Audit = trail
	susp := core.NewSuspicionTable(0)
	susp.Audit = trail
	res := &Result{JobsAtSaturation: -1, TimeAtSaturation: -1, TimeToExactIsolation: -1}
	for n := range faulty {
		res.TrueFaulty = append(res.TrueFaulty, nodeID(n))
	}
	sortNodeIDs(res.TrueFaulty)

	var running []*job
	offset := 0
	for ; now < cfg.MaxTime; now++ {
		// Complete due jobs.
		keep := running[:0]
		for _, j := range running {
			if j.end > now {
				keep = append(keep, j)
				continue
			}
			res.JobsCompleted++
			for ri, rep := range j.replicas {
				susp.RecordJob(rep.Sorted())
				for n := range rep {
					free[nodeIdx(n)]++
				}
				if j.faulty[ri] {
					res.FaultsObserved++
					reportFault(fa, susp, rep)
					if fa.Saturated() && res.JobsAtSaturation < 0 {
						res.JobsAtSaturation = res.JobsCompleted
						res.TimeAtSaturation = now
					}
				}
			}
		}
		running = keep
		if res.JobsAtSaturation >= 0 && cfg.StopAtSaturation {
			break
		}

		// Probe suspicious sets with dummy jobs (§3.3).
		if cfg.Probes {
			if targets := pickProbeTargets(fa); targets != nil {
				if j, ok := allocateProbe(cfg, rng, free, &offset, targets, faulty, now); ok {
					running = append(running, j)
					res.ProbesLaunched++
				}
			}
		}
		// Spawn jobs while capacity allows.
		for {
			slots := cfg.jobSlots(rng)
			j, ok := allocate(cfg, rng, free, &offset, slots, faulty, now)
			if !ok {
				break
			}
			running = append(running, j)
		}

		if res.TimeToExactIsolation < 0 && isolated(fa.Suspects(), faulty) {
			res.TimeToExactIsolation = now
		}

		h := susp.Histogram()
		res.Samples = append(res.Samples, Sample{
			Time:     now,
			Low:      h[core.Low],
			Med:      h[core.Med],
			High:     h[core.High],
			Suspects: h[core.Low] + h[core.Med] + h[core.High],
		})
	}

	res.Suspects = fa.Suspects()
	res.Isolated = isolated(res.Suspects, faulty)
	res.Timeline = trail.Events()
	return res
}

// reportFault feeds the analyzer and applies the paper's post-saturation
// suspicion rule: once |D| = f, a faulty set that intersects exactly one
// member of D only incriminates the intersection — the remaining members
// are provably bystanders — so the suspect population stops growing
// (§6.3: "the number of suspicious nodes will not increase after this
// point").
func reportFault(fa *core.FaultAnalyzer, susp *core.SuspicionTable, rep core.NodeSet) {
	wasSaturated := fa.Saturated()
	fa.Audit.Add(analyze.AuditMismatch, rep.Sorted(),
		"job cluster returned a commission fault")
	fa.Report(rep)
	if wasSaturated {
		hits := 0
		var inter core.NodeSet
		for _, x := range fa.Disjoint() {
			if rep.Intersects(x) {
				hits++
				inter = rep.Intersect(x)
			}
		}
		if hits == 1 {
			susp.RecordFault(inter.Sorted())
			return
		}
	}
	susp.RecordFault(rep.Sorted())
}

func (c Config) jobSlots(rng *rand.Rand) int {
	total := c.Mix.Large + c.Mix.Medium + c.Mix.Small
	draw := rng.Intn(total)
	var sc SizeClass
	switch {
	case draw < c.Mix.Large:
		sc = c.Large
	case draw < c.Mix.Large+c.Mix.Medium:
		sc = c.Medium
	default:
		sc = c.Small
	}
	return sc.Min + rng.Intn(sc.Max-sc.Min+1)
}

// allocate tries to place all replicas of a job (disjoint node sets, one
// slot per node per replica, round-robin from a rotating offset to
// overlap job clusters across the fleet). It returns ok=false without
// side effects when capacity is insufficient.
func allocate(cfg Config, rng *rand.Rand, free []int, offset *int, slots int, faulty map[int]bool, now int) (*job, bool) {
	j := &job{
		end:      now + 1 + rng.Intn(cfg.MaxJobLen),
		replicas: make([]core.NodeSet, cfg.Replicas),
		faulty:   make([]bool, cfg.Replicas),
	}
	taken := make(map[int]int) // node -> slots taken by this job overall
	usedByReplica := make([]map[int]bool, cfg.Replicas)
	for ri := range j.replicas {
		j.replicas[ri] = make(core.NodeSet)
		usedByReplica[ri] = make(map[int]bool)
		got := 0
		for probe := 0; probe < cfg.Nodes && got < slots; probe++ {
			n := (*offset + probe) % cfg.Nodes
			if usedByReplica[ri][n] {
				continue
			}
			// Replicas of one job must not share nodes (§5.3).
			shared := false
			for prev := 0; prev < ri; prev++ {
				if usedByReplica[prev][n] {
					shared = true
					break
				}
			}
			if shared {
				continue
			}
			if free[n]-taken[n] <= 0 {
				continue
			}
			taken[n]++
			usedByReplica[ri][n] = true
			j.replicas[ri][nodeID(n)] = true
			got++
		}
		if got < slots {
			return nil, false // insufficient capacity; no slots consumed
		}
	}
	// Commit.
	for n, k := range taken {
		free[n] -= k
	}
	if cfg.Allocation == AllocRotate {
		*offset = (*offset + slots) % cfg.Nodes
	} else {
		*offset = 0
	}
	for ri, rep := range j.replicas {
		for n := range rep {
			if faulty[nodeIdx(n)] && rng.Float64() < cfg.CommissionProb {
				j.faulty[ri] = true
			}
		}
	}
	return j, true
}

func nodeID(i int) cluster.NodeID {
	return cluster.NodeID(nodeName(i))
}

func nodeName(i int) string {
	// Matches cluster.New's naming so core types interoperate.
	const digits = "0123456789"
	return "node-" + string([]byte{digits[i/100%10], digits[i/10%10], digits[i%10]})
}

func nodeIdx(id cluster.NodeID) int {
	s := string(id)
	n := 0
	for i := len("node-"); i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func sortNodeIDs(ids []cluster.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func isolated(suspects []cluster.NodeID, faulty map[int]bool) bool {
	if len(suspects) != len(faulty) {
		return false
	}
	for _, s := range suspects {
		if !faulty[nodeIdx(s)] {
			return false
		}
	}
	return true
}

// JobsToIsolate averages JobsAtSaturation over trials (Fig 11's y-axis).
// Runs that never saturate within MaxTime count as MaxTime-equivalent
// via their completed-job count.
func JobsToIsolate(cfg Config, trials int) float64 {
	total := 0
	for i := 0; i < trials; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		c.StopAtSaturation = true
		r := Run(c)
		if r.JobsAtSaturation >= 0 {
			total += r.JobsAtSaturation
		} else {
			total += r.JobsCompleted
		}
	}
	return float64(total) / float64(trials)
}
