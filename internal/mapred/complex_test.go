package mapred

import (
	"fmt"
	"reflect"
	"testing"
)

// Complex plan shapes exercised end to end with expected results.

func TestRunJoinOfAggregates(t *testing.T) {
	// Join two separately aggregated relations: three jobs (two
	// aggregations materialize, the join consumes both).
	tr := run(t, `
sales = LOAD 'sales' AS (store, amount:int);
visits = LOAD 'visits' AS (store, n:int);
gs = GROUP sales BY store;
totals = FOREACH gs GENERATE group AS store, SUM(sales.amount) AS total;
gv = GROUP visits BY store;
traffic = FOREACH gv GENERATE group AS store, SUM(visits.n) AS hits;
j = JOIN totals BY store, traffic BY store;
rates = FOREACH j GENERATE totals::store AS store, total / hits AS per_visit;
STORE rates INTO 'out';
`, map[string][]string{
		"sales":  {"a\t100", "a\t50", "b\t90"},
		"visits": {"a\t3", "b\t2", "c\t9"},
	}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "out")
	want := []string{"a\t50", "b\t45"} // c has no sales: inner join drops it
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rates = %v, want %v", got, want)
	}
	if len(tr.jobs) != 3 {
		t.Errorf("jobs = %d, want 3", len(tr.jobs))
	}
}

func TestRunFilterAfterJoinReduceSide(t *testing.T) {
	tr := run(t, `
a = LOAD 'l' AS (k, x:int);
b = LOAD 'r' AS (k, y:int);
j = JOIN a BY k, b BY k;
big = FILTER j BY x + y > 10;
p = FOREACH big GENERATE a::k AS k, x + y AS s;
STORE p INTO 'out';
`, map[string][]string{
		"l": {"p\t4", "q\t9"},
		"r": {"p\t5", "q\t7"},
	}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	want := []string{"q\t16"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filtered join = %v, want %v", got, want)
	}
	// Filter and projection run reduce-side of the join job.
	j := tr.jobs[0]
	kinds := []PhysKind{}
	for _, op := range j.Reduce.PostOps {
		kinds = append(kinds, op.Kind)
	}
	if !reflect.DeepEqual(kinds, []PhysKind{PhysFilter, PhysProject}) {
		t.Errorf("post ops = %v", kinds)
	}
}

func TestRunNestedUnions(t *testing.T) {
	tr := run(t, `
a = LOAD 'a' AS (k);
b = LOAD 'b' AS (k);
c = LOAD 'c' AS (k);
u1 = UNION a, b;
u2 = UNION u1, c;
d = DISTINCT u2;
STORE d INTO 'out';
`, map[string][]string{
		"a": {"x", "y"},
		"b": {"y", "z"},
		"c": {"z", "w"},
	}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "out")
	want := []string{"w", "x", "y", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nested union distinct = %v, want %v", got, want)
	}
	if len(tr.jobs[0].Inputs) != 3 {
		t.Errorf("inputs = %d, want 3 flattened union branches", len(tr.jobs[0].Inputs))
	}
}

func TestRunSelfJoinFanOut(t *testing.T) {
	// A key joining m x n rows must emit the full cross product.
	tr := run(t, `
a = LOAD 'e' AS (u, v);
b = LOAD 'e' AS (u, v);
j = JOIN a BY u, b BY u;
p = FOREACH j GENERATE a::v, b::v;
STORE p INTO 'out';
`, map[string][]string{"e": {"k\t1", "k\t2"}}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	want := []string{"1\t1", "1\t2", "2\t1", "2\t2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cross product = %v, want %v", got, want)
	}
}

func TestRunDeepChainManyJobs(t *testing.T) {
	// Four chained shuffles: group -> distinct -> group -> order.
	tr := run(t, `
a = LOAD 'x' AS (k, v:int);
g1 = GROUP a BY k;
s = FOREACH g1 GENERATE group AS k, SUM(a.v) AS t;
d = DISTINCT s;
g2 = GROUP d BY t;
c = FOREACH g2 GENERATE group AS t, COUNT(d) AS n;
o = ORDER c BY t DESC;
STORE o INTO 'out';
`, map[string][]string{
		"x": {"a\t1", "a\t2", "b\t3", "c\t3"},
	}, CompileOptions{NumReduces: 2}, nil)
	lines, err := tr.fs.ReadTree("out")
	if err != nil {
		t.Fatal(err)
	}
	// sums: a=3, b=3, c=3 -> distinct rows (a,3),(b,3),(c,3) -> group by
	// t: (3,3) -> ordered desc.
	want := []string{"3\t3"}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("deep chain = %v, want %v", lines, want)
	}
	if len(tr.jobs) != 4 {
		t.Errorf("jobs = %d, want 4", len(tr.jobs))
	}
}

func TestRunMultiKeyJoinEndToEnd(t *testing.T) {
	tr := run(t, `
a = LOAD 'l' AS (k1, k2, x);
b = LOAD 'r' AS (k1, k2, y);
j = JOIN a BY (k1, k2), b BY (k1, k2);
p = FOREACH j GENERATE a::x, b::y;
STORE p INTO 'out';
`, map[string][]string{
		"l": {"1\tA\tfoo", "1\tB\tbar"},
		"r": {"1\tA\tbaz", "2\tA\tqux"},
	}, CompileOptions{NumReduces: 2}, nil)
	got := tr.output(t, "out")
	want := []string{"foo\tbaz"} // only (1,A) matches on both keys
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-key join = %v, want %v", got, want)
	}
}

func TestRunProjectionExpressions(t *testing.T) {
	tr := run(t, `
a = LOAD 'x' AS (name, score:int);
p = FOREACH a GENERATE UPPER(name) AS n, score * 2 + 1 AS s, CONCAT(name, '!') AS bang;
STORE p INTO 'out';
`, map[string][]string{"x": {"ann\t10", "bob\t20"}}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	want := []string{"ANN\t21\tann!", "BOB\t41\tbob!"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("projection = %v, want %v", got, want)
	}
}

func TestRunManySplitsDeterministicReduceOrder(t *testing.T) {
	// 5 map splits feeding 3 reduce partitions: reduce input order is
	// the map ordinal order, so repeated runs agree byte for byte.
	var lines []string
	for i := 0; i < 50000; i++ {
		lines = append(lines, fmt.Sprintf("%d\t%d", i%997, i))
	}
	in := map[string][]string{"in/edges": lines}
	opts := CompileOptions{NumReduces: 3}
	a := run(t, followerSrc, in, opts, nil)
	b := run(t, followerSrc, in, opts, nil)
	la, _ := a.fs.ReadTree("out/counts")
	lb, _ := b.fs.ReadTree("out/counts")
	if !reflect.DeepEqual(la, lb) {
		t.Fatal("multi-split run not deterministic")
	}
	if a.eng.Metrics.MapTasks < 5 {
		t.Errorf("map tasks = %d, want >= 5", a.eng.Metrics.MapTasks)
	}
}

func TestRunEmptyJoinSide(t *testing.T) {
	tr := run(t, `
a = LOAD 'l' AS (k, x);
b = LOAD 'r' AS (k, y);
j = JOIN a BY k, b BY k;
STORE j INTO 'out';
`, map[string][]string{"l": {"p\t1"}, "r": {}}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	if len(got) != 0 {
		t.Errorf("join with empty side = %v, want empty", got)
	}
	if !tr.eng.Idle() {
		t.Error("engine should complete")
	}
}

func TestRunAggregateOverQualifiedGroupKey(t *testing.T) {
	// Group key re-referenced with arithmetic over "group".
	tr := run(t, `
a = LOAD 'x' AS (k:int, v:int);
g = GROUP a BY k;
c = FOREACH g GENERATE group * 10 AS decade, COUNT(a) AS n;
STORE c INTO 'out';
`, map[string][]string{"x": {"1\t5", "1\t6", "2\t7"}}, CompileOptions{}, nil)
	got := tr.output(t, "out")
	want := []string{"10\t2", "20\t1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("group expr = %v, want %v", got, want)
	}
}
