package chaos

import (
	"fmt"
	"strings"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
)

// TestChaosCampaign is the property test of the fault-injection
// subsystem: 200 seeded schedules (40 under -short) run end-to-end, each
// checked against the global invariants — every sub-graph Verified or
// explicitly failed, verified outputs byte-identical to a clean run,
// slot accounting restored to cluster capacity, every fault attribution
// traced to an injected fault, and the BFT group agreeing under
// quorum-bounded message perturbations. The campaign runs twice and the
// reports must be byte-identical: the whole subsystem is a pure function
// of the seeds.
func TestChaosCampaign(t *testing.T) {
	cfg := DefaultCampaign()
	if testing.Short() {
		cfg.Schedules = 40
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}

	// The campaign must actually exercise the recovery machinery, not
	// coast through no-op schedules.
	var retries, verified, mangled, netRuns int
	for _, sr := range rep.Results {
		retries += sr.Recoveries["retry"] + sr.Recoveries["restart"]
		if sr.Verified {
			verified++
		}
		mangled += sr.Mangled
		if sr.NetRan {
			netRuns++
		}
	}
	if retries == 0 {
		t.Error("no schedule triggered a retry or restart")
	}
	if verified == 0 {
		t.Error("no schedule recovered to verified")
	}
	if mangled == 0 {
		t.Error("no schedule mangled stored data")
	}
	if netRuns == 0 {
		t.Error("no schedule perturbed the BFT network")
	}

	again, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Render(), again.Render()
	if a != b {
		line := "?"
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				line = la[i]
				break
			}
		}
		t.Fatalf("campaign is not deterministic; first divergent line:\n%s", line)
	}
}

// TestChaosCampaignCheckpoint is the checkpoint leg of the campaign
// matrix: the same seeded schedules run with checkpoint-granular
// recovery and quantile speculation enabled, and every invariant —
// including I3 (verified outputs byte-identical to the clean run, which
// is invariant I7's substance) and the new I7 sanity checks — must hold
// on all of them.
func TestChaosCampaignCheckpoint(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Core.Checkpoint = true
	cfg.Speculation = true
	cfg.SpecQuantile = 0.95
	if testing.Short() {
		cfg.Schedules = 40
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	var saves int64
	var recoveries, verified int
	for _, sr := range rep.Results {
		saves += sr.CkptSaves
		recoveries += sr.Recoveries["retry"] + sr.Recoveries["restart"]
		if sr.Verified {
			verified++
		}
	}
	if saves == 0 {
		t.Error("no schedule persisted a checkpoint")
	}
	if recoveries == 0 {
		t.Error("no schedule triggered a retry or restart")
	}
	if verified == 0 {
		t.Error("no schedule recovered to verified")
	}

	again, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := rep.Render(), again.Render(); a != b {
		line := "?"
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				line = la[i]
				break
			}
		}
		t.Fatalf("checkpoint campaign is not deterministic; first divergent line:\n%s", line)
	}
}

// TestCheckpointHitRecovery pins the checkpoint-consumption path with a
// deterministic schedule the random campaign mix cannot reliably reach:
// a per-task hang thorough enough to force a verifier timeout usually
// hangs the interior job itself, so no checkpoint exists when the retry
// launches. A timed crash window separates the two cleanly — five of six
// nodes fail-stop right after the second sub-graph's interior job
// reached f+1 agreement (persisting its checkpoint) but before the
// boundary job completes. One surviving node can serve at most one
// replica per sub-graph (replica binding), so f+1 completion is
// unreachable, the verifier times out, and the retry at r+1 must skip
// the checkpointed interior job and re-execute only the DAG suffix.
// Outputs must still match the clean baseline byte-for-byte (I7).
func TestCheckpointHitRecovery(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Core.Checkpoint = true
	cfg.Speculation = true
	cfg.SpecQuantile = 0.95
	baseline, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := &Schedule{Events: make([]Event, 5)}
	for i := range sched.Events {
		sched.Events[i] = Event{
			Kind:   CrashRejoin,
			Node:   cluster.NodeID(fmt.Sprintf("node-%03d", i)),
			AtUs:   6_500_000,
			DownUs: 60_000_000,
			Salt:   uint64(31 + i),
		}
	}
	sr := RunSchedule(cfg, sched, baseline)
	for _, v := range sr.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if !sr.Verified {
		t.Fatalf("run did not verify: %s", sr.Err)
	}
	if sr.Recoveries["retry"] == 0 {
		t.Error("crash window did not force a verifier-timeout retry")
	}
	if sr.CkptSaves == 0 {
		t.Error("no checkpoint persisted before the crash window")
	}
	if sr.CkptHits == 0 {
		t.Error("re-launch did not consume the pre-crash checkpoint")
	}

	// Same schedule with checkpointing off: the retry re-executes the
	// whole sub-graph and may only be slower, never faster.
	off := cfg
	off.Core.Checkpoint = false
	srOff := RunSchedule(off, sched, baseline)
	if !srOff.Verified {
		t.Fatalf("checkpoint-off run did not verify: %s", srOff.Err)
	}
	if srOff.CkptSaves != 0 || srOff.CkptHits != 0 {
		t.Errorf("checkpointing off but saves=%d hits=%d", srOff.CkptSaves, srOff.CkptHits)
	}
	if sr.EndUs > srOff.EndUs {
		t.Errorf("checkpointed recovery slower than full re-execution: %d > %d us", sr.EndUs, srOff.EndUs)
	}
}

// TestCampaignByteIdenticalAcrossStorage replays the same seeded
// schedule batch on the default all-resident data plane and on a
// deliberately hostile block configuration — tiny compressed blocks
// under a resident budget that forces spilling — and requires the two
// campaign reports to be byte-for-byte identical. Faults are injected
// at the line-stream level and digests are over canonical record bytes,
// so every mangle, recovery action and invariant outcome must land the
// same way regardless of how bytes rest on disk.
func TestCampaignByteIdenticalAcrossStorage(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Schedules = 12

	base, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spillCfg := cfg
	spillCfg.Core.Storage = dfs.Options{
		BlockSize: 512,
		MemBudget: 1 << 10,
		SpillDir:  t.TempDir(),
		Compress:  true,
	}
	spill, err := RunCampaign(spillCfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := base.Render(), spill.Render()
	if a != b {
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("reports diverge at line %d:\n  resident %q\n  spill    %q", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("reports diverge in length: %d vs %d bytes", len(a), len(b))
	}
}
