package analyze

import (
	"testing"
)

// The airline-style plan: shared aggregates feeding orders and a union.
const airlineStyle = `
fl = LOAD 'flights' AS (org, dst);
go1 = GROUP fl BY org;
outb = FOREACH go1 GENERATE group AS a, COUNT(fl) AS n;
o1 = ORDER outb BY n DESC;
t1 = LIMIT o1 2;
STORE t1 INTO 'out/out';
gd = GROUP fl BY dst;
inb = FOREACH gd GENERATE group AS a, COUNT(fl) AS n;
o2 = ORDER inb BY n DESC;
t2 = LIMIT o2 2;
STORE t2 INTO 'out/in';
both = UNION outb, inb;
gb = GROUP both BY a;
all = FOREACH gb GENERATE group AS a, SUM(both.n) AS n;
o3 = ORDER all BY n DESC;
t3 = LIMIT o3 2;
STORE t3 INTO 'out/all';
`

func TestStrongCandidatesAirline(t *testing.T) {
	p := parse(t, airlineStyle)
	a := Analyze(p, nil)
	cands := a.Candidates(Strong)
	got := map[string]bool{}
	for _, id := range cands {
		got[p.ByID(id).Alias] = true
	}
	// Union is map-side of gb's job with no shuffle ancestor on the
	// direct path? both's parents are reduce-side outputs, so both IS
	// downstream of shuffles and feeds a shuffle: it must be a candidate
	// only if it materializes. UNION never materializes alone (it
	// flattens into its consumer's inputs), so it must NOT be present.
	if got["both"] {
		t.Error("UNION should not be a strong candidate (it never materializes)")
	}
	for _, alias := range []string{"outb", "inb", "all", "t1", "t2", "t3"} {
		if !got[alias] {
			t.Errorf("expected %q among strong candidates, got %v", alias, got)
		}
	}
	// Loads and plain orders mid-job are not materialization points.
	if got["fl"] || got["o1"] || got["o2"] || got["o3"] {
		t.Errorf("unexpected candidates present: %v", got)
	}
}

func TestMarkWithFinalSeedsPrefersIntermediate(t *testing.T) {
	p := parse(t, airlineStyle)
	a := Analyze(p, nil)
	var finals []int
	for _, st := range p.Stores() {
		finals = append(finals, st.Parents[0].ID)
	}
	marks := a.Mark(2, Strong, finals...)
	if len(marks) != 2 {
		t.Fatalf("marks = %v", marks)
	}
	for _, id := range marks {
		alias := p.ByID(id).Alias
		if alias == "t1" || alias == "t2" || alias == "t3" {
			t.Errorf("marker picked already-verified final %q", alias)
		}
	}
}

func TestMarkSeedsNeverReselected(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	fe := p.ByAlias("counts").ID
	marks := a.Mark(10, Weak, fe)
	for _, m := range marks {
		if m == fe {
			t.Error("seeded vertex must not be re-marked")
		}
	}
	// All other weak candidates still selectable.
	if len(marks) != 3 {
		t.Errorf("marks = %v, want the 3 remaining candidates", marks)
	}
}

func TestUnionPlanLevels(t *testing.T) {
	p := parse(t, airlineStyle)
	levels := Levels(p)
	// both sits one past the deeper of outb/inb.
	both := p.ByAlias("both")
	outb := p.ByAlias("outb")
	if levels[both.ID] != levels[outb.ID]+1 {
		t.Errorf("level(both) = %d, level(outb) = %d", levels[both.ID], levels[outb.ID])
	}
}

func TestSampleVertexIsWeakCandidate(t *testing.T) {
	p := parse(t, `
a = LOAD 'x' AS (k, v:int);
s = SAMPLE a 0.5;
g = GROUP s BY k;
c = FOREACH g GENERATE group, COUNT(s);
STORE c INTO 'o';
`)
	a := Analyze(p, nil)
	got := map[string]bool{}
	for _, id := range a.Candidates(Weak) {
		got[p.ByID(id).Alias] = true
	}
	if !got["s"] {
		t.Errorf("SAMPLE vertex missing from weak candidates: %v", got)
	}
}
