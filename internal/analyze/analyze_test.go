package analyze

import (
	"testing"

	"clusterbft/internal/pig"
)

const chainScript = `
edges = LOAD 'in' AS (user:int, follower:int);
nonempty = FILTER edges BY follower != 0;
grouped = GROUP nonempty BY user;
counts = FOREACH grouped GENERATE group, COUNT(nonempty);
STORE counts INTO 'out';
`

// Roughly Fig 4: three loads of different sizes feeding filters and joins.
const multiLoadScript = `
l1 = LOAD 'a' AS (k, v);
l2 = LOAD 'b' AS (k, v);
l3 = LOAD 'c' AS (k, v);
f3 = FILTER l3 BY v != 0;
j1 = JOIN l1 BY k, l2 BY k;
p1 = FOREACH j1 GENERATE l1::k AS k, l1::v AS v;
j2 = JOIN p1 BY k, f3 BY k;
STORE j2 INTO 'out';
`

func parse(t *testing.T, src string) *pig.Plan {
	t.Helper()
	p, err := pig.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLevelsChain(t *testing.T) {
	p := parse(t, chainScript)
	levels := Levels(p)
	want := []int{1, 2, 3, 4, 5} // load, filter, group, foreach, store
	for i, w := range want {
		if levels[p.Vertices[i].ID] != w {
			t.Errorf("level(%v) = %d, want %d", p.Vertices[i], levels[p.Vertices[i].ID], w)
		}
	}
}

func TestLevelsJoinTakesMax(t *testing.T) {
	p := parse(t, multiLoadScript)
	levels := Levels(p)
	// j2's parents: p1 (level 3) and f3 (level 2) -> level 4.
	if got := levels[p.ByAlias("j2").ID]; got != 4 {
		t.Errorf("level(j2) = %d, want 4", got)
	}
}

func TestInputRatiosLoads(t *testing.T) {
	p := parse(t, multiLoadScript)
	sizes := map[string]int64{"a": 10, "b": 20, "c": 30}
	a := Analyze(p, func(path string) int64 { return sizes[path] })
	wantLoads := map[string]float64{"l1": 10.0 / 60, "l2": 20.0 / 60, "l3": 30.0 / 60}
	for alias, want := range wantLoads {
		got := a.Ratios[p.ByAlias(alias).ID]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ir(%s) = %v, want %v", alias, got, want)
		}
	}
}

func TestInputRatiosChainIsOne(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	// In a single chain every vertex carries the full input.
	for _, v := range p.Vertices {
		got := a.Ratios[v.ID]
		if diff := got - 1.0; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ir(%v) = %v, want 1.0", v, got)
		}
	}
}

func TestInputRatioNilSizeFunc(t *testing.T) {
	p := parse(t, multiLoadScript)
	a := Analyze(p, nil)
	// Equal-sized loads: 1/3 each.
	for _, alias := range []string{"l1", "l2", "l3"} {
		got := a.Ratios[p.ByAlias(alias).ID]
		if diff := got - 1.0/3; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ir(%s) = %v, want 1/3", alias, got)
		}
	}
}

func TestInputRatioJoinAggregatesParents(t *testing.T) {
	p := parse(t, multiLoadScript)
	sizes := map[string]int64{"a": 10, "b": 20, "c": 30}
	a := Analyze(p, func(path string) int64 { return sizes[path] })
	// j1 at level 2: parents l1+l2 = 0.5; level-1 sum = 1.0 -> 0.5.
	if got := a.Ratios[p.ByAlias("j1").ID]; got < 0.49 || got > 0.51 {
		t.Errorf("ir(j1) = %v, want 0.5", got)
	}
	// f3 at level 2: parent l3 = 0.5 of level-1 mass -> 0.5.
	if got := a.Ratios[p.ByAlias("f3").ID]; got < 0.49 || got > 0.51 {
		t.Errorf("ir(f3) = %v, want 0.5", got)
	}
}

func TestCandidatesWeak(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	got := a.Candidates(Weak)
	// Everything except the store (4 of 5 vertices).
	if len(got) != 4 {
		t.Fatalf("weak candidates = %v", got)
	}
	for _, id := range got {
		if p.ByID(id).Kind == pig.OpStore {
			t.Error("store must not be a candidate")
		}
	}
}

func TestCandidatesStrong(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	got := a.Candidates(Strong)
	// Only the FOREACH (reduce side, parent of STORE) is a
	// materialization point; filter and load are map-side of job 1, and
	// the GROUP vertex's output stays inside the job.
	if len(got) != 1 || p.ByID(got[0]).Kind != pig.OpForEach {
		t.Errorf("strong candidates = %v (plan:\n%s)", got, p)
	}
}

func TestCandidatesStrongMultiJob(t *testing.T) {
	// Two chained groups -> the first FOREACH feeds a shuffle and is a
	// materialization point; so is the second.
	p := parse(t, `
w = LOAD 'weather' AS (station, temp:int);
g1 = GROUP w BY station;
avgs = FOREACH g1 GENERATE group AS station, AVG(w.temp) AS avgt;
g2 = GROUP avgs BY avgt;
counts = FOREACH g2 GENERATE group AS avgt, COUNT(avgs) AS n;
STORE counts INTO 'out';
`)
	a := Analyze(p, nil)
	got := a.Candidates(Strong)
	if len(got) != 2 {
		t.Fatalf("strong candidates = %v", got)
	}
	if p.ByID(got[0]).Alias != "avgs" || p.ByID(got[1]).Alias != "counts" {
		t.Errorf("candidates = %v, %v", p.ByID(got[0]), p.ByID(got[1]))
	}
}

func TestMarkSinglePointPrefersMiddle(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	marks := a.Mark(1, Weak)
	if len(marks) != 1 {
		t.Fatalf("marks = %v", marks)
	}
	// With uniform ratios the score is dominated by distance from the
	// load; the deepest eligible vertex (the FOREACH) wins.
	if p.ByID(marks[0]).Kind != pig.OpForEach {
		t.Errorf("marked %v, want the FOREACH", p.ByID(marks[0]))
	}
}

func TestMarkSpreadsPoints(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	marks := a.Mark(2, Weak)
	if len(marks) != 2 {
		t.Fatalf("marks = %v", marks)
	}
	// The second point should not be adjacent-duplicate of the first:
	// marking the FOREACH makes everything near it score low, so the
	// second pick lands upstream (filter or group).
	if marks[0] == marks[1] {
		t.Error("duplicate marks")
	}
}

func TestMarkRespectsModel(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	marks := a.Mark(3, Strong)
	// Strong model has only one candidate in this plan.
	if len(marks) != 1 {
		t.Errorf("strong marks = %v, want exactly 1", marks)
	}
}

func TestMarkZero(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	if got := a.Mark(0, Weak); len(got) != 0 {
		t.Errorf("Mark(0) = %v", got)
	}
}

func TestMarkMoreThanCandidates(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	got := a.Mark(100, Weak)
	if len(got) != 4 {
		t.Errorf("Mark(100) = %v, want all 4 weak candidates", got)
	}
}

func TestMarkDeterministic(t *testing.T) {
	p := parse(t, multiLoadScript)
	a := Analyze(p, nil)
	first := a.Mark(3, Weak)
	for i := 0; i < 5; i++ {
		again := a.Mark(3, Weak)
		if len(again) != len(first) {
			t.Fatalf("nondeterministic mark count")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic marks: %v vs %v", first, again)
			}
		}
	}
}

func TestDistancesSeededAtLoads(t *testing.T) {
	p := parse(t, chainScript)
	a := Analyze(p, nil)
	var seeds []int
	for _, v := range p.Loads() {
		seeds = append(seeds, v.ID)
	}
	dist := a.distances(seeds)
	want := []int{0, 1, 2, 3, 4}
	for i, w := range want {
		if dist[p.Vertices[i].ID] != w {
			t.Errorf("dist(%v) = %d, want %d", p.Vertices[i], dist[p.Vertices[i].ID], w)
		}
	}
}

func TestModelString(t *testing.T) {
	if Weak.String() != "weak" || Strong.String() != "strong" || Model(0).String() != "unknown" {
		t.Error("Model.String incorrect")
	}
}
