package core

import (
	"strings"
	"testing"

	"clusterbft/internal/cluster"
)

func TestExplainHonestRun(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	if _, err := h.ctrl.Run(weatherScript); err != nil {
		t.Fatal(err)
	}
	out := h.ctrl.Explain()
	for _, want := range []string{"sub-graphs:", "verified at", "[final]", "replica 0", "job "} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainShowsDeviants(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	if err := h.cl.SetAdversary("node-003", cluster.FaultCommission, 1.0, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ctrl.Run(weatherScript); err != nil {
		t.Fatal(err)
	}
	if out := h.ctrl.Explain(); !strings.Contains(out, "DEVIANT") {
		t.Errorf("explain should flag the deviant replica:\n%s", out)
	}
}

func TestExplainBeforeRun(t *testing.T) {
	h := newHarness(t, 4, 2, DefaultConfig())
	if out := h.ctrl.Explain(); !strings.Contains(out, "no run") {
		t.Errorf("explain before run = %q", out)
	}
}

func TestExplainShowsOptimisticSources(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	if _, err := h.ctrl.Run(weatherScript); err != nil {
		t.Fatal(err)
	}
	out := h.ctrl.Explain()
	if !strings.Contains(out, "reads from: c0 (replica") {
		t.Errorf("explain missing source info:\n%s", out)
	}
}
