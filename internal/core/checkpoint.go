package core

import (
	"fmt"

	"clusterbft/internal/digest"
	"clusterbft/internal/obs"
)

// Checkpoint-granular recovery (ROADMAP item 5, DESIGN.md §12).
//
// A full-r sub-graph's interior jobs — jobs with an in-cluster
// dependent — run with Spec.Ckpt set: the engine retains their output
// lines exactly as produced and emits a CkptPoint digest over the
// concatenated stream at job completion. The controller watches those
// digests arrive per replica; the moment f+1 replicas agree on one
// job's CkptPoint sum, the output is *verified at job granularity* even
// though the sub-graph as a whole is still running, and the controller
// persists one agreeing replica's retained lines under a durable
// ckpt/ path.
//
// When the sub-graph later needs another attempt (verifier timeout,
// no-agreement retry, deviant-source restart, escalation rerun at full
// r), tryLaunch consults the registry: every checkpointed job whose
// upstream source signature still matches is skipped, its consumers
// read the checkpoint file instead, and only the DAG suffix downstream
// of the last verified point re-executes — at the attempt's (higher)
// replication degree. Boundary jobs (no in-cluster dependent) are never
// checkpointed, so the suffix is never empty and the verification
// digests the sub-graph verdict needs always flow.
//
// Soundness:
//
//   - Bytes are persisted from the engine's in-memory as-produced lines
//     (the same stream the CkptPoint digest covers), never read back
//     from the DFS — a storage write-mangle can therefore never poison
//     a checkpoint. The ckpt/ namespace itself lives outside every
//     replica prefix, on the trusted tier's store like script inputs.
//   - Agreement uses the same f+1-with-ambiguity-rejection rule as the
//     online KeyDeviants pass: a key where two sums both reach f+1
//     proves the fault budget was exceeded and is never persisted.
//   - Each entry records the upstream source signature (sid + replica
//     per upstream cluster) at save time; an attempt whose sources
//     changed — a restart after a deviant optimistic source, an
//     upstream retry — fails the signature check and re-runs from
//     scratch. The restart cascade additionally drops the affected
//     clusters' entries outright.

// ckptSrc is one upstream cluster's identity at checkpoint-save time.
type ckptSrc struct {
	sid     string
	replica int
}

// ckptEntry is one persisted checkpoint: the f+1-agreed output digest
// of a template job, the durable DFS path holding the agreed bytes, and
// the source signature the producing attempt consumed.
type ckptEntry struct {
	sum     digest.Sum
	path    string
	records int64
	bytes   int64
	srcs    map[int]ckptSrc
}

// CheckpointStats counts checkpoint activity across a controller's
// lifetime; the chaos campaign and the recovery experiment read it.
type CheckpointStats struct {
	// Saves counts checkpoints persisted (one per (cluster, job) per
	// source signature).
	Saves int64
	// Hits counts jobs skipped at launch because a valid checkpoint
	// covered them.
	Hits int64
	// BytesWritten is the line bytes persisted into ckpt/ paths.
	BytesWritten int64
	// BytesReclaimed is the output bytes NOT recomputed thanks to
	// skips, summed over every replica of the skipping attempt.
	BytesReclaimed int64
}

// CheckpointStats returns the controller's checkpoint counters.
func (c *Controller) CheckpointStats() CheckpointStats { return c.ckptStats }

// ckptEligible reports whether tmpl runs with checkpoint capture in cs:
// checkpointing on, full replication (quiz/deferred run r=1 and can
// never reach f+1 agreement), an in-cluster dependent to serve, and not
// a STORE materialization — Result.Outputs points consumers at the
// winner replica's prefix, so Final outputs must exist there on every
// attempt.
func (c *Controller) ckptEligible(cs *clusterState, tmplID string) bool {
	if !c.Cfg.Checkpoint || cs.policy != PolicyFull || !cs.hasInDep[tmplID] {
		return false
	}
	t := c.templates[tmplID]
	return t != nil && !t.Final
}

// maybeCheckpoint runs on every CkptPoint digest arrival: once f+1
// replicas agree on a job's output digest, persist one agreeing
// replica's retained lines. Idempotent per (cluster, job) — later
// arrivals of the same agreed digest find the entry and return.
func (c *Controller) maybeCheckpoint(cs *clusterState, key digest.Key) {
	tmplID := key.Task
	if !c.ckptEligible(cs, tmplID) {
		return
	}
	if c.ckpts[cs.id][tmplID] != nil {
		return
	}
	sum, agreeing, ok := c.mat(cs.sid).KeyAgreement(cs.sid, key)
	if !ok {
		return
	}
	li := -1
	for i, t := range cs.launchJobs {
		if t.ID == tmplID {
			li = i
			break
		}
	}
	if li < 0 {
		return
	}
	for _, rep := range agreeing {
		if rep < 0 || rep >= len(cs.replicas) {
			continue
		}
		js := c.Eng.Job(cs.replicas[rep].jobIDs[li])
		if js == nil || !js.Done {
			continue
		}
		lines := js.ProducedLines()
		path := fmt.Sprintf("ckpt/run%d/c%d/%s", c.runSeq, cs.id, tmplID)
		_ = c.Eng.FS.Delete(path)
		c.Eng.FS.Append(path, lines...)
		e := &ckptEntry{
			sum:     sum,
			path:    path,
			records: int64(len(lines)),
			bytes:   ckptLinesBytes(lines),
			srcs:    make(map[int]ckptSrc, len(cs.sources)),
		}
		for u, s := range cs.sources {
			e.srcs[u] = ckptSrc{sid: s.sid, replica: s.replica}
		}
		if c.ckpts[cs.id] == nil {
			c.ckpts[cs.id] = make(map[string]*ckptEntry)
		}
		c.ckpts[cs.id][tmplID] = e
		c.ckptStats.Saves++
		c.ckptStats.BytesWritten += e.bytes
		c.obsCkptSaves.Inc()
		c.obsCkptBytesWritten.Add(e.bytes)
		c.Eng.Trace.Instant("ckpt", "verifier", "save "+cs.sid+"/"+tmplID, c.Eng.Now(),
			obs.AI("records", e.records), obs.AI("replica", int64(rep)))
		return
	}
}

// ckptValid returns the cluster's entry for tmplID when its source
// signature matches the attempt's current sources exactly; nil
// otherwise. A changed source (restart after a deviant optimistic
// source, an upstream re-verification) invalidates the checkpoint — its
// bytes were derived from data this attempt no longer consumes.
func (c *Controller) ckptValid(cs *clusterState, tmplID string) *ckptEntry {
	e := c.ckpts[cs.id][tmplID]
	if e == nil || len(e.srcs) != len(cs.sources) {
		return nil
	}
	for u, s := range cs.sources {
		es, ok := e.srcs[u]
		if !ok || es.sid != s.sid || es.replica != s.replica {
			return nil
		}
	}
	return e
}

// coveredTemplates computes the attempt's launch plan from the
// checkpoint registry: skip maps checkpoint-covered template IDs to
// their entries, run holds the template IDs to submit. Demand
// propagates in reverse topological order — a boundary job (no
// in-cluster dependent) is always demanded; a demanded job with a valid
// checkpoint is skipped and shields its prefix; a demanded job without
// one runs and demands its in-cluster dependencies. Jobs nobody demands
// (their every consumer sits behind a checkpoint) neither run nor skip.
// Returns (nil, nil) when checkpointing is off or nothing is covered —
// the caller then launches the full template list, byte-identically to
// the pre-checkpoint controller.
func (c *Controller) coveredTemplates(cs *clusterState) (skip map[string]*ckptEntry, run map[string]bool) {
	if !c.Cfg.Checkpoint || cs.policy != PolicyFull || len(c.ckpts[cs.id]) == 0 {
		return nil, nil
	}
	skip = make(map[string]*ckptEntry)
	run = make(map[string]bool)
	demanded := make(map[string]bool)
	for i := len(cs.jobs) - 1; i >= 0; i-- {
		j := cs.jobs[i]
		if !cs.hasInDep[j.ID] {
			demanded[j.ID] = true
		}
		if !demanded[j.ID] {
			continue
		}
		if e := c.ckptValid(cs, j.ID); e != nil {
			skip[j.ID] = e
			continue
		}
		run[j.ID] = true
		for _, d := range j.Deps {
			if c.clusterOf[d] == cs.id {
				demanded[d] = true
			}
		}
	}
	if len(skip) == 0 {
		return nil, nil
	}
	return skip, run
}

// dropCkpts deletes a cluster's checkpoint entries and their persisted
// files. Called for every member of a restart cascade (their upstream
// data lineage is suspect) and at run teardown.
func (c *Controller) dropCkpts(cs *clusterState) {
	reg := c.ckpts[cs.id]
	if len(reg) == 0 {
		return
	}
	for _, e := range reg {
		_ = c.Eng.FS.Delete(e.path)
	}
	delete(c.ckpts, cs.id)
}

// ckptLinesBytes sums line lengths plus newlines — the same accounting
// the engine's HDFS byte counters use.
func ckptLinesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}
