// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs its experiment end to end per
// iteration; with -v the rendered rows (the paper's table/figure data)
// are logged once. CLUSTERBFT_SCALE=paper switches to the paper-sized
// workloads (32-node tier, 10^5-row datasets); the default small scale
// keeps `go test -bench=.` under a minute.
//
// Micro-benchmarks at the bottom cover the hot paths: digest streaming,
// script parsing, plan compilation, engine execution and PBFT ordering.
package clusterbft_test

import (
	"fmt"
	"os"
	"testing"

	clusterbft "clusterbft"
	"clusterbft/internal/bft"
	"clusterbft/internal/digest"
	"clusterbft/internal/experiments"
	"clusterbft/internal/faultsim"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
	"clusterbft/internal/workload"
)

func benchScale() experiments.Scale {
	if os.Getenv("CLUSTERBFT_SCALE") == "paper" {
		return experiments.Paper()
	}
	return experiments.Small()
}

// BenchmarkFig09TwitterFollower regenerates Fig 9: Pure Pig vs Single vs
// BFT execution of the follower analysis at 1–3 verification points.
func BenchmarkFig09TwitterFollower(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(float64(last.BFTUs)/float64(res.PurePigUs), "bft/pure-latency")
		}
	}
}

// BenchmarkFig10TwitterTwoHop regenerates Fig 10: digest overhead of the
// two-hop self-join at Join/Project/Filter points.
func BenchmarkFig10TwitterTwoHop(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable3Airline regenerates Table 3: the airline multi-store
// query under one always-commission node, C vs P across r ∈ {2,3,4}.
func BenchmarkTable3Airline(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			r2 := res.Rows[0]
			b.ReportMetric(float64(r2.C.LatencyUs)/float64(res.Baseline.LatencyUs), "r2-C-latency-x")
			b.ReportMetric(float64(r2.P.LatencyUs)/float64(res.Baseline.LatencyUs), "r2-P-latency-x")
		}
	}
}

// BenchmarkFig11FaultIsolation regenerates Fig 11: jobs until |D| = f vs
// commission probability across job mixes and f.
func BenchmarkFig11FaultIsolation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(sc)
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig12Suspicion regenerates Fig 12: the suspicion-level
// population over time.
func BenchmarkFig12Suspicion(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(sc)
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig13SuspicionSpike regenerates Fig 13: suspicion spikes under
// a large-job-heavy mix.
func BenchmarkFig13SuspicionSpike(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13(sc)
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig14Weather regenerates Fig 14: approximation accuracy (d)
// sweep with a BFT-replicated control tier, Full vs ClusterBFT vs
// Individual.
func BenchmarkFig14Weather(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			row := res.Rows[0] // f=1, d=10k
			b.ReportMetric(float64(row.Cluster.TotalUs())/float64(row.Full.TotalUs()), "clusterbft/full-latency")
		}
	}
}

// --- micro-benchmarks ---

// BenchmarkDigestWriter measures streaming digest throughput per record.
func BenchmarkDigestWriter(b *testing.B) {
	rows := make([]tuple.Tuple, 1000)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.Int(int64(i)), tuple.Str("some-payload-column"), tuple.Int(int64(i * 7))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := digest.NewWriter(digest.Key{SID: "s", Point: 1, Task: "m0"}, 0, 100, func(digest.Report) {})
		for _, r := range rows {
			w.Add(r)
		}
		w.Close()
	}
	b.ReportMetric(float64(len(rows)), "records/op")
}

// BenchmarkPigParse measures script front-end cost.
func BenchmarkPigParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pig.Parse(workload.AirlineScript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFollowerRun measures one unreplicated engine execution
// of the follower script over 20k edges.
func BenchmarkEngineFollowerRun(b *testing.B) {
	data := workload.Twitter(20_000, 500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := clusterbft.New(8, 3, clusterbft.DefaultConfig())
		sys.LoadData(workload.TwitterPath, data...)
		if _, err := sys.RunPlain(workload.FollowerScript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssuredFollowerRun measures a full BFT-protected execution.
func BenchmarkAssuredFollowerRun(b *testing.B) {
	data := workload.Twitter(20_000, 500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := clusterbft.New(16, 3, clusterbft.DefaultConfig())
		sys.LoadData(workload.TwitterPath, data...)
		if _, err := sys.Run(workload.FollowerScript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerPoolAssuredRun measures the wall-clock effect of the
// task-body worker pool on an r=3 replicated follower run. Virtual-time
// results are identical across sub-benchmarks (the pool only overlaps
// body computation); the wall-clock gap is the mechanism's payoff and
// scales with GOMAXPROCS.
func BenchmarkWorkerPoolAssuredRun(b *testing.B) {
	data := workload.Twitter(20_000, 500, 1)
	for _, w := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=gomaxprocs", 0}} {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := clusterbft.DefaultConfig()
				cfg.R = 3
				sys := clusterbft.New(16, 3, cfg)
				sys.SetWorkers(w.workers)
				sys.LoadData(workload.TwitterPath, data...)
				res, err := sys.Run(workload.FollowerScript)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.LatencyUs), "virtual-us")
				}
			}
		})
	}
}

// BenchmarkPBFTInvoke measures one ordered op through a 3f+1 group.
func BenchmarkPBFTInvoke(b *testing.B) {
	for _, f := range []int{1, 3} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			g := bft.NewGroup(f, func(int) bft.StateMachine { return nopSM{} })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.Invoke([]byte("op")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type nopSM struct{}

func (nopSM) Apply(op []byte) []byte { return op }

// BenchmarkFaultSimTick measures the §6.3 simulator.
func BenchmarkFaultSimTick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		faultsim.Run(faultsim.Config{CommissionProb: 0.6, Seed: int64(i), MaxTime: 100})
	}
}
