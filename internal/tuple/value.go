// Package tuple defines the data model flowing through ClusterBFT data-flow
// programs: dynamically typed Values, Tuples (rows), Schemas, and a
// canonical, deterministic byte encoding used both for storage and for the
// SHA-256 verification digests (the encoding must be identical across
// replicas for digest comparison to be sound).
package tuple

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// Value kinds. KindNull is the zero value so that a zero Value is a typed
// null, usable without initialization.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar: null, int64, float64 or string.
// Values are immutable and safe to copy.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Null returns the null Value.
func Null() Value { return Value{} }

// Bool maps a boolean onto the integer Values 1 and 0; the expression
// evaluator treats non-zero as true.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the value as an int64. Floats truncate toward zero; numeric
// strings parse; anything else yields 0.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0
		}
		return i
	default:
		return 0
	}
}

// Float returns the value as a float64 under the same coercions as Int.
func (v Value) Float() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// Str returns the value as a string. Null renders as the empty string.
func (v Value) Str() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// appendText appends the canonical textual form of v (exactly Str's
// output) to dst using strconv's append forms, so encoding a numeric
// value allocates nothing when dst has capacity.
func (v Value) appendText(dst []byte) []byte {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(dst, v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.f, 'g', -1, 64)
	case KindString:
		return append(dst, v.s...)
	default:
		return dst
	}
}

// textLen returns len(v.Str()) without allocating: numeric values format
// into a stack buffer, strings and nulls are direct lengths.
func (v Value) textLen() int {
	switch v.kind {
	case KindInt:
		var tmp [20]byte // len("-9223372036854775808")
		return len(strconv.AppendInt(tmp[:0], v.i, 10))
	case KindFloat:
		var tmp [32]byte
		return len(strconv.AppendFloat(tmp[:0], v.f, 'g', -1, 64))
	case KindString:
		return len(v.s)
	default:
		return 0
	}
}

// Truthy reports whether the value is "true" in a boolean context:
// non-zero numbers and non-empty strings.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// String implements fmt.Stringer using the canonical textual form.
func (v Value) String() string { return v.Str() }

// numericKinds reports whether both values are numeric (int or float).
func numericKinds(a, b Value) bool {
	return (a.kind == KindInt || a.kind == KindFloat) &&
		(b.kind == KindInt || b.kind == KindFloat)
}

// Compare orders two values: nulls first, then numerics by value, then
// strings lexicographically; mixed numeric/string compares the string
// forms so that ordering is total and deterministic.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if numericKinds(a, b) {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Str(), b.Str())
}

// Equal reports whether a and b compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a+b with integer arithmetic when both are ints, float
// otherwise. Null operands yield null (SQL-style propagation).
func Add(a, b Value) Value { return arith(a, b, '+') }

// Sub returns a-b under the same promotion rules as Add.
func Sub(a, b Value) Value { return arith(a, b, '-') }

// Mul returns a*b under the same promotion rules as Add.
func Mul(a, b Value) Value { return arith(a, b, '*') }

// Div returns a/b. Integer division when both are ints (the paper's §5.4
// determinism workaround relies on integer arithmetic); division by zero
// yields null.
func Div(a, b Value) Value { return arith(a, b, '/') }

// Mod returns a%b on integers; null on zero divisor or non-integers.
func Mod(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null()
	}
	bi := b.Int()
	if bi == 0 {
		return Null()
	}
	return Int(a.Int() % bi)
}

func arith(a, b Value, op byte) Value {
	if a.IsNull() || b.IsNull() {
		return Null()
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case '+':
			return Int(a.i + b.i)
		case '-':
			return Int(a.i - b.i)
		case '*':
			return Int(a.i * b.i)
		case '/':
			if b.i == 0 {
				return Null()
			}
			return Int(a.i / b.i)
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return Float(af + bf)
	case '-':
		return Float(af - bf)
	case '*':
		return Float(af * bf)
	case '/':
		if bf == 0 {
			return Null()
		}
		return Float(af / bf)
	}
	return Null()
}

// Truncate drops the fractional part of a float value, returning an int
// value; other kinds pass through. This implements the paper's §5.4
// recommendation of truncating decimals before arithmetic so replica
// outputs stay bitwise comparable.
func Truncate(v Value) Value {
	if v.kind == KindFloat {
		return Int(int64(v.f))
	}
	return v
}
