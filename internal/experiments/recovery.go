package experiments

import (
	"fmt"

	"clusterbft/internal/chaos"
	"clusterbft/internal/cluster"
)

// RecoveryRow is one fault scenario's end-to-end outcome on the chaos
// campaign workload, measured twice: the baseline recovery path (whole
// sub-graph re-execution, no speculation) and the checkpoint-granular
// path (verified interior outputs persisted and re-used, quantile
// straggler re-launch armed). Latencies are virtual time; Saves/Hits
// count checkpoint persists and launch-time skips in the checkpointed
// run.
type RecoveryRow struct {
	Scenario   string
	LatencyUs  int64
	Attempts   int
	Recoveries map[string]int
	Verified   bool
	Violations int

	CkptLatencyUs  int64
	CkptAttempts   int
	CkptRecoveries map[string]int
	CkptVerified   bool
	CkptViolations int
	CkptSaves      int64
	CkptHits       int64
}

// RecoveryResult is the recovery-latency table: the paper's recovery
// story (§4.2 retry at r+1, §4.3 fault isolation) measured as added
// virtual latency per injected fault class, against the clean run —
// before and after checkpoint-granular recovery.
type RecoveryResult struct {
	Rows []RecoveryRow
}

// Recovery runs one hand-built schedule per fault class through the
// deterministic fault-injection subsystem, once with the baseline
// recovery path and once with checkpoint-granular recovery plus
// quantile speculation, and reports both recovery latencies relative to
// the fault-free run. Scenarios reuse the campaign workload (three
// chained sub-graphs, R=3 on a 6x2 cluster), so rows are comparable
// with campaign reports; every row is a pure function of the fixed
// schedules below.
func Recovery() (*RecoveryResult, error) {
	cfg := chaos.DefaultCampaign()
	baseline, err := chaos.Baseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovery baseline: %w", err)
	}
	ckptCfg := cfg
	ckptCfg.Core.Checkpoint = true
	ckptCfg.Speculation = true
	ckptCfg.SpecQuantile = 0.95
	node := func(i int) cluster.NodeID {
		return cluster.NodeID(fmt.Sprintf("node-%03d", i))
	}
	scenarios := []struct {
		name  string
		sched *chaos.Schedule
	}{
		{"clean", &chaos.Schedule{}},
		{"crash+rejoin", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.CrashRejoin, Node: node(2), AtUs: 2_000_000, DownUs: 20_000_000, Salt: 11},
		}}},
		{"straggler x6", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.Straggler, Node: node(1), Slow: 6, Salt: 12},
		}}},
		{"hang p=0.6", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.HangTask, Node: node(3), Prob: 600, Salt: 13},
		}}},
		// One hanging node is masked by replication: verification takes
		// the first f+1 agreeing replicas and kills the laggard. Hanging
		// half the cluster exceeds that margin and forces the timeout
		// path — retry at r+1 with a doubled timeout (§4.2 step 6).
		{"hang 3 nodes p=0.9", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.HangTask, Node: node(0), Prob: 900, Salt: 21},
			{Kind: chaos.HangTask, Node: node(2), Prob: 900, Salt: 22},
			{Kind: chaos.HangTask, Node: node(4), Prob: 900, Salt: 23},
		}}},
		// A timed crash window: five of six nodes fail-stop after the
		// mid-pipeline sub-graph's interior job verified but before its
		// boundary job completes, and stay down past the verifier
		// timeout. The retry must re-run the whole sub-graph without
		// checkpoints; with them it re-executes only the suffix.
		{"crash 5 nodes 60s", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.CrashRejoin, Node: node(0), AtUs: 6_500_000, DownUs: 60_000_000, Salt: 31},
			{Kind: chaos.CrashRejoin, Node: node(1), AtUs: 6_500_000, DownUs: 60_000_000, Salt: 32},
			{Kind: chaos.CrashRejoin, Node: node(2), AtUs: 6_500_000, DownUs: 60_000_000, Salt: 33},
			{Kind: chaos.CrashRejoin, Node: node(3), AtUs: 6_500_000, DownUs: 60_000_000, Salt: 34},
			{Kind: chaos.CrashRejoin, Node: node(4), AtUs: 6_500_000, DownUs: 60_000_000, Salt: 35},
		}}},
		{"commission p=0.9", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.Commission, Node: node(4), Prob: 900, Salt: 14},
		}}},
		{"truncate-write", &chaos.Schedule{Events: []chaos.Event{
			{Kind: chaos.TruncateWrite, Replica: 1, Prob: 950, Salt: 15},
		}}},
	}
	res := &RecoveryResult{}
	for _, sc := range scenarios {
		sr := chaos.RunSchedule(cfg, sc.sched, baseline)
		cr := chaos.RunSchedule(ckptCfg, sc.sched, baseline)
		res.Rows = append(res.Rows, RecoveryRow{
			Scenario:   sc.name,
			LatencyUs:  sr.EndUs,
			Attempts:   sr.Attempts,
			Recoveries: sr.Recoveries,
			Verified:   sr.Verified,
			Violations: len(sr.Violations),

			CkptLatencyUs:  cr.EndUs,
			CkptAttempts:   cr.Attempts,
			CkptRecoveries: cr.Recoveries,
			CkptVerified:   cr.Verified,
			CkptViolations: len(cr.Violations),
			CkptSaves:      cr.CkptSaves,
			CkptHits:       cr.CkptHits,
		})
	}
	return res, nil
}

// Render prints the recovery-latency table, baseline and checkpointed
// paths side by side.
func (r *RecoveryResult) Render() string {
	var clean, ckptClean int64
	for _, row := range r.Rows {
		if row.Scenario == "clean" {
			clean = row.LatencyUs
			ckptClean = row.CkptLatencyUs
		}
	}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Scenario,
			seconds(row.LatencyUs),
			ratio(row.LatencyUs, clean),
			renderRecov(row.Recoveries),
			recovOutcome(row.Verified, row.Violations),
			seconds(row.CkptLatencyUs),
			ratio(row.CkptLatencyUs, ckptClean),
			renderRecov(row.CkptRecoveries),
			fmt.Sprintf("%d/%d", row.CkptSaves, row.CkptHits),
			recovOutcome(row.CkptVerified, row.CkptViolations),
		}
	}
	return "recovery latency by fault class (campaign workload, R=3, 6x2 cluster):\n" +
		"columns: baseline recovery | checkpoint-granular recovery (+quantile speculation)\n" +
		table([]string{"scenario", "latency(s)", "vs clean", "actions", "outcome",
			"ckpt(s)", "vs clean", "actions", "saves/hits", "outcome"}, rows)
}

func recovOutcome(verified bool, violations int) string {
	out := "verified"
	if !verified {
		out = "failed"
	}
	if violations > 0 {
		out += fmt.Sprintf(" (%d violations)", violations)
	}
	return out
}

func renderRecov(m map[string]int) string {
	keys := []string{"retry", "restart", "fail"}
	out := ""
	for _, k := range keys {
		if m[k] > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", k, m[k])
		}
	}
	if out == "" {
		return "-"
	}
	return out
}
