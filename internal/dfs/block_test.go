package dfs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestBlockRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"a"},
		{"a\tb\tc", "d\te", "f"},
		{"", "", ""},
		{"x\t", "\ty", "\t", "\t\t\t"},
		{"esc\\t\\n\\\\", "tab\there", "multi\ncol? no, raw newline"},
		{strings.Repeat("wide\tvalue\t", 200) + "end"},
	}
	for i, lines := range cases {
		for _, compress := range []bool{false, true} {
			data := EncodeBlock(lines, compress)
			n, err := BlockRecords(data)
			if err != nil {
				t.Fatalf("case %d compress=%v: BlockRecords: %v", i, compress, err)
			}
			if n != len(lines) {
				t.Fatalf("case %d compress=%v: BlockRecords=%d want %d", i, compress, n, len(lines))
			}
			got, err := DecodeBlock(data)
			if err != nil {
				t.Fatalf("case %d compress=%v: DecodeBlock: %v", i, compress, err)
			}
			if len(got) != len(lines) {
				t.Fatalf("case %d compress=%v: got %d lines want %d", i, compress, len(got), len(lines))
			}
			for j := range lines {
				if got[j] != lines[j] {
					t.Fatalf("case %d compress=%v line %d: got %q want %q", i, compress, j, got[j], lines[j])
				}
			}
		}
	}
}

func TestBlockCompressionShrinksRepetitiveData(t *testing.T) {
	lines := make([]string, 500)
	for i := range lines {
		lines[i] = fmt.Sprintf("station-%03d\t%d\tsunny", i%7, 20+i%5)
	}
	raw := EncodeBlock(lines, false)
	comp := EncodeBlock(lines, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed block (%d bytes) not smaller than raw (%d bytes)", len(comp), len(raw))
	}
	got, err := DecodeBlock(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d mismatch after compression round-trip", i)
		}
	}
}

func TestDecodeBlockRejectsMalformed(t *testing.T) {
	good := EncodeBlock([]string{"a\tb", "c"}, false)
	bad := [][]byte{
		nil,
		{},
		{blockVersion},
		{0x7f, 0x00, 0x02}, // wrong version
		good[:len(good)-1], // truncated value
		append(append([]byte{}, good[:3]...), 0xff), // mangled counts
	}
	for i, data := range bad {
		if _, err := DecodeBlock(data); err == nil {
			t.Fatalf("case %d: expected error for malformed block", i)
		}
	}
}

// TestSealSpillReadBack drives the full pipeline — seal at a tiny block
// size, spill under a tiny budget, read everything back — and checks
// byte-identical recovery plus the resident-budget invariant.
func TestSealSpillReadBack(t *testing.T) {
	for _, compress := range []bool{false, true} {
		fs := NewWith(Options{BlockSize: 256, MemBudget: 512, SpillDir: t.TempDir(), Compress: compress})
		rng := rand.New(rand.NewSource(7))
		var want []string
		for i := 0; i < 400; i++ {
			line := fmt.Sprintf("k%d\tv%d\t%s", rng.Intn(50), i, strings.Repeat("x", rng.Intn(40)))
			want = append(want, line)
			fs.Append("data/in", line)
		}
		if err := fs.SpillErr(); err != nil {
			t.Fatalf("compress=%v: spill error: %v", compress, err)
		}
		if fs.SpilledBlocks() == 0 {
			t.Fatalf("compress=%v: expected spilling under 512-byte budget", compress)
		}
		if got := fs.MaxResidentBytes(); got > 512+256*2 {
			// Budget is enforced at append boundaries; transiently one
			// oversized just-sealed block may exceed it, but not by more
			// than a couple of block sizes.
			t.Fatalf("compress=%v: max resident %d far above budget", compress, got)
		}
		got, err := fs.ReadLines("data/in")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("compress=%v: got %d lines want %d", compress, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("compress=%v: line %d: got %q want %q", compress, i, got[i], want[i])
			}
		}
		if err := fs.Close(); err != nil {
			t.Fatalf("compress=%v: close: %v", compress, err)
		}
	}
}

func TestReaderRangesOnSpilledFile(t *testing.T) {
	fs := NewWith(Options{BlockSize: 128, MemBudget: 256, SpillDir: t.TempDir(), Compress: true})
	defer fs.Close()
	var want []string
	for i := 0; i < 300; i++ {
		line := fmt.Sprintf("row\t%04d", i)
		want = append(want, line)
		fs.Append("t/f", line)
	}
	r, err := fs.OpenReader("t/f")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRecords() != len(want) {
		t.Fatalf("NumRecords=%d want %d", r.NumRecords(), len(want))
	}
	for _, rg := range [][2]int{{0, 1}, {0, 300}, {37, 113}, {250, 300}, {299, 300}, {150, 150}, {-5, 9999}} {
		lo, hi := rg[0], rg[1]
		got := r.ReadRange(lo, hi)
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi > len(want) {
			chi = len(want)
		}
		if clo > chi {
			clo = chi
		}
		if len(got) != chi-clo {
			t.Fatalf("ReadRange(%d,%d): got %d lines want %d", lo, hi, len(got), chi-clo)
		}
		for i := range got {
			if got[i] != want[clo+i] {
				t.Fatalf("ReadRange(%d,%d)[%d] = %q want %q", lo, hi, i, got[i], want[clo+i])
			}
		}
	}
	// Batch iteration covers everything exactly once, in order.
	var streamed []string
	for {
		batch, ok := r.Next()
		if !ok {
			break
		}
		streamed = append(streamed, batch...)
	}
	if len(streamed) != len(want) {
		t.Fatalf("Next() streamed %d lines want %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("streamed line %d mismatch", i)
		}
	}
}

func TestTreeReaderMatchesReadTree(t *testing.T) {
	fs := NewWith(Options{BlockSize: 64})
	for p := 0; p < 3; p++ {
		for i := 0; i < 40; i++ {
			fs.Append(fmt.Sprintf("out/part-%05d", p), fmt.Sprintf("p%d\t%d", p, i))
		}
	}
	want, err := fs.ReadTree("out")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fs.OpenTreeReader("out")
	if err != nil {
		t.Fatal(err)
	}
	got := r.ReadRange(0, r.NumRecords())
	if len(got) != len(want) {
		t.Fatalf("tree reader: %d lines want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tree reader line %d: got %q want %q", i, got[i], want[i])
		}
	}
	if _, err := fs.OpenTreeReader("nope"); err == nil {
		t.Fatal("expected ErrNotFound for missing tree")
	}
}

func TestOpenReaderHonorsReadHook(t *testing.T) {
	fs := NewWith(Options{BlockSize: 32})
	for i := 0; i < 20; i++ {
		fs.Append("h/f", fmt.Sprintf("line%d", i))
	}
	calls := 0
	fs.ReadHook = func(path string, lines []string) []string {
		calls++
		out := append([]string(nil), lines...)
		out[0] = "mangled"
		return out
	}
	r, err := fs.OpenReader("h/f")
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hook fired %d times at open, want exactly 1", calls)
	}
	got := r.ReadRange(0, r.NumRecords())
	if got[0] != "mangled" || got[1] != "line1" {
		t.Fatalf("hooked reader stream wrong: %q", got[:2])
	}
	if calls != 1 {
		t.Fatalf("hook fired again on ReadRange (%d calls)", calls)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "123": 123, "4k": 4 << 10, "4K": 4 << 10,
		"2m": 2 << 20, "1G": 1 << 30, " 8m ": 8 << 20,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "x", "12q", "k"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q): expected error", bad)
		}
	}
}

func TestDeleteReleasesResidentMemory(t *testing.T) {
	fs := NewWith(Options{BlockSize: 64})
	for i := 0; i < 100; i++ {
		fs.Append("d/f", fmt.Sprintf("some line %d", i))
	}
	if fs.ResidentBytes() == 0 {
		t.Fatal("expected sealed resident blocks before delete")
	}
	if err := fs.Delete("d/f"); err != nil {
		t.Fatal(err)
	}
	if got := fs.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes %d after deleting only file", got)
	}
	if got := fs.ResidentBlocks(); got != 0 {
		t.Fatalf("resident blocks %d after deleting only file", got)
	}
}
