package core

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/digest"
	"clusterbft/internal/mapred"
	"clusterbft/internal/pig"
)

// evKey strips the shard assignment from a merged event, leaving the
// fields that must be invariant across shard counts.
type evKey struct {
	Stamp   uint64
	SID     string
	Kind    VerdictEventKind
	Replica int
	Key     digest.Key
}

func evKeys(events []VerdictEvent) []evKey {
	out := make([]evKey, len(events))
	for i, ev := range events {
		out[i] = evKey{Stamp: ev.Stamp, SID: ev.SID, Kind: ev.Kind, Replica: ev.Replica, Key: ev.Key}
	}
	return out
}

// poolWorkload replays a fixed synthetic digest workload (40 sids, 4
// replicas, sporadic commission corruption) through a pool, syncing
// every stride submissions, and returns the concatenated merged event
// stream.
func poolWorkload(shards, stride int) []VerdictEvent {
	p := NewVerdictPool(1, shards, nil)
	defer p.Close()
	var merged []VerdictEvent
	n := 0
	for s := 0; s < 40; s++ {
		sid := fmt.Sprintf("run1-c%d-a0", s)
		for k := 0; k < 12; k++ {
			for rep := 0; rep < 4; rep++ {
				sum := sha256.Sum256([]byte(fmt.Sprintf("%d/%d", s, k)))
				if rep == s%4 && (s+k)%5 == 0 {
					sum = sha256.Sum256([]byte(fmt.Sprintf("bad/%d/%d/%d", s, k, rep)))
				}
				p.Submit(digest.Report{
					Key:     digest.Key{SID: sid, Point: 1, Task: "m0", Chunk: k},
					Replica: rep, Records: 1, Sum: sum,
				})
				if n++; n%stride == 0 {
					merged = append(merged, p.Sync()...)
				}
			}
		}
	}
	return append(merged, p.Sync()...)
}

// TestVerdictPoolMergeOrderDeterministic is the satellite-2 hammer: the
// merge layer must assign a deterministic global order to evidence from
// concurrent shard pipelines. Repeated runs at 8 shards — real worker
// goroutines, run under -race in CI — must produce byte-identical event
// streams, and the stream (minus the shard assignment) must not depend
// on the shard count at all.
func TestVerdictPoolMergeOrderDeterministic(t *testing.T) {
	base := poolWorkload(8, 97)
	if len(base) == 0 {
		t.Fatal("workload produced no evidence")
	}
	for round := 0; round < 3; round++ {
		if got := poolWorkload(8, 97); !reflect.DeepEqual(got, base) {
			t.Fatalf("round %d: 8-shard event stream diverged", round)
		}
	}
	want := evKeys(base)
	for _, shards := range []int{1, 2, 4} {
		if got := evKeys(poolWorkload(shards, 97)); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: merged evidence differs from 8-shard stream", shards)
		}
	}
	// Sync granularity must not change the evidence either — only when
	// it becomes visible.
	if got := evKeys(poolWorkload(8, 13)); !reflect.DeepEqual(got, want) {
		t.Error("sync stride changed the merged evidence stream")
	}
}

// TestCrossShardFaultAnalyzerConvergence is the satellite-3 coverage: a
// Byzantine node serving clusters that are verified by two *different*
// shard pipelines must be identified from the merged evidence no later
// than in the single-shard run. Evidence is applied to the analyzer in
// merged stamp order, so the conviction index must match exactly.
func TestCrossShardFaultAnalyzerConvergence(t *testing.T) {
	const bad = cluster.NodeID("node-007")
	// Job clusters touching the bad node, padded with disjoint honest
	// nodes so intersection isolates it (Fig 7's disjoint family).
	clusters := [][]cluster.NodeID{
		{bad, "node-010", "node-011"},
		{bad, "node-020", "node-021"},
		{bad, "node-030", "node-031"},
	}
	run := func(shards int) (suspects []cluster.NodeID, convictedAt int) {
		p := NewVerdictPool(1, shards, nil)
		defer p.Close()
		fa := NewFaultAnalyzer(1)
		// One sid per faulty job cluster; replica 1 deviates on chunk 1.
		sids := make([]string, len(clusters))
		for i := range clusters {
			sids[i] = fmt.Sprintf("run1-c%d-a0", i)
		}
		if shards > 1 {
			distinct := false
			for _, sid := range sids[1:] {
				if p.ShardOf(sid) != p.ShardOf(sids[0]) {
					distinct = true
				}
			}
			if !distinct {
				t.Fatalf("test sids all hash to shard %d; pick different sids", p.ShardOf(sids[0]))
			}
		}
		for i, sid := range sids {
			for k := 0; k < 3; k++ {
				for rep := 0; rep < 4; rep++ {
					sum := sha256.Sum256([]byte(fmt.Sprintf("h/%d/%d", i, k)))
					if rep == 1 && k == 1 {
						sum = sha256.Sum256([]byte(fmt.Sprintf("bad/%d", i)))
					}
					p.Submit(digest.Report{
						Key:     digest.Key{SID: sid, Point: 1, Task: "m0", Chunk: k},
						Replica: rep, Records: 1, Sum: sum,
					})
				}
			}
		}
		convictedAt = -1
		applied := 0
		for _, ev := range p.Sync() {
			if ev.Kind != VerdictDeviant {
				continue
			}
			idx := 0
			fmt.Sscanf(ev.SID, "run1-c%d-a0", &idx)
			fa.Report(NewNodeSet(clusters[idx]...))
			applied++
			if convictedAt < 0 {
				for _, d := range fa.Disjoint() {
					if len(d) == 1 && d[bad] {
						convictedAt = applied
					}
				}
			}
		}
		return fa.Suspects(), convictedAt
	}
	soloSuspects, soloAt := run(1)
	shardSuspects, shardAt := run(2)
	if soloAt < 0 {
		t.Fatal("single-shard run never isolated the Byzantine node")
	}
	if !reflect.DeepEqual(soloSuspects, shardSuspects) {
		t.Errorf("suspect sets differ: solo=%v sharded=%v", soloSuspects, shardSuspects)
	}
	if shardAt < 0 || shardAt > soloAt {
		t.Errorf("cross-shard isolation at evidence #%d, single-shard at #%d (must be no later)", shardAt, soloAt)
	}
}

// shardedScenario runs one commission-fault scenario and returns the
// result, the output lines, the audit trail and the per-node suspicion
// levels.
func shardedScenario(t *testing.T, shards int) (*Result, []string, []analyze.AuditEvent, map[cluster.NodeID]float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ForcePointAliases = []string{"avgs", "counts"}
	h := newHarness(t, 8, 2, cfg)
	if err := h.cl.SetAdversary("node-000", cluster.FaultCommission, 0.7, 9); err != nil {
		t.Fatal(err)
	}
	trail := analyze.NewAuditTrail(h.eng.Now)
	h.ctrl.AttachAudit(trail)
	res, err := h.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	levels := make(map[cluster.NodeID]float64)
	for i := 0; i < h.cl.Len(); i++ {
		n := cluster.NodeID(fmt.Sprintf("node-%03d", i))
		levels[n] = h.ctrl.Susp.Level(n)
	}
	return res, h.outputLines(t, res, "out/counts"), trail.Events(), levels
}

// auditKinds projects an audit stream onto its order-bearing identity:
// kind, detail and the implicated nodes. Timestamps are allowed to
// differ between sharded and inline runs (sharded evidence is applied
// at merge points), but nothing else is.
func auditKinds(events []analyze.AuditEvent) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = fmt.Sprintf("%v|%s|%v|%v", ev.Kind, ev.Detail, ev.Nodes, ev.Removed)
	}
	return out
}

// TestControllerShardedMatchesInline: a sharded controller run must
// reach the same verdicts as the inline one — same outputs, same
// attempt/fault counts, same suspicion state, and the same audit
// evidence in the same global order.
func TestControllerShardedMatchesInline(t *testing.T) {
	res1, out1, audit1, lv1 := shardedScenario(t, 0)
	res4, out4, audit4, lv4 := shardedScenario(t, 4)
	if !reflect.DeepEqual(out1, out4) {
		t.Error("verified outputs differ between inline and 4-shard runs")
	}
	if res1.Attempts != res4.Attempts || res1.FaultyReplicas != res4.FaultyReplicas ||
		res1.DigestReports != res4.DigestReports || res1.Clusters != res4.Clusters {
		t.Errorf("run shape differs: inline %+v vs sharded %+v", res1, res4)
	}
	if !reflect.DeepEqual(res1.Suspects, res4.Suspects) {
		t.Errorf("suspects differ: %v vs %v", res1.Suspects, res4.Suspects)
	}
	if !reflect.DeepEqual(lv1, lv4) {
		t.Errorf("suspicion levels differ: %v vs %v", lv1, lv4)
	}
	k1, k4 := auditKinds(audit1), auditKinds(audit4)
	if !reflect.DeepEqual(k1, k4) {
		t.Errorf("audit evidence order differs:\ninline:  %v\nsharded: %v", k1, k4)
	}
}

// TestControllerShardedReplaysByteIdentically: fixed seed, fixed shard
// count — two runs must match in every observable, timestamps included.
func TestControllerShardedReplaysByteIdentically(t *testing.T) {
	resA, outA, auditA, lvA := shardedScenario(t, 4)
	resB, outB, auditB, lvB := shardedScenario(t, 4)
	if !reflect.DeepEqual(outA, outB) || !reflect.DeepEqual(auditA, auditB) ||
		!reflect.DeepEqual(lvA, lvB) {
		t.Error("4-shard replay diverged")
	}
	if resA.Attempts != resB.Attempts || resA.LatencyUs != resB.LatencyUs ||
		resA.DigestReports != resB.DigestReports {
		t.Errorf("4-shard replay results diverged: %+v vs %+v", resA, resB)
	}
}

// TestSuffixRetryShedsSuffixEscalations is the satellite-1 regression
// test for suffix-scoped replica sizing: timeout escalations earned
// while re-executing only a checkpointed suffix must not follow the
// checkpointed-prefix jobs into a later full re-execution — those jobs
// re-run at their original degree. Escalations earned by full-graph
// attempts are kept.
func TestSuffixRetryShedsSuffixEscalations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 3
	cfg.MaxAttempts = 10
	cfg.Checkpoint = true
	cfg.ForcePointAliases = []string{"counts"}
	h := newHarness(t, 8, 2, cfg)
	c := h.ctrl

	plan, err := pig.Parse(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	points, err := c.choosePoints(plan)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := mapred.Compile(plan, mapred.CompileOptions{Points: points, NumReduces: cfg.NumReduces})
	if err != nil {
		t.Fatal(err)
	}
	c.runSeq++
	c.initRun(jobs, points)
	cs := c.clusters[0]
	c.tryLaunch(cs)
	if cs.r != 3 || len(cs.launchJobs) != len(cs.jobs) {
		t.Fatalf("first attempt: r=%d launchJobs=%d/%d", cs.r, len(cs.launchJobs), len(cs.jobs))
	}

	// As if attempt a0 reached f+1 agreement on the interior job before
	// timing out: plant its checkpoint (no upstream, so the source
	// signature is empty and stays valid across attempts).
	var interior string
	for id := range cs.hasInDep {
		interior = id
	}
	if interior == "" {
		t.Fatal("scenario needs an interior (checkpointable) job")
	}
	h.fs.Append("ckpt/run1/c0/"+interior, "st00\t1")
	c.ckpts[cs.id] = map[string]*ckptEntry{interior: {
		path: "ckpt/run1/c0/" + interior, records: 1, bytes: 8,
		srcs: map[int]ckptSrc{},
	}}

	// Full attempt a0 times out: a classic cluster-wide escalation.
	c.retry(cs, true)
	if cs.r != 4 || cs.suffixBoost != 0 {
		t.Fatalf("full-graph escalation: r=%d boost=%d, want r=4 boost=0", cs.r, cs.suffixBoost)
	}
	if len(cs.launchJobs) >= len(cs.jobs) {
		t.Fatal("retry did not consume the planted checkpoint")
	}
	// Two suffix-only attempts time out: escalations scoped to the suffix.
	c.retry(cs, true)
	c.retry(cs, true)
	if cs.r != 6 || cs.suffixBoost != 2 {
		t.Fatalf("suffix escalations: r=%d boost=%d, want r=6 boost=2", cs.r, cs.suffixBoost)
	}
	// Upstream lineage becomes suspect: checkpoints dropped, the next
	// attempt re-executes the full graph — the checkpointed-prefix jobs
	// come back at the degree they always had (base 3 + the one
	// full-graph escalation), not at the suffix-inflated 7.
	c.dropCkpts(cs)
	c.retry(cs, true)
	if len(cs.launchJobs) != len(cs.jobs) {
		t.Fatal("expected a full re-execution after dropping checkpoints")
	}
	if cs.r != 4 || cs.suffixBoost != 0 {
		t.Errorf("full re-execution r=%d boost=%d, want r=4 boost=0 (suffix escalations shed)", cs.r, cs.suffixBoost)
	}
	if st := c.ClusterStates()[cs.id]; st.R != cs.r {
		t.Errorf("ClusterStatus.R=%d, want %d", st.R, cs.r)
	}

	// Control: the identical sequence without checkpoint coverage keeps
	// the historical cluster-wide escalation.
	c2 := newHarness(t, 8, 2, cfg).ctrl
	c2.runSeq++
	c2.initRun(jobs, points)
	cs2 := c2.clusters[0]
	c2.tryLaunch(cs2)
	for i := 0; i < 4; i++ {
		c2.retry(cs2, true)
	}
	if cs2.r != 7 || cs2.suffixBoost != 0 {
		t.Errorf("uncovered retries: r=%d boost=%d, want r=7 boost=0", cs2.r, cs2.suffixBoost)
	}
}
