// Package cluster models the untrusted worker tier (paper §2.3): virtual
// nodes leased from a cloud provider, each partitioned into uniform
// resource units (task slots), and per-node adversaries that inject
// Byzantine faults — commission faults (corrupting task output) and
// omission faults (withholding task completion) — under the paper's weak
// and strong adversary models.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"clusterbft/internal/tuple"
)

// NodeID identifies one virtual node.
type NodeID string

// FaultKind classifies the Byzantine behaviour a node's adversary
// injects, following the Kihlstrom et al. taxonomy quoted in §2.1.
type FaultKind uint8

const (
	// FaultNone marks an honest node.
	FaultNone FaultKind = iota
	// FaultCommission makes the node emit records it should not send:
	// task outputs (and hence digests) are corrupted.
	FaultCommission
	// FaultOmission makes the node withhold messages: assigned tasks
	// never report completion.
	FaultOmission
	// FaultSlow is a benign straggler: tasks complete correctly but take
	// SlowFactor times longer. Stragglers exercise the verifier's
	// timeout and the offline-comparison machinery without any lying.
	FaultSlow
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCommission:
		return "commission"
	case FaultOmission:
		return "omission"
	case FaultSlow:
		return "slow"
	default:
		return "unknown"
	}
}

// Adversary controls fault injection on one node. Probability is the
// per-task chance the fault fires (1.0 reproduces Table 3's
// "always produce commission failures" node). Draws come from a seeded
// source so simulations are reproducible.
type Adversary struct {
	Kind        FaultKind
	Probability float64
	// SlowFactor multiplies task duration for FaultSlow adversaries;
	// values <= 1 default to 4.
	SlowFactor float64
	rng        *rand.Rand
}

// NewAdversary builds a seeded adversary.
func NewAdversary(kind FaultKind, probability float64, seed int64) *Adversary {
	return &Adversary{Kind: kind, Probability: probability, rng: rand.New(rand.NewSource(seed))}
}

// Slowdown returns the straggler factor (at least 1).
func (a *Adversary) Slowdown() float64 {
	if a == nil || a.SlowFactor <= 1 {
		return 4
	}
	return a.SlowFactor
}

// Fire draws whether the fault hits the current task. Honest adversaries
// (nil or FaultNone) never fire.
func (a *Adversary) Fire() bool {
	if a == nil || a.Kind == FaultNone || a.Probability <= 0 {
		return false
	}
	if a.Probability >= 1 {
		return true
	}
	return a.rng.Float64() < a.Probability
}

// Corrupt returns a tampered copy of t, the visible effect of a
// commission fault: integer fields are incremented and string fields get
// a marker suffix, so both the downstream computation and the digest of
// the stream change.
func Corrupt(t tuple.Tuple) tuple.Tuple {
	out := make(tuple.Tuple, len(t))
	for i, v := range t {
		switch v.Kind() {
		case tuple.KindInt:
			out[i] = tuple.Int(v.Int() + 1)
		case tuple.KindFloat:
			out[i] = tuple.Float(v.Float() + 1)
		case tuple.KindString:
			out[i] = tuple.Str(v.Str() + "\x00x")
		default:
			out[i] = tuple.Str("\x00x")
		}
	}
	return out
}

// Node is one virtual machine of the untrusted tier.
type Node struct {
	ID        NodeID
	Slots     int // resource units (§4.2): concurrent task capacity
	Adversary *Adversary
}

// Faulty reports whether the node has a non-trivial adversary attached.
func (n *Node) Faulty() bool {
	return n.Adversary != nil && n.Adversary.Kind != FaultNone && n.Adversary.Probability > 0
}

// Cluster is the set of worker nodes.
type Cluster struct {
	nodes []*Node
	byID  map[NodeID]*Node
}

// New builds a cluster of n honest nodes with the given slot count each.
// Node IDs are "node-000", "node-001", ...
func New(n, slots int) *Cluster {
	c := &Cluster{byID: make(map[NodeID]*Node, n)}
	for i := 0; i < n; i++ {
		node := &Node{ID: NodeID(fmt.Sprintf("node-%03d", i)), Slots: slots}
		c.nodes = append(c.nodes, node)
		c.byID[node.ID] = node
	}
	return c
}

// Nodes returns the nodes in ID order. The slice is shared; callers must
// not mutate it.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node looks a node up by ID, returning nil when absent.
func (c *Cluster) Node(id NodeID) *Node { return c.byID[id] }

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// TotalSlots returns the cluster-wide resource unit count.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Slots
	}
	return total
}

// SetAdversary attaches a seeded adversary to the named node. Unknown
// node IDs are an error.
func (c *Cluster) SetAdversary(id NodeID, kind FaultKind, probability float64, seed int64) error {
	n := c.byID[id]
	if n == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	n.Adversary = NewAdversary(kind, probability, seed)
	return nil
}

// FaultyNodes returns the IDs of nodes with active adversaries, sorted.
func (c *Cluster) FaultyNodes() []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if n.Faulty() {
			out = append(out, n.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
