package obs

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span is one completed interval on the pipeline timeline: a job, a
// stage, a task attempt, a digest verification, a suspicion update.
// VStart/VEnd are virtual microseconds from the owning simulation clock;
// WallStart/WallEnd are wall-clock microseconds, populated only when the
// tracer has a wall clock enabled (never in deterministic test runs).
// Track groups spans onto one display row (a node, a job, "verifier").
type Span struct {
	Cat       string
	Track     string
	Name      string
	VStart    int64
	VEnd      int64
	WallStart int64
	WallEnd   int64
	Attrs     []Attr
}

// Tracer records completed spans into a fixed-capacity ring buffer.
// When the ring fills, the oldest spans are overwritten (and counted as
// dropped) so long runs keep the most recent window instead of growing
// without bound — and, since eviction depends only on span count, the
// retained window of a seeded run is still deterministic.
//
// All methods are nil-safe no-ops on a nil *Tracer; disabled tracing is
// the zero value of a pointer field, and the disabled hooks are
// allocation-free (pinned by alloc tests).
type Tracer struct {
	mu      sync.Mutex
	cap     int
	ring    []Span
	next    int // overwrite cursor once len(ring) == cap
	dropped int64
	wall    func() int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 1 << 15

// NewTracer builds a tracer retaining up to capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// WallUnixMicros is a wall clock for EnableWallClock.
func WallUnixMicros() int64 { return time.Now().UnixMicro() }

// EnableWallClock makes the tracer stamp wall-clock fields using fn
// (usually WallUnixMicros). Leave disabled for deterministic runs: wall
// times vary run to run and are therefore excluded from JSONL exports.
func (t *Tracer) EnableWallClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wall = fn
	t.mu.Unlock()
}

// WallNow returns the current wall-clock reading, or 0 when the tracer
// is nil or has no wall clock. Components capture span start times with
// this so a disabled wall clock costs nothing.
func (t *Tracer) WallNow() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	fn := t.wall
	t.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Emit records one completed span. The span's Attrs slice is retained;
// callers must not mutate it afterwards.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.wall != nil && s.WallEnd == 0 {
		s.WallEnd = t.wall()
	}
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Record emits a span from its parts. The variadic attrs are copied, so
// call sites keep the argument slice on the stack and a disabled tracer
// records nothing and allocates nothing.
func (t *Tracer) Record(cat, track, name string, vstart, vend int64, attrs ...Attr) {
	if t == nil {
		return
	}
	var cp []Attr
	if len(attrs) > 0 {
		cp = make([]Attr, len(attrs))
		copy(cp, attrs)
	}
	t.Emit(Span{Cat: cat, Track: track, Name: name, VStart: vstart, VEnd: vend, Attrs: cp})
}

// Instant emits a zero-duration span at virtual time at.
func (t *Tracer) Instant(cat, track, name string, at int64, attrs ...Attr) {
	t.Record(cat, track, name, at, at, attrs...)
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Drain returns the retained spans oldest-first and empties the ring,
// so a long-running process can ship its trace window incrementally
// (the /trace?drain=1 endpoint). The cumulative Dropped count is kept.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	t.ring = t.ring[:0]
	t.next = 0
	return out
}

// jsonlSpan fixes the JSONL field set and order. Wall-clock fields are
// deliberately absent: JSONL is the deterministic export, byte-identical
// across runs of a seeded simulation, and golden fixtures pin it.
type jsonlSpan struct {
	Cat    string `json:"cat"`
	Track  string `json:"track"`
	Name   string `json:"name"`
	VStart int64  `json:"vstart"`
	VEnd   int64  `json:"vend"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// WriteJSONL writes one JSON object per retained span, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteSpansJSONL(w, t.Spans())
}

// WriteSpansJSONL writes the given spans in the same deterministic
// JSONL shape as Tracer.WriteJSONL (used with Tracer.Drain).
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	for _, s := range spans {
		line, err := json.Marshal(jsonlSpan{
			Cat: s.Cat, Track: s.Track, Name: s.Name,
			VStart: s.VStart, VEnd: s.VEnd, Attrs: s.Attrs,
		})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event object ("X" complete events plus
// "M" thread-name metadata), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained spans as Chrome trace_event JSON.
// Timestamps are the spans' virtual microseconds (trace_event's native
// unit), each track becomes a named thread, and wall-clock readings, if
// present, ride along as args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	tid := make(map[string]int)
	var events []chromeEvent
	for _, s := range spans {
		id, ok := tid[s.Track]
		if !ok {
			id = len(tid) + 1
			tid[s.Track] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
				Args: map[string]string{"name": s.Track},
			})
		}
		args := make(map[string]string, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			args[a.K] = a.V
		}
		if s.WallStart != 0 {
			args["wall_start_us"] = strconv.FormatInt(s.WallStart, 10)
		}
		if s.WallEnd != 0 {
			args["wall_end_us"] = strconv.FormatInt(s.WallEnd, 10)
		}
		if len(args) == 0 {
			args = nil
		}
		dur := s.VEnd - s.VStart
		if dur < 0 {
			dur = 0
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", Ts: s.VStart, Dur: &dur,
			Pid: 1, Tid: id, Args: args,
		})
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTraceFiles writes the Chrome trace_event JSON to path and its
// deterministic JSONL twin next to it (path with the extension replaced
// by .jsonl, or .jsonl appended). It returns the JSONL path.
func WriteTraceFiles(t *Tracer, path string) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	twin := path + ".jsonl"
	if i := strings.LastIndex(path, "."); i > strings.LastIndex(path, "/") {
		twin = path[:i] + ".jsonl"
	}
	g, err := os.Create(twin)
	if err != nil {
		return "", err
	}
	if err := t.WriteJSONL(g); err != nil {
		g.Close()
		return "", err
	}
	return twin, g.Close()
}
