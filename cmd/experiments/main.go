// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig9|fig10|table3|fig11|fig12|fig13|fig14|recovery|verifycost|outofcore|shardscale]
//	            [-scale small|paper] [-combine=on|off] [-verify-policy=full|quiz|deferred|auto] [-shards N]
//	            [-block-size N] [-mem-budget 64m] [-spill-dir DIR] [-compress]
//	            [--trace=run.json] [--metrics] [-http :8080]
//
// Each experiment prints rows shaped like the paper's (§6); see
// EXPERIMENTS.md for the mapping and the expected shapes. --trace
// collects every engine run's spans into one Chrome trace_event timeline
// (plus a .jsonl twin); --metrics prints the accumulated registry after
// all selected experiments. -http serves the live introspection plane
// (/metrics, /healthz, /jobs, /trace, pprof) while the experiments run;
// the registry and jobs board are shared across every engine the
// experiments construct, and the /jobs cost buckets reflect the engine
// currently executing.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/experiments"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
	"clusterbft/internal/obs/introspect"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig9, fig10, table3, fig11, fig12, fig13, fig14, recovery, verifycost, outofcore, shardscale")
	scaleName := flag.String("scale", "small", "workload scale: small or paper")
	combine := flag.String("combine", "on", "map-side combiners: on or off (results are identical either way; latencies differ)")
	policyName := flag.String("verify-policy", "", "verification policy for every figure's controllers: full, quiz, deferred or auto (default: full)")
	checkpoint := flag.Bool("checkpoint", false, "enable checkpoint-granular recovery and quantile straggler re-launch in every controller the experiments build")
	shards := flag.Int("shards", 0, "split every controller's digest verification across N parallel verdict pipelines (<=1: inline; figures are identical either way)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline here (a .jsonl twin is written next to it)")
	metrics := flag.Bool("metrics", false, "print the accumulated metrics registry after the experiments")
	httpAddr := flag.String("http", "", "serve live introspection (/metrics, /healthz, /jobs, /trace, pprof) on this address, e.g. :8080")
	storageFlags := dfs.Flags(flag.CommandLine)
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	var board *obs.JobsBoard
	var cur atomic.Pointer[mapred.Engine]
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
	}
	if *traceFile != "" || *httpAddr != "" {
		tracer = obs.NewTracer(0)
		if *traceFile != "" {
			tracer.EnableWallClock(obs.WallUnixMicros)
		}
	}
	if *httpAddr != "" {
		board = obs.NewJobsBoard()
	}
	if reg != nil || tracer != nil || board != nil {
		experiments.Observe = func(e *mapred.Engine) {
			e.InstrumentMetrics(reg)
			e.Trace = tracer
			e.Board = board
			cur.Store(e)
		}
	}
	if *httpAddr != "" {
		srv, err := introspect.Start(*httpAddr, introspect.Options{
			Registry: reg,
			Tracer:   tracer,
			Board:    board,
			Cost: func() any {
				if e := cur.Load(); e != nil {
					return e.Ledger.Buckets()
				}
				return nil
			},
			SIDCost: func(sid string) (any, bool) {
				if e := cur.Load(); e != nil {
					if b, ok := e.Ledger.SIDBuckets(sid); ok {
						return b, true
					}
				}
				return nil, false
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("introspection: %s\n", srv.URL())
	}

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	switch *combine {
	case "on":
	case "off":
		sc.DisableCombine = true
	default:
		fmt.Fprintf(os.Stderr, "bad -combine %q (want on or off)\n", *combine)
		os.Exit(2)
	}
	policy, err := core.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.VerifyPolicy = policy
	sc.Checkpoint = *checkpoint
	sc.Shards = *shards
	sc.Storage, err = storageFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runners := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig9", func() (string, error) { r, err := experiments.Fig9(sc); return render(r, err) }},
		{"fig10", func() (string, error) { r, err := experiments.Fig10(sc); return render(r, err) }},
		{"table3", func() (string, error) { r, err := experiments.Table3(sc); return render(r, err) }},
		{"fig11", func() (string, error) { return experiments.Fig11(sc).Render(), nil }},
		{"fig12", func() (string, error) { return experiments.Fig12(sc).Render(), nil }},
		{"fig13", func() (string, error) { return experiments.Fig13(sc).Render(), nil }},
		{"fig14", func() (string, error) { r, err := experiments.Fig14(sc); return render(r, err) }},
		{"recovery", func() (string, error) { r, err := experiments.Recovery(); return render(r, err) }},
		{"verifycost", func() (string, error) { r, err := experiments.VerifyCost(sc); return render(r, err) }},
		{"outofcore", func() (string, error) { r, err := experiments.OutOfCore(sc); return render(r, err) }},
		{"shardscale", func() (string, error) { return experiments.ShardScale(sc).Render(), nil }},
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		matched = true
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *traceFile != "" {
		twin, err := obs.WriteTraceFiles(tracer, *traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (chrome://tracing, Perfetto)  jsonl: %s  spans: %d  dropped: %d\n",
			*traceFile, twin, tracer.Len(), tracer.Dropped())
	}
	if *metrics {
		fmt.Printf("\nmetrics:\n%s", reg.RenderText())
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
