package experiments

import (
	"fmt"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

// Table3Cell holds one (configuration, system) measurement of the §6.2
// airline study as multipliers over a single standard Pig run.
type Table3Cell struct {
	LatencyUs int64
	Metrics   mapred.Metrics
	Attempts  int
	Verified  bool
}

// Table3Row pairs ClusterBFT (C) with the verify-final-output-only
// baseline (P) for one replication configuration.
type Table3Row struct {
	Label string
	C, P  Table3Cell
}

// Table3Result reproduces "ClusterBFT in the presence of Byzantine
// failures".
type Table3Result struct {
	Baseline Table3Cell // single pure-Pig run (divisor for multipliers)
	Rows     []Table3Row
}

// Render prints the paper's five measures as C/P multiplier pairs.
func (r *Table3Result) Render() string {
	header := []string{"measure"}
	for _, row := range r.Rows {
		header = append(header, row.Label+" C", row.Label+" P")
	}
	measure := func(name string, get func(Table3Cell) int64) []string {
		base := get(r.Baseline)
		cells := []string{name}
		for _, row := range r.Rows {
			cells = append(cells, ratio(get(row.C), base), ratio(get(row.P), base))
		}
		return cells
	}
	rows := [][]string{
		measure("Latency", func(c Table3Cell) int64 { return c.LatencyUs }),
		measure("CPU time", func(c Table3Cell) int64 { return c.Metrics.CPUTimeUs }),
		measure("File read", func(c Table3Cell) int64 { return c.Metrics.LocalBytesRead }),
		measure("File write", func(c Table3Cell) int64 { return c.Metrics.LocalBytesWritten }),
		measure("HDFS write", func(c Table3Cell) int64 { return c.Metrics.HDFSBytesWritten }),
	}
	return "Table 3: ClusterBFT under Byzantine failures (multipliers over one standard Pig run)\n" +
		table(header, rows)
}

// table3Config is one column pair of Table 3.
type table3Config struct {
	label    string
	r        int
	omission bool // case 2: a correct replica misses the verifier timeout
}

// Table3 reproduces §6.2: the airline multi-store query with f=1, two
// verification points (C) against final-output-only verification (P),
// under r ∈ {2, 3, 4}, with one node always producing commission faults.
// "r=3 case2" additionally makes a correct replica unresponsive so the
// verifier times out and re-initiates with a larger timeout.
func Table3(sc Scale) (*Table3Result, error) {
	data := workload.Airline(sc.AirlineRows, 0, sc.Seed+2)
	res := &Table3Result{}

	base := newRig(sc, workload.AirlinePath, data)
	lat, err := core.RunPlainOpts(base.eng, workload.AirlineScript, mapred.CompileOptions{
		NumReduces: 2, DisableCombine: sc.DisableCombine,
	})
	if err != nil {
		return nil, fmt.Errorf("table3 baseline: %w", err)
	}
	res.Baseline = Table3Cell{LatencyUs: lat, Metrics: base.eng.Metrics, Verified: true, Attempts: 1}

	configs := []table3Config{
		{label: "r=2", r: 2},
		{label: "r=3c1", r: 3},
		{label: "r=3c2", r: 3, omission: true},
		{label: "r=4", r: 4},
	}
	for _, tc := range configs {
		row := Table3Row{Label: tc.label}
		for _, finalOnly := range []bool{false, true} {
			cell, err := table3Run(sc, data, tc, finalOnly, res.Baseline.LatencyUs)
			if err != nil {
				return nil, fmt.Errorf("table3 %s finalOnly=%v: %w", tc.label, finalOnly, err)
			}
			if finalOnly {
				row.P = cell
			} else {
				row.C = cell
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func table3Run(sc Scale, data []string, tc table3Config, finalOnly bool, baselineUs int64) (Table3Cell, error) {
	r := newRig(sc, workload.AirlinePath, data)
	// One node always produces commission failures (§6.2).
	if err := r.cl.SetAdversary("node-001", cluster.FaultCommission, 1.0, sc.Seed+5); err != nil {
		return Table3Cell{}, err
	}
	if tc.omission {
		// "Correct" (non-lying) replicas that never respond: omission
		// nodes stall whichever replica touches them, so the verifier
		// times out waiting for f+1 matching digests and re-initiates
		// with a larger timeout (Table 3's case 2).
		for i, n := range []cluster.NodeID{"node-002", "node-003", "node-004"} {
			if err := r.cl.SetAdversary(n, cluster.FaultOmission, 0.7, sc.Seed+6+int64(i)); err != nil {
				return Table3Cell{}, err
			}
		}
	}
	cfg := core.Config{
		F: 1,
		R: tc.r,
		// Strong adversary model: verification points sit at data flow
		// between jobs (§4.1), which is also what makes ClusterBFT's
		// sub-graph granularity differ from P's whole-script granularity.
		Points:          2,
		Model:           analyze.Strong,
		VerifyFinalOnly: finalOnly,
		NumReduces:      2,
		// The verifier timeout sits modestly above an honest run's
		// duration — an operational choice; the paper's case-2 numbers
		// (~2.1x, not ~10x) imply a timeout of about one extra run. It
		// scales with the measured baseline so the same multiple holds
		// at every workload scale.
		TimeoutUs:   3 * baselineUs,
		MaxAttempts: 8,
		Offline:     true,
	}
	ctrl := r.controller(cfg)
	result, err := ctrl.Run(workload.AirlineScript)
	if err != nil {
		return Table3Cell{}, err
	}
	return Table3Cell{
		LatencyUs: result.LatencyUs,
		Metrics:   result.Metrics,
		Attempts:  result.Attempts,
		Verified:  result.Verified,
	}, nil
}
