package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if again := r.Counter("x.count"); again != c {
		t.Error("re-registering a counter name must return the same instrument")
	}
	g := r.Gauge("x.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", DurationBucketsUs)
	c.Add(5)
	c.Inc()
	g.Set(9)
	h.Observe(100)
	r.Func("d", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if r.Snapshot() != nil || r.RenderText() != "" {
		t.Error("nil registry must snapshot empty")
	}
	var tr *Tracer
	tr.Record("cat", "trk", "n", 0, 1)
	tr.Emit(Span{})
	tr.EnableWallClock(WallUnixMicros)
	if tr.Len() != 0 || tr.Spans() != nil || tr.WallNow() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer must be inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 100, 1001, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 5+10+11+99+100+1001+5000 {
		t.Fatalf("sum = %d", got)
	}
	wantCounts := []int64{2, 3, 0, 2} // le10, le100, le1000, inf
	for i, want := range wantCounts {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.mid").Set(3)
	r.Func("f.view", func() int64 { return 42 })
	r.Histogram("h.lat", []int64{10}).Observe(4)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != len(s2) {
		t.Fatal("snapshots differ in length")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("snapshot not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
		if i > 0 && s1[i-1].Name >= s1[i].Name {
			t.Fatalf("snapshot not name-sorted: %q >= %q", s1[i-1].Name, s1[i].Name)
		}
	}
	text := r.RenderText()
	for _, want := range []string{"a.first", "f.view", "h.lat_count", "h.lat_le_10", "h.lat_le_inf"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderText missing %q:\n%s", want, text)
		}
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	c := NewRegistry().Counter("c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
}
