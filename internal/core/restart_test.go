package core

import (
	"reflect"
	"sort"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
)

// TestOfflineRestartOnDeviantSource drives the offline-comparison repair
// path end to end: the first replica of the upstream sub-graph to finish
// is the corrupt one (honest nodes are stragglers), the downstream
// sub-graph optimistically consumes its output, and once verification
// identifies the real winner the downstream sub-graph must be restarted
// on the verified data and still produce the correct result.
func TestOfflineRestartOnDeviantSource(t *testing.T) {
	build := func(corrupt bool) (*harness, *Controller) {
		fs := dfs.New()
		fs.Append("data/weather", weatherData(2000)...)
		// Three nodes, three replicas: the replica-exclusion constraint
		// pins each replica to one node.
		cl := cluster.New(3, 3)
		if corrupt {
			// node-000 lies; the two honest nodes are 6x stragglers, so
			// the corrupt replica reliably completes first and becomes
			// the optimistic source for the downstream sub-graph.
			if err := cl.SetAdversary("node-000", cluster.FaultCommission, 1.0, 5); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < cl.Len(); i++ {
				adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, int64(i))
				adv.SlowFactor = 6
				cl.Nodes()[i].Adversary = adv
			}
		}
		cfg := DefaultConfig()
		cfg.R = 3
		susp := NewSuspicionTable(0)
		eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
		ctrl := NewController(eng, cfg, susp, nil)
		return &harness{fs: fs, cl: cl, eng: eng, ctrl: ctrl}, ctrl
	}

	honest, _ := build(false)
	honestRes, err := honest.ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	want := honest.outputLines(t, honestRes, "out/counts")

	h, ctrl := build(true)
	res, err := ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run did not verify")
	}
	if res.FaultyReplicas == 0 {
		t.Error("the lying replica was never flagged")
	}
	if res.Attempts <= res.Clusters {
		t.Errorf("downstream restart did not fire: attempts=%d clusters=%d", res.Attempts, res.Clusters)
	}
	got := h.outputLines(t, res, "out/counts")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output corrupted despite verification:\n got %v\nwant %v", got, want)
	}
	// node-000 must be under suspicion.
	if ctrl.Susp.Level("node-000") == 0 {
		t.Error("corrupt node not suspected")
	}
}

// TestConservativeModeNeverConsumesUnverified checks that with Offline
// disabled, downstream sub-graphs wait for verification, so a corrupt
// first-finisher costs latency but never a restart.
func TestConservativeModeNeverConsumesUnverified(t *testing.T) {
	fs := dfs.New()
	fs.Append("data/weather", weatherData(2000)...)
	cl := cluster.New(8, 3)
	if err := cl.SetAdversary("node-000", cluster.FaultCommission, 1.0, 5); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.R = 3
	cfg.Offline = false
	susp := NewSuspicionTable(0)
	eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := NewController(eng, cfg, susp, nil)
	res, err := ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	// Conservative mode: one attempt per sub-graph even with the fault
	// (r=3 outvotes it), since no optimistic work can be invalidated.
	if res.Attempts != res.Clusters {
		t.Errorf("attempts=%d clusters=%d; conservative mode should not restart", res.Attempts, res.Clusters)
	}
}

// TestSuspicionPersistsAcrossRuns checks the controller accumulates
// node history over a stream of scripts (how isolation sharpens, §4.3).
func TestSuspicionPersistsAcrossRuns(t *testing.T) {
	h := newHarness(t, 16, 3, DefaultConfig())
	if err := h.cl.SetAdversary("node-003", cluster.FaultCommission, 1.0, 11); err != nil {
		t.Fatal(err)
	}
	var levels []float64
	for i := 0; i < 3; i++ {
		if _, err := h.ctrl.Run(weatherScript); err != nil {
			t.Fatal(err)
		}
		levels = append(levels, h.ctrl.Susp.Level("node-003"))
	}
	if levels[len(levels)-1] == 0 {
		t.Fatalf("suspicion never rose: %v", levels)
	}
	// The fault analyzer keeps narrowing; suspects must always include
	// the culprit.
	found := false
	for _, s := range h.ctrl.FA.Suspects() {
		if s == "node-003" {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %v missing culprit", h.ctrl.FA.Suspects())
	}
}

// TestEngineSpeculationUnderController verifies the controller tolerates
// engines with speculative execution enabled (backups must not confuse
// digest matching: per-task digests come from whichever attempt wins).
func TestEngineSpeculationUnderController(t *testing.T) {
	fs := dfs.New()
	fs.Append("data/weather", weatherData(2000)...)
	cl := cluster.New(8, 3)
	adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 2)
	adv.SlowFactor = 15
	cl.Nodes()[2].Adversary = adv
	cfg := DefaultConfig()
	susp := NewSuspicionTable(0)
	eng := mapred.NewEngine(fs, cl, NewOverlapScheduler(susp), mapred.DefaultCostModel())
	eng.Speculation = true
	ctrl := NewController(eng, cfg, susp, nil)
	res, err := ctrl.Run(weatherScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("speculative engine run failed to verify")
	}
	if res.FaultyReplicas != 0 {
		t.Errorf("stragglers are benign; %d replicas flagged", res.FaultyReplicas)
	}
}

// TestFaultAnalyzerDisjointInvariant property-checks Fig 7's core
// invariant: members of D stay pairwise disjoint and non-empty under any
// report sequence.
func TestFaultAnalyzerDisjointInvariant(t *testing.T) {
	// Deterministic pseudo-random set stream.
	seq := []NodeSet{}
	x := uint32(12345)
	next := func(n int) uint32 { x = x*1664525 + 1013904223; return x % uint32(n) }
	for i := 0; i < 200; i++ {
		s := make(NodeSet)
		for j := 0; j < int(next(6))+1; j++ {
			s[cluster.NodeID(string(rune('a'+next(15))))] = true
		}
		seq = append(seq, s)
	}
	for _, f := range []int{1, 2, 3} {
		fa := NewFaultAnalyzer(f)
		for i, s := range seq {
			fa.Report(s)
			d := fa.Disjoint()
			for a := 0; a < len(d); a++ {
				if len(d[a]) == 0 {
					t.Fatalf("f=%d step %d: empty member of D", f, i)
				}
				for b := a + 1; b < len(d); b++ {
					if d[a].Intersects(d[b]) {
						t.Fatalf("f=%d step %d: D members intersect: %v %v",
							f, i, d[a].Sorted(), d[b].Sorted())
					}
				}
			}
		}
	}
}

// TestMatcherAgreementInvariants property-checks the verifier: majority
// and deviants partition the completed set, majority is at least f+1,
// and every majority member shares one fingerprint.
func TestMatcherAgreementInvariants(t *testing.T) {
	x := uint32(99)
	next := func(n int) uint32 { x = x*1664525 + 1013904223; return x % uint32(n) }
	for trial := 0; trial < 100; trial++ {
		f := int(next(3))
		m := NewMatcher(f)
		reps := int(next(5)) + 1
		completed := make([]int, 0, reps)
		for rep := 0; rep < reps; rep++ {
			completed = append(completed, rep)
			// Each replica reports 1-3 keys with one of two payloads.
			for k := 0; k < int(next(3))+1; k++ {
				payload := "x"
				if next(4) == 0 {
					payload = "y"
				}
				m.Add(report("s", rep, k, "t", 0, payload))
			}
		}
		maj, dev, ok := m.Agreement("s", completed)
		if !ok {
			continue
		}
		if len(maj) < f+1 {
			t.Fatalf("majority %v smaller than f+1=%d", maj, f+1)
		}
		if len(maj)+len(dev) != len(completed) {
			t.Fatalf("majority %v + deviants %v != completed %v", maj, dev, completed)
		}
		fp := m.Fingerprint("s", maj[0])
		for _, r := range maj[1:] {
			if m.Fingerprint("s", r) != fp {
				t.Fatal("majority members with different fingerprints")
			}
		}
		sorted := append([]int(nil), dev...)
		sort.Ints(sorted)
		if !reflect.DeepEqual(sorted, dev) {
			t.Fatal("deviants not sorted")
		}
	}
}
