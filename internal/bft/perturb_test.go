package bft

import (
	"fmt"
	"strings"
	"testing"
)

// TestPerturbedQuorumStillAgrees exercises the chaos injection hook:
// messages to and from one victim replica (within the f bound) are
// dropped, duplicated and delayed on a deterministic cycle, and the
// group must still agree on every operation in total order. Duplicated
// votes land in idempotent vote sets; drops are covered by the client's
// retransmission and the 2f+1 quorums.
func TestPerturbedQuorumStillAgrees(t *testing.T) {
	g, sms := newGroup(1)
	victim := ReplicaID(1)
	var n uint64
	g.Net.Perturb = func(from, to ID, _ Message) Perturbation {
		if from != victim && to != victim {
			return Perturbation{}
		}
		n++
		switch n % 4 {
		case 0:
			return Perturbation{Drop: true}
		case 1:
			return Perturbation{Dup: 1}
		case 2:
			return Perturbation{ExtraDelayUs: 7_000}
		}
		return Perturbation{}
	}
	for i := 0; i < 5; i++ {
		op := fmt.Sprintf("op-%d", i)
		res, _, err := g.Invoke([]byte(op))
		if err != nil {
			t.Fatalf("op %d under perturbation: %v", i, err)
		}
		if want := fmt.Sprintf("%d:%s", i+1, op); string(res) != want {
			t.Errorf("op %d result = %q, want %q", i, res, want)
		}
	}
	// Logs must stay prefix-consistent: the victim may lag, but no replica
	// may diverge from the agreed order.
	ref := sms[0].ops
	for _, sm := range sms {
		if len(sm.ops) > len(ref) {
			ref = sm.ops
		}
	}
	for i, sm := range sms {
		if got, want := strings.Join(sm.ops, ","), strings.Join(ref[:len(sm.ops)], ","); got != want {
			t.Errorf("replica %d log %q diverges from order %q", i, got, want)
		}
	}
}

// TestPerturbDropAllFromVictimIsSilentReplica checks the Drop form of a
// perturbation subsumes the silent-replica scenario.
func TestPerturbDropAllFromVictimIsSilentReplica(t *testing.T) {
	g, _ := newGroup(1)
	silent := ReplicaID(2)
	g.Net.Perturb = func(from, to ID, _ Message) Perturbation {
		return Perturbation{Drop: from == silent}
	}
	res, _, err := g.Invoke([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1:x" {
		t.Errorf("result = %q", res)
	}
}
