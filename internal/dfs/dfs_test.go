package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndExists(t *testing.T) {
	fs := New()
	if fs.Exists("a") {
		t.Fatal("fresh FS should be empty")
	}
	if err := fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a") {
		t.Error("created file should exist")
	}
	var exists *ErrExists
	if err := fs.Create("a"); !errors.As(err, &exists) {
		t.Errorf("second Create should fail with ErrExists, got %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	fs.Append("/data/in/", "x")
	if !fs.Exists("data/in") {
		t.Error("leading/trailing slashes should normalize")
	}
	lines, err := fs.ReadLines("/data/in")
	if err != nil || len(lines) != 1 {
		t.Errorf("ReadLines via alternate spelling: %v %v", lines, err)
	}
}

func TestAppendAndRead(t *testing.T) {
	fs := New()
	fs.Append("f", "one", "two")
	fs.Append("f", "three")
	lines, err := fs.ReadLines("f")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	if len(lines) != 3 {
		t.Fatalf("len = %d", len(lines))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestReadReturnsCopy(t *testing.T) {
	fs := New()
	fs.Append("f", "orig")
	lines, _ := fs.ReadLines("f")
	lines[0] = "mutated"
	again, _ := fs.ReadLines("f")
	if again[0] != "orig" {
		t.Error("ReadLines must return a copy")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	var nf *ErrNotFound
	if _, err := fs.ReadLines("ghost"); !errors.As(err, &nf) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	fs := New()
	fs.Append("f", "x")
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Error("deleted file still exists")
	}
	if err := fs.Delete("f"); err == nil {
		t.Error("deleting missing file should error")
	}
}

func TestDeleteTree(t *testing.T) {
	fs := New()
	fs.Append("out/part-00000", "a")
	fs.Append("out/part-00001", "b")
	fs.Append("outlier", "c")
	if n := fs.DeleteTree("out"); n != 2 {
		t.Errorf("DeleteTree removed %d, want 2", n)
	}
	if !fs.Exists("outlier") {
		t.Error("DeleteTree must not remove sibling with shared name prefix")
	}
}

func TestListPrefixBoundary(t *testing.T) {
	fs := New()
	fs.Append("job/a", "1")
	fs.Append("job/b", "2")
	fs.Append("jobx", "3")
	got := fs.List("job")
	if len(got) != 2 || got[0] != "job/a" || got[1] != "job/b" {
		t.Errorf("List(job) = %v", got)
	}
	if n := len(fs.List("")); n != 3 {
		t.Errorf("List(\"\") found %d files", n)
	}
}

func TestSizeAccounting(t *testing.T) {
	fs := New()
	fs.Append("f", "abc", "de") // 4 + 3 bytes with newlines
	sz, err := fs.Size("f")
	if err != nil || sz != 7 {
		t.Errorf("Size = %d, %v; want 7", sz, err)
	}
	if _, err := fs.Size("missing"); err == nil {
		t.Error("Size of missing file should error")
	}
}

func TestTreeSize(t *testing.T) {
	fs := New()
	fs.Append("d/a", "xx") // 3
	fs.Append("d/b", "y")  // 2
	fs.Append("e", "zzzz") // 5
	if got := fs.TreeSize("d"); got != 5 {
		t.Errorf("TreeSize(d) = %d, want 5", got)
	}
	if got := fs.TreeSize(""); got != 10 {
		t.Errorf("TreeSize(\"\") = %d, want 10", got)
	}
}

func TestLineCount(t *testing.T) {
	fs := New()
	fs.Append("f", "a", "b", "c")
	n, err := fs.LineCount("f")
	if err != nil || n != 3 {
		t.Errorf("LineCount = %d, %v", n, err)
	}
	if _, err := fs.LineCount("nope"); err == nil {
		t.Error("LineCount of missing file should error")
	}
}

func TestReadTreeOrder(t *testing.T) {
	fs := New()
	fs.Append("out/part-00001", "second")
	fs.Append("out/part-00000", "first")
	lines, err := fs.ReadTree("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "first" || lines[1] != "second" {
		t.Errorf("ReadTree = %v; want sorted part order", lines)
	}
}

func TestReadTreeMissing(t *testing.T) {
	fs := New()
	if _, err := fs.ReadTree("none"); err == nil {
		t.Error("ReadTree on empty prefix should error")
	}
}

func TestCounters(t *testing.T) {
	fs := New()
	fs.Append("f", "abcd") // 5 bytes
	if fs.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	fs.ReadLines("f")
	if fs.BytesRead() != 5 {
		t.Errorf("BytesRead = %d", fs.BytesRead())
	}
	fs.ResetCounters()
	if fs.BytesWritten() != 0 || fs.BytesRead() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
	if !fs.Exists("f") {
		t.Error("ResetCounters must not delete files")
	}
}

func TestConcurrentAppends(t *testing.T) {
	fs := New()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fs.Append(fmt.Sprintf("w%d", w), "line")
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		n, err := fs.LineCount(fmt.Sprintf("w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != workers*per {
		t.Errorf("total lines = %d, want %d", total, workers*per)
	}
}

func TestSizeMatchesBytesWrittenProperty(t *testing.T) {
	f := func(lines []string) bool {
		fs := New()
		sanitized := make([]string, len(lines))
		copy(sanitized, lines)
		fs.Append("f", sanitized...)
		if len(sanitized) == 0 {
			return fs.BytesWritten() == 0
		}
		sz, err := fs.Size("f")
		return err == nil && sz == fs.BytesWritten()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
