// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig9|fig10|table3|fig11|fig12|fig13|fig14|recovery|verifycost|outofcore]
//	            [-scale small|paper] [-combine=on|off] [-verify-policy=full|quiz|deferred|auto]
//	            [-block-size N] [-mem-budget 64m] [-spill-dir DIR] [-compress]
//	            [--trace=run.json] [--metrics]
//
// Each experiment prints rows shaped like the paper's (§6); see
// EXPERIMENTS.md for the mapping and the expected shapes. --trace
// collects every engine run's spans into one Chrome trace_event timeline
// (plus a .jsonl twin); --metrics prints the accumulated registry after
// all selected experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/experiments"
	"clusterbft/internal/mapred"
	"clusterbft/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig9, fig10, table3, fig11, fig12, fig13, fig14, recovery, verifycost, outofcore")
	scaleName := flag.String("scale", "small", "workload scale: small or paper")
	combine := flag.String("combine", "on", "map-side combiners: on or off (results are identical either way; latencies differ)")
	policyName := flag.String("verify-policy", "", "verification policy for every figure's controllers: full, quiz, deferred or auto (default: full)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline here (a .jsonl twin is written next to it)")
	metrics := flag.Bool("metrics", false, "print the accumulated metrics registry after the experiments")
	storageFlags := dfs.Flags(flag.CommandLine)
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
	}
	if *traceFile != "" {
		tracer = obs.NewTracer(0)
		tracer.EnableWallClock(obs.WallUnixMicros)
	}
	if reg != nil || tracer != nil {
		experiments.Observe = func(e *mapred.Engine) {
			e.InstrumentMetrics(reg)
			e.Trace = tracer
		}
	}

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	switch *combine {
	case "on":
	case "off":
		sc.DisableCombine = true
	default:
		fmt.Fprintf(os.Stderr, "bad -combine %q (want on or off)\n", *combine)
		os.Exit(2)
	}
	policy, err := core.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.VerifyPolicy = policy
	sc.Storage, err = storageFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runners := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig9", func() (string, error) { r, err := experiments.Fig9(sc); return render(r, err) }},
		{"fig10", func() (string, error) { r, err := experiments.Fig10(sc); return render(r, err) }},
		{"table3", func() (string, error) { r, err := experiments.Table3(sc); return render(r, err) }},
		{"fig11", func() (string, error) { return experiments.Fig11(sc).Render(), nil }},
		{"fig12", func() (string, error) { return experiments.Fig12(sc).Render(), nil }},
		{"fig13", func() (string, error) { return experiments.Fig13(sc).Render(), nil }},
		{"fig14", func() (string, error) { r, err := experiments.Fig14(sc); return render(r, err) }},
		{"recovery", func() (string, error) { r, err := experiments.Recovery(); return render(r, err) }},
		{"verifycost", func() (string, error) { r, err := experiments.VerifyCost(sc); return render(r, err) }},
		{"outofcore", func() (string, error) { r, err := experiments.OutOfCore(sc); return render(r, err) }},
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		matched = true
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if tracer != nil {
		twin, err := obs.WriteTraceFiles(tracer, *traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (chrome://tracing, Perfetto)  jsonl: %s  spans: %d  dropped: %d\n",
			*traceFile, twin, tracer.Len(), tracer.Dropped())
	}
	if reg != nil {
		fmt.Printf("\nmetrics:\n%s", reg.RenderText())
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
