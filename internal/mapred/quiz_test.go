package mapred

import (
	"strings"
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/pig"
)

// auditedRun compiles and executes a script with audit digests enabled on
// every job (as the controller does for quiz/deferred attempts) and
// returns the engine plus the primary's reports keyed for comparison.
func auditedRun(t *testing.T, script string, inputs map[string][]string, hook func(cluster.NodeID, *Task) TaskFault) (*Engine, []*JobSpec, map[digest.Key]digest.Sum) {
	t.Helper()
	fs := dfs.New()
	for path, lines := range inputs {
		fs.Append(path, lines...)
	}
	p, err := pig.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Compile(p, CompileOptions{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(4, 2), nil, DefaultCostModel())
	eng.TaskHook = hook
	primary := make(map[digest.Key]digest.Sum)
	eng.DigestSink = func(r digest.Report) {
		if r.Replica == 0 {
			primary[r.Key] = r.Sum
		}
	}
	for _, j := range jobs {
		j.SID = "s0"
		j.Audit = true
		for i := range j.Inputs {
			j.Inputs[i].AuditIn = true
		}
		if _, err := eng.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	return eng, jobs, primary
}

// requizAll re-executes every committed task of every job as a quiz and
// returns the quiz reports.
func requizAll(t *testing.T, eng *Engine, jobs []*JobSpec) []digest.Report {
	t.Helper()
	var quiz []digest.Report
	done := 0
	for _, j := range jobs {
		js := eng.Job(j.ID)
		if js == nil || !js.Done {
			t.Fatalf("job %s not done", j.ID)
		}
		for _, tid := range js.TaskIDs() {
			err := eng.Requiz(j.ID, tid, 1,
				func(r digest.Report) { quiz = append(quiz, r) },
				func() { done++ })
			if err != nil {
				t.Fatalf("requiz %s/%s: %v", j.ID, tid, err)
			}
		}
	}
	eng.Run() // drain the quiz completion events
	if int64(done) != eng.QuizTasks {
		t.Fatalf("done callbacks %d != QuizTasks %d", done, eng.QuizTasks)
	}
	return quiz
}

// TestRequizHonestMatches: re-executing an honest primary's tasks on the
// trusted tier reproduces its digests exactly — every quiz report's key
// was filed by the primary with an identical sum, and quiz evidence is
// stamped with the quiz replica index, never the primary's.
func TestRequizHonestMatches(t *testing.T) {
	eng, jobs, primary := auditedRun(t, followerSrc, map[string][]string{"in/edges": edges()}, nil)
	quiz := requizAll(t, eng, jobs)
	if len(quiz) == 0 {
		t.Fatal("no quiz reports")
	}
	for _, r := range quiz {
		if r.Replica != 1 {
			t.Fatalf("quiz report carries replica %d, want 1: %+v", r.Replica, r.Key)
		}
		ps, ok := primary[r.Key]
		if !ok {
			t.Errorf("quiz filed key the primary never reported: %+v", r.Key)
			continue
		}
		if ps != r.Sum {
			t.Errorf("honest quiz sum differs for %+v", r.Key)
		}
	}
	// CPU accounting stays consistent: quiz work is committed work.
	if eng.QuizTasks == 0 {
		t.Error("QuizTasks not counted")
	}
}

// TestRequizDetectsCorruption: when the primary's map tasks computed on
// tampered tuples, the honest re-execution's digests must differ — this
// is the mismatch the controller escalates on.
func TestRequizDetectsCorruption(t *testing.T) {
	hook := func(_ cluster.NodeID, tk *Task) TaskFault {
		if tk.Kind == MapTask {
			return TaskFault{Corrupt: cluster.Corrupt}
		}
		return TaskFault{}
	}
	eng, jobs, primary := auditedRun(t, followerSrc, map[string][]string{"in/edges": edges()}, nil)
	engC, jobsC, primaryC := auditedRun(t, followerSrc, map[string][]string{"in/edges": edges()}, hook)
	_ = eng
	_ = jobs
	if len(primaryC) != len(primary) {
		t.Logf("corrupt run filed %d keys, honest %d", len(primaryC), len(primary))
	}
	quiz := requizAll(t, engC, jobsC)
	mismatch := false
	for _, r := range quiz {
		if ps, ok := primaryC[r.Key]; ok && ps != r.Sum {
			mismatch = true
		}
	}
	if !mismatch {
		t.Error("honest re-execution matched a corrupted primary on every key")
	}
}

// TestRequizErrors pins the validation surface: unknown jobs, incomplete
// jobs and malformed task IDs are rejected.
func TestRequizErrors(t *testing.T) {
	eng, jobs, _ := auditedRun(t, followerSrc, map[string][]string{"in/edges": edges()}, nil)
	if err := eng.Requiz("nope", "m0-000", 1, nil, nil); err == nil {
		t.Error("unknown job accepted")
	}
	if err := eng.Requiz(jobs[0].ID, "zz-999", 1, nil, nil); err == nil {
		t.Error("malformed task ID accepted")
	}
	if err := eng.Requiz(jobs[0].ID, "m9-999", 1, nil, nil); err == nil {
		t.Error("out-of-range task accepted")
	}
}

// TestEngineForgetSID: dropping a sub-graph attempt removes its jobs,
// output registrations and ordering entries, while other sids survive.
func TestEngineForgetSID(t *testing.T) {
	fs := dfs.New()
	fs.Append("in/edges", edges()...)
	p, err := pig.Parse(followerSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fs, cluster.New(4, 2), nil, DefaultCostModel())
	var total int
	for _, sid := range []string{"sA", "sB"} {
		jobs, err := Compile(p, CompileOptions{NumReduces: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			j.SID = sid
			j.ID = sid + "/" + j.ID
			j.Output = sid + "/" + j.Output
			for i, d := range j.Deps {
				j.Deps[i] = sid + "/" + d
			}
			if _, err := eng.Submit(j); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	eng.Run()
	if got := eng.JobCount(); got != total {
		t.Fatalf("JobCount = %d, want %d", got, total)
	}
	eng.ForgetSID("sA")
	if got := eng.JobCount(); got != total/2 {
		t.Errorf("after forget sA: JobCount = %d, want %d", got, total/2)
	}
	// sB's jobs are intact and still in submission order.
	found := 0
	for _, j := range eng.jobOrder {
		if strings.HasPrefix(j, "sB/") {
			found++
		}
	}
	if found != total/2 {
		t.Errorf("sB jobs disturbed: %d of %d remain in order", found, total/2)
	}
	eng.ForgetSID("sB")
	if got := eng.JobCount(); got != 0 {
		t.Errorf("after forget sB: JobCount = %d, want 0", got)
	}
	if len(eng.jobOrder) != 0 {
		t.Errorf("jobOrder not emptied: %v", eng.jobOrder)
	}
}
