package core

import (
	"fmt"
	"strings"
)

// Explain renders the last run's replication structure: how the job DAG
// was cut into sub-graphs at the verification points, what each
// sub-graph contains, where its inputs came from, and how verification
// went. Valid after Run returns; used by cmd/clusterbft -explain.
func (c *Controller) Explain() string {
	if len(c.clusters) == 0 {
		return "core: no run to explain\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sub-graphs: %d\n", len(c.clusters))
	for _, cs := range c.clusters {
		status := "unverified"
		switch {
		case cs.verified:
			status = fmt.Sprintf("verified at %.2fs (winner replica %d)",
				float64(cs.verifiedAt)/1e6, cs.winner)
		case cs.failed:
			status = "FAILED"
		}
		kind := ""
		if cs.terminal {
			kind = " [final]"
		}
		fmt.Fprintf(&b, "c%d%s: attempts=%d r=%d %s\n", cs.id, kind, cs.totalTries, cs.r, status)
		if len(cs.upstream) > 0 {
			fmt.Fprintf(&b, "  reads from: ")
			for i, u := range cs.upstream {
				if i > 0 {
					b.WriteString(", ")
				}
				src, ok := cs.sources[u]
				if ok {
					fmt.Fprintf(&b, "c%d (replica %d", u, src.replica)
					if src.verified {
						b.WriteString(", verified")
					} else {
						b.WriteString(", optimistic")
					}
					b.WriteString(")")
				} else {
					fmt.Fprintf(&b, "c%d", u)
				}
			}
			b.WriteByte('\n')
		}
		for _, j := range cs.jobs {
			marker := ""
			if pts := j.Points(); len(pts) > 0 {
				marker = fmt.Sprintf("  points=%v", pts)
			}
			fmt.Fprintf(&b, "  job %s -> %s%s\n", j.ID, j.Output, marker)
		}
		for _, rs := range cs.replicas {
			state := "not completed"
			switch {
			case rs.faulty:
				state = "DEVIANT"
			case rs.completed:
				state = "completed"
			}
			fmt.Fprintf(&b, "  replica %d: %s, nodes=%d\n", rs.idx, state, len(rs.nodes))
		}
	}
	return b.String()
}
