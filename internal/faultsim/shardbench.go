package faultsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"clusterbft/internal/bft"
	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/digest"
)

// ShardBench drives the sharded verdict plane (core.VerdictPool) with a
// synthetic verdict workload at datacenter scale: hundreds of nodes,
// thousands of replicated sub-graph attempts, commission faults seeded
// onto a fixed set of Byzantine nodes. It exercises exactly the hot
// path the sharded control tier parallelizes — digest matching, online
// deviant detection, offline f+1 agreement — plus the merge layer the
// design keeps serial: cross-shard suspicion/FaultAnalyzer updates and
// global eviction, which feeds back into the placement of every
// subsequent batch (the scheduling machinery of this harness).
//
// Scaling is reported two ways. WallNs is the host wall-clock of the
// processing loop — honest but hardware-dependent (a single-core
// container cannot show parallel speedup). The deterministic numbers
// are work units: each shard counts the votes it scans (the O(votes)
// online comparison and fingerprinting), the producer counts one unit
// per submission and one per merged event. SpanUnits is the critical
// path with one core per shard — serial units plus the busiest
// pipeline — so SpanUnits(1)/SpanUnits(N) is the throughput scaling
// the partitioning achieves, byte-identical across runs and exactly
// reproducible at any shard count.

// ShardBenchConfig parameterizes one workload.
type ShardBenchConfig struct {
	Nodes          int     // untrusted tier size (the experiment uses 250+)
	Slots          int     // nodes per replica job cluster
	F              int     // fault tolerance; f+1 agreement
	Shards         int     // verdict pipelines
	Clusters       int     // replicated sub-graph attempts to verify
	Replicas       int     // replication degree r per attempt
	Keys           int     // digest chunks per replica stream
	FaultyNodes    int     // Byzantine node count
	CommissionProb float64 // per-replica corruption probability when a faulty node hosts it
	Threshold      float64 // suspicion eviction threshold (> 0 enables eviction)
	Batch          int     // attempts per merge round
	BFTSequence    bool    // order each shard's evidence batch through its own PBFT group
	Seed           int64
}

// DefaultShardBench is the scaling experiment's workload: 250 nodes,
// r=4 attempts over 48-chunk digest streams, a small Byzantine
// population, eviction on.
func DefaultShardBench() ShardBenchConfig {
	return ShardBenchConfig{
		Nodes:          250,
		Slots:          3,
		F:              1,
		Shards:         1,
		Clusters:       384,
		Replicas:       4,
		Keys:           48,
		FaultyNodes:    6,
		CommissionProb: 0.35,
		Threshold:      0.30,
		Batch:          32,
		Seed:           11,
	}
}

// ShardBenchResult summarizes one run. Every field except WallNs is
// deterministic for a fixed (config, seed).
type ShardBenchResult struct {
	Shards      int
	Reports     int    // digest reports submitted
	Verdicts    int    // agreement decisions computed shard-side
	Evidence    int    // deviant-replica events merged
	Convictions int    // |FaultAnalyzer single-node disjoint sets|
	Evicted     int    // nodes over the suspicion threshold
	WorkTotal   uint64 // sum of shard work units
	WorkMax     uint64 // busiest pipeline
	SerialUnits uint64 // producer submissions + merged events
	SpanUnits   uint64 // SerialUnits + WorkMax: critical path, one core per shard
	WallNs      int64
	BFTCommits  int
	// Fingerprint hashes the merged evidence stream (stamps, deviants,
	// verdicts) and the final suspicion/analyzer state. Equal
	// fingerprints across shard counts prove the cross-shard merge
	// reaches the single-shard verdict state.
	Fingerprint string
}

// ShardBench runs the workload and returns the measurements.
func ShardBench(cfg ShardBenchConfig) *ShardBenchResult {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	faulty := make(map[cluster.NodeID]bool, cfg.FaultyNodes)
	for _, i := range rng.Perm(cfg.Nodes)[:cfg.FaultyNodes] {
		faulty[nodeID(i)] = true
	}

	pool := core.NewVerdictPool(cfg.F, cfg.Shards, nil)
	defer pool.Close()
	fa := core.NewFaultAnalyzer(cfg.F)
	susp := core.NewSuspicionTable(cfg.Threshold)

	var net *bft.Network
	var groups []*bft.Group
	if cfg.BFTSequence {
		net = bft.NewNetwork()
		for s := 0; s < cfg.Shards; s++ {
			groups = append(groups, bft.NewGroupOn(net, fmt.Sprintf("shard-%d", s), cfg.F,
				func(int) bft.StateMachine { return &seqSM{} }))
		}
	}

	honest := func(c, k int) digest.Sum {
		return sha256.Sum256([]byte(fmt.Sprintf("c%d/k%d", c, k)))
	}
	res := &ShardBenchResult{Shards: cfg.Shards}
	fp := sha256.New()
	placement := make(map[string][][]cluster.NodeID)
	completed := make([]int, cfg.Replicas)
	for i := range completed {
		completed[i] = i
	}

	start := time.Now()
	for base := 0; base < cfg.Clusters; base += cfg.Batch {
		end := base + cfg.Batch
		if end > cfg.Clusters {
			end = cfg.Clusters
		}
		// Place this round's attempts on the nodes still in the
		// inclusion list: globally-decided evictions feed back into
		// every shard's scheduling. The eviction sequence is a pure
		// function of the merged evidence stream, so placement — and
		// with it the whole run — stays identical at any shard count.
		var included []int
		for i := 0; i < cfg.Nodes; i++ {
			if !susp.Excluded(nodeID(i)) {
				included = append(included, i)
			}
		}
		for c := base; c < end; c++ {
			sid := fmt.Sprintf("bench-c%d-a0", c)
			perm := rng.Perm(len(included))
			reps := make([][]cluster.NodeID, cfg.Replicas)
			for r := 0; r < cfg.Replicas; r++ {
				nodes := make([]cluster.NodeID, cfg.Slots)
				for s := 0; s < cfg.Slots; s++ {
					nodes[s] = nodeID(included[perm[(r*cfg.Slots+s)%len(perm)]])
				}
				sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
				reps[r] = nodes
			}
			placement[sid] = reps
			// A replica hosted on a Byzantine node corrupts a key subset
			// with CommissionProb (coins drawn unconditionally to keep
			// rng consumption placement-independent).
			corrupt := make([]bool, cfg.Replicas)
			for r := 0; r < cfg.Replicas; r++ {
				coin := rng.Float64()
				hostsFaulty := false
				for _, n := range reps[r] {
					if faulty[n] {
						hostsFaulty = true
					}
				}
				corrupt[r] = hostsFaulty && coin < cfg.CommissionProb
			}
			for k := 0; k < cfg.Keys; k++ {
				for r := 0; r < cfg.Replicas; r++ {
					sum := honest(c, k)
					if corrupt[r] && k%3 == 0 {
						sum = sha256.Sum256([]byte(fmt.Sprintf("bad/c%d/k%d/r%d", c, k, r)))
					}
					pool.Submit(digest.Report{
						Key:     digest.Key{SID: sid, Point: 1, Task: "m0", Chunk: k},
						Replica: r,
						Final:   k == cfg.Keys-1,
						Records: 1,
						Sum:     sum,
					})
					res.Reports++
					res.SerialUnits++
				}
			}
			pool.RequestVerdict(sid, completed)
			res.SerialUnits++
		}
		// Merge layer: drain all pipelines, apply evidence in global
		// stamp order, optionally sequencing each shard's batch through
		// its own BFT group first.
		events := pool.Sync()
		res.SerialUnits += uint64(len(events))
		if cfg.BFTSequence {
			res.BFTCommits += sequenceBatches(net, groups, events, fp)
		}
		for _, ev := range events {
			switch ev.Kind {
			case core.VerdictDeviant:
				nodes := placement[ev.SID][ev.Replica]
				susp.RecordFault(nodes)
				fa.Report(core.NewNodeSet(nodes...))
				res.Evidence++
				fmt.Fprintf(fp, "D|%d|%s|%d\n", ev.Stamp, ev.SID, ev.Replica)
			case core.VerdictDecision:
				res.Verdicts++
				fmt.Fprintf(fp, "V|%d|%s|%v|%v|%v\n", ev.Stamp, ev.SID, ev.OK, ev.Majority, ev.Deviants)
			}
		}
		for c := base; c < end; c++ {
			sid := fmt.Sprintf("bench-c%d-a0", c)
			pool.Forget(sid)
			delete(placement, sid)
		}
	}
	res.WallNs = time.Since(start).Nanoseconds()

	for _, w := range pool.Work() {
		res.WorkTotal += w
		if w > res.WorkMax {
			res.WorkMax = w
		}
	}
	res.SpanUnits = res.SerialUnits + res.WorkMax
	for _, n := range fa.Suspects() {
		fmt.Fprintf(fp, "S|%s\n", n)
	}
	res.Convictions = len(fa.Suspects())
	for i := 0; i < cfg.Nodes; i++ {
		if susp.Excluded(nodeID(i)) {
			res.Evicted++
			fmt.Fprintf(fp, "E|%s\n", nodeName(i))
		}
	}
	res.Fingerprint = hex.EncodeToString(fp.Sum(nil)[:12])
	return res
}

// sequenceBatches orders each shard's evidence batch through that
// shard's PBFT group, all groups running concurrently over the shared
// network; returns the number of agreed commits. The agreed results
// fold into the run fingerprint, so a diverging group breaks replay.
func sequenceBatches(net *bft.Network, groups []*bft.Group, events []core.VerdictEvent, fp hashWriter) int {
	batches := make([][]byte, len(groups))
	for _, ev := range events {
		if ev.Kind != core.VerdictDeviant {
			continue
		}
		batches[ev.Shard] = append(batches[ev.Shard],
			[]byte(fmt.Sprintf("%d|%s|%d\n", ev.Stamp, ev.SID, ev.Replica))...)
	}
	type outcome struct {
		shard  int
		result []byte
	}
	var results []outcome
	pending := 0
	for s, op := range batches {
		if len(op) == 0 {
			continue
		}
		s := s
		pending++
		if err := groups[s].Start(op, func(res []byte) {
			pending--
			results = append(results, outcome{shard: s, result: res})
		}); err != nil {
			panic(fmt.Sprintf("faultsim: shard %d bft start: %v", s, err))
		}
	}
	net.RunWhile(2_000_000, func() bool { return pending > 0 })
	if pending > 0 {
		panic("faultsim: bft sequencing did not settle")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].shard < results[j].shard })
	for _, r := range results {
		fmt.Fprintf(fp, "B|%d|%x\n", r.shard, sha256.Sum256(r.result))
	}
	return len(results)
}

type hashWriter interface {
	Write(p []byte) (int, error)
}

// seqSM is the replicated state machine of a shard's sequencing group:
// it appends each ordered evidence batch to a running log digest, so
// equal results across replicas certify equal evidence order.
type seqSM struct {
	log digest.Sum
}

func (m *seqSM) Apply(op []byte) []byte {
	h := sha256.New()
	h.Write(m.log[:])
	h.Write(op)
	h.Sum(m.log[:0])
	return append([]byte(nil), m.log[:8]...)
}
