// Package mapred is the MapReduce substrate ClusterBFT runs on: a
// compiler from pig logical plans to MapReduce job DAGs, and a
// deterministic virtual-time execution engine modeled on Hadoop 1.x
// (paper §5.1) — a central job tracker, per-node task trackers with task
// slots, heartbeat-driven pluggable task scheduling, a hash-partitioned
// shuffle, and byte/CPU accounting. Tasks perform the real data
// transformation (so verification digests are computed over real bytes)
// while time advances on a discrete-event clock, which keeps experiments
// reproducible and lets replicas run "in parallel" regardless of host
// CPUs.
package mapred

import (
	"fmt"

	"clusterbft/internal/cluster"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// PhysKind enumerates physical operators in map/reduce operator chains.
type PhysKind uint8

const (
	// PhysFilter drops tuples failing a predicate.
	PhysFilter PhysKind = iota + 1
	// PhysProject evaluates a GENERATE list of scalar expressions.
	PhysProject
	// PhysDigest feeds tuples through a verification-point digest.
	PhysDigest
	// PhysLimit caps the local stream at N tuples (only sound in
	// single-reduce chains, which is where the compiler places it).
	PhysLimit
	// PhysSample keeps a deterministic hash-selected fraction of
	// tuples: the same tuple stream samples identically on every
	// replica, keeping digests comparable.
	PhysSample
)

// String names the physical operator.
func (k PhysKind) String() string {
	switch k {
	case PhysFilter:
		return "filter"
	case PhysProject:
		return "project"
	case PhysDigest:
		return "digest"
	case PhysLimit:
		return "limit"
	case PhysSample:
		return "sample"
	default:
		return "phys(?)"
	}
}

// Op is one physical operator.
type Op struct {
	Kind     PhysKind
	Pred     pig.Expr      // PhysFilter
	Gens     []pig.GenItem // PhysProject (non-aggregate items only)
	Point    int           // PhysDigest: verification-point vertex ID
	Limit    int64         // PhysLimit
	Fraction float64       // PhysSample keep fraction
}

// JobInput is one input of a job: a DFS path (file or part-file tree),
// its schema, the map-side operator chain, and — for shuffle jobs — the
// key columns extracted from the post-chain tuple.
type JobInput struct {
	Path   string
	Schema *tuple.Schema
	Ops    []Op
	// KeyCols are the shuffle key column indices in the post-Ops tuple;
	// nil for map-only jobs. An empty non-nil slice means a constant key
	// (GROUP ALL / global sort).
	KeyCols []int
	// Tag distinguishes join sides (0 = left, 1 = right); -1 otherwise.
	Tag int
	// AuditIn marks an input produced by another job of the same
	// submission whose storage-boundary bytes should be digested on read
	// (see JobSpec.Audit). Raw source inputs stay unaudited: the trusted
	// store serves them identically to every replica.
	AuditIn bool
}

// Audit digest points. Plan vertex IDs are non-negative, so negative
// Point values give audit digests a namespace disjoint from every
// verification point the compiler can instrument. The Task field carries
// the job's base ID (the spec ID after the last '/') so streams from
// different jobs of one sub-graph never collide even when their task IDs
// ("m0-000", "r000") do.
const (
	// AuditTaskPoint digests a task's full output (shuffle partitions or
	// final lines); Task is "<job>/<task>". Quiz verification compares a
	// re-executed task's digests — these plus the task's in-chain
	// verification-point digests — against the primary's.
	AuditTaskPoint = -1
	// AuditIOOutPoint digests a job's output as produced, before the
	// storage layer sees it; Task is "<job>".
	AuditIOOutPoint = -2
	// AuditIOInPoint digests an input exactly as read back from storage;
	// Task is "<job>/in<i>". A mismatch against the producer's
	// AuditIOOutPoint digest convicts the storage boundary (write or
	// read tampering) without a second replica.
	AuditIOInPoint = -3
	// CkptPoint digests a checkpoint-eligible job's output as produced
	// (same bytes as AuditIOOutPoint but emitted on the full-r path);
	// Task is "<job>". The controller's checkpoint registry persists a
	// replica's output only once f+1 replicas agree on this digest, so a
	// checkpoint can never contain bytes that verification would reject.
	CkptPoint = -4
)

// ReduceKind enumerates reduce cores.
type ReduceKind uint8

const (
	// ReduceAggregate groups by key and evaluates aggregate GENERATE
	// items (GROUP ... + FOREACH ... GENERATE).
	ReduceAggregate ReduceKind = iota + 1
	// ReduceJoin emits the cross product of the two tag groups per key.
	ReduceJoin
	// ReduceDistinct emits one tuple per distinct key (key = whole
	// tuple).
	ReduceDistinct
	// ReduceSort collects everything, sorts by OrderBy (empty OrderBy
	// preserves deterministic input order, used for bare LIMIT) and
	// emits; always runs with a single reduce task.
	ReduceSort
)

// String names the reduce core.
func (k ReduceKind) String() string {
	switch k {
	case ReduceAggregate:
		return "aggregate"
	case ReduceJoin:
		return "join"
	case ReduceDistinct:
		return "distinct"
	case ReduceSort:
		return "sort"
	default:
		return "reduce(?)"
	}
}

// ReduceSpec describes the reduce side of a shuffle job.
type ReduceSpec struct {
	Kind    ReduceKind
	Gens    []pig.GenItem  // ReduceAggregate: bound GENERATE items
	OrderBy []pig.OrderKey // ReduceSort
	PostOps []Op           // applied to core output before writing
	// Combine enables the map-side combiner: map tasks fold post-digest
	// records into per-partition tables keyed by the canonical shuffle
	// key and emit one partial-state record per (partition, key), which
	// the reduce side merges. The compiler sets it only for
	// ReduceAggregate jobs whose generators are all algebraic
	// (pig.Aggregate.Algebraic) and for ReduceDistinct jobs, where the
	// merged result is byte-identical to the uncombined fold. Digesting
	// happens before combining (map chains run first), so verification
	// points observe the same stream either way.
	Combine bool
}

// JobSpec is one MapReduce job. Specs are produced by Compile with
// script-relative IDs and paths; ClusterBFT's request handler clones and
// rewrites them per replica (sub-graph id, replica index, path prefixes).
type JobSpec struct {
	ID      string // unique within one submission namespace
	SID     string // sub-graph identifier shared by all replicas (§4.1)
	Replica int    // replica index within the sub-graph
	Deps    []string
	Inputs  []JobInput
	Reduce  *ReduceSpec // nil: map-only job
	// NumReduces is the reduce-task count; all replicas of a job are
	// configured with the same value (§4.1) so task identities align.
	NumReduces int
	Output     string // DFS directory receiving part files
	OutVertex  int    // plan vertex whose output this job materializes
	Final      bool   // materializes a STORE (counts as HDFS write)
	// Audit enables the engine's audit digests for this job: per-task
	// output digests (AuditTaskPoint) and storage-boundary I/O digests
	// (AuditIOOutPoint/AuditIOInPoint). The controller sets it on
	// replicas verified by quiz or deferred policies; full-r replicas
	// run without it and stay byte-identical to historical behavior.
	Audit bool
	// Ckpt enables checkpoint capture: the engine retains the job's
	// as-produced output lines in memory and emits a CkptPoint digest at
	// completion, which lets the controller persist an f+1-agreed copy
	// for suffix-only recovery. Set only for full-r replicas of jobs
	// with in-cluster dependents when checkpointing is on.
	Ckpt bool
}

// Clone deep-copies the spec so per-replica rewrites don't alias.
// Expression trees inside Ops/Gens are shared: they are bound once at
// parse time and evaluated read-only afterwards.
func (j *JobSpec) Clone() *JobSpec {
	c := *j
	c.Deps = append([]string(nil), j.Deps...)
	c.Inputs = make([]JobInput, len(j.Inputs))
	for i, in := range j.Inputs {
		ci := in
		ci.Ops = append([]Op(nil), in.Ops...)
		if in.KeyCols != nil { // preserve nil (map-only) vs empty (constant key)
			ci.KeyCols = make([]int, len(in.KeyCols))
			copy(ci.KeyCols, in.KeyCols)
		}
		c.Inputs[i] = ci
	}
	if j.Reduce != nil {
		r := *j.Reduce
		r.Gens = append([]pig.GenItem(nil), j.Reduce.Gens...)
		r.OrderBy = append([]pig.OrderKey(nil), j.Reduce.OrderBy...)
		r.PostOps = append([]Op(nil), j.Reduce.PostOps...)
		c.Reduce = &r
	}
	return &c
}

// Points returns the verification-point vertex IDs instrumented anywhere
// in the job, in first-appearance order.
func (j *JobSpec) Points() []int {
	seen := make(map[int]bool)
	var out []int
	add := func(ops []Op) {
		for _, op := range ops {
			if op.Kind == PhysDigest && !seen[op.Point] {
				seen[op.Point] = true
				out = append(out, op.Point)
			}
		}
	}
	for _, in := range j.Inputs {
		add(in.Ops)
	}
	if j.Reduce != nil {
		add(j.Reduce.PostOps)
	}
	return out
}

// String renders a short description.
func (j *JobSpec) String() string {
	kind := "map-only"
	if j.Reduce != nil {
		kind = j.Reduce.Kind.String()
	}
	return fmt.Sprintf("%s[%s->%s %s r=%d]", j.ID, j.SID, j.Output, kind, j.NumReduces)
}

// TaskKind separates map and reduce tasks.
type TaskKind uint8

// Task kinds.
const (
	MapTask TaskKind = iota + 1
	ReduceTask
)

// String names the task kind.
func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// Task is one schedulable unit: a map task over one input split or a
// reduce task over one partition.
type Task struct {
	Job      *JobState
	Kind     TaskKind
	InputIdx int // map: which JobInput
	Index    int // map: split index within the input; reduce: partition

	// Home is the node that "hosts" the task's input split; schedulers
	// may prefer local placement.
	Home cluster.NodeID
}

// ID returns the task identity, stable across replicas of the same job:
// "m<input>-<split>" or "r<partition>".
func (t *Task) ID() string {
	if t.Kind == MapTask {
		return fmt.Sprintf("m%d-%03d", t.InputIdx, t.Index)
	}
	return fmt.Sprintf("r%03d", t.Index)
}

// String renders "jobid/taskid".
func (t *Task) String() string {
	return t.Job.Spec.ID + "/" + t.ID()
}
