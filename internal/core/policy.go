package core

import (
	"fmt"
)

// Policy selects how a sub-graph's execution is verified. The classic
// ClusterBFT mode replicates every sub-graph r times and matches f+1
// digest vectors; the quiz and deferred policies trade that worst-case
// replication for "1+ε" cost on healthy clusters, escalating back to
// full replication the moment evidence of a fault appears. The ideas
// follow the partial re-execution literature (quiz tasks re-executed
// against recorded inter-stage data; single execution with escalate-on-
// mismatch) composed with this repo's existing digest machinery:
// digests are taken before combining and before storage, so a single
// re-executed task or a storage-boundary stream is directly comparable
// without replaying the whole sub-graph.
type Policy uint8

// Verification policies.
const (
	// PolicyFull is today's behavior: r replicas, f+1 digest agreement.
	PolicyFull Policy = iota + 1
	// PolicyQuiz runs one primary replica and verifies it by re-executing
	// a sampled set of its tasks ("quizzes") on the trusted tier; the
	// recomputed digests must match the primary's reported ones, and the
	// storage-boundary audit digests must be self-consistent. Any
	// mismatch escalates to full replication via the retry machinery.
	PolicyQuiz
	// PolicyDeferred runs one primary replica and verifies it
	// optimistically at completion (downstream work proceeds
	// immediately); quizzes still run and a quiz mismatch — or a
	// downstream sub-graph observing a digest conflict on the shared
	// boundary — revokes the verification and escalates to full
	// replication with a restart cascade.
	PolicyDeferred
	// PolicyAuto lets the graph analyzer choose per sub-graph from
	// suspicion history: any Med/High-suspicion node still on the
	// inclusion list forces PolicyFull, a Low-suspicion history picks
	// PolicyQuiz, and a clean cluster runs PolicyDeferred.
	PolicyAuto
)

// String names the policy with the CLI flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyFull:
		return "full"
	case PolicyQuiz:
		return "quiz"
	case PolicyDeferred:
		return "deferred"
	case PolicyAuto:
		return "auto"
	default:
		return "policy(?)"
	}
}

// ParsePolicy parses the -verify-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "full", "full-r":
		return PolicyFull, nil
	case "quiz":
		return PolicyQuiz, nil
	case "deferred":
		return PolicyDeferred, nil
	case "auto":
		return PolicyAuto, nil
	default:
		return 0, fmt.Errorf("core: unknown verify policy %q (want full, quiz, deferred or auto)", s)
	}
}

// decidePolicy resolves the configured policy for one sub-graph launch.
// PolicyAuto consults the suspicion table: excluded nodes get no work
// anyway, so only nodes still on the inclusion list argue for caution.
func (c *Controller) decidePolicy() Policy {
	p := c.Cfg.VerifyPolicy
	if p == 0 {
		return PolicyFull
	}
	if p != PolicyAuto {
		return p
	}
	worst := None
	for _, n := range c.Eng.Cluster.Nodes() {
		if c.Susp.Excluded(n.ID) {
			continue
		}
		if cat := c.Susp.CategoryOf(n.ID); cat > worst {
			worst = cat
		}
	}
	switch {
	case worst >= Med:
		return PolicyFull
	case worst == Low:
		return PolicyQuiz
	default:
		return PolicyDeferred
	}
}

// quizPick deterministically samples the quiz set: a task is quizzed iff
// an FNV-1a hash of (sid, job, task) lands under fraction. Hashing the
// sid means every attempt resamples — a faulty node cannot learn which
// tasks escape quizzing — while the draw stays byte-replayable for a
// fixed schedule.
func quizPick(sid, job, tid string, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	fold(sid)
	fold(job)
	fold(tid)
	const buckets = 1 << 20
	return h%buckets < uint64(fraction*buckets)
}
