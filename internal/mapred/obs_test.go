package mapred

import (
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/obs"
)

// stragglerRun executes the slot fixture with a slow node and
// speculation enabled, returning the engine after the run settles.
func stragglerRun(t *testing.T, workers int, mutate func(*Engine)) *Engine {
	t.Helper()
	eng, jobs := slotFixture(t, 25000)
	eng.Workers = workers
	eng.Speculation = true
	adv := cluster.NewAdversary(cluster.FaultSlow, 1.0, 2)
	adv.SlowFactor = 25
	eng.Cluster.Nodes()[2].Adversary = adv
	if mutate != nil {
		mutate(eng)
	}
	js, err := eng.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !js.Done {
		t.Fatal("job incomplete")
	}
	return eng
}

// TestMetricsEqualAcrossPoolSizes pins the speculation audit of the
// Metrics struct: losing and speculative attempts must be accounted
// identically no matter how many host workers compute task bodies, so
// every field — RecordsIn, HDFSBytesRead, CPUTimeUs included — is equal
// between a serial run and an 8-worker run of the same straggler
// workload. A leak of a losing replica's effects into committed totals
// would show up here as pool-size-dependent metrics.
func TestMetricsEqualAcrossPoolSizes(t *testing.T) {
	a := stragglerRun(t, 1, nil)
	b := stragglerRun(t, 8, nil)
	if a.Metrics.SpeculativeTasks == 0 {
		t.Skip("no speculation triggered in this layout")
	}
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ across pool sizes:\n  workers=1 %+v\n  workers=8 %+v",
			a.Metrics, b.Metrics)
	}
}

// TestCPUSplitAccountsEveryAttempt pins the committed/lost CPU split the
// registry adds on top of the struct: CPUTimeUs (which deliberately
// includes losing attempts — a pinned semantic) must decompose exactly
// into committed plus lost, and a straggler run must lose some work.
func TestCPUSplitAccountsEveryAttempt(t *testing.T) {
	reg := obs.NewRegistry()
	eng := stragglerRun(t, 4, func(e *Engine) { e.InstrumentMetrics(reg) })
	if eng.Metrics.SpeculativeTasks == 0 {
		t.Skip("no speculation triggered in this layout")
	}
	committed := reg.Counter("mapred.cpu_committed_us").Value()
	lost := reg.Counter("mapred.cpu_lost_us").Value()
	if committed+lost != eng.Metrics.CPUTimeUs {
		t.Errorf("committed %d + lost %d != CPUTimeUs %d",
			committed, lost, eng.Metrics.CPUTimeUs)
	}
	if lost == 0 {
		t.Error("straggler+speculation run lost no CPU")
	}
	if committed >= eng.Metrics.CPUTimeUs {
		t.Error("committed CPU must exclude losing attempts")
	}
}

// TestRegistryViewMatchesStruct checks the mapred.metrics.* Func views
// read the live struct fields, and that attaching observability does not
// perturb the run itself.
func TestRegistryViewMatchesStruct(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	instrumented := stragglerRun(t, 2, func(e *Engine) {
		e.InstrumentMetrics(reg)
		e.Trace = tracer
	})
	plain := stragglerRun(t, 2, nil)
	if instrumented.Metrics != plain.Metrics {
		t.Errorf("attaching observability changed the run:\n  with %+v\n  without %+v",
			instrumented.Metrics, plain.Metrics)
	}
	m := instrumented.Metrics
	want := map[string]int64{
		"mapred.metrics.cpu_time_us":       m.CPUTimeUs,
		"mapred.metrics.map_tasks":         m.MapTasks,
		"mapred.metrics.reduce_tasks":      m.ReduceTasks,
		"mapred.metrics.records_in":        m.RecordsIn,
		"mapred.metrics.records_out":       m.RecordsOut,
		"mapred.metrics.hdfs_bytes_read":   m.HDFSBytesRead,
		"mapred.metrics.jobs_completed":    m.JobsCompleted,
		"mapred.metrics.speculative_tasks": m.SpeculativeTasks,
	}
	got := make(map[string]int64)
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}
	// Data-plane counters threaded into task bodies count every attempt,
	// so they are at least the committed record totals.
	if got["mapred.task.map_records"] < m.RecordsIn {
		t.Errorf("task map_records %d < committed RecordsIn %d",
			got["mapred.task.map_records"], m.RecordsIn)
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no spans")
	}
}
