package mapred

// Micro-benchmarks for the per-record data plane: codec encode/decode,
// shuffle hashing (partition + sample), map-task execution, each reduce
// kind, and digest chunking. Every benchmark processes a fixed batch of
// records per iteration and reports allocations, so allocs/op is the
// per-batch allocation count tracked in BENCH_dataplane.json
// (scripts/bench_dataplane.sh regenerates it; EXPERIMENTS.md records the
// trajectory).

import (
	"fmt"
	"testing"

	"clusterbft/internal/dfs"
	"clusterbft/internal/digest"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

const benchBatch = 1000

// benchEdgeLines generates benchBatch deterministic edge records shaped
// like the Twitter workload (user\tfollower, ~200 hot keys).
func benchEdgeLines() []string {
	lines := make([]string, benchBatch)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%200, (i*7919+13)%benchBatch)
	}
	return lines
}

func benchTuples() []tuple.Tuple {
	rows := make([]tuple.Tuple, benchBatch)
	for i := range rows {
		rows[i] = tuple.Tuple{
			tuple.Int(int64(i % 200)),
			tuple.Str(fmt.Sprintf("payload-col-%d", i)),
			tuple.Int(int64(i * 7)),
		}
	}
	return rows
}

func benchCompile(b *testing.B, src string, opts CompileOptions) []*JobSpec {
	b.Helper()
	p, err := pig.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := Compile(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

// benchShuffleRuns runs the map side of a compiled single-reduce job
// over deterministic input lines and returns the sorted runs feeding
// reduce partition 0, one per map task (NumReduces must be 1 so nothing
// is lost), plus the total record count.
func benchShuffleRuns(b *testing.B, job *JobSpec, inputs map[int][]string) ([][]interRec, int) {
	b.Helper()
	var runs [][]interRec
	total := 0
	for idx := range job.Inputs {
		out := runMapTask(job, idx, inputs[idx], nil, nil, taskObs{})
		for _, part := range out.partitions {
			runs = append(runs, part)
			total += len(part)
		}
	}
	return runs, total
}

func BenchmarkDataplaneCodecEncode(b *testing.B) {
	rows := benchTuples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			_ = tuple.EncodeLine(r)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneCanonicalAppend(b *testing.B) {
	rows := benchTuples()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			buf = tuple.AppendCanonical(buf[:0], r)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneCodecDecodePlain(b *testing.B) {
	lines := benchEdgeLines()
	schema := tuple.NewSchema("user", "follower")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lines {
			_ = tuple.DecodeLine(l, schema)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneCodecDecodeEscaped(b *testing.B) {
	lines := make([]string, benchBatch)
	for i := range lines {
		lines[i] = tuple.EncodeLine(tuple.Tuple{
			tuple.Str(fmt.Sprintf("a\tb-%d", i)),
			tuple.Str("c\nd\\e"),
		})
	}
	var dec tuple.Decoder // the per-task decoder runMapTask uses
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lines {
			_ = dec.DecodeLine(l, nil)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

// benchBlockLines generates benchBatch three-column records shaped like
// the weather workload (hot station keys, small ints, short strings) —
// the regime the columnar block codec targets.
func benchBlockLines() []string {
	lines := make([]string, benchBatch)
	for i := range lines {
		lines[i] = fmt.Sprintf("station-%03d\t%d\tclear-%d", i%50, 20+i%7, i%3)
	}
	return lines
}

func BenchmarkDataplaneBlockEncode(b *testing.B) {
	lines := benchBlockLines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dfs.EncodeBlock(lines, false)
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneBlockDecode(b *testing.B) {
	data := dfs.EncodeBlock(benchBlockLines(), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dfs.DecodeBlock(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

// BenchmarkDataplaneSpillRoundTrip drives the full out-of-core path per
// op: append the batch into a budgeted FS (sealing compressed blocks and
// spilling them to disk), then stream every record back.
func BenchmarkDataplaneSpillRoundTrip(b *testing.B) {
	lines := benchBlockLines()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.NewWith(dfs.Options{BlockSize: 4 << 10, MemBudget: 8 << 10, SpillDir: dir, Compress: true})
		for off := 0; off < len(lines); off += 100 {
			end := off + 100
			if end > len(lines) {
				end = len(lines)
			}
			fs.Append("bench/in", lines[off:end]...)
		}
		r, err := fs.OpenReader("bench/in")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			batch, ok := r.Next()
			if !ok {
				break
			}
			n += len(batch)
		}
		if n != len(lines) {
			b.Fatalf("round-trip lost records: %d != %d", n, len(lines))
		}
		if err := fs.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplanePartitionOf(b *testing.B) {
	keys := make([]string, benchBatch)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i%200)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			_ = partitionOf(k, 16)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneSampleKeep(b *testing.B) {
	rows := benchTuples()
	var scratch []byte // the opChain's per-task scratch, modelled here
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			scratch = tuple.AppendCanonical(scratch[:0], r)
			_ = sampleKeepHash(scratch, 0.5)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

// BenchmarkDataplaneMapTaskShuffle is the full uncombined map hot path
// of the follower job: decode, filter, key extraction, partitioning,
// run sort.
func BenchmarkDataplaneMapTaskShuffle(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 4, DisableCombine: true})[0]
	lines := benchEdgeLines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runMapTask(job, 0, lines, nil, nil, taskObs{})
	}
	b.ReportMetric(benchBatch, "records/op")
}

// benchHotKeyLines generates benchBatch edge records over 16 distinct
// keys — the combiner's target regime, where shuffle volume collapses
// from O(records) to O(keys).
func benchHotKeyLines() []string {
	lines := make([]string, benchBatch)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%16, (i*7919+13)%benchBatch)
	}
	return lines
}

// BenchmarkDataplaneMapTaskCombine is the combining map hot path of the
// follower job at 16 distinct keys: decode, filter, digest-free chain,
// combiner fold, partial emit, run sort.
func BenchmarkDataplaneMapTaskCombine(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 4})[0]
	lines := benchHotKeyLines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runMapTask(job, 0, lines, nil, nil, taskObs{})
	}
	b.ReportMetric(benchBatch, "records/op")
}

// BenchmarkDataplaneMapTaskCombineOff is the same workload with the
// combiner disabled, the baseline for the shuffle-volume comparison.
func BenchmarkDataplaneMapTaskCombineOff(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 4, DisableCombine: true})[0]
	lines := benchHotKeyLines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runMapTask(job, 0, lines, nil, nil, taskObs{})
	}
	b.ReportMetric(benchBatch, "records/op")
}

// BenchmarkDataplaneMapTaskMapOnly exercises the map-only output path
// (decode, filter, project, encode).
func BenchmarkDataplaneMapTaskMapOnly(b *testing.B) {
	job := benchCompile(b, `
a = LOAD 'in/edges' AS (user:int, follower:int);
f = FILTER a BY follower != 0;
p = FOREACH f GENERATE user, user * follower AS prod;
STORE p INTO 'out/prod';
`, CompileOptions{})[0]
	lines := benchEdgeLines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runMapTask(job, 0, lines, nil, nil, taskObs{})
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneReduceAggregate(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 1, DisableCombine: true})[0]
	runs, total := benchShuffleRuns(b, job, map[int][]string{0: benchEdgeLines()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "records/op")
}

// BenchmarkDataplaneReduceMergeSorted merges combined partial-state
// runs — the reduce side of the combining path at 16 distinct keys.
// Input records per op are the map batch, so throughput is comparable
// against ReduceMergeSortedOff, which merges the uncombined runs of the
// same map batch.
func BenchmarkDataplaneReduceMergeSorted(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 1})[0]
	runs, _ := benchShuffleRuns(b, job, map[int][]string{0: benchHotKeyLines()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneReduceMergeSortedOff(b *testing.B) {
	job := benchCompile(b, followerSrc, CompileOptions{NumReduces: 1, DisableCombine: true})[0]
	runs, _ := benchShuffleRuns(b, job, map[int][]string{0: benchHotKeyLines()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchBatch, "records/op")
}

func BenchmarkDataplaneReduceJoin(b *testing.B) {
	job := benchCompile(b, `
a = LOAD 'in/left' AS (user:int, follower:int);
b = LOAD 'in/right' AS (user:int, follower:int);
j = JOIN a BY follower, b BY user;
STORE j INTO 'out/joined';
`, CompileOptions{NumReduces: 1})[0]
	runs, total := benchShuffleRuns(b, job, map[int][]string{
		0: benchEdgeLines(),
		1: benchEdgeLines(),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "records/op")
}

func BenchmarkDataplaneReduceDistinct(b *testing.B) {
	job := benchCompile(b, `
a = LOAD 'in/edges' AS (user:int, follower:int);
d = DISTINCT a;
STORE d INTO 'out/distinct';
`, CompileOptions{NumReduces: 1, DisableCombine: true})[0]
	runs, total := benchShuffleRuns(b, job, map[int][]string{0: benchEdgeLines()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "records/op")
}

func BenchmarkDataplaneReduceSort(b *testing.B) {
	job := benchCompile(b, `
a = LOAD 'in/edges' AS (user:int, follower:int);
o = ORDER a BY follower DESC, user;
STORE o INTO 'out/sorted';
`, CompileOptions{NumReduces: 1})[0]
	runs, total := benchShuffleRuns(b, job, map[int][]string{0: benchEdgeLines()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReduceTask(job.Reduce, runs, nil, taskObs{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "records/op")
}

// BenchmarkDataplaneDigestChunked streams the batch through a chunked
// digest writer (d=100), the §6.4 verification hot path.
func BenchmarkDataplaneDigestChunked(b *testing.B) {
	rows := benchTuples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := digest.NewWriter(digest.Key{SID: "s0", Point: 1, Task: "m000"}, 0, 100, func(digest.Report) {})
		for _, r := range rows {
			w.Add(r)
		}
		w.Close()
	}
	b.ReportMetric(benchBatch, "records/op")
}

// BenchmarkDataplaneCheckpointWrite measures persisting one verified
// interior job's retained output lines under a durable ckpt/ path — the
// controller's checkpoint-save hot path (delete any stale file, then
// append the agreed lines). This is the write overhead a fault-free run
// pays per checkpointed job for checkpoint-granular recovery.
func BenchmarkDataplaneCheckpointWrite(b *testing.B) {
	lines := benchEdgeLines()
	fs := dfs.New()
	defer fs.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fs.Delete("ckpt/run1/c0/j01")
		fs.Append("ckpt/run1/c0/j01", lines...)
	}
	b.ReportMetric(benchBatch, "records/op")
}
